// Golden tests: the text output of the gprof pipeline (call graph
// profile, flat profile, index) is pinned byte-for-byte for every
// workload at -jobs 1, so presentation refactors can prove they do not
// drift. `make golden` (go test -run TestGolden -update .) regenerates
// the files under testdata/golden; CI diffs freshly generated goldens
// against the committed ones.
package repro

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// goldenCase is one pinned pipeline run. Everything is deterministic:
// the VM is a simulated machine with a cycle-driven clock and a seeded
// rand(), so the same config always yields the same profile, and -jobs 1
// runs the serial analysis pipeline.
type goldenCase struct {
	name     string // golden file stem
	workload string
	opt      core.Options
}

func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, w := range workloads.Names() {
		cases = append(cases, goldenCase{name: w, workload: w, opt: core.Options{Jobs: 1}})
	}
	// Option variants: static arcs complete the graph; the breaking
	// heuristic rewrites it. Both change the listing shape.
	cases = append(cases,
		goldenCase{name: "parser-static", workload: "parser", opt: core.Options{Jobs: 1, Static: true}},
		goldenCase{name: "service-autobreak", workload: "service", opt: core.Options{Jobs: 1, AutoBreak: true}},
	)
	return cases
}

// goldenRun executes one case and returns the analyzed result.
func goldenRun(t *testing.T, tc goldenCase) *core.Result {
	t.Helper()
	im, err := workloads.Build(tc.workload, true)
	if err != nil {
		t.Fatalf("build %s: %v", tc.workload, err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{Seed: 7, TickCycles: 400, MaxCycles: 1 << 32})
	if err != nil {
		t.Fatalf("run %s: %v", tc.workload, err)
	}
	res, err := core.Run(context.Background(), core.ImageSource{Image: im}, p, tc.opt)
	if err != nil {
		t.Fatalf("analyze %s: %v", tc.name, err)
	}
	return res
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run `make golden`): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (run `make golden` if intended)\ngot %d bytes, want %d bytes\n%s",
			path, len(got), len(want), firstDiff(got, want))
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(got, want []byte) string {
	gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if !bytes.Equal(gl[i], wl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  got:  %q\n  want: %q", i+1, gl[i], wl[i])
		}
	}
	return fmt.Sprintf("outputs agree for %d lines, then lengths differ", min(len(gl), len(wl)))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestGoldenText pins the full gprof text report (call graph profile,
// flat profile, index) for every case.
func TestGoldenText(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res := goldenRun(t, tc)
			var buf bytes.Buffer
			if err := res.WriteAll(&buf); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, filepath.Join("testdata", "golden", tc.name+".txt"), buf.Bytes())
		})
	}
}

// TestGoldenJSON pins the versioned JSON encoding of the profile model
// (gprof -json) for every case: the schema is a published format, so
// accidental shape changes must show up as golden drift.
func TestGoldenJSON(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res := goldenRun(t, tc)
			var buf bytes.Buffer
			if err := res.WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, filepath.Join("testdata", "golden", tc.name+".json"), buf.Bytes())
		})
	}
}

// TestGoldenJSONRoundTrip proves the JSON encoding carries the entire
// presentation: decoding a committed golden JSON profile and rendering
// it reproduces the committed golden text byte for byte. This is the
// tentpole invariant — the model, not the graph, is what renderers see.
func TestGoldenJSONRoundTrip(t *testing.T) {
	if *update {
		t.Skip("goldens being rewritten")
	}
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join("testdata", "golden", tc.name+".json"))
			if err != nil {
				t.Fatalf("missing golden (run `make golden`): %v", err)
			}
			m, err := model.Decode(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("decode golden: %v", err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", "golden", tc.name+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			// The text goldens for plain cases have no cycle-break
			// preamble, so the model renders the same three sections.
			var buf bytes.Buffer
			if err := report.CallGraph(&buf, m, report.Options{}); err != nil {
				t.Fatal(err)
			}
			fmt.Fprintln(&buf)
			if err := report.Flat(&buf, m, report.Options{}); err != nil {
				t.Fatal(err)
			}
			fmt.Fprintln(&buf)
			if err := report.IndexListing(&buf, m); err != nil {
				t.Fatal(err)
			}
			got := buf.Bytes()
			// The autobreak case prefixes a heuristic summary the model
			// does not carry; compare against the tail.
			if !bytes.HasSuffix(want, got) {
				t.Errorf("decoded model renders differently from the text golden\n%s",
					firstDiff(got, want[max(0, len(want)-len(got)):]))
			}
		})
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
