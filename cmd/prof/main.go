// Command prof is the baseline flat profiler gprof improved on (the
// UNIX prof(1) of the paper's introduction): per-routine time, call
// counts, and average ms/call — no call graph, no propagation.
//
// Usage:
//
//	prof [a.out [gmon.out ...]]
package main

import (
	"bufio"
	"fmt"
	"os"

	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/prof"
	"repro/internal/symtab"
)

func main() {
	exe := "a.out"
	profiles := []string{"gmon.out"}
	if len(os.Args) > 1 {
		exe = os.Args[1]
		if len(os.Args) > 2 {
			profiles = os.Args[2:]
		}
	}
	im, err := object.ReadImageFile(exe)
	if err != nil {
		fatal(err)
	}
	p, err := gmon.ReadFiles(profiles)
	if err != nil {
		fatal(err)
	}
	// Flush explicitly and check the error: a deferred Flush would drop
	// a short write (full disk, closed pipe) on the floor.
	w := bufio.NewWriter(os.Stdout)
	if err := prof.Render(w, prof.Model(symtab.New(im), p)); err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
