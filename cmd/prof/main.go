// Command prof is the baseline flat profiler gprof improved on (the
// UNIX prof(1) of the paper's introduction): per-routine time, call
// counts, and average ms/call — no call graph, no propagation.
//
// Usage:
//
//	prof [a.out [gmon.out ...]]
package main

import (
	"bufio"
	"fmt"
	"os"

	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/prof"
	"repro/internal/symtab"
)

func main() {
	exe := "a.out"
	profiles := []string{"gmon.out"}
	if len(os.Args) > 1 {
		exe = os.Args[1]
		if len(os.Args) > 2 {
			profiles = os.Args[2:]
		}
	}
	im, err := object.ReadImageFile(exe)
	if err != nil {
		fatal(err)
	}
	p, err := gmon.ReadFiles(profiles)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := prof.Write(w, symtab.New(im), p); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
