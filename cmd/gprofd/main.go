// Command gprofd is the fleet-scale continuous-profiling service: an
// HTTP server that accepts gmon.out profile-data uploads from many
// agents, streaming-merges them into time-windowed aggregates per
// executable fingerprint, and serves flat, call-graph, diff, model,
// and raw-profile queries over the merged data (internal/serve has the
// design; docs/FORMATS.md documents the gprofd.api.v1 surface).
//
// Usage:
//
//	gprofd [flags]
//
// A typical session:
//
//	gprofd -addr :7421 &
//	curl -s --data-binary @prog.img http://localhost:7421/v1/exe
//	curl -s -H 'X-Gprof-Fingerprint: <fp>' --data-binary @gmon.out \
//	    http://localhost:7421/v1/ingest
//	curl -s 'http://localhost:7421/v1/flat?fp=<fp>&sync=1'
//
// cmd/gprofload replays the built-in workload corpus against a running
// gprofd for load and correctness testing (`make gprofd-smoke`).
//
// -stats prints the ingest/merge/query observability summary to stderr
// on shutdown; -tracefile and -runreport write the machine-readable
// forms. Tracing records per-event spans and so grows with traffic —
// leave it off for long-running deployments and read /v1/stats, whose
// counters are always on and never grow.
//
// -pprof <addr> serves Go's net/http/pprof on a separate listener (the
// ingest surface never exposes it), for CPU/heap profiling of a live
// deployment.
//
// Production observability rides the main listener: GET /metrics is the
// Prometheus text exposition (gprofd.metrics.v1, validated by
// cmd/metricscheck), /healthz and /readyz are the liveness and
// readiness probes (readiness flips to 503 when SIGINT starts the
// drain, ahead of the connection drain), /debug/flightrec dumps the
// always-on span ring as Chrome trace JSON, and -selfprofile starts
// the dogfood loop serving gprofd's own CPU profile at /v1/self.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served only via -pprof
	"os"
	"os/signal"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7421", "listen address")
		window  = flag.Duration("window", serve.DefaultWindow, "aggregation window width")
		retain  = flag.Int("retain", serve.DefaultRetain, "windows retained per fingerprint")
		queue   = flag.Int("queue", serve.DefaultQueueDepth, "per-fingerprint ingest queue depth")
		maxBody = flag.Int64("maxbody", serve.DefaultMaxBodyBytes, "upload body size cap in bytes")
		shards  = flag.Int("maxshards", serve.DefaultMaxShards, "maximum registered fingerprints")
		jobs    = flag.Int("jobs", 0, "analysis worker width for queries (0 = GOMAXPROCS)")
		qcache  = flag.Int("querycache", serve.DefaultQueryCache, "memoized-analysis LRU entries (finished core.Run results and rendered bodies)")
		pprofA  = flag.String("pprof", "", "serve net/http/pprof on this side address (e.g. localhost:6060; empty = off)")
		selfP   = flag.Duration("selfprofile", 0, "capture gprofd's own CPU profile this often and serve it at /v1/self (0 = on demand only)")
		selfC   = flag.Duration("selfcapture", 0, "duration of each self-profile capture window (0 = 1s, clamped to half the interval)")
	)
	var o obs.CLI
	o.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "gprofd: unexpected arguments (the server takes only flags)")
		os.Exit(2)
	}
	// The pprof endpoint rides the default mux on its own listener, so
	// the ingest surface never exposes profiling handlers.
	if *pprofA != "" {
		go func() {
			fmt.Fprintf(os.Stderr, "gprofd: pprof on http://%s/debug/pprof/\n", *pprofA)
			if err := http.ListenAndServe(*pprofA, nil); err != nil {
				fmt.Fprintln(os.Stderr, "gprofd: pprof:", err)
			}
		}()
	}
	err := run(*addr, serve.Config{
		Window:       *window,
		Retain:       *retain,
		QueueDepth:   *queue,
		MaxBodyBytes: *maxBody,
		MaxShards:    *shards,
		Jobs:         *jobs,
		QueryCache:   *qcache,
		Trace:        o.Trace(),
		SelfProfile:  *selfP,
		SelfCapture:  *selfC,
	})
	if ferr := o.Finish(err); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gprofd:", err)
		os.Exit(1)
	}
}

func run(addr string, cfg serve.Config) error {
	srv := serve.New(cfg)
	defer srv.Close()
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		err := httpSrv.ListenAndServe()
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		errc <- err
	}()
	fmt.Fprintf(os.Stderr, "gprofd: listening on %s (window %s, retain %d, queue %d)\n",
		addr, cfg.Window, cfg.Retain, cfg.QueueDepth)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling for a second interrupt
	// Flip /readyz to 503 before draining connections, so balancers
	// stop routing here while in-flight requests finish.
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return <-errc
}
