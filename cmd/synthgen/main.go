// Command synthgen emits deterministic synthetic call-graph workloads
// (internal/synth) as real artifacts: a gmon.out profile (-o, either
// format version) and optionally a matching executable image (-image),
// so the unmodified gprof post-processor — or any other consumer of
// profile data — can be driven at production scale (10^5–10^6 routines)
// with a known graph shape.
//
// Usage:
//
//	synthgen -nodes 100000 -seed 7 -image a.out -o gmon.out
//	synthgen -nodes 1000000 -analyze -jobs 8 -minrate 100000
//
// -analyze runs the full in-process analysis pipeline (graph build →
// SCC → propagation → model) over the generated workload and prints the
// node/arc counts, elapsed time, and analysis rate in nodes/sec;
// -minrate turns that into an assertion, exiting nonzero below the
// floor — which is how `make scale-smoke` pins a throughput regression
// gate in CI.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/synth"
)

func main() {
	var prof obs.Pprof
	prof.RegisterFlags(flag.CommandLine)
	var (
		nodes   = flag.Int("nodes", 100000, "routine count of the synthetic graph")
		seed    = flag.Uint64("seed", 1, "generator seed (same seed, same bytes)")
		out     = flag.String("o", "", "write the profile data file here")
		format  = flag.Int("format", gmon.Version1, "gmon format version to write (1 or 2)")
		imgPath = flag.String("image", "", "write a matching executable image here")
		analyze = flag.Bool("analyze", false, "run the full analysis pipeline over the workload")
		jobs    = flag.Int("jobs", runtime.GOMAXPROCS(0), "worker-pool width for -analyze")
		minRate = flag.Float64("minrate", 0, "with -analyze: fail below this many nodes/sec")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fail(fmt.Errorf("unexpected arguments %q", flag.Args()))
	}
	if err := prof.Start(); err != nil {
		fail(err)
	}
	defer prof.Stop()
	if *out == "" && *imgPath == "" && !*analyze {
		fail(fmt.Errorf("nothing to do: pass -o, -image, or -analyze"))
	}

	w := synth.Generate(synth.Tier(*nodes, *seed))
	fmt.Printf("synth: %d routines, %d arc records, %d ticks (seed %d)\n",
		w.Cfg.Nodes, len(w.Prof.Arcs), w.Prof.Hist.TotalTicks(), *seed)

	if *out != "" {
		if err := gmon.WriteFileVersion(*out, w.Prof, *format); err != nil {
			fail(err)
		}
		if st, err := os.Stat(*out); err == nil {
			fmt.Printf("synth: wrote %s (v%d, %d bytes)\n", *out, *format, st.Size())
		}
	}
	if *imgPath != "" {
		if err := object.WriteImageFile(*imgPath, w.Image()); err != nil {
			fail(err)
		}
		fmt.Printf("synth: wrote %s\n", *imgPath)
	}
	if !*analyze {
		return
	}

	start := time.Now()
	res, err := core.Run(context.Background(), core.TableSource{Table: w.Table()},
		w.Prof, core.Options{Jobs: *jobs})
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	rate := float64(w.Cfg.Nodes) / elapsed.Seconds()
	fmt.Printf("analyze: %d nodes, %d graph arcs, %d cycles in %v (jobs %d) = %.0f nodes/sec\n",
		res.Graph.Len(), res.Graph.NumArcs(), len(res.Graph.Cycles), elapsed.Round(time.Millisecond), *jobs, rate)
	if *minRate > 0 && rate < *minRate {
		fail(fmt.Errorf("analysis rate %.0f nodes/sec below floor %.0f", rate, *minRate))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "synthgen: %v\n", err)
	os.Exit(1)
}
