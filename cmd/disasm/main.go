// Command disasm lists a linked executable: routine boundaries,
// instructions, and the statically apparent call arcs — the "crawl over
// the executable image of the program" facility the retrospective
// describes for discovering the static call graph.
//
// Usage:
//
//	disasm [-arcs] [a.out]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/object"
)

func main() {
	arcsOnly := flag.Bool("arcs", false, "print only the static call arcs")
	flag.Parse()
	exe := "a.out"
	if flag.NArg() > 0 {
		exe = flag.Arg(0)
	}
	im, err := object.ReadImageFile(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *arcsOnly {
		for _, a := range object.Scan(im) {
			fmt.Fprintf(w, "%#06x  %s -> %s\n", a.Site, a.Caller, a.Callee)
		}
		return
	}

	fmt.Fprintf(w, "text [%#x,%#x)  data %#x (%d words)  stack top %#x  entry %#x\n\n",
		im.TextBase, im.TextEnd(), im.DataBase, len(im.Data), im.StackTop, im.Entry)
	for _, fn := range im.Funcs {
		fmt.Fprintf(w, "%s:\n", fn.Name)
		for pc := fn.Addr; pc < fn.End(); pc++ {
			word, err := im.Fetch(pc)
			if err != nil {
				break
			}
			text := isa.DisasmWord(word)
			// Annotate direct call targets with routine names.
			if instr, derr := isa.Decode(word); derr == nil && instr.Op == isa.OpCall {
				if callee, ok := im.FindFunc(int64(instr.Imm)); ok {
					text = fmt.Sprintf("%s            ; -> %s", text, callee.Name)
				}
			}
			fmt.Fprintf(w, "  %#06x  %s\n", pc, text)
		}
	}
}
