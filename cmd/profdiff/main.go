// Command profdiff compares two execution profiles routine by routine
// and reports the per-routine self-time, total-time, and call-count
// deltas, sorted by regression (the biggest slowdowns first). It
// answers the question the listings of a single run cannot: did my
// change make it faster?
//
// Usage:
//
//	profdiff [flags] old new
//
// Each operand is either a saved JSON profile (gprof -json,
// docs/FORMATS.md) or profile data (gmon.out, raw or gzip-compressed,
// either format version). JSON profiles are
// self-contained; profile data needs the executable it was gathered
// against, supplied with -exe (same image for both runs) or -exe1/-exe2
// (the binary changed between runs). The two forms mix freely: a saved
// JSON baseline can be compared against a fresh gmon.out.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"

	"repro/internal/core"
	"repro/internal/gmon"
	"repro/internal/model"
	"repro/internal/object"
)

func main() {
	var (
		exe  = flag.String("exe", "", "executable for both profile data operands")
		exe1 = flag.String("exe1", "", "executable for the old profile data (overrides -exe)")
		exe2 = flag.String("exe2", "", "executable for the new profile data (overrides -exe)")
		top  = flag.Int("top", 0, "show only the first N changed routines (0 = all)")
		jobs = flag.Int("jobs", runtime.GOMAXPROCS(0),
			"worker-pool width when analyzing raw profile data (1 = serial)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: profdiff [flags] old new")
		os.Exit(2)
	}
	oldName, newName := flag.Arg(0), flag.Arg(1)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	oldProf, err := load(ctx, oldName, pick(*exe1, *exe), *jobs)
	if err != nil {
		fatal(err)
	}
	newProf, err := load(ctx, newName, pick(*exe2, *exe), *jobs)
	if err != nil {
		fatal(err)
	}

	deltas := model.Diff(oldProf, newProf)
	// Flush explicitly and check the error: a deferred Flush would drop
	// a short write (full disk, closed pipe) on the floor.
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "profile diff: %s (%.2fs) -> %s (%.2fs)\n\n",
		oldName, oldProf.TotalSeconds, newName, newProf.TotalSeconds)
	fmt.Fprintf(w, "      Dtotal       Dself      Dcalls   old total   new total  name\n")
	shown, changed := 0, 0
	for i := range deltas {
		d := &deltas[i]
		if !d.Changed() {
			continue
		}
		changed++
		if *top > 0 && shown >= *top {
			continue
		}
		shown++
		fmt.Fprintf(w, "%+12.2f%+12.2f%+12d%12.2f%12.2f  %s%s\n",
			d.DTotal(), d.DSelf(), d.DCalls(), d.OldTotal, d.NewTotal,
			d.Name, presence(d))
	}
	if changed == 0 {
		fmt.Fprintln(w, "no per-routine changes")
	} else if shown < changed {
		fmt.Fprintf(w, "... %d more changed routine(s); raise -top to see them\n", changed-shown)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

// presence tags routines present in only one of the profiles.
func presence(d *model.Delta) string {
	switch {
	case d.InOld && !d.InNew:
		return " (removed)"
	case !d.InOld && d.InNew:
		return " (added)"
	}
	return ""
}

func pick(specific, general string) string {
	if specific != "" {
		return specific
	}
	return general
}

// load reads one operand as a profile model: a JSON profile is decoded
// directly; profile data (sniffed by gmon.Sniff, so raw or
// gzip-compressed files in either format version) is analyzed against
// its executable through the regular pipeline.
func load(ctx context.Context, name, exe string, jobs int) (*model.Profile, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	head := make([]byte, 4)
	n, _ := io.ReadFull(f, head)
	f.Close()
	if !gmon.Sniff(head[:n]) {
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		m, err := model.Decode(bufio.NewReader(f))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		return m, nil
	}
	if exe == "" {
		return nil, fmt.Errorf("%s is profile data; supply its executable with -exe (or -exe1/-exe2)", name)
	}
	im, err := object.ReadImageFile(exe)
	if err != nil {
		return nil, err
	}
	p, err := core.LoadProfiles(ctx, []string{name}, jobs)
	if err != nil {
		return nil, err
	}
	res, err := core.Run(ctx, core.ImageSource{Image: im}, p, core.Options{Jobs: jobs})
	if err != nil {
		return nil, err
	}
	return res.Model, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
