// Command figures regenerates every figure and evaluation claim of the
// paper (see DESIGN.md §4 for the index).
//
// Usage:
//
//	figures -all          run everything, print the summary table
//	figures -id F4        run one experiment and print its full detail
//	figures -list         list experiment identifiers
//	figures -md           emit the summary as a Markdown table (for
//	                      EXPERIMENTS.md)
//
// The experiments run on the production (fast) interpreter loop; the
// differential tests guarantee the reference loop would reproduce the
// same profiles bit for bit. Host-level performance is snapshotted
// separately by cmd/benchjson into the BENCH_*.json trajectory.
//
// -stats, -tracefile, and -runreport observe the analyses behind the
// experiments themselves (stage spans across every core.Run the run
// performs); all three write to stderr or named files, never stdout.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	var (
		all  = flag.Bool("all", false, "run every experiment")
		id   = flag.String("id", "", "run a single experiment by id (e.g. F4, E8)")
		list = flag.Bool("list", false, "list experiment ids")
		md   = flag.Bool("md", false, "emit the summary as Markdown")
		jobs = flag.Int("jobs", runtime.GOMAXPROCS(0),
			"worker-pool width for the analyses behind each experiment (1 = serial)")
	)
	var o obs.CLI
	o.Register(flag.CommandLine)
	flag.Parse()
	experiments.SetJobs(*jobs)
	experiments.SetTrace(o.Trace())
	// exit routes every termination through the observability outputs so
	// a failing experiment still leaves a diagnosable trace behind.
	exit := func(code int, runErr error) {
		o.Finish(runErr)
		os.Exit(code)
	}

	switch {
	case *list:
		for _, r := range experiments.All() {
			fmt.Printf("%-6s %s\n", r.ID, r.Title)
		}
	case *id != "":
		r, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *id)
			exit(1, fmt.Errorf("unknown experiment %q", *id))
		}
		printOne(r)
		if !r.Pass {
			exit(1, fmt.Errorf("experiment %s failed", r.ID))
		}
	case *all || *md:
		results := experiments.All()
		if *md {
			printMarkdown(results)
		} else {
			printSummary(results)
		}
		for _, r := range results {
			if !r.Pass {
				exit(1, errors.New("one or more experiments failed"))
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err := o.Finish(nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func printOne(r experiments.Result) {
	fmt.Printf("%s — %s\n", r.ID, r.Title)
	fmt.Printf("  paper:    %s\n", r.Claim)
	fmt.Printf("  measured: %s\n", r.Measure)
	fmt.Printf("  status:   %s\n", status(r.Pass))
	if r.Detail != "" {
		fmt.Println(strings.Repeat("-", 72))
		fmt.Println(r.Detail)
	}
}

func printSummary(results []experiments.Result) {
	fmt.Printf("%-6s %-6s %s\n", "id", "status", "result")
	for _, r := range results {
		fmt.Printf("%-6s %-6s %s\n      paper: %s\n      measured: %s\n",
			r.ID, status(r.Pass), r.Title, r.Claim, r.Measure)
	}
}

func printMarkdown(results []experiments.Result) {
	fmt.Println("| id | artifact | paper | measured | status |")
	fmt.Println("|---|---|---|---|---|")
	for _, r := range results {
		fmt.Printf("| %s | %s | %s | %s | %s |\n",
			r.ID, r.Title, r.Claim, r.Measure, status(r.Pass))
	}
}

func status(pass bool) string {
	if pass {
		return "PASS"
	}
	return "FAIL"
}
