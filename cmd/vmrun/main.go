// Command vmrun compiles, links, and executes programs on the simulated
// machine, optionally with profiling.
//
// Usage:
//
//	vmrun [flags] file.tl [file2.tl ... file.s ...]
//	vmrun [flags] -workload name
//
// With -p, every routine is compiled with a monitoring-routine call in
// its prologue, a collector gathers the call-graph arcs and the
// program-counter histogram during execution, and the condensed profile
// is written to the -o file (default gmon.out) when the program exits —
// the workflow of the paper's §3. With -save, the linked executable is
// also written (default a.out) so the gprof and prof commands can map
// addresses back to routine names.
//
// -stats surfaces the tool's own internals on stderr: build/run/write
// stage timings plus the engine and collector counters — vm.cycles and
// the fast loop's deadline batches, and the mon arc table's shape
// (arena cells, last-arc cache hits, hash chain lengths) that decide
// whether MCOUNT really runs "as fast as possible" (§3). -tracefile
// writes the same run as Chrome trace-event JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/asm"
	"repro/internal/gmon"
	"repro/internal/lang"
	"repro/internal/mon"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	var (
		profile  = flag.Bool("p", false, "compile with profiling prologues and write profile data at exit")
		gmonOut  = flag.String("o", "gmon.out", "profile data output file (with -p)")
		saveExe  = flag.String("save", "a.out", "write the linked executable here ('' to skip)")
		workload = flag.String("workload", "", "run a built-in workload instead of source files")
		entry    = flag.String("entry", "main", "entry routine")
		tick     = flag.Int64("tick", vm.DefaultTickCycles, "cycles per profiling clock tick")
		gran     = flag.Int64("gran", 1, "histogram granularity (text words per bucket)")
		hz       = flag.Int64("hz", gmon.DefaultHz, "clock rate recorded in the profile")
		seed     = flag.Uint64("seed", 1, "seed for the program's rand() builtin")
		maxCyc   = flag.Int64("maxcycles", 1<<32, "abort after this many cycles")
		quiet    = flag.Bool("q", false, "suppress the run summary")
		trace    = flag.Bool("trace", false, "print every executed instruction to stderr (slow)")
	)
	var o obs.CLI
	o.Register(flag.CommandLine)
	flag.Parse()
	tr := o.Trace()
	fail := func(err error) {
		o.Finish(err)
		fatal(err)
	}

	endBuild := tr.Span("build")
	im, err := buildImage(*workload, flag.Args(), *profile, *entry)
	endBuild()
	if err != nil {
		fail(err)
	}
	if *saveExe != "" {
		endSave := tr.Span("save.image")
		err := object.WriteImageFile(*saveExe, im)
		endSave()
		if err != nil {
			fail(err)
		}
	}

	cfg := vm.Config{
		TickCycles: *tick,
		MaxCycles:  *maxCyc,
		RandSeed:   *seed,
		Stdout:     os.Stdout,
	}
	if *trace {
		cfg.Trace = os.Stderr
	}
	var collector *mon.Collector
	if *profile {
		collector = mon.New(im, mon.Config{Granularity: *gran, Hz: *hz})
		cfg.Monitor = collector
	}
	m := vm.New(im, cfg)
	endRun := tr.Span("run")
	res, err := m.Run()
	endRun()
	recordVMStats(tr, m, res, collector)
	if err != nil {
		fail(err)
	}
	if collector != nil {
		endWrite := tr.Span("write.profile")
		snap := collector.Snapshot()
		err := gmon.WriteFile(*gmonOut, snap)
		endWrite()
		if err != nil {
			fail(err)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "exit %d, %d cycles, %d instructions, %d ticks\n",
			res.ExitCode, res.Cycles, res.Retired, res.Ticks)
		if collector != nil {
			st := collector.Stats()
			fmt.Fprintf(os.Stderr, "profile: %d mcount calls, %d arcs, %d samples -> %s\n",
				st.McountCalls, st.Inserts, st.Ticks, *gmonOut)
		}
	}
	if err := o.Finish(nil); err != nil {
		fatal(err)
	}
	os.Exit(int(res.ExitCode & 0xff))
}

// recordVMStats publishes the engine's and the collector's internal
// counters — previously test-only — as obs counters, so -stats and
// -tracefile expose whether the fast loop batches well and whether the
// mon arena's last-arc cache is actually hitting.
func recordVMStats(tr *obs.Trace, m *vm.Machine, res vm.Result, collector *mon.Collector) {
	if tr == nil {
		return
	}
	tr.Counter("vm.cycles").Add(res.Cycles)
	tr.Counter("vm.instructions").Add(res.Retired)
	tr.Counter("vm.ticks").Add(res.Ticks)
	tr.Counter("vm.batches").Add(m.FastBatches())
	if collector == nil {
		return
	}
	st := collector.Stats()
	tr.Counter("mon.mcount_calls").Add(st.McountCalls)
	tr.Counter("mon.arc_cache_hits").Add(st.CacheHits)
	tr.Counter("mon.probes").Add(st.Probes)
	tr.Counter("mon.inserts").Add(st.Inserts)
	tr.Counter("mon.spontaneous").Add(st.Spontaneous)
	tr.Counter("mon.ticks").Add(st.Ticks)
	tr.Counter("mon.lost_ticks").Add(st.LostTicks)
	ts := collector.TableStats()
	tr.Gauge("mon.arena_cells").Set(int64(ts.ArenaCells))
	tr.Gauge("mon.arena_cap").Set(int64(ts.ArenaCap))
	tr.Gauge("mon.hash_chains").Set(int64(ts.Chains))
	tr.Gauge("mon.hash_max_chain").Set(int64(ts.MaxChain))
	tr.Gauge("mon.spont_entries").Set(int64(ts.SpontEntries))
}

func buildImage(workload string, files []string, profile bool, entry string) (*object.Image, error) {
	if workload != "" {
		if len(files) > 0 {
			return nil, fmt.Errorf("vmrun: -workload and source files are mutually exclusive")
		}
		return workloads.Build(workload, profile)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("vmrun: no input files (try -workload %s)",
			strings.Join(workloads.Names(), "|"))
	}
	var objs []*object.Object
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		var obj *object.Object
		switch filepath.Ext(name) {
		case ".s":
			obj, err = asm.Assemble(name, string(src))
		default:
			obj, err = lang.Compile(name, string(src), lang.Options{Profile: profile})
		}
		if err != nil {
			return nil, err
		}
		objs = append(objs, obj)
	}
	return object.Link(objs, object.LinkConfig{Entry: entry})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
