// Command tracecheck validates the profiler's own observability
// artifacts: Chrome trace-event JSON files written by -tracefile and
// run reports (schema gprof.runreport.v1) written by -runreport. The
// stats-smoke make target runs it in CI so a malformed trace fails the
// build before a human ever loads it into Perfetto.
//
// Usage:
//
//	tracecheck file.json [file2.json ...]
//
// The file kind is detected from the content: an object with a
// "traceEvents" array is a Chrome trace, an object with a "schema"
// string is a run report. Exit status is non-zero if any file fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracecheck file.json [file2.json ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ok := true
	for _, name := range flag.Args() {
		kind, err := checkFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", name, err)
			ok = false
			continue
		}
		fmt.Fprintf(os.Stderr, "tracecheck: %s: ok (%s)\n", name, kind)
	}
	if !ok {
		os.Exit(1)
	}
}

// probe holds just enough of either document shape to dispatch on.
type probe struct {
	TraceEvents *json.RawMessage `json:"traceEvents"`
	Schema      *string          `json:"schema"`
}

func checkFile(name string) (string, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return "", err
	}
	var p probe
	if err := json.Unmarshal(data, &p); err != nil {
		return "", fmt.Errorf("not a JSON object: %w", err)
	}
	switch {
	case p.TraceEvents != nil:
		if err := checkChromeTrace(data); err != nil {
			return "", err
		}
		return "chrome trace", nil
	case p.Schema != nil:
		if err := checkRunReport(data, *p.Schema); err != nil {
			return "", err
		}
		return *p.Schema, nil
	default:
		return "", fmt.Errorf("neither a Chrome trace (no traceEvents) nor a run report (no schema)")
	}
}

// chromeEvent mirrors the subset of the trace-event format the obs
// package emits: complete ("X"), metadata ("M"), and counter ("C")
// events. DecodeDisallowUnknown would be too strict — Perfetto accepts
// extra fields — but every field we rely on is checked.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  *int           `json:"pid"`
	Tid  *int64         `json:"tid"`
	Args map[string]any `json:"args"`
}

type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

func checkChromeTrace(data []byte) error {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	if f.DisplayTimeUnit != "ms" && f.DisplayTimeUnit != "ns" {
		return fmt.Errorf("displayTimeUnit %q (want ms or ns)", f.DisplayTimeUnit)
	}
	for i, e := range f.TraceEvents {
		where := fmt.Sprintf("traceEvents[%d] (%s %q)", i, e.Ph, e.Name)
		if e.Name == "" {
			return fmt.Errorf("%s: empty name", where)
		}
		if e.Pid == nil || e.Tid == nil {
			return fmt.Errorf("%s: missing pid/tid", where)
		}
		switch e.Ph {
		case "X":
			if e.Ts == nil || *e.Ts < 0 {
				return fmt.Errorf("%s: missing or negative ts", where)
			}
			if e.Dur == nil || *e.Dur < 0 {
				return fmt.Errorf("%s: complete event missing or negative dur", where)
			}
		case "M":
			if e.Name != "process_name" && e.Name != "thread_name" {
				return fmt.Errorf("%s: unexpected metadata name", where)
			}
			if _, ok := e.Args["name"].(string); !ok {
				return fmt.Errorf("%s: metadata args.name missing", where)
			}
		case "C":
			if e.Ts == nil || *e.Ts < 0 {
				return fmt.Errorf("%s: missing or negative ts", where)
			}
			if len(e.Args) == 0 {
				return fmt.Errorf("%s: counter event with no args", where)
			}
		default:
			return fmt.Errorf("%s: unknown phase", where)
		}
	}
	return nil
}

func checkRunReport(data []byte, schema string) error {
	if schema != obs.RunReportSchema {
		return fmt.Errorf("schema %q (want %q)", schema, obs.RunReportSchema)
	}
	var r obs.RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		return err
	}
	if r.WallNs < 0 {
		return fmt.Errorf("negative wall_ns %d", r.WallNs)
	}
	if !r.Complete && r.Error == "" {
		return fmt.Errorf("incomplete run with no error recorded")
	}
	if r.Complete && r.Error != "" {
		return fmt.Errorf("complete run with error %q", r.Error)
	}
	for i, st := range r.Stages {
		where := fmt.Sprintf("stages[%d] (%q)", i, st.Name)
		switch {
		case st.Name == "":
			return fmt.Errorf("%s: empty name", where)
		case st.Count < 1:
			return fmt.Errorf("%s: count %d", where, st.Count)
		case st.TotalNs < 0 || st.MaxNs < 0 || st.StartNs < 0:
			return fmt.Errorf("%s: negative timing", where)
		case st.MaxNs > st.TotalNs:
			return fmt.Errorf("%s: max_ns %d exceeds total_ns %d", where, st.MaxNs, st.TotalNs)
		case st.Workers < 1 || int64(st.Workers) > st.Count:
			return fmt.Errorf("%s: workers %d out of range for %d spans", where, st.Workers, st.Count)
		}
	}
	return nil
}
