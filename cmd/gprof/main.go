// Command gprof is the call graph execution profiler's post-processor:
// it combines an executable image with one or more profile data files
// and produces the call graph profile, the flat profile, and the index
// (paper §4-§5).
//
// Usage:
//
//	gprof [flags] [a.out [gmon.out ...]]
//
// Multiple profile data files are summed, the paper's "profile of many
// executions"; -jobs merges them tree-wise across a worker pool and
// parallelizes the analysis stages (-jobs 1 runs the serial pipeline,
// byte-identical to the historic output). Flags expose the
// retrospective's later features: -k removes arcs, -C runs the bounded
// cycle-breaking heuristic, -s merges the static call graph scanned
// from the executable, -m and -focus filter the output.
//
// The profile data this tool consumes is gathered by the fast-path
// execution engine (internal/vm's deadline-batched loop feeding
// internal/mon's arena arc table); the gathering cost itself is tracked
// in the committed BENCH_*.json snapshots (docs/FORMATS.md).
//
// The profiler profiles itself: -stats prints a per-stage timing and
// counter summary to stderr, -tracefile writes a Chrome trace-event
// JSON of the run (one track per worker goroutine; open in Perfetto),
// and -runreport writes the machine-readable gprof.runreport.v1
// document. None of the three touch stdout.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/cyclebreak"
	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/report"
)

type arcList []cyclebreak.ArcID

func (a *arcList) String() string {
	var parts []string
	for _, id := range *a {
		parts = append(parts, id.String())
	}
	return strings.Join(parts, ",")
}

func (a *arcList) Set(s string) error {
	id, err := cyclebreak.ParseArcID(s)
	if err != nil {
		return err
	}
	*a = append(*a, id)
	return nil
}

func main() {
	var removeArcs arcList
	var (
		flatOnly  = flag.Bool("flat", false, "print only the flat profile")
		graphOnly = flag.Bool("graph", false, "print only the call graph profile")
		lines     = flag.Bool("lines", false, "print the per-source-line profile")
		dot       = flag.Bool("dot", false, "emit the call graph in Graphviz DOT form")
		jsonOut   = flag.Bool("json", false, "emit the analyzed profile as versioned JSON (docs/FORMATS.md)")
		folded    = flag.Bool("folded", false, "emit collapsed call stacks for flame graphs (needs v3 profile data with stacks)")
		pprofOut  = flag.String("pprof", "", "write the stacks view as a gzipped pprof protobuf to this file")
		static    = flag.Bool("s", false, "merge the static call graph from the executable")
		autoBreak = flag.Bool("C", false, "run the cycle-breaking heuristic")
		maxBreak  = flag.Int("b", 0, "bound on arcs the heuristic may remove (0 = default)")
		minPct    = flag.Float64("m", 0, "suppress entries below this %time")
		focus     = flag.String("focus", "", "comma-separated routines: show only them and their neighbors")
		exclude   = flag.String("E", "", "comma-separated routines to suppress from the listings")
		brief     = flag.Bool("brief", false, "omit explanatory headers")
		jobs      = flag.Int("jobs", runtime.GOMAXPROCS(0),
			"worker-pool width for profile merging, attribution, and propagation (1 = serial)")
		sumFile = flag.String("sum", "", "write the merged profile data to this file and exit")
		format  = flag.Int("format", gmon.Version1, "profile data format version for -sum (1, 2, or 3)")
	)
	flag.Var(&removeArcs, "k", "remove arc caller/callee before analysis (repeatable)")
	var o obs.CLI
	o.Register(flag.CommandLine)
	var prof obs.Pprof
	prof.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fatal(err)
	}
	defer prof.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// The trace rides the context into every pipeline stage; with no
	// observability flag it is nil and costs a pointer check per stage.
	tr := o.Trace()
	ctx = obs.NewContext(ctx, tr)
	// fail emits the partial observability outputs (summary, trace,
	// report) before exiting, so an aborted run stays diagnosable.
	fail := func(err error) {
		o.Finish(err)
		prof.Stop()
		fatal(err)
	}

	exe := "a.out"
	profiles := []string{"gmon.out"}
	if args := flag.Args(); len(args) > 0 {
		if *sumFile != "" {
			// -sum needs no executable; every operand is profile data.
			profiles = args
		} else {
			exe = args[0]
			if len(args) > 1 {
				profiles = args[1:]
			}
		}
	}
	// Profiles load before the image: -sum needs no executable at all.
	p, err := core.LoadProfiles(ctx, profiles, *jobs)
	if err != nil {
		fail(err)
	}
	if *sumFile != "" {
		if err := gmon.WriteFileVersion(*sumFile, p, *format); err != nil {
			fail(err)
		}
		if err := o.Finish(nil); err != nil {
			fatal(err)
		}
		return
	}
	endImage := tr.Span("load.image")
	im, imBytes, err := object.ReadImageFileStats(exe)
	endImage()
	if err != nil {
		fail(err)
	}
	tr.Counter("object.bytes_read").Add(imBytes)
	opt := core.Options{
		Static:       *static,
		RemoveArcs:   removeArcs,
		AutoBreak:    *autoBreak,
		MaxBreakArcs: *maxBreak,
		Jobs:         *jobs,
		Report: report.Options{
			MinPercent: *minPct,
			NoHeaders:  *brief,
		},
	}
	if *focus != "" {
		opt.Report.Focus = strings.Split(*focus, ",")
	}
	if *exclude != "" {
		opt.Report.Exclude = strings.Split(*exclude, ",")
	}
	res, err := core.Run(ctx, core.ImageSource{Image: im}, p, opt)
	if err != nil {
		fail(err)
	}
	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fail(err)
		}
		if err := res.WritePprof(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	// One buffered writer, flushed with the error checked: a full disk
	// must fail loudly, not truncate the listing silently.
	w := bufio.NewWriter(os.Stdout)
	endRender := tr.Span("render")
	switch {
	case *lines:
		err = report.LineProfile(w, im, p, nil)
	case *dot:
		err = report.WriteDOT(w, res.Model, opt.Report)
	case *jsonOut:
		err = res.WriteJSON(w)
	case *folded:
		err = res.WriteFolded(w)
	case *flatOnly:
		err = res.WriteFlat(w)
	case *graphOnly:
		err = res.WriteCallGraph(w)
	default:
		err = res.WriteAll(w)
	}
	if err == nil {
		err = w.Flush()
	}
	endRender()
	if err != nil {
		fail(err)
	}
	// Observability outputs go last, after stdout is complete, and only
	// to stderr or the named files — stdout stays byte-identical.
	if err := o.Finish(nil); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
