// Command gprofload replays the built-in workload corpus against a
// running gprofd: the simulated fleet. It compiles and profiles each
// workload a few times with distinct seeds, registers the executables,
// then uploads the profiles from -agents concurrent agents, cycling
// through format versions (v1/v2) and transports (identity/gzip) and
// honoring the server's 429 backpressure with a short backoff.
//
// Usage:
//
//	gprofload [flags]
//
//	gprofload -addr http://127.0.0.1:7421 -agents 8 -uploads 100 -verify
//	gprofload -agents 8 -uploads 100 -readers 4 -verify
//
// With -readers N, N query agents run alongside the uploaders for the
// whole ingest phase, cycling deterministically over /v1/flat and
// /v1/profile across every fingerprint and requiring 200s with
// schema-valid bodies — mixed read/write traffic against the server's
// incremental query path. Any reader failure exits nonzero.
//
// With -metrics, an observability prober runs alongside the agents:
// every ~100ms it scrapes /metrics (the body must parse and validate as
// Prometheus text exposition) and requires 200 from /healthz and
// /readyz — the monitoring stack a production gprofd lives under. Any
// probe failure exits nonzero.
//
// With -verify it fetches each fingerprint's merged profile back
// (quiesced with ?sync=1) and byte-compares it against an offline
// gmon.MergeAll over the exact multiset of accepted uploads; any
// difference is a server merge bug and exits nonzero. The summary line
// reports accepted uploads, the achieved profiles/sec, 429 retries,
// and the server's heap as seen by /v1/stats.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/workloads"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:7421", "gprofd base URL")
		agents   = flag.Int("agents", 4, "concurrent simulated agents")
		uploads  = flag.Int("uploads", 50, "uploads per agent (ignored with -duration)")
		readers  = flag.Int("readers", 0, "concurrent query agents hitting /v1/flat and /v1/profile during ingest")
		duration = flag.Duration("duration", 0, "replay for this long instead of a fixed count")
		names    = flag.String("workloads", "", "comma-separated workload names (default all)")
		verify   = flag.Bool("verify", false, "byte-compare server merges against offline MergeAll")
		wait     = flag.Duration("wait", 5*time.Second, "how long to wait for the server to come up")
		jsonOut  = flag.Bool("json", false, "print the result as JSON instead of a summary line")
		metrics  = flag.Bool("metrics", false, "scrape and validate /metrics, /healthz, /readyz every ~100ms during the replay")
	)
	flag.Parse()
	if err := run(*addr, *agents, *uploads, *readers, *duration, *names, *verify, *wait, *jsonOut, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "gprofload:", err)
		os.Exit(1)
	}
}

func run(addr string, agents, uploads, readers int, duration time.Duration, names string, verify bool, wait time.Duration, jsonOut, metrics bool) error {
	var list []string
	if names != "" {
		for _, n := range strings.Split(names, ",") {
			list = append(list, strings.TrimSpace(n))
		}
	} else {
		list = workloads.Names()
	}
	ctx := context.Background()
	corpus, err := loadgen.BuildCorpus(list)
	if err != nil {
		return err
	}
	client := &loadgen.Client{Base: strings.TrimRight(addr, "/")}
	if err := client.WaitReady(ctx, wait); err != nil {
		return err
	}
	if err := client.RegisterAll(ctx, corpus); err != nil {
		return err
	}
	res, err := client.Run(ctx, corpus, loadgen.Options{
		Agents:          agents,
		UploadsPerAgent: uploads,
		Duration:        duration,
		Readers:         readers,
		Metrics:         metrics,
	})
	if err != nil {
		return err
	}
	stats, statsErr := client.Stats(ctx)
	if jsonOut {
		out := struct {
			Uploads      int64   `json:"uploads"`
			PerSecond    float64 `json:"profiles_per_second"`
			Retries429   int64   `json:"retries_429"`
			Errors       int64   `json:"errors"`
			Reads        int64   `json:"reads,omitempty"`
			ReadErrors   int64   `json:"read_errors,omitempty"`
			ReadsPerSec  float64 `json:"reads_per_second,omitempty"`
			Scrapes      int64   `json:"metrics_scrapes,omitempty"`
			ScrapeErrors int64   `json:"metrics_errors,omitempty"`
			ElapsedMs    int64   `json:"elapsed_ms"`
			ServerHeapMB float64 `json:"server_heap_mb,omitempty"`
		}{res.Uploads, res.PerSecond, res.Retries429, res.Errors,
			res.Reads, res.ReadErrors, res.ReadsPerSecond,
			res.MetricsScrapes, res.MetricsErrors, res.Elapsed.Milliseconds(), 0}
		if statsErr == nil {
			out.ServerHeapMB = float64(stats.HeapAllocBytes) / (1 << 20)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		fmt.Printf("uploaded %d profiles from %d agents in %v (%.0f profiles/sec, %d retries after 429, %d errors)\n",
			res.Uploads, agents, res.Elapsed.Round(time.Millisecond), res.PerSecond, res.Retries429, res.Errors)
		if readers > 0 {
			fmt.Printf("readers: %d queries from %d agents (%.0f queries/sec, %d errors)\n",
				res.Reads, readers, res.ReadsPerSecond, res.ReadErrors)
		}
		if metrics {
			fmt.Printf("metrics: %d valid scrapes, %d errors\n", res.MetricsScrapes, res.MetricsErrors)
		}
		if statsErr == nil {
			fmt.Printf("server: %d accepted, %.1f MB heap, %d shards\n",
				stats.ProfilesAccepted, float64(stats.HeapAllocBytes)/(1<<20), len(stats.Shards))
			if readers > 0 {
				fmt.Printf("server caches: %d/%d analysis hits/misses, %d/%d snapshot hits/misses, %d coalesced\n",
					stats.AnalysisCacheHits, stats.AnalysisCacheMisses,
					stats.SnapshotCacheHits, stats.SnapshotCacheMisses, stats.CoalescedQueries)
			}
		}
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d uploads failed", res.Errors)
	}
	if res.ReadErrors > 0 {
		return fmt.Errorf("%d reader queries failed", res.ReadErrors)
	}
	if metrics {
		if res.MetricsErrors > 0 {
			return fmt.Errorf("%d observability probes failed", res.MetricsErrors)
		}
		if res.MetricsScrapes == 0 {
			return fmt.Errorf("no observability probes completed")
		}
	}
	// Readers that completed queries must have left tracks in the
	// server's incremental caches; a server serving every read from
	// scratch is a query-path regression (the make query-smoke gate).
	if readers > 0 && res.Reads > 0 && statsErr == nil &&
		stats.AnalysisCacheHits == 0 && stats.SnapshotCacheHits == 0 {
		return fmt.Errorf("%d reads but the server reports zero analysis/snapshot cache hits", res.Reads)
	}
	if res.Uploads == 0 {
		return fmt.Errorf("no uploads were accepted")
	}
	if verify {
		if err := client.Verify(ctx, corpus, res); err != nil {
			return err
		}
		fmt.Println("verify: server merges are byte-identical to offline MergeAll")
	}
	return nil
}
