// Command kprof demonstrates the programmer's interface the
// retrospective added for profiling the Berkeley kernel: controlling the
// profiler of a long-running program from outside, without the program's
// cooperation and without taking it down — "turn the profiler on and
// off, extract the profiling data, and reset the data".
//
// The "kernel" here is any long-running image (by default the `service`
// workload). kprof attaches a collector and drives it from a schedule of
// simulated-cycle thresholds:
//
//	kprof -workload service -enable-at 1e6 -dump-at 5e6 -disable-at 9e6 -o gmon.out
//
// At -dump-at the profile is extracted mid-run to <o>.mid while data
// keeps accumulating, exactly the live-extraction use case.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gmon"
	"repro/internal/mon"
	"repro/internal/object"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// controller wraps a collector and applies a cycle-threshold schedule at
// every clock tick, standing in for a human at the kernel-profiling
// control tool.
type controller struct {
	inner   *mon.Collector
	machine *vm.Machine

	enableAt, disableAt, resetAt, dumpAt int64
	dumpPath                             string

	enabled, disabled, reset, dumped bool
	err                              error
}

func (c *controller) Mcount(selfpc, frompc int64) int64 {
	return c.inner.Mcount(selfpc, frompc)
}

func (c *controller) Control(op int) { c.inner.Control(op) }

func (c *controller) Tick(pc int64) {
	cycles := c.machine.Cycles()
	if c.enableAt > 0 && !c.enabled && cycles >= c.enableAt {
		c.enabled = true
		c.inner.Enable()
	}
	if c.resetAt > 0 && !c.reset && cycles >= c.resetAt {
		c.reset = true
		c.inner.Reset()
	}
	if c.dumpAt > 0 && !c.dumped && cycles >= c.dumpAt {
		c.dumped = true
		if err := gmon.WriteFile(c.dumpPath, c.inner.Snapshot()); err != nil && c.err == nil {
			c.err = err
		}
	}
	if c.disableAt > 0 && !c.disabled && cycles >= c.disableAt {
		c.disabled = true
		c.inner.Disable()
	}
	c.inner.Tick(pc)
}

func main() {
	var (
		workload  = flag.String("workload", "service", "built-in workload to run")
		image     = flag.String("image", "", "executable to run instead of a workload")
		out       = flag.String("o", "gmon.out", "final profile data file")
		saveExe   = flag.String("save", "a.out", "write the linked executable here ('' to skip)")
		enableAt  = flag.Int64("enable-at", 0, "enable collection at this cycle count (0 = start enabled)")
		disableAt = flag.Int64("disable-at", 0, "disable collection at this cycle count")
		resetAt   = flag.Int64("reset-at", 0, "clear collected data at this cycle count")
		dumpAt    = flag.Int64("dump-at", 0, "extract a mid-run profile to <o>.mid at this cycle count")
		tick      = flag.Int64("tick", vm.DefaultTickCycles, "cycles per clock tick")
		maxCyc    = flag.Int64("maxcycles", 1<<32, "abort after this many cycles")
	)
	flag.Parse()

	var im *object.Image
	var err error
	if *image != "" {
		im, err = object.ReadImageFile(*image)
	} else {
		im, err = workloads.Build(*workload, true)
	}
	if err != nil {
		fatal(err)
	}
	if *saveExe != "" && *image == "" {
		if err := object.WriteImageFile(*saveExe, im); err != nil {
			fatal(err)
		}
	}

	collector := mon.New(im, mon.Config{StartDisabled: *enableAt > 0})
	ctl := &controller{
		inner:    collector,
		enableAt: *enableAt, disableAt: *disableAt,
		resetAt: *resetAt, dumpAt: *dumpAt,
		dumpPath: *out + ".mid",
	}
	m := vm.New(im, vm.Config{
		Monitor:    ctl,
		TickCycles: *tick,
		MaxCycles:  *maxCyc,
		Stdout:     os.Stdout,
	})
	ctl.machine = m
	res, err := m.Run()
	if err != nil {
		fatal(err)
	}
	if ctl.err != nil {
		fatal(ctl.err)
	}
	if err := gmon.WriteFile(*out, collector.Snapshot()); err != nil {
		fatal(err)
	}
	st := collector.Stats()
	fmt.Fprintf(os.Stderr, "exit %d after %d cycles; %d samples, %d arcs -> %s",
		res.ExitCode, res.Cycles, st.Ticks, st.Inserts, *out)
	if ctl.dumped {
		fmt.Fprintf(os.Stderr, " (mid-run extract in %s.mid)", *out)
	}
	fmt.Fprintln(os.Stderr)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
