// Command metricscheck validates Prometheus text-exposition dumps the
// way tracecheck validates Chrome traces: the metrics-smoke make target
// scrapes a running gprofd's /metrics and fails the build if the output
// is malformed, so the exposition writer can never silently regress
// into something real monitoring stacks cannot ingest.
//
// Usage:
//
//	metricscheck [-q] dump1.prom [dump2.prom ...]
//
// Each file must parse as the text format and pass structural
// validation: every sample belongs to a declared TYPE family, counter
// and histogram values are finite and non-negative, and histogram
// series carry strictly increasing bucket bounds with non-decreasing
// cumulative counts, a le="+Inf" bucket, and matching _count and _sum
// samples.
//
// When more than one file is given they are treated as successive
// scrapes of the same process, in argument order, and cross-dump rules
// apply: counter samples and histogram bucket/count/sum samples must be
// monotonically non-decreasing from one dump to the next. A counter
// that goes backwards means broken aggregation (or a silent restart) —
// exactly the class of bug a dashboard hides as a rate glitch.
//
// Exit status is non-zero if any file or any cross-dump check fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/obs"
)

func main() {
	quiet := flag.Bool("q", false, "suppress per-file ok lines")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: metricscheck [-q] dump1.prom [dump2.prom ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ok := true
	var prev *obs.Exposition
	var prevName string
	for _, name := range flag.Args() {
		exp, err := checkFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricscheck: %s: %v\n", name, err)
			ok = false
			prev = nil
			continue
		}
		families, samples := count(exp)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "metricscheck: %s: ok (%d families, %d samples)\n",
				name, families, samples)
		}
		if prev != nil {
			if errs := monotonic(prev, exp); len(errs) > 0 {
				for _, e := range errs {
					fmt.Fprintf(os.Stderr, "metricscheck: %s -> %s: %v\n", prevName, name, e)
				}
				ok = false
			}
		}
		prev, prevName = exp, name
	}
	if !ok {
		os.Exit(1)
	}
}

func checkFile(name string) (*obs.Exposition, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	exp, err := obs.ParseExposition(f)
	if err != nil {
		return nil, err
	}
	if err := exp.Validate(); err != nil {
		return nil, err
	}
	return exp, nil
}

func count(e *obs.Exposition) (families, samples int) {
	for _, f := range e.Families {
		families++
		samples += len(f.Samples)
	}
	return
}

// monotonic checks that every counter sample — and every histogram
// bucket, _count, and _sum sample — present in both dumps did not
// decrease. Samples only in one dump are fine (new series appear as
// traffic reaches new endpoints).
func monotonic(old, cur *obs.Exposition) []error {
	var errs []error
	for _, f := range cur.Families {
		if f.Kind != "counter" && f.Kind != "histogram" {
			continue
		}
		for _, s := range f.Samples {
			was, ok := oldValue(old, s)
			if !ok {
				continue
			}
			if s.Value < was {
				errs = append(errs, fmt.Errorf("%s%s went backwards: %g -> %g",
					s.Name, labelString(s.Labels), was, s.Value))
			}
		}
	}
	return errs
}

func oldValue(old *obs.Exposition, s obs.ExpoSample) (float64, bool) {
	labels := make([]string, 0, 2*len(s.Labels))
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		labels = append(labels, k, s.Labels[k])
	}
	return old.Sample(s.Name, labels...)
}

func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}
