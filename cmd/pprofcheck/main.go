// Command pprofcheck validates a pprof profile.proto stream (gzipped
// or raw) with the in-repo minimal decoder and prints a -top style
// summary — the stand-in for go tool pprof -top in environments
// without the Go pprof tool, and the verifier make pprof-smoke runs
// against gprof -pprof output.
//
// Usage:
//
//	pprofcheck profile.pb.gz
//
// Exit status is non-zero when the stream does not parse, references
// unknown locations or functions, or carries no samples.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/pprofenc"
)

func main() {
	quiet := flag.Bool("q", false, "validate only; print nothing on success")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pprofcheck [-q] profile.pb.gz")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	d, err := pprofenc.Decode(f)
	if err != nil {
		fatal(err)
	}
	if len(d.Samples) == 0 {
		fatal(fmt.Errorf("pprofcheck: %s: profile has no samples", flag.Arg(0)))
	}
	if *quiet {
		return
	}
	w := bufio.NewWriter(os.Stdout)
	if err := d.WriteTop(w); err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
