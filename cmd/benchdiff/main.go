// Command benchdiff compares two committed BENCH_*.json snapshots and
// reports per-metric deltas, worst regression first, so the performance
// trajectory between PRs is a one-command diff instead of a manual
// eyeball over JSON.
//
// It is schema-generic: every numeric leaf in the document becomes a
// metric named by its path (array elements are keyed by their
// "workload" / "name" / "nodes" identity field), so bench.v1 through
// bench.v4 files — and future schemas — diff without code changes.
// Whether a metric improves by going up or down is inferred from its
// name: rates (ns/op, *_ns, *_bytes, overhead...) want to fall;
// throughputs (*_per_sec, *_rate, *hit*, *speedup*) want to rise.
//
// Usage:
//
//	benchdiff BENCH_PR5.json BENCH_PR7.json
//	benchdiff -threshold 10 BENCH_PR5.json BENCH_PR7.json   # exit 1 on >10% regression
//	benchdiff -threshold 10 -ungated analysis_stages OLD NEW
//
// With -threshold the exit status becomes a CI gate: nonzero when any
// metric regresses by more than the given percentage. Metrics whose
// path contains the -ungated substring are still reported but never
// trip the gate — for sub-measurements too small to be stable (the
// single-digit-microsecond per-stage spans jitter close to 10x across
// runs on a shared host, while the whole-run metrics they sum into
// hold within tens of percent and stay gated).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// metric identity keys: when an array element is an object carrying one
// of these, its value names the element in the metric path.
var identityKeys = []string{"workload", "name", "nodes", "label"}

// configKeys are run-parameter leaves, not measurements; diffing them
// is noise (a snapshot taken with different -workers is still a valid
// baseline for the domain metrics).
var configKeys = map[string]bool{
	"workers": true, "iters": true, "jobs": true, "seed": true,
}

// flatten walks any decoded JSON value and collects numeric leaves into
// out, keyed by slash-joined path.
func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			if configKeys[k] {
				continue
			}
			p := k
			if prefix != "" {
				p = prefix + "/" + k
			}
			flatten(p, val, out)
		}
	case []any:
		for i, el := range x {
			key := fmt.Sprintf("%d", i)
			if m, ok := el.(map[string]any); ok {
				for _, idk := range identityKeys {
					if idv, ok := m[idk]; ok {
						key = fmt.Sprintf("%v", idv)
						break
					}
				}
			}
			flatten(prefix+"/"+key, el, out)
		}
	case float64:
		out[prefix] = x
	}
}

// higherBetter reports whether a metric improves by increasing. Metric
// names may themselves contain slashes ("MB/s"), so suffixes are
// checked against the full path, not just the last segment.
func higherBetter(name string) bool {
	n := strings.ToLower(name)
	if strings.HasSuffix(n, "b/s") { // MB/s, KB/s: throughput units
		return true
	}
	for _, s := range []string{"per_sec", "rate", "hit", "speedup", "throughput"} {
		if strings.Contains(n, s) {
			// ns_per_... / ms_per_... names are times, not rates.
			if strings.Contains(n, "ns_per") || strings.Contains(n, "ms_per") {
				return false
			}
			return true
		}
	}
	return false
}

type row struct {
	name       string
	old, new   float64
	deltaPct   float64 // signed relative change, new vs old
	regression float64 // >0 means worse, by that many percent
}

func load(path string) (map[string]float64, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	flatten("", doc, out)
	schema := ""
	if m, ok := doc.(map[string]any); ok {
		schema, _ = m["schema"].(string)
	}
	return out, schema, nil
}

func main() {
	var (
		threshold = flag.Float64("threshold", 0, "exit nonzero if any metric regresses more than this percent (0 = report only)")
		ungated   = flag.String("ungated", "", "metrics whose path contains this substring are reported but never trip -threshold")
		quiet     = flag.Bool("q", false, "print only changed metrics")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-threshold pct] OLD.json NEW.json\n")
		os.Exit(2)
	}
	oldM, oldS, err := load(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	newM, newS, err := load(flag.Arg(1))
	if err != nil {
		fail(err)
	}
	fmt.Printf("old: %s (%s)   new: %s (%s)\n", flag.Arg(0), orDash(oldS), flag.Arg(1), orDash(newS))

	var rows []row
	var added, removed []string
	for name, nv := range newM {
		ov, ok := oldM[name]
		if !ok {
			added = append(added, name)
			continue
		}
		r := row{name: name, old: ov, new: nv}
		if ov != 0 {
			r.deltaPct = 100 * (nv - ov) / ov
		} else if nv != 0 {
			r.deltaPct = 100 // from zero: treat as +100%
		}
		if higherBetter(name) {
			r.regression = -r.deltaPct
		} else {
			r.regression = r.deltaPct
		}
		rows = append(rows, r)
	}
	for name := range oldM {
		if _, ok := newM[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].regression != rows[j].regression {
			return rows[i].regression > rows[j].regression
		}
		return rows[i].name < rows[j].name
	})
	sort.Strings(added)
	sort.Strings(removed)

	worst := 0.0
	shown := 0
	for _, r := range rows {
		gated := *ungated == "" || !strings.Contains(r.name, *ungated)
		if gated && r.regression > worst {
			worst = r.regression
		}
		if *quiet && r.deltaPct == 0 {
			continue
		}
		mark := ""
		if *threshold > 0 && r.regression > *threshold {
			mark = "  regression (ungated)"
			if gated {
				mark = "  REGRESSION"
			}
		}
		fmt.Printf("%-64s %14.6g %14.6g %+9.2f%%%s\n", r.name, r.old, r.new, r.deltaPct, mark)
		shown++
	}
	if shown == 0 {
		fmt.Println("no common metrics changed")
	}
	for _, name := range added {
		fmt.Printf("%-64s %14s %14.6g    (new)\n", name, "-", newM[name])
	}
	for _, name := range removed {
		fmt.Printf("%-64s %14.6g %14s    (gone)\n", name, oldM[name], "-")
	}

	if *threshold > 0 && worst > *threshold {
		fmt.Fprintf(os.Stderr, "benchdiff: worst regression %.2f%% exceeds threshold %.2f%%\n", worst, *threshold)
		os.Exit(1)
	}
}

func orDash(s string) string {
	if s == "" {
		return "?"
	}
	return s
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(1)
}
