// Command gmondump prints the raw contents of profile data files for
// inspection and debugging: the header, the histogram (non-zero buckets),
// and the arc records, with addresses resolved to routine names when an
// executable is supplied.
//
// Usage:
//
//	gmondump [-exe a.out] gmon.out [gmon.out2 ...]
//
// Several files are summed first, as gprof would.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/symtab"
)

func main() {
	exe := flag.String("exe", "", "executable for symbol resolution (optional)")
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		files = []string{"gmon.out"}
	}
	p, err := gmon.ReadFiles(files)
	if err != nil {
		fatal(err)
	}
	var tab *symtab.Table
	if *exe != "" {
		im, err := object.ReadImageFile(*exe)
		if err != nil {
			fatal(err)
		}
		tab = symtab.New(im)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "profile: %d file(s), clock %d Hz, %.2f seconds sampled\n",
		len(files), p.ClockHz(), p.TotalSeconds())
	fmt.Fprintf(w, "histogram: [%#x,%#x) step %d, %d buckets, %d ticks\n",
		p.Hist.Low, p.Hist.High, p.Hist.Step, len(p.Hist.Counts), p.Hist.TotalTicks())
	for i, n := range p.Hist.Counts {
		if n == 0 {
			continue
		}
		lo, hi := p.Hist.BucketRange(i)
		fmt.Fprintf(w, "  [%#06x,%#06x) %6d ticks%s\n", lo, hi, n, symFor(tab, lo))
	}
	fmt.Fprintf(w, "arcs: %d records\n", len(p.Arcs))
	for _, a := range p.Arcs {
		from := fmt.Sprintf("%#06x", a.FromPC)
		if a.FromPC == gmon.SpontaneousPC {
			from = "<spontaneous>"
		} else {
			from += symFor(tab, a.FromPC)
		}
		fmt.Fprintf(w, "  %s -> %#06x%s  x%d\n", from, a.SelfPC, symFor(tab, a.SelfPC), a.Count)
	}
}

func symFor(tab *symtab.Table, pc int64) string {
	if tab == nil {
		return ""
	}
	if s, ok := tab.Find(pc); ok {
		return fmt.Sprintf(" (%s+%d)", s.Name, pc-s.Addr)
	}
	return " (?)"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
