// Command gmondump prints the raw contents of profile data files for
// inspection and debugging: per-file format and on-disk section sizes,
// then the summed header, histogram (non-zero buckets), and arc
// records, with addresses resolved to routine names when an executable
// is supplied.
//
// Usage:
//
//	gmondump [-exe a.out] [-o out.gmon [-format 1|2]] gmon.out [gmon.out2 ...]
//
// Several files are summed first, as gprof would. -o writes the merged
// profile back out (in either format version) instead of relying on
// gprof -sum.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/symtab"
)

func main() {
	exe := flag.String("exe", "", "executable for symbol resolution (optional)")
	out := flag.String("o", "", "write the merged profile data to this file")
	format := flag.Int("format", gmon.Version1, "profile data format version for -o (1, 2, or 3)")
	flag.Parse()
	files := flag.Args()
	if len(files) == 0 {
		files = []string{"gmon.out"}
	}

	// Flushed explicitly at the end with the error checked: a deferred
	// Flush would drop a short write (full disk, closed pipe) silently.
	w := bufio.NewWriter(os.Stdout)

	// Decode each file once, printing its on-disk layout, and sum as we
	// go so errors name the offending file.
	var p *gmon.Profile
	for _, name := range files {
		q, st, err := gmon.ReadFileStats(name)
		if err != nil {
			fatal(err)
		}
		line := fmt.Sprintf("file %s: format v%d, %d bytes (header %d, histogram %d, arcs %d",
			name, st.Version, st.TotalBytes, st.HeaderBytes, st.HistBytes, st.ArcBytes)
		if st.Version >= gmon.Version3 {
			line += fmt.Sprintf(", stacks %d", st.StackBytes)
		}
		fmt.Fprintln(w, line+")")
		if p == nil {
			p = q
		} else if err := p.Merge(q); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}
	var tab *symtab.Table
	if *exe != "" {
		im, err := object.ReadImageFile(*exe)
		if err != nil {
			fatal(err)
		}
		tab = symtab.New(im)
	}
	if *out != "" {
		if err := gmon.WriteFileVersion(*out, p, *format); err != nil {
			fatal(err)
		}
	}

	fmt.Fprintf(w, "profile: %d file(s), clock %d Hz, %.2f seconds sampled\n",
		len(files), p.ClockHz(), p.TotalSeconds())
	fmt.Fprintf(w, "histogram: [%#x,%#x) step %d, %d buckets, %d ticks\n",
		p.Hist.Low, p.Hist.High, p.Hist.Step, len(p.Hist.Counts), p.Hist.TotalTicks())
	for i, n := range p.Hist.Counts {
		if n == 0 {
			continue
		}
		lo, hi := p.Hist.BucketRange(i)
		fmt.Fprintf(w, "  [%#06x,%#06x) %6d ticks%s\n", lo, hi, n, symFor(tab, lo))
	}
	fmt.Fprintf(w, "arcs: %d records\n", len(p.Arcs))
	for _, a := range p.Arcs {
		from := fmt.Sprintf("%#06x", a.FromPC)
		if a.FromPC == gmon.SpontaneousPC {
			from = "<spontaneous>"
		} else {
			from += symFor(tab, a.FromPC)
		}
		fmt.Fprintf(w, "  %s -> %#06x%s  x%d\n", from, a.SelfPC, symFor(tab, a.SelfPC), a.Count)
	}
	if len(p.Stacks) > 0 {
		var total int64
		for i := range p.Stacks {
			total += p.Stacks[i].Count
		}
		fmt.Fprintf(w, "stacks: %d distinct paths, %d samples\n", len(p.Stacks), total)
		for i := range p.Stacks {
			s := &p.Stacks[i]
			fmt.Fprintf(w, "  depth %3d x%-6d leaf %#06x%s\n",
				len(s.PCs), s.Count, s.PCs[0], symFor(tab, s.PCs[0]))
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func symFor(tab *symtab.Table, pc int64) string {
	if tab == nil {
		return ""
	}
	if s, ok := tab.Find(pc); ok {
		return fmt.Sprintf(" (%s+%d)", s.Name, pc-s.Addr)
	}
	return " (?)"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
