// Command benchjson produces the BENCH_*.json performance snapshots the
// repository commits so every PR can regress against its predecessors
// (ROADMAP: "fast as the hardware allows" needs a measured trajectory).
//
// It runs the workload suite on the parallel bench driver
// (experiments.BenchSuite) and, optionally, folds in the output of a
// `go test -bench` run so host-level micro-benchmarks travel in the same
// file as the domain metrics.
//
// Usage:
//
//	benchjson -label PR2 -o BENCH_PR2.json
//	benchjson -label PR7 -scale -o BENCH_PR7.json
//	benchjson -label PR8 -scale -query -o BENCH_PR8.json
//	go test -run '^$' -bench . -benchtime=1x . | benchjson -label PR2 -parse - -o BENCH_PR2.json
//
// -scale adds the synthetic scale suite (experiments.ScaleSuite):
// 10^3..10^6-routine workloads through the full pipeline, with
// profiles_analyzed_per_sec as the headline rate per tier.
//
// -query adds the gprofd query suite (experiments.QuerySuite): cold vs
// warm /v1/flat latency against an in-process server (the warm_speedup
// figure pins the incremental read path's >= 10x bar) plus the query
// rate sustained under concurrent ingest.
//
// The schema is documented in docs/FORMATS.md.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// File is the BENCH_*.json document. Field order is the wire order.
type File struct {
	Schema    string                      `json:"schema"` // "bench.v7"
	Label     string                      `json:"label"`  // e.g. "PR2"
	Go        string                      `json:"go"`
	GOOS      string                      `json:"goos"`
	GOARCH    string                      `json:"goarch"`
	Workers   int                         `json:"workers"`
	Iters     int                         `json:"iters"`
	Workloads []experiments.WorkloadBench `json:"workloads"`
	Scale     []experiments.ScaleTier     `json:"scale,omitempty"`
	Query     *experiments.QueryBench     `json:"query,omitempty"`
	GoBench   []GoBench                   `json:"go_bench,omitempty"`
}

// GoBench is one parsed `go test -bench` result line.
type GoBench struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	Metrics map[string]float64 `json:"metrics"` // unit -> value, e.g. "ns/op": 42
}

// parseGoBench extracts benchmark lines ("BenchmarkX-8  100  42 ns/op
// 7 allocs/op ..."): after the iteration count, values and units
// alternate. Non-benchmark lines are ignored.
func parseGoBench(r io.Reader) ([]GoBench, error) {
	var out []GoBench
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		// Drop the -N GOMAXPROCS suffix go test appends to each name.
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := GoBench{
			Name:    name,
			Iters:   iters,
			Metrics: make(map[string]float64),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

func main() {
	var prof obs.Pprof
	prof.RegisterFlags(flag.CommandLine)
	var (
		label   = flag.String("label", "dev", "snapshot label recorded in the file (e.g. PR2)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "bench driver pool width")
		iters   = flag.Int("iters", 3, "timed repetitions per workload; minimum wins")
		out     = flag.String("o", "", "output path ('' or '-' means stdout)")
		parse   = flag.String("parse", "", "also parse `go test -bench` output from this file ('-' = stdin)")
		noSuite = flag.Bool("nosuite", false, "skip the workload-suite driver (parse only)")
		scale   = flag.Bool("scale", false, "also run the synthetic scale suite (10^3..10^6 routines)")
		scMax   = flag.Int("scalemax", 1_000_000, "largest scale tier to run")
		scSeed  = flag.Uint64("scaleseed", 1, "scale-suite generator seed")
		scIters = flag.Int("scaleiters", 3, "timed repetitions per scale tier")
		scJobs  = flag.Int("scalejobs", 8, "scale-suite parallel-run -jobs width")
		query   = flag.Bool("query", false, "also run the gprofd query suite (cold/warm latency, mixed traffic)")
		qIters  = flag.Int("queryiters", 5, "cold-query repetitions; minimum wins")
	)
	flag.Parse()
	if err := prof.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	defer prof.Stop()

	f := File{
		Schema:  "bench.v7",
		Label:   *label,
		Go:      runtime.Version(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		Workers: *workers,
		Iters:   *iters,
	}

	if !*noSuite {
		rows, err := experiments.BenchSuite(experiments.BenchConfig{Workers: *workers, Iters: *iters})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		f.Workloads = rows
	}

	if *scale {
		var tiers []int
		for _, t := range experiments.DefaultScaleTiers {
			if t <= *scMax {
				tiers = append(tiers, t)
			}
		}
		rows, err := experiments.ScaleSuite(experiments.ScaleConfig{
			Tiers: tiers,
			Seed:  *scSeed,
			Jobs:  *scJobs,
			Iters: *scIters,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: scale: %v\n", err)
			os.Exit(1)
		}
		f.Scale = rows
	}

	if *query {
		row, err := experiments.QuerySuite(experiments.QueryConfig{Iters: *qIters})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: query: %v\n", err)
			os.Exit(1)
		}
		f.Query = &row
	}

	if *parse != "" {
		src := os.Stdin
		if *parse != "-" {
			file, err := os.Open(*parse)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			defer file.Close()
			src = file
		}
		gb, err := parseGoBench(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parse: %v\n", err)
			os.Exit(1)
		}
		f.GoBench = gb
	}

	enc, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" || *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
