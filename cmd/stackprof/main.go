// Command stackprof profiles a program by periodically capturing whole
// call stacks — the technique the retrospective says replaced gprof:
// "modern profilers solve both these problems by periodically gathering
// not just isolated program counter samples and isolated call graph
// arcs, but complete call stacks."
//
// No instrumentation is needed: the program is compiled without -p and
// runs at full speed between samples. Output is a self/inclusive table
// and, with -folded, collapsed stacks in the flame-graph input format.
// The samples ride the unified stack pipeline: -o writes them as
// version-3 profile data (gmon v3) for gprof and gprofd to consume,
// and -pprof writes the analyzed view as a gzipped pprof protobuf.
//
// Usage:
//
//	stackprof [-tick N] [-folded] [-o gmon.out] [-pprof file] [-workload name | file.tl ...]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gmon"
	"repro/internal/lang"
	"repro/internal/model"
	"repro/internal/object"
	"repro/internal/pprofenc"
	"repro/internal/stacksample"
	"repro/internal/symtab"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "", "run a built-in workload instead of source files")
		tick     = flag.Int64("tick", 1000, "cycles between stack samples")
		folded   = flag.Bool("folded", false, "emit collapsed stacks (flame-graph input) instead of the table")
		gmonOut  = flag.String("o", "", "write the raw samples as version-3 profile data to this file")
		pprofOut = flag.String("pprof", "", "write the analyzed view as a gzipped pprof protobuf to this file")
		maxCyc   = flag.Int64("maxcycles", 1<<32, "abort after this many cycles")
		seed     = flag.Uint64("seed", 1, "seed for the program's rand() builtin")
	)
	flag.Parse()

	im, err := build(*workload, flag.Args())
	if err != nil {
		fatal(err)
	}
	sampler := stacksample.New(symtab.New(im))
	m := vm.New(im, vm.Config{
		Monitor:    sampler,
		TickCycles: *tick,
		MaxCycles:  *maxCyc,
		RandSeed:   *seed,
		Stdout:     os.Stdout,
	})
	sampler.Attach(m)
	res, err := m.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "exit %d, %d cycles, %d samples\n", res.ExitCode, res.Cycles, sampler.Samples())

	if *gmonOut != "" {
		// A stacks-only v3 file: the histogram is empty (stack sampling
		// needs no PC histogram) and the stack table carries everything.
		p := &gmon.Profile{
			Hist:   gmon.Histogram{Low: im.TextBase, High: im.TextBase, Step: 1},
			Hz:     gmon.DefaultHz,
			Stacks: sampler.RawStacks(),
		}
		if err := gmon.WriteFileVersion(*gmonOut, p, gmon.Version3); err != nil {
			fatal(err)
		}
	}
	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatal(err)
		}
		if err := pprofenc.Encode(f, &model.Profile{Stacks: sampler.View()}); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	// Flush explicitly and check the error: a deferred Flush would drop
	// a short write (full disk, closed pipe) on the floor.
	w := bufio.NewWriter(os.Stdout)
	if *folded {
		err = sampler.WriteFolded(w)
	} else {
		err = sampler.Write(w)
	}
	if err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func build(workload string, files []string) (*object.Image, error) {
	if workload != "" {
		return workloads.Build(workload, false)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("stackprof: no input (try -workload sort)")
	}
	var objs []*object.Object
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		obj, err := lang.Compile(name, string(src), lang.Options{})
		if err != nil {
			return nil, err
		}
		objs = append(objs, obj)
	}
	return object.Link(objs, object.LinkConfig{})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
