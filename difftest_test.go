// Differential proof that the fast interpreter loop is observationally
// equal to the reference loop over real programs: every workload in the
// suite must produce the same Result{Cycles,Ticks,Retired}, the same
// exit code, and a byte-identical gmon encoding on both loops — with
// monitoring attached and with the collector reused across Resets. The
// random-program counterpart lives in internal/vm/diff_test.go.
package repro

import (
	"bytes"
	"testing"

	"repro/internal/gmon"
	"repro/internal/mon"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// profileBytes encodes a snapshot to the gmon wire format; byte equality
// is the strongest equivalence the paper's toolchain can observe.
func profileBytes(t *testing.T, c *mon.Collector) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gmon.Write(&buf, c.Snapshot()); err != nil {
		t.Fatalf("encode profile: %v", err)
	}
	return buf.Bytes()
}

func TestFastMatchesReferenceWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		t.Run(name, func(t *testing.T) {
			im, err := workloads.Build(name, true)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			collector := mon.New(im, mon.Config{})
			m := vm.New(im, vm.Config{
				Monitor:    collector,
				TickCycles: 200,
				RandSeed:   7,
				MaxCycles:  1 << 28,
			})

			fastRes, err := m.Run()
			if err != nil {
				t.Fatalf("fast run: %v", err)
			}
			fastProf := profileBytes(t, collector)

			// Reuse the same machine and collector: Reset must restore
			// the freshly-loaded state exactly. Reset preserves the
			// enabled flag (moncontrol semantics) and a workload may
			// exit with monitoring stopped, so reuse re-enables.
			m.Reset()
			collector.Reset()
			collector.Enable()
			refRes, err := m.RunReference()
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			refProf := profileBytes(t, collector)

			if fastRes != refRes {
				t.Errorf("Result mismatch:\nfast: %+v\nref:  %+v", fastRes, refRes)
			}
			if !bytes.Equal(fastProf, refProf) {
				t.Errorf("profile bytes differ: fast %d bytes, ref %d bytes",
					len(fastProf), len(refProf))
			}

			// And the profile must survive a second fast run after Reset
			// (the benchmark driver's reuse pattern).
			m.Reset()
			collector.Reset()
			collector.Enable()
			againRes, err := m.Run()
			if err != nil {
				t.Fatalf("second fast run: %v", err)
			}
			if againRes != fastRes {
				t.Errorf("fast rerun after Reset: %+v, want %+v", againRes, fastRes)
			}
			if again := profileBytes(t, collector); !bytes.Equal(again, fastProf) {
				t.Errorf("fast rerun profile differs after Reset")
			}
		})
	}
}
