// Codegen: the paper's motivating use case (§1, §6) — "the purpose of
// the gprof profiling tool is to help the user evaluate alternative
// implementations of abstractions. We developed this tool in response to
// our efforts to improve a code generator we were writing."
//
// A toy code generator looks up operator descriptors in a symbol table.
// Version 1 implements the lookup abstraction with a linear search;
// version 2 with a binary search. The lookup abstraction spans several
// routines (compare, probe, lookup), so the flat prof-style view blurs
// it; the call graph profile attributes the whole cost to `lookup`,
// making the comparison obvious.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/symtab"
	"repro/internal/workloads"
)

const common = `
var table[256];
var nsyms;

func compare(a, b) {
	if (a < b) { return -1; }
	if (a > b) { return 1; }
	return 0;
}

func setup() {
	nsyms = 128;
	var i = 0;
	while (i < nsyms) {
		table[i] = i * 3 + 1;   // sorted keys
		i = i + 1;
	}
	return 0;
}

func emit(op) { return op & 255; }

func gen(key) {
	var desc = lookup(key);
	return emit(desc);
}

func main() {
	setup();
	var round = 0;
	var out = 0;
	while (round < 60) {
		var k = 0;
		while (k < nsyms) {
			out = (out + gen(table[k])) & 65535;
			k = k + 1;
		}
		round = round + 1;
	}
	return out & 255;
}
`

const linearLookup = `
func probe(key, i) { return compare(table[i], key); }

func lookup(key) {
	var i = 0;
	while (i < nsyms) {
		if (probe(key, i) == 0) { return table[i]; }
		i = i + 1;
	}
	return 0;
}
` + common

const binaryLookup = `
func probe(key, i) { return compare(table[i], key); }

func lookup(key) {
	var lo = 0;
	var hi = nsyms - 1;
	while (lo <= hi) {
		var mid = (lo + hi) / 2;
		var c = probe(key, mid);
		if (c == 0) { return table[mid]; }
		if (c < 0) { lo = mid + 1; }
		else { hi = mid - 1; }
	}
	return 0;
}
` + common

func profileVersion(name, src string) (float64, float64) {
	im, err := workloads.BuildSource(name, src, true)
	if err != nil {
		log.Fatal(err)
	}
	p, res, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 1000, MaxCycles: 1 << 32})
	if err != nil {
		log.Fatal(err)
	}
	result, err := core.Run(context.Background(), core.ImageSource{Image: im}, p, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s: %d cycles ===\n\n", name, res.Cycles)
	fmt.Println("prof's flat view (the abstraction is smeared across routines):")
	if err := prof.Write(os.Stdout, symtab.New(im), p); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngprof's view of the lookup abstraction:")
	result2, err := core.Run(context.Background(), core.ImageSource{Image: im}, p, core.Options{
		Report: report.Options{Focus: []string{"lookup"}, NoHeaders: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := result2.WriteCallGraph(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	lookup := result.Graph.MustNode("lookup")
	return lookup.TotalTicks() / result.Graph.TotalTicks, float64(res.Cycles)
}

func main() {
	linShare, linCycles := profileVersion("linear.tl", linearLookup)
	binShare, binCycles := profileVersion("binary.tl", binaryLookup)

	fmt.Println("=== comparison ===")
	fmt.Printf("lookup abstraction owns %.0f%% of the linear build, %.0f%% of the binary build\n",
		linShare*100, binShare*100)
	fmt.Printf("whole-program speedup from changing one abstraction: %.1fx\n",
		linCycles/binCycles)
}
