// Kernel: the retrospective's Berkeley-kernel scenario, end to end —
// profile a long-running service without stopping it, discover that a
// cycle between subsystems ruins the timing, and break it with the arc
// removal heuristic. Also demonstrates summing profiles over several
// runs (§3).
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	im, err := workloads.Build("service", true)
	if err != nil {
		log.Fatal(err)
	}

	// "The ability to sum the data over several profiled runs, to
	// accumulate enough time in short-running methods": three runs of
	// the service, merged.
	total, _, _, err := workloads.Run(im, workloads.RunConfig{Seed: 1, TickCycles: 300, MaxCycles: 1 << 32})
	if err != nil {
		log.Fatal(err)
	}
	for seed := uint64(2); seed <= 3; seed++ {
		p, _, _, err := workloads.Run(im, workloads.RunConfig{Seed: seed, TickCycles: 300, MaxCycles: 1 << 32})
		if err != nil {
			log.Fatal(err)
		}
		if err := total.Merge(p); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("merged 3 runs: %d samples, %d arcs\n\n", total.Hist.TotalTicks(), len(total.Arcs))

	// First analysis: dispatch and retry form a cycle, so their times
	// cannot be separated — the kernel problem.
	before, err := core.Run(context.Background(), core.ImageSource{Image: im}, total, core.Options{
		Report: report.Options{Focus: []string{"dispatch"}, NoHeaders: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before cycle breaking: %d cycle(s) in the graph\n", len(before.Graph.Cycles))
	if err := before.WriteCallGraph(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// "We added a heuristic to help choose arcs to remove. The
	// underlying problem is NP-complete, so we added a bound."
	after, err := core.Run(context.Background(), core.ImageSource{Image: im}, total, core.Options{
		AutoBreak:    true,
		MaxBreakArcs: 4,
		Report:       report.Options{Focus: []string{"dispatch"}, NoHeaders: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter the heuristic:")
	for i, a := range after.Suggestion.Arcs {
		fmt.Printf("  removed %s, losing only %d traversals\n", a, after.Suggestion.Counts[i])
	}
	fmt.Printf("cycles now: %d\n", len(after.Graph.Cycles))
	if err := after.WriteCallGraph(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith the cycle gone, dispatch's own cost separates from retry's.")
}
