// Multifile: separate compilation. The paper stresses that the
// monitoring-routine approach works across compilation units: "a
// monitoring routine can easily be called from separately compiled
// programs" (§3), and that large programs are often "assembled from a
// library of abstraction implementations unexamined by the programmer"
// (§1). Here a string-hashing library is compiled on its own, the
// application against its extern declarations, and the linked program
// is profiled as one call graph spanning both units.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/mon"
	"repro/internal/object"
	"repro/internal/vm"
)

// The "library": a hashing abstraction the application never looks
// inside.
const libSrc = `
var hstate;

func hinit(seed) {
	hstate = seed | 1;
	return 0;
}

func hmix(v) {
	hstate = (hstate * 31 + v) & 1048575;
	hstate = hstate ^ (hstate >> 7);
	return hstate;
}

func hfinish() {
	var i = 0;
	while (i < 8) {         // deliberate finalization cost
		hstate = hmix(i * 77);
		i = i + 1;
	}
	return hstate;
}
`

// The application, compiled against extern declarations only.
const appSrc = `
extern hinit;
extern hmix;
extern hfinish;
extern var hstate;

func digest(lo, hi) {
	hinit(lo);
	var i = lo;
	while (i < hi) {
		hmix(i);
		i = i + 1;
	}
	return hfinish();
}

func main() {
	var acc = 0;
	var block = 0;
	while (block < 40) {
		acc = (acc + digest(block * 50, block * 50 + 50)) & 65535;
		block = block + 1;
	}
	return acc & 255;
}
`

func main() {
	// Separate compilation: each unit knows nothing of the other's
	// bodies; the linker resolves the externs.
	lib, err := lang.Compile("hashlib.tl", libSrc, lang.Options{Profile: true})
	if err != nil {
		log.Fatal(err)
	}
	app, err := lang.Compile("app.tl", appSrc, lang.Options{Profile: true})
	if err != nil {
		log.Fatal(err)
	}
	im, err := object.Link([]*object.Object{app, lib}, object.LinkConfig{})
	if err != nil {
		log.Fatal(err)
	}

	collector := mon.New(im, mon.Config{})
	res, err := vm.New(im, vm.Config{Monitor: collector, TickCycles: 500}).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two units linked and profiled; exit %d after %d cycles\n\n",
		res.ExitCode, res.Cycles)

	// One call graph across both compilation units: digest (app.tl)
	// inherits the time of hmix/hfinish (hashlib.tl).
	result, err := core.Run(context.Background(), core.ImageSource{Image: im}, collector.Snapshot(), core.Options{Static: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := result.WriteAll(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
