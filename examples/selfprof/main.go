// Selfprof: "of course, among the programs on which we used the new
// profiler was the profiler itself" (§6). The Go-native collector
// (package profgo) instruments the post-processing pipeline while it
// analyzes a real profile; the resulting call-graph profile of gprof is
// rendered by gprof's own reporter.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/profgo"
	"repro/internal/workloads"
)

var p = profgo.New()

// The instrumented pipeline: each stage carries the monitoring call a
// profiling compiler would have planted in its prologue.

func buildWorkload() *object.Image {
	defer p.Enter("buildWorkload")()
	im, err := workloads.Build("sort", true)
	if err != nil {
		log.Fatal(err)
	}
	return im
}

func runWorkload(im *object.Image) *gmon.Profile {
	defer p.Enter("runWorkload")()
	prof, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 400, MaxCycles: 1 << 32})
	if err != nil {
		log.Fatal(err)
	}
	return prof
}

func analyze(im *object.Image, prof *gmon.Profile) *core.Result {
	defer p.Enter("analyze")()
	res, err := core.Run(context.Background(), core.ImageSource{Image: im}, prof, core.Options{Static: true})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func render(res *core.Result, w io.Writer) {
	defer p.Enter("render")()
	if err := res.WriteAll(w); err != nil {
		log.Fatal(err)
	}
}

func main() {
	defer func() {
		// The profiler's profile of itself, post-processed and printed
		// by the same code it measured.
		selfRes, err := core.Run(context.Background(), core.TableSource{Table: p.Table()}, p.Snapshot(), core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("==== gprof, profiled by gprof ====")
		if err := selfRes.WriteAll(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}()

	done := p.Enter("main")
	im := buildWorkload()
	prof := runWorkload(im)
	res := analyze(im, prof)
	fmt.Println("==== the workload's profile (condensed) ====")
	render(res, io.Discard) // full render measured; reprint a summary
	var flat flatOnly
	flat.res = res
	flat.print()
	done()
}

type flatOnly struct{ res *core.Result }

func (f flatOnly) print() {
	if err := f.res.WriteFlat(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
