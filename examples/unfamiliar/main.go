// Unfamiliar: the paper's §6 walkthrough — "a completely different use
// of the profiler is to analyze the control flow of an unfamiliar
// program." You need to change the output format of a program you did
// not write; you look at the profile entry for the WRITE routine, find
// its parents FORMAT1 and FORMAT2, and trace upward to CALC1/2/3 to
// decide which formatter to split.
//
// The program below has exactly the call structure of the paper's
// diagram:
//
//	CALC1   CALC2   CALC3
//	    \   /   \   /
//	   FORMAT1  FORMAT2
//	        \    /
//	        WRITE
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

const program = `
var out;

func write(v) {
	var i = 0;
	while (i < 20) { out = (out * 17 + v) & 65535; i = i + 1; }
	return 0;
}

func format1(v) { return write(v * 2 + 1); }
func format2(v) { return write(v * 3 + 7); }

func calc1(n) {
	var i = 0;
	while (i < n) { format1(i); i = i + 1; }
	return 0;
}

func calc2(n) {
	var i = 0;
	while (i < n) { format1(i * 2); format2(i); i = i + 1; }
	return 0;
}

func calc3(n) {
	var i = 0;
	while (i < n) { format2(i + 5); i = i + 1; }
	return 0;
}

func main() {
	calc1(40);
	calc2(60);
	calc3(80);
	return out & 255;
}
`

func main() {
	im, err := workloads.BuildSource("unfamiliar.tl", program, true)
	if err != nil {
		log.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 500, MaxCycles: 1 << 32})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1 (paper): "Initially you look through the gprof output for
	// the system call WRITE" — focus on write and its parents.
	fmt.Println("step 1: the entry for write — its parents are the formatters")
	res, err := core.Run(context.Background(), core.ImageSource{Image: im}, p, core.Options{
		Report: report.Options{Focus: []string{"write"}, NoHeaders: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteCallGraph(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Step 2: "look at the profile entry for each of the parents of
	// WRITE" — format2's parents are calc2 and calc3.
	fmt.Println("\nstep 2: the entry for format2 — calc2 and calc3 both call it")
	res2, err := core.Run(context.Background(), core.ImageSource{Image: im}, p, core.Options{
		Report: report.Options{Focus: []string{"format2"}, NoHeaders: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := res2.WriteCallGraph(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Step 3 (paper): to change calc2's output but not calc3's, format2
	// must be split, "retargeting just the call by CALC2". The static
	// call graph confirms every potential caller even in runs that do
	// not exercise the whole program.
	fmt.Println("\nstep 3: the arc counts above show which calls to retarget:")
	g := res2.Graph
	f2 := g.MustNode("format2")
	for _, a := range f2.In {
		if !a.Spontaneous() {
			fmt.Printf("  %s calls format2 %d time(s)\n", a.Caller.Name, a.Count)
		}
	}
	fmt.Println("splitting format2 and retargeting calc2's call changes only calc2's output.")
}
