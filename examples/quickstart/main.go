// Quickstart: compile a small program with profiling, run it on the
// simulated machine, and print the gprof report — the complete §3-§5
// pipeline in one file.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/mon"
	"repro/internal/object"
	"repro/internal/vm"
)

// The program under test: a tiny pipeline where `process` spends its
// time inside the `checksum` abstraction.
const program = `
var buffer[64];

func fill(seed) {
	var i = 0;
	while (i < 64) {
		buffer[i] = (seed * 31 + i * 7) & 255;
		i = i + 1;
	}
	return 0;
}

func checksum() {
	var i = 0;
	var sum = 0;
	while (i < 64) {
		var j = 0;
		while (j < 16) {     // deliberately slow inner loop
			sum = (sum * 33 + buffer[i]) & 65535;
			j = j + 1;
		}
		i = i + 1;
	}
	return sum;
}

func process(round) {
	fill(round);
	return checksum();
}

func main() {
	var total = 0;
	var round = 0;
	while (round < 50) {
		total = (total + process(round)) & 65535;
		round = round + 1;
	}
	return total;
}
`

func main() {
	// 1. Compile with profiling: every prologue gets a monitoring call.
	obj, err := lang.Compile("quickstart.tl", program, lang.Options{Profile: true})
	if err != nil {
		log.Fatal(err)
	}
	im, err := object.Link([]*object.Object{obj}, object.LinkConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run with the monitoring runtime attached: it gathers call-graph
	// arcs at every prologue and histogram samples at every clock tick.
	collector := mon.New(im, mon.Config{})
	res, err := vm.New(im, vm.Config{Monitor: collector, TickCycles: 2000}).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program exited %d after %d simulated cycles\n\n", res.ExitCode, res.Cycles)

	// 3. Post-process: build the call graph, collapse cycles, propagate
	// time, and render the profile.
	result, err := core.Run(context.Background(), core.ImageSource{Image: im}, collector.Snapshot(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := result.WriteAll(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
