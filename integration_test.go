// Integration tests: the end-to-end workflows a user of the tools walks
// through, at the library level — compile, link, save the executable,
// run profiled, write gmon.out, read both back, post-process, render.
package repro

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/symtab"
	"repro/internal/workloads"
)

// TestToolWorkflow is the vmrun -p → gprof round trip through real
// files.
func TestToolWorkflow(t *testing.T) {
	dir := t.TempDir()
	exe := filepath.Join(dir, "a.out")
	data := filepath.Join(dir, "gmon.out")

	// vmrun -p -workload sort -save a.out -o gmon.out
	im, err := workloads.Build("sort", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := object.WriteImageFile(exe, im); err != nil {
		t.Fatal(err)
	}
	p, res, _, err := workloads.Run(im, workloads.RunConfig{Seed: 4, TickCycles: 400, MaxCycles: 1 << 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 1 {
		t.Fatalf("sort exited %d, want 1", res.ExitCode)
	}
	if err := gmon.WriteFile(data, p); err != nil {
		t.Fatal(err)
	}

	// gprof a.out gmon.out
	im2, err := object.ReadImageFile(exe)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := gmon.ReadFiles([]string{data})
	if err != nil {
		t.Fatal(err)
	}
	result, err := core.Run(context.Background(), core.ImageSource{Image: im2}, p2, core.Options{Static: true})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := result.WriteAll(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"call graph profile", "flat profile", "index by function name",
		"qsort", "partition", "less", "swap",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// The same data through prof (the baseline tool).
	var profOut bytes.Buffer
	if err := prof.Write(&profOut, symtab.New(im2), p2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(profOut.String(), "ms/call") {
		t.Error("prof output malformed")
	}
}

// TestMultiRunWorkflow: several gmon files summed by the reader.
func TestMultiRunWorkflow(t *testing.T) {
	dir := t.TempDir()
	im, err := workloads.Build("matrix", true)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	var singleTicks int64
	for i := 0; i < 3; i++ {
		p, _, _, err := workloads.Run(im, workloads.RunConfig{Seed: 5, TickCycles: 500, MaxCycles: 1 << 32})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			singleTicks = p.Hist.TotalTicks()
		}
		f := filepath.Join(dir, "gmon."+string(rune('0'+i)))
		if err := gmon.WriteFile(f, p); err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	total, err := gmon.ReadFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	if got := total.Hist.TotalTicks(); got != 3*singleTicks {
		t.Errorf("merged ticks = %d, want %d", got, 3*singleTicks)
	}
	if _, err := core.Run(context.Background(), core.ImageSource{Image: im}, total, core.Options{}); err != nil {
		t.Errorf("merged profile analysis: %v", err)
	}
}

// TestProfiledRunPreservesBehaviour: for every workload, the profiled
// build computes the same answer and emits data that analyzes cleanly
// with every post-processing option combination.
func TestProfiledRunPreservesBehaviour(t *testing.T) {
	for _, name := range workloads.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			im, err := workloads.Build(name, true)
			if err != nil {
				t.Fatal(err)
			}
			p, _, _, err := workloads.Run(im, workloads.RunConfig{Seed: 11, TickCycles: 700, MaxCycles: 1 << 32})
			if err != nil {
				t.Fatal(err)
			}
			for _, opt := range []core.Options{
				{},
				{Static: true},
				{AutoBreak: true},
				{Static: true, AutoBreak: true},
				{Report: report.Options{MinPercent: 10}},
			} {
				res, err := core.Run(context.Background(), core.ImageSource{Image: im}, p, opt)
				if err != nil {
					t.Fatalf("options %+v: %v", opt, err)
				}
				var buf bytes.Buffer
				if err := res.WriteAll(&buf); err != nil {
					t.Fatalf("render with %+v: %v", opt, err)
				}
				if buf.Len() == 0 {
					t.Fatalf("empty report with %+v", opt)
				}
			}
		})
	}
}

// TestGranularitySweep: coarser histograms still conserve total time.
func TestGranularitySweep(t *testing.T) {
	im, err := workloads.Build("hash", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, gran := range []int64{1, 2, 8, 32, 128} {
		p, _, _, err := workloads.Run(im, workloads.RunConfig{
			Granularity: gran, TickCycles: 400, MaxCycles: 1 << 32,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(context.Background(), core.ImageSource{Image: im}, p, core.Options{})
		if err != nil {
			t.Fatalf("granularity %d: %v", gran, err)
		}
		var selfSum float64
		for _, n := range res.Graph.Nodes() {
			selfSum += n.SelfTicks
		}
		diff := selfSum + res.Graph.LostTicks - res.Graph.TotalTicks
		if diff > 1e-6 || diff < -1e-6 {
			t.Errorf("granularity %d: conservation off by %v", gran, diff)
		}
	}
}

// TestReportDeterminism: the same profile analyzed twice renders
// byte-identical reports — no map-iteration order leaks into output.
func TestReportDeterminism(t *testing.T) {
	im, err := workloads.Build("service", true)
	if err != nil {
		t.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 300, MaxCycles: 1 << 32})
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		res, err := core.Run(context.Background(), core.ImageSource{Image: im}, p.Clone(), core.Options{Static: true, AutoBreak: true})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteAll(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Error("two renders of the same profile differ")
	}
}

// TestZeroTickProfile: a program too fast to receive any clock tick
// still produces a usable report (call counts are exact even when the
// histogram is empty).
func TestZeroTickProfile(t *testing.T) {
	src := `
func leaf() { return 1; }
func main() { return leaf(); }`
	im, err := workloads.BuildSource("fast.tl", src, true)
	if err != nil {
		t.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if p.Hist.TotalTicks() != 0 {
		t.Fatalf("expected no ticks, got %d", p.Hist.TotalTicks())
	}
	res, err := core.Run(context.Background(), core.ImageSource{Image: im}, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.MustNode("leaf").Calls() != 1 {
		t.Error("call counts lost without histogram samples")
	}
	var buf bytes.Buffer
	if err := res.WriteAll(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "leaf") {
		t.Error("report unusable without samples")
	}
}

// TestConcurrentAnalyses drives the parallel pipeline stages — profile
// merging, histogram attribution, propagation — from several goroutines
// sharing one cache, so `go test -race` sweeps the new concurrency for
// unsynchronized access.
func TestConcurrentAnalyses(t *testing.T) {
	images := map[string]*object.Image{}
	profiles := map[string][]*gmon.Profile{}
	for _, name := range []string{"sort", "parser", "service"} {
		im, err := workloads.Build(name, true)
		if err != nil {
			t.Fatal(err)
		}
		images[name] = im
		for seed := uint64(1); seed <= 4; seed++ {
			p, _, _, err := workloads.Run(im, workloads.RunConfig{Seed: seed, TickCycles: 500, MaxCycles: 1 << 30})
			if err != nil {
				t.Fatal(err)
			}
			profiles[name] = append(profiles[name], p)
		}
	}
	cache := core.NewCache(2) // smaller than the working set: eviction under contention
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for round := 0; round < 3; round++ {
		for name := range images {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				merged, err := gmon.MergeAll(context.Background(), profiles[name], 4)
				if err != nil {
					errs <- err
					return
				}
				res, err := core.Run(context.Background(), core.ImageSource{Image: images[name]}, merged,
					core.Options{Static: true, Jobs: 4, Cache: cache})
				if err != nil {
					errs <- err
					return
				}
				var buf bytes.Buffer
				if err := res.WriteAll(&buf); err != nil {
					errs <- err
				}
			}(name)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	hits, misses := cache.Stats()
	if hits+misses == 0 {
		t.Error("cache never consulted")
	}
}
