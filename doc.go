// Package repro is a complete reproduction of "gprof: a Call Graph
// Execution Profiler" (Graham, Kessler, McKusick, SIGPLAN '82) and its
// 2003 retrospective, built from scratch in stdlib-only Go.
//
// The profiler and every substrate it needs live under internal/: a
// small machine (isa, vm), an assembler and compiler that plant the
// monitoring-routine prologues (asm, lang), object files and a linker
// with a static-call-graph scanner (object), the monitoring runtime and
// profile file format (mon, gmon), and the post-processing pipeline —
// symbol attribution, call-graph assembly, Tarjan SCC with topological
// numbering, time propagation, cycle breaking, and the classic two-part
// report (symtab, callgraph, scc, propagate, cyclebreak, report, core).
// The prof(1) baseline (prof), a Go-native self-profiling collector
// (profgo), and the whole-call-stack sampler that superseded gprof
// (stacksample) complete the paper's before-and-after story.
//
// Command-line tools are under cmd/ (vmrun, gprof, prof, kprof,
// stackprof, disasm, figures), runnable examples under examples/, and
// the reproduced figures and claims are indexed in DESIGN.md and
// recorded in EXPERIMENTS.md. The benchmarks and integration tests in
// this directory regenerate the paper's quantitative artifacts.
package repro
