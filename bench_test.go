// Benchmarks regenerating the paper's quantitative artifacts (see
// DESIGN.md §4 for the experiment index). Each benchmark reports the
// domain metric the paper talks about — simulated cycles, overhead
// percent, probes per call — alongside Go's wall-clock numbers.
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/core"
	"repro/internal/cyclebreak"
	"repro/internal/experiments"
	"repro/internal/gmon"
	"repro/internal/lang"
	"repro/internal/model"
	"repro/internal/mon"
	"repro/internal/object"
	"repro/internal/propagate"
	"repro/internal/report"
	"repro/internal/scc"
	"repro/internal/stacksample"
	"repro/internal/symtab"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// --- E1: profiling overhead (paper §7: 5-30%) ------------------------

func BenchmarkOverhead(b *testing.B) {
	for _, name := range workloads.Names() {
		if name == "service" || name == "unequal" {
			continue
		}
		plainIm, err := workloads.Build(name, false)
		if err != nil {
			b.Fatal(err)
		}
		profIm, err := workloads.Build(name, true)
		if err != nil {
			b.Fatal(err)
		}
		var plainCycles, profCycles int64
		b.Run(name+"/plain", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := workloads.RunPlain(plainIm, workloads.RunConfig{Seed: 9, MaxCycles: 1 << 32})
				if err != nil {
					b.Fatal(err)
				}
				plainCycles = res.Cycles
			}
			b.ReportMetric(float64(plainCycles), "simcycles")
		})
		b.Run(name+"/profiled", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, res, _, err := workloads.Run(profIm, workloads.RunConfig{Seed: 9, MaxCycles: 1 << 32})
				if err != nil {
					b.Fatal(err)
				}
				profCycles = res.Cycles
			}
			b.ReportMetric(float64(profCycles), "simcycles")
			if plainCycles > 0 {
				b.ReportMetric(100*float64(profCycles-plainCycles)/float64(plainCycles), "overhead%")
			}
		})
	}
}

// --- E9: arc-table keying ablation (paper §3.1) ----------------------

func benchmarkArcHash(b *testing.B, strategy mon.Strategy) {
	im, err := workloads.Build("fanin", true)
	if err != nil {
		b.Fatal(err)
	}
	var probes, calls int64
	for i := 0; i < b.N; i++ {
		_, _, c, err := workloads.Run(im, workloads.RunConfig{Strategy: strategy, MaxCycles: 1 << 32})
		if err != nil {
			b.Fatal(err)
		}
		probes, calls = c.Stats().Probes, c.Stats().McountCalls
	}
	b.ReportMetric(float64(probes)/float64(calls), "probes/call")
}

func BenchmarkArcHashSiteKeyed(b *testing.B)   { benchmarkArcHash(b, mon.SiteKeyed) }
func BenchmarkArcHashCalleeKeyed(b *testing.B) { benchmarkArcHash(b, mon.CalleeKeyed) }

// BenchmarkMcountFastPath measures the monitoring routine itself: the
// repeated-arc fast path the paper needed "as fast as possible".
func BenchmarkMcountFastPath(b *testing.B) {
	im, err := workloads.Build("sort", true)
	if err != nil {
		b.Fatal(err)
	}
	c := mon.New(im, mon.Config{})
	site, callee := im.TextBase+10, im.TextBase+100
	c.Mcount(callee, site) // insert once
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Mcount(callee, site)
	}
}

// --- F1/F2: SCC + topological numbering scaling ----------------------

func randomGraph(n int, degree float64, seed int64) *callgraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := callgraph.New()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
		g.AddNode(names[i])
		g.MustNode(names[i]).SelfTicks = float64(rng.Intn(100))
	}
	edges := int(float64(n) * degree)
	for i := 0; i < edges; i++ {
		from, to := rng.Intn(n), rng.Intn(n)
		if from != to {
			g.AddArc(names[from], names[to], int64(rng.Intn(20)+1))
		}
	}
	return g
}

func BenchmarkTopoNumbering(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		g := randomGraph(n, 3, 42)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				scc.Analyze(g)
			}
			b.ReportMetric(float64(len(g.Cycles)), "cycles")
		})
	}
}

// --- §4: time propagation scaling -------------------------------------

func BenchmarkPropagate(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		g := randomGraph(n, 3, 43)
		scc.Analyze(g)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				propagate.Run(g)
			}
		})
	}
}

// --- end-to-end post-processing (what `gprof a.out gmon.out` does) ---

func BenchmarkAnalyzePipeline(b *testing.B) {
	im, err := workloads.Build("sort", true)
	if err != nil {
		b.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 300, MaxCycles: 1 << 32})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(context.Background(), core.ImageSource{Image: im}, p, core.Options{Static: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F4: rendering the call graph profile ----------------------------

func BenchmarkReportCallGraph(b *testing.B) {
	im, err := workloads.Build("sort", true)
	if err != nil {
		b.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 300, MaxCycles: 1 << 32})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Run(context.Background(), core.ImageSource{Image: im}, p, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := res.WriteCallGraph(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- profile model: build and JSON encode ----------------------------

// BenchmarkModelBuild times condensing an analyzed graph into the
// serializable profile model — the step core.Run added between
// propagation and rendering.
func BenchmarkModelBuild(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		g := randomGraph(n, 3, 43)
		scc.Analyze(g)
		propagate.Run(g)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				model.Build(g)
			}
		})
	}
}

// BenchmarkModelJSONEncode times serializing the model (gprof -json).
func BenchmarkModelJSONEncode(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		g := randomGraph(n, 3, 43)
		scc.Analyze(g)
		propagate.Run(g)
		m := model.Build(g)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := model.Encode(io.Discard, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: gmon encode/decode/merge -------------------------------------

func syntheticProfile(arcs int) *gmon.Profile {
	p := &gmon.Profile{
		Hist: gmon.Histogram{Low: 0x1000, High: 0x1000 + int64(4*arcs), Step: 1,
			Counts: make([]uint32, 4*arcs)},
		Hz: 60,
	}
	for i := 0; i < arcs; i++ {
		p.Arcs = append(p.Arcs, gmon.Arc{
			FromPC: 0x1000 + int64(i), SelfPC: 0x1000 + int64(2*i), Count: int64(i%97 + 1),
		})
		p.Hist.Counts[i] = uint32(i % 13)
	}
	return p
}

func BenchmarkGmonRoundTrip(b *testing.B) {
	p := syntheticProfile(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := gmon.Write(&buf, p); err != nil {
			b.Fatal(err)
		}
		if _, err := gmon.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// workloadProfiles runs every workload once under the profiler and
// caches the collected profiles with their v1 and v2 encodings, so the
// codec benchmarks below measure real profile shapes, not synthetic
// ones.
var (
	suiteOnce sync.Once
	suiteErr  error
	suiteP    []*gmon.Profile
	suiteEnc  map[int][][]byte // format version -> per-workload encoding
)

func workloadProfiles(b *testing.B) ([]*gmon.Profile, map[int][][]byte) {
	suiteOnce.Do(func() {
		suiteEnc = map[int][][]byte{}
		for _, name := range workloads.Names() {
			im, err := workloads.Build(name, true)
			if err != nil {
				suiteErr = err
				return
			}
			p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 300, MaxCycles: 1 << 32})
			if err != nil {
				suiteErr = err
				return
			}
			suiteP = append(suiteP, p)
			var buf bytes.Buffer
			if err := gmon.Write(&buf, p); err != nil {
				suiteErr = err
				return
			}
			suiteEnc[gmon.Version1] = append(suiteEnc[gmon.Version1], append([]byte(nil), buf.Bytes()...))
			buf.Reset()
			if err := gmon.WriteV2(&buf, p); err != nil {
				suiteErr = err
				return
			}
			suiteEnc[gmon.Version2] = append(suiteEnc[gmon.Version2], append([]byte(nil), buf.Bytes()...))
		}
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suiteP, suiteEnc
}

// BenchmarkGmonRead decodes every workload profile in both format
// versions — the hot loop of gprof startup when summing many runs.
func BenchmarkGmonRead(b *testing.B) {
	_, enc := workloadProfiles(b)
	for _, version := range []int{gmon.Version1, gmon.Version2} {
		encs := enc[version]
		var total int64
		for _, e := range encs {
			total += int64(len(e))
		}
		b.Run(fmt.Sprintf("v%d", version), func(b *testing.B) {
			b.SetBytes(total)
			var p gmon.Profile
			for i := 0; i < b.N; i++ {
				for _, e := range encs {
					if err := gmon.ReadInto(bytes.NewReader(e), &p); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkGmonWrite encodes every workload profile in both format
// versions.
func BenchmarkGmonWrite(b *testing.B) {
	ps, enc := workloadProfiles(b)
	for _, version := range []int{gmon.Version1, gmon.Version2} {
		var total int64
		for _, e := range enc[version] {
			total += int64(len(e))
		}
		b.Run(fmt.Sprintf("v%d", version), func(b *testing.B) {
			b.SetBytes(total)
			for i := 0; i < b.N; i++ {
				for _, p := range ps {
					if err := gmon.WriteVersion(io.Discard, p, version); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkMergeAll sums 16 on-disk copies of a workload profile
// through the streaming merge (4 workers), in both format versions —
// the full decode+merge path behind `gprof a.out gmon.out.*`.
func BenchmarkMergeAll(b *testing.B) {
	ps, _ := workloadProfiles(b)
	p := ps[0]
	for _, version := range []int{gmon.Version1, gmon.Version2} {
		b.Run(fmt.Sprintf("v%d", version), func(b *testing.B) {
			dir := b.TempDir()
			names := make([]string, 16)
			for i := range names {
				names[i] = filepath.Join(dir, fmt.Sprintf("gmon.%d", i))
				if err := gmon.WriteFileVersion(names[i], p, version); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gmon.MergeAllStreaming(context.Background(), names, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGmonMerge(b *testing.B) {
	p := syntheticProfile(2000)
	q := syntheticProfile(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := p.Clone()
		if err := total.Merge(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: cycle-breaking heuristic --------------------------------------

func BenchmarkCycleBreak(b *testing.B) {
	// A graph with several cycles closed by low-count arcs.
	g := randomGraph(400, 4, 44)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sug := cyclebreak.Suggest(g, cyclebreak.Options{MaxArcs: 50})
		if len(sug.Arcs) == 0 {
			b.Fatal("nothing suggested on a cyclic graph")
		}
	}
}

// --- E8: stack sampling vs arc counting -------------------------------

func BenchmarkStackSampling(b *testing.B) {
	im, err := workloads.Build("unequal", false)
	if err != nil {
		b.Fatal(err)
	}
	tab := symtab.New(im)
	for i := 0; i < b.N; i++ {
		s := stacksample.New(tab)
		m := vm.New(im, vm.Config{Monitor: s, TickCycles: 200, MaxCycles: 1 << 32})
		s.Attach(m)
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate benchmarks ---------------------------------------------

func BenchmarkCompile(b *testing.B) {
	src, _ := workloads.Source("parser")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lang.Compile("parser.tl", src, lang.Options{Profile: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVMExecution(b *testing.B) {
	im, err := workloads.Build("matrix", false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var retired int64
	for i := 0; i < b.N; i++ {
		res, err := vm.New(im, vm.Config{MaxCycles: 1 << 32}).Run()
		if err != nil {
			b.Fatal(err)
		}
		retired = res.Retired
	}
	b.ReportMetric(float64(retired), "instructions")
}

func BenchmarkImageIO(b *testing.B) {
	im, err := workloads.Build("sort", true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := object.WriteImage(&buf, im); err != nil {
			b.Fatal(err)
		}
		if _, err := object.ReadImage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- histogram granularity ablation ------------------------------------

func BenchmarkGranularity(b *testing.B) {
	im, err := workloads.Build("sort", true)
	if err != nil {
		b.Fatal(err)
	}
	tab := symtab.New(im)
	// Baseline: exact attribution at one-to-one granularity (the
	// paper's "full 32-bit count for each possible program counter
	// value").
	base, _, _, err := workloads.Run(im, workloads.RunConfig{
		Granularity: 1, TickCycles: 300, MaxCycles: 1 << 32,
	})
	if err != nil {
		b.Fatal(err)
	}
	exact, _ := tab.AttributeHist(&base.Hist)
	total := float64(base.Hist.TotalTicks())
	for _, gran := range []int64{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("words=%d", gran), func(b *testing.B) {
			var blur float64
			for i := 0; i < b.N; i++ {
				p, _, _, err := workloads.Run(im, workloads.RunConfig{
					Granularity: gran, TickCycles: 300, MaxCycles: 1 << 32,
				})
				if err != nil {
					b.Fatal(err)
				}
				// Attribution blur vs the exact baseline: half the L1
				// distance of the per-routine tick vectors, as a
				// percentage of the run. Coarse buckets straddling
				// routine boundaries smear time proportionally.
				ticks, _ := tab.AttributeHist(&p.Hist)
				var l1 float64
				for name, v := range exact {
					d := v - ticks[name]
					if d < 0 {
						d = -d
					}
					l1 += d
				}
				blur = 100 * l1 / 2 / total
			}
			b.ReportMetric(blur, "blur%")
		})
	}
}

// --- report filtering -------------------------------------------------

func BenchmarkReportFiltered(b *testing.B) {
	im, err := workloads.Build("sort", true)
	if err != nil {
		b.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 300, MaxCycles: 1 << 32})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Run(context.Background(), core.ImageSource{Image: im}, p, core.Options{
		Report: report.Options{Focus: []string{"partition"}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := res.WriteCallGraph(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11: inline expansion ---------------------------------------------

func BenchmarkInlineAblation(b *testing.B) {
	src := `
func format(d) { return (d * 100) / 7 + d % 13; }
func output(d) { return format(d) & 255; }
func main() {
	var out = 0;
	var i = 0;
	while (i < 400) {
		out = (out + output(i)) & 65535;
		i = i + 1;
	}
	return out;
}`
	for _, inline := range []bool{false, true} {
		name := "calls"
		if inline {
			name = "inlined"
		}
		b.Run(name, func(b *testing.B) {
			obj, err := lang.Compile("bench.tl", src, lang.Options{Inline: inline})
			if err != nil {
				b.Fatal(err)
			}
			im, err := object.Link([]*object.Object{obj}, object.LinkConfig{})
			if err != nil {
				b.Fatal(err)
			}
			var cycles int64
			for i := 0; i < b.N; i++ {
				res, err := vm.New(im, vm.Config{MaxCycles: 1 << 30}).Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "simcycles")
		})
	}
}

// --- §2: per-line presentation ------------------------------------------

func BenchmarkLineProfile(b *testing.B) {
	im, err := workloads.Build("sort", true)
	if err != nil {
		b.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 300, MaxCycles: 1 << 32})
	if err != nil {
		b.Fatal(err)
	}
	src, _ := workloads.Source("sort")
	reader := report.MapSource{"sort.tl": src}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := report.LineProfile(&buf, im, p, reader); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §3.2: sampling interval vs attribution accuracy --------------------

// BenchmarkSamplingInterval reproduces §3.2's tension: sample too often
// and the interruptions dominate; too rarely and "the distribution of
// the samples" stops representing the distribution of time. Attribution
// error is measured against the finest interval's per-routine shares.
func BenchmarkSamplingInterval(b *testing.B) {
	im, err := workloads.Build("sort", true)
	if err != nil {
		b.Fatal(err)
	}
	tab := symtab.New(im)
	shares := func(tick int64) (map[string]float64, int64) {
		p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: tick, MaxCycles: 1 << 32})
		if err != nil {
			b.Fatal(err)
		}
		ticks, _ := tab.AttributeHist(&p.Hist)
		total := ticks.Total()
		out := make(map[string]float64, len(ticks))
		if total > 0 {
			for name, v := range ticks {
				out[name] = v / total
			}
		}
		return out, p.Hist.TotalTicks()
	}
	exact, _ := shares(50) // ~160k samples: the reference distribution
	for _, tick := range []int64{200, 2000, 20000, 200000} {
		b.Run(fmt.Sprintf("tick=%d", tick), func(b *testing.B) {
			var errPct float64
			var samples int64
			for i := 0; i < b.N; i++ {
				got, n := shares(tick)
				samples = n
				var l1 float64
				for name, v := range exact {
					d := v - got[name]
					if d < 0 {
						d = -d
					}
					l1 += d
				}
				errPct = 100 * l1 / 2
			}
			b.ReportMetric(errPct, "err%")
			b.ReportMetric(float64(samples), "samples")
		})
	}
}

// --- parallel pipeline stages (the -jobs flag) -----------------------

// BenchmarkMergeParallel measures the tree-parallel fan-in merge of 16
// profiles at several worker-pool widths (jobs=1 is the sequential
// fold). The acceptance target is >= 1.5x at 4 workers on a
// multi-core host.
func BenchmarkMergeParallel(b *testing.B) {
	ps := make([]*gmon.Profile, 16)
	for i := range ps {
		ps[i] = syntheticProfile(20000)
	}
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gmon.MergeAll(context.Background(), ps, jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAttributeParallel measures the sharded histogram-sample
// attribution against the serial scan.
func BenchmarkAttributeParallel(b *testing.B) {
	const nsyms = 2000
	syms := make([]object.Sym, nsyms)
	for i := range syms {
		syms[i] = object.Sym{Name: fmt.Sprintf("f%d", i), Addr: int64(i * 64), Size: 64}
	}
	tab := symtab.FromSyms(syms)
	h := &gmon.Histogram{Low: 0, High: nsyms * 64, Step: 1, Counts: make([]uint32, nsyms*64)}
	for i := range h.Counts {
		h.Counts[i] = uint32(i % 7)
	}
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tab.AttributeHistN(h, jobs)
			}
		})
	}
}

// BenchmarkPropagateParallel measures the level-scheduled propagation
// against the serial topological traversal.
func BenchmarkPropagateParallel(b *testing.B) {
	g := randomGraph(10000, 3, 43)
	scc.Analyze(g)
	for _, jobs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := propagate.RunCtx(context.Background(), g, jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeCached measures repeated analyses of one executable
// with and without the static-layer cache (the kprof extract-repeatedly
// pattern).
func BenchmarkAnalyzeCached(b *testing.B) {
	im, err := workloads.Build("sort", true)
	if err != nil {
		b.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 300, MaxCycles: 1 << 32})
	if err != nil {
		b.Fatal(err)
	}
	src := core.ImageSource{Image: im}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(context.Background(), src, p, core.Options{Static: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := core.NewCache(0)
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(context.Background(), src, p, core.Options{Static: true, Cache: cache}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- fast-path execution engine ----------------------------------------

// BenchmarkDispatch compares the two interpreter loops over the whole
// workload suite (plain builds, machines reused via Reset, so decoding
// is outside the timed region). The fast loop's deadline batching and
// inlined memory paths must keep it well ahead of the per-instruction
// reference loop; the differential tests pin the two to identical
// behaviour, so this is a pure dispatch-cost comparison.
func BenchmarkDispatch(b *testing.B) {
	names := workloads.Names()
	machines := make([]*vm.Machine, len(names))
	for i, name := range names {
		im, err := workloads.Build(name, false)
		if err != nil {
			b.Fatal(err)
		}
		machines[i] = vm.New(im, vm.Config{MaxCycles: 1 << 32})
	}
	for _, loop := range []string{"fast", "reference"} {
		b.Run(loop, func(b *testing.B) {
			var instr int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				instr = 0
				for _, m := range machines {
					m.Reset()
					var (
						res vm.Result
						err error
					)
					if loop == "reference" {
						res, err = m.RunReference()
					} else {
						res, err = m.Run()
					}
					if err != nil {
						b.Fatal(err)
					}
					instr += res.Retired
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(instr), "instructions")
			if instr > 0 && b.N > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(instr), "ns/instr")
			}
		})
	}
}

// BenchmarkWorkloadSuite times the parallel bench driver end to end —
// the exact code path cmd/benchjson uses to produce BENCH_*.json — and
// republishes its headline domain metrics.
func BenchmarkWorkloadSuite(b *testing.B) {
	var rows []experiments.WorkloadBench
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.BenchSuite(experiments.BenchConfig{Iters: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var over, hit, probes float64
	for _, r := range rows {
		over += r.OverheadPct
		hit += r.CacheHitRate
		probes += r.ProbesPerCall
	}
	n := float64(len(rows))
	b.ReportMetric(over/n, "avg-overhead-%")
	b.ReportMetric(hit/n, "avg-cache-hit-rate")
	b.ReportMetric(probes/n, "avg-probes/call")
}

// --- PR9: whole-stack sampling as a first-class sample kind -----------

// BenchmarkStackCollect measures the tick-time frame walk plus intern
// on a real machine mid-run: the steady-state cost every stack-enabled
// tick pays.
func BenchmarkStackCollect(b *testing.B) {
	im, err := workloads.Build("sort", false)
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(im, vm.Config{MaxCycles: 1 << 20})
	// Run into the cycle limit on purpose: the machine halts mid-call
	// with live frames, giving the walker a realistic stack.
	_, _ = m.Run()
	col := mon.NewStackCollector(m, 0)
	pc := im.TextBase
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		col.Record(pc)
	}
	b.StopTimer()
	if col.Samples() != int64(b.N) {
		b.Fatalf("recorded %d of %d samples", col.Samples(), b.N)
	}
}

// BenchmarkGmonV3ReadWrite round-trips stack-carrying profiles through
// the v3 codec — the wire cost whole-stack sampling adds to ingest.
func BenchmarkGmonV3ReadWrite(b *testing.B) {
	im, err := workloads.Build("sort", true)
	if err != nil {
		b.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{Seed: 5, Stacks: true})
	if err != nil {
		b.Fatal(err)
	}
	if len(p.Stacks) == 0 {
		b.Fatal("no stacks collected")
	}
	var buf bytes.Buffer
	if err := gmon.WriteVersion(&buf, p, gmon.Version3); err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	b.Run("write", func(b *testing.B) {
		b.SetBytes(int64(len(enc)))
		for i := 0; i < b.N; i++ {
			if err := gmon.WriteVersion(io.Discard, p, gmon.Version3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		b.SetBytes(int64(len(enc)))
		var q gmon.Profile
		for i := 0; i < b.N; i++ {
			if err := gmon.ReadInto(bytes.NewReader(enc), &q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFoldedRender builds the Stacks view's folded rendering from
// an analyzed profile — the /v1/folded hot path after the analysis
// cache hits.
func BenchmarkFoldedRender(b *testing.B) {
	im, err := workloads.Build("sort", true)
	if err != nil {
		b.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{Seed: 5, Stacks: true})
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.Run(context.Background(), core.ImageSource{Image: im}, p, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := report.Folded(io.Discard, res.Model); err != nil {
			b.Fatal(err)
		}
	}
}
