// Acceptance tests for the profile data format versions: the
// compressed version-2 layout must decode to the same profile as
// version 1 and be strictly smaller on every workload in the suite.
package repro

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/gmon"
	"repro/internal/workloads"
)

func TestGmonV2SmallerThanV1OnWorkloads(t *testing.T) {
	for _, name := range workloads.Names() {
		im, err := workloads.Build(name, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 300, MaxCycles: 1 << 32})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var v1, v2 bytes.Buffer
		if err := gmon.Write(&v1, p); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := gmon.WriteV2(&v2, p); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v2.Len() >= v1.Len() {
			t.Errorf("%s: v2 is %d bytes, v1 is %d — no win", name, v2.Len(), v1.Len())
		} else {
			t.Logf("%s: v1 %d bytes -> v2 %d bytes (%.0f%%)",
				name, v1.Len(), v2.Len(), 100*float64(v2.Len())/float64(v1.Len()))
		}
		// Both versions must decode to the same profile (v2 in
		// canonical sorted-arc order).
		canon := p.Clone()
		canon.SortArcs()
		got, err := gmon.Read(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatalf("%s: decode v2: %v", name, err)
		}
		if !reflect.DeepEqual(got, canon) {
			t.Errorf("%s: v2 decodes to a different profile", name)
		}
	}
}
