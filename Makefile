# Tier-1: the gate every change must keep green.
.PHONY: check
check:
	go build ./... && go test ./...

# Tier-1.5: static analysis plus the race detector over the parallel
# pipeline stages (profile merging, histogram attribution, propagation,
# the shared static-layer cache).
.PHONY: race
race:
	go vet ./... && go test -race ./...

.PHONY: bench
bench:
	go test -bench=. -benchmem ./...

# Parallel-stage benchmarks only: the -jobs scaling story.
.PHONY: bench-parallel
bench-parallel:
	go test -run xxx -bench 'Parallel|AnalyzeCached' .

# Quick bench sanity pass for CI: every benchmark runs exactly once.
.PHONY: bench-smoke
bench-smoke:
	go test -run xxx -bench . -benchtime=1x ./...

# Regenerate the committed performance snapshot (BENCH_$(LABEL).json):
# the workload suite via the parallel driver, plus the engine-facing
# go-bench micro-benchmarks parsed into the same file. Schema in
# docs/FORMATS.md.
LABEL ?= PR4
.PHONY: bench-json
bench-json:
	go test -run xxx -bench 'Dispatch|McountFastPath|McountSteady|Snapshot|VMExecution|Overhead|GmonRead|GmonWrite|MergeAll|ImageIO|ModelBuild|ModelJSON' \
		-benchmem . ./internal/mon > bench-raw.out && \
	go run ./cmd/benchjson -label $(LABEL) -parse bench-raw.out -o BENCH_$(LABEL).json && \
	rm -f bench-raw.out

# Regenerate the pinned presentation goldens (text reports and JSON
# profiles) under testdata/golden. The -update flag lives in the root
# package's golden tests only, so restrict to '.'.
.PHONY: golden
golden:
	go test -run 'TestGolden' -update .

# Short fuzzing pass over the two binary decoders (profile data and
# executables): corrupt input must error, never panic.
.PHONY: fuzz-smoke
fuzz-smoke:
	go test -run xxx -fuzz 'FuzzRead$$' -fuzztime 20s ./internal/gmon
	go test -run xxx -fuzz 'FuzzReadImage$$' -fuzztime 20s ./internal/object

.PHONY: figures
figures:
	go run ./cmd/figures -all
