# Tier-1: the gate every change must keep green.
.PHONY: check
check:
	go build ./... && go test ./...

# Tier-1.5: static analysis plus the race detector over the parallel
# pipeline stages (profile merging, histogram attribution, propagation,
# the shared static-layer cache).
.PHONY: race
race:
	go vet ./... && go test -race ./...

.PHONY: bench
bench:
	go test -bench=. -benchmem ./...

# Parallel-stage benchmarks only: the -jobs scaling story.
.PHONY: bench-parallel
bench-parallel:
	go test -run xxx -bench 'Parallel|AnalyzeCached' .

.PHONY: figures
figures:
	go run ./cmd/figures -all
