# Tier-1: the gate every change must keep green.
.PHONY: check
check:
	go build ./... && go test ./...

# Tier-1.5: static analysis plus the race detector over the parallel
# pipeline stages (profile merging, histogram attribution, propagation,
# the shared static-layer cache).
.PHONY: race
race:
	go vet ./... && go test -race ./...

.PHONY: bench
bench:
	go test -bench=. -benchmem ./...

# Parallel-stage benchmarks only: the -jobs scaling story.
.PHONY: bench-parallel
bench-parallel:
	go test -run xxx -bench 'Parallel|AnalyzeCached' .

# Quick bench sanity pass for CI: every benchmark runs exactly once.
.PHONY: bench-smoke
bench-smoke:
	go test -run xxx -bench . -benchtime=1x ./...

# Regenerate the committed performance snapshot (BENCH_$(LABEL).json):
# the workload suite via the parallel driver, the scale and gprofd
# query suites, plus the engine-facing go-bench micro-benchmarks
# parsed into the same file. Schema in docs/FORMATS.md.
LABEL ?= PR10
.PHONY: bench-json
bench-json:
	go test -run xxx -bench 'Dispatch|McountFastPath|McountSteady|Snapshot|VMExecution|Overhead|GmonRead|GmonWrite|MergeAll|ImageIO|ModelBuild|ModelJSON|ObsSpan|ObsCounter|StackCollect|GmonV3ReadWrite|FoldedRender|HistogramObserve|HistogramMerge|Exposition|FlightSpan' \
		-benchmem . ./internal/mon ./internal/obs > bench-raw.out && \
	go run ./cmd/benchjson -label $(LABEL) -scale -query -parse bench-raw.out -o BENCH_$(LABEL).json && \
	rm -f bench-raw.out

# Compare two committed performance snapshots, worst regression first;
# -threshold (percent) makes it a gate. The per-stage span
# sub-measurements (analysis_stages) are single-digit microseconds and
# jitter close to 10x across runs on a shared host, so they are
# reported but ungated; the whole-run metrics they sum into
# (analysis_ns, profiles_analyzed_per_sec, warm_flat_ns, go_bench
# ns/op) stay under the gate and hold within tens of percent.
.PHONY: bench-diff
bench-diff:
	go run ./cmd/benchdiff -threshold 200 -ungated analysis_stages BENCH_PR9.json BENCH_$(LABEL).json

# Self-observability smoke: a profiled run and an analysis under
# -stats/-tracefile/-runreport, with both artifacts validated by
# tracecheck and stdout checked against an unobserved run. The vmrun
# step ignores the exit status because vmrun propagates the workload
# program's own exit code.
.PHONY: stats-smoke
stats-smoke:
	rm -rf .stats-smoke && mkdir -p .stats-smoke
	go build -o .stats-smoke/ ./cmd/vmrun ./cmd/gprof ./cmd/tracecheck
	cd .stats-smoke && (./vmrun -p -q -stats -workload sort || true)
	cd .stats-smoke && ./gprof -jobs 1 a.out gmon.out > plain.txt
	cd .stats-smoke && ./gprof -jobs 1 -stats -tracefile t.json -runreport r.json a.out gmon.out > observed.txt
	cmp .stats-smoke/plain.txt .stats-smoke/observed.txt
	cd .stats-smoke && ./tracecheck t.json r.json
	rm -rf .stats-smoke

# Regenerate the pinned presentation goldens (text reports and JSON
# profiles) under testdata/golden. The -update flag lives in the root
# package's golden tests only, so restrict to '.'.
.PHONY: golden
golden:
	go test -run 'TestGolden' -update .

# Short fuzzing pass over the two binary decoders (profile data and
# executables): corrupt input must error, never panic.
.PHONY: fuzz-smoke
fuzz-smoke:
	go test -run xxx -fuzz 'FuzzRead$$' -fuzztime 20s ./internal/gmon
	go test -run xxx -fuzz 'FuzzReadImage$$' -fuzztime 20s ./internal/object

# End-to-end smoke of the continuous-profiling service: start gprofd,
# replay the workload corpus from concurrent agents via gprofload, and
# -verify byte-compares every fingerprint's merged profile against an
# offline gmon.MergeAll of the same uploads. gprofload exits nonzero on
# any upload error, a zero rate, or a verify mismatch.
.PHONY: gprofd-smoke
gprofd-smoke:
	rm -rf .gprofd-smoke && mkdir -p .gprofd-smoke
	go build -o .gprofd-smoke/ ./cmd/gprofd ./cmd/gprofload
	./.gprofd-smoke/gprofd -addr 127.0.0.1:7421 & echo $$! > .gprofd-smoke/pid
	./.gprofd-smoke/gprofload -addr http://127.0.0.1:7421 -agents 8 -uploads 50 -verify; \
		rc=$$?; kill `cat .gprofd-smoke/pid` 2>/dev/null; rm -rf .gprofd-smoke; exit $$rc

# Query-path smoke: mixed read/write traffic against a live gprofd —
# reader agents hit /v1/flat and /v1/profile while uploads invalidate
# underneath them. gprofload exits nonzero on any reader failure, a
# verify mismatch, or (with -readers) a server whose incremental
# caches served no hits.
.PHONY: query-smoke
query-smoke:
	rm -rf .query-smoke && mkdir -p .query-smoke
	go build -o .query-smoke/ ./cmd/gprofd ./cmd/gprofload
	./.query-smoke/gprofd -addr 127.0.0.1:7423 & echo $$! > .query-smoke/pid
	./.query-smoke/gprofload -addr http://127.0.0.1:7423 -agents 8 -uploads 50 -readers 4 -verify; \
		rc=$$?; kill `cat .query-smoke/pid` 2>/dev/null; rm -rf .query-smoke; exit $$rc

# Scale smoke: a 10^5-routine synthetic workload through the whole
# stack — generate real artifacts, run the in-process pipeline under a
# throughput floor, then run the actual gprof binary over the generated
# image + profile pair. Bounded by timeout so a scaling regression
# fails fast instead of hanging CI.
.PHONY: scale-smoke
scale-smoke:
	rm -rf .scale-smoke && mkdir -p .scale-smoke
	go build -o .scale-smoke/ ./cmd/synthgen ./cmd/gprof
	timeout 120 ./.scale-smoke/synthgen -nodes 100000 -seed 1 \
		-image .scale-smoke/a.out -o .scale-smoke/gmon.out -analyze -minrate 20000
	timeout 120 ./.scale-smoke/gprof -brief .scale-smoke/a.out .scale-smoke/gmon.out > .scale-smoke/report.txt
	test -s .scale-smoke/report.txt
	rm -rf .scale-smoke

# Whole-stack pipeline smoke: collect stacks from the E8 workload,
# write the v3 profile data plus the gzipped pprof protobuf, then
# validate the pprof stream with the in-repo decoder and check that
# pricey() — the routine the arc view famously underestimates — tops
# the measured table.
.PHONY: pprof-smoke
pprof-smoke:
	rm -rf .pprof-smoke && mkdir -p .pprof-smoke
	go build -o .pprof-smoke/ ./cmd/stackprof ./cmd/pprofcheck ./cmd/gmondump
	cd .pprof-smoke && ./stackprof -workload unequal -tick 200 -folded \
		-o stacks.gmon -pprof stacks.pb.gz > folded.txt
	test -s .pprof-smoke/folded.txt
	cd .pprof-smoke && ./gmondump stacks.gmon | grep -q 'stacks:'
	cd .pprof-smoke && ./pprofcheck stacks.pb.gz > top.txt
	grep -q pricey .pprof-smoke/top.txt
	rm -rf .pprof-smoke

# Production-observability smoke: start gprofd with the self-profile
# loop on, replay the corpus with the observability prober (-metrics:
# concurrent /metrics scrapes must parse and validate, /healthz and
# /readyz must hold 200), then take two /metrics dumps across a second
# replay and metricscheck them — per-file structural validation plus
# cross-dump counter/histogram monotonicity. Finally fetch /v1/self as
# pprof and round-trip it through pprofcheck, and /debug/flightrec
# through tracecheck.
.PHONY: metrics-smoke
metrics-smoke:
	rm -rf .metrics-smoke && mkdir -p .metrics-smoke
	go build -o .metrics-smoke/ ./cmd/gprofd ./cmd/gprofload ./cmd/metricscheck ./cmd/pprofcheck ./cmd/tracecheck
	./.metrics-smoke/gprofd -addr 127.0.0.1:7427 -selfprofile 300ms & echo $$! > .metrics-smoke/pid
	rc=0; \
	./.metrics-smoke/gprofload -addr http://127.0.0.1:7427 -agents 8 -duration 3s -metrics -verify || rc=$$?; \
	curl -sf http://127.0.0.1:7427/metrics > .metrics-smoke/m1.prom || rc=$$?; \
	./.metrics-smoke/gprofload -addr http://127.0.0.1:7427 -agents 4 -uploads 25 -metrics || rc=$$?; \
	curl -sf http://127.0.0.1:7427/metrics > .metrics-smoke/m2.prom || rc=$$?; \
	./.metrics-smoke/metricscheck .metrics-smoke/m1.prom .metrics-smoke/m2.prom || rc=$$?; \
	curl -sf 'http://127.0.0.1:7427/v1/self?view=pprof' > .metrics-smoke/self.pb.gz || rc=$$?; \
	./.metrics-smoke/pprofcheck .metrics-smoke/self.pb.gz > /dev/null || rc=$$?; \
	curl -sf http://127.0.0.1:7427/debug/flightrec > .metrics-smoke/flight.json || rc=$$?; \
	./.metrics-smoke/tracecheck .metrics-smoke/flight.json || rc=$$?; \
	kill `cat .metrics-smoke/pid` 2>/dev/null; rm -rf .metrics-smoke; exit $$rc

.PHONY: figures
figures:
	go run ./cmd/figures -all
