// Package stacksample implements the technique the retrospective credits
// with replacing gprof: "periodically gathering not just isolated program
// counter samples and isolated call graph arcs, but complete call
// stacks".
//
// At every clock tick the sampler records the entire active call stack
// (by walking the frame-pointer chain the compiler's calling convention
// maintains). From whole stacks it computes, per routine,
//
//   - self ticks: samples whose innermost frame is the routine, and
//   - inclusive ticks: samples with the routine anywhere on the stack
//     (counted once per sample even under recursion).
//
// Inclusive time measured this way is exact up to sampling error. gprof
// instead *estimates* inclusive time by distributing a callee's total to
// callers in proportion to call counts — §3.2's "simplifying assumption
// that all calls to a specific routine require the same amount of time".
// Experiment E8 uses this package as ground truth to quantify the error
// of that assumption on workloads where call sites have unequal costs.
package stacksample

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/model"
	"repro/internal/symtab"
	"repro/internal/vm"
)

// MaxDepth bounds the stack walk per sample.
const MaxDepth = 256

// Sampler implements vm.Monitor by recording whole call stacks at clock
// ticks. Attach the machine before running; MCOUNT and control events
// are ignored (the technique needs no prologue instrumentation at all —
// part of its appeal).
type Sampler struct {
	tab     *symtab.Table
	machine *vm.Machine

	selfTicks      map[string]int64
	inclusiveTicks map[string]int64
	samples        int64
	truncated      int64 // walks stopped early (prologue skid etc.)

	// stacks counts each distinct stack (leaf-first names joined by
	// ";"), the data a modern flame-graph view would consume.
	stacks map[string]int64
}

// New creates a sampler resolving addresses against tab.
func New(tab *symtab.Table) *Sampler {
	return &Sampler{
		tab:            tab,
		selfTicks:      make(map[string]int64),
		inclusiveTicks: make(map[string]int64),
		stacks:         make(map[string]int64),
	}
}

// Attach gives the sampler access to the machine whose stack it walks.
func (s *Sampler) Attach(m *vm.Machine) { s.machine = m }

// Mcount ignores prologue events: stack sampling needs no instrumented
// prologues. It returns zero extra cycles, which is exactly the point —
// the overhead is per-tick, not per-call, and "can be hidden by backing
// off the frequency with which the call stacks are sampled".
func (s *Sampler) Mcount(selfpc, frompc int64) int64 { return 0 }

// Control is a no-op; the sampler has no kernel-style switch.
func (s *Sampler) Control(op int) {}

// Tick records one whole-stack sample.
func (s *Sampler) Tick(pc int64) {
	s.samples++
	names := make([]string, 0, 8)
	seen := make(map[string]bool, 8)
	add := func(pc int64) bool {
		fn, ok := s.tab.Find(pc)
		if !ok {
			return false
		}
		names = append(names, fn.Name)
		if !seen[fn.Name] {
			seen[fn.Name] = true
			s.inclusiveTicks[fn.Name]++
		}
		return true
	}
	if !add(pc) {
		s.truncated++
		return
	}
	s.selfTicks[names[0]]++
	if s.machine != nil {
		ras := s.machine.ReturnAddresses(MaxDepth)
		for _, ra := range ras {
			if !add(ra - 1) { // ra points after the CALL
				s.truncated++
				break
			}
		}
		if len(ras) == MaxDepth {
			s.truncated++
		}
	}
	key := join(names)
	s.stacks[key]++
}

func join(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ";"
		}
		out += n
	}
	return out
}

// Samples returns the number of ticks observed.
func (s *Sampler) Samples() int64 { return s.samples }

// Truncated returns how many walks ended early (unknown pc or depth
// limit) — the prologue-skid artifacts.
func (s *Sampler) Truncated() int64 { return s.truncated }

// SelfTicks returns the routine's leaf-sample count.
func (s *Sampler) SelfTicks(name string) int64 { return s.selfTicks[name] }

// InclusiveTicks returns the routine's anywhere-on-stack sample count:
// measured (not estimated) total time in sampling units.
func (s *Sampler) InclusiveTicks(name string) int64 { return s.inclusiveTicks[name] }

// Stacks returns the distinct sampled stacks (leaf-first, ";"-joined)
// with their counts.
func (s *Sampler) Stacks() map[string]int64 { return s.stacks }

// Row is one line of the report.
type Row struct {
	Name      string
	Self      int64
	Inclusive int64
}

// Rows returns per-routine results sorted by decreasing inclusive ticks.
func (s *Sampler) Rows() []Row {
	var rows []Row
	for name, inc := range s.inclusiveTicks {
		rows = append(rows, Row{Name: name, Self: s.selfTicks[name], Inclusive: inc})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Inclusive != rows[j].Inclusive {
			return rows[i].Inclusive > rows[j].Inclusive
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// WriteFolded emits the samples in collapsed-stack ("folded") form, one
// line per distinct stack — root;...;leaf count — the input format of
// modern flame-graph renderers. Lines are sorted for determinism.
func (s *Sampler) WriteFolded(w io.Writer) error {
	lines := make([]string, 0, len(s.stacks))
	for key, count := range s.stacks {
		frames := splitStack(key)
		// stored leaf-first; folded format is root-first
		for i, j := 0, len(frames)-1; i < j; i, j = i+1, j-1 {
			frames[i], frames[j] = frames[j], frames[i]
		}
		lines = append(lines, fmt.Sprintf("%s %d", join(frames), count))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

func splitStack(key string) []string {
	var frames []string
	start := 0
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == ';' {
			frames = append(frames, key[start:i])
			start = i + 1
		}
	}
	return frames
}

// Model condenses the sampler's results into the shared profile model
// (internal/model). Sampling units are the clock: Hz is 1, a tick is a
// sample, and a routine's "descendant" time is its inclusive minus self
// samples — measured, not estimated. Routines appear in report order
// (decreasing inclusive samples).
func (s *Sampler) Model() *model.Profile {
	m := &model.Profile{
		Schema:       model.Schema,
		Hz:           1,
		TotalTicks:   float64(s.samples),
		TotalSeconds: float64(s.samples),
	}
	for _, r := range s.Rows() {
		self := float64(r.Self)
		child := float64(r.Inclusive - r.Self)
		m.Routines = append(m.Routines, model.Routine{
			Name:         r.Name,
			SelfTicks:    self,
			ChildTicks:   child,
			SelfSeconds:  self,
			ChildSeconds: child,
		})
	}
	m.Reindex()
	return m
}

// Write renders the per-routine table with tick counts and percentages.
func (s *Sampler) Write(w io.Writer) error {
	m := s.Model()
	fmt.Fprintf(w, "stack-sample profile: %d samples (%d truncated walks)\n", s.samples, s.truncated)
	fmt.Fprintf(w, "  %%incl   %%self  inclusive    self  name\n")
	for i := range m.Routines {
		r := &m.Routines[i]
		pi, ps := m.Percent(r.TotalTicks()), m.Percent(r.SelfTicks)
		fmt.Fprintf(w, "%7.1f %7.1f %10d %7d  %s\n",
			pi, ps, int64(r.TotalTicks()), int64(r.SelfTicks), r.Name)
	}
	return nil
}
