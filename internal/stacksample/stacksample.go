// Package stacksample implements the technique the retrospective credits
// with replacing gprof: "periodically gathering not just isolated program
// counter samples and isolated call graph arcs, but complete call
// stacks".
//
// At every clock tick the sampler records the entire active call stack
// (by walking the frame-pointer chain the compiler's calling convention
// maintains). From whole stacks it computes, per routine,
//
//   - self ticks: samples whose innermost frame is the routine, and
//   - inclusive ticks: samples with the routine anywhere on the stack
//     (counted once per sample even under recursion).
//
// Inclusive time measured this way is exact up to sampling error. gprof
// instead *estimates* inclusive time by distributing a callee's total to
// callers in proportion to call counts — §3.2's "simplifying assumption
// that all calls to a specific routine require the same amount of time".
// Experiment E8 uses this package as ground truth to quantify the error
// of that assumption on workloads where call sites have unequal costs.
//
// The package is a veneer over the unified stack pipeline: collection is
// internal/mon's interned StackCollector (raw PCs, zero steady-state
// allocations) and analysis is the model's context-sensitive Stacks view
// (model.BuildStacks), which reproduces this package's historical
// resolution and truncation accounting exactly — the leaf resolves at
// its own address, outer frames at return address minus one, and
// unresolvable or depth-limited walks count as truncated. Only the
// report shapes (Rows, the folded form, the table) live here.
package stacksample

import (
	"fmt"
	"io"

	"repro/internal/gmon"
	"repro/internal/model"
	"repro/internal/mon"
	"repro/internal/report"
	"repro/internal/symtab"
	"repro/internal/vm"
)

// MaxDepth bounds the stack walk per sample.
const MaxDepth = 256

// Sampler implements vm.Monitor by recording whole call stacks at clock
// ticks. Attach the machine before running; MCOUNT and control events
// are ignored (the technique needs no prologue instrumentation at all —
// part of its appeal).
type Sampler struct {
	tab *symtab.Table
	col *mon.StackCollector

	// view is the memoized analysis of the collected stacks; Tick
	// invalidates it, every reporting method rebuilds it on demand.
	view *model.StackView
}

// New creates a sampler resolving addresses against tab.
func New(tab *symtab.Table) *Sampler {
	return &Sampler{tab: tab, col: mon.NewStackCollector(nil, MaxDepth)}
}

// Attach gives the sampler access to the machine whose stack it walks.
func (s *Sampler) Attach(m *vm.Machine) { s.col.Attach(m) }

// Mcount ignores prologue events: stack sampling needs no instrumented
// prologues. It returns zero extra cycles, which is exactly the point —
// the overhead is per-tick, not per-call, and "can be hidden by backing
// off the frequency with which the call stacks are sampled".
func (s *Sampler) Mcount(selfpc, frompc int64) int64 { return 0 }

// Control is a no-op; the sampler has no kernel-style switch.
func (s *Sampler) Control(op int) {}

// Tick records one whole-stack sample: raw PCs into the interned
// collector, resolution deferred to the first reporting call.
func (s *Sampler) Tick(pc int64) {
	s.col.Record(pc)
	s.view = nil
}

// RawStacks returns the interned raw-PC stack table in gmon's canonical
// order — the data a v3 profile data file would carry.
func (s *Sampler) RawStacks() []gmon.StackSample { return s.col.Snapshot() }

// View returns the context-sensitive analysis of the samples so far:
// the call-path node tree and per-routine rollup, resolved against the
// sampler's symbol table with the historical truncation accounting.
func (s *Sampler) View() *model.StackView {
	if s.view == nil {
		s.view = model.BuildStacks(s.col.Snapshot(), func(pc int64) (string, bool) {
			fn, ok := s.tab.Find(pc)
			if !ok {
				return "", false
			}
			return fn.Name, true
		}, MaxDepth)
	}
	return s.view
}

// Samples returns the number of ticks observed.
func (s *Sampler) Samples() int64 { return s.col.Samples() }

// Truncated returns how many walks ended early (unknown pc or depth
// limit) — the prologue-skid artifacts.
func (s *Sampler) Truncated() int64 { return s.View().Truncated }

// SelfTicks returns the routine's leaf-sample count.
func (s *Sampler) SelfTicks(name string) int64 {
	r, _ := s.View().Routine(name)
	return r.SelfTicks
}

// InclusiveTicks returns the routine's anywhere-on-stack sample count:
// measured (not estimated) total time in sampling units.
func (s *Sampler) InclusiveTicks(name string) int64 {
	r, _ := s.View().Routine(name)
	return r.InclusiveTicks
}

// Stacks returns the distinct sampled stacks (leaf-first, ";"-joined
// resolved names) with their counts.
func (s *Sampler) Stacks() map[string]int64 {
	v := s.View()
	// Each node with self ticks was some sample's full resolved path;
	// its leaf-first name chain is the historical map key.
	out := make(map[string]int64)
	paths := make([]string, len(v.Nodes))
	for i := range v.Nodes {
		n := &v.Nodes[i]
		// Leaf-first: this node's name, then its ancestors'.
		if n.Parent < 0 {
			paths[i] = n.Name
		} else {
			paths[i] = n.Name + ";" + paths[n.Parent]
		}
		if n.SelfTicks > 0 {
			out[paths[i]] += n.SelfTicks
		}
	}
	return out
}

// Row is one line of the report.
type Row struct {
	Name      string
	Self      int64
	Inclusive int64
}

// Rows returns per-routine results sorted by decreasing inclusive ticks.
func (s *Sampler) Rows() []Row {
	routines := s.View().Routines
	rows := make([]Row, 0, len(routines))
	for _, r := range routines {
		rows = append(rows, Row{Name: r.Name, Self: r.SelfTicks, Inclusive: r.InclusiveTicks})
	}
	return rows
}

// WriteFolded emits the samples in collapsed-stack ("folded") form, one
// line per distinct stack — root;...;leaf count — the input format of
// modern flame-graph renderers. Lines are sorted for determinism.
func (s *Sampler) WriteFolded(w io.Writer) error {
	return report.Folded(w, &model.Profile{Stacks: s.View()})
}

// Model condenses the sampler's results into the shared profile model
// (internal/model). Sampling units are the clock: Hz is 1, a tick is a
// sample, and a routine's "descendant" time is its inclusive minus self
// samples — measured, not estimated. Routines appear in report order
// (decreasing inclusive samples).
func (s *Sampler) Model() *model.Profile {
	m := &model.Profile{
		Schema:       model.Schema,
		Hz:           1,
		TotalTicks:   float64(s.Samples()),
		TotalSeconds: float64(s.Samples()),
	}
	for _, r := range s.Rows() {
		self := float64(r.Self)
		child := float64(r.Inclusive - r.Self)
		m.Routines = append(m.Routines, model.Routine{
			Name:         r.Name,
			SelfTicks:    self,
			ChildTicks:   child,
			SelfSeconds:  self,
			ChildSeconds: child,
		})
	}
	m.Reindex()
	return m
}

// Write renders the per-routine table with tick counts and percentages.
func (s *Sampler) Write(w io.Writer) error {
	m := s.Model()
	fmt.Fprintf(w, "stack-sample profile: %d samples (%d truncated walks)\n", s.Samples(), s.Truncated())
	fmt.Fprintf(w, "  %%incl   %%self  inclusive    self  name\n")
	for i := range m.Routines {
		r := &m.Routines[i]
		pi, ps := m.Percent(r.TotalTicks()), m.Percent(r.SelfTicks)
		fmt.Fprintf(w, "%7.1f %7.1f %10d %7d  %s\n",
			pi, ps, int64(r.TotalTicks()), int64(r.SelfTicks), r.Name)
	}
	return nil
}
