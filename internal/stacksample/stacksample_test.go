package stacksample

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/propagate"
	"repro/internal/scc"
	"repro/internal/symtab"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// sample runs a workload under the stack sampler.
func sample(t *testing.T, name string, tick int64) (*Sampler, *symtab.Table) {
	t.Helper()
	im, err := workloads.Build(name, false) // no MCOUNT needed!
	if err != nil {
		t.Fatal(err)
	}
	tab := symtab.New(im)
	s := New(tab)
	m := vm.New(im, vm.Config{Monitor: s, TickCycles: tick, MaxCycles: 1 << 30})
	s.Attach(m)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return s, tab
}

func TestSamplesCollected(t *testing.T) {
	s, _ := sample(t, "sort", 200)
	if s.Samples() == 0 {
		t.Fatal("no samples")
	}
	if s.SelfTicks("partition")+s.SelfTicks("less")+s.SelfTicks("swap") == 0 {
		t.Error("no self samples in the sort kernels")
	}
	// main is on (almost) every stack.
	if incl := s.InclusiveTicks("main"); float64(incl) < 0.9*float64(s.Samples()) {
		t.Errorf("main inclusive %d of %d samples; want ~all", incl, s.Samples())
	}
}

func TestInclusiveExceedsSelf(t *testing.T) {
	s, _ := sample(t, "matrix", 200)
	for _, name := range []string{"mul", "dot", "main"} {
		if s.InclusiveTicks(name) < s.SelfTicks(name) {
			t.Errorf("%s: inclusive %d < self %d", name, s.InclusiveTicks(name), s.SelfTicks(name))
		}
	}
	// The orchestrator mul has tiny self but huge inclusive time — the
	// signal prof cannot produce and gprof only estimates.
	if s.InclusiveTicks("mul") < 5*s.SelfTicks("mul")+1 {
		t.Errorf("mul: inclusive %d vs self %d; expected inclusive >> self",
			s.InclusiveTicks("mul"), s.SelfTicks("mul"))
	}
}

func TestRecursionCountedOncePerSample(t *testing.T) {
	s, _ := sample(t, "sort", 200)
	// qsort is deeply self-recursive; inclusive must never exceed the
	// sample count (each sample counts it once).
	if s.InclusiveTicks("qsort") > s.Samples() {
		t.Errorf("qsort inclusive %d > samples %d (double-counted recursion)",
			s.InclusiveTicks("qsort"), s.Samples())
	}
}

func TestStacksRecorded(t *testing.T) {
	s, _ := sample(t, "matrix", 500)
	if len(s.Stacks()) == 0 {
		t.Fatal("no stacks recorded")
	}
	// Some sampled stack should show the full abstraction chain.
	found := false
	for stack := range s.Stacks() {
		if strings.Contains(stack, "dot") && strings.Contains(stack, "mul") &&
			strings.Contains(stack, "main") {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no stack contains dot;...;mul;...;main: %v", keys(s.Stacks()))
	}
}

func keys(m map[string]int64) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestWriteReport(t *testing.T) {
	s, _ := sample(t, "sort", 300)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stack-sample profile", "%incl", "qsort", "main"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestAverageTimeAssumptionError is experiment E8's core: on the
// `unequal` workload, cheap() makes 90 fast calls to work and pricey()
// makes 10 slow ones. gprof divides work's total time by call count, so
// it hands cheap() 90% of the time; the measured stacks show pricey()
// owns nearly all of it.
func TestAverageTimeAssumptionError(t *testing.T) {
	// Ground truth from whole stacks.
	s, _ := sample(t, "unequal", 200)
	samples := float64(s.Samples())
	if samples == 0 {
		t.Fatal("no samples")
	}
	truthCheap := float64(s.InclusiveTicks("cheap")) / samples
	truthPricey := float64(s.InclusiveTicks("pricey")) / samples
	if truthPricey < 0.8 {
		t.Errorf("ground truth: pricey owns %.0f%%, expected > 80%%", truthPricey*100)
	}
	if truthCheap > 0.2 {
		t.Errorf("ground truth: cheap owns %.0f%%, expected < 20%%", truthCheap*100)
	}

	// gprof's estimate on the same program (instrumented build).
	im, err := workloads.Build("unequal", true)
	if err != nil {
		t.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 200, MaxCycles: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	tab := symtab.New(im)
	g, err := callgraph.Build(tab, p)
	if err != nil {
		t.Fatal(err)
	}
	scc.Analyze(g)
	propagate.Run(g)
	total := g.TotalTicks
	estCheap := g.MustNode("cheap").TotalTicks() / total
	estPricey := g.MustNode("pricey").TotalTicks() / total

	// gprof's average-time assumption must visibly misattribute:
	// it gives cheap() the majority share (90 of 100 calls).
	if estCheap < 0.5 {
		t.Errorf("gprof estimate for cheap = %.0f%%; expected the wrong, call-count-driven majority", estCheap*100)
	}
	if estPricey > 0.5 {
		t.Errorf("gprof estimate for pricey = %.0f%%; expected under-attribution", estPricey*100)
	}
	// And the stack sampler must be far closer to the truth than gprof.
	gprofErr := abs(estPricey - truthPricey)
	if gprofErr < 0.3 {
		t.Errorf("expected a large gprof error on unequal call sites, got %.2f", gprofErr)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestMcountIgnored(t *testing.T) {
	s := New(symtab.FromSyms(nil))
	if cost := s.Mcount(1, 2); cost != 0 {
		t.Errorf("Mcount cost = %d, want 0", cost)
	}
	s.Control(99) // no-op
}

func TestTickOutsideText(t *testing.T) {
	s := New(symtab.FromSyms(nil))
	s.Tick(0xdead)
	if s.Truncated() != 1 || s.Samples() != 1 {
		t.Errorf("stats = %d truncated / %d samples", s.Truncated(), s.Samples())
	}
}

func TestWriteFolded(t *testing.T) {
	s, _ := sample(t, "matrix", 500)
	var buf bytes.Buffer
	if err := s.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no folded lines")
	}
	prev := ""
	var total int64
	for _, l := range lines {
		if l <= prev {
			t.Errorf("folded output not sorted: %q after %q", l, prev)
		}
		prev = l
		// root-first: every line starts at _start or main.
		if !strings.HasPrefix(l, "_start") && !strings.HasPrefix(l, "main") {
			t.Errorf("folded stack not root-first: %q", l)
		}
		var n int64
		if _, err := fmt.Sscanf(l[strings.LastIndexByte(l, ' ')+1:], "%d", &n); err != nil {
			t.Fatalf("bad folded line %q: %v", l, err)
		}
		total += n
	}
	if total != s.Samples() {
		t.Errorf("folded counts sum to %d, want %d samples", total, s.Samples())
	}
}
