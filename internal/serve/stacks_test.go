package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/gmon"
	"repro/internal/pprofenc"
	"repro/internal/workloads"
)

func sortStackedProfile(t *testing.T, seed uint64) *gmon.Profile {
	t.Helper()
	im, _ := sortImage(t)
	p, _, _, err := workloads.Run(im, workloads.RunConfig{Seed: seed, Stacks: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stacks) == 0 {
		t.Fatal("workload produced no stack samples")
	}
	return p
}

// TestStackEndpoints ingests v3 uploads and queries every
// stack-derived endpoint, checking the served gmon v3 bytes against an
// offline merge.
func TestStackEndpoints(t *testing.T) {
	_, imageBytes := sortImage(t)
	_, ts := newTestServer(t, Config{})
	fp := registerExe(t, ts, imageBytes)

	p1 := sortStackedProfile(t, 1)
	p2 := sortStackedProfile(t, 2)
	for _, up := range [][]byte{
		encodeProfile(t, p1, gmon.Version3, false),
		encodeProfile(t, p2, gmon.Version3, true),
	} {
		mustStatus(t, ingest(t, ts, fp, up), http.StatusAccepted)
	}

	// Served v3 bytes equal the offline merge's encoding.
	want, err := gmon.MergeAll(context.Background(), []*gmon.Profile{p1, p2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	if err := gmon.WriteVersion(&wantBuf, want, gmon.Version3); err != nil {
		t.Fatal(err)
	}
	got := mustStatus(t, get(t, ts, "/v1/gmon?sync=1&fp="+fp+"&v=3"), http.StatusOK)
	if !bytes.Equal(got, wantBuf.Bytes()) {
		t.Errorf("served v3 (%d bytes) differs from offline merge (%d bytes)", len(got), wantBuf.Len())
	}

	// The JSON profile moves to the v2 schema when stacks are present.
	var prof struct {
		Schema string `json:"schema"`
		Stacks *struct {
			Samples int64 `json:"samples"`
		} `json:"stacks"`
	}
	if err := json.Unmarshal(mustStatus(t, get(t, ts, "/v1/profile?fp="+fp), http.StatusOK), &prof); err != nil {
		t.Fatal(err)
	}
	if prof.Schema != "gprof.profile.v2" || prof.Stacks == nil || prof.Stacks.Samples == 0 {
		t.Errorf("profile = %+v, want v2 schema with a populated stacks view", prof)
	}

	// Folded: every line is path space count, and the hot sort routines
	// show up somewhere.
	folded := string(mustStatus(t, get(t, ts, "/v1/folded?fp="+fp), http.StatusOK))
	if !strings.Contains(folded, "main") || !strings.Contains(folded, ";") {
		t.Errorf("folded output:\n%s", folded)
	}
	for _, line := range strings.Split(strings.TrimSpace(folded), "\n") {
		if i := strings.LastIndexByte(line, ' '); i < 0 {
			t.Errorf("malformed folded line %q", line)
		}
	}

	// pprof: decodes through the in-repo reader with samples present.
	pb := mustStatus(t, get(t, ts, "/v1/pprof?fp="+fp), http.StatusOK)
	d, err := pprofenc.Decode(bytes.NewReader(pb))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Samples) == 0 {
		t.Error("pprof stream has no samples")
	}
	var total int64
	for _, s := range d.Samples {
		total += s.Values[0]
	}
	if total != want.SumStacks() {
		t.Errorf("pprof total %d, want %d", total, want.SumStacks())
	}
}

// TestStackEndpointsWithoutStacks: v1 uploads carry no stack table, so
// the stack-derived endpoints answer 404, not 500 — and the plain
// endpoints still work.
func TestStackEndpointsWithoutStacks(t *testing.T) {
	_, imageBytes := sortImage(t)
	_, ts := newTestServer(t, Config{})
	fp := registerExe(t, ts, imageBytes)
	mustStatus(t, ingest(t, ts, fp, encodeProfile(t, sortProfile(t, 1), gmon.Version1, false)), http.StatusAccepted)

	mustStatus(t, get(t, ts, "/v1/folded?fp="+fp), http.StatusNotFound)
	mustStatus(t, get(t, ts, "/v1/pprof?fp="+fp), http.StatusNotFound)
	mustStatus(t, get(t, ts, "/v1/flat?fp="+fp), http.StatusOK)
}

// TestMixedVersionIngest: v1 and v3 uploads of the same fingerprint
// merge; the stack table comes from the v3 uploads alone.
func TestMixedVersionIngest(t *testing.T) {
	_, imageBytes := sortImage(t)
	_, ts := newTestServer(t, Config{})
	fp := registerExe(t, ts, imageBytes)

	p := sortStackedProfile(t, 1)
	mustStatus(t, ingest(t, ts, fp, encodeProfile(t, p, gmon.Version3, false)), http.StatusAccepted)
	mustStatus(t, ingest(t, ts, fp, encodeProfile(t, p, gmon.Version1, false)), http.StatusAccepted)

	got := mustStatus(t, get(t, ts, "/v1/gmon?sync=1&fp="+fp+"&v=3"), http.StatusOK)
	merged, err := gmon.Open(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	// Arcs merged from both uploads; stacks only from the v3 one.
	if merged.SumStacks() != p.SumStacks() {
		t.Errorf("merged stack samples = %d, want %d (v3 upload only)", merged.SumStacks(), p.SumStacks())
	}
	if len(merged.Arcs) == 0 {
		t.Error("merged profile lost its arcs")
	}
	mustStatus(t, get(t, ts, "/v1/folded?fp="+fp), http.StatusOK)
}
