package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/gmon"
	"repro/internal/model"
	"repro/internal/object"
)

// FingerprintHeader carries the executable fingerprint on ingest
// requests (the ?fp query parameter is an alternative).
const FingerprintHeader = "X-Gprof-Fingerprint"

func (s *Server) routes() {
	s.handle("/v1/exe", s.handleExe)
	s.handle("/v1/ingest", s.handleIngest)
	s.handle("/v1/flat", s.queryText("flat", (*core.Result).WriteFlat))
	s.handle("/v1/callgraph", s.queryText("callgraph", (*core.Result).WriteCallGraph))
	s.handle("/v1/profile", s.handleProfile)
	s.handle("/v1/folded", s.queryText("folded", (*core.Result).WriteFolded))
	s.handle("/v1/pprof", s.handlePprof)
	s.handle("/v1/diff", s.handleDiff)
	s.handle("/v1/gmon", s.handleGmon)
	s.handle("/v1/stats", s.handleStats)
	s.handle("/v1/fingerprints", s.handleFingerprints)
	s.handle("/v1/self", s.handleSelf)
	s.handle("/metrics", s.handleMetrics)
	s.handle("/healthz", s.handleHealthz)
	s.handle("/readyz", s.handleReadyz)
	s.handle("/debug/flightrec", s.handleFlightRec)
}

// handle registers a route and records its path so the metrics
// middleware can label known endpoints exactly and collapse everything
// else into "other".
func (s *Server) handle(path string, fn http.HandlerFunc) {
	s.endpoints[path] = struct{}{}
	s.mux.HandleFunc(path, fn)
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	if code >= 400 && code < 500 && code != http.StatusTooManyRequests {
		s.stats.badRequest.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(apiError{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// countReader counts the bytes a decoder actually consumed, for the
// ingest byte counters.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// handleExe registers an executable: the body is the linked image in
// the repo's a.out encoding, and the response carries the content
// fingerprint subsequent uploads and queries are keyed by.
// Re-registering the same image is idempotent.
func (s *Server) handleExe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST an executable image to /v1/exe")
		return
	}
	body := &countReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)}
	im, err := object.ReadImage(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "executable exceeds the %d-byte upload cap", s.cfg.MaxBodyBytes)
			return
		}
		s.fail(w, http.StatusBadRequest, "bad executable image: %v", err)
		return
	}
	fp, err := object.Fingerprint(im)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, "fingerprinting image: %v", err)
		return
	}
	sh, err := s.register(fp, newShard(fp, im, s.cfg, s.tr, s.metrics, s.rec))
	if err != nil {
		s.fail(w, http.StatusInsufficientStorage, "registering %s: %v", fp, err)
		return
	}
	s.stats.exeRegistered.Add(1)
	writeJSON(w, http.StatusOK, struct {
		Fingerprint string `json:"fingerprint"`
		Routines    int    `json:"routines"`
	}{Fingerprint: sh.fp, Routines: len(im.Funcs)})
}

// handleIngest accepts one gmon.out upload: either format version,
// gzip or identity transport (sniffed by gmon.OpenReader — no
// Content-Encoding negotiation needed), keyed by fingerprint. Malformed
// bodies are 4xx; a full shard queue is 429 with Retry-After.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	end := s.tr.Span("serve.ingest")
	defer end()
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, "POST profile data to /v1/ingest")
		return
	}
	fp := r.Header.Get(FingerprintHeader)
	if fp == "" {
		fp = r.URL.Query().Get("fp")
	}
	if fp == "" {
		s.fail(w, http.StatusBadRequest, "missing executable fingerprint (%s header or ?fp=)", FingerprintHeader)
		return
	}
	sh, ok := s.shardFor(fp)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown fingerprint %s; register the executable via POST /v1/exe first", fp)
		return
	}
	body := &countReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)}
	p, err := gmon.Open(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, "profile exceeds the %d-byte upload cap", s.cfg.MaxBodyBytes)
			return
		}
		s.fail(w, http.StatusBadRequest, "bad profile data: %v", err)
		return
	}
	if err := sh.checkGeometry(p); err != nil {
		s.fail(w, http.StatusConflict, "unmergeable upload: %v", err)
		return
	}
	now := s.cfg.Now()
	if err := sh.enqueue(p, now); err != nil {
		switch {
		case errors.Is(err, errQueueFull):
			s.stats.backpressure.Add(1)
			s.tr.Counter("serve.http_429").Add(1)
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusTooManyRequests, "shard %s queue full; retry", fp)
		default:
			s.fail(w, http.StatusServiceUnavailable, "shard %s: %v", fp, err)
		}
		return
	}
	s.stats.accepted.Add(1)
	s.stats.bytes.Add(body.n)
	s.stats.rate.add(now.Unix())
	s.metrics.profiles.Add(1)
	s.metrics.profileBytes.Add(body.n)
	s.tr.Counter("serve.profiles_ingested").Add(1)
	s.tr.Counter("serve.bytes_ingested").Add(body.n)
	writeJSON(w, http.StatusAccepted, struct {
		Fingerprint string `json:"fingerprint"`
		WindowStart int64  `json:"window_start"`
	}{Fingerprint: fp, WindowStart: sh.truncate(now)})
}

// queryShard parses the fp and window parameters shared by every query
// endpoint, honoring ?sync=1 (wait for the shard's queue to drain so
// the snapshot covers every accepted upload).
func (s *Server) queryShard(w http.ResponseWriter, r *http.Request) (*shard, windowSel, bool) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "query endpoints are GET")
		return nil, windowSel{}, false
	}
	fp := r.URL.Query().Get("fp")
	if fp == "" {
		s.fail(w, http.StatusBadRequest, "missing ?fp= fingerprint")
		return nil, windowSel{}, false
	}
	sh, ok := s.shardFor(fp)
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown fingerprint %s", fp)
		return nil, windowSel{}, false
	}
	sel, err := parseWindow(r.URL.Query().Get("window"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return nil, windowSel{}, false
	}
	if r.URL.Query().Get("sync") == "1" {
		if err := sh.sync(r.Context()); err != nil {
			s.fail(w, http.StatusServiceUnavailable, "waiting for shard %s to quiesce: %v", fp, err)
			return nil, windowSel{}, false
		}
	}
	return sh, sel, true
}

var errNoData = fmt.Errorf("no profile data in the selected window(s)")

// queryText builds a handler serving one of the Result text reports
// (the flat profile or the call graph profile) through the incremental
// path: snapshot reuse, analysis memoization, and a per-entry memo of
// the rendered bytes, all invalidated by the shard's fold version.
func (s *Server) queryText(endpoint string, render func(*core.Result, io.Writer) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		end := s.tr.Span("serve.query")
		defer end()
		sh, sel, ok := s.queryShard(w, r)
		if !ok {
			return
		}
		s.stats.queries.Add(1)
		e, err := s.analyzed(r.Context(), sh, sel)
		if err != nil {
			s.queryFail(w, sh, err)
			return
		}
		body, err := e.bytesFor(endpoint, render)
		if err != nil {
			s.queryFail(w, sh, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(body)
	}
}

// handleProfile serves the merged windows as an analyzed
// gprof.profile.v1 JSON document — the same bytes gprof -json writes.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	end := s.tr.Span("serve.query")
	defer end()
	sh, sel, ok := s.queryShard(w, r)
	if !ok {
		return
	}
	s.stats.queries.Add(1)
	e, err := s.analyzed(r.Context(), sh, sel)
	if err != nil {
		s.queryFail(w, sh, err)
		return
	}
	body, err := e.bytesFor("profile", (*core.Result).WriteJSON)
	if err != nil {
		s.queryFail(w, sh, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// DiffResponse is the /v1/diff payload: per-routine deltas between two
// window selections of one fingerprint, most-regressed first.
type DiffResponse struct {
	Schema      string        `json:"schema"`
	Fingerprint string        `json:"fingerprint"`
	Old         string        `json:"old"`
	New         string        `json:"new"`
	Deltas      []model.Delta `json:"deltas"`
}

// DiffSchema tags every /v1/diff response.
const DiffSchema = "gprofd.diff.v1"

// handleDiff compares two window selections (?old=, ?new=; default
// prev vs current) and returns model.Diff's per-routine deltas.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	end := s.tr.Span("serve.query")
	defer end()
	sh, _, ok := s.queryShard(w, r)
	if !ok {
		return
	}
	s.stats.queries.Add(1)
	oldParam := r.URL.Query().Get("old")
	if oldParam == "" {
		oldParam = "prev"
	}
	newParam := r.URL.Query().Get("new")
	if newParam == "" {
		newParam = "current"
	}
	oldSel, err := parseWindow(oldParam)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "old: %v", err)
		return
	}
	newSel, err := parseWindow(newParam)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "new: %v", err)
		return
	}
	oldEnt, err := s.analyzed(r.Context(), sh, oldSel)
	if err != nil {
		s.queryFail(w, sh, err)
		return
	}
	newEnt, err := s.analyzed(r.Context(), sh, newSel)
	if err != nil {
		s.queryFail(w, sh, err)
		return
	}
	writeJSON(w, http.StatusOK, DiffResponse{
		Schema:      DiffSchema,
		Fingerprint: sh.fp,
		Old:         oldParam,
		New:         newParam,
		Deltas:      model.Diff(oldEnt.res.Model, newEnt.res.Model),
	})
}

// handlePprof serves the merged windows' stacks view as a gzipped
// pprof protobuf — what a flame-graph UI or go tool pprof would fetch.
// 404 when the uploads carried no stack samples (pre-v3 collectors).
func (s *Server) handlePprof(w http.ResponseWriter, r *http.Request) {
	end := s.tr.Span("serve.query")
	defer end()
	sh, sel, ok := s.queryShard(w, r)
	if !ok {
		return
	}
	s.stats.queries.Add(1)
	e, err := s.analyzed(r.Context(), sh, sel)
	if err != nil {
		s.queryFail(w, sh, err)
		return
	}
	body, err := e.bytesFor("pprof", (*core.Result).WritePprof)
	if err != nil {
		s.queryFail(w, sh, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(body)
}

// handleGmon serves the merged windows as raw profile data (?v=2 for
// the compressed format, ?v=3 to include the stack-sample section) —
// the bytes an offline gmon.MergeAll over the same uploads would
// produce, which is what `make gprofd-smoke` asserts.
func (s *Server) handleGmon(w http.ResponseWriter, r *http.Request) {
	end := s.tr.Span("serve.query")
	defer end()
	sh, sel, ok := s.queryShard(w, r)
	if !ok {
		return
	}
	s.stats.queries.Add(1)
	version := gmon.Version1
	switch r.URL.Query().Get("v") {
	case "2":
		version = gmon.Version2
	case "3":
		version = gmon.Version3
	}
	body, err := s.gmonBytes(sh, sel, version)
	if err != nil {
		s.queryFail(w, sh, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(body)
}

// queryFail maps analysis errors to status codes.
func (s *Server) queryFail(w http.ResponseWriter, sh *shard, err error) {
	if errors.Is(err, errNoData) || errors.Is(err, model.ErrNoStacks) {
		s.fail(w, http.StatusNotFound, "%s: %v", sh.fp, err)
		return
	}
	s.fail(w, http.StatusInternalServerError, "analyzing %s: %v", sh.fp, err)
}

// handleFingerprints lists the registered executables and their ingest
// accounting.
func (s *Server) handleFingerprints(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET /v1/fingerprints")
		return
	}
	type row struct {
		Fingerprint string  `json:"fingerprint"`
		Routines    int     `json:"routines"`
		Uploads     int64   `json:"uploads"`
		Merged      int64   `json:"merged"`
		Dropped     int64   `json:"dropped,omitempty"`
		Windows     []int64 `json:"windows,omitempty"`
		LastError   string  `json:"last_error,omitempty"`
	}
	shards := s.allShards()
	rows := make([]row, 0, len(shards))
	for _, sh := range shards {
		accepted, merged, dropped, lastErr := sh.counts()
		rows = append(rows, row{
			Fingerprint: sh.fp,
			Routines:    len(sh.im.Funcs),
			Uploads:     accepted,
			Merged:      merged,
			Dropped:     dropped,
			Windows:     sh.windowStarts(),
			LastError:   lastErr,
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Schema       string `json:"schema"`
		Fingerprints []row  `json:"fingerprints"`
	}{Schema: "gprofd.fingerprints.v1", Fingerprints: rows})
}
