package serve

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/workloads"
)

// fakeClock is an injectable, advanceable clock for window tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// buildSort compiles the sort workload once per test binary.
var buildSort = sync.OnceValues(func() (*object.Image, error) {
	return workloads.Build("sort", true)
})

func sortImage(t *testing.T) (*object.Image, []byte) {
	t.Helper()
	im, err := buildSort()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := object.WriteImage(&buf, im); err != nil {
		t.Fatal(err)
	}
	return im, buf.Bytes()
}

func sortProfile(t *testing.T, seed uint64) *gmon.Profile {
	t.Helper()
	im, _ := sortImage(t)
	p, _, _, err := workloads.Run(im, workloads.RunConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func encodeProfile(t *testing.T, p *gmon.Profile, version int, zip bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	var w io.Writer = &buf
	var zw *gzip.Writer
	if zip {
		zw = gzip.NewWriter(&buf)
		w = zw
	}
	if err := gmon.WriteVersion(w, p, version); err != nil {
		t.Fatal(err)
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func registerExe(t *testing.T, ts *httptest.Server, imageBytes []byte) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/exe", "application/octet-stream", bytes.NewReader(imageBytes))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("register: %s: %s", resp.Status, body)
	}
	var out struct {
		Fingerprint string `json:"fingerprint"`
		Routines    int    `json:"routines"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Fingerprint == "" || out.Routines == 0 {
		t.Fatalf("register: empty response %+v", out)
	}
	return out.Fingerprint
}

func ingest(t *testing.T, ts *httptest.Server, fp string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/ingest", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(FingerprintHeader, fp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func mustStatus(t *testing.T, resp *http.Response, want int) []byte {
	t.Helper()
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		t.Fatalf("status %s, want %d: %s", resp.Status, want, body)
	}
	return body
}

func get(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestIngestAndQuery uploads the same fingerprint's profiles over every
// transport (v1/v2 × identity/gzip) and checks each query endpoint
// over the merged result — including that /v1/gmon is byte-identical
// to an offline gmon.MergeAll of the uploads.
func TestIngestAndQuery(t *testing.T) {
	_, imageBytes := sortImage(t)
	_, ts := newTestServer(t, Config{})
	fp := registerExe(t, ts, imageBytes)

	p1, p2 := sortProfile(t, 1), sortProfile(t, 2)
	uploads := [][]byte{
		encodeProfile(t, p1, gmon.Version1, false),
		encodeProfile(t, p1, gmon.Version2, false),
		encodeProfile(t, p2, gmon.Version1, true),
		encodeProfile(t, p2, gmon.Version2, true),
	}
	for i, body := range uploads {
		resp := ingest(t, ts, fp, body)
		out := mustStatus(t, resp, http.StatusAccepted)
		if !bytes.Contains(out, []byte(fp)) {
			t.Errorf("upload %d: response lacks fingerprint: %s", i, out)
		}
	}

	// Raw merged profile vs offline MergeAll over the same uploads.
	want, err := gmon.MergeAll(context.Background(), []*gmon.Profile{p1, p1, p2, p2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wantBuf bytes.Buffer
	if err := gmon.Write(&wantBuf, want); err != nil {
		t.Fatal(err)
	}
	got := mustStatus(t, get(t, ts, "/v1/gmon?sync=1&fp="+fp), http.StatusOK)
	if !bytes.Equal(got, wantBuf.Bytes()) {
		t.Errorf("server merge (%d bytes) differs from offline MergeAll (%d bytes)", len(got), wantBuf.Len())
	}

	// The v2 form decodes back to the same profile.
	gotV2 := mustStatus(t, get(t, ts, "/v1/gmon?sync=1&fp="+fp+"&v=2"), http.StatusOK)
	decoded, err := gmon.Open(bytes.NewReader(gotV2))
	if err != nil {
		t.Fatalf("decoding v2 merged profile: %v", err)
	}
	var rebuf bytes.Buffer
	if err := gmon.Write(&rebuf, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuf.Bytes(), wantBuf.Bytes()) {
		t.Error("v2 merged profile does not round-trip to the v1 merge bytes")
	}

	flat := string(mustStatus(t, get(t, ts, "/v1/flat?fp="+fp), http.StatusOK))
	if !strings.Contains(flat, "flat profile") || !strings.Contains(flat, "partition") {
		t.Errorf("flat output missing expected content:\n%s", flat)
	}
	graph := string(mustStatus(t, get(t, ts, "/v1/callgraph?fp="+fp), http.StatusOK))
	if !strings.Contains(graph, "call graph profile") {
		t.Errorf("call graph output missing header:\n%s", graph)
	}

	var prof struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(mustStatus(t, get(t, ts, "/v1/profile?fp="+fp), http.StatusOK), &prof); err != nil {
		t.Fatal(err)
	}
	if prof.Schema != "gprof.profile.v1" {
		t.Errorf("profile schema = %q", prof.Schema)
	}

	var list struct {
		Schema       string `json:"schema"`
		Fingerprints []struct {
			Fingerprint string `json:"fingerprint"`
			Uploads     int64  `json:"uploads"`
			Merged      int64  `json:"merged"`
		} `json:"fingerprints"`
	}
	if err := json.Unmarshal(mustStatus(t, get(t, ts, "/v1/fingerprints"), http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	if list.Schema != "gprofd.fingerprints.v1" || len(list.Fingerprints) != 1 {
		t.Fatalf("fingerprints listing: %+v", list)
	}
	if row := list.Fingerprints[0]; row.Fingerprint != fp || row.Uploads != 4 || row.Merged != 4 {
		t.Errorf("fingerprint row: %+v", row)
	}
}

// TestWindowSelection drives the clock across window boundaries and
// checks current/prev/at/all selection plus the two-window diff.
func TestWindowSelection(t *testing.T) {
	_, imageBytes := sortImage(t)
	clock := newFakeClock()
	_, ts := newTestServer(t, Config{Window: time.Minute, Now: clock.Now})
	fp := registerExe(t, ts, imageBytes)

	p1, p2 := sortProfile(t, 1), sortProfile(t, 2)
	mustStatus(t, ingest(t, ts, fp, encodeProfile(t, p1, gmon.Version1, false)), http.StatusAccepted)
	firstWindow := clock.Now().Unix() - clock.Now().Unix()%60
	clock.Advance(time.Minute)
	mustStatus(t, ingest(t, ts, fp, encodeProfile(t, p2, gmon.Version1, false)), http.StatusAccepted)

	gmonAt := func(window string) []byte {
		return mustStatus(t, get(t, ts, "/v1/gmon?sync=1&fp="+fp+"&window="+window), http.StatusOK)
	}
	var b1, b2 bytes.Buffer
	if err := gmon.Write(&b1, p1); err != nil {
		t.Fatal(err)
	}
	if err := gmon.Write(&b2, p2); err != nil {
		t.Fatal(err)
	}
	if got := gmonAt("prev"); !bytes.Equal(got, b1.Bytes()) {
		t.Error("window=prev is not the first upload")
	}
	if got := gmonAt("current"); !bytes.Equal(got, b2.Bytes()) {
		t.Error("window=current is not the second upload")
	}
	if got := gmonAt(fmt.Sprint(firstWindow)); !bytes.Equal(got, b1.Bytes()) {
		t.Error("window=<start> is not the first upload")
	}
	merged, err := gmon.MergeAll(context.Background(), []*gmon.Profile{p1, p2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var bm bytes.Buffer
	if err := gmon.Write(&bm, merged); err != nil {
		t.Fatal(err)
	}
	if got := gmonAt("all"); !bytes.Equal(got, bm.Bytes()) {
		t.Error("window=all is not the two-window merge")
	}

	// Diff defaults to prev vs current.
	var diff DiffResponse
	if err := json.Unmarshal(mustStatus(t, get(t, ts, "/v1/diff?fp="+fp), http.StatusOK), &diff); err != nil {
		t.Fatal(err)
	}
	if diff.Schema != DiffSchema || diff.Old != "prev" || diff.New != "current" {
		t.Errorf("diff envelope: %+v", diff)
	}
	if len(diff.Deltas) == 0 {
		t.Error("diff of two distinct windows has no deltas")
	}

	// An empty future window is 404, not an empty report.
	clock.Advance(time.Hour)
	mustStatus(t, get(t, ts, "/v1/flat?fp="+fp+"&window=current"), http.StatusNotFound)
}

// TestWindowEviction checks Retain bounds the windows a shard keeps.
func TestWindowEviction(t *testing.T) {
	_, imageBytes := sortImage(t)
	clock := newFakeClock()
	_, ts := newTestServer(t, Config{Window: time.Minute, Retain: 2, Now: clock.Now})
	fp := registerExe(t, ts, imageBytes)

	body := encodeProfile(t, sortProfile(t, 1), gmon.Version1, false)
	for i := 0; i < 4; i++ {
		mustStatus(t, ingest(t, ts, fp, body), http.StatusAccepted)
		clock.Advance(time.Minute)
	}
	mustStatus(t, get(t, ts, "/v1/flat?fp="+fp+"&sync=1"), http.StatusOK)
	var list struct {
		Fingerprints []struct {
			Windows []int64 `json:"windows"`
		} `json:"fingerprints"`
	}
	if err := json.Unmarshal(mustStatus(t, get(t, ts, "/v1/fingerprints"), http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	if n := len(list.Fingerprints[0].Windows); n != 2 {
		t.Errorf("retained %d windows, want 2 (Retain)", n)
	}
}

// TestBackpressure fills a shard whose worker never runs and checks the
// handler's 429 + Retry-After path deterministically.
func TestBackpressure(t *testing.T) {
	im, _ := sortImage(t)
	s, ts := newTestServer(t, Config{QueueDepth: 1})
	const fp = "test-backpressure-fp"
	sh := newShard(fp, im, s.cfg, s.tr, s.metrics, s.rec)
	s.mu.Lock()
	s.shards[fp] = sh // worker deliberately not started: queue never drains
	s.mu.Unlock()
	defer sh.start() // let Close drain it at cleanup

	body := encodeProfile(t, sortProfile(t, 1), gmon.Version1, false)
	mustStatus(t, ingest(t, ts, fp, body), http.StatusAccepted)
	resp := ingest(t, ts, fp, body)
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response lacks Retry-After")
	}
	mustStatus(t, resp, http.StatusTooManyRequests)
	if got := s.Snapshot().RejectedBackpressure; got != 1 {
		t.Errorf("RejectedBackpressure = %d, want 1", got)
	}
}

// TestGeometryConflict checks an upload whose histogram geometry
// contradicts the fingerprint's established one is rejected with 409.
func TestGeometryConflict(t *testing.T) {
	_, imageBytes := sortImage(t)
	_, ts := newTestServer(t, Config{})
	fp := registerExe(t, ts, imageBytes)

	a := &gmon.Profile{Hist: gmon.Histogram{Low: 0, High: 16, Step: 1, Counts: make([]uint32, 16)}}
	b := &gmon.Profile{Hist: gmon.Histogram{Low: 0, High: 32, Step: 1, Counts: make([]uint32, 32)}}
	mustStatus(t, ingest(t, ts, fp, encodeProfile(t, a, gmon.Version1, false)), http.StatusAccepted)
	out := mustStatus(t, ingest(t, ts, fp, encodeProfile(t, b, gmon.Version1, false)), http.StatusConflict)
	if !bytes.Contains(out, []byte("geometry")) {
		t.Errorf("409 body does not explain the mismatch: %s", out)
	}
}

// TestRequestErrors covers the 4xx surface: bad methods, missing and
// unknown fingerprints, bad window selectors, and querying before any
// upload.
func TestRequestErrors(t *testing.T) {
	_, imageBytes := sortImage(t)
	_, ts := newTestServer(t, Config{})
	fp := registerExe(t, ts, imageBytes)

	// Wrong methods.
	mustStatus(t, get(t, ts, "/v1/exe"), http.StatusMethodNotAllowed)
	mustStatus(t, get(t, ts, "/v1/ingest"), http.StatusMethodNotAllowed)
	resp, err := http.Post(ts.URL+"/v1/flat?fp="+fp, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusMethodNotAllowed)

	body := encodeProfile(t, sortProfile(t, 1), gmon.Version1, false)
	mustStatus(t, ingest(t, ts, "", body), http.StatusBadRequest)         // no fingerprint
	mustStatus(t, ingest(t, ts, "no-such-fp", body), http.StatusNotFound) // unknown fingerprint
	mustStatus(t, get(t, ts, "/v1/flat"), http.StatusBadRequest)          // no ?fp=
	mustStatus(t, get(t, ts, "/v1/flat?fp=no-such-fp"), http.StatusNotFound)
	mustStatus(t, get(t, ts, "/v1/flat?fp="+fp+"&window=bogus"), http.StatusBadRequest)
	mustStatus(t, get(t, ts, "/v1/flat?fp="+fp), http.StatusNotFound) // registered but no data
	mustStatus(t, get(t, ts, "/v1/diff?fp="+fp+"&old=bogus"), http.StatusBadRequest)
}

// TestMaxShards checks the registry bound: one fingerprint fits, the
// next executable is refused with 507.
func TestMaxShards(t *testing.T) {
	_, imageBytes := sortImage(t)
	_, ts := newTestServer(t, Config{MaxShards: 1})
	registerExe(t, ts, imageBytes)

	other, err := workloads.Build("matrix", true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := object.WriteImage(&buf, other); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/exe", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusInsufficientStorage)

	// Re-registering the first image stays idempotent even at the bound.
	_, imageBytes2 := sortImage(t)
	resp, err = http.Post(ts.URL+"/v1/exe", "application/octet-stream", bytes.NewReader(imageBytes2))
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, resp, http.StatusOK)
}

// TestStats checks the always-on counters and that an attached obs
// trace surfaces its counters in the payload.
func TestStats(t *testing.T) {
	tr := obs.New()
	_, imageBytes := sortImage(t)
	_, ts := newTestServer(t, Config{Trace: tr})
	fp := registerExe(t, ts, imageBytes)
	body := encodeProfile(t, sortProfile(t, 1), gmon.Version1, false)
	mustStatus(t, ingest(t, ts, fp, body), http.StatusAccepted)
	mustStatus(t, get(t, ts, "/v1/flat?fp="+fp+"&sync=1"), http.StatusOK)

	var st Stats
	if err := json.Unmarshal(mustStatus(t, get(t, ts, "/v1/stats"), http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Schema != StatsSchema {
		t.Errorf("schema = %q", st.Schema)
	}
	if st.ProfilesAccepted != 1 || st.BytesIngested != int64(len(body)) {
		t.Errorf("accepted=%d bytes=%d, want 1/%d", st.ProfilesAccepted, st.BytesIngested, len(body))
	}
	if st.ExecutablesRegistered != 1 || st.Queries != 1 {
		t.Errorf("registered=%d queries=%d, want 1/1", st.ExecutablesRegistered, st.Queries)
	}
	if len(st.Shards) != 1 || st.Shards[0].Fingerprint != fp {
		t.Errorf("shards: %+v", st.Shards)
	}
	if st.Counters["serve.profiles_ingested"] != 1 {
		t.Errorf("obs counters missing from stats: %+v", st.Counters)
	}
	if st.HeapAllocBytes == 0 || st.NumGoroutine == 0 {
		t.Error("runtime stats missing")
	}
}

// TestClose checks shutdown semantics: ingest is refused but queries
// keep serving the merged windows.
func TestClose(t *testing.T) {
	_, imageBytes := sortImage(t)
	s, ts := newTestServer(t, Config{})
	fp := registerExe(t, ts, imageBytes)
	body := encodeProfile(t, sortProfile(t, 1), gmon.Version1, false)
	mustStatus(t, ingest(t, ts, fp, body), http.StatusAccepted)
	mustStatus(t, get(t, ts, "/v1/flat?fp="+fp+"&sync=1"), http.StatusOK)

	s.Close()
	mustStatus(t, ingest(t, ts, fp, body), http.StatusServiceUnavailable)
	mustStatus(t, get(t, ts, "/v1/flat?fp="+fp), http.StatusOK)
}

// TestParseWindow pins the selector grammar.
func TestParseWindow(t *testing.T) {
	for _, tc := range []struct {
		in   string
		kind int
		ok   bool
	}{
		{"", selAll, true},
		{"all", selAll, true},
		{"current", selCurrent, true},
		{"prev", selPrev, true},
		{"1700000000", selAt, true},
		{"-5", 0, false},
		{"latest", 0, false},
	} {
		sel, err := parseWindow(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("parseWindow(%q) err=%v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && sel.kind != tc.kind {
			t.Errorf("parseWindow(%q) kind=%d, want %d", tc.in, sel.kind, tc.kind)
		}
	}
}
