package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/pprofenc"
	"repro/internal/report"
)

// The dogfood loop: gprofd profiles itself with the same machinery it
// serves to everyone else. A background goroutine periodically captures
// the process's own Go runtime CPU profile, decodes it with the in-repo
// pprof reader (internal/pprofenc — no go tool pprof), converts the
// name-resolved stacks into the gprof.profile.v2 stacks model, and
// serves the result at GET /v1/self as a flat table, folded stacks, a
// re-encoded pprof protobuf, or the model JSON. The operator question
// "where does gprofd itself spend its time?" is answered by gprofd.

// selfViews is one capture rendered every way /v1/self serves it,
// built once at capture time so the handler only writes bytes.
type selfSnapshot struct {
	capturedAt time.Time
	window     time.Duration
	samples    int64
	profile    *model.Profile

	flat   []byte
	folded []byte
	pprof  []byte
}

// selfProfiler owns the capture loop. Captures are serialized by mu —
// the Go runtime allows one active CPU profile per process — and the
// newest capture that actually held samples is kept in latest, so an
// idle stretch does not blank out the endpoint.
type selfProfiler struct {
	srv      *Server
	interval time.Duration // 0: no loop; /v1/self captures on demand
	window   time.Duration

	// captureFn runs one CPU capture of duration d and returns the raw
	// pprof bytes. Injectable so tests feed deterministic profiles
	// without racing the runtime profiler.
	captureFn func(d time.Duration) ([]byte, error)

	mu     sync.Mutex // serializes captures
	latest atomic.Pointer[selfSnapshot]
	stop   chan struct{}
	done   chan struct{}
}

func newSelfProfiler(srv *Server, interval, window time.Duration) *selfProfiler {
	if window <= 0 {
		window = time.Second
	}
	if interval > 0 && window > interval/2 {
		window = interval / 2
	}
	return &selfProfiler{
		srv:       srv,
		interval:  interval,
		window:    window,
		captureFn: captureCPUProfile,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// captureCPUProfile is the production captureFn: one runtime/pprof CPU
// capture of duration d.
func captureCPUProfile(d time.Duration) ([]byte, error) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Another capture is active (the operator's -pprof listener,
		// most likely). Report rather than fight over the profiler.
		return nil, fmt.Errorf("starting CPU profile: %w", err)
	}
	time.Sleep(d)
	pprof.StopCPUProfile()
	return buf.Bytes(), nil
}

// startLoop begins periodic capture; no-op when interval is zero.
func (sp *selfProfiler) startLoop() {
	if sp.interval <= 0 {
		close(sp.done)
		return
	}
	go func() {
		defer close(sp.done)
		t := time.NewTicker(sp.interval)
		defer t.Stop()
		for {
			select {
			case <-sp.stop:
				return
			case <-t.C:
				sp.captureOnce()
			}
		}
	}()
}

// stopLoop halts the loop and waits for an in-flight capture to finish.
func (sp *selfProfiler) stopLoop() {
	select {
	case <-sp.stop:
	default:
		close(sp.stop)
	}
	if sp.interval > 0 {
		<-sp.done
	}
}

// captureOnce runs one capture → decode → model → render cycle. A
// capture with no samples (idle process) keeps the previous snapshot;
// only captures carrying data replace it.
func (sp *selfProfiler) captureOnce() {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	m := sp.srv.metrics
	m.selfCaptures.Add(1)
	fs := sp.srv.rec.Start("selfprofile capture")
	raw, err := sp.captureFn(sp.window)
	fs.End()
	if err != nil {
		m.selfErrors.Add(1)
		return
	}
	snap, err := buildSelfSnapshot(raw, sp.srv.cfg.Now(), sp.window)
	if err != nil {
		m.selfErrors.Add(1)
		return
	}
	if snap.samples == 0 {
		m.selfEmpty.Add(1)
		return
	}
	sp.latest.Store(snap)
}

// buildSelfSnapshot decodes one raw pprof capture and renders every
// /v1/self view from it.
func buildSelfSnapshot(raw []byte, now time.Time, window time.Duration) (*selfSnapshot, error) {
	d, err := pprofenc.Decode(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("decoding self profile: %w", err)
	}
	prof, samples := selfModel(d)
	snap := &selfSnapshot{
		capturedAt: now,
		window:     window,
		samples:    samples,
		profile:    prof,
	}
	if samples == 0 {
		return snap, nil
	}
	if err := prof.Validate(); err != nil {
		return nil, fmt.Errorf("self profile failed validation: %w", err)
	}
	var flat bytes.Buffer
	writeSelfFlat(&flat, snap)
	snap.flat = flat.Bytes()
	var folded bytes.Buffer
	if err := report.Folded(&folded, prof); err != nil {
		return nil, fmt.Errorf("rendering folded self profile: %w", err)
	}
	snap.folded = folded.Bytes()
	var pb bytes.Buffer
	if err := pprofenc.Encode(&pb, prof); err != nil {
		return nil, fmt.Errorf("re-encoding self profile: %w", err)
	}
	snap.pprof = pb.Bytes()
	return snap, nil
}

// selfModel converts a decoded runtime CPU profile into the stacks-only
// gprof.profile.v2 model: the samples/count value per stack feeds
// StacksFromFrames, and the sampling rate comes from the period (the
// runtime reports nanoseconds per sample).
func selfModel(d *pprofenc.Decoded) (*model.Profile, int64) {
	valIdx := 0
	for i, st := range d.SampleType {
		if st[0] == "samples" && st[1] == "count" {
			valIdx = i
			break
		}
	}
	hz := int64(100)
	if d.PeriodType[1] == "nanoseconds" && d.Period > 0 {
		hz = int64(time.Second) / d.Period
		if hz <= 0 {
			hz = 1
		}
	}
	frames := make([]model.FrameSample, 0, len(d.Samples))
	var total int64
	for _, s := range d.Samples {
		if valIdx >= len(s.Values) {
			continue
		}
		v := s.Values[valIdx]
		if v <= 0 {
			continue
		}
		total += v
		frames = append(frames, model.FrameSample{Frames: s.Stack, Count: v})
	}
	view := model.StacksFromFrames(frames)
	return &model.Profile{
		Schema:       model.SchemaV2,
		Hz:           hz,
		TotalTicks:   float64(view.Samples),
		TotalSeconds: float64(view.Samples) / float64(hz),
		Stacks:       view,
	}, total
}

// writeSelfFlat renders the per-routine rollup as a flat table: the
// measured self/inclusive split BuildStacks guarantees, ordered by
// decreasing inclusive time.
func writeSelfFlat(w *bytes.Buffer, snap *selfSnapshot) {
	v := snap.profile.Stacks
	fmt.Fprintf(w, "gprofd self profile: %d samples over %s (captured %s)\n",
		v.Samples, snap.window, snap.capturedAt.UTC().Format(time.RFC3339))
	fmt.Fprintf(w, "%7s %7s %8s %8s  %s\n", "incl%", "self%", "incl", "self", "routine")
	total := float64(v.Samples)
	for _, r := range v.Routines {
		fmt.Fprintf(w, "%6.1f%% %6.1f%% %8d %8d  %s\n",
			100*float64(r.InclusiveTicks)/total, 100*float64(r.SelfTicks)/total,
			r.InclusiveTicks, r.SelfTicks, r.Name)
	}
}

// handleSelf serves the most recent self-profile capture. With no
// background loop (or before its first productive capture) the handler
// captures on demand, so `curl /v1/self` always works; 503 only when a
// capture cannot produce samples.
func (s *Server) handleSelf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET /v1/self")
		return
	}
	snap := s.self.latest.Load()
	if snap == nil {
		s.self.captureOnce()
		snap = s.self.latest.Load()
	}
	if snap == nil {
		s.fail(w, http.StatusServiceUnavailable,
			"self profile has no samples yet (idle process or profiler busy); retry under load")
		return
	}
	switch view := r.URL.Query().Get("view"); view {
	case "", "flat":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(snap.flat)
	case "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(snap.folded)
	case "pprof":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(snap.pprof)
	case "json":
		writeJSON(w, http.StatusOK, snap.profile)
	default:
		s.fail(w, http.StatusBadRequest, "unknown view %q (want flat, folded, pprof, or json)", view)
	}
}
