package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/obs"
)

// The incremental read path's correctness bar: every response — cold,
// warm, or mid-ingest — must be byte-identical to an offline
// gmon.MergeAll + core.Run over the same upload multiset. These tests
// interleave ingest, query, and eviction and byte-compare at every
// step.

func offlineMerge(t *testing.T, profiles []*gmon.Profile) []byte {
	t.Helper()
	merged, err := gmon.MergeAll(context.Background(), profiles, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gmon.Write(&buf, merged); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func offlineFlat(t *testing.T, im *object.Image, profiles []*gmon.Profile) []byte {
	t.Helper()
	merged, err := gmon.MergeAll(context.Background(), profiles, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(context.Background(), core.ImageSource{Image: im}, merged, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteFlat(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeGmon(t *testing.T, p *gmon.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gmon.Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIncrementalWarmHit checks the cache accounting across a
// cold query, a warm repeat, and an invalidating fold: hits and misses
// land in /v1/stats, the shard version bumps per fold, and the
// post-fold response reflects the new data (never a stale cache).
func TestIncrementalWarmHit(t *testing.T) {
	tr := obs.New()
	im, imageBytes := sortImage(t)
	s, ts := newTestServer(t, Config{Trace: tr})
	fp := registerExe(t, ts, imageBytes)
	p1 := sortProfile(t, 1)
	body := encodeProfile(t, p1, gmon.Version1, false)

	mustStatus(t, ingest(t, ts, fp, body), http.StatusAccepted)
	cold := mustStatus(t, get(t, ts, "/v1/flat?sync=1&fp="+fp), http.StatusOK)
	if want := offlineFlat(t, im, []*gmon.Profile{p1}); !bytes.Equal(cold, want) {
		t.Error("cold flat differs from offline core.Run")
	}
	warm := mustStatus(t, get(t, ts, "/v1/flat?fp="+fp), http.StatusOK)
	if !bytes.Equal(warm, cold) {
		t.Error("warm flat differs from cold flat")
	}
	// A different endpoint over the same analysis also hits the entry.
	mustStatus(t, get(t, ts, "/v1/profile?fp="+fp), http.StatusOK)

	st := s.Snapshot()
	if st.AnalysisCacheMisses != 1 {
		t.Errorf("analysis misses = %d, want 1", st.AnalysisCacheMisses)
	}
	if st.AnalysisCacheHits < 2 {
		t.Errorf("analysis hits = %d, want >= 2", st.AnalysisCacheHits)
	}
	if st.SnapshotCacheHits < 2 || st.SnapshotCacheMisses != 1 {
		t.Errorf("snapshot hits/misses = %d/%d, want >=2/1", st.SnapshotCacheHits, st.SnapshotCacheMisses)
	}
	if len(st.Shards) != 1 || st.Shards[0].Version != 1 {
		t.Fatalf("shard version: %+v", st.Shards)
	}
	if st.Counters["serve.analysis_cache_hit"] < 2 || st.Counters["serve.snapshot_cache_hit"] < 2 {
		t.Errorf("obs cache counters missing: %+v", st.Counters)
	}

	// A fold invalidates: the next query misses and serves the new merge.
	mustStatus(t, ingest(t, ts, fp, body), http.StatusAccepted)
	refreshed := mustStatus(t, get(t, ts, "/v1/flat?sync=1&fp="+fp), http.StatusOK)
	if want := offlineFlat(t, im, []*gmon.Profile{p1, p1}); !bytes.Equal(refreshed, want) {
		t.Error("post-fold flat differs from offline core.Run of both uploads")
	}
	if bytes.Equal(refreshed, cold) {
		t.Error("post-fold flat still serves the stale single-upload analysis")
	}
	st = s.Snapshot()
	if st.AnalysisCacheMisses != 2 {
		t.Errorf("analysis misses after fold = %d, want 2", st.AnalysisCacheMisses)
	}
	if st.Shards[0].Version != 2 {
		t.Errorf("shard version after fold = %d, want 2", st.Shards[0].Version)
	}
}

// TestIncrementalInterleavedInvalidation interleaves ingest, query,
// window rotation, and retention eviction, byte-comparing every cached
// response (and its warm repeat) against a fresh offline MergeAll +
// core.Run of the same upload multiset, via the ?sync=1 quiesce path.
func TestIncrementalInterleavedInvalidation(t *testing.T) {
	im, imageBytes := sortImage(t)
	clock := newFakeClock()
	_, ts := newTestServer(t, Config{Window: time.Minute, Retain: 2, Now: clock.Now})
	fp := registerExe(t, ts, imageBytes)

	// Mirror of the server's retained state: window start -> uploads.
	retained := map[int64][]*gmon.Profile{}
	winStart := func() int64 {
		sec := clock.Now().Unix()
		return sec - sec%60
	}
	upload := func(p *gmon.Profile) {
		mustStatus(t, ingest(t, ts, fp, encodeProfile(t, p, gmon.Version1, false)), http.StatusAccepted)
		retained[winStart()] = append(retained[winStart()], p)
		for len(retained) > 2 { // Retain
			oldest := int64(0)
			first := true
			for start := range retained {
				if first || start < oldest {
					oldest, first = start, false
				}
			}
			delete(retained, oldest)
		}
	}
	allRetained := func() []*gmon.Profile {
		starts := make([]int64, 0, len(retained))
		for start := range retained {
			starts = append(starts, start)
		}
		for i := range starts { // ascending, as the server folds
			for j := i + 1; j < len(starts); j++ {
				if starts[j] < starts[i] {
					starts[i], starts[j] = starts[j], starts[i]
				}
			}
		}
		var out []*gmon.Profile
		for _, start := range starts {
			out = append(out, retained[start]...)
		}
		return out
	}
	verify := func(label string) {
		t.Helper()
		wantGmon := offlineMerge(t, allRetained())
		got := mustStatus(t, get(t, ts, "/v1/gmon?sync=1&fp="+fp), http.StatusOK)
		if !bytes.Equal(got, wantGmon) {
			t.Errorf("%s: gmon(all) differs from offline MergeAll", label)
		}
		if again := mustStatus(t, get(t, ts, "/v1/gmon?fp="+fp), http.StatusOK); !bytes.Equal(again, got) {
			t.Errorf("%s: warm gmon repeat differs", label)
		}
		wantFlat := offlineFlat(t, im, allRetained())
		gotFlat := mustStatus(t, get(t, ts, "/v1/flat?sync=1&fp="+fp), http.StatusOK)
		if !bytes.Equal(gotFlat, wantFlat) {
			t.Errorf("%s: flat(all) differs from offline core.Run", label)
		}
		if again := mustStatus(t, get(t, ts, "/v1/flat?fp="+fp), http.StatusOK); !bytes.Equal(again, gotFlat) {
			t.Errorf("%s: warm flat repeat differs", label)
		}
		if ps := retained[winStart()]; len(ps) > 0 {
			want := offlineMerge(t, ps)
			got := mustStatus(t, get(t, ts, "/v1/gmon?sync=1&fp="+fp+"&window=current"), http.StatusOK)
			if !bytes.Equal(got, want) {
				t.Errorf("%s: gmon(current) differs from offline MergeAll", label)
			}
		}
	}

	p1, p2, p3 := sortProfile(t, 1), sortProfile(t, 2), sortProfile(t, 3)
	upload(p1)
	verify("first upload")
	upload(p2)
	verify("second fold, same window") // in-window invalidation
	clock.Advance(time.Minute)
	upload(p3)
	verify("second window")
	clock.Advance(time.Minute)
	upload(p1)
	verify("third window evicts first") // retention eviction invalidation
	upload(p2)
	verify("fold into newest window")
}

// TestSnapshotCopyOnWrite holds the shared snapshot a query cached,
// folds more data into its window, and checks the held snapshot is
// frozen (the fold cloned) while the next query sees the new merge
// under a new key.
func TestSnapshotCopyOnWrite(t *testing.T) {
	tr := obs.New()
	_, imageBytes := sortImage(t)
	s, ts := newTestServer(t, Config{Trace: tr})
	fp := registerExe(t, ts, imageBytes)
	p1 := sortProfile(t, 1)
	body := encodeProfile(t, p1, gmon.Version1, false)

	mustStatus(t, ingest(t, ts, fp, body), http.StatusAccepted)
	mustStatus(t, get(t, ts, "/v1/gmon?sync=1&fp="+fp), http.StatusOK)
	sh, ok := s.shardFor(fp)
	if !ok {
		t.Fatal("no shard after register+ingest")
	}
	snap, n, key := sh.snapshot(windowSel{kind: selAll}, s.cfg.Now())
	if n != 1 || key == "" {
		t.Fatalf("snapshot: n=%d key=%q", n, key)
	}
	before := encodeGmon(t, snap)

	mustStatus(t, ingest(t, ts, fp, body), http.StatusAccepted)
	mustStatus(t, get(t, ts, "/v1/gmon?sync=1&fp="+fp), http.StatusOK)

	if after := encodeGmon(t, snap); !bytes.Equal(before, after) {
		t.Error("fold mutated a snapshot shared with a cached query")
	}
	snap2, _, key2 := sh.snapshot(windowSel{kind: selAll}, s.cfg.Now())
	if key2 == key {
		t.Error("fold did not change the snapshot key")
	}
	if want := offlineMerge(t, []*gmon.Profile{p1, p1}); !bytes.Equal(encodeGmon(t, snap2), want) {
		t.Error("post-fold snapshot differs from offline MergeAll")
	}
	if got := s.Snapshot().Counters["serve.snapshot_cow_clones"]; got != 1 {
		t.Errorf("cow clones = %d, want 1", got)
	}
}

// TestFlightGroupCoalesces pins the single-flight contract: callers
// arriving while a flight is in progress join it instead of running
// their own, executions + coalesced joins account for every caller,
// and a retired flight does not absorb later calls.
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	gate := make(chan struct{})
	started := make(chan struct{})
	want := &analysisEntry{}
	var runs atomic.Int32
	type result struct {
		val       *analysisEntry
		err       error
		coalesced bool
	}
	leaderCh := make(chan result, 1)
	go func() {
		val, err, coalesced := g.do(context.Background(), "k", func() (*analysisEntry, error) {
			runs.Add(1)
			close(started)
			<-gate
			return want, nil
		})
		leaderCh <- result{val, err, coalesced}
	}()
	<-started

	// The flight cannot retire while fn blocks on the gate, so this
	// probe deterministically finds it and must report coalesced.
	probeCtx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err, coalesced := g.do(probeCtx, "k", nil); err == nil || !coalesced {
		t.Errorf("in-flight probe: err=%v coalesced=%v, want ctx error + coalesced", err, coalesced)
	}

	const joiners = 4
	joinCh := make(chan result, joiners)
	for i := 0; i < joiners; i++ {
		go func() {
			val, err, coalesced := g.do(context.Background(), "k", func() (*analysisEntry, error) {
				// A caller that slipped in after the flight retired runs
				// fresh (the server's equivalent hits the LRU the leader
				// filled). Counted below so the accounting stays exact.
				runs.Add(1)
				return want, nil
			})
			joinCh <- result{val, err, coalesced}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the joiners park on the flight
	close(gate)
	if r := <-leaderCh; r.val != want || r.err != nil || r.coalesced {
		t.Errorf("leader: %+v", r)
	}
	coalesced := 0
	for i := 0; i < joiners; i++ {
		r := <-joinCh
		if r.val != want || r.err != nil {
			t.Errorf("joiner: %+v", r)
		}
		if r.coalesced {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Error("no joiner coalesced onto the in-progress flight")
	}
	if got := int(runs.Load()); got != 1+joiners-coalesced {
		t.Errorf("%d executions for %d coalesced joins, want %d", got, coalesced, 1+joiners-coalesced)
	}

	// The flight retired; a fresh call runs its own fn, uncoalesced.
	ran := false
	if _, err, coalesced := g.do(context.Background(), "k", func() (*analysisEntry, error) {
		ran = true
		return nil, nil
	}); err != nil || coalesced || !ran {
		t.Errorf("post-retire do: err=%v coalesced=%v ran=%v", err, coalesced, ran)
	}
}

// TestFlightGroupContext checks a joiner whose context expires abandons
// the wait without killing the flight.
func TestFlightGroupContext(t *testing.T) {
	var g flightGroup
	gate := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		g.do(context.Background(), "k", func() (*analysisEntry, error) {
			close(started)
			<-gate
			return &analysisEntry{}, nil
		})
		close(done)
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err, coalesced := g.do(ctx, "k", nil); err == nil || !coalesced {
		t.Errorf("canceled joiner: err=%v coalesced=%v", err, coalesced)
	}
	close(gate)
	<-done
}

// TestConcurrentIngestQueryByteIdentity races ingest against queries on
// one window and checks every response equals an offline MergeAll (or
// core.Run) of some prefix of the uploads — the server never serves a
// torn or stale-cache merge — and the quiesced end state equals the
// full multiset. Run under -race this also sweeps the copy-on-write
// sharing between folds and cached snapshots.
func TestConcurrentIngestQueryByteIdentity(t *testing.T) {
	im, imageBytes := sortImage(t)
	clock := newFakeClock() // never advanced: one window, deterministic multiset
	_, ts := newTestServer(t, Config{Now: clock.Now})
	fp := registerExe(t, ts, imageBytes)
	p := sortProfile(t, 1)
	body := encodeProfile(t, p, gmon.Version1, false)

	const uploads = 8
	wantGmon := make(map[string]bool, uploads)
	wantFlat := make(map[string]bool, uploads)
	var prefix []*gmon.Profile
	var finalGmon []byte
	for m := 1; m <= uploads; m++ {
		prefix = append(prefix, p)
		finalGmon = offlineMerge(t, prefix)
		wantGmon[string(finalGmon)] = true
		wantFlat[string(offlineFlat(t, im, prefix))] = true
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < uploads/2; j++ {
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/ingest", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set(FingerprintHeader, fp)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusAccepted {
					t.Errorf("ingest: %s", resp.Status)
				}
			}
		}()
	}
	queries := []struct {
		path string
		want map[string]bool
	}{
		{"/v1/gmon?sync=1&fp=" + fp, wantGmon},
		{"/v1/flat?fp=" + fp, wantFlat},
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 6; j++ {
				for _, q := range queries {
					resp, err := http.Get(ts.URL + q.path)
					if err != nil {
						t.Error(err)
						return
					}
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusNotFound {
						continue // no merged data yet
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("%s: %s", q.path, resp.Status)
						continue
					}
					if !q.want[string(b)] {
						t.Errorf("%s: response matches no offline prefix merge", q.path)
					}
				}
			}
		}()
	}
	wg.Wait()

	final := mustStatus(t, get(t, ts, "/v1/gmon?sync=1&fp="+fp), http.StatusOK)
	if !bytes.Equal(final, finalGmon) {
		t.Errorf("quiesced merge differs from offline MergeAll of all %d uploads", uploads)
	}
}
