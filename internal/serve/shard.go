package serve

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/obs"
)

// ingestItem is one unit of shard work: a decoded upload stamped with
// the window it lands in, or a barrier (profile nil) whose ack channel
// closes once everything enqueued before it has merged.
type ingestItem struct {
	profile     *gmon.Profile
	windowStart int64         // unix seconds, truncated to the window
	ack         chan struct{} // barrier only
}

// window is one time bin's aggregate plus the bookkeeping the
// incremental query path needs: a fold version (so snapshot cache keys
// change exactly when the data does) and a shared flag implementing
// copy-on-write (a cached snapshot may reference prof directly; the
// next fold into the window must clone before mutating).
type window struct {
	prof    *gmon.Profile
	version int64 // shard version at the last fold into this window
	shared  bool  // prof is referenced by a cached snapshot
}

// snapCacheEntries bounds each shard's merged-snapshot cache. Live keys
// are one per distinct window selection of the current data version —
// a handful — and every fold retires a generation, so a small LRU
// holds the working set while old generations fall off the tail.
const snapCacheEntries = 8

// shard is the merge pipeline for one executable fingerprint: a
// bounded queue feeding a single worker goroutine that folds uploads
// into time-windowed aggregates. One worker per fingerprint
// serializes merging (Profile.Merge is not concurrency-safe) while
// distinct fingerprints merge in parallel.
//
// The query side is incremental: every fold bumps the shard version
// and stamps it on the folded window, and merged-window snapshots are
// cached per resolved (window start, version) selection, so a query
// against an unchanged shard reuses the previous merge instead of
// re-cloning and re-folding every retained window. Cached snapshots
// are shared read-only with callers; copy-on-write in merge keeps a
// concurrent fold from ever mutating one.
type shard struct {
	fp     string
	im     *object.Image
	window int64 // window width, seconds
	retain int
	queue  chan ingestItem
	done   chan struct{}
	tr     *obs.Trace
	depth  *obs.Gauge          // high-water queue depth
	snaps  *core.LRU           // resolved selection -> *gmon.Profile (read-only)
	rec      *obs.FlightRecorder // fold spans for /debug/flightrec (nil-safe)
	foldName string              // precomputed flight-span label
	// /metrics histograms, shared across shards (nil when the shard is
	// built outside a Server, e.g. directly in tests).
	foldDur    *obs.Histogram
	queueDepth *obs.Histogram

	mu       sync.Mutex
	closed   bool
	version  int64             // bumps on every fold; stamps windows and cache keys
	windows  map[int64]*window // window start -> aggregate
	geom     gmon.Histogram    // geometry of the first accepted upload (Counts nil)
	hz       int64
	geomSet  bool
	accepted int64 // uploads admitted to the queue
	merged   int64 // uploads folded into a window
	dropped  int64 // uploads the worker could not merge
	lastErr  string
}

func newShard(fp string, im *object.Image, cfg Config, tr *obs.Trace, m *serverMetrics, rec *obs.FlightRecorder) *shard {
	s := &shard{
		fp:      fp,
		im:      im,
		window:  int64(cfg.Window / time.Second),
		retain:  cfg.Retain,
		queue:   make(chan ingestItem, cfg.QueueDepth),
		done:    make(chan struct{}),
		tr:      tr,
		depth:   tr.Gauge("serve.queue_high_water"),
		snaps:   core.NewLRU(snapCacheEntries),
		rec:      rec,
		foldName: "fold " + fp,
		windows:  make(map[int64]*window),
	}
	if m != nil {
		s.foldDur = m.foldDur
		s.queueDepth = m.queueDepth
	}
	return s
}

func (s *shard) start() { go s.run() }

// run is the merge worker: it owns every window aggregate, so no merge
// ever races another.
func (s *shard) run() {
	defer close(s.done)
	for it := range s.queue {
		if it.profile == nil {
			close(it.ack)
			continue
		}
		end := s.tr.Span("serve.merge")
		fs := s.rec.Start(s.foldName)
		foldStart := time.Now()
		s.merge(it)
		s.foldDur.Observe(time.Since(foldStart).Nanoseconds())
		fs.End()
		end()
	}
}

// merge folds one upload into its window, opening the window or
// evicting the oldest as needed. Every successful fold bumps the shard
// version and stamps it on the window, invalidating cached snapshots
// that included the window's previous state.
func (s *shard) merge(it ingestItem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w, ok := s.windows[it.windowStart]
	if !ok {
		// The upload becomes the window's accumulator: ownership was
		// transferred at enqueue, exactly like MergeAll's clone-the-
		// first-element fold (the handler decoded a fresh profile).
		s.version++
		s.windows[it.windowStart] = &window{prof: it.profile, version: s.version}
		s.merged++
		s.evictLocked()
		return
	}
	if w.shared {
		// Copy-on-write: a cached snapshot still references prof, so the
		// fold works on a private copy and the snapshot stays frozen at
		// the version its cache key names.
		w.prof = w.prof.Clone()
		w.shared = false
		s.tr.Counter("serve.snapshot_cow_clones").Add(1)
	}
	if err := w.prof.Merge(it.profile); err != nil {
		// The handler pre-checks geometry, so this is a race between
		// two first uploads with different geometry — count it, keep
		// the error inspectable in /v1/stats.
		s.dropped++
		s.lastErr = err.Error()
		return
	}
	s.version++
	w.version = s.version
	s.merged++
}

// evictLocked drops the oldest windows beyond the retention bound.
// Snapshot-cache entries that included an evicted window become
// unreachable (their key can never resolve again — shard versions are
// monotonic, so a reopened window start gets a fresh version) and age
// off the snapshot LRU.
func (s *shard) evictLocked() {
	for len(s.windows) > s.retain {
		oldest := int64(0)
		first := true
		for start := range s.windows {
			if first || start < oldest {
				oldest, first = start, false
			}
		}
		delete(s.windows, oldest)
	}
}

// errQueueFull is the backpressure signal the ingest handler turns
// into 429 + Retry-After.
var errQueueFull = fmt.Errorf("serve: shard queue full")

// errShardClosed rejects uploads after Close.
var errShardClosed = fmt.Errorf("serve: shard closed")

// enqueue admits a decoded upload, stamping it into the window
// containing now. It never blocks: a full queue reports errQueueFull.
func (s *shard) enqueue(p *gmon.Profile, now time.Time) error {
	it := ingestItem{profile: p, windowStart: s.truncate(now)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShardClosed
	}
	if !s.geomSet {
		s.geom = gmon.Histogram{Low: p.Hist.Low, High: p.Hist.High, Step: p.Hist.Step}
		s.hz = p.ClockHz()
		s.geomSet = true
	}
	select {
	case s.queue <- it:
		s.accepted++
		depth := int64(len(s.queue))
		s.depth.Max(depth)
		s.queueDepth.Observe(depth)
		return nil
	default:
		return errQueueFull
	}
}

// checkGeometry reports whether an upload's histogram geometry and
// clock rate match the shard's established ones, so mismatches fail
// the request (409) instead of dying silently in the worker.
func (s *shard) checkGeometry(p *gmon.Profile) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.geomSet {
		return nil
	}
	if s.geom.Low != p.Hist.Low || s.geom.High != p.Hist.High || s.geom.Step != p.Hist.Step {
		return fmt.Errorf("histogram geometry [%#x,%#x)/%d does not match this fingerprint's [%#x,%#x)/%d",
			p.Hist.Low, p.Hist.High, p.Hist.Step, s.geom.Low, s.geom.High, s.geom.Step)
	}
	if p.ClockHz() != s.hz {
		return fmt.Errorf("clock rate %d Hz does not match this fingerprint's %d Hz", p.ClockHz(), s.hz)
	}
	return nil
}

// sync waits until every upload enqueued before the call has merged,
// or ctx expires. Queries use it (?sync=1) to observe a quiesced
// shard; note a full queue makes sync wait for capacity like any
// producer would.
func (s *shard) sync(ctx context.Context) error {
	it := ingestItem{ack: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil // worker drained everything before exiting
	}
	s.mu.Unlock()
	select {
	case s.queue <- it:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-it.ack:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// truncate maps an arrival time to its window start.
func (s *shard) truncate(now time.Time) int64 {
	sec := now.Unix()
	return sec - sec%s.window
}

// windowSel selects which windows a query merges.
type windowSel struct {
	kind  int   // selAll, selCurrent, selPrev, selAt
	start int64 // selAt only
}

const (
	selAll = iota
	selCurrent
	selPrev
	selAt
)

// parseWindow parses the window query parameter: empty or "all" for
// every retained window, "current" and "prev" relative to the clock,
// or the unix-seconds start of a specific window.
func parseWindow(s string) (windowSel, error) {
	switch s {
	case "", "all":
		return windowSel{kind: selAll}, nil
	case "current":
		return windowSel{kind: selCurrent}, nil
	case "prev":
		return windowSel{kind: selPrev}, nil
	}
	var start int64
	if _, err := fmt.Sscanf(s, "%d", &start); err != nil || start < 0 {
		return windowSel{}, fmt.Errorf("bad window selector %q (want all, current, prev, or a unix-seconds window start)", s)
	}
	return windowSel{kind: selAt, start: start}, nil
}

// snapshot merges the selected windows into one profile, folding
// clones in ascending window order — the same fold gmon.MergeAll
// performs, so the result is byte-identical to an offline merge of the
// uploads. It reports the number of windows merged (zero means no
// matching data) and the resolved selection key — every included
// window's (start, fold version), which names the snapshot's exact
// content and is what the analysis cache keys on.
//
// Snapshots are cached per key: an unchanged shard answers repeat
// queries with the previous merge — for a single-window selection the
// window aggregate itself, zero copies, protected by copy-on-write in
// merge. The returned profile is shared and must be treated read-only
// (gmon.Write and core.Run never mutate their input profile).
func (s *shard) snapshot(sel windowSel, now time.Time) (*gmon.Profile, int, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var starts []int64
	switch sel.kind {
	case selAll:
		for start := range s.windows {
			starts = append(starts, start)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	case selCurrent:
		starts = []int64{s.truncate(now)}
	case selPrev:
		starts = []int64{s.truncate(now) - s.window}
	case selAt:
		starts = []int64{sel.start - sel.start%s.window}
	}
	var key strings.Builder
	included := make([]*window, 0, len(starts))
	for _, start := range starts {
		w, ok := s.windows[start]
		if !ok {
			continue
		}
		fmt.Fprintf(&key, "%d:%d|", start, w.version)
		included = append(included, w)
	}
	n := len(included)
	if n == 0 {
		return nil, 0, ""
	}
	if v, ok := s.snaps.Get(key.String()); ok {
		s.tr.Counter("serve.snapshot_cache_hit").Add(1)
		return v.(*gmon.Profile), n, key.String()
	}
	s.tr.Counter("serve.snapshot_cache_miss").Add(1)
	var total *gmon.Profile
	if n == 1 {
		// Zero-copy: serve the aggregate itself and mark it shared; the
		// next fold into this window clones first (copy-on-write). The
		// bytes equal an offline MergeAll of the window's uploads, which
		// for one window is exactly the aggregate.
		included[0].shared = true
		total = included[0].prof
	} else {
		total = included[0].prof.Clone()
		for _, w := range included[1:] {
			if err := total.Merge(w.prof); err != nil {
				continue // unreachable: geometry is enforced per shard
			}
		}
	}
	total = s.snaps.Add(key.String(), total).(*gmon.Profile)
	return total, n, key.String()
}

// windowStarts lists the retained window starts, ascending.
func (s *shard) windowStarts() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, 0, len(s.windows))
	for start := range s.windows {
		out = append(out, start)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// counts returns the shard's ingest accounting.
func (s *shard) counts() (accepted, merged, dropped int64, lastErr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accepted, s.merged, s.dropped, s.lastErr
}

// currentVersion returns the shard's fold version (zero before any
// fold).
func (s *shard) currentVersion() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// close stops the worker after draining the queue.
func (s *shard) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	<-s.done
}

// sortShards orders by fingerprint for deterministic listings.
func sortShards(shards []*shard) {
	sort.Slice(shards, func(i, j int) bool { return shards[i].fp < shards[j].fp })
}
