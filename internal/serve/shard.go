package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/obs"
)

// ingestItem is one unit of shard work: a decoded upload stamped with
// the window it lands in, or a barrier (profile nil) whose ack channel
// closes once everything enqueued before it has merged.
type ingestItem struct {
	profile     *gmon.Profile
	windowStart int64         // unix seconds, truncated to the window
	ack         chan struct{} // barrier only
}

// shard is the merge pipeline for one executable fingerprint: a
// bounded queue feeding a single worker goroutine that folds uploads
// into time-windowed aggregates. One worker per fingerprint
// serializes merging (Profile.Merge is not concurrency-safe) while
// distinct fingerprints merge in parallel.
type shard struct {
	fp     string
	im     *object.Image
	window int64 // window width, seconds
	retain int
	queue  chan ingestItem
	done   chan struct{}
	tr     *obs.Trace
	depth  *obs.Gauge // high-water queue depth

	mu       sync.Mutex
	closed   bool
	windows  map[int64]*gmon.Profile // window start -> aggregate
	geom     gmon.Histogram          // geometry of the first accepted upload (Counts nil)
	hz       int64
	geomSet  bool
	accepted int64 // uploads admitted to the queue
	merged   int64 // uploads folded into a window
	dropped  int64 // uploads the worker could not merge
	lastErr  string
}

func newShard(fp string, im *object.Image, cfg Config, tr *obs.Trace) *shard {
	return &shard{
		fp:      fp,
		im:      im,
		window:  int64(cfg.Window / time.Second),
		retain:  cfg.Retain,
		queue:   make(chan ingestItem, cfg.QueueDepth),
		done:    make(chan struct{}),
		tr:      tr,
		depth:   tr.Gauge("serve.queue_high_water"),
		windows: make(map[int64]*gmon.Profile),
	}
}

func (s *shard) start() { go s.run() }

// run is the merge worker: it owns every window aggregate, so no merge
// ever races another.
func (s *shard) run() {
	defer close(s.done)
	for it := range s.queue {
		if it.profile == nil {
			close(it.ack)
			continue
		}
		end := s.tr.Span("serve.merge")
		s.merge(it)
		end()
	}
}

// merge folds one upload into its window, opening the window or
// evicting the oldest as needed.
func (s *shard) merge(it ingestItem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	agg, ok := s.windows[it.windowStart]
	if !ok {
		// The upload becomes the window's accumulator: ownership was
		// transferred at enqueue, exactly like MergeAll's clone-the-
		// first-element fold (the handler decoded a fresh profile).
		s.windows[it.windowStart] = it.profile
		s.merged++
		s.evictLocked()
		return
	}
	if err := agg.Merge(it.profile); err != nil {
		// The handler pre-checks geometry, so this is a race between
		// two first uploads with different geometry — count it, keep
		// the error inspectable in /v1/stats.
		s.dropped++
		s.lastErr = err.Error()
		return
	}
	s.merged++
}

// evictLocked drops the oldest windows beyond the retention bound.
func (s *shard) evictLocked() {
	for len(s.windows) > s.retain {
		oldest := int64(0)
		first := true
		for start := range s.windows {
			if first || start < oldest {
				oldest, first = start, false
			}
		}
		delete(s.windows, oldest)
	}
}

// errQueueFull is the backpressure signal the ingest handler turns
// into 429 + Retry-After.
var errQueueFull = fmt.Errorf("serve: shard queue full")

// errShardClosed rejects uploads after Close.
var errShardClosed = fmt.Errorf("serve: shard closed")

// enqueue admits a decoded upload, stamping it into the window
// containing now. It never blocks: a full queue reports errQueueFull.
func (s *shard) enqueue(p *gmon.Profile, now time.Time) error {
	it := ingestItem{profile: p, windowStart: s.truncate(now)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShardClosed
	}
	if !s.geomSet {
		s.geom = gmon.Histogram{Low: p.Hist.Low, High: p.Hist.High, Step: p.Hist.Step}
		s.hz = p.ClockHz()
		s.geomSet = true
	}
	select {
	case s.queue <- it:
		s.accepted++
		s.depth.Max(int64(len(s.queue)))
		return nil
	default:
		return errQueueFull
	}
}

// checkGeometry reports whether an upload's histogram geometry and
// clock rate match the shard's established ones, so mismatches fail
// the request (409) instead of dying silently in the worker.
func (s *shard) checkGeometry(p *gmon.Profile) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.geomSet {
		return nil
	}
	if s.geom.Low != p.Hist.Low || s.geom.High != p.Hist.High || s.geom.Step != p.Hist.Step {
		return fmt.Errorf("histogram geometry [%#x,%#x)/%d does not match this fingerprint's [%#x,%#x)/%d",
			p.Hist.Low, p.Hist.High, p.Hist.Step, s.geom.Low, s.geom.High, s.geom.Step)
	}
	if p.ClockHz() != s.hz {
		return fmt.Errorf("clock rate %d Hz does not match this fingerprint's %d Hz", p.ClockHz(), s.hz)
	}
	return nil
}

// sync waits until every upload enqueued before the call has merged,
// or ctx expires. Queries use it (?sync=1) to observe a quiesced
// shard; note a full queue makes sync wait for capacity like any
// producer would.
func (s *shard) sync(ctx context.Context) error {
	it := ingestItem{ack: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil // worker drained everything before exiting
	}
	s.mu.Unlock()
	select {
	case s.queue <- it:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-it.ack:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// truncate maps an arrival time to its window start.
func (s *shard) truncate(now time.Time) int64 {
	sec := now.Unix()
	return sec - sec%s.window
}

// windowSel selects which windows a query merges.
type windowSel struct {
	kind  int   // selAll, selCurrent, selPrev, selAt
	start int64 // selAt only
}

const (
	selAll = iota
	selCurrent
	selPrev
	selAt
)

// parseWindow parses the window query parameter: empty or "all" for
// every retained window, "current" and "prev" relative to the clock,
// or the unix-seconds start of a specific window.
func parseWindow(s string) (windowSel, error) {
	switch s {
	case "", "all":
		return windowSel{kind: selAll}, nil
	case "current":
		return windowSel{kind: selCurrent}, nil
	case "prev":
		return windowSel{kind: selPrev}, nil
	}
	var start int64
	if _, err := fmt.Sscanf(s, "%d", &start); err != nil || start < 0 {
		return windowSel{}, fmt.Errorf("bad window selector %q (want all, current, prev, or a unix-seconds window start)", s)
	}
	return windowSel{kind: selAt, start: start}, nil
}

// snapshot merges the selected windows into one profile, folding
// clones in ascending window order — the same fold gmon.MergeAll
// performs, so the result is byte-identical to an offline merge of the
// uploads. It reports the number of windows merged; zero means no
// matching data.
func (s *shard) snapshot(sel windowSel, now time.Time) (*gmon.Profile, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var starts []int64
	switch sel.kind {
	case selAll:
		for start := range s.windows {
			starts = append(starts, start)
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	case selCurrent:
		starts = []int64{s.truncate(now)}
	case selPrev:
		starts = []int64{s.truncate(now) - s.window}
	case selAt:
		starts = []int64{sel.start - sel.start%s.window}
	}
	var total *gmon.Profile
	n := 0
	for _, start := range starts {
		agg, ok := s.windows[start]
		if !ok {
			continue
		}
		if total == nil {
			total = agg.Clone()
		} else if err := total.Merge(agg); err != nil {
			continue // unreachable: geometry is enforced per shard
		}
		n++
	}
	return total, n
}

// windowStarts lists the retained window starts, ascending.
func (s *shard) windowStarts() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int64, 0, len(s.windows))
	for start := range s.windows {
		out = append(out, start)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// counts returns the shard's ingest accounting.
func (s *shard) counts() (accepted, merged, dropped int64, lastErr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.accepted, s.merged, s.dropped, s.lastErr
}

// close stops the worker after draining the queue.
func (s *shard) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	<-s.done
}

// sortShards orders by fingerprint for deterministic listings.
func sortShards(shards []*shard) {
	sort.Slice(shards, func(i, j int) bool { return shards[i].fp < shards[j].fp })
}
