package serve

import (
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// Production metrics for gprofd (schema gprofd.metrics.v1, documented
// in docs/FORMATS.md): an always-on obs.Registry the HTTP middleware,
// shards, and self-profiler record into, exposed in Prometheus text
// format at GET /metrics. Unlike the optional Config.Trace — which
// accumulates per-event spans and is meant for one bounded run — the
// registry holds a fixed set of counters, gauges, and mergeable
// histograms, so a gprofd that runs for months pays a few atomic adds
// per request and constant memory.

// serverMetrics owns the registry plus the hot-path series resolved
// once at startup; per-(endpoint, status) series are cached in a map so
// the request path never rebuilds label strings.
type serverMetrics struct {
	reg *obs.Registry

	inFlight     *obs.Gauge
	foldDur      *obs.Histogram
	queueDepth   *obs.Histogram
	profiles     *obs.Counter
	profileBytes *obs.Counter
	selfCaptures *obs.Counter
	selfEmpty    *obs.Counter
	selfErrors   *obs.Counter

	// Scrape-time runtime gauges, refreshed by handleMetrics.
	uptime     *obs.Gauge
	heapAlloc  *obs.Gauge
	goroutines *obs.Gauge
	shards     *obs.Gauge
	ready      *obs.Gauge

	mu       bySeriesMu
	series   map[seriesKey]*endpointSeries
	byEp     map[string]*endpointBytes
	flightNm map[string]string // endpoint -> precomputed flight-span name
}

type bySeriesMu = sync.Mutex

// seriesKey keys the per-endpoint × per-status cache without
// allocating a string per request.
type seriesKey struct {
	endpoint string
	code     int
}

// endpointSeries is one (endpoint, status) pair's request counter and
// latency histogram.
type endpointSeries struct {
	requests *obs.Counter
	duration *obs.Histogram
}

// endpointBytes is one endpoint's request/response size histograms
// (status-independent to bound cardinality).
type endpointBytes struct {
	reqBytes  *obs.Histogram
	respBytes *obs.Histogram
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		inFlight: reg.Gauge("gprofd_http_in_flight",
			"HTTP requests currently being served"),
		foldDur: reg.Histogram("gprofd_shard_fold_duration_ns",
			"time to fold one accepted upload into its window aggregate"),
		queueDepth: reg.Histogram("gprofd_shard_queue_depth",
			"shard queue length observed at each enqueue"),
		profiles: reg.Counter("gprofd_profiles_ingested_total",
			"profile uploads accepted into a shard queue"),
		profileBytes: reg.Counter("gprofd_profile_bytes_ingested_total",
			"upload bytes consumed by the profile decoder"),
		selfCaptures: reg.Counter("gprofd_selfprofile_captures_total",
			"self-profile captures attempted"),
		selfEmpty: reg.Counter("gprofd_selfprofile_empty_total",
			"self-profile captures that held no samples (idle process)"),
		selfErrors: reg.Counter("gprofd_selfprofile_errors_total",
			"self-profile captures that failed (profiler busy or decode error)"),
		uptime: reg.Gauge("gprofd_uptime_seconds",
			"seconds since the server started"),
		heapAlloc: reg.Gauge("gprofd_heap_alloc_bytes",
			"Go heap bytes currently allocated"),
		goroutines: reg.Gauge("gprofd_goroutines",
			"goroutines currently live"),
		shards: reg.Gauge("gprofd_shards",
			"registered fingerprint shards"),
		ready: reg.Gauge("gprofd_ready",
			"1 while serving, 0 once draining has begun"),
		series:   make(map[seriesKey]*endpointSeries),
		byEp:     make(map[string]*endpointBytes),
		flightNm: make(map[string]string),
	}
	m.ready.Set(1)
	return m
}

// endpointSeries resolves (and caches) the counter/histogram pair for
// one endpoint and status code.
func (m *serverMetrics) endpointSeries(endpoint string, code int) *endpointSeries {
	key := seriesKey{endpoint, code}
	m.mu.Lock()
	es, ok := m.series[key]
	m.mu.Unlock()
	if ok {
		return es
	}
	es = &endpointSeries{
		requests: m.reg.Counter("gprofd_http_requests_total",
			"HTTP requests served, by endpoint and status code",
			"endpoint", endpoint, "code", itoaCode(code)),
		duration: m.reg.Histogram("gprofd_http_request_duration_ns",
			"request latency in nanoseconds, by endpoint and status code",
			"endpoint", endpoint, "code", itoaCode(code)),
	}
	m.mu.Lock()
	if prev, ok := m.series[key]; ok {
		es = prev
	} else {
		m.series[key] = es
	}
	m.mu.Unlock()
	return es
}

// endpointBytes resolves (and caches) the size histograms for one
// endpoint.
func (m *serverMetrics) endpointBytes(endpoint string) *endpointBytes {
	m.mu.Lock()
	eb, ok := m.byEp[endpoint]
	m.mu.Unlock()
	if ok {
		return eb
	}
	eb = &endpointBytes{
		reqBytes: m.reg.Histogram("gprofd_http_request_bytes",
			"request body bytes read, by endpoint", "endpoint", endpoint),
		respBytes: m.reg.Histogram("gprofd_http_response_bytes",
			"response body bytes written, by endpoint", "endpoint", endpoint),
	}
	m.mu.Lock()
	if prev, ok := m.byEp[endpoint]; ok {
		eb = prev
	} else {
		m.byEp[endpoint] = eb
	}
	m.mu.Unlock()
	return eb
}

// itoaCode formats the handful of status codes gprofd emits without
// pulling strconv into the hot path's inliner budget.
func itoaCode(code int) string {
	switch code {
	case 200:
		return "200"
	case 202:
		return "202"
	case 400:
		return "400"
	case 404:
		return "404"
	case 405:
		return "405"
	case 409:
		return "409"
	case 413:
		return "413"
	case 429:
		return "429"
	case 500:
		return "500"
	case 503:
		return "503"
	case 507:
		return "507"
	}
	// Rare codes take the slow path; the result is cached per series.
	buf := [3]byte{byte('0' + code/100%10), byte('0' + code/10%10), byte('0' + code%10)}
	return string(buf[:])
}

// endpointLabel maps a request path to its metric label. Unknown paths
// collapse into "other" so a scanner probing random URLs cannot grow
// the series set without bound.
func (s *Server) endpointLabel(path string) string {
	if _, ok := s.endpoints[path]; ok {
		return path
	}
	return "other"
}

// statusWriter observes the status code and body size of a response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// countingBody counts the request-body bytes handlers actually read.
type countingBody struct {
	rc io.ReadCloser
	n  int64
}

func (b *countingBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	b.n += int64(n)
	return n, err
}

func (b *countingBody) Close() error { return b.rc.Close() }

// instrument is the HTTP middleware: per-endpoint × per-status request
// counts and latency histograms, per-endpoint body-size histograms, the
// in-flight gauge, and a flight-recorder span per request. It wraps the
// whole mux, so every endpoint — including /metrics itself — is
// measured.
func (s *Server) instrument(next http.Handler) http.Handler {
	m := s.metrics
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ep := s.endpointLabel(r.URL.Path)
		fs := s.rec.Start(s.flightName(ep))
		m.inFlight.Add(1)
		body := &countingBody{rc: r.Body}
		r.Body = body
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		dur := time.Since(start).Nanoseconds()
		m.inFlight.Add(-1)
		fs.End()
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		es := m.endpointSeries(ep, code)
		es.requests.Add(1)
		es.duration.Observe(dur)
		eb := m.endpointBytes(ep)
		eb.reqBytes.Observe(body.n)
		eb.respBytes.Observe(sw.bytes)
	})
}

// flightName returns the cached "http <endpoint>" flight-span label.
func (s *Server) flightName(ep string) string {
	m := s.metrics
	m.mu.Lock()
	name, ok := m.flightNm[ep]
	if !ok {
		name = "http " + ep
		m.flightNm[ep] = name
	}
	m.mu.Unlock()
	return name
}

// handleMetrics serves the registry in Prometheus text exposition
// format, refreshing the scrape-time runtime gauges first.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET /metrics")
		return
	}
	m := s.metrics
	m.uptime.Set(int64(s.cfg.Now().Sub(s.start).Seconds()))
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	m.heapAlloc.Set(int64(mem.HeapAlloc))
	m.goroutines.Set(int64(runtime.NumGoroutine()))
	s.mu.Lock()
	m.shards.Set(int64(len(s.shards)))
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WriteExposition(w, m.reg)
}

// handleHealthz is liveness: the process is up and serving HTTP. Always
// 200 — use /readyz for load-balancer rotation decisions.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// handleReadyz is readiness: 200 while the server accepts work, 503
// once draining has begun (BeginDrain or Close) so a balancer stops
// routing new traffic while in-flight requests finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.Ready() {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write([]byte("draining\n"))
}

// handleFlightRec dumps the flight recorder as Chrome trace-event JSON
// — the last few thousand request and fold spans, always available, for
// after-the-fact incident forensics (load in Perfetto or validate with
// cmd/tracecheck).
func (s *Server) handleFlightRec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET /debug/flightrec")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.rec.WriteChromeTrace(w)
}
