package serve

import (
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
)

// StatsSchema tags every /v1/stats response.
const StatsSchema = "gprofd.stats.v1"

// serverStats is the always-on accounting behind /v1/stats; unlike the
// optional obs trace it costs a few atomics per request and never
// grows, so a long-running gprofd can leave tracing off and still be
// observable.
type serverStats struct {
	accepted       atomic.Int64 // uploads admitted to a shard queue
	bytes          atomic.Int64 // upload bytes consumed by the decoder
	badRequest     atomic.Int64 // 4xx rejections (malformed, unknown, oversized)
	backpressure   atomic.Int64 // 429 rejections (shard queue full)
	exeRegistered  atomic.Int64
	queries        atomic.Int64
	analysisHits   atomic.Int64 // queries served from the analysis LRU
	analysisMisses atomic.Int64
	coalesced      atomic.Int64 // cold queries that joined another's core.Run
	rate           rateTracker
}

// rateWindow is how many whole seconds the recent-rate estimate
// averages over.
const rateWindow = 10

// rateTracker keeps per-second accept counts in a small ring so
// /v1/stats can report a recent profiles/sec figure alongside the
// lifetime average.
type rateTracker struct {
	mu    sync.Mutex
	slots [rateWindow + 2]struct{ sec, n int64 }
}

func (t *rateTracker) add(sec int64) {
	i := sec % int64(len(t.slots))
	t.mu.Lock()
	if t.slots[i].sec != sec {
		t.slots[i].sec, t.slots[i].n = sec, 0
	}
	t.slots[i].n++
	t.mu.Unlock()
}

// recent averages the accept rate over the last rateWindow whole
// seconds (the current partial second is excluded).
func (t *rateTracker) recent(now int64) float64 {
	var sum int64
	t.mu.Lock()
	for _, s := range t.slots {
		if s.sec >= now-rateWindow && s.sec < now {
			sum += s.n
		}
	}
	t.mu.Unlock()
	return float64(sum) / rateWindow
}

// ShardStats is one fingerprint's row in the stats payload.
type ShardStats struct {
	Fingerprint string  `json:"fingerprint"`
	Uploads     int64   `json:"uploads"`
	Merged      int64   `json:"merged"`
	Dropped     int64   `json:"dropped,omitempty"`
	QueueLen    int     `json:"queue_len"`
	QueueCap    int     `json:"queue_cap"`
	Version     int64   `json:"version"` // fold version; bumps on every merged upload
	Windows     []int64 `json:"windows,omitempty"`
	LastError   string  `json:"last_error,omitempty"`
}

// Stats is the /v1/stats payload (schema gprofd.stats.v1): ingest
// accounting, the profiles/sec headline both lifetime and over the
// last few seconds, the Go heap (the soak test's bounded-RSS check
// reads it), and per-shard queue depths. When the server carries an
// obs trace its counter and gauge registries ride along.
type Stats struct {
	Schema        string  `json:"schema"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	ProfilesAccepted        int64   `json:"profiles_accepted"`
	BytesIngested           int64   `json:"bytes_ingested"`
	RejectedBadRequest      int64   `json:"rejected_bad_request"`
	RejectedBackpressure    int64   `json:"rejected_backpressure"`
	ExecutablesRegistered   int64   `json:"executables_registered"`
	Queries                 int64   `json:"queries"`
	ProfilesPerSecond       float64 `json:"profiles_per_second"`
	RecentProfilesPerSecond float64 `json:"recent_profiles_per_second"`

	// The incremental query path's accounting: the snapshot layer
	// (merged-window reuse, summed over shards) and the analysis layer
	// (memoized core.Run results and rendered bodies), plus how many
	// cold queries were coalesced into another request's analysis.
	SnapshotCacheHits      int64 `json:"snapshot_cache_hits"`
	SnapshotCacheMisses    int64 `json:"snapshot_cache_misses"`
	SnapshotCacheEvictions int64 `json:"snapshot_cache_evictions"`
	AnalysisCacheHits      int64 `json:"analysis_cache_hits"`
	AnalysisCacheMisses    int64 `json:"analysis_cache_misses"`
	AnalysisCacheEvictions int64 `json:"analysis_cache_evictions"`
	CoalescedQueries       int64 `json:"coalesced_queries"`

	// The dogfood loop's accounting (additive in gprofd.stats.v1; see
	// /v1/self and the gprofd.metrics.v1 selfprofile counters).
	SelfProfileCaptures int64 `json:"selfprofile_captures,omitempty"`
	SelfProfileEmpty    int64 `json:"selfprofile_empty,omitempty"`
	SelfProfileErrors   int64 `json:"selfprofile_errors,omitempty"`

	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	NumGoroutine   int    `json:"num_goroutine"`

	Shards []ShardStats `json:"shards"`

	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
}

// Snapshot assembles the current stats payload.
func (s *Server) Snapshot() Stats {
	now := s.cfg.Now()
	uptime := now.Sub(s.start).Seconds()
	st := Stats{
		Schema:                  StatsSchema,
		UptimeSeconds:           uptime,
		ProfilesAccepted:        s.stats.accepted.Load(),
		BytesIngested:           s.stats.bytes.Load(),
		RejectedBadRequest:      s.stats.badRequest.Load(),
		RejectedBackpressure:    s.stats.backpressure.Load(),
		ExecutablesRegistered:   s.stats.exeRegistered.Load(),
		Queries:                 s.stats.queries.Load(),
		RecentProfilesPerSecond: s.stats.rate.recent(now.Unix()),
		AnalysisCacheHits:       s.stats.analysisHits.Load(),
		AnalysisCacheMisses:     s.stats.analysisMisses.Load(),
		CoalescedQueries:        s.stats.coalesced.Load(),
		SelfProfileCaptures:     s.metrics.selfCaptures.Value(),
		SelfProfileEmpty:        s.metrics.selfEmpty.Value(),
		SelfProfileErrors:       s.metrics.selfErrors.Value(),
	}
	_, _, qEvict := s.queries.Stats()
	st.AnalysisCacheEvictions = int64(qEvict)
	if uptime > 0 {
		st.ProfilesPerSecond = float64(st.ProfilesAccepted) / uptime
	}
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	st.HeapAllocBytes = mem.HeapAlloc
	st.HeapSysBytes = mem.HeapSys
	st.NumGoroutine = runtime.NumGoroutine()
	shards := s.allShards()
	st.Shards = make([]ShardStats, 0, len(shards))
	for _, sh := range shards {
		accepted, merged, dropped, lastErr := sh.counts()
		st.Shards = append(st.Shards, ShardStats{
			Fingerprint: sh.fp,
			Uploads:     accepted,
			Merged:      merged,
			Dropped:     dropped,
			QueueLen:    len(sh.queue),
			QueueCap:    cap(sh.queue),
			Version:     sh.currentVersion(),
			Windows:     sh.windowStarts(),
			LastError:   lastErr,
		})
		hits, misses, evictions := sh.snaps.Stats()
		st.SnapshotCacheHits += int64(hits)
		st.SnapshotCacheMisses += int64(misses)
		st.SnapshotCacheEvictions += int64(evictions)
	}
	if s.tr.Enabled() {
		report := s.tr.Report()
		st.Counters, st.Gauges = report.Counters, report.Gauges
	}
	return st
}

// handleStats serves the Snapshot as JSON.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.fail(w, http.StatusMethodNotAllowed, "GET /v1/stats")
		return
	}
	writeJSON(w, http.StatusOK, s.Snapshot())
}
