package serve

// Hostile-upload tests: the ingest surface faces arbitrary agents, so
// malformed, lying, truncated, and oversized bodies must come back as
// clean 4xx responses with bounded allocation — the same adversarial
// inputs gmon's FuzzRead seeds exercise, driven through the HTTP
// handlers.

import (
	"bytes"
	"compress/gzip"
	"net/http"
	"runtime"
	"testing"

	"repro/internal/gmon"
)

// lyingCountBody is a well-formed v1 header declaring 2^27 histogram
// buckets and 2^27 arcs over an empty body: a 48-byte upload that would
// be a multi-gigabyte allocation if the decoder trusted it.
func lyingCountBody() []byte {
	b := append([]byte(nil), []byte("GMON")...)
	b = append(b, 1, 0, 0, 0)
	b = append(b, make([]byte, 32)...) // hz, low, high, step
	b = append(b, 0xff, 0xff, 0xff, 0x07, 0xff, 0xff, 0xff, 0x07)
	return b
}

// v2OverflowBody is a v2 header whose arc varint runs past 64 bits.
func v2OverflowBody() []byte {
	b := append([]byte(nil), []byte("GMON")...)
	b = append(b, 2, 0, 0, 0)
	b = append(b, 60, 0, 0, 0, 0, 0, 0, 0) // hz
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)  // low
	b = append(b, 1, 0, 0, 0, 0, 0, 0, 0)  // high
	b = append(b, 1, 0, 0, 0, 0, 0, 0, 0)  // step
	b = append(b, 1, 0, 0, 0, 1, 0, 0, 0)  // nbkt=1 narc=1
	b = append(b, 0)                       // count[0]=0
	for i := 0; i < 11; i++ {              // 11-byte varint: > 64 bits
		b = append(b, 0x80)
	}
	return b
}

// TestHostileUploads throws the adversarial corpus at /v1/ingest and
// checks every body is rejected 4xx while the server stays healthy.
func TestHostileUploads(t *testing.T) {
	_, imageBytes := sortImage(t)
	srv, ts := newTestServer(t, Config{})
	fp := registerExe(t, ts, imageBytes)

	good := encodeProfile(t, sortProfile(t, 1), gmon.Version1, false)
	truncGzip := func() []byte {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write(good)
		zw.Close()
		return buf.Bytes()[:buf.Len()/2]
	}()
	badGzip := append([]byte{0x1f, 0x8b}, []byte("not a gzip stream at all")...)

	cases := []struct {
		name string
		body []byte
	}{
		{"empty", nil},
		{"one byte", []byte("G")},
		{"bad magic", []byte("GMOO____________")},
		{"garbage", bytes.Repeat([]byte{0xa5}, 256)},
		{"truncated header", good[:47]},
		{"truncated mid-section", good[:len(good)/2]},
		{"lying declared counts", lyingCountBody()},
		{"v2 varint overflow", v2OverflowBody()},
		{"gzip magic, garbage stream", badGzip},
		{"truncated gzip", truncGzip},
	}
	for _, tc := range cases {
		resp := ingest(t, ts, fp, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %q: status %s, want 400", tc.name, resp.Status)
		}
		resp.Body.Close()
	}

	// The same garbage against /v1/exe.
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/exe", "application/octet-stream", bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		mustStatus(t, resp, http.StatusBadRequest)
	}

	// The server still ingests and serves after all of it.
	mustStatus(t, ingest(t, ts, fp, good), http.StatusAccepted)
	mustStatus(t, get(t, ts, "/v1/flat?fp="+fp+"&sync=1"), http.StatusOK)

	st := srv.Snapshot()
	if st.RejectedBadRequest < int64(2*len(cases)) {
		t.Errorf("rejected_bad_request = %d, want >= %d", st.RejectedBadRequest, 2*len(cases))
	}
	if st.ProfilesAccepted != 1 {
		t.Errorf("profiles_accepted = %d, want 1", st.ProfilesAccepted)
	}
}

// TestOversizedUploads checks the body cap turns into 413 for both
// profile data and executables.
func TestOversizedUploads(t *testing.T) {
	_, imageBytes := sortImage(t)

	// An executable over the cap is 413.
	_, tsTiny := newTestServer(t, Config{MaxBodyBytes: 256})
	respExe, err := http.Post(tsTiny.URL+"/v1/exe", "application/octet-stream", bytes.NewReader(imageBytes))
	if err != nil {
		t.Fatal(err)
	}
	mustStatus(t, respExe, http.StatusRequestEntityTooLarge)

	// A profile over the cap is 413. The cap is below the image size,
	// so register the shard directly rather than over HTTP.
	im, _ := sortImage(t)
	profile := encodeProfile(t, sortProfile(t, 1), gmon.Version1, false)
	s, ts := newTestServer(t, Config{MaxBodyBytes: int64(len(profile) - 1)})
	const fp = "test-oversize-fp"
	if _, err := s.register(fp, newShard(fp, im, s.cfg, s.tr, s.metrics, s.rec)); err != nil {
		t.Fatal(err)
	}
	mustStatus(t, ingest(t, ts, fp, profile), http.StatusRequestEntityTooLarge)
}

// TestLyingCountsBoundedAllocation replays the 48-byte header that
// declares 2^27 records many times and checks the heap stays flat: the
// declared-count contract means a lying header cannot buy gigabytes.
func TestLyingCountsBoundedAllocation(t *testing.T) {
	_, imageBytes := sortImage(t)
	_, ts := newTestServer(t, Config{})
	fp := registerExe(t, ts, imageBytes)

	body := lyingCountBody()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < 50; i++ {
		resp := ingest(t, ts, fp, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("upload %d: status %s, want 400", i, resp.Status)
		}
		resp.Body.Close()
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	// 50 × 2^27 records would be tens of GB if the header were trusted;
	// demand less than 64 MB of live-heap growth.
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > 64<<20 {
		t.Errorf("heap grew %d bytes across 50 lying-count uploads", grew)
	}
}
