package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/gmon"
)

// The incremental read path. A query resolves in three amortized
// layers, each keyed by the shard's fold versions so correctness is
// never traded for speed:
//
//  1. snapshot reuse (shard.snapshot): the merged-windows profile is
//     cached per resolved (window start, version) selection;
//  2. analysis memoization (Server.analyzed): the finished core.Run —
//     the model plus lazily rendered flat/callgraph/JSON bytes — is
//     cached per (fingerprint, selection key, normalized options);
//  3. single-flight coalescing (flightGroup): concurrent identical
//     cold queries share one core.Run instead of N duplicates.
//
// An unchanged shard therefore serves repeat queries with two LRU
// lookups and a buffer write; any fold bumps the shard version and the
// whole stack rebuilds on the next query, so served bytes are always
// what an offline gmon.MergeAll + core.Run over the same uploads would
// produce (the invariant the incremental tests byte-compare at every
// interleaving).

// analysisEntry is one finished analysis: the core.Run result and the
// rendered response bodies, memoized per endpoint on first demand so a
// warm query of any endpoint is a byte-slice write.
type analysisEntry struct {
	res *core.Result

	mu       sync.Mutex
	rendered map[string][]byte
}

// bytesFor returns the endpoint's rendered body, rendering and
// memoizing it on first call. Rendering from the cached model is
// deterministic, so the memoized bytes equal a fresh render.
func (e *analysisEntry) bytesFor(endpoint string, render func(*core.Result, io.Writer) error) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if b, ok := e.rendered[endpoint]; ok {
		return b, nil
	}
	var buf bytes.Buffer
	if err := render(e.res, &buf); err != nil {
		return nil, err
	}
	if e.rendered == nil {
		e.rendered = make(map[string][]byte, 3)
	}
	e.rendered[endpoint] = buf.Bytes()
	return buf.Bytes(), nil
}

// flight is one in-progress shared computation.
type flight struct {
	done chan struct{}
	val  *analysisEntry
	err  error
}

// flightGroup coalesces concurrent computations of the same key into a
// single run: the first caller starts the work, later callers wait for
// its result. The computation runs on its own goroutine detached from
// any request context, so one canceled request neither poisons the
// waiters nor wastes the almost-finished analysis — it completes,
// lands in the cache, and every waiter still holding on gets it.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// do returns the result of fn for key, sharing one execution among
// concurrent callers. coalesced reports whether this caller joined a
// flight another request started (the single-flight stats counter). A
// caller whose ctx expires abandons the wait; the flight itself keeps
// running.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*analysisEntry, error)) (val *analysisEntry, err error, coalesced bool) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.val, f.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	f := &flight{done: make(chan struct{})}
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	g.m[key] = f
	g.mu.Unlock()
	go func() {
		f.val, f.err = fn()
		// Retire the flight before announcing the result: a request
		// arriving after the delete misses the flight but hits the
		// cache fn filled (fn caches before returning), so nothing
		// recomputes and nothing waits on a completed flight.
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(f.done)
	}()
	select {
	case <-f.done:
		return f.val, f.err, false
	case <-ctx.Done():
		return nil, ctx.Err(), false
	}
}

// runOptions is the server's fixed analysis configuration; its
// CacheKey is precomputed in New.
func (s *Server) runOptions() core.Options {
	return core.Options{Jobs: s.cfg.Jobs, Cache: s.cache}
}

// analyzed returns the (possibly cached) analysis of the selected
// windows. The cache key is fingerprint + the snapshot's resolved
// (start, version) selection + the normalized options, so any fold
// into a selected window changes the key and the next query reanalyzes;
// an unchanged shard hits the LRU. Cold misses are single-flighted.
func (s *Server) analyzed(ctx context.Context, sh *shard, sel windowSel) (*analysisEntry, error) {
	p, n, snapKey := sh.snapshot(sel, s.cfg.Now())
	if n == 0 {
		return nil, errNoData
	}
	key := "run|" + sh.fp + "|" + snapKey + "|" + s.optKey
	if v, ok := s.queries.Get(key); ok {
		s.stats.analysisHits.Add(1)
		s.tr.Counter("serve.analysis_cache_hit").Add(1)
		return v.(*analysisEntry), nil
	}
	s.stats.analysisMisses.Add(1)
	s.tr.Counter("serve.analysis_cache_miss").Add(1)
	e, err, coalesced := s.flights.do(ctx, key, func() (*analysisEntry, error) {
		// Detached context: the shared run serves every waiter (and the
		// cache), so no single request's cancellation may abort it.
		res, err := core.Run(context.Background(), core.ImageSource{Image: sh.im}, p, s.runOptions())
		if err != nil {
			return nil, err
		}
		ent := &analysisEntry{res: res}
		s.queries.Add(key, ent)
		return ent, nil
	})
	if coalesced {
		s.stats.coalesced.Add(1)
		s.tr.Counter("serve.coalesced_queries").Add(1)
	}
	return e, err
}

// gmonBytes returns the (possibly cached) raw encoding of the selected
// windows' merge in the given format version. The rendered bytes share
// the analysis LRU under their own key family.
func (s *Server) gmonBytes(sh *shard, sel windowSel, version int) ([]byte, error) {
	p, n, snapKey := sh.snapshot(sel, s.cfg.Now())
	if n == 0 {
		return nil, errNoData
	}
	key := fmt.Sprintf("gmon|%d|%s|%s", version, sh.fp, snapKey)
	if v, ok := s.queries.Get(key); ok {
		s.stats.analysisHits.Add(1)
		s.tr.Counter("serve.analysis_cache_hit").Add(1)
		return v.([]byte), nil
	}
	s.stats.analysisMisses.Add(1)
	s.tr.Counter("serve.analysis_cache_miss").Add(1)
	var buf bytes.Buffer
	if err := gmon.WriteVersion(&buf, p, version); err != nil {
		return nil, err
	}
	return s.queries.Add(key, buf.Bytes()).([]byte), nil
}
