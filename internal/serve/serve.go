// Package serve is the fleet-scale continuous-profiling service behind
// cmd/gprofd: the paper's "profile of many executions" (§3) turned
// into an always-on server. Agents on many machines upload gmon.out
// profile data (either format version, gzip or identity transport)
// keyed by the executable's content fingerprint; the server
// streaming-merges each fingerprint's uploads into time-windowed
// aggregates and answers flat/call-graph/diff/model queries by running
// the ordinary analysis pipeline (core.Run) over the merged windows.
//
// The ingestion hot path is built to survive thousands of agents:
//
//   - every upload decodes through gmon.OpenReader, whose
//     declared-count contract and chunked growth mean a lying header
//     cannot drive a large allocation, under an http.MaxBytesReader
//     body cap;
//   - each fingerprint owns a shard: one merge-worker goroutine and a
//     bounded queue of decoded profiles, so merging never blocks the
//     HTTP handler and memory is bounded by queue depth × body cap;
//   - when a shard's queue is full the handler answers 429 with a
//     Retry-After hint instead of buffering without bound — explicit
//     backpressure the load generator (cmd/gprofload) honors.
//
// Aggregates are windowed by upload arrival time (Config.Window wide,
// Config.Retain windows kept per fingerprint), so "what changed in the
// last minute" is a two-window diff away. Because profile merging is
// commutative and canonicalizing (gmon.Profile.Merge), the merged
// output of any set of windows is byte-identical to an offline
// gmon.MergeAll over the same uploads — the property the gprofd-smoke
// target asserts.
//
// The server keeps its own always-on atomic counters for /v1/stats and
// additionally records obs spans (serve.ingest, serve.merge,
// serve.query) and queue-depth gauges when Config.Trace is set; spans
// accumulate per-event memory, so long-running deployments leave the
// trace nil and rely on the stats counters.
package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Defaults for the zero Config.
const (
	DefaultWindow       = time.Minute
	DefaultRetain       = 8
	DefaultQueueDepth   = 64
	DefaultMaxBodyBytes = 32 << 20
	DefaultMaxShards    = 1024
	DefaultQueryCache   = 128
)

// Config sizes the service. The zero value is usable: every field
// falls back to the package default.
type Config struct {
	// Window is the width of one aggregation window; uploads are
	// binned by arrival time truncated to it. Minimum one second.
	Window time.Duration
	// Retain is how many windows each fingerprint keeps; older windows
	// are evicted as new ones open, bounding per-shard memory.
	Retain int
	// QueueDepth bounds each shard's pending-profile queue; a full
	// queue turns uploads into 429 + Retry-After.
	QueueDepth int
	// MaxBodyBytes caps every upload body (profile data and
	// executables alike) via http.MaxBytesReader.
	MaxBodyBytes int64
	// MaxShards bounds the number of registered fingerprints.
	MaxShards int
	// Jobs is the analysis worker width queries pass to core.Run.
	// Zero means GOMAXPROCS.
	Jobs int
	// QueryCache bounds the analysis-memoization LRU: finished
	// core.Run results (with their rendered flat/callgraph/JSON
	// bodies) and raw-merge encodings, keyed by (fingerprint, window
	// versions, normalized options). Non-positive means
	// DefaultQueryCache.
	QueryCache int
	// Now is the clock, injectable for tests. Nil means time.Now.
	Now func() time.Time
	// Trace, when set, records ingest/merge/query spans and
	// queue-depth gauges; counters for /v1/stats are kept
	// independently and are always on.
	Trace *obs.Trace
	// SelfProfile, when positive, starts the dogfood loop: the server
	// captures its own Go runtime CPU profile this often and serves the
	// latest capture at /v1/self. Zero leaves the loop off; /v1/self
	// then captures on demand.
	SelfProfile time.Duration
	// SelfCapture is the duration of each self-profile capture window.
	// Zero means one second, clamped to half the SelfProfile interval.
	SelfCapture time.Duration
	// FlightRecorder sizes the per-track span ring (spans kept per
	// goroutine stripe for /debug/flightrec). Zero means 1024.
	FlightRecorder int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Window < time.Second {
		c.Window = time.Second
	}
	if c.Retain <= 0 {
		c.Retain = DefaultRetain
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.MaxShards <= 0 {
		c.MaxShards = DefaultMaxShards
	}
	if c.QueryCache <= 0 {
		c.QueryCache = DefaultQueryCache
	}
	if c.Jobs <= 0 {
		c.Jobs = runtime.GOMAXPROCS(0)
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.FlightRecorder <= 0 {
		c.FlightRecorder = 1024
	}
	return c
}

// Server is one gprofd instance: an executable registry, a merge shard
// per registered fingerprint, and the HTTP API over both. Create with
// New, expose Handler, and Close when done.
type Server struct {
	cfg     Config
	tr      *obs.Trace
	mux     *http.ServeMux
	cache   *core.Cache // static layers (symbol table, static arcs) per image
	queries *core.LRU   // finished analyses + rendered bodies per data version
	flights flightGroup // single-flight coalescing of cold analyses
	optKey  string      // CacheKey of the server's fixed core.Options
	start   time.Time

	metrics   *serverMetrics      // always-on /metrics registry
	rec       *obs.FlightRecorder // always-on span ring for /debug/flightrec
	self      *selfProfiler       // dogfood loop behind /v1/self
	endpoints map[string]struct{} // registered paths, for bounded metric labels
	handler   http.Handler        // mux wrapped in the metrics middleware
	draining  atomic.Bool         // flips /readyz to 503

	mu     sync.Mutex
	shards map[string]*shard
	closed bool

	stats serverStats
}

// New creates a Server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		tr:     cfg.Trace,
		cache:  core.NewCache(0),
		start:  cfg.Now(),
		shards: make(map[string]*shard),
	}
	s.queries = core.NewLRU(cfg.QueryCache)
	s.optKey = s.runOptions().CacheKey()
	s.metrics = newServerMetrics()
	s.rec = obs.NewFlightRecorder(cfg.FlightRecorder)
	s.self = newSelfProfiler(s, cfg.SelfProfile, cfg.SelfCapture)
	s.mux = http.NewServeMux()
	s.endpoints = make(map[string]struct{})
	s.routes()
	s.handler = s.instrument(s.mux)
	s.self.startLoop()
	return s
}

// Handler returns the HTTP API (the gprofd.api.v1 surface documented
// in docs/FORMATS.md), wrapped in the metrics middleware so every
// request lands in the /metrics histograms and the flight recorder.
func (s *Server) Handler() http.Handler { return s.handler }

// BeginDrain flips /readyz to 503 so load balancers stop routing new
// traffic here, without touching in-flight or subsequent requests —
// every endpoint keeps answering until the process exits. Call it when
// shutdown begins, ahead of http.Server.Shutdown's connection drain.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.metrics.ready.Set(0)
	}
}

// Ready reports whether the server still advertises readiness.
func (s *Server) Ready() bool { return !s.draining.Load() }

// Close stops every shard worker after draining its queue, after
// flipping readiness off and stopping the self-profile loop. Uploads
// arriving during or after Close are rejected with 503; queries keep
// working against the merged windows.
func (s *Server) Close() {
	s.BeginDrain()
	s.self.stopLoop()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	shards := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		shards = append(shards, sh)
	}
	s.mu.Unlock()
	for _, sh := range shards {
		sh.close()
	}
}

// shardFor returns the shard registered for fp, if any.
func (s *Server) shardFor(fp string) (*shard, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh, ok := s.shards[fp]
	return sh, ok
}

// register creates (or returns) the shard for fp. It fails when the
// registry is full or the server is closed.
func (s *Server) register(fp string, sh *shard) (*shard, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server is shutting down")
	}
	if prev, ok := s.shards[fp]; ok {
		return prev, nil
	}
	if len(s.shards) >= s.cfg.MaxShards {
		return nil, fmt.Errorf("fingerprint registry full (%d shards)", s.cfg.MaxShards)
	}
	s.shards[fp] = sh
	sh.start()
	s.tr.Gauge("serve.shards").Set(int64(len(s.shards)))
	return sh, nil
}

// allShards snapshots the registry in fingerprint-sorted order.
func (s *Server) allShards() []*shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*shard, 0, len(s.shards))
	for _, sh := range s.shards {
		out = append(out, sh)
	}
	sortShards(out)
	return out
}
