package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pprofenc"
)

// scrape fetches and parses /metrics, failing the test on any syntax or
// structural (Validate) problem — every scrape in these tests doubles
// as a conformance check of the exposition writer.
func scrape(t *testing.T, ts interface{ url() string }) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(ts.url() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain", ct)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("parsing /metrics: %v", err)
	}
	if err := exp.Validate(); err != nil {
		t.Fatalf("validating /metrics: %v", err)
	}
	return exp
}

type tsURL struct{ u string }

func (t tsURL) url() string { return t.u }

// TestMetricsExposition drives real traffic through the instrumented
// handler and checks the scrape: per-endpoint × per-status series,
// fold-latency and queue-depth histograms, ingest counters, readiness
// gauge, and counter monotonicity across two scrapes.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Window: time.Second})
	u := tsURL{ts.URL}
	_, imageBytes := sortImage(t)
	fp := registerExe(t, ts, imageBytes)
	body := encodeProfile(t, sortProfile(t, 1), 2, false)
	for i := 0; i < 3; i++ {
		mustStatus(t, ingest(t, ts, fp, body), http.StatusAccepted)
	}
	// sync=1 guarantees every accepted upload has folded, so the
	// fold-duration histogram is populated deterministically.
	mustStatus(t, get(t, ts, "/v1/flat?fp="+fp+"&sync=1"), http.StatusOK)

	exp := scrape(t, u)
	if v, ok := exp.Sample("gprofd_http_requests_total",
		"endpoint", "/v1/ingest", "code", "202"); !ok || v != 3 {
		t.Errorf("ingest request counter = %v (present %v), want 3", v, ok)
	}
	if v, ok := exp.Sample("gprofd_http_request_duration_ns_count",
		"endpoint", "/v1/ingest", "code", "202"); !ok || v != 3 {
		t.Errorf("ingest latency count = %v (present %v), want 3", v, ok)
	}
	if v, ok := exp.Sample("gprofd_http_request_bytes_count", "endpoint", "/v1/ingest"); !ok || v != 3 {
		t.Errorf("ingest request-bytes count = %v (present %v), want 3", v, ok)
	}
	if v, ok := exp.Sample("gprofd_profiles_ingested_total"); !ok || v != 3 {
		t.Errorf("profiles ingested = %v (present %v), want 3", v, ok)
	}
	if v, ok := exp.Sample("gprofd_profile_bytes_ingested_total"); !ok || v < float64(len(body)) {
		t.Errorf("profile bytes = %v (present %v), want >= %d", v, ok, len(body))
	}
	if v, ok := exp.Sample("gprofd_shard_fold_duration_ns_count"); !ok || v < 3 {
		t.Errorf("fold duration count = %v (present %v), want >= 3", v, ok)
	}
	if v, ok := exp.Sample("gprofd_shard_queue_depth_count"); !ok || v < 3 {
		t.Errorf("queue depth count = %v (present %v), want >= 3", v, ok)
	}
	if v, ok := exp.Sample("gprofd_ready"); !ok || v != 1 {
		t.Errorf("ready gauge = %v (present %v), want 1", v, ok)
	}
	// The middleware wraps /metrics itself, so the scrape observes its
	// own request in flight.
	if v, ok := exp.Sample("gprofd_http_in_flight"); !ok || v < 1 {
		t.Errorf("in-flight gauge = %v (present %v), want >= 1 during scrape", v, ok)
	}
	if f := exp.Family("gprofd_http_request_duration_ns"); f == nil || f.Kind != "histogram" {
		t.Errorf("latency family = %+v, want histogram", f)
	}
	// An unknown path lands in the bounded "other" label, not a fresh
	// series.
	mustStatus(t, get(t, ts, "/no/such/path"), http.StatusNotFound)
	exp2 := scrape(t, u)
	if v, ok := exp2.Sample("gprofd_http_requests_total",
		"endpoint", "other", "code", "404"); !ok || v != 1 {
		t.Errorf("other/404 counter = %v (present %v), want 1", v, ok)
	}
	// Counters are monotonic scrape over scrape.
	v1, _ := exp.Sample("gprofd_http_requests_total", "endpoint", "/v1/ingest", "code", "202")
	v2, ok := exp2.Sample("gprofd_http_requests_total", "endpoint", "/v1/ingest", "code", "202")
	if !ok || v2 < v1 {
		t.Errorf("ingest counter went %v -> %v across scrapes", v1, v2)
	}
}

// TestDrainReadiness pins the graceful-drain contract: /readyz flips to
// 503 the moment draining begins while /healthz and every query
// endpoint keep answering 200, so a balancer can rotate the instance
// out without failing in-flight work.
func TestDrainReadiness(t *testing.T) {
	s, ts := newTestServer(t, Config{Window: time.Second})
	_, imageBytes := sortImage(t)
	fp := registerExe(t, ts, imageBytes)
	mustStatus(t, ingest(t, ts, fp, encodeProfile(t, sortProfile(t, 1), 2, false)), http.StatusAccepted)

	if body := mustStatus(t, get(t, ts, "/healthz"), http.StatusOK); string(body) != "ok\n" {
		t.Errorf("/healthz body = %q", body)
	}
	mustStatus(t, get(t, ts, "/readyz"), http.StatusOK)
	if !s.Ready() {
		t.Fatal("server not ready before drain")
	}

	s.BeginDrain()
	if s.Ready() {
		t.Fatal("server still ready after BeginDrain")
	}
	if body := mustStatus(t, get(t, ts, "/readyz"), http.StatusServiceUnavailable); string(body) != "draining\n" {
		t.Errorf("/readyz body during drain = %q", body)
	}
	// Liveness and queries are unaffected: the drain only stops new
	// traffic from being routed here.
	mustStatus(t, get(t, ts, "/healthz"), http.StatusOK)
	mustStatus(t, get(t, ts, "/v1/flat?fp="+fp+"&sync=1"), http.StatusOK)
	exp := scrape(t, tsURL{ts.URL})
	if v, ok := exp.Sample("gprofd_ready"); !ok || v != 0 {
		t.Errorf("ready gauge during drain = %v (present %v), want 0", v, ok)
	}
	s.BeginDrain() // idempotent
	mustStatus(t, get(t, ts, "/readyz"), http.StatusServiceUnavailable)
}

// TestFlightRecEndpoint checks /debug/flightrec returns valid Chrome
// trace JSON holding the recent request and fold spans.
func TestFlightRecEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Window: time.Second})
	_, imageBytes := sortImage(t)
	fp := registerExe(t, ts, imageBytes)
	mustStatus(t, ingest(t, ts, fp, encodeProfile(t, sortProfile(t, 1), 2, false)), http.StatusAccepted)
	mustStatus(t, get(t, ts, "/v1/flat?fp="+fp+"&sync=1"), http.StatusOK)

	body := mustStatus(t, get(t, ts, "/debug/flightrec"), http.StatusOK)
	var trace struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &trace); err != nil {
		t.Fatalf("flight recorder dump is not valid JSON: %v", err)
	}
	var sawHTTP, sawFold bool
	for _, ev := range trace.TraceEvents {
		if strings.HasPrefix(ev.Name, "http /v1/ingest") {
			sawHTTP = true
		}
		if strings.HasPrefix(ev.Name, "fold ") {
			sawFold = true
		}
	}
	if !sawHTTP || !sawFold {
		t.Errorf("flight recorder missing spans: http=%v fold=%v (%d events)",
			sawHTTP, sawFold, len(trace.TraceEvents))
	}
}

// selfCaptureStub encodes a deterministic stacks profile as the raw
// pprof bytes the self-profiler's captureFn contract requires.
func selfCaptureStub(t *testing.T, samples []model.FrameSample) func(time.Duration) ([]byte, error) {
	t.Helper()
	prof := &model.Profile{
		Schema: model.SchemaV2,
		Hz:     100,
		Stacks: model.StacksFromFrames(samples),
	}
	var buf bytes.Buffer
	if err := pprofenc.Encode(&buf, prof); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	return func(time.Duration) ([]byte, error) { return raw, nil }
}

// TestSelfProfileEndpoint stubs the capture and exercises every
// /v1/self view, including the pprof round-trip through the in-repo
// decoder — the dogfood loop minus the runtime profiler itself.
func TestSelfProfileEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Window: time.Second})
	s.self.captureFn = selfCaptureStub(t, []model.FrameSample{
		{Frames: []string{"serveHTTP", "mergeLoop", "main"}, Count: 7},
		{Frames: []string{"foldWindow", "mergeLoop", "main"}, Count: 3},
	})

	// First request captures on demand (no background loop configured).
	flat := mustStatus(t, get(t, ts, "/v1/self"), http.StatusOK)
	if !strings.Contains(string(flat), "serveHTTP") || !strings.Contains(string(flat), "10 samples") {
		t.Errorf("flat self view missing data:\n%s", flat)
	}
	folded := mustStatus(t, get(t, ts, "/v1/self?view=folded"), http.StatusOK)
	if !strings.Contains(string(folded), "serveHTTP") {
		t.Errorf("folded self view missing routine:\n%s", folded)
	}
	pb := mustStatus(t, get(t, ts, "/v1/self?view=pprof"), http.StatusOK)
	d, err := pprofenc.Decode(bytes.NewReader(pb))
	if err != nil {
		t.Fatalf("decoding /v1/self pprof: %v", err)
	}
	var total int64
	for _, smp := range d.Samples {
		total += smp.Values[0]
	}
	if total != 10 {
		t.Errorf("pprof round-trip total = %d, want 10", total)
	}
	var jsonProf model.Profile
	jb := mustStatus(t, get(t, ts, "/v1/self?view=json"), http.StatusOK)
	if err := json.Unmarshal(jb, &jsonProf); err != nil {
		t.Fatalf("self json: %v", err)
	}
	if jsonProf.Schema != model.SchemaV2 || jsonProf.Stacks == nil || jsonProf.Stacks.Samples != 10 {
		t.Errorf("self json = schema %q, stacks %+v", jsonProf.Schema, jsonProf.Stacks)
	}
	mustStatus(t, get(t, ts, "/v1/self?view=bogus"), http.StatusBadRequest)

	exp := scrape(t, tsURL{ts.URL})
	if v, ok := exp.Sample("gprofd_selfprofile_captures_total"); !ok || v < 1 {
		t.Errorf("selfprofile captures = %v (present %v), want >= 1", v, ok)
	}
}

// TestSelfProfileEmptyCapture pins the idle-process behavior: a capture
// with no samples keeps /v1/self at 503 (and counts as empty) instead
// of publishing a blank profile; a later productive capture replaces it
// and sticks even when the next capture is empty again.
func TestSelfProfileEmptyCapture(t *testing.T) {
	s, ts := newTestServer(t, Config{Window: time.Second})
	empty := selfCaptureStub(t, nil)
	s.self.captureFn = empty
	mustStatus(t, get(t, ts, "/v1/self"), http.StatusServiceUnavailable)

	s.self.captureFn = selfCaptureStub(t, []model.FrameSample{
		{Frames: []string{"busy", "main"}, Count: 2},
	})
	s.self.captureOnce()
	mustStatus(t, get(t, ts, "/v1/self"), http.StatusOK)

	// Idle again: the last productive capture keeps serving.
	s.self.captureFn = empty
	s.self.captureOnce()
	flat := mustStatus(t, get(t, ts, "/v1/self"), http.StatusOK)
	if !strings.Contains(string(flat), "busy") {
		t.Errorf("stale-but-productive capture not retained:\n%s", flat)
	}
	exp := scrape(t, tsURL{ts.URL})
	if v, ok := exp.Sample("gprofd_selfprofile_empty_total"); !ok || v < 2 {
		t.Errorf("selfprofile empty = %v (present %v), want >= 2", v, ok)
	}
}

// TestSelfProfileLoop starts the real background loop (real runtime
// captures) and shuts it down again — a deadlock/leak check for the
// start/stop path; capture productivity is inherently load-dependent
// and asserted elsewhere with stubs.
func TestSelfProfileLoop(t *testing.T) {
	s := New(Config{SelfProfile: 20 * time.Millisecond, SelfCapture: 5 * time.Millisecond})
	time.Sleep(60 * time.Millisecond)
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close with active self-profile loop did not return")
	}
	if got := s.metrics.selfCaptures.Value(); got < 1 {
		t.Errorf("loop ran %d captures, want >= 1", got)
	}
}
