package report

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/callgraph"
)

// Flat renders the flat profile (§5.1): routines sorted by decreasing
// self time, with cumulative seconds, call counts, and per-call times,
// followed by the list of routines never called during the execution.
// The self-seconds column sums to the total sampled run time (any ticks
// that fell outside known routines are reported explicitly so the sum
// still reconciles).
func Flat(w io.Writer, g *callgraph.Graph, opt Options) error {
	type row struct {
		n     *callgraph.Node
		calls int64
	}
	var rows []row
	var never []*callgraph.Node
	for _, n := range g.Nodes() {
		calls := n.Calls() + n.SelfCalls()
		if calls == 0 && n.SelfTicks == 0 {
			never = append(never, n)
			continue
		}
		rows = append(rows, row{n, calls})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].n.SelfTicks != rows[j].n.SelfTicks {
			return rows[i].n.SelfTicks > rows[j].n.SelfTicks
		}
		if rows[i].calls != rows[j].calls {
			return rows[i].calls > rows[j].calls
		}
		return rows[i].n.Name < rows[j].n.Name
	})

	totalSecs := seconds(g, g.TotalTicks)
	if !opt.NoHeaders {
		fmt.Fprintf(w, "flat profile:\n\n")
		fmt.Fprintf(w, "  %%         cumulative    self                self    total\n")
		fmt.Fprintf(w, " time        seconds    seconds     calls  ms/call  ms/call name\n")
	}
	var cum float64
	for _, r := range rows {
		if opt.MinPercent > 0 && percent(g, r.n.SelfTicks) < opt.MinPercent {
			continue
		}
		if opt.excluded(r.n.Name) {
			continue
		}
		selfSecs := seconds(g, r.n.SelfTicks)
		cum += selfSecs
		selfPer, totalPer := "", ""
		if r.calls > 0 {
			selfPer = fmt.Sprintf("%8.2f", selfSecs*1000/float64(r.calls))
			if !r.n.InCycle() {
				totalPer = fmt.Sprintf("%8.2f", seconds(g, r.n.TotalTicks())*1000/float64(r.calls))
			}
		}
		fmt.Fprintf(w, "%5.1f %14.2f %10.2f %9d %8s %8s %s\n",
			percent(g, r.n.SelfTicks), cum, selfSecs, r.calls, selfPer, totalPer, label(r.n))
	}
	if g.LostTicks > 0 {
		fmt.Fprintf(w, "%5.1f %14.2f %10.2f %9s %8s %8s %s\n",
			percent(g, g.LostTicks), cum+seconds(g, g.LostTicks), seconds(g, g.LostTicks),
			"", "", "", "<outside any routine>")
	}
	if !opt.NoHeaders {
		fmt.Fprintf(w, "\ntotal: %.2f seconds\n", totalSecs)
	}

	if len(never) > 0 {
		sort.Slice(never, func(i, j int) bool { return never[i].Name < never[j].Name })
		fmt.Fprintf(w, "\nroutines never called during this execution:\n")
		for _, n := range never {
			fmt.Fprintf(w, "    %s\n", n.Name)
		}
	}
	return nil
}

// IndexListing renders the alphabetical index gprof appends: each
// routine name with its entry number, so entries can be found in the
// call graph profile. AssignIndexes (or CallGraph) must have run.
func IndexListing(w io.Writer, g *callgraph.Graph) error {
	type item struct {
		name string
		idx  int
	}
	var items []item
	for _, n := range g.Nodes() {
		if n.Index > 0 {
			items = append(items, item{label(n), n.Index})
		}
	}
	for _, c := range g.Cycles {
		if c.Index > 0 {
			items = append(items, item{fmt.Sprintf("<cycle %d>", c.Number), c.Index})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].name < items[j].name })
	fmt.Fprintf(w, "index by function name:\n\n")
	for _, it := range items {
		fmt.Fprintf(w, "  [%d] %s\n", it.idx, it.name)
	}
	return nil
}
