package report

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/model"
)

// Flat renders the flat profile (§5.1): routines sorted by decreasing
// self time, with cumulative seconds, call counts, and per-call times,
// followed by the list of routines never called during the execution.
// The self-seconds column sums to the total sampled run time (any ticks
// that fell outside known routines are reported explicitly so the sum
// still reconciles).
//
// The model's Flat rows arrive pre-sorted; the cumulative column is
// recomputed here over the rows that survive filtering, so a -E or
// minimum-percent view still reconciles internally.
func Flat(w io.Writer, m *model.Profile, opt Options) error {
	v := newView(m)
	f := opt.compile(v)

	totalSecs := m.Seconds(m.TotalTicks)
	if !opt.NoHeaders {
		fmt.Fprintf(w, "flat profile:\n\n")
		fmt.Fprintf(w, "  %%         cumulative    self                self    total\n")
		fmt.Fprintf(w, " time        seconds    seconds     calls  ms/call  ms/call name\n")
	}
	var cum float64
	for i := range m.Flat {
		r := &m.Flat[i]
		if opt.MinPercent > 0 && r.Percent < opt.MinPercent {
			continue
		}
		if f.excluded(r.Name) {
			continue
		}
		cum += r.SelfSeconds
		selfPer, totalPer := "", ""
		if r.Calls > 0 {
			selfPer = fmt.Sprintf("%8.2f", r.SelfSeconds*1000/float64(r.Calls))
			if r.Cycle == 0 {
				totalPer = fmt.Sprintf("%8.2f", r.TotalMsPerCall)
			}
		}
		fmt.Fprintf(w, "%5.1f %14.2f %10.2f %9d %8s %8s %s\n",
			r.Percent, cum, r.SelfSeconds, r.Calls, selfPer, totalPer, flatLabel(r))
	}
	if m.LostTicks > 0 {
		fmt.Fprintf(w, "%5.1f %14.2f %10.2f %9s %8s %8s %s\n",
			m.Percent(m.LostTicks), cum+m.Seconds(m.LostTicks), m.Seconds(m.LostTicks),
			"", "", "", "<outside any routine>")
	}
	if !opt.NoHeaders {
		fmt.Fprintf(w, "\ntotal: %.2f seconds\n", totalSecs)
	}

	if len(m.NeverCalled) > 0 {
		fmt.Fprintf(w, "\nroutines never called during this execution:\n")
		for _, name := range m.NeverCalled {
			fmt.Fprintf(w, "    %s\n", name)
		}
	}
	return nil
}

// flatLabel renders a flat row's name with its cycle tag.
func flatLabel(r *model.FlatRow) string {
	if r.Cycle != 0 {
		return fmt.Sprintf("%s <cycle%d>", r.Name, r.Cycle)
	}
	return r.Name
}

// IndexListing renders the alphabetical index gprof appends: each
// routine name with its entry number, so entries can be found in the
// call graph profile.
func IndexListing(w io.Writer, m *model.Profile) error {
	type item struct {
		name string
		idx  int
	}
	var items []item
	for i := range m.Routines {
		r := &m.Routines[i]
		if r.Index > 0 {
			items = append(items, item{label(r), r.Index})
		}
	}
	for i := range m.Cycles {
		c := &m.Cycles[i]
		if c.Index > 0 {
			items = append(items, item{fmt.Sprintf("<cycle %d>", c.Number), c.Index})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].name < items[j].name })
	fmt.Fprintf(w, "index by function name:\n\n")
	for _, it := range items {
		fmt.Fprintf(w, "  [%d] %s\n", it.idx, it.name)
	}
	return nil
}
