package report

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/model"
	"repro/internal/propagate"
	"repro/internal/scc"
)

// figure4Graph reconstructs the call-graph fragment of the paper's
// Figure 4 with tick values that reproduce the published numbers,
// including the 41.5 %time (total run = 8.43s).
func figure4Graph() *callgraph.Graph {
	g := callgraph.New()
	g.Hz = 1 // ticks are seconds
	g.AddArc("CALLER1", "EXAMPLE", 4)
	g.AddArc("CALLER2", "EXAMPLE", 6)
	g.AddArc("EXAMPLE", "EXAMPLE", 4)
	g.AddArc("EXAMPLE", "SUB1", 20)
	g.AddArc("OTHER", "SUB1", 20)
	g.AddArc("SUB1", "PARTNER", 7)
	g.AddArc("PARTNER", "SUB1", 7)
	g.AddArc("EXAMPLE", "SUB2", 1)
	g.AddArc("OTHER", "SUB2", 4)
	st := g.AddArc("EXAMPLE", "SUB3", 0)
	st.Static = true
	g.AddArc("OTHER", "SUB3", 5)
	g.AddArc("SUB1", "DEEP", 8)
	g.AddArc("SUB2", "SUB2LEAF", 3)

	g.MustNode("EXAMPLE").SelfTicks = 0.50
	g.MustNode("SUB1").SelfTicks = 2.00
	g.MustNode("PARTNER").SelfTicks = 1.00
	g.MustNode("DEEP").SelfTicks = 2.00
	g.MustNode("SUB2LEAF").SelfTicks = 2.50
	g.MustNode("SUB3").SelfTicks = 0.43
	g.TotalTicks = 8.43
	return g
}

// analyze runs the post-processing stages and condenses the graph into
// the profile model the renderers consume.
func analyze(g *callgraph.Graph) *model.Profile {
	scc.Analyze(g)
	propagate.Run(g)
	return model.Build(g)
}

func render(t *testing.T, g *callgraph.Graph, opt Options) string {
	t.Helper()
	m := analyze(g)
	var buf bytes.Buffer
	if err := CallGraph(&buf, m, opt); err != nil {
		t.Fatalf("CallGraph: %v", err)
	}
	return buf.String()
}

// entryBlock extracts the dashed-rule-delimited block whose self line
// mentions name.
func entryBlock(out, name string) string {
	for _, block := range strings.Split(out, strings.Repeat("-", 72)) {
		for _, line := range strings.Split(block, "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "[") && strings.Contains(line, name) {
				return block
			}
		}
	}
	return ""
}

func TestFigure4Entry(t *testing.T) {
	out := render(t, figure4Graph(), Options{})
	block := entryBlock(out, "EXAMPLE")
	if block == "" {
		t.Fatalf("no entry for EXAMPLE in output:\n%s", out)
	}
	for _, want := range []string{
		"41.5",          // %time
		"0.50",          // self seconds
		"3.00",          // descendant seconds
		"10+4",          // called+self
		"4/10",          // CALLER1's share of calls
		"6/10",          // CALLER2's share
		"20/40",         // calls into cycle 1
		"1/5",           // SUB2
		"0/5",           // SUB3 (static arc, never traversed)
		"CALLER1",       //
		"CALLER2",       //
		"SUB1 <cycle1>", // member tag, as in the figure
		"SUB2", "SUB3",
	} {
		if !strings.Contains(block, want) {
			t.Errorf("EXAMPLE entry missing %q:\n%s", want, block)
		}
	}
	// Figure 4's propagated amounts.
	for _, want := range []string{"0.20", "1.20", "0.30", "1.80", "1.50", "1.00"} {
		if !strings.Contains(block, want) {
			t.Errorf("EXAMPLE entry missing propagated value %q:\n%s", want, block)
		}
	}
	// Parents are ordered by ascending contribution: CALLER1 above CALLER2.
	if strings.Index(block, "CALLER1") > strings.Index(block, "CALLER2") {
		t.Error("CALLER1 should be listed before CALLER2")
	}
	// Children by descending: SUB1, SUB2, SUB3.
	if !(strings.Index(block, "SUB1") < strings.Index(block, "SUB2") &&
		strings.Index(block, "SUB2") < strings.Index(block, "SUB3")) {
		t.Error("children not in descending time order")
	}
}

func TestEntriesSortedByTotalTime(t *testing.T) {
	out := render(t, figure4Graph(), Options{})
	// Extract self lines "[k] ..." in order and check indices ascend.
	re := regexp.MustCompile(`(?m)^\[(\d+)\]`)
	matches := re.FindAllStringSubmatch(out, -1)
	if len(matches) < 5 {
		t.Fatalf("too few entries: %d", len(matches))
	}
	for i, m := range matches {
		k, _ := strconv.Atoi(m[1])
		if k != i+1 {
			t.Errorf("entry %d has index %d; listing order must match index order", i+1, k)
		}
	}
}

func TestCycleEntry(t *testing.T) {
	out := render(t, figure4Graph(), Options{})
	block := entryBlock(out, "as a whole")
	if block == "" {
		t.Fatalf("no cycle-as-a-whole entry:\n%s", out)
	}
	for _, want := range []string{
		"<cycle 1 as a whole>",
		"40+14",            // 40 external calls + 14 internal
		"3.00",             // summed member self time
		"2.00",             // cycle descendant time (DEEP)
		"SUB1 <cycle1>",    // members listed in place of children
		"PARTNER <cycle1>", //
	} {
		if !strings.Contains(block, want) {
			t.Errorf("cycle entry missing %q:\n%s", want, block)
		}
	}
}

func TestSpontaneousParentShown(t *testing.T) {
	g := callgraph.New()
	g.Hz = 1
	g.AddArc("", "handler", 2)
	g.AddArc("main", "handler", 2)
	g.MustNode("handler").SelfTicks = 4
	g.TotalTicks = 4
	out := render(t, g, Options{})
	if !strings.Contains(out, "<spontaneous>") {
		t.Errorf("spontaneous parent not shown:\n%s", out)
	}
}

func TestMinPercentFilter(t *testing.T) {
	g := figure4Graph()
	out := render(t, g, Options{MinPercent: 30})
	if entryBlock(out, "EXAMPLE") == "" {
		t.Error("hot entry EXAMPLE filtered out")
	}
	if entryBlock(out, "SUB3") != "" {
		t.Error("cold entry SUB3 (~5%) not filtered at MinPercent=30")
	}
}

func TestFocusFilter(t *testing.T) {
	g := figure4Graph()
	out := render(t, g, Options{Focus: []string{"SUB2"}})
	// SUB2, its parents (EXAMPLE, OTHER) and child (SUB2LEAF) stay.
	for _, want := range []string{"SUB2", "EXAMPLE", "OTHER", "SUB2LEAF"} {
		if entryBlock(out, want) == "" {
			t.Errorf("focus on SUB2 lost neighbor %s:\n%s", want, out)
		}
	}
	if entryBlock(out, "DEEP") != "" {
		t.Error("focus on SUB2 kept unrelated DEEP")
	}
	if entryBlock(out, "CALLER1") != "" {
		t.Error("focus on SUB2 kept unrelated CALLER1")
	}
}

func TestFocusUnknownNameSelectsNothing(t *testing.T) {
	g := figure4Graph()
	out := render(t, g, Options{Focus: []string{"nosuch"}})
	if !strings.Contains(out, "no entries selected") {
		t.Errorf("expected empty listing:\n%s", out)
	}
}

// A routine that is both focused and excluded stays suppressed:
// exclusion is checked independently of the focus neighborhood, so -E
// wins over focus for the routine's own entry.
func TestFocusExcludeSameRoutine(t *testing.T) {
	g := figure4Graph()
	out := render(t, g, Options{Focus: []string{"SUB2"}, Exclude: []string{"SUB2"}})
	if entryBlock(out, "SUB2 [") != "" {
		t.Errorf("focused-and-excluded SUB2 still has an entry:\n%s", out)
	}
	// The focus neighborhood survives: SUB2's parents and child keep
	// their entries even though the focal routine itself is suppressed.
	for _, want := range []string{"EXAMPLE", "OTHER", "SUB2LEAF"} {
		if entryBlock(out, want) == "" {
			t.Errorf("exclusion of the focal routine lost neighbor %s:\n%s", want, out)
		}
	}
}

// Excluding a parent of the focused routine suppresses the parent's own
// entry but not the parent line inside the focused entry: exclusion
// hides entries, not arcs.
func TestFocusWithExcludedParent(t *testing.T) {
	g := figure4Graph()
	out := render(t, g, Options{Focus: []string{"SUB2"}, Exclude: []string{"OTHER"}})
	if entryBlock(out, "OTHER") != "" {
		t.Errorf("excluded parent OTHER still has its own entry:\n%s", out)
	}
	block := entryBlock(out, "SUB2 [")
	if block == "" {
		t.Fatalf("focused SUB2 lost its entry:\n%s", out)
	}
	if !strings.Contains(block, "OTHER") {
		t.Errorf("SUB2's entry no longer lists its parent OTHER:\n%s", block)
	}
}

func TestFlatProfile(t *testing.T) {
	g := callgraph.New()
	g.Hz = 1
	g.AddArc("main", "hot", 10)
	g.AddArc("main", "warm", 5)
	g.AddArc("main", "cold", 1)
	g.AddNode("unused")
	g.AddNode("alsounused")
	g.MustNode("hot").SelfTicks = 6
	g.MustNode("warm").SelfTicks = 3
	g.MustNode("main").SelfTicks = 1
	g.TotalTicks = 10
	m := analyze(g)

	var buf bytes.Buffer
	if err := Flat(&buf, m, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// Order: hot, warm, main, cold.
	iHot, iWarm, iMain, iCold := strings.Index(out, "hot"), strings.Index(out, "warm"),
		strings.Index(out, "main"), strings.Index(out, "cold")
	if !(iHot < iWarm && iWarm < iMain && iMain < iCold) {
		t.Errorf("flat rows out of order:\n%s", out)
	}
	// Percentages: hot = 60%.
	if !strings.Contains(out, "60.0") {
		t.Errorf("hot should be 60.0%%:\n%s", out)
	}
	// Total line.
	if !strings.Contains(out, "total: 10.00 seconds") {
		t.Errorf("missing total:\n%s", out)
	}
	// Never-called list, sorted.
	if !strings.Contains(out, "routines never called") {
		t.Errorf("missing never-called section:\n%s", out)
	}
	iA, iU := strings.Index(out, "alsounused"), strings.LastIndex(out, "unused")
	if iA < 0 || iU < 0 || iA > iU {
		t.Errorf("never-called list wrong:\n%s", out)
	}
	// cold was called but has no samples: present with 0.00 time.
	if iCold < 0 {
		t.Error("called-but-unsampled routine missing from flat profile")
	}
}

func TestFlatSumsToTotal(t *testing.T) {
	// §5.1: "for this profile, the individual times sum to the total
	// execution time" — check the cumulative column reaches the total,
	// including lost ticks.
	g := callgraph.New()
	g.Hz = 1
	g.AddArc("main", "f", 1)
	g.MustNode("main").SelfTicks = 2
	g.MustNode("f").SelfTicks = 5
	g.TotalTicks = 8
	g.LostTicks = 1
	m := analyze(g)
	var buf bytes.Buffer
	if err := Flat(&buf, m, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<outside any routine>") {
		t.Errorf("lost ticks not reported:\n%s", out)
	}
	// The last cumulative value equals the total 8.00.
	if !strings.Contains(out, "8.00") {
		t.Errorf("cumulative does not reach total:\n%s", out)
	}
}

func TestFlatPerCallColumns(t *testing.T) {
	g := callgraph.New()
	g.Hz = 1
	g.AddArc("main", "f", 4)
	g.AddArc("f", "leaf", 8)
	g.MustNode("f").SelfTicks = 2 // 0.5 s/call self
	g.MustNode("leaf").SelfTicks = 4
	g.TotalTicks = 6
	m := analyze(g)
	var buf bytes.Buffer
	if err := Flat(&buf, m, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// f: self 2s over 4 calls = 500 ms/call; total (2+4)/4 = 1500 ms/call.
	if !strings.Contains(out, "500.00") || !strings.Contains(out, "1500.00") {
		t.Errorf("per-call columns wrong:\n%s", out)
	}
}

func TestIndexListing(t *testing.T) {
	m := analyze(figure4Graph())
	var buf bytes.Buffer
	if err := IndexListing(&buf, m); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"EXAMPLE", "<cycle 1>", "SUB1 <cycle1>"} {
		if !strings.Contains(out, want) {
			t.Errorf("index missing %q:\n%s", want, out)
		}
	}
	// Alphabetical.
	if strings.Index(out, "CALLER1") > strings.Index(out, "EXAMPLE") {
		t.Errorf("index not alphabetical:\n%s", out)
	}
}

func TestIndicesConsistentAcrossReferences(t *testing.T) {
	// Every "[k] name" self line must agree with references "name [k]"
	// elsewhere in the listing.
	out := render(t, figure4Graph(), Options{})
	selfRe := regexp.MustCompile(`(?m)^\[(\d+)\].* ([A-Z0-9<>a-z_ ]+?) \[(\d+)\]$`)
	for _, m := range selfRe.FindAllStringSubmatch(out, -1) {
		if m[1] != m[3] {
			t.Errorf("self line index mismatch: %q", m[0])
		}
	}
	// EXAMPLE's index on its self line matches references in other
	// entries.
	exIdx := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "[") && strings.Contains(line, "EXAMPLE") {
			f := strings.Fields(line)
			exIdx = f[0]
			break
		}
	}
	if exIdx == "" {
		t.Fatal("no EXAMPLE self line")
	}
	ref := "EXAMPLE " + strings.TrimPrefix(exIdx, "")
	if c := strings.Count(out, ref); c < 2 {
		t.Errorf("EXAMPLE %s referenced %d times, want >= 2:\n%s", exIdx, c, out)
	}
}

func TestHeadersSuppressed(t *testing.T) {
	out := render(t, figure4Graph(), Options{NoHeaders: true})
	if strings.Contains(out, "granularity") {
		t.Error("NoHeaders left the header in place")
	}
}

func TestZeroTotalTicksNoPanic(t *testing.T) {
	g := callgraph.New()
	g.AddArc("main", "f", 1)
	m := analyze(g)
	var buf bytes.Buffer
	if err := CallGraph(&buf, m, Options{}); err != nil {
		t.Fatal(err)
	}
	if buf.String() == "" {
		t.Error("empty output")
	}
	buf.Reset()
	if err := Flat(&buf, m, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestCycleMemberEntryShowsIntraCycleCalls(t *testing.T) {
	g := figure4Graph()
	out := render(t, g, Options{})
	block := entryBlock(out, "PARTNER")
	if block == "" {
		t.Fatal("no PARTNER member entry")
	}
	// PARTNER's caller SUB1 is intra-cycle: listed with a bare count.
	if !strings.Contains(block, "SUB1 <cycle1>") {
		t.Errorf("member entry missing intra-cycle parent:\n%s", block)
	}
}

func ExampleCallGraph() {
	g := callgraph.New()
	g.Hz = 1
	g.AddArc("main", "work", 2)
	g.MustNode("work").SelfTicks = 3
	g.MustNode("main").SelfTicks = 1
	g.TotalTicks = 4
	scc.Analyze(g)
	propagate.Run(g)
	m := model.Build(g)
	var buf bytes.Buffer
	_ = CallGraph(&buf, m, Options{NoHeaders: true})
	fmt.Println(strings.Contains(buf.String(), "main"))
	// Output: true
}

func TestExcludeFilter(t *testing.T) {
	g := figure4Graph()
	m := analyze(g)
	var buf bytes.Buffer
	if err := CallGraph(&buf, m, Options{Exclude: []string{"SUB2", "DEEP"}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if entryBlock(out, "SUB2 [") != "" {
		t.Error("excluded SUB2 still has an entry")
	}
	if entryBlock(out, "DEEP") != "" {
		t.Error("excluded DEEP still has an entry")
	}
	// Exclusion is display-only: EXAMPLE's descendants still include
	// SUB2's contribution (3.00 total).
	block := entryBlock(out, "EXAMPLE")
	if !strings.Contains(block, "3.00") {
		t.Errorf("exclusion changed propagation:\n%s", block)
	}
	// Flat profile also suppresses the rows.
	buf.Reset()
	if err := Flat(&buf, m, Options{Exclude: []string{"SUB2LEAF"}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "SUB2LEAF") {
		t.Error("excluded routine in flat profile")
	}
}

func TestWriteDOT(t *testing.T) {
	m := analyze(figure4Graph())
	var buf bytes.Buffer
	if err := WriteDOT(&buf, m, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph callgraph {",
		"subgraph cluster_1",  // the SUB1/PARTNER cycle
		`"EXAMPLE" -> "SUB1"`, // a dynamic edge
		"style=dashed",        // the static EXAMPLE->SUB3 arc
		`label="20"`,          // edge count label
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Balanced braces.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces in DOT output")
	}
	// Every kept node declared exactly once (edge lines also contain
	// `"EXAMPLE" [label=`, so match the node-declaration label text).
	if c := strings.Count(out, `"EXAMPLE" [label="EXAMPLE\n`); c != 1 {
		t.Errorf("EXAMPLE declared %d times", c)
	}
	// Filters apply.
	buf.Reset()
	if err := WriteDOT(&buf, m, Options{Exclude: []string{"SUB3"}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"SUB3" [`) {
		t.Error("excluded node present in DOT")
	}
}
