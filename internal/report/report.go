// Package report renders profile data for people: the flat profile
// (paper §5.1) and the call graph profile (§5.2, Figure 4).
//
// The flat profile lists every routine exercised by the execution with
// its call count and the seconds it is itself accountable for, sorted by
// decreasing self time; routines never called are listed separately "to
// verify that nothing important is omitted by this execution". The
// individual times sum to the total execution time.
//
// The call graph profile lists one entry per routine — "a window into
// the call graph" — sorted by self-plus-descendant time. Each entry
// shows the routine's parents above it (with the self and descendant
// time the routine propagates to each, and the fraction of calls each
// parent accounts for) and its children below it (with the time each
// child passes up and the fraction of the child's calls the routine
// makes). Cycles appear as single entities whose members are listed in
// place of children; self-recursive calls are split out of the call
// count ("called+self") because only outside calls propagate time.
//
// The retrospective's filtering features are provided as Options: a
// minimum-%time threshold ("show only hot functions") and a focus set
// ("only parts of the graph containing certain methods").
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/callgraph"
)

// Options controls both reports.
type Options struct {
	// MinPercent suppresses call-graph entries whose total time is below
	// this percentage of the run, and flat-profile rows with zero time
	// below it (0 shows everything).
	MinPercent float64
	// Focus, when non-empty, restricts the call-graph profile to entries
	// for the named routines, their direct parents, and their direct
	// children.
	Focus []string
	// Exclude suppresses the named routines' entries and flat-profile
	// rows (gprof's -E display exclusion). Their time still propagates:
	// exclusion is presentation-only.
	Exclude []string
	// NoHeaders omits the explanatory column headers.
	NoHeaders bool
}

// excluded reports whether a routine is display-suppressed.
func (o *Options) excluded(name string) bool {
	for _, e := range o.Exclude {
		if e == name {
			return true
		}
	}
	return false
}

// entry is one unit of the call-graph listing: a plain node or a whole
// cycle.
type entry struct {
	node  *callgraph.Node  // nil for cycle entries
	cycle *callgraph.Cycle // nil for node entries
}

func (e entry) total() float64 {
	if e.cycle != nil {
		return e.cycle.TotalTicks()
	}
	return e.node.TotalTicks()
}

func (e entry) name() string {
	if e.cycle != nil {
		return fmt.Sprintf("<cycle %d as a whole>", e.cycle.Number)
	}
	return e.node.Name
}

// AssignIndexes orders profile entries by decreasing total time and
// numbers them. Cycle members receive indices immediately after their
// cycle's entry, ordered by decreasing self time. It returns the entry
// list in listing order. CallGraph calls it; it is exported for tools
// that need stable indices without rendering.
func AssignIndexes(g *callgraph.Graph) []entryExport {
	entries := buildEntries(g)
	idx := 1
	var out []entryExport
	for _, e := range entries {
		if e.cycle != nil {
			e.cycle.Index = idx
			idx++
			out = append(out, entryExport{Cycle: e.cycle})
			members := append([]*callgraph.Node(nil), e.cycle.Members...)
			sort.SliceStable(members, func(i, j int) bool {
				return members[i].SelfTicks > members[j].SelfTicks
			})
			for _, m := range members {
				m.Index = idx
				idx++
				out = append(out, entryExport{Node: m})
			}
			continue
		}
		e.node.Index = idx
		idx++
		out = append(out, entryExport{Node: e.node})
	}
	return out
}

// entryExport is the public shape of a listing entry.
type entryExport struct {
	Node  *callgraph.Node
	Cycle *callgraph.Cycle
}

// buildEntries collects units (plain nodes and cycles) sorted by
// decreasing total time, ties broken by name for determinism. Units with
// neither time nor calls (never touched) are excluded from the call
// graph listing — they appear in the flat profile's never-called list.
func buildEntries(g *callgraph.Graph) []entry {
	var entries []entry
	for _, n := range g.Nodes() {
		if n.InCycle() {
			continue
		}
		entries = append(entries, entry{node: n})
	}
	for _, c := range g.Cycles {
		entries = append(entries, entry{cycle: c})
	}
	sort.SliceStable(entries, func(i, j int) bool {
		ti, tj := entries[i].total(), entries[j].total()
		if ti != tj {
			return ti > tj
		}
		return entries[i].name() < entries[j].name()
	})
	return entries
}

// seconds converts ticks to seconds at the graph's clock rate.
func seconds(g *callgraph.Graph, ticks float64) float64 {
	return ticks / float64(g.Hertz())
}

// percent returns ticks as a percentage of the total run.
func percent(g *callgraph.Graph, ticks float64) float64 {
	if g.TotalTicks <= 0 {
		return 0
	}
	return 100 * ticks / g.TotalTicks
}

// label renders a routine name with its cycle tag, e.g. "SUB1 <cycle1>".
func label(n *callgraph.Node) string {
	if n.InCycle() {
		return fmt.Sprintf("%s <cycle%d>", n.Name, n.Cycle.Number)
	}
	return n.Name
}

// CallGraph renders the call graph profile. The graph must already be
// analyzed (scc) and propagated (propagate). Indices are (re)assigned.
func CallGraph(w io.Writer, g *callgraph.Graph, opt Options) error {
	listing := AssignIndexes(g)
	focus := focusSet(g, opt.Focus)

	totalSecs := seconds(g, g.TotalTicks)
	if !opt.NoHeaders {
		fmt.Fprintf(w, "call graph profile:\n")
		fmt.Fprintf(w, "granularity: each sample hit covers 1 word for %.2f%% of %.2f seconds\n\n",
			percentPerTick(g), totalSecs)
		fmt.Fprintf(w, "                                  called/total       parents\n")
		fmt.Fprintf(w, "index  %%time    self descendants  called+self    name           index\n")
		fmt.Fprintf(w, "                                  called/total       children\n\n")
	}

	rule := strings.Repeat("-", 72)
	printed := 0
	for _, ex := range listing {
		if ex.Cycle != nil {
			if !wantCycle(g, ex.Cycle, opt, focus) {
				continue
			}
			if printed > 0 {
				fmt.Fprintln(w, rule)
			}
			printCycleEntry(w, g, ex.Cycle)
			printed++
			continue
		}
		if !wantNode(g, ex.Node, opt, focus) {
			continue
		}
		if printed > 0 {
			fmt.Fprintln(w, rule)
		}
		printNodeEntry(w, g, ex.Node)
		printed++
	}
	if printed == 0 {
		fmt.Fprintln(w, "no entries selected")
	}
	return nil
}

func percentPerTick(g *callgraph.Graph) float64 {
	if g.TotalTicks <= 0 {
		return 0
	}
	return 100 / g.TotalTicks
}

func focusSet(g *callgraph.Graph, names []string) map[*callgraph.Node]bool {
	if len(names) == 0 {
		return nil
	}
	set := make(map[*callgraph.Node]bool)
	for _, name := range names {
		n, ok := g.Node(name)
		if !ok {
			continue
		}
		set[n] = true
		for _, a := range n.In {
			if a.Caller != nil {
				set[a.Caller] = true
			}
		}
		for _, a := range n.Out {
			set[a.Callee] = true
		}
	}
	return set
}

func wantNode(g *callgraph.Graph, n *callgraph.Node, opt Options, focus map[*callgraph.Node]bool) bool {
	if n.TotalTicks() == 0 && n.Calls() == 0 && n.SelfCalls() == 0 {
		return false // never touched; lives in the flat profile's never-called list
	}
	if opt.excluded(n.Name) {
		return false
	}
	if focus != nil && !focus[n] {
		return false
	}
	if opt.MinPercent > 0 && percent(g, n.TotalTicks()) < opt.MinPercent {
		return false
	}
	return true
}

func wantCycle(g *callgraph.Graph, c *callgraph.Cycle, opt Options, focus map[*callgraph.Node]bool) bool {
	if focus != nil {
		any := false
		for _, m := range c.Members {
			if focus[m] {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	if opt.MinPercent > 0 && percent(g, c.TotalTicks()) < opt.MinPercent {
		return false
	}
	return true
}

// printNodeEntry renders one routine's entry: parents, the self line,
// then children.
func printNodeEntry(w io.Writer, g *callgraph.Graph, n *callgraph.Node) {
	// Parents, ascending by contribution (the paper's Figure 4 order).
	var parents []*callgraph.Arc
	for _, a := range n.In {
		if !a.Self() {
			parents = append(parents, a)
		}
	}
	sort.SliceStable(parents, func(i, j int) bool {
		ti := parents[i].PropSelf + parents[i].PropChild
		tj := parents[j].PropSelf + parents[j].PropChild
		if ti != tj {
			return ti < tj
		}
		return parentName(parents[i]) < parentName(parents[j])
	})
	// Total calls for the x/y column: calls into this node, or into the
	// whole cycle when the node is a member.
	totalCalls := n.Calls()
	if n.InCycle() {
		totalCalls = n.Cycle.ExternalCalls()
	}
	for _, a := range parents {
		if a.Spontaneous() {
			fmt.Fprintf(w, "%45s<spontaneous>\n", "")
			continue
		}
		if a.IntraCycle() {
			// Calls from within the cycle: listed, never propagated.
			fmt.Fprintf(w, "%14s%8s %11s %9d %s%s [%d]\n",
				"", "", "", a.Count, "    ", label(a.Caller), a.Caller.Index)
			continue
		}
		fmt.Fprintf(w, "%14s%8.2f %11.2f %7d/%-7d %s [%d]\n",
			"",
			seconds(g, a.PropSelf), seconds(g, a.PropChild),
			a.Count, totalCalls,
			label(a.Caller), a.Caller.Index)
	}

	// The self line: index, %time, self, descendants, called+self.
	called := fmt.Sprintf("%d", n.Calls())
	if sc := n.SelfCalls(); sc > 0 {
		called = fmt.Sprintf("%d+%d", n.Calls(), sc)
	}
	fmt.Fprintf(w, "%-6s %5.1f %8.2f %11.2f %15s %s [%d]\n",
		fmt.Sprintf("[%d]", n.Index),
		percent(g, n.TotalTicks()),
		seconds(g, n.SelfTicks), seconds(g, n.ChildTicks),
		called, label(n), n.Index)

	// Children, descending by time passed up.
	var children []*callgraph.Arc
	for _, a := range n.Out {
		if !a.Self() {
			children = append(children, a)
		}
	}
	sort.SliceStable(children, func(i, j int) bool {
		ti := children[i].PropSelf + children[i].PropChild
		tj := children[j].PropSelf + children[j].PropChild
		if ti != tj {
			return ti > tj
		}
		return children[i].Callee.Name < children[j].Callee.Name
	})
	for _, a := range children {
		child := a.Callee
		if a.IntraCycle() {
			fmt.Fprintf(w, "%14s%8s %11s %9d %s%s [%d]\n",
				"", "", "", a.Count, "    ", label(child), child.Index)
			continue
		}
		// Denominator: calls into the child (or its whole cycle).
		den := child.Calls()
		if child.InCycle() {
			den = child.Cycle.ExternalCalls()
		}
		fmt.Fprintf(w, "%14s%8.2f %11.2f %7d/%-7d %s [%d]\n",
			"",
			seconds(g, a.PropSelf), seconds(g, a.PropChild),
			a.Count, den,
			label(child), child.Index)
	}
}

func parentName(a *callgraph.Arc) string {
	if a.Caller == nil {
		return ""
	}
	return a.Caller.Name
}

// printCycleEntry renders a cycle-as-a-whole entry: external parents,
// the cycle line, then the members "listed in place of the children"
// with their calls from within the cycle.
func printCycleEntry(w io.Writer, g *callgraph.Graph, c *callgraph.Cycle) {
	var parents []*callgraph.Arc
	for _, m := range c.Members {
		for _, a := range m.In {
			if !a.IntraCycle() && !a.Self() {
				parents = append(parents, a)
			}
		}
	}
	sort.SliceStable(parents, func(i, j int) bool {
		ti := parents[i].PropSelf + parents[i].PropChild
		tj := parents[j].PropSelf + parents[j].PropChild
		if ti != tj {
			return ti < tj
		}
		return parentName(parents[i]) < parentName(parents[j])
	})
	ext := c.ExternalCalls()
	for _, a := range parents {
		if a.Spontaneous() {
			fmt.Fprintf(w, "%45s<spontaneous>\n", "")
			continue
		}
		fmt.Fprintf(w, "%14s%8.2f %11.2f %7d/%-7d %s [%d]\n",
			"",
			seconds(g, a.PropSelf), seconds(g, a.PropChild),
			a.Count, ext,
			label(a.Caller), a.Caller.Index)
	}
	called := fmt.Sprintf("%d", ext)
	if in := c.InternalCalls(); in > 0 {
		called = fmt.Sprintf("%d+%d", ext, in)
	}
	fmt.Fprintf(w, "%-6s %5.1f %8.2f %11.2f %15s <cycle %d as a whole> [%d]\n",
		fmt.Sprintf("[%d]", c.Index),
		percent(g, c.TotalTicks()),
		seconds(g, c.SelfTicks()), seconds(g, c.ChildTicks),
		called, c.Number, c.Index)
	// Members with their calls from within the cycle (incoming intra
	// arcs plus self calls), sorted by self time.
	members := append([]*callgraph.Node(nil), c.Members...)
	sort.SliceStable(members, func(i, j int) bool {
		return members[i].SelfTicks > members[j].SelfTicks
	})
	for _, m := range members {
		var intra int64
		for _, a := range m.In {
			if a.IntraCycle() && !a.Self() {
				intra += a.Count
			}
		}
		called := fmt.Sprintf("%d", intra)
		if sc := m.SelfCalls(); sc > 0 {
			called = fmt.Sprintf("%d+%d", intra, sc)
		}
		fmt.Fprintf(w, "%14s%8.2f %11.2f %15s %s [%d]\n",
			"", seconds(g, m.SelfTicks), 0.0, called, label(m), m.Index)
	}
}
