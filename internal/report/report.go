// Package report renders profile data for people: the flat profile
// (paper §5.1) and the call graph profile (§5.2, Figure 4).
//
// Every renderer consumes the serializable profile model
// (internal/model) rather than the pointer-based call graph: analysis
// produces one model.Profile (model.Build, invoked by core.Run) and
// presentation reads only that. The split mirrors the paper's own
// separation of post-processing (§4) from presentation (§5) and is
// what makes the same data renderable as text, DOT, or JSON.
//
// The flat profile lists every routine exercised by the execution with
// its call count and the seconds it is itself accountable for, sorted by
// decreasing self time; routines never called are listed separately "to
// verify that nothing important is omitted by this execution". The
// individual times sum to the total execution time.
//
// The call graph profile lists one entry per routine — "a window into
// the call graph" — sorted by self-plus-descendant time. Each entry
// shows the routine's parents above it (with the self and descendant
// time the routine propagates to each, and the fraction of calls each
// parent accounts for) and its children below it (with the time each
// child passes up and the fraction of the child's calls the routine
// makes). Cycles appear as single entities whose members are listed in
// place of children; self-recursive calls are split out of the call
// count ("called+self") because only outside calls propagate time.
//
// The retrospective's filtering features are provided as Options: a
// minimum-%time threshold ("show only hot functions") and a focus set
// ("only parts of the graph containing certain methods").
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/model"
)

// Options controls both reports.
type Options struct {
	// MinPercent suppresses call-graph entries whose total time is below
	// this percentage of the run, and flat-profile rows with zero time
	// below it (0 shows everything).
	MinPercent float64
	// Focus, when non-empty, restricts the call-graph profile to entries
	// for the named routines, their direct parents, and their direct
	// children.
	Focus []string
	// Exclude suppresses the named routines' entries and flat-profile
	// rows (gprof's -E display exclusion). Their time still propagates:
	// exclusion is presentation-only.
	Exclude []string
	// NoHeaders omits the explanatory column headers.
	NoHeaders bool
}

// filter is Options compiled against one profile: membership tests are
// set lookups, so large -E or focus lists stay O(1) per routine
// instead of rescanning the option slices at every node of the walk.
type filter struct {
	exclude map[string]bool
	// focus is nil when no focus is requested; otherwise the focused
	// routines plus their direct parents and children.
	focus map[string]bool
}

// compile precomputes the option sets against a profile view.
func (o *Options) compile(v *view) filter {
	var f filter
	if len(o.Exclude) > 0 {
		f.exclude = make(map[string]bool, len(o.Exclude))
		for _, name := range o.Exclude {
			f.exclude[name] = true
		}
	}
	if len(o.Focus) > 0 {
		f.focus = make(map[string]bool)
		for _, name := range o.Focus {
			if _, ok := v.m.Routine(name); !ok {
				continue
			}
			f.focus[name] = true
			for _, a := range v.in[name] {
				if !a.Spontaneous() {
					f.focus[a.From] = true
				}
			}
			for _, a := range v.out[name] {
				f.focus[a.To] = true
			}
		}
	}
	return f
}

// excluded reports whether a routine is display-suppressed.
func (f *filter) excluded(name string) bool { return f.exclude[name] }

// view is the per-render index over a profile: adjacency lists in the
// model's arc order and the listing in index order.
type view struct {
	m *model.Profile
	// in and out are each routine's incoming and outgoing arcs,
	// pointing into m.Arcs. in preserves the model's per-callee arc
	// order, which the cycle entries' tie-breaking depends on.
	in, out map[string][]*model.Arc
	// listing holds the call-graph entries in index order: for each
	// slot exactly one of routine/cycle is non-nil.
	listing []listEntry
}

type listEntry struct {
	routine *model.Routine
	cycle   *model.Cycle
}

func newView(m *model.Profile) *view {
	v := &view{
		m:   m,
		in:  make(map[string][]*model.Arc),
		out: make(map[string][]*model.Arc),
	}
	for i := range m.Arcs {
		a := &m.Arcs[i]
		v.in[a.To] = append(v.in[a.To], a)
		if a.From != "" {
			v.out[a.From] = append(v.out[a.From], a)
		}
	}
	max := 0
	for i := range m.Routines {
		if m.Routines[i].Index > max {
			max = m.Routines[i].Index
		}
	}
	for i := range m.Cycles {
		if m.Cycles[i].Index > max {
			max = m.Cycles[i].Index
		}
	}
	v.listing = make([]listEntry, max)
	for i := range m.Routines {
		if idx := m.Routines[i].Index; idx > 0 {
			v.listing[idx-1].routine = &m.Routines[i]
		}
	}
	for i := range m.Cycles {
		if idx := m.Cycles[i].Index; idx > 0 {
			v.listing[idx-1].cycle = &m.Cycles[i]
		}
	}
	return v
}

// routine resolves a name; the model guarantees arc endpoints resolve.
func (v *view) routine(name string) *model.Routine {
	r, _ := v.m.Routine(name)
	return r
}

// intraCycle reports whether both arc endpoints are members of the
// same multi-routine cycle. Such arcs are listed in the profile but
// "do not propagate any time" (§4).
func (v *view) intraCycle(a *model.Arc) bool {
	if a.From == "" {
		return false
	}
	from, to := v.routine(a.From), v.routine(a.To)
	return from != nil && to != nil && from.Cycle != 0 && from.Cycle == to.Cycle
}

// totalCalls is the calls/total denominator for a routine: calls into
// it, or into its whole cycle when it is a member.
func (v *view) totalCalls(r *model.Routine) int64 {
	if r.Cycle != 0 {
		if c, ok := v.m.CycleByNumber(r.Cycle); ok {
			return c.ExternalCalls
		}
	}
	return r.Calls
}

// label renders a routine name with its cycle tag, e.g. "SUB1 <cycle1>".
func label(r *model.Routine) string {
	if r.Cycle != 0 {
		return fmt.Sprintf("%s <cycle%d>", r.Name, r.Cycle)
	}
	return r.Name
}

// CallGraph renders the call graph profile from the model.
func CallGraph(w io.Writer, m *model.Profile, opt Options) error {
	v := newView(m)
	f := opt.compile(v)

	totalSecs := m.Seconds(m.TotalTicks)
	if !opt.NoHeaders {
		fmt.Fprintf(w, "call graph profile:\n")
		fmt.Fprintf(w, "granularity: each sample hit covers 1 word for %.2f%% of %.2f seconds\n\n",
			percentPerTick(m), totalSecs)
		fmt.Fprintf(w, "                                  called/total       parents\n")
		fmt.Fprintf(w, "index  %%time    self descendants  called+self    name           index\n")
		fmt.Fprintf(w, "                                  called/total       children\n\n")
	}

	rule := strings.Repeat("-", 72)
	printed := 0
	for _, e := range v.listing {
		if e.cycle != nil {
			if !wantCycle(v, e.cycle, opt, f) {
				continue
			}
			if printed > 0 {
				fmt.Fprintln(w, rule)
			}
			printCycleEntry(w, v, e.cycle)
			printed++
			continue
		}
		if e.routine == nil || !wantNode(v, e.routine, opt, f) {
			continue
		}
		if printed > 0 {
			fmt.Fprintln(w, rule)
		}
		printNodeEntry(w, v, e.routine)
		printed++
	}
	if printed == 0 {
		fmt.Fprintln(w, "no entries selected")
	}
	return nil
}

func percentPerTick(m *model.Profile) float64 {
	if m.TotalTicks <= 0 {
		return 0
	}
	return 100 / m.TotalTicks
}

func wantNode(v *view, r *model.Routine, opt Options, f filter) bool {
	if r.TotalTicks() == 0 && r.Calls == 0 && r.SelfCalls == 0 {
		return false // never touched; lives in the flat profile's never-called list
	}
	if f.excluded(r.Name) {
		return false
	}
	if f.focus != nil && !f.focus[r.Name] {
		return false
	}
	if opt.MinPercent > 0 && v.m.Percent(r.TotalTicks()) < opt.MinPercent {
		return false
	}
	return true
}

func wantCycle(v *view, c *model.Cycle, opt Options, f filter) bool {
	if f.focus != nil {
		any := false
		for _, m := range c.Members {
			if f.focus[m] {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	if opt.MinPercent > 0 && v.m.Percent(c.TotalTicks()) < opt.MinPercent {
		return false
	}
	return true
}

// sortParents orders arcs ascending by contribution (the paper's
// Figure 4 order), ties by caller name; spontaneous arcs sort first
// among ties. The sort is stable, so arcs that tie completely keep the
// model's order — which is the historic n.In walk order.
func sortParents(parents []*model.Arc) {
	sort.SliceStable(parents, func(i, j int) bool {
		ti := parents[i].PropSelfTicks + parents[i].PropChildTicks
		tj := parents[j].PropSelfTicks + parents[j].PropChildTicks
		if ti != tj {
			return ti < tj
		}
		return parents[i].From < parents[j].From
	})
}

// printNodeEntry renders one routine's entry: parents, the self line,
// then children.
func printNodeEntry(w io.Writer, v *view, r *model.Routine) {
	m := v.m
	var parents []*model.Arc
	for _, a := range v.in[r.Name] {
		if !a.Self() {
			parents = append(parents, a)
		}
	}
	sortParents(parents)
	// Total calls for the x/y column: calls into this routine, or into
	// the whole cycle when the routine is a member.
	totalCalls := v.totalCalls(r)
	for _, a := range parents {
		if a.Spontaneous() {
			fmt.Fprintf(w, "%45s<spontaneous>\n", "")
			continue
		}
		caller := v.routine(a.From)
		if v.intraCycle(a) {
			// Calls from within the cycle: listed, never propagated.
			fmt.Fprintf(w, "%14s%8s %11s %9d %s%s [%d]\n",
				"", "", "", a.Count, "    ", label(caller), caller.Index)
			continue
		}
		fmt.Fprintf(w, "%14s%8.2f %11.2f %7d/%-7d %s [%d]\n",
			"",
			m.Seconds(a.PropSelfTicks), m.Seconds(a.PropChildTicks),
			a.Count, totalCalls,
			label(caller), caller.Index)
	}

	// The self line: index, %time, self, descendants, called+self.
	called := fmt.Sprintf("%d", r.Calls)
	if r.SelfCalls > 0 {
		called = fmt.Sprintf("%d+%d", r.Calls, r.SelfCalls)
	}
	fmt.Fprintf(w, "%-6s %5.1f %8.2f %11.2f %15s %s [%d]\n",
		fmt.Sprintf("[%d]", r.Index),
		m.Percent(r.TotalTicks()),
		m.Seconds(r.SelfTicks), m.Seconds(r.ChildTicks),
		called, label(r), r.Index)

	// Children, descending by time passed up.
	var children []*model.Arc
	for _, a := range v.out[r.Name] {
		if !a.Self() {
			children = append(children, a)
		}
	}
	sort.SliceStable(children, func(i, j int) bool {
		ti := children[i].PropSelfTicks + children[i].PropChildTicks
		tj := children[j].PropSelfTicks + children[j].PropChildTicks
		if ti != tj {
			return ti > tj
		}
		return children[i].To < children[j].To
	})
	for _, a := range children {
		child := v.routine(a.To)
		if v.intraCycle(a) {
			fmt.Fprintf(w, "%14s%8s %11s %9d %s%s [%d]\n",
				"", "", "", a.Count, "    ", label(child), child.Index)
			continue
		}
		// Denominator: calls into the child (or its whole cycle).
		fmt.Fprintf(w, "%14s%8.2f %11.2f %7d/%-7d %s [%d]\n",
			"",
			m.Seconds(a.PropSelfTicks), m.Seconds(a.PropChildTicks),
			a.Count, v.totalCalls(child),
			label(child), child.Index)
	}
}

// printCycleEntry renders a cycle-as-a-whole entry: external parents,
// the cycle line, then the members "listed in place of the children"
// with their calls from within the cycle.
func printCycleEntry(w io.Writer, v *view, c *model.Cycle) {
	m := v.m
	var parents []*model.Arc
	for _, name := range c.Members {
		for _, a := range v.in[name] {
			if !v.intraCycle(a) && !a.Self() {
				parents = append(parents, a)
			}
		}
	}
	sortParents(parents)
	ext := c.ExternalCalls
	for _, a := range parents {
		if a.Spontaneous() {
			fmt.Fprintf(w, "%45s<spontaneous>\n", "")
			continue
		}
		caller := v.routine(a.From)
		fmt.Fprintf(w, "%14s%8.2f %11.2f %7d/%-7d %s [%d]\n",
			"",
			m.Seconds(a.PropSelfTicks), m.Seconds(a.PropChildTicks),
			a.Count, ext,
			label(caller), caller.Index)
	}
	called := fmt.Sprintf("%d", ext)
	if c.InternalCalls > 0 {
		called = fmt.Sprintf("%d+%d", ext, c.InternalCalls)
	}
	fmt.Fprintf(w, "%-6s %5.1f %8.2f %11.2f %15s <cycle %d as a whole> [%d]\n",
		fmt.Sprintf("[%d]", c.Index),
		m.Percent(c.TotalTicks()),
		m.Seconds(c.SelfTicks), m.Seconds(c.ChildTicks),
		called, c.Number, c.Index)
	// Members with their calls from within the cycle (incoming intra
	// arcs plus self calls), in index order — the indices were assigned
	// by decreasing self time, so this reproduces the historic member
	// order.
	members := make([]*model.Routine, 0, len(c.Members))
	for _, name := range c.Members {
		members = append(members, v.routine(name))
	}
	sort.SliceStable(members, func(i, j int) bool { return members[i].Index < members[j].Index })
	for _, r := range members {
		var intra int64
		for _, a := range v.in[r.Name] {
			if v.intraCycle(a) && !a.Self() {
				intra += a.Count
			}
		}
		called := fmt.Sprintf("%d", intra)
		if r.SelfCalls > 0 {
			called = fmt.Sprintf("%d+%d", intra, r.SelfCalls)
		}
		fmt.Fprintf(w, "%14s%8.2f %11.2f %15s %s [%d]\n",
			"", m.Seconds(r.SelfTicks), 0.0, called, label(r), r.Index)
	}
}
