package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/model"
)

// WriteDOT renders the call graph in Graphviz DOT form. The paper's
// authors wanted to "print the call graph of the program" but "were
// limited by the two-dimensional nature of our output devices" and by
// character terminals (§5.2, retrospective); this is that graph for
// renderers that came later.
//
// Nodes show the routine, its self and total seconds, and its call
// count; fill darkens with the routine's share of total time. Edges are
// labeled with traversal counts and weighted by propagated time; static
// (never-traversed) arcs are dashed; intra-cycle arcs are drawn inside a
// cluster per cycle. Options' Focus/MinPercent/Exclude filters apply.
func WriteDOT(w io.Writer, m *model.Profile, opt Options) error {
	v := newView(m)
	f := opt.compile(v)

	fmt.Fprintln(w, "digraph callgraph {")
	fmt.Fprintln(w, `  rankdir=TB;`)
	fmt.Fprintln(w, `  node [shape=box, style=filled, fontname="monospace"];`)

	// Stable node order.
	names := make([]string, 0, len(m.Routines))
	kept := make(map[string]bool)
	for i := range m.Routines {
		r := &m.Routines[i]
		names = append(names, r.Name)
		if wantNode(v, r, opt, f) {
			kept[r.Name] = true
		}
	}
	sort.Strings(names)

	// Cycle clusters first, then free nodes.
	emitted := make(map[string]bool)
	for i := range m.Cycles {
		c := &m.Cycles[i]
		any := false
		for _, name := range c.Members {
			if kept[name] {
				any = true
			}
		}
		if !any {
			continue
		}
		fmt.Fprintf(w, "  subgraph cluster_%d {\n", c.Number)
		fmt.Fprintf(w, "    label=\"cycle %d\";\n    style=dashed;\n", c.Number)
		for _, name := range c.Members {
			if kept[name] {
				emitNode(w, v, v.routine(name), "    ")
				emitted[name] = true
			}
		}
		fmt.Fprintln(w, "  }")
	}
	for _, name := range names {
		if kept[name] && !emitted[name] {
			emitNode(w, v, v.routine(name), "  ")
		}
	}

	// Edges between kept nodes, in (caller, callee) order.
	arcs := make([]*model.Arc, 0, len(m.Arcs))
	for i := range m.Arcs {
		arcs = append(arcs, &m.Arcs[i])
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].From != arcs[j].From {
			return arcs[i].From < arcs[j].From
		}
		return arcs[i].To < arcs[j].To
	})
	for _, a := range arcs {
		if a.Spontaneous() || !kept[a.To] || !kept[a.From] {
			continue
		}
		attrs := []string{fmt.Sprintf("label=\"%d\"", a.Count)}
		switch {
		case a.Static:
			attrs = append(attrs, "style=dashed", `color="gray50"`)
		case a.Self():
			attrs = append(attrs, "dir=back")
		}
		if t := m.Seconds(a.PropSelfTicks + a.PropChildTicks); t > 0 {
			width := 1 + 4*m.Percent(a.PropSelfTicks+a.PropChildTicks)/100
			attrs = append(attrs, fmt.Sprintf("penwidth=%.2f", width))
		}
		fmt.Fprintf(w, "  %q -> %q [%s];\n", a.From, a.To, strings.Join(attrs, ", "))
	}
	fmt.Fprintln(w, "}")
	return nil
}

func emitNode(w io.Writer, v *view, r *model.Routine, indent string) {
	pct := v.m.Percent(r.TotalTicks())
	// White through a warm tone as the node gets hotter.
	shade := int(255 - 1.6*pct)
	if shade < 96 {
		shade = 96
	}
	label := fmt.Sprintf("%s\\n%.2fs self / %.2fs total\\n%d calls",
		r.Name, v.m.Seconds(r.SelfTicks), v.m.Seconds(r.TotalTicks()),
		r.Calls+r.SelfCalls)
	fmt.Fprintf(w, "%s%q [label=\"%s\", fillcolor=\"#ff%02x%02x\"];\n",
		indent, r.Name, label, shade, shade)
}
