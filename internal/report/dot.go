package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/callgraph"
)

// WriteDOT renders the call graph in Graphviz DOT form. The paper's
// authors wanted to "print the call graph of the program" but "were
// limited by the two-dimensional nature of our output devices" and by
// character terminals (§5.2, retrospective); this is that graph for
// renderers that came later.
//
// Nodes show the routine, its self and total seconds, and its call
// count; fill darkens with the routine's share of total time. Edges are
// labeled with traversal counts and weighted by propagated time; static
// (never-traversed) arcs are dashed; intra-cycle arcs are drawn inside a
// cluster per cycle. Options' Focus/MinPercent/Exclude filters apply.
func WriteDOT(w io.Writer, g *callgraph.Graph, opt Options) error {
	focus := focusSet(g, opt.Focus)
	keep := func(n *callgraph.Node) bool {
		return wantNode(g, n, opt, focus)
	}

	fmt.Fprintln(w, "digraph callgraph {")
	fmt.Fprintln(w, `  rankdir=TB;`)
	fmt.Fprintln(w, `  node [shape=box, style=filled, fontname="monospace"];`)

	// Stable node order.
	nodes := append([]*callgraph.Node(nil), g.Nodes()...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })

	kept := make(map[*callgraph.Node]bool)
	for _, n := range nodes {
		if keep(n) {
			kept[n] = true
		}
	}

	// Cycle clusters first, then free nodes.
	emitted := make(map[*callgraph.Node]bool)
	for _, c := range g.Cycles {
		any := false
		for _, m := range c.Members {
			if kept[m] {
				any = true
			}
		}
		if !any {
			continue
		}
		fmt.Fprintf(w, "  subgraph cluster_%d {\n", c.Number)
		fmt.Fprintf(w, "    label=\"cycle %d\";\n    style=dashed;\n", c.Number)
		for _, m := range c.Members {
			if kept[m] {
				emitNode(w, g, m, "    ")
				emitted[m] = true
			}
		}
		fmt.Fprintln(w, "  }")
	}
	for _, n := range nodes {
		if kept[n] && !emitted[n] {
			emitNode(w, g, n, "  ")
		}
	}

	// Edges between kept nodes.
	for _, a := range g.Arcs() {
		if a.Spontaneous() || !kept[a.Callee] || !kept[a.Caller] {
			continue
		}
		attrs := []string{fmt.Sprintf("label=\"%d\"", a.Count)}
		switch {
		case a.Static:
			attrs = append(attrs, "style=dashed", `color="gray50"`)
		case a.Self():
			attrs = append(attrs, "dir=back")
		}
		if t := seconds(g, a.PropSelf+a.PropChild); t > 0 {
			width := 1 + 4*percent(g, a.PropSelf+a.PropChild)/100
			attrs = append(attrs, fmt.Sprintf("penwidth=%.2f", width))
		}
		fmt.Fprintf(w, "  %q -> %q [%s];\n", a.Caller.Name, a.Callee.Name, strings.Join(attrs, ", "))
	}
	fmt.Fprintln(w, "}")
	return nil
}

func emitNode(w io.Writer, g *callgraph.Graph, n *callgraph.Node, indent string) {
	pct := percent(g, n.TotalTicks())
	// White through a warm tone as the node gets hotter.
	shade := int(255 - 1.6*pct)
	if shade < 96 {
		shade = 96
	}
	label := fmt.Sprintf("%s\\n%.2fs self / %.2fs total\\n%d calls",
		n.Name, seconds(g, n.SelfTicks), seconds(g, n.TotalTicks()),
		n.Calls()+n.SelfCalls())
	fmt.Fprintf(w, "%s%q [label=\"%s\", fillcolor=\"#ff%02x%02x\"];\n",
		indent, n.Name, label, shade, shade)
}
