package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/lang"
	"repro/internal/mon"
	"repro/internal/object"
	"repro/internal/vm"
)

// lineTestProgram has a known hot line (the inner-loop statement at a
// predictable line number).
const lineTestProgram = `func work() {
	var i = 0;
	var s = 0;
	while (i < 20000) {
		s = (s * 33 + i) & 65535;
		i = i + 1;
	}
	return s;
}
func main() {
	return work() & 255;
}
`

func buildLineProfile(t *testing.T) (*object.Image, *mon.Collector) {
	t.Helper()
	obj, err := lang.Compile("linetest.tl", lineTestProgram, lang.Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	im, err := object.Link([]*object.Object{obj}, object.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c := mon.New(im, mon.Config{})
	if _, err := vm.New(im, vm.Config{Monitor: c, TickCycles: 100, MaxCycles: 1 << 28}).Run(); err != nil {
		t.Fatal(err)
	}
	return im, c
}

func TestLineMarksThroughToolchain(t *testing.T) {
	im, _ := buildLineProfile(t)
	work, ok := im.LookupFunc("work")
	if !ok {
		t.Fatal("no work symbol")
	}
	if work.File != "linetest.tl" {
		t.Errorf("File = %q", work.File)
	}
	if len(work.Lines) == 0 {
		t.Fatal("no line marks")
	}
	// Marks are sorted and inside the routine.
	for i, m := range work.Lines {
		if m.Offset < work.Addr || m.Offset >= work.End() {
			t.Errorf("mark %d offset %#x outside work", i, m.Offset)
		}
		if i > 0 && m.Offset < work.Lines[i-1].Offset {
			t.Errorf("marks unsorted at %d", i)
		}
	}
	// The routine spans lines 1..9 of the source.
	if first := work.LineFor(work.Addr); first != 1 {
		t.Errorf("first line = %d, want 1 (func work() {)", first)
	}
	if file, line, ok := im.LineFor(work.Addr + 2); !ok || file != "linetest.tl" || line < 1 || line > 9 {
		t.Errorf("LineFor = %s:%d,%v", file, line, ok)
	}
}

func TestLineProfileHotLine(t *testing.T) {
	im, c := buildLineProfile(t)
	var buf bytes.Buffer
	src := MapSource{"linetest.tl": lineTestProgram}
	if err := LineProfile(&buf, im, c.Snapshot(), src); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "line-level profile") {
		t.Fatalf("missing header:\n%s", out)
	}
	// work is the hottest routine and listed first.
	iWork := strings.Index(out, "work (linetest.tl")
	iMain := strings.Index(out, "main (linetest.tl")
	if iWork < 0 {
		t.Fatalf("work section missing:\n%s", out)
	}
	if iMain >= 0 && iMain < iWork {
		t.Errorf("main listed before hotter work:\n%s", out)
	}
	// Source text printed in parallel.
	if !strings.Contains(out, "s = (s * 33 + i) & 65535;") {
		t.Errorf("hot source line text missing:\n%s", out)
	}
	// The hot line (5) carries most of work's seconds: its row shows a
	// number, not the cold-dot placeholder.
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "| \ts = (s * 33 + i)") || strings.Contains(l, "s = (s * 33 + i)") {
			if strings.Contains(l, ".  ") {
				t.Errorf("hot line shown as cold: %q", l)
			}
		}
	}
}

func TestLineProfileWithoutSource(t *testing.T) {
	im, c := buildLineProfile(t)
	var buf bytes.Buffer
	if err := LineProfile(&buf, im, c.Snapshot(), MapSource{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Positions still listed, just without text.
	if !strings.Contains(out, "work (linetest.tl") {
		t.Errorf("positions missing when source unavailable:\n%s", out)
	}
}

func TestMapSource(t *testing.T) {
	m := MapSource{"a.tl": "one\ntwo"}
	lines, ok := m.Lines("a.tl")
	if !ok || len(lines) != 2 || lines[1] != "two" {
		t.Errorf("Lines = %v, %v", lines, ok)
	}
	if _, ok := m.Lines("b.tl"); ok {
		t.Error("missing file found")
	}
}
