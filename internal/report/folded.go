package report

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/model"
)

// Folded renders the profile's stacks view in collapsed-stack
// ("folded") form: one line per distinct call path that was ever a
// sample's innermost resolved frame — root;...;leaf count — the input
// format of flame-graph renderers. Lines sort as strings for
// determinism, the exact order the legacy stacksample renderer used,
// so its output is reproduced byte for byte.
func Folded(w io.Writer, p *model.Profile) error {
	if p.Stacks == nil {
		return fmt.Errorf("report: %w", model.ErrNoStacks)
	}
	v := p.Stacks
	// Reconstruct each node's root-first path from the parent chain.
	// Nodes are preorder, so a parent's path is complete before any
	// child needs it.
	paths := make([]string, len(v.Nodes))
	lines := make([]string, 0, len(v.Nodes))
	for i := range v.Nodes {
		n := &v.Nodes[i]
		if n.Parent < 0 {
			paths[i] = n.Name
		} else {
			paths[i] = paths[n.Parent] + ";" + n.Name
		}
		if n.SelfTicks > 0 {
			lines = append(lines, fmt.Sprintf("%s %d", paths[i], n.SelfTicks))
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
