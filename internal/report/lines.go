package report

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/gmon"
	"repro/internal/object"
)

// LineProfile renders per-source-line timing, the statement-level
// presentation the paper's §2 describes: "counts are typically presented
// in tabular form, often in parallel with a listing of the source code.
// Timing information could be similarly presented."
//
// Each histogram sample is charged to the source line the sampled
// instruction was compiled from (the executable carries line marks as
// debug info). When the source file is readable through src, the line's
// text is printed alongside; otherwise only file:line positions appear.
// Lines are grouped per routine, hottest routine first, and lines with
// no samples inside a sampled routine print with a blank count so cold
// statements are visible in context (§2's "boolean" coverage reading).
func LineProfile(w io.Writer, im *object.Image, p *gmon.Profile, src SourceReader) error {
	if src == nil {
		src = FileSource{}
	}
	hz := float64(p.ClockHz())

	type lineKey struct {
		file string
		line int32
	}
	ticks := make(map[lineKey]float64)
	fnTicks := make(map[string]float64)
	var total, unknown float64
	for i, n := range p.Hist.Counts {
		if n == 0 {
			continue
		}
		total += float64(n)
		lo, hi := p.Hist.BucketRange(i)
		width := float64(hi - lo)
		for pc := lo; pc < hi; pc++ {
			share := float64(n) / width
			file, line, ok := im.LineFor(pc)
			if !ok {
				unknown += share
				continue
			}
			ticks[lineKey{file, line}] += share
			if fn, found := im.FindFunc(pc); found {
				fnTicks[fn.Name] += share
			}
		}
	}

	// Routines sorted by their line-attributed time, hottest first.
	funcs := append([]object.Sym(nil), im.Funcs...)
	sort.SliceStable(funcs, func(i, j int) bool { return fnTicks[funcs[i].Name] > fnTicks[funcs[j].Name] })

	fmt.Fprintf(w, "line-level profile: %s seconds total\n",
		fmtSecs(total/hz))
	if unknown > 0 {
		fmt.Fprintf(w, "(%s seconds in code without line information)\n", fmtSecs(unknown/hz))
	}
	for _, fn := range funcs {
		if fnTicks[fn.Name] == 0 || len(fn.Lines) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n%s (%s, %s seconds):\n", fn.Name, fn.File, fmtSecs(fnTicks[fn.Name]/hz))
		text, haveSrc := src.Lines(fn.File)
		// The routine's line range.
		lines := make([]int32, 0, 8)
		seen := map[int32]bool{}
		for _, m := range fn.Lines {
			if !seen[m.Line] {
				seen[m.Line] = true
				lines = append(lines, m.Line)
			}
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
		for _, line := range lines {
			t := ticks[lineKey{fn.File, line}]
			count := strings.Repeat(" ", 8) + "."
			if t > 0 {
				count = fmt.Sprintf("%9s", fmtSecs(t/hz))
			}
			srcText := ""
			if haveSrc && int(line) >= 1 && int(line) <= len(text) {
				srcText = strings.TrimRight(text[line-1], " \t")
			}
			fmt.Fprintf(w, "  %s  %4d | %s\n", count, line, srcText)
		}
	}
	return nil
}

func fmtSecs(s float64) string {
	return fmt.Sprintf("%.2f", s)
}

// SourceReader provides source text for the listing.
type SourceReader interface {
	// Lines returns the file's lines (1-based indexing by line-1) and
	// whether the file was found.
	Lines(file string) ([]string, bool)
}

// FileSource reads sources from the filesystem, caching per file.
type FileSource struct{ cache map[string][]string }

// Lines implements SourceReader.
func (f FileSource) Lines(file string) ([]string, bool) {
	if cached, ok := f.cache[file]; ok {
		return cached, cached != nil
	}
	data, err := os.ReadFile(file)
	var lines []string
	if err == nil {
		lines = strings.Split(string(data), "\n")
	}
	if f.cache != nil {
		f.cache[file] = lines
	}
	return lines, err == nil
}

// MapSource serves sources from memory (tests, embedded workloads).
type MapSource map[string]string

// Lines implements SourceReader.
func (m MapSource) Lines(file string) ([]string, bool) {
	s, ok := m[file]
	if !ok {
		return nil, false
	}
	return strings.Split(s, "\n"), true
}
