package report

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/gmon"
	"repro/internal/model"
)

func stackedProfile(t *testing.T) *model.Profile {
	t.Helper()
	resolve := func(pc int64) (string, bool) {
		switch pc / 0x10 {
		case 0:
			return "main", true
		case 1:
			return "work", true
		case 2:
			return "spin", true
		}
		return "", false
	}
	stacks := []gmon.StackSample{
		{PCs: []int64{0x24, 0x18, 0x08}, Count: 5}, // main;work;spin
		{PCs: []int64{0x14, 0x08}, Count: 3},       // main;work
		{PCs: []int64{0x24, 0x08}, Count: 2},       // main;spin
		{PCs: []int64{0x04}, Count: 9},             // main
	}
	return &model.Profile{
		Schema: model.SchemaV2,
		Hz:     60,
		Stacks: model.BuildStacks(stacks, resolve, 0),
	}
}

// TestFoldedGolden pins the collapsed-stack bytes: one line per path
// with self time, string-sorted — the order and format flame-graph
// tooling and the legacy stacksample renderer agree on.
func TestFoldedGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Folded(&buf, stackedProfile(t)); err != nil {
		t.Fatal(err)
	}
	want := "main 9\n" +
		"main;spin 2\n" +
		"main;work 3\n" +
		"main;work;spin 5\n"
	if buf.String() != want {
		t.Errorf("folded output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestFoldedSkipsZeroSelfPaths: interior paths that were never a
// sample's leaf produce no line.
func TestFoldedSkipsZeroSelfPaths(t *testing.T) {
	p := &model.Profile{
		Schema: model.SchemaV2,
		Hz:     60,
		Stacks: &model.StackView{
			Samples: 4,
			Nodes: []model.StackNode{
				{Name: "main", Parent: -1, SelfTicks: 0, InclusiveTicks: 4},
				{Name: "leafy", Parent: 0, SelfTicks: 4, InclusiveTicks: 4},
			},
			Routines: []model.StackRoutine{
				{Name: "leafy", SelfTicks: 4, InclusiveTicks: 4},
				{Name: "main", SelfTicks: 0, InclusiveTicks: 4},
			},
		},
	}
	var buf bytes.Buffer
	if err := Folded(&buf, p); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "main;leafy 4\n"; got != want {
		t.Errorf("folded = %q, want %q", got, want)
	}
}

func TestFoldedNoStacks(t *testing.T) {
	err := Folded(&bytes.Buffer{}, &model.Profile{Schema: model.Schema, Hz: 60})
	if !errors.Is(err, model.ErrNoStacks) {
		t.Errorf("err = %v, want ErrNoStacks", err)
	}
}
