package prof

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/symtab"
	"repro/internal/workloads"
)

func TestTableBasic(t *testing.T) {
	tab := symtab.FromSyms([]object.Sym{
		{Name: "f", Addr: 0, Size: 10},
		{Name: "g", Addr: 10, Size: 10},
		{Name: "quiet", Addr: 20, Size: 10},
	})
	p := &gmon.Profile{
		Hist: gmon.Histogram{Low: 0, High: 30, Step: 1, Counts: make([]uint32, 30)},
		Hz:   60,
	}
	p.Hist.Counts[5] = 30  // f: 30 ticks = 0.5s
	p.Hist.Counts[15] = 90 // g: 90 ticks = 1.5s
	p.Arcs = []gmon.Arc{
		{FromPC: 5, SelfPC: 10, Count: 3}, // f calls g 3 times
		{FromPC: 6, SelfPC: 10, Count: 1},
	}
	rows := Table(tab, p)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v, want 2 (quiet omitted)", rows)
	}
	if rows[0].Name != "g" || rows[1].Name != "f" {
		t.Errorf("order = %s,%s, want g,f", rows[0].Name, rows[1].Name)
	}
	g := rows[0]
	if g.Seconds != 1.5 || g.Calls != 4 {
		t.Errorf("g = %+v, want 1.5s / 4 calls", g)
	}
	if g.MsPerCall != 375 {
		t.Errorf("g ms/call = %v, want 375", g.MsPerCall)
	}
	if g.Percent != 75 {
		t.Errorf("g%% = %v, want 75", g.Percent)
	}
	f := rows[1]
	if f.Calls != 0 || f.MsPerCall != 0 {
		t.Errorf("f = %+v, want uncalled root", f)
	}
}

func TestWriteFormat(t *testing.T) {
	tab := symtab.FromSyms([]object.Sym{{Name: "busy", Addr: 0, Size: 4}})
	p := &gmon.Profile{
		Hist: gmon.Histogram{Low: 0, High: 4, Step: 1, Counts: []uint32{60, 0, 0, 0}},
		Arcs: []gmon.Arc{{FromPC: 2, SelfPC: 0, Count: 10}},
		Hz:   60,
	}
	var buf bytes.Buffer
	if err := Write(&buf, tab, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"busy", "100.0", "1.00", "total: 1.00 seconds", "ms/call"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestProfVsGprofOnAbstraction shows the paper's motivation: prof sees
// only where time is spent, not which abstraction is responsible. On
// the matrix workload, prof charges `at` for its own time but cannot
// tell that `mul` is accountable for nearly the entire run.
func TestProfVsGprofOnAbstraction(t *testing.T) {
	im, err := workloads.Build("matrix", true)
	if err != nil {
		t.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 300, MaxCycles: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	tab := symtab.New(im)
	rows := Table(tab, p)
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// The leaf `at` dominates self time; the orchestrator `mul` has
	// little self time. prof's table shows mul as cheap — the
	// misleading signal gprof was built to fix.
	at, mul := byName["at"], byName["mul"]
	if at.Seconds <= mul.Seconds {
		t.Errorf("expected at (%.2fs) to dwarf mul (%.2fs) in prof's view",
			at.Seconds, mul.Seconds)
	}
	if mul.Percent > 20 {
		t.Errorf("mul self%% = %.1f; prof should under-report the abstraction", mul.Percent)
	}
}

func TestEmptyProfile(t *testing.T) {
	tab := symtab.FromSyms(nil)
	p := &gmon.Profile{Hist: gmon.Histogram{Low: 0, High: 0, Step: 1}}
	if rows := Table(tab, p); len(rows) != 0 {
		t.Errorf("rows = %+v", rows)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tab, p); err != nil {
		t.Fatal(err)
	}
}
