// Package prof is the baseline profiler gprof improved upon: the UNIX
// prof(1) tool described in the paper's introduction and retrospective.
//
// prof combines the program-counter histogram with per-routine call
// counts to produce "a table of each function listing the number of
// times it was called, the time spent in it, and the average time per
// call". It knows nothing of the call graph: no arcs, no propagation, no
// cycles. This is the comparator for every experiment that shows what
// call-graph attribution adds — with prof alone, "the time for an
// operation spread across the several functions" of an abstraction is
// invisible.
//
// It consumes the same profile data files as gprof, deriving call counts
// by summing incoming arc counts per routine (the per-function counters
// the real prof maintained carry the same information).
package prof

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/gmon"
	"repro/internal/model"
	"repro/internal/symtab"
)

// Row is one line of the prof report.
type Row struct {
	Name      string
	Percent   float64 // share of total sampled time
	Seconds   float64 // self time
	Calls     int64
	MsPerCall float64 // average: the assumption gprof §2 warns about
}

// Table computes the report rows, sorted by decreasing self time.
func Table(tab *symtab.Table, p *gmon.Profile) []Row {
	ticks, _ := tab.AttributeHist(&p.Hist)
	calls := make(map[string]int64)
	for _, a := range p.Arcs {
		if callee, ok := tab.Find(a.SelfPC); ok {
			calls[callee.Name] += a.Count
		}
	}
	hz := float64(p.ClockHz())
	total := float64(p.Hist.TotalTicks())
	var rows []Row
	for _, s := range tab.Syms() {
		t := ticks[s.Name]
		c := calls[s.Name]
		if t == 0 && c == 0 {
			continue
		}
		r := Row{
			Name:    s.Name,
			Seconds: t / hz,
			Calls:   c,
		}
		if total > 0 {
			r.Percent = 100 * t / total
		}
		if c > 0 {
			r.MsPerCall = r.Seconds * 1000 / float64(c)
		}
		rows = append(rows, r)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Seconds != rows[j].Seconds {
			return rows[i].Seconds > rows[j].Seconds
		}
		if rows[i].Calls != rows[j].Calls {
			return rows[i].Calls > rows[j].Calls
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// Model condenses the prof table into the shared profile model
// (internal/model): a flat-only profile with no arcs, no cycles, and no
// descendant time — exactly what prof(1) could see. The result encodes
// and diffs like any gprof-produced model.
func Model(tab *symtab.Table, p *gmon.Profile) *model.Profile {
	rows := Table(tab, p)
	hz := p.ClockHz()
	m := &model.Profile{
		Schema:       model.Schema,
		Hz:           hz,
		TotalTicks:   float64(p.Hist.TotalTicks()),
		TotalSeconds: p.TotalSeconds(),
	}
	var cum float64
	for _, r := range rows {
		m.Routines = append(m.Routines, model.Routine{
			Name:        r.Name,
			SelfTicks:   r.Seconds * float64(hz),
			SelfSeconds: r.Seconds,
			Calls:       r.Calls,
		})
		cum += r.Seconds
		m.Flat = append(m.Flat, model.FlatRow{
			Name:              r.Name,
			Percent:           r.Percent,
			CumulativeSeconds: cum,
			SelfSeconds:       r.Seconds,
			Calls:             r.Calls,
			SelfMsPerCall:     r.MsPerCall,
		})
	}
	m.Reindex()
	return m
}

// Render prints the classic prof table from a flat profile model.
func Render(w io.Writer, m *model.Profile) error {
	fmt.Fprintf(w, " %%time   seconds     calls  ms/call  name\n")
	for i := range m.Flat {
		r := &m.Flat[i]
		per := ""
		if r.Calls > 0 {
			per = fmt.Sprintf("%8.2f", r.SelfMsPerCall)
		}
		fmt.Fprintf(w, "%6.1f %9.2f %9d %8s  %s\n",
			r.Percent, r.SelfSeconds, r.Calls, per, r.Name)
	}
	fmt.Fprintf(w, "total: %.2f seconds\n", m.TotalSeconds)
	return nil
}

// Write renders the classic prof table.
func Write(w io.Writer, tab *symtab.Table, p *gmon.Profile) error {
	return Render(w, Model(tab, p))
}
