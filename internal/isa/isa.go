// Package isa defines the instruction set of the simulated machine on
// which profiled programs run.
//
// The machine is a small load/store register machine with word-addressed
// memory. Every instruction occupies exactly one 64-bit word, so program
// counter values map one-to-one onto text-segment words; this is the
// property the paper's profiler exploits when it sizes the program-counter
// histogram so that "program counter values map one-to-one onto the
// histogram" (gprof, §3.2).
//
// The MCOUNT instruction is the hook the compiler plants in the prologue
// of every routine compiled for profiling. Executing it transfers control
// to the monitoring runtime (package mon) with the two addresses the paper
// requires: the monitoring routine's "own return address" (the PC of the
// MCOUNT itself, which lies in the callee's prologue) and the routine's
// return address (the call site in the caller).
package isa

import "fmt"

// Op is an operation code.
type Op uint8

// Operation codes. The set is deliberately small but sufficient to compile
// a real imperative language: ALU ops, loads/stores, branches, direct and
// indirect calls, stack manipulation, the profiling hook, and a system
// trap.
const (
	OpHalt Op = iota // stop the machine
	OpNop            // do nothing

	OpMovI // rd = imm
	OpMov  // rd = rs1
	OpLd   // rd = mem[rs1+imm]
	OpSt   // mem[rs1+imm] = rs2
	OpLea  // rd = rs1 + imm (address arithmetic / add-immediate)

	OpAdd // rd = rs1 + rs2
	OpSub // rd = rs1 - rs2
	OpMul // rd = rs1 * rs2
	OpDiv // rd = rs1 / rs2 (traps on zero)
	OpMod // rd = rs1 % rs2 (traps on zero)
	OpAnd // rd = rs1 & rs2
	OpOr  // rd = rs1 | rs2
	OpXor // rd = rs1 ^ rs2
	OpShl // rd = rs1 << rs2
	OpShr // rd = rs1 >> rs2
	OpNeg // rd = -rs1
	OpNot // rd = ^rs1

	OpSlt // rd = 1 if rs1 < rs2 else 0
	OpSle // rd = 1 if rs1 <= rs2 else 0
	OpSeq // rd = 1 if rs1 == rs2 else 0
	OpSne // rd = 1 if rs1 != rs2 else 0

	OpJmp   // pc = imm
	OpBeqz  // if rs1 == 0: pc = imm
	OpBnez  // if rs1 != 0: pc = imm
	OpCall  // push(pc+1); pc = imm
	OpCallR // push(pc+1); pc = rs1 (indirect: functional parameters)
	OpRet   // pc = pop()

	OpPush // push(rs1)
	OpPop  // rd = pop()

	OpMcount // profiling hook planted in routine prologues
	OpSys    // system trap; imm selects the service

	opMax // sentinel; not a real opcode
)

// NumOps is the number of defined operation codes.
const NumOps = int(opMax)

var opNames = [...]string{
	OpHalt: "HALT", OpNop: "NOP",
	OpMovI: "MOVI", OpMov: "MOV", OpLd: "LD", OpSt: "ST", OpLea: "LEA",
	OpAdd: "ADD", OpSub: "SUB", OpMul: "MUL", OpDiv: "DIV", OpMod: "MOD",
	OpAnd: "AND", OpOr: "OR", OpXor: "XOR", OpShl: "SHL", OpShr: "SHR",
	OpNeg: "NEG", OpNot: "NOT",
	OpSlt: "SLT", OpSle: "SLE", OpSeq: "SEQ", OpSne: "SNE",
	OpJmp: "JMP", OpBeqz: "BEQZ", OpBnez: "BNEZ",
	OpCall: "CALL", OpCallR: "CALLR", OpRet: "RET",
	OpPush: "PUSH", OpPop: "POP",
	OpMcount: "MCOUNT", OpSys: "SYS",
}

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("OP(%d)", uint8(op))
}

// Valid reports whether op is a defined operation code.
func (op Op) Valid() bool { return op < opMax }

// Reg is a register number. The machine has 16 general registers.
type Reg uint8

// NumRegs is the number of general registers.
const NumRegs = 16

// Register conventions used by the compiler and runtime. They are
// conventions only; the hardware treats all registers alike.
const (
	RegRV Reg = 0  // return value
	RegT0 Reg = 1  // first caller-saved temporary
	RegFP Reg = 13 // frame pointer
	RegSP Reg = 14 // stack pointer
	RegGP Reg = 15 // global data base pointer
)

// String returns the assembler name of r.
func (r Reg) String() string {
	switch r {
	case RegFP:
		return "FP"
	case RegSP:
		return "SP"
	case RegGP:
		return "GP"
	}
	return fmt.Sprintf("R%d", uint8(r))
}

// Valid reports whether r names an existing register.
func (r Reg) Valid() bool { return r < NumRegs }

// Instr is a decoded instruction.
type Instr struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

// Word is an encoded instruction or a data value, as stored in memory.
type Word = int64

// Encoding layout, low bit to high:
//
//	bits  0..7   opcode
//	bits  8..11  rd
//	bits 12..15  rs1
//	bits 16..19  rs2
//	bits 32..63  imm (signed 32-bit)
const (
	immShift = 32
	rdShift  = 8
	rs1Shift = 12
	rs2Shift = 16
	regMask  = 0xf
)

// Encode packs i into a memory word.
func (i Instr) Encode() Word {
	w := Word(i.Op)
	w |= Word(i.Rd&regMask) << rdShift
	w |= Word(i.Rs1&regMask) << rs1Shift
	w |= Word(i.Rs2&regMask) << rs2Shift
	w |= Word(uint64(uint32(i.Imm))) << immShift
	return w
}

// Decode unpacks a memory word into an instruction. It returns an error
// when the opcode field does not name a defined operation, which the VM
// reports as an illegal-instruction trap.
func Decode(w Word) (Instr, error) {
	op := Op(w & 0xff)
	if !op.Valid() {
		return Instr{}, fmt.Errorf("isa: illegal opcode %d in word %#x", uint8(op), uint64(w))
	}
	return Instr{
		Op:  op,
		Rd:  Reg(w >> rdShift & regMask),
		Rs1: Reg(w >> rs1Shift & regMask),
		Rs2: Reg(w >> rs2Shift & regMask),
		Imm: int32(uint32(uint64(w) >> immShift)),
	}, nil
}

// Syscall numbers for OpSys. The imm field selects the service.
const (
	SysExit     = 0 // halt the program; R0 is the exit status
	SysPutInt   = 1 // print R0 as a decimal integer
	SysPutChar  = 2 // print R0 as a byte
	SysMonStart = 3 // enable profiling data collection (control interface)
	SysMonStop  = 4 // disable profiling data collection
	SysMonReset = 5 // clear accumulated profiling data
	SysCycles   = 6 // R0 = cycles executed so far
	SysRand     = 7 // R0 = next value from the deterministic PRNG
)

// Cost returns the simulated cycle cost of executing op. The costs are
// loosely modeled on a simple in-order machine; their absolute values do
// not matter, but their ratios make the paper's 5-30% profiling overhead
// claim a measurable quantity: MCOUNT's cost is that of a short hashed
// table update relative to ordinary instructions.
func (op Op) Cost() int64 {
	switch op {
	case OpNop, OpHalt:
		return 1
	case OpMul:
		return 4
	case OpDiv, OpMod:
		return 12
	case OpLd, OpSt, OpPush, OpPop:
		return 3
	case OpCall, OpCallR, OpRet:
		return 4
	case OpJmp, OpBeqz, OpBnez:
		return 2
	case OpMcount:
		return McountBaseCost
	case OpSys:
		return 8
	default:
		return 1
	}
}

// McountBaseCost is the cycle cost of the monitoring routine's fast path:
// compute the trivial one-to-one hash of the call site and bump the first
// arc counter in the chain. Collisions (call sites with several callees,
// e.g. functional parameters) add McountProbeCost per extra chain probe;
// inserting a new arc costs McountInsertCost. These mirror the structure
// of the paper's §3.1 lookup.
// McountBaseCost is calibrated so that profiling the call-dense
// workloads lands inside the paper's measured 5-30% overhead band (§7);
// see experiment E1.
const (
	McountBaseCost   = 16
	McountProbeCost  = 4
	McountInsertCost = 30
)

// Layout constants for linked executables.
const (
	// TextBase is the address of the first text word. Leaving page zero
	// unused catches null-pointer loads in simulated programs.
	TextBase = 0x1000
)
