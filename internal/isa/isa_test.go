package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		{Op: OpHalt},
		{Op: OpNop},
		{Op: OpMovI, Rd: 3, Imm: -1},
		{Op: OpMovI, Rd: 0, Imm: math.MaxInt32},
		{Op: OpMovI, Rd: 15, Imm: math.MinInt32},
		{Op: OpMov, Rd: 1, Rs1: 2},
		{Op: OpLd, Rd: 4, Rs1: RegFP, Imm: -3},
		{Op: OpSt, Rs1: RegSP, Rs2: 7, Imm: 12},
		{Op: OpLea, Rd: 5, Rs1: RegGP, Imm: 100},
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpDiv, Rd: 15, Rs1: 14, Rs2: 13},
		{Op: OpJmp, Imm: 0x2000},
		{Op: OpBeqz, Rs1: 9, Imm: 0x1234},
		{Op: OpCall, Imm: 0x1fff},
		{Op: OpCallR, Rs1: 6},
		{Op: OpRet},
		{Op: OpPush, Rs1: 11},
		{Op: OpPop, Rd: 12},
		{Op: OpMcount},
		{Op: OpSys, Imm: SysPutInt},
	}
	for _, in := range cases {
		w := in.Encode()
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%v.Encode()): %v", in, err)
		}
		if out != in {
			t.Errorf("round trip: got %+v, want %+v", out, in)
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Instr{
			Op:  Op(int(op) % NumOps),
			Rd:  Reg(rd % NumRegs),
			Rs1: Reg(rs1 % NumRegs),
			Rs2: Reg(rs2 % NumRegs),
			Imm: imm,
		}
		out, err := Decode(in.Encode())
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeIllegal(t *testing.T) {
	if _, err := Decode(Word(opMax)); err == nil {
		t.Errorf("Decode(%d) succeeded, want illegal-opcode error", int(opMax))
	}
	if _, err := Decode(Word(0xff)); err == nil {
		t.Error("Decode(0xff) succeeded, want illegal-opcode error")
	}
}

func TestOpString(t *testing.T) {
	for op := Op(0); op < opMax; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "OP(") {
			t.Errorf("opcode %d has no mnemonic", uint8(op))
		}
	}
	if got := Op(200).String(); got != "OP(200)" {
		t.Errorf("Op(200).String() = %q", got)
	}
}

func TestRegString(t *testing.T) {
	for _, tc := range []struct {
		r    Reg
		want string
	}{
		{RegRV, "R0"}, {RegT0, "R1"}, {RegFP, "FP"}, {RegSP, "SP"}, {RegGP, "GP"},
	} {
		if got := tc.r.String(); got != tc.want {
			t.Errorf("Reg(%d).String() = %q, want %q", uint8(tc.r), got, tc.want)
		}
	}
}

func TestCostsPositive(t *testing.T) {
	for op := Op(0); op < opMax; op++ {
		if op.Cost() <= 0 {
			t.Errorf("%v.Cost() = %d, want > 0", op, op.Cost())
		}
	}
}

func TestMcountCostDominatesALU(t *testing.T) {
	// The profiling hook must be meaningfully more expensive than an ALU
	// op (it models a hashed table update) or the overhead experiment
	// (paper §7: 5-30%) would be vacuous.
	if OpMcount.Cost() < 4*OpAdd.Cost() {
		t.Errorf("MCOUNT cost %d is implausibly cheap vs ADD cost %d",
			OpMcount.Cost(), OpAdd.Cost())
	}
}

func TestDisasmCoversAllOps(t *testing.T) {
	for op := Op(0); op < opMax; op++ {
		in := Instr{Op: op, Rd: 1, Rs1: 2, Rs2: 3, Imm: 5}
		s := Disasm(in)
		if s == "" || strings.Contains(s, "?") {
			t.Errorf("Disasm has no rendering for %v: %q", op, s)
		}
		if !strings.HasPrefix(s, op.String()) {
			t.Errorf("Disasm(%v) = %q, does not start with mnemonic", op, s)
		}
	}
}

func TestDisasmWordData(t *testing.T) {
	if got := DisasmWord(Word(0xff)); got != ".word 255" {
		t.Errorf("DisasmWord(0xff) = %q, want .word 255", got)
	}
}
