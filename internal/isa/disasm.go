package isa

import "fmt"

// Disasm renders a decoded instruction in assembler syntax. The rendering
// round-trips through the assembler (package asm) for every operand form,
// which the tests verify.
func Disasm(i Instr) string {
	switch i.Op {
	case OpHalt, OpNop, OpRet, OpMcount:
		return i.Op.String()
	case OpMovI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case OpMov, OpNeg, OpNot:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs1)
	case OpLd:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpSt:
		return fmt.Sprintf("%s [%s%+d], %s", i.Op, i.Rs1, i.Imm, i.Rs2)
	case OpLea:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpSlt, OpSle, OpSeq, OpSne:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case OpBeqz, OpBnez:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rs1, i.Imm)
	case OpCallR:
		return fmt.Sprintf("%s %s", i.Op, i.Rs1)
	case OpPush:
		return fmt.Sprintf("%s %s", i.Op, i.Rs1)
	case OpPop:
		return fmt.Sprintf("%s %s", i.Op, i.Rd)
	case OpSys:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	}
	return fmt.Sprintf("%s ?", i.Op)
}

// DisasmWord decodes and renders a memory word. Undecodable words render
// as data.
func DisasmWord(w Word) string {
	i, err := Decode(w)
	if err != nil {
		return fmt.Sprintf(".word %d", w)
	}
	return Disasm(i)
}
