package vm

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/object"
)

// link assembles and links a single source file.
func link(t *testing.T, src string) *object.Image {
	t.Helper()
	o, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	im, err := object.Link([]*object.Object{o}, object.LinkConfig{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return im
}

func run(t *testing.T, src string, cfg Config) (Result, string) {
	t.Helper()
	var out bytes.Buffer
	if cfg.Stdout == nil {
		cfg.Stdout = &out
	}
	m := New(link(t, src), cfg)
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, out.String()
}

func TestExitCode(t *testing.T) {
	res, _ := run(t, `
.func main
	MOVI R0, 42
	RET
.end
`, Config{})
	if res.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", res.ExitCode)
	}
}

func TestArithmetic(t *testing.T) {
	// Computes ((10*7 - 4) / 2) % 5 => 33 % 5 = 3, prints it.
	res, out := run(t, `
.func main
	MOVI R1, 10
	MOVI R2, 7
	MUL R3, R1, R2
	MOVI R4, 4
	SUB R3, R3, R4
	MOVI R4, 2
	DIV R3, R3, R4
	MOVI R4, 5
	MOD R0, R3, R4
	SYS 1
	RET
.end
`, Config{})
	if res.ExitCode != 3 {
		t.Errorf("exit = %d, want 3", res.ExitCode)
	}
	if out != "3\n" {
		t.Errorf("output = %q, want 3\\n", out)
	}
}

func TestBitOps(t *testing.T) {
	res, _ := run(t, `
.func main
	MOVI R1, 12
	MOVI R2, 10
	AND R3, R1, R2   ; 8
	OR R4, R1, R2    ; 14
	XOR R5, R3, R4   ; 6
	MOVI R6, 1
	SHL R5, R5, R6   ; 12
	SHR R5, R5, R6   ; 6
	NEG R7, R5       ; -6
	NOT R8, R7       ; 5
	MOV R0, R8
	RET
.end
`, Config{})
	if res.ExitCode != 5 {
		t.Errorf("exit = %d, want 5", res.ExitCode)
	}
}

func TestComparisonsAndBranches(t *testing.T) {
	// Sum 1..10 with a loop: expect 55.
	res, _ := run(t, `
.func main
	MOVI R1, 10
	MOVI R0, 0
loop:
	BEQZ R1, done
	ADD R0, R0, R1
	LEA R1, R1, -1
	JMP loop
done:
	RET
.end
`, Config{})
	if res.ExitCode != 55 {
		t.Errorf("exit = %d, want 55", res.ExitCode)
	}
}

func TestSltFamily(t *testing.T) {
	res, _ := run(t, `
.func main
	MOVI R1, 3
	MOVI R2, 5
	SLT R3, R1, R2  ; 1
	SLE R4, R2, R2  ; 1
	SEQ R5, R1, R2  ; 0
	SNE R6, R1, R2  ; 1
	ADD R0, R3, R4
	ADD R0, R0, R5
	ADD R0, R0, R6
	RET
.end
`, Config{})
	if res.ExitCode != 3 {
		t.Errorf("exit = %d, want 3", res.ExitCode)
	}
}

func TestGlobalsLoadStore(t *testing.T) {
	res, _ := run(t, `
.global acc 1
.global arr 3 = 5 6 7
.func main
	LD R1, [GP+$arr]     ; 5
	LEA R2, GP, $arr
	LD R3, [R2+2]        ; 7
	ADD R4, R1, R3       ; 12
	ST [GP+$acc], R4
	LD R0, [GP+$acc]
	RET
.end
`, Config{})
	if res.ExitCode != 12 {
		t.Errorf("exit = %d, want 12", res.ExitCode)
	}
}

func TestCallsAndStack(t *testing.T) {
	// main calls double(21) via direct call and add1 via function pointer.
	res, _ := run(t, `
.func main
	MOVI R1, 21
	PUSH R1
	CALL double
	POP R1          ; discard arg
	MOVI R1, &add1
	PUSH R0
	CALLR R1
	POP R2
	RET
.end
.func double
	LD R1, [SP+1]   ; arg above return address
	ADD R0, R1, R1
	RET
.end
.func add1
	LD R1, [SP+1]
	LEA R0, R1, 1
	RET
.end
`, Config{})
	if res.ExitCode != 43 {
		t.Errorf("exit = %d, want 43", res.ExitCode)
	}
}

func TestRecursionFactorial(t *testing.T) {
	res, _ := run(t, `
.func main
	MOVI R1, 10
	PUSH R1
	CALL fact
	POP R1
	RET
.end
.func fact
	LD R1, [SP+1]
	BNEZ R1, rec
	MOVI R0, 1
	RET
rec:
	LEA R2, R1, -1
	PUSH R2
	CALL fact
	POP R2
	LD R1, [SP+1]
	MUL R0, R0, R1
	RET
.end
`, Config{})
	if res.ExitCode != 3628800 {
		t.Errorf("exit = %d, want 10!", res.ExitCode)
	}
}

func TestPutChar(t *testing.T) {
	_, out := run(t, `
.func main
	MOVI R0, 104
	SYS 2
	MOVI R0, 105
	SYS 2
	MOVI R0, 0
	RET
.end
`, Config{})
	if out != "hi" {
		t.Errorf("output = %q, want hi", out)
	}
}

func TestSysCyclesAndRand(t *testing.T) {
	res, _ := run(t, `
.func main
	SYS 6          ; cycles -> R0
	MOV R5, R0
	SYS 7          ; rand -> R0
	MOV R6, R0
	SLT R0, R5, R6 ; unlikely meaningful; just ensure both ran
	MOV R0, R5
	RET
.end
`, Config{RandSeed: 99})
	if res.ExitCode <= 0 {
		t.Errorf("SysCycles returned %d, want > 0", res.ExitCode)
	}
}

func TestRandDeterministic(t *testing.T) {
	src := `
.func main
	SYS 7
	RET
.end
`
	a, _ := run(t, src, Config{RandSeed: 7})
	b, _ := run(t, src, Config{RandSeed: 7})
	c, _ := run(t, src, Config{RandSeed: 8})
	if a.ExitCode != b.ExitCode {
		t.Errorf("same seed, different values: %d vs %d", a.ExitCode, b.ExitCode)
	}
	if a.ExitCode == c.ExitCode {
		t.Errorf("different seeds, same value %d", a.ExitCode)
	}
	if a.ExitCode < 0 {
		t.Errorf("rand value negative: %d", a.ExitCode)
	}
}

func runErr(t *testing.T, src string, cfg Config) error {
	t.Helper()
	m := New(link(t, src), cfg)
	_, err := m.Run()
	return err
}

func TestTraps(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"div by zero", ".func main\nMOVI R1, 0\nDIV R0, R1, R1\n.end\n", "division by zero"},
		{"mod by zero", ".func main\nMOVI R1, 0\nMOD R0, R1, R1\n.end\n", "modulo by zero"},
		{"null load", ".func main\nMOVI R1, 0\nLD R0, [R1]\n.end\n", "unmapped"},
		{"text store", ".func main\nMOVI R1, 4096\nST [R1], R1\n.end\n", "text segment"},
		{"stack underflow", ".func main\nPOP R1\nPOP R1\nPOP R1\nRET\n.end\n", "underflow"},
		// A program can load anything into SP; a pop or push through a
		// corrupted pointer must trap on both sides of the stack
		// bounds, never index host memory (the fuzz tests' guarantee).
		{"pop below memory", ".func main\nMOVI R1, 1\nMOV SP, R1\nPOP R2\n.end\n", "underflow"},
		{"push above stack top", ".func main\nMOVI R1, 1073741824\nMOV SP, R1\nPUSH R2\n.end\n", "overflow"},
		{"bad syscall", ".func main\nSYS 99\n.end\n", "unknown syscall"},
		{"run off end", ".func main\nNOP\n.end\n", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runErr(t, tc.src, Config{MaxCycles: 1 << 20})
			if err == nil {
				t.Fatal("ran to completion, want trap")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestStackOverflowTrap(t *testing.T) {
	err := runErr(t, `
.func main
loop:
	PUSH R1
	JMP loop
.end
`, Config{MaxCycles: 1 << 24})
	if err == nil || !strings.Contains(err.Error(), "stack overflow") {
		t.Errorf("err = %v, want stack overflow", err)
	}
}

func TestCycleLimit(t *testing.T) {
	err := runErr(t, `
.func main
loop:
	JMP loop
.end
`, Config{MaxCycles: 1000})
	if !errors.Is(err, ErrCycleLimit) {
		t.Errorf("err = %v, want ErrCycleLimit", err)
	}
}

// fakeMonitor records profiling events.
type fakeMonitor struct {
	arcs    []([2]int64)
	ticks   []int64
	control []int
	cost    int64
}

func (f *fakeMonitor) Mcount(selfpc, frompc int64) int64 {
	f.arcs = append(f.arcs, [2]int64{selfpc, frompc})
	return f.cost
}
func (f *fakeMonitor) Tick(pc int64)  { f.ticks = append(f.ticks, pc) }
func (f *fakeMonitor) Control(op int) { f.control = append(f.control, op) }

func TestMcountReportsCallSite(t *testing.T) {
	src := `
.func main
	CALL child
	CALL child
	MOVI R0, 0
	RET
.end
.func child
	MCOUNT
	RET
.end
`
	mon := &fakeMonitor{}
	im := link(t, src)
	m := New(im, Config{Monitor: mon})
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(mon.arcs) != 2 {
		t.Fatalf("got %d mcount events, want 2", len(mon.arcs))
	}
	child, _ := im.LookupFunc("child")
	main, _ := im.LookupFunc("main")
	for i, a := range mon.arcs {
		if a[0] != child.Addr {
			t.Errorf("event %d selfpc = %#x, want child prologue %#x", i, a[0], child.Addr)
		}
	}
	// The two call sites are main+0 and main+1.
	if mon.arcs[0][1] != main.Addr || mon.arcs[1][1] != main.Addr+1 {
		t.Errorf("call sites = %#x,%#x, want %#x,%#x",
			mon.arcs[0][1], mon.arcs[1][1], main.Addr, main.Addr+1)
	}
}

func TestMcountIndirectCallSite(t *testing.T) {
	src := `
.func main
	MOVI R1, &child
	CALLR R1
	MOVI R0, 0
	RET
.end
.func child
	MCOUNT
	RET
.end
`
	mon := &fakeMonitor{}
	im := link(t, src)
	m := New(im, Config{Monitor: mon})
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	main, _ := im.LookupFunc("main")
	if len(mon.arcs) != 1 || mon.arcs[0][1] != main.Addr+1 {
		t.Fatalf("arcs = %v, want CALLR site %#x", mon.arcs, main.Addr+1)
	}
}

func TestMcountSpontaneous(t *testing.T) {
	// Enter a profiled prologue without a CALL (computed jump via
	// push+RET): the word on top of the stack is then garbage, not a
	// return address, so the arc must be spontaneous. This models the
	// paper's non-standard calling sequences (exception handlers).
	src := `
.func main
	MOVI R2, 12345
	PUSH R2
	MOVI R1, &handler
	PUSH R1
	RET             ; computed jump into handler
.end
.func handler
	MCOUNT
	MOVI R0, 7
	SYS 0
.end
`
	mon := &fakeMonitor{}
	m := New(link(t, src), Config{Monitor: mon})
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.ExitCode != 7 {
		t.Errorf("exit = %d", res.ExitCode)
	}
	if len(mon.arcs) != 1 || mon.arcs[0][1] != SpontaneousPC {
		t.Errorf("arcs = %v, want one spontaneous", mon.arcs)
	}
}

func TestMcountOverheadCharged(t *testing.T) {
	src := `
.func main
	MOVI R2, 200
loop:
	BEQZ R2, done
	CALL child
	LEA R2, R2, -1
	JMP loop
done:
	MOVI R0, 0
	RET
.end
.func child
	MCOUNT
	RET
.end
`
	im := link(t, src)
	base := New(im, Config{})
	resBase, err := base.Run()
	if err != nil {
		t.Fatalf("base run: %v", err)
	}
	prof := New(im, Config{Monitor: &fakeMonitor{cost: 50}})
	resProf, err := prof.Run()
	if err != nil {
		t.Fatalf("profiled run: %v", err)
	}
	extra := resProf.Cycles - resBase.Cycles
	if extra != 200*50 {
		t.Errorf("monitoring overhead = %d cycles, want %d", extra, 200*50)
	}
}

func TestTicksDelivered(t *testing.T) {
	src := `
.func main
	MOVI R2, 5000
loop:
	BEQZ R2, done
	LEA R2, R2, -1
	JMP loop
done:
	MOVI R0, 0
	RET
.end
`
	mon := &fakeMonitor{}
	m := New(link(t, src), Config{Monitor: mon, TickCycles: 100})
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Ticks != int64(len(mon.ticks)) {
		t.Errorf("result ticks %d != delivered %d", res.Ticks, len(mon.ticks))
	}
	want := res.Cycles / 100
	if res.Ticks != want {
		t.Errorf("ticks = %d, want cycles/interval = %d", res.Ticks, want)
	}
	im := link(t, src)
	for _, pc := range mon.ticks {
		if pc < im.TextBase || pc >= im.TextEnd() {
			t.Errorf("tick pc %#x outside text", pc)
		}
	}
}

func TestControlSyscalls(t *testing.T) {
	src := `
.func main
	SYS 3   ; start
	SYS 4   ; stop
	SYS 5   ; reset
	MOVI R0, 0
	RET
.end
`
	mon := &fakeMonitor{}
	m := New(link(t, src), Config{Monitor: mon})
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := []int{isa.SysMonStart, isa.SysMonStop, isa.SysMonReset}
	if len(mon.control) != 3 {
		t.Fatalf("control events = %v, want %v", mon.control, want)
	}
	for i := range want {
		if mon.control[i] != want[i] {
			t.Errorf("control[%d] = %d, want %d", i, mon.control[i], want[i])
		}
	}
}

func TestDeterministicCycles(t *testing.T) {
	src := `
.func main
	MOVI R2, 1000
loop:
	BEQZ R2, done
	LEA R2, R2, -1
	JMP loop
done:
	MOVI R0, 0
	RET
.end
`
	im := link(t, src)
	a, err := New(im, Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(im, Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Retired != b.Retired {
		t.Errorf("nondeterministic execution: %+v vs %+v", a, b)
	}
}

func TestTrace(t *testing.T) {
	var trace bytes.Buffer
	src := `
.func main
	MOVI R0, 3
	RET
.end
`
	m := New(link(t, src), Config{Trace: &trace})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	out := trace.String()
	for _, want := range []string{"CALL", "MOVI R0, 3", "RET", "SYS 0"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// One line per retired instruction: _start CALL, MOVI, RET, SYS.
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Errorf("trace has %d lines, want 4", lines)
	}
}
