// Package vm executes linked images (package object) on the simulated
// machine defined by package isa.
//
// The machine plays two roles from the paper:
//
//   - it runs the profiled program, charging each instruction its cycle
//     cost, so execution time is a deterministic, measurable quantity; and
//   - it stands in for the operating system's clock: every TickCycles
//     simulated cycles it delivers a "clock tick" to the attached Monitor
//     with the current program counter, exactly the kernel facility gprof
//     uses to build the program-counter histogram (§3.2).
//
// When the program executes the MCOUNT instruction a compiler planted in
// a routine prologue, the VM invokes the Monitor with the two addresses
// the paper's monitoring routine discovers: the address of the MCOUNT
// itself (which lies in the callee) and the routine's return address
// (which identifies the call site in the caller). If the top of stack
// does not hold a plausible return address — a non-standard calling
// sequence — the VM passes SpontaneousPC and the arc is recorded as
// "spontaneous" (§3.1).
package vm

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/object"
)

// SpontaneousPC is passed to Monitor.Mcount as the call-site address when
// the caller cannot be identified.
const SpontaneousPC = int64(-1)

// DefaultTickCycles is the simulated clock-tick interval: the number of
// cycles between program-counter samples. The paper's clock ran at 60 Hz;
// the ratio of tick interval to routine length is what matters for
// sampling accuracy, not the absolute rate.
const DefaultTickCycles = 10000

// Monitor receives profiling events from the machine. Package mon
// provides the production implementation; tests provide fakes.
type Monitor interface {
	// Mcount reports execution of a routine prologue: selfpc is the
	// address of the MCOUNT instruction, frompc the call-site address or
	// SpontaneousPC. It returns the number of additional cycles the
	// monitoring routine consumed, which the VM charges to the program —
	// this is how profiling overhead becomes measurable.
	Mcount(selfpc, frompc int64) int64
	// Tick reports that a clock tick occurred while the instruction at pc
	// was executing.
	Tick(pc int64)
	// Control handles the programmer's-interface syscalls
	// (isa.SysMonStart, SysMonStop, SysMonReset).
	Control(op int)
}

// Config controls execution.
type Config struct {
	// Monitor receives profiling events; nil runs unprofiled.
	Monitor Monitor
	// TickCycles overrides DefaultTickCycles when positive.
	TickCycles int64
	// MaxCycles aborts execution when positive and exceeded.
	MaxCycles int64
	// Stdout receives SysPutInt/SysPutChar output; nil discards it.
	Stdout io.Writer
	// RandSeed seeds the deterministic PRNG behind SysRand; 0 means 1.
	RandSeed uint64
	// Trace, when non-nil, receives one line per executed instruction
	// (address and disassembly) — a debugging aid, not a profiling
	// mechanism; it slows execution enormously and forces the
	// reference interpreter loop (see Run).
	Trace io.Writer
}

// Result summarizes a completed execution.
type Result struct {
	ExitCode int64
	Cycles   int64 // total simulated cycles, including monitoring overhead
	Ticks    int64 // clock ticks delivered
	Retired  int64 // instructions executed
}

// TrapError reports an execution fault.
type TrapError struct {
	PC     int64
	Cycles int64
	Msg    string
}

func (e *TrapError) Error() string {
	return fmt.Sprintf("vm: trap at pc %#x (cycle %d): %s", e.PC, e.Cycles, e.Msg)
}

// ErrCycleLimit is wrapped by the error returned when MaxCycles is hit.
var ErrCycleLimit = errors.New("cycle limit exceeded")

// Machine is a loaded program ready to run. Create one with New. A
// Machine is single-use per Run, but Reset returns it to its freshly
// loaded state without re-decoding text or reallocating memory, so
// benchmarks and batch drivers can reuse one machine across runs.
type Machine struct {
	im   *object.Image
	cfg  Config
	text []isa.Instr // pre-decoded text segment
	cost []int64     // pre-computed cycle cost per text word
	bad  []bool      // text words that failed to decode (data in text)

	regs   [isa.NumRegs]int64
	pc     int64
	mem    []int64 // data + stack; index 0 is address im.DataBase
	cycles int64
	ticks  int64
	rand   uint64

	// batches counts the fast loop's event-deadline batches (the outer
	// loop of runFast): the scheduling unit the deadline-batched design
	// trades per-instruction checks for. The reference loop has no
	// batches and leaves it zero; Result is deliberately not extended,
	// so the two loops stay bit-identical under the differential tests.
	batches int64
}

// New loads an image. Text is pre-decoded once; words that do not decode
// trap only if executed. Instruction cycle costs are also pre-computed
// per text word so the dispatch loops charge them with one indexed load.
func New(im *object.Image, cfg Config) *Machine {
	m := &Machine{
		im:   im,
		cfg:  cfg,
		text: make([]isa.Instr, len(im.Text)),
		cost: make([]int64, len(im.Text)),
		bad:  make([]bool, len(im.Text)),
		mem:  make([]int64, im.StackTop-im.DataBase),
	}
	if m.cfg.TickCycles <= 0 {
		m.cfg.TickCycles = DefaultTickCycles
	}
	for i, w := range im.Text {
		instr, err := isa.Decode(w)
		if err != nil {
			m.bad[i] = true
			m.cost[i] = -1 // fast-loop fetch sentinel: trap before dispatch
			continue
		}
		m.text[i] = instr
		m.cost[i] = instr.Op.Cost()
	}
	m.Reset()
	return m
}

// Reset returns the machine to its freshly loaded state: registers,
// memory, cycle and tick counters, and the PRNG are restored exactly as
// New left them, without re-decoding the text segment or reallocating
// the data/stack array. A Run after Reset behaves identically to a Run
// on a brand-new machine over the same image and Config.
func (m *Machine) Reset() {
	for i := range m.regs {
		m.regs[i] = 0
	}
	clear(m.mem)
	copy(m.mem, m.im.Data)
	m.regs[isa.RegSP] = m.im.StackTop
	m.regs[isa.RegGP] = m.im.DataBase
	m.pc = m.im.Entry
	m.cycles = 0
	m.ticks = 0
	m.batches = 0
	m.rand = m.cfg.RandSeed
	if m.rand == 0 {
		m.rand = 1
	}
}

// FastBatches returns how many event-deadline batches the fast loop ran
// (0 after a reference-loop run) — a fast-loop scheduling stat for the
// observability layer, reported by vmrun -stats as vm.batches.
func (m *Machine) FastBatches() int64 { return m.batches }

// Cycles returns the cycles consumed so far (valid during and after Run).
func (m *Machine) Cycles() int64 { return m.cycles }

func (m *Machine) trap(format string, args ...any) error {
	return &TrapError{PC: m.pc, Cycles: m.cycles, Msg: fmt.Sprintf(format, args...)}
}

func (m *Machine) load(addr int64) (int64, error) {
	switch {
	case addr >= m.im.DataBase && addr < m.im.StackTop:
		return m.mem[addr-m.im.DataBase], nil
	case addr >= m.im.TextBase && addr < m.im.TextEnd():
		return m.im.Text[addr-m.im.TextBase], nil
	}
	return 0, m.trap("load from unmapped address %#x", addr)
}

func (m *Machine) store(addr, v int64) error {
	if addr >= m.im.DataBase && addr < m.im.StackTop {
		m.mem[addr-m.im.DataBase] = v
		return nil
	}
	if addr >= m.im.TextBase && addr < m.im.TextEnd() {
		return m.trap("store to text segment at %#x", addr)
	}
	return m.trap("store to unmapped address %#x", addr)
}

func (m *Machine) push(v int64) error {
	// A program can load any value into SP, so both bounds need
	// checking: below the data segment's end is overflow, at or above
	// the stack top is a corrupted pointer — either way a trap, never
	// a host panic.
	sp := m.regs[isa.RegSP] - 1
	if sp < m.im.DataBase+int64(len(m.im.Data)) || sp >= m.im.StackTop {
		return m.trap("stack overflow (sp %#x)", sp)
	}
	m.regs[isa.RegSP] = sp
	m.mem[sp-m.im.DataBase] = v
	return nil
}

func (m *Machine) pop() (int64, error) {
	sp := m.regs[isa.RegSP]
	if sp < m.im.DataBase || sp >= m.im.StackTop {
		return 0, m.trap("stack underflow (sp %#x)", sp)
	}
	m.regs[isa.RegSP] = sp + 1
	return m.mem[sp-m.im.DataBase], nil
}

// Run executes until the program exits, traps, or hits the cycle limit.
//
// Two interpreter loops implement the same machine. The fast loop
// (runFast) executes straight-line until the next event deadline —
// min(next clock tick, cycle limit) — so the per-instruction path
// carries no tick-delivery loop, no limit check, and no Trace branch.
// The reference loop (RunReference) checks everything every
// instruction and is the specification: the differential tests pin the
// two loops to identical Results, identical trap PCs, and
// byte-identical profiles. Run picks the fast loop unless a Trace
// writer forces the reference loop.
func (m *Machine) Run() (Result, error) {
	if m.cfg.Trace != nil {
		return m.RunReference()
	}
	return m.runFast()
}

// RunReference executes on the reference interpreter loop: one
// instruction at a time, with tick delivery, the cycle-limit check, and
// the optional Trace writer all on the per-instruction path. It is the
// behavioural specification for runFast and the only loop that honors
// Config.Trace; use Run unless comparing the two loops.
func (m *Machine) RunReference() (Result, error) {
	nextTick := m.cfg.TickCycles
	var retired int64
	for {
		if m.pc < m.im.TextBase || m.pc >= m.im.TextEnd() {
			return m.result(retired), m.trap("pc outside text segment")
		}
		idx := m.pc - m.im.TextBase
		if m.bad[idx] {
			return m.result(retired), m.trap("illegal instruction word %#x", uint64(m.im.Text[idx]))
		}
		instr := m.text[idx]
		curPC := m.pc
		m.pc++ // default fall-through; control transfers overwrite
		if m.cfg.Trace != nil {
			fmt.Fprintf(m.cfg.Trace, "%#06x  %s\n", curPC, isa.Disasm(instr))
		}

		halt, err := m.exec(instr, curPC)
		m.cycles += instr.Op.Cost()
		retired++

		// Deliver clock ticks that elapsed during this instruction,
		// attributing the sample to the instruction that was executing.
		for m.cycles >= nextTick {
			m.ticks++
			if m.cfg.Monitor != nil {
				m.cfg.Monitor.Tick(curPC)
			}
			nextTick += m.cfg.TickCycles
		}
		if err != nil {
			return m.result(retired), err
		}
		if halt {
			return m.result(retired), nil
		}
		if m.cfg.MaxCycles > 0 && m.cycles > m.cfg.MaxCycles {
			return m.result(retired), fmt.Errorf("vm: at pc %#x after %d cycles: %w",
				curPC, m.cycles, ErrCycleLimit)
		}
	}
}

// runFast is the production interpreter loop. It executes instructions
// with an inline dispatch switch until the next event deadline, then
// performs the per-event work (tick delivery, limit check) outside the
// per-instruction path. Observable behaviour — Result, trap PCs and
// messages, Monitor event streams, PRNG state, output — is bit-identical
// to RunReference; the differential tests enforce this.
//
// Two techniques carry the speedup beyond hoisting the per-event
// checks. First, the program counter and cycle counter live in locals
// and are written back to the Machine only at observation points (trap
// construction, syscalls, Monitor calls, loop exit), so the straight-
// line path does no field traffic. Second, the memory operations inline
// their data-region fast path — a single unsigned bounds check against
// the mem slice — and fall back to the shared checked helpers (m.load,
// m.store, m.push, m.pop) for text reads, traps, and every other cold
// case, so the two loops share one definition of memory semantics.
func (m *Machine) runFast() (Result, error) {
	var (
		text     = m.text
		cost     = m.cost
		mem      = m.mem
		base     = m.im.TextBase
		dataBase = m.im.DataBase
		stackLow = m.im.DataBase + int64(len(m.im.Data))
		monitor  = m.cfg.Monitor
		tick     = m.cfg.TickCycles
		maxC     = m.cfg.MaxCycles
		r        = &m.regs
		pc       = m.pc
		cyc      = m.cycles
		nextTick = tick
		retired  int64
	)
	for {
		// The event deadline: the fast loop may retire instructions
		// freely while cycles stay below it. Entering the outer loop,
		// cycles < nextTick (ticks are drained below) and, when a limit
		// is set, cycles <= MaxCycles (else we returned) — so the inner
		// loop always makes progress.
		m.batches++
		deadline := nextTick
		if maxC > 0 && maxC+1 < deadline {
			deadline = maxC + 1
		}
		var (
			halt  bool
			err   error
			curPC int64
		)
		for cyc < deadline {
			idx := uint64(pc - base)
			if idx >= uint64(len(text)) {
				m.pc, m.cycles = pc, cyc
				err = m.trap("pc outside text segment")
				break
			}
			cst := cost[idx]
			if cst < 0 { // word did not decode; trap like the reference fetch
				m.pc, m.cycles = pc, cyc
				err = m.trap("illegal instruction word %#x", uint64(m.im.Text[idx]))
				break
			}
			i := text[idx]
			curPC = pc
			pc++ // default fall-through; control transfers overwrite

			switch i.Op {
			case isa.OpHalt:
				halt = true
			case isa.OpNop:
			case isa.OpMovI:
				r[i.Rd] = int64(i.Imm)
			case isa.OpMov:
				r[i.Rd] = r[i.Rs1]
			case isa.OpLd:
				addr := r[i.Rs1] + int64(i.Imm)
				if u := uint64(addr - dataBase); u < uint64(len(mem)) {
					r[i.Rd] = mem[u]
				} else {
					m.pc, m.cycles = pc, cyc
					var v int64
					if v, err = m.load(addr); err == nil {
						r[i.Rd] = v
					}
				}
			case isa.OpSt:
				addr := r[i.Rs1] + int64(i.Imm)
				if u := uint64(addr - dataBase); u < uint64(len(mem)) {
					mem[u] = r[i.Rs2]
				} else {
					m.pc, m.cycles = pc, cyc
					err = m.store(addr, r[i.Rs2])
				}
			case isa.OpLea:
				r[i.Rd] = r[i.Rs1] + int64(i.Imm)
			case isa.OpAdd:
				r[i.Rd] = r[i.Rs1] + r[i.Rs2]
			case isa.OpSub:
				r[i.Rd] = r[i.Rs1] - r[i.Rs2]
			case isa.OpMul:
				r[i.Rd] = r[i.Rs1] * r[i.Rs2]
			case isa.OpDiv:
				if r[i.Rs2] == 0 {
					m.pc, m.cycles = pc, cyc
					err = m.trap("division by zero")
				} else {
					r[i.Rd] = r[i.Rs1] / r[i.Rs2]
				}
			case isa.OpMod:
				if r[i.Rs2] == 0 {
					m.pc, m.cycles = pc, cyc
					err = m.trap("modulo by zero")
				} else {
					r[i.Rd] = r[i.Rs1] % r[i.Rs2]
				}
			case isa.OpAnd:
				r[i.Rd] = r[i.Rs1] & r[i.Rs2]
			case isa.OpOr:
				r[i.Rd] = r[i.Rs1] | r[i.Rs2]
			case isa.OpXor:
				r[i.Rd] = r[i.Rs1] ^ r[i.Rs2]
			case isa.OpShl:
				r[i.Rd] = r[i.Rs1] << uint64(r[i.Rs2]&63)
			case isa.OpShr:
				r[i.Rd] = int64(uint64(r[i.Rs1]) >> uint64(r[i.Rs2]&63))
			case isa.OpNeg:
				r[i.Rd] = -r[i.Rs1]
			case isa.OpNot:
				r[i.Rd] = ^r[i.Rs1]
			case isa.OpSlt:
				r[i.Rd] = b2i(r[i.Rs1] < r[i.Rs2])
			case isa.OpSle:
				r[i.Rd] = b2i(r[i.Rs1] <= r[i.Rs2])
			case isa.OpSeq:
				r[i.Rd] = b2i(r[i.Rs1] == r[i.Rs2])
			case isa.OpSne:
				r[i.Rd] = b2i(r[i.Rs1] != r[i.Rs2])
			case isa.OpJmp:
				pc = int64(i.Imm)
			case isa.OpBeqz:
				if r[i.Rs1] == 0 {
					pc = int64(i.Imm)
				}
			case isa.OpBnez:
				if r[i.Rs1] != 0 {
					pc = int64(i.Imm)
				}
			case isa.OpCall:
				sp := r[isa.RegSP] - 1
				if u := uint64(sp - dataBase); sp >= stackLow && u < uint64(len(mem)) {
					r[isa.RegSP] = sp
					mem[u] = pc // pc == curPC+1, the return address
					pc = int64(i.Imm)
				} else {
					m.pc, m.cycles = pc, cyc
					if err = m.push(pc); err == nil {
						pc = int64(i.Imm)
					}
				}
			case isa.OpCallR:
				sp := r[isa.RegSP] - 1
				if u := uint64(sp - dataBase); sp >= stackLow && u < uint64(len(mem)) {
					r[isa.RegSP] = sp
					mem[u] = pc
					pc = r[i.Rs1]
				} else {
					m.pc, m.cycles = pc, cyc
					if err = m.push(pc); err == nil {
						pc = r[i.Rs1]
					}
				}
			case isa.OpRet:
				sp := r[isa.RegSP]
				if u := uint64(sp - dataBase); u < uint64(len(mem)) {
					r[isa.RegSP] = sp + 1
					pc = mem[u]
				} else {
					m.pc, m.cycles = pc, cyc
					var ra int64
					if ra, err = m.pop(); err == nil {
						pc = ra
					}
				}
			case isa.OpPush:
				sp := r[isa.RegSP] - 1
				if u := uint64(sp - dataBase); sp >= stackLow && u < uint64(len(mem)) {
					r[isa.RegSP] = sp
					mem[u] = r[i.Rs1]
				} else {
					m.pc, m.cycles = pc, cyc
					err = m.push(r[i.Rs1])
				}
			case isa.OpPop:
				sp := r[isa.RegSP]
				if u := uint64(sp - dataBase); u < uint64(len(mem)) {
					r[isa.RegSP] = sp + 1
					r[i.Rd] = mem[u]
				} else {
					m.pc, m.cycles = pc, cyc
					var v int64
					if v, err = m.pop(); err == nil {
						r[i.Rd] = v
					}
				}
			case isa.OpMcount:
				if monitor != nil {
					m.pc, m.cycles = pc, cyc
					cyc += monitor.Mcount(curPC, m.callSite())
				}
			case isa.OpSys:
				m.pc, m.cycles = pc, cyc
				halt, err = m.syscall(int(i.Imm))
			default:
				m.pc, m.cycles = pc, cyc
				err = m.trap("unimplemented opcode %v", i.Op)
			}

			cyc += cst
			retired++
			if halt || err != nil {
				break
			}
		}
		m.pc, m.cycles = pc, cyc
		// Deliver the clock ticks that elapsed during the last
		// instruction, attributing the samples to it — including when
		// that instruction trapped or halted, exactly as the reference
		// loop does. Bounds and illegal-instruction traps break out
		// before charging cycles, so no tick can be pending there.
		for cyc >= nextTick {
			m.ticks++
			if monitor != nil {
				monitor.Tick(curPC)
			}
			nextTick += tick
		}
		if err != nil {
			return m.result(retired), err
		}
		if halt {
			return m.result(retired), nil
		}
		if maxC > 0 && cyc > maxC {
			return m.result(retired), fmt.Errorf("vm: at pc %#x after %d cycles: %w",
				curPC, cyc, ErrCycleLimit)
		}
	}
}

func (m *Machine) result(retired int64) Result {
	return Result{ExitCode: m.regs[isa.RegRV], Cycles: m.cycles, Ticks: m.ticks, Retired: retired}
}

func (m *Machine) exec(i isa.Instr, curPC int64) (halt bool, err error) {
	r := &m.regs
	switch i.Op {
	case isa.OpHalt:
		return true, nil
	case isa.OpNop:
	case isa.OpMovI:
		r[i.Rd] = int64(i.Imm)
	case isa.OpMov:
		r[i.Rd] = r[i.Rs1]
	case isa.OpLd:
		v, err := m.load(r[i.Rs1] + int64(i.Imm))
		if err != nil {
			return false, err
		}
		r[i.Rd] = v
	case isa.OpSt:
		if err := m.store(r[i.Rs1]+int64(i.Imm), r[i.Rs2]); err != nil {
			return false, err
		}
	case isa.OpLea:
		r[i.Rd] = r[i.Rs1] + int64(i.Imm)
	case isa.OpAdd:
		r[i.Rd] = r[i.Rs1] + r[i.Rs2]
	case isa.OpSub:
		r[i.Rd] = r[i.Rs1] - r[i.Rs2]
	case isa.OpMul:
		r[i.Rd] = r[i.Rs1] * r[i.Rs2]
	case isa.OpDiv:
		if r[i.Rs2] == 0 {
			return false, m.trap("division by zero")
		}
		r[i.Rd] = r[i.Rs1] / r[i.Rs2]
	case isa.OpMod:
		if r[i.Rs2] == 0 {
			return false, m.trap("modulo by zero")
		}
		r[i.Rd] = r[i.Rs1] % r[i.Rs2]
	case isa.OpAnd:
		r[i.Rd] = r[i.Rs1] & r[i.Rs2]
	case isa.OpOr:
		r[i.Rd] = r[i.Rs1] | r[i.Rs2]
	case isa.OpXor:
		r[i.Rd] = r[i.Rs1] ^ r[i.Rs2]
	case isa.OpShl:
		r[i.Rd] = r[i.Rs1] << uint64(r[i.Rs2]&63)
	case isa.OpShr:
		r[i.Rd] = int64(uint64(r[i.Rs1]) >> uint64(r[i.Rs2]&63))
	case isa.OpNeg:
		r[i.Rd] = -r[i.Rs1]
	case isa.OpNot:
		r[i.Rd] = ^r[i.Rs1]
	case isa.OpSlt:
		r[i.Rd] = b2i(r[i.Rs1] < r[i.Rs2])
	case isa.OpSle:
		r[i.Rd] = b2i(r[i.Rs1] <= r[i.Rs2])
	case isa.OpSeq:
		r[i.Rd] = b2i(r[i.Rs1] == r[i.Rs2])
	case isa.OpSne:
		r[i.Rd] = b2i(r[i.Rs1] != r[i.Rs2])
	case isa.OpJmp:
		m.pc = int64(i.Imm)
	case isa.OpBeqz:
		if r[i.Rs1] == 0 {
			m.pc = int64(i.Imm)
		}
	case isa.OpBnez:
		if r[i.Rs1] != 0 {
			m.pc = int64(i.Imm)
		}
	case isa.OpCall:
		if err := m.push(curPC + 1); err != nil {
			return false, err
		}
		m.pc = int64(i.Imm)
	case isa.OpCallR:
		if err := m.push(curPC + 1); err != nil {
			return false, err
		}
		m.pc = r[i.Rs1]
	case isa.OpRet:
		ra, err := m.pop()
		if err != nil {
			return false, err
		}
		m.pc = ra
	case isa.OpPush:
		if err := m.push(r[i.Rs1]); err != nil {
			return false, err
		}
	case isa.OpPop:
		v, err := m.pop()
		if err != nil {
			return false, err
		}
		r[i.Rd] = v
	case isa.OpMcount:
		if m.cfg.Monitor != nil {
			m.cycles += m.cfg.Monitor.Mcount(curPC, m.callSite())
		}
	case isa.OpSys:
		return m.syscall(int(i.Imm))
	default:
		return false, m.trap("unimplemented opcode %v", i.Op)
	}
	return false, nil
}

// ReturnAddresses walks the frame-pointer chain and returns the return
// addresses of the active call frames, innermost first, up to max.
//
// The walk relies on the compiler's calling convention — every routine
// saves the caller's FP and leaves its return address one word above it —
// which is the retrospective's observation that gathering complete call
// stacks "depends on being able to find the return addresses all the way
// up the stack, a convention imposed in order to debug programs". A
// sample taken mid-prologue (before FP is established) walks one frame
// short, the classic prologue-skid artifact of real stack samplers; the
// bounds checks below keep such walks safe.
func (m *Machine) ReturnAddresses(max int) []int64 {
	if max <= 0 {
		return nil
	}
	dst := make([]int64, max)
	n := m.ReturnAddressesInto(dst)
	if n == 0 {
		return nil
	}
	return dst[:n]
}

// ReturnAddressesInto is ReturnAddresses without the allocation: it
// fills dst with the return addresses of the active call frames,
// innermost first, and reports how many it wrote (at most len(dst)).
// Tick-time stack collectors walk through a reused buffer, so the hot
// sampling path allocates nothing.
func (m *Machine) ReturnAddressesInto(dst []int64) int {
	n := 0
	fp := m.regs[isa.RegFP]
	stackLow := m.im.DataBase + int64(len(m.im.Data))
	for n < len(dst) {
		if fp < stackLow || fp+1 >= m.im.StackTop {
			break
		}
		ra := m.mem[fp+1-m.im.DataBase]
		if ra <= m.im.TextBase || ra > m.im.TextEnd() {
			break
		}
		dst[n] = ra
		n++
		next := m.mem[fp-m.im.DataBase]
		if next <= fp { // frames must move toward higher addresses
			break
		}
		fp = next
	}
	return n
}

// callSite recovers the call-site address for the routine whose prologue
// is executing: the word on top of the stack is the return address pushed
// by CALL/CALLR, so the call site is one word before it. A top of stack
// that is not a plausible return address yields SpontaneousPC.
func (m *Machine) callSite() int64 {
	sp := m.regs[isa.RegSP]
	if sp >= m.im.StackTop || sp < m.im.DataBase+int64(len(m.im.Data)) {
		return SpontaneousPC
	}
	ra := m.mem[sp-m.im.DataBase]
	site := ra - 1
	if site < m.im.TextBase || site >= m.im.TextEnd() {
		return SpontaneousPC
	}
	instr, err := isa.Decode(m.im.Text[site-m.im.TextBase])
	if err != nil || (instr.Op != isa.OpCall && instr.Op != isa.OpCallR) {
		return SpontaneousPC
	}
	return site
}

func (m *Machine) syscall(op int) (halt bool, err error) {
	switch op {
	case isa.SysExit:
		return true, nil
	case isa.SysPutInt:
		if m.cfg.Stdout != nil {
			fmt.Fprintf(m.cfg.Stdout, "%d\n", m.regs[isa.RegRV])
		}
	case isa.SysPutChar:
		if m.cfg.Stdout != nil {
			fmt.Fprintf(m.cfg.Stdout, "%c", byte(m.regs[isa.RegRV]))
		}
	case isa.SysMonStart:
		if m.cfg.Monitor != nil {
			m.cfg.Monitor.Control(isa.SysMonStart)
		}
	case isa.SysMonStop:
		if m.cfg.Monitor != nil {
			m.cfg.Monitor.Control(isa.SysMonStop)
		}
	case isa.SysMonReset:
		if m.cfg.Monitor != nil {
			m.cfg.Monitor.Control(isa.SysMonReset)
		}
	case isa.SysCycles:
		m.regs[isa.RegRV] = m.cycles
	case isa.SysRand:
		m.rand ^= m.rand << 13
		m.rand ^= m.rand >> 7
		m.rand ^= m.rand << 17
		m.regs[isa.RegRV] = int64(m.rand >> 1) // keep it non-negative
	default:
		return false, m.trap("unknown syscall %d", op)
	}
	return false, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
