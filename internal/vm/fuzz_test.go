package vm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/object"
)

// TestRandomTextNeverPanics: arbitrary words in the text segment must
// execute to a trap, an exit, or the cycle limit — never a host panic or
// a hang. This is the machine's equivalent of kernel robustness against
// jumping into garbage.
func TestRandomTextNeverPanics(t *testing.T) {
	f := func(seed int64, nRaw uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on seed %d: %v", seed, r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%64) + 1
		text := make([]isa.Word, n)
		for i := range text {
			switch rng.Intn(3) {
			case 0: // valid-ish instruction
				text[i] = isa.Instr{
					Op:  isa.Op(rng.Intn(isa.NumOps)),
					Rd:  isa.Reg(rng.Intn(isa.NumRegs)),
					Rs1: isa.Reg(rng.Intn(isa.NumRegs)),
					Rs2: isa.Reg(rng.Intn(isa.NumRegs)),
					Imm: int32(rng.Int63()),
				}.Encode()
			case 1: // raw garbage
				text[i] = isa.Word(rng.Uint64())
			default: // plausible small value
				text[i] = isa.Word(rng.Intn(1 << 16))
			}
		}
		o := &object.Object{
			Name:  "fuzz.o",
			Text:  text,
			Funcs: []object.FuncDef{{Name: "main", Offset: 0, Size: int64(n)}},
		}
		im, err := object.Link([]*object.Object{o}, object.LinkConfig{StackWords: 64})
		if err != nil {
			return true // linker rejected it; fine
		}
		m := New(im, Config{MaxCycles: 20000})
		_, _ = m.Run() // error or clean exit are both acceptable
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRandomValidProgramsTerminate: random but well-formed straight-line
// arithmetic always runs to the HALT.
func TestRandomValidProgramsTerminate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var text []isa.Word
		for i := 0; i < 100; i++ {
			ops := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd,
				isa.OpOr, isa.OpXor, isa.OpSlt, isa.OpMov, isa.OpMovI, isa.OpLea}
			op := ops[rng.Intn(len(ops))]
			text = append(text, isa.Instr{
				Op:  op,
				Rd:  isa.Reg(rng.Intn(12)), // keep off FP/SP/GP
				Rs1: isa.Reg(rng.Intn(12)),
				Rs2: isa.Reg(rng.Intn(12)),
				Imm: int32(rng.Intn(1000) - 500),
			}.Encode())
		}
		text = append(text, isa.Instr{Op: isa.OpHalt}.Encode())
		o := &object.Object{
			Name:  "straight.o",
			Text:  text,
			Funcs: []object.FuncDef{{Name: "main", Offset: 0, Size: int64(len(text))}},
		}
		im, err := object.Link([]*object.Object{o}, object.LinkConfig{})
		if err != nil {
			return false
		}
		_, err = New(im, Config{MaxCycles: 1 << 16}).Run()
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestReturnAddressesSafety: walking the FP chain from arbitrary machine
// states must never index out of bounds.
func TestReturnAddressesSafety(t *testing.T) {
	o := &object.Object{
		Name:  "w.o",
		Text:  []isa.Word{isa.Instr{Op: isa.OpHalt}.Encode()},
		Funcs: []object.FuncDef{{Name: "main", Offset: 0, Size: 1}},
	}
	im, err := object.Link([]*object.Object{o}, object.LinkConfig{StackWords: 32})
	if err != nil {
		t.Fatal(err)
	}
	f := func(fp int64, junk []int64) bool {
		m := New(im, Config{})
		copy(m.mem, junk)
		m.regs[isa.RegFP] = fp
		_ = m.ReturnAddresses(64) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
