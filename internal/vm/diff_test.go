package vm

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/object"
)

// The differential tests pin runFast to RunReference: the reference
// loop is the specification, and any program — including garbage text —
// must produce the same Result, the same error, the same output bytes,
// and the same Monitor event stream on both loops. The workload-level
// counterpart (whole programs, byte-identical gmon encodings) lives in
// the repo root's difftest_test.go; this file covers the random corner
// cases those curated programs never reach.

// randImage builds the same kind of image as the fuzz corpus: a mix of
// well-formed instructions, raw garbage words, and small plausible
// values. Returns nil when the linker rejects the text.
func randImage(seed int64, nRaw uint8) *object.Image {
	rng := rand.New(rand.NewSource(seed))
	n := int(nRaw%64) + 1
	text := make([]isa.Word, n)
	for i := range text {
		switch rng.Intn(3) {
		case 0: // valid-ish instruction
			text[i] = isa.Instr{
				Op:  isa.Op(rng.Intn(isa.NumOps)),
				Rd:  isa.Reg(rng.Intn(isa.NumRegs)),
				Rs1: isa.Reg(rng.Intn(isa.NumRegs)),
				Rs2: isa.Reg(rng.Intn(isa.NumRegs)),
				Imm: int32(rng.Int63()),
			}.Encode()
		case 1: // raw garbage
			text[i] = isa.Word(rng.Uint64())
		default: // plausible small value
			text[i] = isa.Word(rng.Intn(1 << 16))
		}
	}
	o := &object.Object{
		Name:  "diff.o",
		Text:  text,
		Funcs: []object.FuncDef{{Name: "main", Offset: 0, Size: int64(n)}},
	}
	im, err := object.Link([]*object.Object{o}, object.LinkConfig{StackWords: 64})
	if err != nil {
		return nil
	}
	return im
}

// outcome captures everything observable about one execution.
type outcome struct {
	res     Result
	err     string
	out     string
	arcs    [][2]int64
	ticks   []int64
	control []int
}

func observe(im *object.Image, seed int64, reference bool) outcome {
	var buf bytes.Buffer
	fm := &fakeMonitor{cost: 9}
	m := New(im, Config{
		MaxCycles:  20000,
		TickCycles: 64,
		Monitor:    fm,
		Stdout:     &buf,
		RandSeed:   uint64(seed),
	})
	var (
		res Result
		err error
	)
	if reference {
		res, err = m.RunReference()
	} else {
		res, err = m.Run()
	}
	o := outcome{res: res, out: buf.String(),
		arcs: fm.arcs, ticks: fm.ticks, control: fm.control}
	if err != nil {
		o.err = err.Error()
	}
	return o
}

// TestFastMatchesReferenceRandom drives both loops over the fuzz-corpus
// program distribution and requires identical observable behaviour —
// trap messages carry the PC and cycle count, so string equality pins
// trap sites exactly.
func TestFastMatchesReferenceRandom(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		im := randImage(seed, nRaw)
		if im == nil {
			return true
		}
		fast := observe(im, seed, false)
		ref := observe(im, seed, true)
		if !reflect.DeepEqual(fast, ref) {
			t.Logf("seed %d len %d:\nfast: %+v\nref:  %+v", seed, nRaw, fast, ref)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestResetEquivalence: a machine Reset between runs must behave exactly
// like a brand-new machine, on both loops, including the PRNG state.
func TestResetEquivalence(t *testing.T) {
	src := `
.func main
	MOVI R2, 100
loop:
	BEQZ R2, done
	PUSH R2
	CALL child
	POP R2
	LEA R2, R2, -1
	JMP loop
done:
	SYS 7
	MOV R5, R0
	MOVI R0, 0
	RET
.end
.func child
	MCOUNT
	LD R1, [SP+1]
	ADD R0, R1, R1
	RET
.end
`
	im := link(t, src)
	for _, ref := range []bool{false, true} {
		runOnce := func(m *Machine) Result {
			t.Helper()
			var (
				res Result
				err error
			)
			if ref {
				res, err = m.RunReference()
			} else {
				res, err = m.Run()
			}
			if err != nil {
				t.Fatalf("run (ref=%v): %v", ref, err)
			}
			return res
		}
		cfg := Config{Monitor: &fakeMonitor{cost: 3}, TickCycles: 50, RandSeed: 11}
		reused := New(im, cfg)
		first := runOnce(reused)
		reused.Reset()
		second := runOnce(reused)
		fresh := runOnce(New(im, cfg))
		if first != second {
			t.Errorf("ref=%v: reset run %+v != first run %+v", ref, second, first)
		}
		if first != fresh {
			t.Errorf("ref=%v: fresh machine %+v != first run %+v", ref, fresh, first)
		}
	}
}
