package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// Encode writes the profile as indented JSON under the versioned
// schema (docs/FORMATS.md). The encoding is deterministic: field order
// is struct order and every slice has a fixed order, so two encodings
// of the same analysis are byte-identical — golden tests and diffs can
// compare files directly.
func Encode(w io.Writer, p *Profile) error {
	if p.Schema == "" {
		return fmt.Errorf("model: refusing to encode a profile without a schema tag")
	}
	buf, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// Decode reads a JSON profile and validates its schema tag and
// internal consistency. It accepts the schemas this package writes —
// v1, and v2 for profiles carrying a stacks view; unknown versions are
// rejected loudly rather than misread.
func Decode(r io.Reader) (*Profile, error) {
	var p Profile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("model: decode: %w", err)
	}
	if p.Schema != Schema && p.Schema != SchemaV2 {
		return nil, fmt.Errorf("model: unsupported profile schema %q (want %q or %q)", p.Schema, Schema, SchemaV2)
	}
	if p.Schema == Schema && p.Stacks != nil {
		return nil, fmt.Errorf("model: schema %q cannot carry a stacks view (that is %q)", Schema, SchemaV2)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Reindex()
	return &p, nil
}

// Validate checks the referential integrity a renderer or differ
// relies on: arcs point at known routines, cycle members exist, and
// the clock rate is usable.
func (p *Profile) Validate() error {
	if p.Hz <= 0 {
		return fmt.Errorf("model: non-positive clock rate %d", p.Hz)
	}
	names := make(map[string]bool, len(p.Routines))
	for i := range p.Routines {
		n := p.Routines[i].Name
		if n == "" {
			return fmt.Errorf("model: routine %d has an empty name", i)
		}
		if names[n] {
			return fmt.Errorf("model: duplicate routine %q", n)
		}
		names[n] = true
	}
	numbers := make(map[int]bool, len(p.Cycles))
	for i := range p.Cycles {
		c := &p.Cycles[i]
		if numbers[c.Number] {
			return fmt.Errorf("model: duplicate cycle number %d", c.Number)
		}
		numbers[c.Number] = true
		for _, m := range c.Members {
			if !names[m] {
				return fmt.Errorf("model: cycle %d member %q is not a routine", c.Number, m)
			}
		}
	}
	for i := range p.Arcs {
		a := &p.Arcs[i]
		if a.To == "" || !names[a.To] {
			return fmt.Errorf("model: arc %d callee %q is not a routine", i, a.To)
		}
		if a.From != "" && !names[a.From] {
			return fmt.Errorf("model: arc %d caller %q is not a routine", i, a.From)
		}
	}
	for _, f := range p.Flat {
		if !names[f.Name] {
			return fmt.Errorf("model: flat row %q is not a routine", f.Name)
		}
	}
	for _, n := range p.NeverCalled {
		if !names[n] {
			return fmt.Errorf("model: never-called %q is not a routine", n)
		}
	}
	if p.Stacks != nil {
		if err := p.Stacks.validate(); err != nil {
			return err
		}
	}
	return nil
}
