package model

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/callgraph"
	"repro/internal/propagate"
	"repro/internal/scc"
)

// testGraph builds a small analyzed graph with a cycle, a spontaneous
// arc, a static arc, and a never-called routine — every feature the
// model must carry.
func testGraph() *callgraph.Graph {
	g := callgraph.New()
	g.Hz = 1
	g.AddArc("", "main", 1)
	g.AddArc("main", "a", 4)
	g.AddArc("a", "b", 6)
	g.AddArc("b", "a", 2)
	g.AddArc("a", "a", 3)
	st := g.AddArc("main", "ghost", 0)
	st.Static = true
	g.AddNode("unused")
	g.MustNode("main").SelfTicks = 1
	g.MustNode("a").SelfTicks = 5
	g.MustNode("b").SelfTicks = 4
	g.TotalTicks = 10
	scc.Analyze(g)
	propagate.Run(g)
	return g
}

func build(t *testing.T) *Profile {
	t.Helper()
	return Build(testGraph())
}

func TestBuildInvariants(t *testing.T) {
	p := build(t)
	if p.Schema != Schema {
		t.Errorf("Schema = %q, want %q", p.Schema, Schema)
	}
	if p.Hz <= 0 {
		t.Errorf("Hz = %d, want > 0", p.Hz)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("built profile invalid: %v", err)
	}
	// Every routine (even never-called) is present and indexed.
	for _, name := range []string{"main", "a", "b", "ghost", "unused"} {
		r, ok := p.Routine(name)
		if !ok {
			t.Fatalf("routine %q missing", name)
		}
		if r.Index <= 0 {
			t.Errorf("routine %q unindexed", name)
		}
	}
	// a and b form the cycle.
	a, _ := p.Routine("a")
	b, _ := p.Routine("b")
	if a.Cycle == 0 || a.Cycle != b.Cycle {
		t.Errorf("a.Cycle=%d b.Cycle=%d, want same non-zero", a.Cycle, b.Cycle)
	}
	c, ok := p.CycleByNumber(a.Cycle)
	if !ok || len(c.Members) != 2 {
		t.Fatalf("cycle %d missing or wrong members: %+v", a.Cycle, c)
	}
	// Self-recursion split: a's 3 self-calls are not in Calls.
	if a.SelfCalls != 3 {
		t.Errorf("a.SelfCalls = %d, want 3", a.SelfCalls)
	}
	// Never-called routines are listed alphabetically: ghost is only the
	// target of a never-traversed static arc, so it too never ran.
	if len(p.NeverCalled) != 2 || p.NeverCalled[0] != "ghost" || p.NeverCalled[1] != "unused" {
		t.Errorf("NeverCalled = %v, want [ghost unused]", p.NeverCalled)
	}
	// Flat rows are sorted by decreasing self time.
	for i := 1; i < len(p.Flat); i++ {
		if p.Flat[i].SelfSeconds > p.Flat[i-1].SelfSeconds {
			t.Errorf("flat rows unsorted at %d", i)
		}
	}
	// Arcs: the spontaneous one has no From, the static one is marked.
	var sawSpont, sawStatic bool
	for i := range p.Arcs {
		a := &p.Arcs[i]
		if a.Spontaneous() {
			sawSpont = true
		}
		if a.Static {
			sawStatic = true
			if a.Count != 0 {
				t.Errorf("static arc has count %d", a.Count)
			}
		}
	}
	if !sawSpont || !sawStatic {
		t.Errorf("arc features lost: spontaneous=%v static=%v", sawSpont, sawStatic)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := build(t)
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	first := buf.String()
	q, err := Decode(strings.NewReader(first))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	// Re-encoding the decoded profile reproduces the bytes exactly:
	// the encoding is deterministic and nothing is lost in transit.
	var buf2 bytes.Buffer
	if err := Encode(&buf2, q); err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if buf2.String() != first {
		t.Error("encode -> decode -> encode is not byte-identical")
	}
}

func TestEncodeRejectsMissingSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, &Profile{Hz: 1}); err == nil {
		t.Error("Encode accepted a profile without a schema tag")
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"not json", "nope"},
		{"wrong schema", `{"schema":"gprof.profile.v999","hz":1,"total_ticks":0,"total_seconds":0,"routines":[]}`},
		{"no hz", `{"schema":"` + Schema + `","total_ticks":0,"total_seconds":0,"routines":[]}`},
		{"dup routine", `{"schema":"` + Schema + `","hz":1,"total_ticks":0,"total_seconds":0,"routines":[{"name":"x","self_ticks":0,"descendant_ticks":0,"self_seconds":0,"descendant_seconds":0,"calls":0},{"name":"x","self_ticks":0,"descendant_ticks":0,"self_seconds":0,"descendant_seconds":0,"calls":0}]}`},
		{"arc to nowhere", `{"schema":"` + Schema + `","hz":1,"total_ticks":0,"total_seconds":0,"routines":[],"arcs":[{"to":"gone","count":1,"prop_self_ticks":0,"prop_child_ticks":0}]}`},
		{"cycle member missing", `{"schema":"` + Schema + `","hz":1,"total_ticks":0,"total_seconds":0,"routines":[],"cycles":[{"number":1,"members":["gone"],"self_ticks":0,"descendant_ticks":0,"external_calls":0,"internal_calls":0}]}`},
	}
	for _, tc := range cases {
		if _, err := Decode(strings.NewReader(tc.json)); err == nil {
			t.Errorf("%s: Decode accepted invalid input", tc.name)
		}
	}
}

func TestDiff(t *testing.T) {
	old := build(t)

	// Same workload, "slower": scale a's self time up and drop main's
	// calls to a, add a brand-new routine, remove ghost.
	g := callgraph.New()
	g.Hz = 1
	g.AddArc("", "main", 1)
	g.AddArc("main", "a", 2)
	g.AddArc("a", "b", 6)
	g.AddArc("b", "a", 2)
	g.AddArc("main", "fresh", 5)
	g.MustNode("main").SelfTicks = 1
	g.MustNode("a").SelfTicks = 9
	g.MustNode("b").SelfTicks = 4
	g.MustNode("fresh").SelfTicks = 2
	g.TotalTicks = 16
	scc.Analyze(g)
	propagate.Run(g)
	new := Build(g)

	deltas := Diff(old, new)
	byName := make(map[string]*Delta)
	for i := range deltas {
		byName[deltas[i].Name] = &deltas[i]
	}

	// a: self 5 -> 9.
	a := byName["a"]
	if a == nil || !a.InOld || !a.InNew {
		t.Fatalf("a delta wrong: %+v", a)
	}
	if a.DSelf() != 4 {
		t.Errorf("a DSelf = %v, want 4", a.DSelf())
	}
	// a's calls: old 4(main)+2(b)+3(self)=9; new 2+2=4.
	if a.DCalls() != 4-9 {
		t.Errorf("a DCalls = %v, want -5", a.DCalls())
	}
	// fresh is added, ghost (static-only, dead in both) is omitted,
	// unused (dead in both) is omitted.
	f := byName["fresh"]
	if f == nil || f.InOld || !f.InNew {
		t.Fatalf("fresh delta wrong: %+v", f)
	}
	if byName["ghost"] != nil || byName["unused"] != nil {
		t.Error("dead-in-both routines appear in the diff")
	}
	// Sorted by decreasing total-time regression.
	for i := 1; i < len(deltas); i++ {
		if deltas[i].DTotal() > deltas[i-1].DTotal() {
			t.Errorf("deltas unsorted at %d: %v after %v", i, deltas[i].DTotal(), deltas[i-1].DTotal())
		}
	}
	// Identical profiles produce no changed rows.
	for _, d := range Diff(old, old) {
		if d.Changed() {
			t.Errorf("self-diff reports change: %+v", d)
		}
	}
}
