// The Stacks view: the context-sensitive half of the model, built from
// whole-call-stack samples rather than the arc table. Where the arc
// view *estimates* a routine's total time by distributing callees'
// time to callers in proportion to call counts (§3.2's equal-cost
// assumption), the stack view *measures* it: a routine's inclusive
// ticks are the samples with the routine anywhere on the stack,
// counted once per sample even under recursion — exact up to sampling
// error. Per-call-path nodes additionally split time by full calling
// context, the data flame graphs and pprof consume.
package model

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/gmon"
)

// ErrNoStacks is the sentinel renderers wrap when they need the stacks
// view and the profile carries none — callers (gprofd) match it with
// errors.Is to distinguish "no stack data" from real failures.
var ErrNoStacks = errors.New("profile has no stack samples (collect with stacks enabled)")

// SchemaV2 identifies the JSON encoding of a Profile carrying a Stacks
// view. Profiles without stacks still encode as Schema (v1), so every
// pre-stack consumer and golden file sees unchanged bytes; Decode
// accepts both.
const SchemaV2 = "gprof.profile.v2"

// ResolveFunc maps a sampled program counter to a routine name. The
// model resolves raw stack PCs at build time (collectors record
// addresses only), so any symbol source works — core wraps
// symtab.Table, tests wrap maps.
type ResolveFunc func(pc int64) (string, bool)

// StackView is the context-sensitive profile built by BuildStacks.
type StackView struct {
	// Samples is the number of whole-stack samples observed (the sum of
	// interned counts), including samples whose leaf could not be
	// resolved to a routine.
	Samples int64 `json:"samples"`
	// Truncated counts walk artifacts per sample: an unresolvable leaf
	// or mid-walk frame (prologue skid), and walks that filled the
	// collector's depth bound. A sample can contribute more than once,
	// matching the legacy stacksample accounting.
	Truncated int64 `json:"truncated,omitempty"`
	// Nodes is the call-path tree in depth-first preorder, children
	// sorted by name; parents precede children. Node 0 onward are roots
	// and their subtrees.
	Nodes []StackNode `json:"nodes,omitempty"`
	// Routines is the per-routine rollup, sorted by decreasing
	// inclusive ticks, ties by name.
	Routines []StackRoutine `json:"routines,omitempty"`
}

// StackNode is one call path: the routine named Name reached through
// the chain of ancestor nodes.
type StackNode struct {
	Name string `json:"name"`
	// Parent is the index of the caller's node in Nodes, -1 for roots.
	Parent int `json:"parent"`
	// SelfTicks counts samples whose resolved stack is exactly this
	// path; InclusiveTicks counts samples whose stack has this path as
	// a prefix (so a parent's inclusive is the sum of its self and its
	// children's inclusive).
	SelfTicks      int64 `json:"self_ticks"`
	InclusiveTicks int64 `json:"inclusive_ticks"`
}

// StackRoutine is one routine's measured times across all contexts.
type StackRoutine struct {
	Name string `json:"name"`
	// SelfTicks counts samples whose innermost resolved frame is the
	// routine; InclusiveTicks counts samples with the routine anywhere
	// on the stack, once per sample even when it appears in several
	// frames (recursion) — the measured total the arc view estimates.
	SelfTicks      int64 `json:"self_ticks"`
	InclusiveTicks int64 `json:"inclusive_ticks"`
}

// Routine returns the named routine's rollup row, if present.
func (v *StackView) Routine(name string) (StackRoutine, bool) {
	for _, r := range v.Routines {
		if r.Name == name {
			return r, true
		}
	}
	return StackRoutine{}, false
}

// InclusiveFraction returns the routine's measured inclusive time as a
// fraction of all samples — the ground-truth number E8 compares the
// arc view's estimate against.
func (v *StackView) InclusiveFraction(name string) float64 {
	if v == nil || v.Samples == 0 {
		return 0
	}
	r, ok := v.Routine(name)
	if !ok {
		return 0
	}
	return float64(r.InclusiveTicks) / float64(v.Samples)
}

// stackTreeNode is the mutable build-time shape of a StackNode.
type stackTreeNode struct {
	name     string
	parent   int
	self     int64
	incl     int64
	children map[string]int
}

// stackAccum condenses resolved, leaf-first name stacks into a
// StackView — the tree-and-rollup core shared by BuildStacks (which
// resolves raw PCs first) and StacksFromFrames (whose callers, like the
// gprofd self-profiler, already have names).
type stackAccum struct {
	view     *StackView
	routines map[string]*stackRollup
	tree     []stackTreeNode
	roots    map[string]int
	seen     map[string]bool
}

type stackRollup struct{ self, incl int64 }

func newStackAccum() *stackAccum {
	return &stackAccum{
		view:     &StackView{},
		routines: make(map[string]*stackRollup),
		roots:    map[string]int{},
		seen:     make(map[string]bool, 16),
	}
}

// add folds one resolved stack (leaf first, non-empty) observed count
// times into the tree and the per-routine rollup. The caller accounts
// Samples and Truncated itself.
func (a *stackAccum) add(names []string, count int64) {
	// Per-routine rollup: self for the leaf, inclusive once per
	// distinct name on the stack.
	clear(a.seen)
	for _, n := range names {
		if a.seen[n] {
			continue
		}
		a.seen[n] = true
		r := a.routines[n]
		if r == nil {
			r = &stackRollup{}
			a.routines[n] = r
		}
		r.incl += count
	}
	a.routines[names[0]].self += count
	// Path tree: walk root-first, creating nodes as needed.
	parent := -1
	node := -1
	for i := len(names) - 1; i >= 0; i-- {
		n := names[i]
		var m map[string]int
		if parent < 0 {
			m = a.roots
		} else {
			if a.tree[parent].children == nil {
				a.tree[parent].children = map[string]int{}
			}
			m = a.tree[parent].children
		}
		idx, ok := m[n]
		if !ok {
			idx = len(a.tree)
			a.tree = append(a.tree, stackTreeNode{name: n, parent: parent})
			m[n] = idx
		}
		a.tree[idx].incl += count
		parent, node = idx, idx
	}
	a.tree[node].self += count
}

// finish flattens the tree in DFS preorder with name-sorted children
// (remapping parent indices to the output order), sorts the routine
// rollup, and returns the view.
func (a *stackAccum) finish() *StackView {
	v := a.view
	v.Nodes = make([]StackNode, 0, len(a.tree))
	remap := make([]int, len(a.tree))
	var emit func(m map[string]int, parent int)
	emit = func(m map[string]int, parent int) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			idx := m[k]
			out := len(v.Nodes)
			remap[idx] = out
			t := &a.tree[idx]
			v.Nodes = append(v.Nodes, StackNode{
				Name: t.name, Parent: parent,
				SelfTicks: t.self, InclusiveTicks: t.incl,
			})
			emit(t.children, out)
		}
	}
	emit(a.roots, -1)
	v.Routines = make([]StackRoutine, 0, len(a.routines))
	for n, r := range a.routines {
		v.Routines = append(v.Routines, StackRoutine{Name: n, SelfTicks: r.self, InclusiveTicks: r.incl})
	}
	sort.Slice(v.Routines, func(i, j int) bool {
		if v.Routines[i].InclusiveTicks != v.Routines[j].InclusiveTicks {
			return v.Routines[i].InclusiveTicks > v.Routines[j].InclusiveTicks
		}
		return v.Routines[i].Name < v.Routines[j].Name
	})
	return v
}

// FrameSample is one whole-stack sample whose frames are already
// resolved to routine names, leaf first — the shape a decoded pprof
// profile (internal/pprofenc) yields.
type FrameSample struct {
	Frames []string
	Count  int64
}

// StacksFromFrames builds the context-sensitive view from name-resolved
// samples, with the same determinism guarantees as BuildStacks. Samples
// with a non-positive count are ignored. An empty frame name truncates
// the path the way an unresolvable PC does in BuildStacks: an empty
// leaf drops the sample into Samples+Truncated only, an empty outer
// frame cuts the path there and counts the sample as truncated.
func StacksFromFrames(samples []FrameSample) *StackView {
	a := newStackAccum()
	names := make([]string, 0, 16)
	for i := range samples {
		s := &samples[i]
		if s.Count <= 0 {
			continue
		}
		a.view.Samples += s.Count
		if len(s.Frames) == 0 || s.Frames[0] == "" {
			a.view.Truncated += s.Count
			continue
		}
		names = names[:0]
		truncated := false
		for _, f := range s.Frames {
			if f == "" {
				truncated = true
				break
			}
			names = append(names, f)
		}
		if truncated {
			a.view.Truncated += s.Count
		}
		a.add(names, s.Count)
	}
	return a.finish()
}

// BuildStacks condenses raw interned stack samples into the
// context-sensitive view. PCs resolve the way the legacy stacksample
// walker resolved them: the leaf at its own address, every outer frame
// at its return address minus one (the call site). A sample whose leaf
// does not resolve contributes only to Samples and Truncated; an
// unresolvable mid-walk frame truncates the path there (the resolved
// prefix still counts). maxDepth, when positive, is the collector's
// walk bound: a sample holding exactly maxDepth return addresses also
// counts as truncated, since deeper frames may have been cut off.
//
// The result is deterministic for a given sample multiset: the node
// tree orders children by name in depth-first preorder, and the
// routine rollup sorts by decreasing inclusive ticks, ties by name.
func BuildStacks(stacks []gmon.StackSample, resolve ResolveFunc, maxDepth int) *StackView {
	if resolve == nil || len(stacks) == 0 {
		v := &StackView{}
		for i := range stacks {
			v.Samples += stacks[i].Count
		}
		return v
	}
	a := newStackAccum()
	v := a.view
	names := make([]string, 0, 16)
	for i := range stacks {
		s := &stacks[i]
		c := s.Count
		v.Samples += c
		// Resolve leaf-first, reproducing the legacy walk accounting.
		names = names[:0]
		leaf, ok := resolve(s.PCs[0])
		if !ok {
			v.Truncated += c
			continue
		}
		names = append(names, leaf)
		truncatedWalk := false
		for _, ra := range s.PCs[1:] {
			fn, ok := resolve(ra - 1) // ra points after the CALL
			if !ok {
				truncatedWalk = true
				break
			}
			names = append(names, fn)
		}
		if truncatedWalk {
			v.Truncated += c
		}
		if maxDepth > 0 && len(s.PCs)-1 == maxDepth {
			v.Truncated += c
		}
		a.add(names, c)
	}
	return a.finish()
}

// validateStacks checks the view's internal consistency as part of
// Profile.Validate.
func (v *StackView) validate() error {
	if v.Samples < 0 || v.Truncated < 0 {
		return fmt.Errorf("model: stacks view has negative sample counts")
	}
	for i := range v.Nodes {
		n := &v.Nodes[i]
		if n.Name == "" {
			return fmt.Errorf("model: stack node %d has an empty name", i)
		}
		// Preorder means parents precede children.
		if n.Parent >= i || n.Parent < -1 {
			return fmt.Errorf("model: stack node %d has invalid parent %d", i, n.Parent)
		}
		if n.SelfTicks < 0 || n.InclusiveTicks < n.SelfTicks {
			return fmt.Errorf("model: stack node %d (%s) has inconsistent ticks (self %d, inclusive %d)",
				i, n.Name, n.SelfTicks, n.InclusiveTicks)
		}
	}
	seen := make(map[string]bool, len(v.Routines))
	for i := range v.Routines {
		r := &v.Routines[i]
		if r.Name == "" {
			return fmt.Errorf("model: stack routine %d has an empty name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("model: duplicate stack routine %q", r.Name)
		}
		seen[r.Name] = true
		if r.SelfTicks < 0 || r.InclusiveTicks < r.SelfTicks || r.InclusiveTicks > v.Samples {
			return fmt.Errorf("model: stack routine %q has inconsistent ticks (self %d, inclusive %d, samples %d)",
				r.Name, r.SelfTicks, r.InclusiveTicks, v.Samples)
		}
	}
	return nil
}
