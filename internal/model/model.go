// Package model is the serializable profile IR between analysis and
// presentation. The paper splits gprof into data gathering (§3),
// post-processing (§4), and presentation (§5); this package is the
// typed boundary between the last two: Build condenses an analyzed
// callgraph.Graph (after cycle discovery and time propagation) into a
// plain-data Profile, and every renderer in internal/report consumes
// only the Profile.
//
// The Profile is JSON-serializable under a stable, versioned schema
// (`gprof -json`, docs/FORMATS.md), which makes profiles machine
// readable and comparable across runs: Diff computes per-routine deltas
// between two profiles, the workflow behind cmd/profdiff.
//
// Times appear twice: in ticks (the exact analysis output — float64
// because coarse-granularity histogram attribution splits ticks
// fractionally) and in seconds (ticks / Hz, for human consumers). The
// tick fields are normative; renderers derive every printed number from
// ticks and Hz exactly as the pre-model renderers derived them from the
// graph, which is what keeps text output byte-identical.
package model

// Schema identifies the JSON encoding of a Profile. Consumers must
// reject other values; producers bump the suffix when the shape
// changes incompatibly.
const Schema = "gprof.profile.v1"

// Profile is one analyzed execution profile, ready to render, encode,
// or diff. All slices are in deterministic orders fixed by Build (see
// each field); two analyses of the same data produce identical
// Profiles.
type Profile struct {
	// Schema is the encoding version tag, always the package constant
	// Schema for profiles produced by this code.
	Schema string `json:"schema"`
	// Hz is the effective clock rate: seconds = ticks / Hz.
	Hz int64 `json:"hz"`
	// TotalTicks is the histogram's total tick count, including ticks
	// that fell outside every routine.
	TotalTicks float64 `json:"total_ticks"`
	// LostTicks is the portion of TotalTicks not attributable to any
	// routine (rendered as "<outside any routine>").
	LostTicks float64 `json:"lost_ticks,omitempty"`
	// TotalSeconds is TotalTicks / Hz.
	TotalSeconds float64 `json:"total_seconds"`

	// Routines lists every routine (including never-called ones), in
	// the graph's node order: address order for image-built graphs.
	Routines []Routine `json:"routines"`
	// Cycles lists the multi-member strongly-connected components in
	// discovery order.
	Cycles []Cycle `json:"cycles,omitempty"`
	// Arcs lists every call-graph arc exactly once, grouped by callee
	// in routine order with each callee's incoming arcs in insertion
	// order. Renderers rely on this order: it reproduces the listing's
	// tie-breaking exactly.
	Arcs []Arc `json:"arcs,omitempty"`

	// Flat is the flat profile (§5.1): one row per exercised routine,
	// sorted by decreasing self time.
	Flat []FlatRow `json:"flat,omitempty"`
	// NeverCalled lists routines with no calls and no samples,
	// alphabetically — §5.1's "to verify that nothing important is
	// omitted by this execution".
	NeverCalled []string `json:"never_called,omitempty"`

	// Stacks is the context-sensitive view built from whole-stack
	// samples (BuildStacks), present only when the profile data carried
	// stacks. A profile with this view encodes under SchemaV2; without
	// it the encoding is byte-identical to the v1 schema.
	Stacks *StackView `json:"stacks,omitempty"`

	// Derived lookup tables; see Reindex.
	byName   map[string]*Routine
	byNumber map[int]*Cycle
}

// Routine is one routine's analyzed numbers.
type Routine struct {
	Name string `json:"name"`
	// Index is the entry number in the call-graph profile listing
	// (1-based; every routine gets one).
	Index int `json:"index,omitempty"`
	// Cycle is the Number of the cycle containing this routine, 0 when
	// it is not a member of a multi-routine cycle.
	Cycle int `json:"cycle,omitempty"`
	// SelfTicks is the routine's own sampled time; ChildTicks the time
	// propagated from its descendants.
	SelfTicks  float64 `json:"self_ticks"`
	ChildTicks float64 `json:"descendant_ticks"`
	// SelfSeconds and ChildSeconds are the tick fields over Hz.
	SelfSeconds  float64 `json:"self_seconds"`
	ChildSeconds float64 `json:"descendant_seconds"`
	// Calls counts incoming non-recursive calls; SelfCalls the
	// self-recursive ones (§5.2's "called+self" split).
	Calls     int64 `json:"calls"`
	SelfCalls int64 `json:"self_calls,omitempty"`
}

// TotalTicks returns self plus propagated descendant ticks.
func (r *Routine) TotalTicks() float64 { return r.SelfTicks + r.ChildTicks }

// TotalSeconds returns self plus descendant seconds.
func (r *Routine) TotalSeconds() float64 { return r.SelfSeconds + r.ChildSeconds }

// InCycle reports whether the routine belongs to a multi-member cycle.
func (r *Routine) InCycle() bool { return r.Cycle != 0 }

// Cycle is a collapsed strongly-connected component with more than one
// member (§4).
type Cycle struct {
	// Number is the 1-based cycle number, for "<cycle N>" display.
	Number int `json:"number"`
	// Index is the cycle-as-a-whole entry number in the listing.
	Index int `json:"index,omitempty"`
	// Members lists member routine names in discovery order.
	Members []string `json:"members"`
	// SelfTicks sums the members' self time; ChildTicks is the
	// descendant time propagated into the cycle as a whole.
	SelfTicks  float64 `json:"self_ticks"`
	ChildTicks float64 `json:"descendant_ticks"`
	// ExternalCalls counts calls into the cycle from outside it;
	// InternalCalls the calls among members (excluding self-recursion).
	ExternalCalls int64 `json:"external_calls"`
	InternalCalls int64 `json:"internal_calls"`
}

// TotalTicks returns the cycle's self plus descendant ticks.
func (c *Cycle) TotalTicks() float64 { return c.SelfTicks + c.ChildTicks }

// Arc is one caller→callee edge with its traversal count and the time
// it propagates.
type Arc struct {
	// From is the caller name; empty marks a spontaneous arc (caller
	// unidentifiable, §3.1).
	From string `json:"from,omitempty"`
	To   string `json:"to"`
	// Count is the traversal count; TotalCalls the denominator the
	// listing shows in its calls/total column: all calls into the
	// callee (or into the callee's whole cycle).
	Count      int64 `json:"count"`
	TotalCalls int64 `json:"total_calls,omitempty"`
	// Sites is the number of distinct call sites merged into this arc.
	Sites int `json:"sites,omitempty"`
	// Static marks arcs found only in the static call graph; their
	// Count is zero and they propagate no time (§4).
	Static bool `json:"static,omitempty"`
	// PropSelfTicks and PropChildTicks are the portions of the callee's
	// self and descendant time propagated along this arc to the caller.
	PropSelfTicks  float64 `json:"prop_self_ticks"`
	PropChildTicks float64 `json:"prop_child_ticks"`
}

// Spontaneous reports whether the arc's caller is unidentifiable.
func (a *Arc) Spontaneous() bool { return a.From == "" }

// Self reports whether the arc is self-recursive.
func (a *Arc) Self() bool { return a.From != "" && a.From == a.To }

// FlatRow is one row of the flat profile, in presentation order
// (decreasing self time; ties by calls, then name).
type FlatRow struct {
	Name string `json:"name"`
	// Cycle mirrors the routine's cycle number for the "<cycleN>" tag.
	Cycle int `json:"cycle,omitempty"`
	// Percent is the routine's share of total sampled time.
	Percent float64 `json:"percent"`
	// CumulativeSeconds is the running sum of SelfSeconds down the
	// unfiltered table.
	CumulativeSeconds float64 `json:"cumulative_seconds"`
	SelfSeconds       float64 `json:"self_seconds"`
	// Calls counts all calls, including self-recursive ones.
	Calls int64 `json:"calls"`
	// SelfMsPerCall and TotalMsPerCall are the §2 averages; meaningful
	// only when Calls > 0, and TotalMsPerCall only outside cycles.
	SelfMsPerCall  float64 `json:"self_ms_per_call,omitempty"`
	TotalMsPerCall float64 `json:"total_ms_per_call,omitempty"`
}

// Seconds converts ticks to seconds at the profile's clock rate.
func (p *Profile) Seconds(ticks float64) float64 { return ticks / float64(p.Hz) }

// Percent returns ticks as a percentage of the total run.
func (p *Profile) Percent(ticks float64) float64 {
	if p.TotalTicks <= 0 {
		return 0
	}
	return 100 * ticks / p.TotalTicks
}

// Routine returns the named routine, if present. The lookup map is
// built lazily by Build and Decode; a Profile assembled by hand can
// call Reindex to (re)build it.
func (p *Profile) Routine(name string) (*Routine, bool) {
	if p.byName == nil {
		p.Reindex()
	}
	r, ok := p.byName[name]
	return r, ok
}

// CycleByNumber returns the numbered cycle, if present.
func (p *Profile) CycleByNumber(n int) (*Cycle, bool) {
	if n == 0 {
		return nil, false
	}
	if p.byNumber == nil {
		p.Reindex()
	}
	c, ok := p.byNumber[n]
	return c, ok
}

// Reindex rebuilds the derived lookup tables after direct mutation of
// Routines or Cycles.
func (p *Profile) Reindex() {
	p.byName = make(map[string]*Routine, len(p.Routines))
	for i := range p.Routines {
		p.byName[p.Routines[i].Name] = &p.Routines[i]
	}
	p.byNumber = make(map[int]*Cycle, len(p.Cycles))
	for i := range p.Cycles {
		p.byNumber[p.Cycles[i].Number] = &p.Cycles[i]
	}
}
