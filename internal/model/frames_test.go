package model

import (
	"reflect"
	"testing"
)

// TestStacksFromFrames pins the name-resolved builder against the same
// invariants BuildStacks guarantees: deterministic preorder tree,
// recursion counted once per sample, truncation accounting for empty
// frames.
func TestStacksFromFrames(t *testing.T) {
	samples := []FrameSample{
		{Frames: []string{"leafA", "mid", "main"}, Count: 3},
		{Frames: []string{"leafB", "mid", "main"}, Count: 2},
		{Frames: []string{"mid", "main"}, Count: 1},
		{Frames: []string{"rec", "rec", "main"}, Count: 4}, // recursion
		{Frames: []string{"", "main"}, Count: 5},           // empty leaf: dropped
		{Frames: []string{"leafA", "", "main"}, Count: 1},  // truncated mid-frame
		{Frames: nil, Count: 2},                            // no frames at all
		{Frames: []string{"ignored"}, Count: 0},            // non-positive count
	}
	v := StacksFromFrames(samples)
	if v.Samples != 18 {
		t.Errorf("Samples = %d, want 18", v.Samples)
	}
	if v.Truncated != 8 {
		t.Errorf("Truncated = %d, want 8 (5 empty leaf + 1 cut + 2 frameless)", v.Truncated)
	}
	if r, ok := v.Routine("rec"); !ok || r.InclusiveTicks != 4 || r.SelfTicks != 4 {
		t.Errorf("rec rollup = %+v, want incl 4 self 4 (recursion counted once)", r)
	}
	if r, ok := v.Routine("main"); !ok || r.InclusiveTicks != 10 {
		t.Errorf("main rollup = %+v, want incl 10", r)
	}
	if r, ok := v.Routine("mid"); !ok || r.InclusiveTicks != 6 || r.SelfTicks != 1 {
		t.Errorf("mid rollup = %+v, want incl 6 self 1", r)
	}
	// The view must pass the same validation Profile.Validate applies.
	if err := v.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	// Determinism: same multiset in a different order builds the same view.
	shuffled := []FrameSample{samples[3], samples[1], samples[0], samples[2],
		samples[5], samples[4], samples[6]}
	v2 := StacksFromFrames(shuffled)
	if !reflect.DeepEqual(v, v2) {
		t.Error("StacksFromFrames is order-sensitive")
	}
	// A truncated path still contributes its resolved prefix: the
	// single-frame "leafA" root from the cut sample.
	root := false
	for _, n := range v.Nodes {
		if n.Parent == -1 && n.Name == "leafA" && n.InclusiveTicks == 1 {
			root = true
		}
	}
	if !root {
		t.Error("truncated sample's resolved prefix missing from tree")
	}
	// Parents precede children and inclusive >= children sums.
	for i, n := range v.Nodes {
		if n.Parent >= i {
			t.Fatalf("node %d parent %d not preorder", i, n.Parent)
		}
	}
}

// TestStacksFromFramesEmpty covers the degenerate inputs.
func TestStacksFromFramesEmpty(t *testing.T) {
	v := StacksFromFrames(nil)
	if v.Samples != 0 || len(v.Nodes) != 0 || len(v.Routines) != 0 {
		t.Errorf("empty input built %+v", v)
	}
	if err := v.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}
