package model

import (
	"sort"

	"repro/internal/callgraph"
)

// Build condenses an analyzed call graph into the serializable profile
// model. The graph must already have cycles discovered (scc.Analyze)
// and time propagated (propagate.Run*); Build assigns the listing
// indices (callgraph.AssignIndexes) as its first step, so it also
// fixes Node.Index / Cycle.Index on the graph.
//
// Every ordering a renderer depends on is baked in here:
//
//   - Routines in graph node order (address order for image graphs);
//   - Cycles in discovery order, members in discovery order;
//   - Arcs grouped by callee in routine order, each callee's incoming
//     arcs in insertion order (the order the pointer-based renderers
//     walked n.In, which the listing's stable sorts tie-break on);
//   - Flat rows pre-sorted in presentation order.
//
// Build runs in O(nodes + arcs): call counts and per-cycle totals are
// computed in one pass each rather than through the graph's
// per-query accessors, which rescan incoming arcs on every call.
func Build(g *callgraph.Graph) *Profile {
	callgraph.AssignIndexes(g)

	p := &Profile{
		Schema:       Schema,
		Hz:           g.Hertz(),
		TotalTicks:   g.TotalTicks,
		LostTicks:    g.LostTicks,
		TotalSeconds: g.TotalTicks / float64(g.Hertz()),
	}

	nodes := g.Nodes()
	// One pass over each node's incoming arcs for its call counts; the
	// accessor pair (Calls, SelfCalls) would make two.
	type counts struct{ calls, selfCalls int64 }
	callsOf := make(map[*callgraph.Node]counts, len(nodes))
	for _, n := range nodes {
		var c counts
		for _, a := range n.In {
			if a.Self() {
				c.selfCalls += a.Count
			} else {
				c.calls += a.Count
			}
		}
		callsOf[n] = c
	}

	p.Routines = make([]Routine, 0, len(nodes))
	for _, n := range nodes {
		c := callsOf[n]
		r := Routine{
			Name:         n.Name,
			Index:        n.Index,
			SelfTicks:    n.SelfTicks,
			ChildTicks:   n.ChildTicks,
			SelfSeconds:  p.Seconds(n.SelfTicks),
			ChildSeconds: p.Seconds(n.ChildTicks),
			Calls:        c.calls,
			SelfCalls:    c.selfCalls,
		}
		if n.InCycle() {
			r.Cycle = n.Cycle.Number
		}
		p.Routines = append(p.Routines, r)
	}

	// Per-cycle totals once per cycle, not once per arc.
	extCalls := make(map[*callgraph.Cycle]int64, len(g.Cycles))
	for _, c := range g.Cycles {
		ext := c.ExternalCalls()
		extCalls[c] = ext
		mc := Cycle{
			Number:        c.Number,
			Index:         c.Index,
			Members:       make([]string, 0, len(c.Members)),
			SelfTicks:     c.SelfTicks(),
			ChildTicks:    c.ChildTicks,
			ExternalCalls: ext,
			InternalCalls: c.InternalCalls(),
		}
		for _, m := range c.Members {
			mc.Members = append(mc.Members, m.Name)
		}
		p.Cycles = append(p.Cycles, mc)
	}

	for _, n := range nodes {
		for _, a := range n.In {
			row := Arc{
				To:             a.Callee.Name,
				Count:          a.Count,
				Sites:          a.Sites,
				Static:         a.Static,
				PropSelfTicks:  a.PropSelf,
				PropChildTicks: a.PropChild,
			}
			if a.Caller != nil {
				row.From = a.Caller.Name
			}
			// The calls/total denominator: calls into the callee, or
			// into its whole cycle when it is a member.
			if a.Callee.InCycle() {
				row.TotalCalls = extCalls[a.Callee.Cycle]
			} else {
				row.TotalCalls = callsOf[a.Callee].calls
			}
			p.Arcs = append(p.Arcs, row)
		}
	}

	p.buildFlat(nodes, func(n *callgraph.Node) int64 {
		c := callsOf[n]
		return c.calls + c.selfCalls
	})
	p.Reindex()
	return p
}

// buildFlat computes the flat profile rows (§5.1) and the never-called
// list from the graph nodes, using exactly the historic sort.
func (p *Profile) buildFlat(nodes []*callgraph.Node, callsOf func(*callgraph.Node) int64) {
	type row struct {
		n     *callgraph.Node
		calls int64
	}
	var rows []row
	for _, n := range nodes {
		calls := callsOf(n)
		if calls == 0 && n.SelfTicks == 0 {
			p.NeverCalled = append(p.NeverCalled, n.Name)
			continue
		}
		rows = append(rows, row{n, calls})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].n.SelfTicks != rows[j].n.SelfTicks {
			return rows[i].n.SelfTicks > rows[j].n.SelfTicks
		}
		if rows[i].calls != rows[j].calls {
			return rows[i].calls > rows[j].calls
		}
		return rows[i].n.Name < rows[j].n.Name
	})
	sort.Strings(p.NeverCalled)

	var cum float64
	for _, r := range rows {
		selfSecs := p.Seconds(r.n.SelfTicks)
		cum += selfSecs
		fr := FlatRow{
			Name:              r.n.Name,
			Percent:           p.Percent(r.n.SelfTicks),
			CumulativeSeconds: cum,
			SelfSeconds:       selfSecs,
			Calls:             r.calls,
		}
		if r.n.InCycle() {
			fr.Cycle = r.n.Cycle.Number
		}
		if r.calls > 0 {
			fr.SelfMsPerCall = selfSecs * 1000 / float64(r.calls)
			if !r.n.InCycle() {
				fr.TotalMsPerCall = p.Seconds(r.n.TotalTicks()) * 1000 / float64(r.calls)
			}
		}
		p.Flat = append(p.Flat, fr)
	}
}
