package model

import (
	"slices"
	"sort"
	"strings"

	"repro/internal/callgraph"
)

// Build condenses an analyzed call graph into the serializable profile
// model. The graph must already have cycles discovered (scc.Analyze)
// and time propagated (propagate.Run*); Build assigns the listing
// indices (callgraph.AssignIndexes) as its first step, so it also
// fixes Node.Index / Cycle.Index on the graph.
//
// Every ordering a renderer depends on is baked in here:
//
//   - Routines in graph node order (address order for image graphs);
//   - Cycles in discovery order, members in discovery order;
//   - Arcs grouped by callee in routine order, each callee's incoming
//     arcs in insertion order (the order the pointer-based renderers
//     walked n.In, which the listing's stable sorts tie-break on);
//   - Flat rows pre-sorted in presentation order.
//
// Build runs in O(nodes + arcs): call counts and per-cycle totals are
// computed in one pass each rather than through the graph's
// per-query accessors, which rescan incoming arcs on every call.
func Build(g *callgraph.Graph) *Profile {
	callgraph.AssignIndexes(g)

	p := &Profile{
		Schema:       Schema,
		Hz:           g.Hertz(),
		TotalTicks:   g.TotalTicks,
		LostTicks:    g.LostTicks,
		TotalSeconds: g.TotalTicks / float64(g.Hertz()),
	}

	nodes := g.Nodes()
	// One pass over each node's incoming arcs for its call counts; the
	// accessor pair (Calls, SelfCalls) would make two. Node.ID is the
	// position in the creation-ordered node list, so a flat slice
	// replaces the pointer-keyed map.
	type counts struct{ calls, selfCalls int64 }
	callsOf := make([]counts, len(nodes))
	for i, n := range nodes {
		var c counts
		for _, a := range n.In {
			if a.Self() {
				c.selfCalls += a.Count
			} else {
				c.calls += a.Count
			}
		}
		callsOf[i] = c
	}

	p.Routines = make([]Routine, 0, len(nodes))
	for _, n := range nodes {
		c := callsOf[n.ID]
		r := Routine{
			Name:         n.Name,
			Index:        n.Index,
			SelfTicks:    n.SelfTicks,
			ChildTicks:   n.ChildTicks,
			SelfSeconds:  p.Seconds(n.SelfTicks),
			ChildSeconds: p.Seconds(n.ChildTicks),
			Calls:        c.calls,
			SelfCalls:    c.selfCalls,
		}
		if n.InCycle() {
			r.Cycle = n.Cycle.Number
		}
		p.Routines = append(p.Routines, r)
	}

	// Per-cycle totals once per cycle, not once per arc. Cycle numbers
	// are dense and 1-based.
	extCalls := make([]int64, len(g.Cycles)+1)
	for _, c := range g.Cycles {
		ext := c.ExternalCalls()
		extCalls[c.Number] = ext
		mc := Cycle{
			Number:        c.Number,
			Index:         c.Index,
			Members:       make([]string, 0, len(c.Members)),
			SelfTicks:     c.SelfTicks(),
			ChildTicks:    c.ChildTicks,
			ExternalCalls: ext,
			InternalCalls: c.InternalCalls(),
		}
		for _, m := range c.Members {
			mc.Members = append(mc.Members, m.Name)
		}
		p.Cycles = append(p.Cycles, mc)
	}

	p.Arcs = make([]Arc, 0, g.NumArcs())
	for _, n := range nodes {
		for _, a := range n.In {
			row := Arc{
				To:             a.Callee.Name,
				Count:          a.Count,
				Sites:          a.Sites,
				Static:         a.Static,
				PropSelfTicks:  a.PropSelf,
				PropChildTicks: a.PropChild,
			}
			if a.Caller != nil {
				row.From = a.Caller.Name
			}
			// The calls/total denominator: calls into the callee, or
			// into its whole cycle when it is a member.
			if a.Callee.InCycle() {
				row.TotalCalls = extCalls[a.Callee.Cycle.Number]
			} else {
				row.TotalCalls = callsOf[a.Callee.ID].calls
			}
			p.Arcs = append(p.Arcs, row)
		}
	}

	p.buildFlat(nodes, func(n *callgraph.Node) int64 {
		c := callsOf[n.ID]
		return c.calls + c.selfCalls
	})
	p.Reindex()
	return p
}

// buildFlat computes the flat profile rows (§5.1) and the never-called
// list from the graph nodes, using exactly the historic sort.
func (p *Profile) buildFlat(nodes []*callgraph.Node, callsOf func(*callgraph.Node) int64) {
	type row struct {
		n     *callgraph.Node
		calls int64
	}
	rows := make([]row, 0, len(nodes))
	for _, n := range nodes {
		calls := callsOf(n)
		if calls == 0 && n.SelfTicks == 0 {
			p.NeverCalled = append(p.NeverCalled, n.Name)
			continue
		}
		rows = append(rows, row{n, calls})
	}
	slices.SortStableFunc(rows, func(a, b row) int {
		if a.n.SelfTicks != b.n.SelfTicks {
			if a.n.SelfTicks > b.n.SelfTicks {
				return -1
			}
			return 1
		}
		if a.calls != b.calls {
			if a.calls > b.calls {
				return -1
			}
			return 1
		}
		return strings.Compare(a.n.Name, b.n.Name)
	})
	sort.Strings(p.NeverCalled)

	p.Flat = make([]FlatRow, 0, len(rows))
	var cum float64
	for _, r := range rows {
		selfSecs := p.Seconds(r.n.SelfTicks)
		cum += selfSecs
		fr := FlatRow{
			Name:              r.n.Name,
			Percent:           p.Percent(r.n.SelfTicks),
			CumulativeSeconds: cum,
			SelfSeconds:       selfSecs,
			Calls:             r.calls,
		}
		if r.n.InCycle() {
			fr.Cycle = r.n.Cycle.Number
		}
		if r.calls > 0 {
			fr.SelfMsPerCall = selfSecs * 1000 / float64(r.calls)
			if !r.n.InCycle() {
				fr.TotalMsPerCall = p.Seconds(r.n.TotalTicks()) * 1000 / float64(r.calls)
			}
		}
		p.Flat = append(p.Flat, fr)
	}
}
