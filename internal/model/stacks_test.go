package model

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gmon"
)

// tinySyms resolves pcs in [base, base+0x10) to a, [base+0x10, ...) to
// b, etc., mimicking a symbol table over 16-byte routines.
func tinySyms(names ...string) ResolveFunc {
	return func(pc int64) (string, bool) {
		i := int(pc / 0x10)
		if pc < 0 || i >= len(names) || names[i] == "" {
			return "", false
		}
		return names[i], true
	}
}

func TestBuildStacksRollup(t *testing.T) {
	// Layout: a=[0,0x10) b=[0x10,0x20) c=[0x20,0x30).
	// Call sites place return addresses one past a CALL inside the
	// caller, so frame pcs resolve at ra-1.
	resolve := tinySyms("a", "b", "c")
	stacks := []gmon.StackSample{
		// leaf c, called from b, called from a: a;b;c
		{PCs: []int64{0x24, 0x18, 0x08}, Count: 5},
		// leaf b called from a: a;b
		{PCs: []int64{0x14, 0x08}, Count: 3},
		// leaf a alone
		{PCs: []int64{0x04}, Count: 2},
	}
	v := BuildStacks(stacks, resolve, 0)
	if v.Samples != 10 || v.Truncated != 0 {
		t.Fatalf("samples %d truncated %d, want 10, 0", v.Samples, v.Truncated)
	}
	wantNodes := []StackNode{
		{Name: "a", Parent: -1, SelfTicks: 2, InclusiveTicks: 10},
		{Name: "b", Parent: 0, SelfTicks: 3, InclusiveTicks: 8},
		{Name: "c", Parent: 1, SelfTicks: 5, InclusiveTicks: 5},
	}
	if !reflect.DeepEqual(v.Nodes, wantNodes) {
		t.Errorf("nodes = %+v, want %+v", v.Nodes, wantNodes)
	}
	wantRoutines := []StackRoutine{
		{Name: "a", SelfTicks: 2, InclusiveTicks: 10},
		{Name: "b", SelfTicks: 3, InclusiveTicks: 8},
		{Name: "c", SelfTicks: 5, InclusiveTicks: 5},
	}
	if !reflect.DeepEqual(v.Routines, wantRoutines) {
		t.Errorf("routines = %+v, want %+v", v.Routines, wantRoutines)
	}
	if f := v.InclusiveFraction("a"); f != 1.0 {
		t.Errorf("InclusiveFraction(a) = %v, want 1.0", f)
	}
	if f := v.InclusiveFraction("c"); f != 0.5 {
		t.Errorf("InclusiveFraction(c) = %v, want 0.5", f)
	}
	if f := v.InclusiveFraction("nope"); f != 0 {
		t.Errorf("InclusiveFraction(nope) = %v, want 0", f)
	}
	if err := v.validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

// TestBuildStacksRecursionOncePerSample: a routine in several frames of
// one sample contributes inclusive time once.
func TestBuildStacksRecursionOncePerSample(t *testing.T) {
	resolve := tinySyms("a", "b")
	stacks := []gmon.StackSample{
		// b called from b called from b called from a: a;b;b;b
		{PCs: []int64{0x14, 0x19, 0x19, 0x08}, Count: 4},
	}
	v := BuildStacks(stacks, resolve, 0)
	b, ok := v.Routine("b")
	if !ok {
		t.Fatal("routine b missing")
	}
	if b.InclusiveTicks != 4 {
		t.Errorf("b inclusive = %d, want 4 (once per sample, not per frame)", b.InclusiveTicks)
	}
	if b.SelfTicks != 4 {
		t.Errorf("b self = %d, want 4", b.SelfTicks)
	}
	// The path tree still has every frame: a > b > b > b.
	if len(v.Nodes) != 4 {
		t.Errorf("nodes = %+v, want 4 entries", v.Nodes)
	}
}

func TestBuildStacksTruncation(t *testing.T) {
	resolve := tinySyms("a", "", "c")
	stacks := []gmon.StackSample{
		// Unresolvable leaf (gap routine): counts toward Samples and
		// Truncated, contributes no nodes.
		{PCs: []int64{0x14}, Count: 7},
		// Leaf resolves, mid-walk frame does not: the resolved prefix
		// survives, the sample counts as truncated.
		{PCs: []int64{0x24, 0x18, 0x08}, Count: 2},
		// Full-depth walk (maxDepth return addresses): truncated.
		{PCs: []int64{0x04, 0x09, 0x09}, Count: 1},
	}
	v := BuildStacks(stacks, resolve, 2)
	if v.Samples != 10 {
		t.Errorf("samples = %d, want 10", v.Samples)
	}
	// The mid-walk-failing sample also filled the depth bound, so it
	// counts twice (legacy accounting): 7 leaf + 2 mid-walk + 2 depth
	// on the same sample + 1 depth on the full-depth walk.
	if v.Truncated != 12 {
		t.Errorf("truncated = %d, want 12", v.Truncated)
	}
	// The mid-fail prefix kept only "c"; the depth-bounded sample is a>a>a.
	c, ok := v.Routine("c")
	if !ok || c.InclusiveTicks != 2 || c.SelfTicks != 2 {
		t.Errorf("c = %+v ok=%v, want self=incl=2", c, ok)
	}
	if _, ok := v.Routine("b"); ok {
		t.Error("unresolvable routine appeared in rollup")
	}
	if err := v.validate(); err != nil {
		t.Errorf("validate: %v", err)
	}
}

func TestBuildStacksNoResolver(t *testing.T) {
	stacks := []gmon.StackSample{{PCs: []int64{0x04}, Count: 3}}
	v := BuildStacks(stacks, nil, 0)
	if v.Samples != 3 || len(v.Nodes) != 0 || len(v.Routines) != 0 {
		t.Errorf("nil-resolver view = %+v", v)
	}
}

// TestBuildStacksDeterministic: map-backed internals must not leak
// iteration order — same multiset in a different order, same view.
func TestBuildStacksDeterministic(t *testing.T) {
	resolve := tinySyms("a", "b", "c", "d", "e")
	stacks := []gmon.StackSample{
		{PCs: []int64{0x44, 0x08}, Count: 1},
		{PCs: []int64{0x34, 0x08}, Count: 2},
		{PCs: []int64{0x24, 0x08}, Count: 3},
		{PCs: []int64{0x14, 0x08}, Count: 4},
		{PCs: []int64{0x04}, Count: 5},
	}
	want := BuildStacks(stacks, resolve, 0)
	rev := make([]gmon.StackSample, len(stacks))
	for i, s := range stacks {
		rev[len(stacks)-1-i] = s
	}
	got := BuildStacks(rev, resolve, 0)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order-dependent view:\n got %+v\nwant %+v", got, want)
	}
	// Children sort by name under a shared root.
	var names []string
	for _, n := range want.Nodes {
		if n.Parent == 0 {
			names = append(names, n.Name)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("children not name-sorted: %v", names)
		}
	}
}

// TestJSONV2RoundTrip: a stacks-carrying profile encodes under the v2
// schema and decodes back; a v1-tagged profile carrying stacks is
// rejected.
func TestJSONV2RoundTrip(t *testing.T) {
	resolve := tinySyms("a", "b")
	view := BuildStacks([]gmon.StackSample{{PCs: []int64{0x14, 0x08}, Count: 3}}, resolve, 0)
	p := &Profile{
		Schema: SchemaV2,
		Hz:     60,
		Routines: []Routine{
			{Name: "a"},
			{Name: "b"},
		},
		Stacks: view,
	}
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), SchemaV2) {
		t.Fatalf("encoding lacks the v2 schema tag:\n%s", buf.String())
	}
	q, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Stacks, view) {
		t.Errorf("stacks view diverged:\n got %+v\nwant %+v", q.Stacks, view)
	}
	// Re-encode is byte-identical (deterministic encoding).
	var again bytes.Buffer
	if err := Encode(&again, q); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("v2 encoding is not deterministic across a round trip")
	}

	p.Schema = Schema
	var v1 bytes.Buffer
	if err := Encode(&v1, p); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(bytes.NewReader(v1.Bytes())); err == nil {
		t.Error("v1 schema carrying a stacks view was accepted")
	}
}
