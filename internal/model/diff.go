package model

import "sort"

// Delta is one routine's change between two profiles. Old* fields are
// zero when the routine is new, New* fields when it disappeared.
type Delta struct {
	Name string `json:"name"`
	// InOld/InNew record presence, distinguishing "zero seconds" from
	// "not in that profile at all".
	InOld bool `json:"in_old"`
	InNew bool `json:"in_new"`

	OldSelf  float64 `json:"old_self_seconds"`
	NewSelf  float64 `json:"new_self_seconds"`
	OldTotal float64 `json:"old_total_seconds"`
	NewTotal float64 `json:"new_total_seconds"`
	OldCalls int64   `json:"old_calls"`
	NewCalls int64   `json:"new_calls"`

	// OldStackIncl/NewStackIncl carry the measured inclusive ticks from
	// the stacks view when a profile has one — zero (and omitted from
	// JSON) for arc-only profiles, so pre-stack diffs are unchanged.
	OldStackIncl int64 `json:"old_stack_inclusive_ticks,omitempty"`
	NewStackIncl int64 `json:"new_stack_inclusive_ticks,omitempty"`
}

// DSelf returns the self-seconds change (new - old).
func (d *Delta) DSelf() float64 { return d.NewSelf - d.OldSelf }

// DTotal returns the total-seconds change (new - old).
func (d *Delta) DTotal() float64 { return d.NewTotal - d.OldTotal }

// DCalls returns the call-count change (new - old).
func (d *Delta) DCalls() int64 { return d.NewCalls - d.OldCalls }

// Changed reports whether anything moved between the runs.
func (d *Delta) Changed() bool {
	return d.DSelf() != 0 || d.DTotal() != 0 || d.DCalls() != 0 || d.InOld != d.InNew ||
		d.OldStackIncl != d.NewStackIncl
}

// Diff compares two profiles routine by routine — the "did my change
// make it faster" question the flat and call-graph listings cannot
// answer across runs. The result covers the union of routine names,
// sorted by decreasing total-seconds regression (the biggest slowdowns
// first), ties by self-seconds regression, then name. Routines dead in
// both profiles (never called, no samples) are omitted.
//
// Calls are compared as total call counts (incoming plus
// self-recursive), matching the flat profile's calls column.
func Diff(old, new *Profile) []Delta {
	byName := make(map[string]*Delta)
	order := make([]string, 0, len(old.Routines)+len(new.Routines))
	get := func(name string) *Delta {
		d, ok := byName[name]
		if !ok {
			d = &Delta{Name: name}
			byName[name] = d
			order = append(order, name)
		}
		return d
	}
	for i := range old.Routines {
		r := &old.Routines[i]
		d := get(r.Name)
		d.InOld = true
		d.OldSelf = r.SelfSeconds
		d.OldTotal = r.TotalSeconds()
		d.OldCalls = r.Calls + r.SelfCalls
	}
	for i := range new.Routines {
		r := &new.Routines[i]
		d := get(r.Name)
		d.InNew = true
		d.NewSelf = r.SelfSeconds
		d.NewTotal = r.TotalSeconds()
		d.NewCalls = r.Calls + r.SelfCalls
	}
	if old.Stacks != nil {
		for _, r := range old.Stacks.Routines {
			get(r.Name).OldStackIncl = r.InclusiveTicks
		}
	}
	if new.Stacks != nil {
		for _, r := range new.Stacks.Routines {
			get(r.Name).NewStackIncl = r.InclusiveTicks
		}
	}

	out := make([]Delta, 0, len(order))
	for _, name := range order {
		d := byName[name]
		dead := d.OldSelf == 0 && d.NewSelf == 0 &&
			d.OldTotal == 0 && d.NewTotal == 0 &&
			d.OldCalls == 0 && d.NewCalls == 0 &&
			d.OldStackIncl == 0 && d.NewStackIncl == 0
		if dead {
			continue
		}
		out = append(out, *d)
	}
	sort.SliceStable(out, func(i, j int) bool {
		ti, tj := out[i].DTotal(), out[j].DTotal()
		if ti != tj {
			return ti > tj
		}
		si, sj := out[i].DSelf(), out[j].DSelf()
		if si != sj {
			return si > sj
		}
		return out[i].Name < out[j].Name
	})
	return out
}
