package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry is the always-on, labeled side of the observability layer —
// the source a /metrics scrape reads. Where a Trace accumulates spans
// for one run and grows without bound, a Registry holds a fixed set of
// metric families (counter, gauge, histogram) whose series are keyed by
// label values, with constant memory per series. It exists so a
// long-running service can expose Prometheus-style metrics with no new
// dependency: WriteExposition renders it in the text exposition format.
//
// Series lookups take the registry lock; hot paths should resolve their
// series once (or cache per label combination, as internal/serve does)
// and Add/Observe on the result. A nil *Registry hands out nil metrics,
// which are no-ops, so the registry can be threaded optionally just
// like a Trace.
type Registry struct {
	mu       sync.Mutex
	families map[string]*metricFamily
}

// MetricKind distinguishes the three family types in an exposition.
type MetricKind int

const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

// String returns the exposition TYPE keyword for the kind.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metricFamily is one named family: a kind, help text, and its series
// keyed by canonical label strings.
type metricFamily struct {
	name   string
	help   string
	kind   MetricKind
	series map[string]any // canonical label key -> *Counter | *Gauge | *Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*metricFamily)}
}

// labelKey canonicalizes "k1,v1,k2,v2,..." pairs into the exact label
// string the exposition emits, sorted by label name so the same label
// set always maps to the same series. Panics on an odd pair count or an
// invalid label name — misregistration is a programming error the tests
// catch, not a runtime condition.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be name/value pairs")
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validMetricName(labels[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the exposition-format escapes to a label
// value: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// validMetricName reports whether s matches the exposition identifier
// charset [a-zA-Z_:][a-zA-Z0-9_:]* (colons allowed in metric names per
// the format; we accept them for labels too and simply never use them).
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// family returns the named family, creating it on first use, and panics
// if the name was previously registered with a different kind.
func (r *Registry) family(name, help string, kind MetricKind) *metricFamily {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	f, ok := r.families[name]
	if !ok {
		f = &metricFamily{name: name, help: help, kind: kind, series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %v and %v", name, f.kind, kind))
	}
	return f
}

// Counter returns the counter series for the given family and label
// pairs ("k1", "v1", "k2", "v2", ...), registering family and series on
// first use. Nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindCounter)
	key := labelKey(labels)
	if m, ok := f.series[key]; ok {
		return m.(*Counter)
	}
	c := &Counter{name: name}
	f.series[key] = c
	return c
}

// Gauge returns the gauge series for the given family and label pairs,
// registering on first use. Nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindGauge)
	key := labelKey(labels)
	if m, ok := f.series[key]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{name: name}
	f.series[key] = g
	return g
}

// Histogram returns the histogram series for the given family and label
// pairs, registering on first use. Nil registry returns a nil (no-op)
// histogram.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindHistogram)
	key := labelKey(labels)
	if m, ok := f.series[key]; ok {
		return m.(*Histogram)
	}
	h := &Histogram{name: name}
	f.series[key] = h
	return h
}

// snapshotFamilies returns the families sorted by name, each with its
// series keys sorted, so the exposition is deterministic.
func (r *Registry) snapshotFamilies() []expoFamilySnap {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]expoFamilySnap, 0, len(r.families))
	for _, f := range r.families {
		s := expoFamilySnap{name: f.name, help: f.help, kind: f.kind}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s.series = append(s.series, expoSeriesSnap{labels: k, metric: f.series[k]})
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

type expoFamilySnap struct {
	name   string
	help   string
	kind   MetricKind
	series []expoSeriesSnap
}

type expoSeriesSnap struct {
	labels string
	metric any
}
