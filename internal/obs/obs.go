// Package obs is the profiler's self-observability layer: the paper's
// thesis — you cannot tune what you cannot measure (§2-§4) — applied to
// our own analysis pipeline. It records named spans (monotonic start +
// duration + goroutine id) into sharded buffers and typed counters and
// gauges into a registry, and exports them three ways: a human stage
// summary (WriteSummary, for -stats), Chrome trace-event JSON
// (WriteChromeTrace, for -tracefile, viewable in Perfetto or
// chrome://tracing), and a machine-readable run report (Report /
// WriteReport, schema gprof.runreport.v1, embedded in BENCH_*.json).
//
// The disabled state is the default and near-free: every method is
// nil-safe, so a nil *Trace threaded through the pipeline costs a
// pointer check per call site and allocates nothing
// (testing.AllocsPerRun-verified; see BenchmarkObsSpanOverhead). The
// trace rides the context (NewContext / FromContext), so the pipeline
// stages that already take a ctx — core.Run, gmon.MergeAllStreaming,
// propagate.RunCtx, callgraph.BuildCtx — need no signature changes.
//
// Spans are meant for coarse units of work (a pipeline stage, a file
// read, a propagation level), not per-instruction events: starting an
// enabled span resolves the goroutine id from the runtime, which costs
// on the order of a microsecond. Counters are the hot-path instrument:
// an *obs.Counter is a single atomic; hoist the registry lookup out of
// the loop and Add in place.
package obs

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one recorded span: a named interval on one goroutine.
// Times are monotonic nanoseconds since the Trace was created.
type Event struct {
	Name  string
	Start int64 // ns since trace start
	Dur   int64 // ns
	Goid  int64 // goroutine that recorded the span
}

// shard is one lock-striped event buffer. Goroutines map onto shards by
// id, sized to the number of Ps, so concurrent stages (merge workers,
// propagation levels) append without contending on one lock.
type shard struct {
	mu     sync.Mutex
	events []Event
	_      [40]byte // keep neighboring shards off one cache line
}

// Trace accumulates spans, counters, and gauges for one run. The zero
// value is not usable; create with New. A nil *Trace is the disabled
// layer: every method no-ops. A Trace is safe for concurrent use.
type Trace struct {
	start  time.Time
	mask   uint64
	shards []shard

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	failed atomic.Pointer[error]
}

// New creates an enabled trace whose clock starts now.
func New() *Trace {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	return &Trace{
		start:      time.Now(),
		mask:       uint64(n - 1),
		shards:     make([]shard, n),
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Enabled reports whether the trace records anything.
func (t *Trace) Enabled() bool { return t != nil }

// nop is the shared stop function disabled spans return: calling it
// does nothing, and returning it allocates nothing.
var nop = func() {}

// Span starts a named span on the calling goroutine and returns the
// function that ends it; idiomatic use is
//
//	defer t.Span("propagate")()
//
// or an explicit end() call for stages that do not align with a
// function body. On a nil Trace both start and stop are no-ops with no
// allocation. The end function must be called exactly once, from any
// goroutine (the span stays attributed to the starting one).
func (t *Trace) Span(name string) func() {
	if t == nil {
		return nop
	}
	g := goid()
	start := int64(time.Since(t.start))
	return func() {
		dur := int64(time.Since(t.start)) - start
		s := &t.shards[uint64(g)&t.mask]
		s.mu.Lock()
		s.events = append(s.events, Event{Name: name, Start: start, Dur: dur, Goid: g})
		s.mu.Unlock()
	}
}

// Fail marks the run as aborted; Report carries the error and flips
// Complete to false, so spans recorded before a cancellation mid-run
// remain diagnosable.
func (t *Trace) Fail(err error) {
	if t == nil || err == nil {
		return
	}
	t.failed.CompareAndSwap(nil, &err)
}

// Err returns the error recorded by Fail, if any.
func (t *Trace) Err() error {
	if t == nil {
		return nil
	}
	if p := t.failed.Load(); p != nil {
		return *p
	}
	return nil
}

// Wall returns the time elapsed since the trace was created.
func (t *Trace) Wall() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

// Events returns every recorded span, ordered by start time. The slice
// is a copy; the trace keeps recording.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		out = append(out, s.events...)
		s.mu.Unlock()
	}
	sortEvents(out)
	return out
}

// sortEvents orders by (Start, Goid, Name) so exports are deterministic
// when spans share a timestamp.
func sortEvents(ev []Event) {
	sort.Slice(ev, func(i, j int) bool {
		a, b := ev[i], ev[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Goid != b.Goid {
			return a.Goid < b.Goid
		}
		return a.Name < b.Name
	})
}

// Counter is a named monotonically increasing count (e.g.
// "gmon.bytes_read"). A nil *Counter — what a nil Trace hands out — is
// a no-op, so call sites never branch on the observability state.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name ("" for nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Counter returns the named counter, registering it on first use.
// Returns nil (a valid no-op counter) on a nil Trace. The lookup takes
// the registry lock: hoist it out of hot loops and Add on the result.
func (t *Trace) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.counters[name]
	if !ok {
		c = &Counter{name: name}
		t.counters[name] = c
	}
	return c
}

// Gauge is a named last-value-wins measurement (e.g. "merge.workers",
// "propagate.levels"). A nil *Gauge is a no-op.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set records the gauge's current value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by a signed delta (for in-flight style gauges
// that track a level rather than a last value).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Max raises the gauge to v if v is larger (for high-water marks).
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the last recorded value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the registered name ("" for nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Gauge returns the named gauge, registering it on first use. Returns
// nil (a valid no-op gauge) on a nil Trace.
func (t *Trace) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	g, ok := t.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		t.gauges[name] = g
	}
	return g
}

// counterValues snapshots the registries as plain maps.
func (t *Trace) counterValues() (counters, gauges map[string]int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.counters) > 0 {
		counters = make(map[string]int64, len(t.counters))
		for name, c := range t.counters {
			counters[name] = c.Value()
		}
	}
	if len(t.gauges) > 0 {
		gauges = make(map[string]int64, len(t.gauges))
		for name, g := range t.gauges {
			gauges[name] = g.Value()
		}
	}
	return counters, gauges
}

// histogramSnapshots snapshots the histogram registry as summary rows.
func (t *Trace) histogramSnapshots() map[string]HistogramStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.histograms) == 0 {
		return nil
	}
	out := make(map[string]HistogramStats, len(t.histograms))
	for name, h := range t.histograms {
		out[name] = HistogramStats{
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
	}
	return out
}

// goid parses the calling goroutine's id from the runtime's stack
// header ("goroutine N [running]: ..."). It costs about a microsecond,
// which is why spans are for coarse work units; there is no cheaper
// portable way to identify a goroutine.
func goid() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	const prefix = "goroutine "
	if len(s) < len(prefix) {
		return 0
	}
	var id int64
	for _, b := range s[len(prefix):] {
		if b < '0' || b > '9' {
			break
		}
		id = id*10 + int64(b-'0')
	}
	return id
}
