package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestFlightRecorderRing pins the fixed-memory property: rings
// overwrite, the snapshot is bounded and ordered, and recent events
// survive while ancient ones are evicted.
func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(16)
	const total = 500
	for i := 0; i < total; i++ {
		name := "old"
		if i >= total-8 {
			name = "recent"
		}
		s := f.Start(name)
		s.End()
	}
	ev := f.Events()
	capacity := len(f.tracks) * 16
	if len(ev) > capacity {
		t.Fatalf("snapshot holds %d events, ring capacity is %d", len(ev), capacity)
	}
	recent := 0
	for i, e := range ev {
		if e.Name == "recent" {
			recent++
		}
		if i > 0 && ev[i].Start < ev[i-1].Start {
			t.Fatal("events not ordered by start")
		}
	}
	if recent != 8 {
		t.Errorf("found %d recent events, want all 8 retained", recent)
	}
}

// TestFlightRecorderConcurrent hammers the recorder from many
// goroutines (meaningful under -race) and checks the dump stays valid.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s := f.Start("work")
				if i%100 == 0 {
					f.Event("marker")
				}
				s.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = f.Events()
			}
		}
	}()
	wg.Wait()
	close(done)
	var buf bytes.Buffer
	if err := f.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var file struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	spans := 0
	for _, e := range file.TraceEvents {
		if e.Ph == "X" && e.Name == "work" {
			spans++
		}
	}
	if spans == 0 {
		t.Error("dump contains no work spans")
	}
}

// TestFlightRecorderNil covers the disabled surface.
func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	s := f.Start("x")
	s.End()
	f.Event("y")
	if f.Events() != nil || f.Wall() != 0 {
		t.Error("nil recorder not a no-op")
	}
	var buf bytes.Buffer
	if err := f.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var file struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil || len(file.TraceEvents) != 0 {
		t.Errorf("nil dump invalid: %v, %d events", err, len(file.TraceEvents))
	}
}

// TestFlightSpanDuration sanity-checks recorded durations.
func TestFlightSpanDuration(t *testing.T) {
	f := NewFlightRecorder(16)
	s := f.Start("sleep")
	time.Sleep(2 * time.Millisecond)
	s.End()
	ev := f.Events()
	if len(ev) != 1 {
		t.Fatalf("got %d events, want 1", len(ev))
	}
	if ev[0].Dur < int64(time.Millisecond) {
		t.Errorf("span duration %dns, want >= 1ms", ev[0].Dur)
	}
}
