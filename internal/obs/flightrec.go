package obs

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder keeps the last few thousand spans of a long-running
// process in fixed memory — the black box you read after an incident,
// not a trace you collect on purpose. Where a Trace grows for the life
// of one run, the recorder overwrites: each track is a fixed ring, so
// recording costs one mutex on a striped lock plus a slot write no
// matter how long the process has been up, and memory is bounded by
// tracks x capacity. It is meant to be always on; internal/serve dumps
// it at /debug/flightrec as Chrome trace-event JSON for after-the-fact
// forensics.
//
// Unlike a Trace, spans are not attributed to their goroutine —
// finding a goroutine's id costs a microsecond (see goid), which is
// too much for an instrument that sits on every HTTP request. Spans
// instead stripe round-robin across the tracks, so a lane in the dump
// is a capacity shard, not a goroutine. A span start+end pair costs
// two clock reads, one atomic add, and one striped mutex — tens of
// nanoseconds (BenchmarkFlightSpan).
//
// A nil *FlightRecorder no-ops everywhere, like the rest of the
// package.
type FlightRecorder struct {
	start  time.Time
	mask   uint64
	next   atomic.Uint64
	tracks []flightTrack
}

// flightTrack is one ring of recorded events. Spans stripe onto tracks
// round-robin; next wraps when the ring fills and the oldest events
// are overwritten.
type flightTrack struct {
	mu   sync.Mutex
	next int
	full bool
	buf  []Event
	_    [40]byte // keep neighboring tracks off one cache line
}

// NewFlightRecorder creates a recorder whose clock starts now, with one
// ring per P (rounded up to a power of two) of perTrack events each.
// perTrack values below 16 are raised to 16.
func NewFlightRecorder(perTrack int) *FlightRecorder {
	if perTrack < 16 {
		perTrack = 16
	}
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	f := &FlightRecorder{
		start:  time.Now(),
		mask:   uint64(n - 1),
		tracks: make([]flightTrack, n),
	}
	for i := range f.tracks {
		f.tracks[i].buf = make([]Event, perTrack)
	}
	return f
}

// FlightSpan is an in-progress span. End records it; a zero FlightSpan
// (from a nil recorder) is a no-op. FlightSpan is a value, not a
// closure, so starting a span allocates nothing.
type FlightSpan struct {
	f     *FlightRecorder
	name  string
	start int64
}

// Start opens a span.
func (f *FlightRecorder) Start(name string) FlightSpan {
	if f == nil {
		return FlightSpan{}
	}
	return FlightSpan{f: f, name: name, start: int64(time.Since(f.start))}
}

// End records the span into the next track's ring, overwriting the
// oldest entry when full.
func (s FlightSpan) End() {
	if s.f == nil {
		return
	}
	s.f.record(Event{
		Name:  s.name,
		Start: s.start,
		Dur:   int64(time.Since(s.f.start)) - s.start,
	})
}

// Event records an instantaneous marker (zero-duration span).
func (f *FlightRecorder) Event(name string) {
	if f == nil {
		return
	}
	f.record(Event{Name: name, Start: int64(time.Since(f.start))})
}

func (f *FlightRecorder) record(e Event) {
	lane := f.next.Add(1) & f.mask
	e.Goid = int64(lane) + 1 // the dump's lane id, not a goroutine
	t := &f.tracks[lane]
	t.mu.Lock()
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Events returns a copy of everything currently in the rings, ordered
// by start time. Recording continues.
func (f *FlightRecorder) Events() []Event {
	if f == nil {
		return nil
	}
	var out []Event
	for i := range f.tracks {
		t := &f.tracks[i]
		t.mu.Lock()
		if t.full {
			out = append(out, t.buf...)
		} else {
			out = append(out, t.buf[:t.next]...)
		}
		t.mu.Unlock()
	}
	sortEvents(out)
	return out
}

// Wall returns the time elapsed since the recorder was created.
func (f *FlightRecorder) Wall() time.Duration {
	if f == nil {
		return 0
	}
	return time.Since(f.start)
}

// WriteChromeTrace dumps the rings as Chrome trace-event JSON — the
// same format as Trace.WriteChromeTrace, loadable in Perfetto and
// checkable by cmd/tracecheck. A nil recorder writes an empty but valid
// trace.
func (f *FlightRecorder) WriteChromeTrace(w io.Writer) error {
	if f == nil {
		return writeChromeEvents(w, "", nil, nil, nil, 0)
	}
	end := float64(f.Wall().Nanoseconds()) / 1e3
	return writeChromeEvents(w, "gprofd flight recorder", f.Events(), nil, nil, end)
}
