package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestHistogramBucketGeometry pins the log-linear bucket map: indexes
// are monotonic, every value falls inside its bucket's bounds, and the
// bucket width never exceeds 1/histSub of the lower bound.
func TestHistogramBucketGeometry(t *testing.T) {
	probe := []int64{0, 1, 2, 7, 8, 9, 15, 16, 17, 31, 32, 100, 1000, 4095, 4096,
		1 << 20, 1<<20 + 1, 1 << 40, 1<<62 - 1, 1 << 62, 1<<63 - 1}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		probe = append(probe, rng.Int63())
	}
	for _, v := range probe {
		i := histBucket(v)
		if i < 0 || i >= numHistBuckets {
			t.Fatalf("histBucket(%d) = %d out of range", v, i)
		}
		if up := histUpper(i); v > up {
			t.Fatalf("value %d above its bucket upper %d (bucket %d)", v, up, i)
		}
		if i > 0 {
			if low := histUpper(i - 1); v <= low {
				t.Fatalf("value %d at or below previous bucket upper %d (bucket %d)", v, low, i)
			}
		}
	}
	// Monotonic indexes and contiguous uppers across every bucket.
	for i := 1; i < numHistBuckets; i++ {
		lo, hi := histUpper(i-1), histUpper(i)
		if hi <= lo {
			t.Fatalf("bucket uppers not increasing: upper(%d)=%d, upper(%d)=%d", i-1, lo, i, hi)
		}
		if got := histBucket(lo + 1); got != i {
			t.Fatalf("histBucket(%d) = %d, want %d", lo+1, got, i)
		}
		if got := histBucket(hi); got != i {
			t.Fatalf("histBucket(%d) = %d, want %d", hi, got, i)
		}
	}
	if up := histUpper(numHistBuckets - 1); up != 1<<63-1 {
		t.Fatalf("last bucket upper = %d, want MaxInt64", up)
	}
}

// TestHistogramQuantileProperty checks the estimation bound against a
// sorted reference on several distributions: the estimate never
// undershoots the true order statistic and overshoots by at most
// true/histSub + 1.
func TestHistogramQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	distributions := map[string]func() int64{
		"uniform":  func() int64 { return rng.Int63n(1_000_000) },
		"exp2":     func() int64 { return int64(1) << uint(rng.Intn(40)) },
		"latency":  func() int64 { return 50_000 + rng.Int63n(200_000)*rng.Int63n(3) },
		"tiny":     func() int64 { return rng.Int63n(10) },
		"constant": func() int64 { return 4242 },
	}
	quantiles := []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1.0}
	for name, gen := range distributions {
		h := &Histogram{name: name}
		vals := make([]int64, 5000)
		for i := range vals {
			vals[i] = gen()
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		for _, q := range quantiles {
			rank := int(q*float64(len(vals)) + 0.9999999)
			if rank < 1 {
				rank = 1
			}
			if rank > len(vals) {
				rank = len(vals)
			}
			want := vals[rank-1]
			got := h.Quantile(q)
			if got < want {
				t.Errorf("%s q=%v: estimate %d undershoots true %d", name, q, got, want)
			}
			if limit := want + want/histSub + 1; got > limit {
				t.Errorf("%s q=%v: estimate %d exceeds bound %d (true %d)", name, q, got, limit, want)
			}
		}
	}
}

// TestHistogramExactTotals pins Count and Sum as exact (not
// bucket-rounded) and negative clamping.
func TestHistogramExactTotals(t *testing.T) {
	h := &Histogram{}
	var sum int64
	for i := int64(0); i < 1000; i++ {
		h.Observe(i * 37)
		sum += i * 37
	}
	h.Observe(-5) // clamps to 0
	if h.Count() != 1001 {
		t.Errorf("Count = %d, want 1001", h.Count())
	}
	if h.Sum() != sum {
		t.Errorf("Sum = %d, want %d", h.Sum(), sum)
	}
	if h.Quantile(0.0001) != 0 {
		t.Errorf("min quantile = %d, want 0 (clamped negative)", h.Quantile(0.0001))
	}
}

// TestHistogramMergeRace merges shards into a target while they are
// still observing (run under -race as part of the race target): the
// final totals must be exact once writers stop.
func TestHistogramMergeRace(t *testing.T) {
	const (
		workers = 8
		perW    = 10_000
	)
	shards := make([]*Histogram, workers)
	for i := range shards {
		shards[i] = &Histogram{}
	}
	target := &Histogram{}
	stop := make(chan struct{})
	mergerDone := make(chan struct{})
	// Concurrent merger exercising the snapshot-under-write path.
	go func() {
		defer close(mergerDone)
		scratch := &Histogram{}
		for {
			select {
			case <-stop:
				return
			default:
				for _, s := range shards {
					scratch.Merge(s)
				}
				_ = scratch.Quantile(0.5)
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				shards[w].Observe(rng.Int63n(1 << 30))
			}
		}(w)
	}
	// Wait for writers, stop the racing merger, then do the real merge.
	writers.Wait()
	close(stop)
	<-mergerDone
	var wantSum int64
	for w := 0; w < workers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < perW; i++ {
			wantSum += rng.Int63n(1 << 30)
		}
		target.Merge(shards[w])
	}
	if target.Count() != workers*perW {
		t.Errorf("merged Count = %d, want %d", target.Count(), workers*perW)
	}
	if target.Sum() != wantSum {
		t.Errorf("merged Sum = %d, want %d", target.Sum(), wantSum)
	}
	_, bucketTotal, _ := target.Snapshot()
	if bucketTotal != int64(workers*perW) {
		t.Errorf("bucket total = %d, want %d", bucketTotal, workers*perW)
	}
}

// TestHistogramObserveZeroAlloc pins the acceptance criterion: Observe
// performs zero allocations.
func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := &Histogram{}
	v := int64(0)
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 977
	}); n != 0 {
		t.Errorf("Observe allocates %.1f per call, want 0", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Observe(5) }); n != 0 {
		t.Errorf("nil Observe allocates %.1f per call, want 0", n)
	}
}

// TestHistogramNil covers the disabled (nil) surface.
func TestHistogramNil(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.Merge(&Histogram{})
	(&Histogram{}).Merge(h)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 || h.Name() != "" {
		t.Error("nil histogram not a no-op")
	}
	b, n, s := h.Snapshot()
	if b != nil || n != 0 || s != 0 {
		t.Error("nil Snapshot not empty")
	}
}

// TestTraceHistogramRegistry covers Trace.Histogram registration and
// the report/summary rows.
func TestTraceHistogramRegistry(t *testing.T) {
	var nilT *Trace
	if nilT.Histogram("x") != nil {
		t.Fatal("nil trace returned non-nil histogram")
	}
	tr := New()
	h := tr.Histogram("fold_ns")
	if h2 := tr.Histogram("fold_ns"); h2 != h {
		t.Fatal("re-registration returned a different histogram")
	}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	r := tr.Report()
	hs, ok := r.Histograms["fold_ns"]
	if !ok {
		t.Fatal("report missing histogram row")
	}
	if hs.Count != 100 || hs.Sum != 5050 {
		t.Errorf("report row = %+v, want count 100 sum 5050", hs)
	}
	if hs.P50 < 50 || hs.P50 > 57 {
		t.Errorf("p50 = %d, want ~50 within bucket bound", hs.P50)
	}
}
