package obs

import (
	"flag"
	"fmt"
	"os"
)

// CLI bundles the observability flags every tool exposes (-stats,
// -tracefile, -runreport) and the output discipline behind them: all
// diagnostics go to stderr or to the named files, never to stdout, so
// enabling observability can never perturb a tool's report output.
//
// Usage:
//
//	var o obs.CLI
//	o.Register(flag.CommandLine)
//	flag.Parse()
//	ctx = obs.NewContext(ctx, o.Trace())
//	...
//	defer o.Finish(runErr)
type CLI struct {
	Stats      bool
	TraceFile  string
	ReportFile string

	trace   *Trace
	created bool
}

// Register installs the three flags on fs.
func (c *CLI) Register(fs *flag.FlagSet) {
	fs.BoolVar(&c.Stats, "stats", false,
		"print a self-observability summary (stage timings, counters) to stderr")
	fs.StringVar(&c.TraceFile, "tracefile", "",
		"write a Chrome trace-event JSON file of this run (open in Perfetto or chrome://tracing)")
	fs.StringVar(&c.ReportFile, "runreport", "",
		"write the machine-readable run report (schema gprof.runreport.v1) to this file")
}

// Enabled reports whether any observability output was requested.
func (c *CLI) Enabled() bool {
	return c.Stats || c.TraceFile != "" || c.ReportFile != ""
}

// Trace returns the run's trace, creating it on first call when any
// flag was set — and nil (the free, disabled layer) otherwise.
func (c *CLI) Trace() *Trace {
	if !c.created {
		c.created = true
		if c.Enabled() {
			c.trace = New()
		}
	}
	return c.trace
}

// Finish marks the trace with runErr (if the run failed) and emits
// every requested output: the -stats summary to stderr, the -tracefile
// Chrome trace, and the -runreport JSON. A failed run still emits — a
// partial report is the point — so call Finish on every exit path. It
// returns the first emit error.
func (c *CLI) Finish(runErr error) error {
	tr := c.Trace()
	if tr == nil {
		return nil
	}
	tr.Fail(runErr)
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if c.Stats {
		keep(tr.WriteSummary(os.Stderr))
	}
	writeFile := func(name string, write func(*os.File) error) {
		f, err := os.Create(name)
		if err != nil {
			keep(err)
			return
		}
		if err := write(f); err != nil {
			f.Close()
			keep(fmt.Errorf("%s: %w", name, err))
			return
		}
		keep(f.Close())
	}
	if c.TraceFile != "" {
		writeFile(c.TraceFile, func(f *os.File) error { return tr.WriteChromeTrace(f) })
	}
	if c.ReportFile != "" {
		writeFile(c.ReportFile, func(f *os.File) error { return tr.WriteReport(f) })
	}
	return firstErr
}
