package obs

import (
	"io"
	"strconv"
	"testing"
)

// BenchmarkObsSpanOverhead is the acceptance benchmark: the disabled
// (nil trace) span path — what every pipeline stage pays when no
// observability flag is set — must cost under 5ns and 0 allocs.
func BenchmarkObsSpanOverhead(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		end := tr.Span("stage")
		end()
	}
}

// BenchmarkObsSpanEnabled is the price actually paid when tracing is
// on: goroutine-id resolution plus a sharded append.
func BenchmarkObsSpanEnabled(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		end := tr.Span("stage")
		end()
	}
}

// BenchmarkObsCounterAdd measures the hot-path instrument: a hoisted
// counter is one atomic add.
func BenchmarkObsCounterAdd(b *testing.B) {
	tr := New()
	c := tr.Counter("hot.path")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkObsCounterDisabled is the nil-counter no-op.
func BenchmarkObsCounterDisabled(b *testing.B) {
	var tr *Trace
	c := tr.Counter("hot.path")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkHistogramObserve is the acceptance benchmark for the
// request-path instrument: three atomic adds, <= 20ns, 0 allocs.
func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 977)
	}
}

// BenchmarkHistogramMerge folds one populated histogram into another —
// the per-scrape or per-window aggregation cost.
func BenchmarkHistogramMerge(b *testing.B) {
	src := &Histogram{}
	for i := int64(0); i < 100_000; i++ {
		src.Observe(i * 31)
	}
	dst := &Histogram{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Merge(src)
	}
}

// BenchmarkExposition renders a production-shaped registry (a few
// hundred series including labeled histograms) — the cost of one
// /metrics scrape.
func BenchmarkExposition(b *testing.B) {
	r := NewRegistry()
	for e := 0; e < 12; e++ {
		ep := "/v1/endpoint" + strconv.Itoa(e)
		for _, code := range []string{"200", "202", "404", "429"} {
			r.Counter("http_requests_total", "requests", "endpoint", ep, "code", code).Add(int64(e + 1))
			h := r.Histogram("http_request_duration_ns", "latency", "endpoint", ep, "code", code)
			for i := int64(0); i < 256; i++ {
				h.Observe(i * 100_000)
			}
		}
		r.Gauge("http_in_flight", "in flight", "endpoint", ep).Set(int64(e))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteExposition(io.Discard, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlightSpan is the always-on recorder's per-span price —
// two clock reads, a round-robin atomic add, and a striped mutex; it
// must stay cheap enough to sit on every HTTP request.
func BenchmarkFlightSpan(b *testing.B) {
	f := NewFlightRecorder(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := f.Start("req")
		s.End()
	}
}
