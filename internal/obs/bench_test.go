package obs

import "testing"

// BenchmarkObsSpanOverhead is the acceptance benchmark: the disabled
// (nil trace) span path — what every pipeline stage pays when no
// observability flag is set — must cost under 5ns and 0 allocs.
func BenchmarkObsSpanOverhead(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		end := tr.Span("stage")
		end()
	}
}

// BenchmarkObsSpanEnabled is the price actually paid when tracing is
// on: goroutine-id resolution plus a sharded append.
func BenchmarkObsSpanEnabled(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		end := tr.Span("stage")
		end()
	}
}

// BenchmarkObsCounterAdd measures the hot-path instrument: a hoisted
// counter is one atomic add.
func BenchmarkObsCounterAdd(b *testing.B) {
	tr := New()
	c := tr.Counter("hot.path")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkObsCounterDisabled is the nil-counter no-op.
func BenchmarkObsCounterDisabled(b *testing.B) {
	var tr *Trace
	c := tr.Counter("hot.path")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
