package obs

import "context"

// traceKey is the private context key the trace rides under.
type traceKey struct{}

// NewContext returns ctx carrying t. The pipeline's ctx-taking stages
// (core.Run, gmon.MergeAllStreaming, callgraph.BuildCtx,
// propagate.RunCtx) pick it up with FromContext, so enabling
// observability is one line in a CLI and zero signature changes in the
// library. A nil t returns ctx unchanged.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil — the disabled
// trace every obs method accepts — when none is attached.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
