package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// RunReportSchema tags every run report; bump on incompatible change.
const RunReportSchema = "gprof.runreport.v1"

// StageTiming is one named stage's aggregate: spans sharing a name
// merge into a single row (a per-file span recorded by every merge
// worker becomes one row with Count = files).
type StageTiming struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`    // spans merged into this row
	StartNs int64  `json:"start_ns"` // earliest start, ns since trace start
	TotalNs int64  `json:"total_ns"` // summed span durations
	MaxNs   int64  `json:"max_ns"`   // longest single span
	Workers int    `json:"workers"`  // distinct goroutines that recorded the name
}

// HistogramStats is the run-report summary of one registered histogram:
// exact count and sum plus bucket-estimated quantiles.
type HistogramStats struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
}

// RunReport is the machine-readable summary of one traced run
// (docs/FORMATS.md, schema gprof.runreport.v1). cmd/benchjson embeds it
// per workload so BENCH_*.json rows carry stage timings; gprof
// -runreport writes it standalone. Complete is false when the run was
// aborted (Fail was called, e.g. on ctx cancellation): the stages
// recorded up to that point are still present, so a canceled run stays
// diagnosable.
type RunReport struct {
	Schema   string           `json:"schema"`
	Complete bool             `json:"complete"`
	Error    string           `json:"error,omitempty"`
	WallNs   int64            `json:"wall_ns"`
	Stages   []StageTiming    `json:"stages"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	// Histograms is additive to the v1 schema: absent when no
	// histograms were registered, so existing readers are unaffected.
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Report aggregates the trace into a RunReport. Stages are ordered by
// first start time, which is the pipeline order for sequential stages.
// A nil Trace reports an empty, complete run.
func (t *Trace) Report() RunReport {
	r := RunReport{Schema: RunReportSchema, Complete: true, Stages: []StageTiming{}}
	if t == nil {
		return r
	}
	if err := t.Err(); err != nil {
		r.Complete = false
		r.Error = err.Error()
	}
	r.WallNs = t.Wall().Nanoseconds()
	byName := make(map[string]*StageTiming)
	goids := make(map[string]map[int64]bool)
	for _, e := range t.Events() {
		st, ok := byName[e.Name]
		if !ok {
			st = &StageTiming{Name: e.Name, StartNs: e.Start}
			byName[e.Name] = st
			goids[e.Name] = make(map[int64]bool)
		}
		st.Count++
		st.TotalNs += e.Dur
		if e.Dur > st.MaxNs {
			st.MaxNs = e.Dur
		}
		if e.Start < st.StartNs {
			st.StartNs = e.Start
		}
		goids[e.Name][e.Goid] = true
	}
	for name, st := range byName {
		st.Workers = len(goids[name])
		r.Stages = append(r.Stages, *st)
	}
	sort.Slice(r.Stages, func(i, j int) bool {
		if r.Stages[i].StartNs != r.Stages[j].StartNs {
			return r.Stages[i].StartNs < r.Stages[j].StartNs
		}
		return r.Stages[i].Name < r.Stages[j].Name
	})
	r.Counters, r.Gauges = t.counterValues()
	r.Histograms = t.histogramSnapshots()
	return r
}

// WriteReport encodes the run report as indented JSON.
func (t *Trace) WriteReport(w io.Writer) error {
	r := t.Report()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&r)
}

// WriteSummary renders the human stage/counter table the CLIs print to
// stderr under -stats. A nil Trace writes nothing.
func (t *Trace) WriteSummary(w io.Writer) error {
	if t == nil {
		return nil
	}
	r := t.Report()
	status := "complete"
	if !r.Complete {
		status = "ABORTED: " + r.Error
	}
	if _, err := fmt.Fprintf(w, "self-observability: wall %v, %s\n",
		time.Duration(r.WallNs).Round(time.Microsecond), status); err != nil {
		return err
	}
	if len(r.Stages) > 0 {
		fmt.Fprintf(w, "  %-24s %7s %12s %12s %8s\n", "stage", "spans", "total", "max", "workers")
		for _, st := range r.Stages {
			fmt.Fprintf(w, "  %-24s %7d %12v %12v %8d\n",
				st.Name, st.Count,
				time.Duration(st.TotalNs).Round(time.Microsecond),
				time.Duration(st.MaxNs).Round(time.Microsecond),
				st.Workers)
		}
	}
	writeKV := func(title string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		fmt.Fprintf(w, "  %s:\n", title)
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "    %-28s %d\n", name, m[name])
		}
	}
	writeKV("counters", r.Counters)
	writeKV("gauges", r.Gauges)
	if len(r.Histograms) > 0 {
		fmt.Fprintf(w, "  histograms:\n")
		names := make([]string, 0, len(r.Histograms))
		for name := range r.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := r.Histograms[name]
			fmt.Fprintf(w, "    %-28s n=%d sum=%d p50=%d p90=%d p99=%d\n",
				name, h.Count, h.Sum, h.P50, h.P90, h.P99)
		}
	}
	return nil
}
