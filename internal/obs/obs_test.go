package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanRecordsEvent(t *testing.T) {
	tr := New()
	end := tr.Span("load")
	time.Sleep(time.Millisecond)
	end()
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	e := events[0]
	if e.Name != "load" {
		t.Errorf("name = %q", e.Name)
	}
	if e.Dur <= 0 {
		t.Errorf("duration %d not positive", e.Dur)
	}
	if e.Goid <= 0 {
		t.Errorf("goid %d not positive", e.Goid)
	}
}

// TestConcurrentSpans hammers the sharded buffers and the registries
// from many goroutines; run under -race this is the data-race proof.
func TestConcurrentSpans(t *testing.T) {
	tr := New()
	const workers, per = 16, 50
	c := tr.Counter("work.items")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := tr.Gauge("work.high_water")
			for i := 0; i < per; i++ {
				end := tr.Span("work")
				c.Add(1)
				g.Max(int64(i))
				end()
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Events()); got != workers*per {
		t.Errorf("got %d events, want %d", got, workers*per)
	}
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := tr.Gauge("work.high_water").Value(); got != per-1 {
		t.Errorf("gauge = %d, want %d", got, per-1)
	}
	rep := tr.Report()
	if len(rep.Stages) != 1 || rep.Stages[0].Count != workers*per {
		t.Errorf("report stages = %+v", rep.Stages)
	}
	if rep.Stages[0].Workers < 2 {
		t.Errorf("expected multiple worker goroutines, got %d", rep.Stages[0].Workers)
	}
}

// TestDisabledZeroAlloc is the acceptance gate: a nil trace's span,
// counter, and gauge paths allocate nothing.
func TestDisabledZeroAlloc(t *testing.T) {
	var tr *Trace
	c := tr.Counter("x")
	g := tr.Gauge("y")
	allocs := testing.AllocsPerRun(1000, func() {
		end := tr.Span("stage")
		c.Add(1)
		g.Set(7)
		end()
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates %v per op, want 0", allocs)
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	tr.Span("x")()
	tr.Fail(errors.New("boom"))
	if tr.Err() != nil || tr.Enabled() || tr.Events() != nil || tr.Wall() != 0 {
		t.Error("nil trace leaked state")
	}
	rep := tr.Report()
	if !rep.Complete || len(rep.Stages) != 0 {
		t.Errorf("nil report = %+v", rep)
	}
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil summary wrote %q (err %v)", buf.String(), err)
	}
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Errorf("nil chrome trace: %v", err)
	}
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil || len(f.TraceEvents) != 0 {
		t.Errorf("nil chrome trace invalid: %v, %d events", err, len(f.TraceEvents))
	}
}

// TestChromeTraceValid checks the exported JSON against the trace-event
// schema: a traceEvents array whose records carry name/ph/ts/pid/tid,
// complete events carry dur, and every goroutine has a thread_name
// metadata record.
func TestChromeTraceValid(t *testing.T) {
	tr := New()
	tr.Span("load")()
	tr.Span("propagate")()
	tr.Counter("gmon.bytes_read").Add(123)
	tr.Gauge("merge.workers").Set(4)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  *int64         `json:"pid"`
			Tid  *int64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]int{}
	threadNames := 0
	for _, e := range f.TraceEvents {
		if e.Name == "" || e.Ph == "" || e.Ts == nil || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event missing required fields: %+v", e)
		}
		seen[e.Ph]++
		switch e.Ph {
		case "X":
			if e.Dur == nil {
				t.Errorf("complete event %q missing dur", e.Name)
			}
		case "M":
			if e.Name == "thread_name" {
				threadNames++
				if e.Args["name"] == "" {
					t.Errorf("thread_name without a name arg")
				}
			}
		case "C":
			if _, ok := e.Args["value"]; !ok {
				t.Errorf("counter event %q missing value arg", e.Name)
			}
		}
	}
	if seen["X"] != 2 {
		t.Errorf("got %d complete events, want 2", seen["X"])
	}
	if seen["C"] != 2 {
		t.Errorf("got %d counter events, want 2 (counter + gauge)", seen["C"])
	}
	if threadNames == 0 {
		t.Error("no thread_name metadata")
	}
}

func TestReportAggregatesByName(t *testing.T) {
	tr := New()
	for i := 0; i < 3; i++ {
		tr.Span("gmon.read_file")()
	}
	tr.Span("scc")()
	rep := tr.Report()
	if !rep.Complete || rep.Schema != RunReportSchema {
		t.Fatalf("report header: %+v", rep)
	}
	if len(rep.Stages) != 2 {
		t.Fatalf("got %d stages, want 2: %+v", len(rep.Stages), rep.Stages)
	}
	byName := map[string]StageTiming{}
	for _, st := range rep.Stages {
		byName[st.Name] = st
	}
	if byName["gmon.read_file"].Count != 3 {
		t.Errorf("read_file count = %d, want 3", byName["gmon.read_file"].Count)
	}
	if byName["scc"].Count != 1 {
		t.Errorf("scc count = %d, want 1", byName["scc"].Count)
	}
	// Stages are ordered by first start.
	if rep.Stages[0].Name != "gmon.read_file" {
		t.Errorf("stage order: %+v", rep.Stages)
	}
}

func TestFailMarksPartial(t *testing.T) {
	tr := New()
	tr.Span("merge")()
	tr.Fail(context.Canceled)
	tr.Fail(errors.New("later error loses")) // first Fail wins
	rep := tr.Report()
	if rep.Complete {
		t.Error("report still complete after Fail")
	}
	if rep.Error != context.Canceled.Error() {
		t.Errorf("error = %q", rep.Error)
	}
	if len(rep.Stages) != 1 {
		t.Errorf("partial report lost stages: %+v", rep.Stages)
	}
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ABORTED") {
		t.Errorf("summary does not flag the abort:\n%s", buf.String())
	}
}

func TestContextCarrier(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Error("background context carries a trace")
	}
	tr := New()
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Error("trace lost in context round-trip")
	}
	if got := NewContext(context.Background(), nil); FromContext(got) != nil {
		t.Error("nil trace attached")
	}
}

func TestWriteReportJSON(t *testing.T) {
	tr := New()
	tr.Span("load")()
	tr.Counter("object.bytes_read").Add(42)
	var buf bytes.Buffer
	if err := tr.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	var rep RunReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != RunReportSchema || !rep.Complete {
		t.Errorf("decoded report: %+v", rep)
	}
	if rep.Counters["object.bytes_read"] != 42 {
		t.Errorf("counters = %v", rep.Counters)
	}
}
