package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition, hand-rolled (no client library): the
// writer renders a Registry for GET /metrics, and the parser reads the
// same format back for validation — cmd/metricscheck, the loadgen
// scraper, and the round-trip tests all build on ParseExposition.
// Schema documented in docs/FORMATS.md under gprofd.metrics.v1.

// WriteExposition renders the registry in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each with
// `# HELP` / `# TYPE` header lines, series sorted by label string.
// Histograms emit cumulative `_bucket` samples for their non-empty
// buckets plus the mandatory `le="+Inf"` bound, `_sum`, and `_count`.
// The `+Inf` bucket and `_count` both come from one bucket snapshot, so
// they agree even while Observe calls race with the scrape. A nil
// Registry writes nothing.
func WriteExposition(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		if len(f.series) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			switch m := s.metric.(type) {
			case *Counter:
				writeSample(bw, f.name, s.labels, "", m.Value())
			case *Gauge:
				writeSample(bw, f.name, s.labels, "", m.Value())
			case *Histogram:
				buckets, total, sum := m.Snapshot()
				var cum int64
				for _, b := range buckets {
					cum += b.Count
					writeBucket(bw, f.name, s.labels, strconv.FormatInt(b.Upper, 10), cum)
				}
				writeBucket(bw, f.name, s.labels, "+Inf", total)
				writeSample(bw, f.name+"_sum", s.labels, "", sum)
				writeSample(bw, f.name+"_count", s.labels, "", total)
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line.
func writeSample(w io.Writer, name, labels, _ string, v int64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %d\n", name, v)
		return
	}
	fmt.Fprintf(w, "%s{%s} %d\n", name, labels, v)
}

// writeBucket emits one cumulative `name_bucket{...,le="bound"}` line.
func writeBucket(w io.Writer, name, labels, le string, v int64) {
	if labels == "" {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, v)
		return
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels, le, v)
}

// escapeHelp applies the HELP-line escapes (backslash and newline).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// ExpoSample is one parsed sample line.
type ExpoSample struct {
	Name   string            // full sample name, e.g. "x_bucket"
	Labels map[string]string // nil when unlabeled
	Value  float64
}

// ExpoFamily is one parsed metric family: the TYPE declaration plus
// every sample that belongs to it, in file order.
type ExpoFamily struct {
	Name    string // family name from the TYPE line
	Kind    string // "counter", "gauge", "histogram", "summary", "untyped"
	Help    string
	Samples []ExpoSample
}

// Exposition is one parsed scrape.
type Exposition struct {
	Families []*ExpoFamily
	byName   map[string]*ExpoFamily
}

// Family returns the named family, or nil.
func (e *Exposition) Family(name string) *ExpoFamily {
	return e.byName[name]
}

// Sample returns the value of the sample with the given full name and
// exact label set (as "k", "v" pairs), searching every family.
func (e *Exposition) Sample(name string, labels ...string) (float64, bool) {
	want := make(map[string]string, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		want[labels[i]] = labels[i+1]
	}
	for _, f := range e.Families {
		for _, s := range f.Samples {
			if s.Name == name && labelsEqual(s.Labels, want) {
				return s.Value, true
			}
		}
	}
	return 0, false
}

func labelsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// familyOf maps a sample name to its family name given the declared
// families: histogram samples carry _bucket/_sum/_count suffixes.
func (e *Exposition) familyOf(sample string) *ExpoFamily {
	if f, ok := e.byName[sample]; ok {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suf); ok {
			if f, ok := e.byName[base]; ok {
				return f
			}
		}
	}
	return nil
}

// ParseExposition reads one text-format scrape. It enforces syntax only
// (line shapes, label quoting, numeric values); structural rules —
// types declared before samples, bucket monotonicity — are Validate's
// job, so a caller can distinguish "not the format" from "the format,
// malformed".
func ParseExposition(r io.Reader) (*Exposition, error) {
	e := &Exposition{byName: make(map[string]*ExpoFamily)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	// orphans collects samples seen before (or without) a TYPE line;
	// Validate rejects them, but the parse must not lose them.
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := e.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		f := e.familyOf(s.Name)
		if f == nil {
			// Keep undeclared samples in a synthetic untyped family so
			// Validate can report them.
			f = &ExpoFamily{Name: s.Name, Kind: ""}
			e.byName[s.Name] = f
			e.Families = append(e.Families, f)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

// parseComment handles `# HELP name text` and `# TYPE name kind`; any
// other comment is ignored.
func (e *Exposition) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // plain comment
	}
	switch fields[1] {
	case "TYPE":
		name, kind := fields[2], ""
		if len(fields) >= 4 {
			kind = strings.TrimSpace(fields[3])
		}
		switch kind {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("TYPE %s: unknown kind %q", name, kind)
		}
		if f, ok := e.byName[name]; ok {
			if f.Kind != "" {
				return fmt.Errorf("TYPE %s declared twice", name)
			}
			f.Kind = kind
			return nil
		}
		f := &ExpoFamily{Name: name, Kind: kind}
		e.byName[name] = f
		e.Families = append(e.Families, f)
	case "HELP":
		name, help := fields[2], ""
		if len(fields) >= 4 {
			help = fields[3]
		}
		if f, ok := e.byName[name]; ok {
			f.Help = help
			return nil
		}
		f := &ExpoFamily{Name: name, Help: help}
		e.byName[name] = f
		e.Families = append(e.Families, f)
	}
	return nil
}

// parseSampleLine parses `name{k="v",...} value [timestamp]`.
func parseSampleLine(line string) (ExpoSample, error) {
	var s ExpoSample
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest[1:])
		if err != nil {
			return s, fmt.Errorf("%s: %w", s.Name, err)
		}
		s.Labels = labels
		rest = tail
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("%s: want `value [timestamp]`, got %q", s.Name, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("%s: bad value %q", s.Name, fields[0])
	}
	s.Value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("%s: bad timestamp %q", s.Name, fields[1])
		}
	}
	return s, nil
}

// parseLabels parses `k="v",...}` (the text after the opening brace)
// and returns the remaining tail after the closing brace.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' near %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		if !validMetricName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s: value not quoted", name)
		}
		s = s[1:]
		var b strings.Builder
		for {
			if s == "" {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := s[0]
			s = s[1:]
			if c == '"' {
				break
			}
			if c == '\\' {
				if s == "" {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[0] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", name, s[0])
				}
				s = s[1:]
				continue
			}
			b.WriteByte(c)
		}
		if _, dup := labels[name]; dup {
			return nil, "", fmt.Errorf("label %s repeated", name)
		}
		labels[name] = b.String()
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, ",") {
			s = s[1:]
			continue
		}
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		return nil, "", fmt.Errorf("expected ',' or '}' near %q", s)
	}
}

// Validate applies the structural rules cmd/metricscheck enforces on a
// single scrape: every sample under a declared TYPE, counter and
// histogram values non-negative and finite, and per-series histogram
// invariants (le bounds strictly increasing, cumulative bucket counts
// non-decreasing, `+Inf` present and equal to `_count`, `_sum` and
// `_count` present).
func (e *Exposition) Validate() error {
	for _, f := range e.Families {
		if f.Kind == "" {
			return fmt.Errorf("metric %s: sample without a # TYPE declaration", f.Name)
		}
		if len(f.Samples) == 0 {
			continue
		}
		for _, s := range f.Samples {
			if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
				return fmt.Errorf("metric %s: non-finite value %v", s.Name, s.Value)
			}
			if (f.Kind == "counter" || f.Kind == "histogram") && s.Value < 0 {
				return fmt.Errorf("metric %s: negative %s value %v", s.Name, f.Kind, s.Value)
			}
		}
		if f.Kind == "histogram" {
			if err := validateHistogramFamily(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// histSeries is one histogram series' parsed samples, keyed by the
// label set minus `le`.
type histSeries struct {
	bounds []float64 // le values in file order
	counts []float64 // cumulative counts in file order
	hasInf bool
	inf    float64
	sum    *float64
	count  *float64
}

// validateHistogramFamily groups the family's samples by non-le label
// set and checks each series' invariants.
func validateHistogramFamily(f *ExpoFamily) error {
	series := make(map[string]*histSeries)
	order := []string{}
	get := func(labels map[string]string) *histSeries {
		pairs := make([]string, 0, len(labels))
		for k, v := range labels {
			if k == "le" {
				continue
			}
			pairs = append(pairs, k+"="+v)
		}
		sort.Strings(pairs)
		key := strings.Join(pairs, ",")
		hs, ok := series[key]
		if !ok {
			hs = &histSeries{}
			series[key] = hs
			order = append(order, key)
		}
		return hs
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("histogram %s: bucket without le label", f.Name)
			}
			hs := get(s.Labels)
			if le == "+Inf" {
				hs.hasInf = true
				hs.inf = s.Value
				hs.bounds = append(hs.bounds, math.Inf(1))
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("histogram %s: bad le %q", f.Name, le)
				}
				hs.bounds = append(hs.bounds, b)
			}
			hs.counts = append(hs.counts, s.Value)
		case f.Name + "_sum":
			v := s.Value
			get(s.Labels).sum = &v
		case f.Name + "_count":
			v := s.Value
			get(s.Labels).count = &v
		case f.Name:
			return fmt.Errorf("histogram %s: bare sample without _bucket/_sum/_count suffix", f.Name)
		}
	}
	for _, key := range order {
		hs := series[key]
		where := f.Name
		if key != "" {
			where += "{" + key + "}"
		}
		for i := 1; i < len(hs.bounds); i++ {
			if hs.bounds[i] <= hs.bounds[i-1] {
				return fmt.Errorf("histogram %s: le bounds not increasing (%v after %v)",
					where, hs.bounds[i], hs.bounds[i-1])
			}
			if hs.counts[i] < hs.counts[i-1] {
				return fmt.Errorf("histogram %s: cumulative bucket counts decrease (%v after %v at le=%v)",
					where, hs.counts[i], hs.counts[i-1], hs.bounds[i])
			}
		}
		if !hs.hasInf {
			return fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", where)
		}
		if hs.count == nil {
			return fmt.Errorf("histogram %s: missing _count", where)
		}
		if hs.sum == nil {
			return fmt.Errorf("histogram %s: missing _sum", where)
		}
		if *hs.count != hs.inf {
			return fmt.Errorf("histogram %s: _count %v != +Inf bucket %v", where, *hs.count, hs.inf)
		}
	}
	return nil
}
