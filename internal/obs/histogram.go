package obs

import (
	"math/bits"
	"sync/atomic"
)

// Histogram is a mergeable, log-bucketed distribution of non-negative
// int64 observations (latencies in ns, sizes in bytes, queue depths).
// Observe is lock-free and allocation-free: three atomic adds into a
// fixed bucket array, nothing else — cheap enough to sit on every
// request of a production service. Count and Sum are exact; quantiles
// are estimated from the buckets with a bounded relative error.
//
// Bucketing is log-linear: each power-of-two octave is split into
// histSub linear sub-buckets, so a bucket's width is at most 1/histSub
// of its lower bound and Quantile over-reports by at most a factor of
// (1 + 1/histSub). Values below histSub get exact unit buckets. The
// geometry is fixed and shared by every Histogram, which is what makes
// Merge a plain bucket-wise add with no resampling.
//
// A nil *Histogram — what a nil Trace or Registry hands out — is a
// no-op, matching Counter and Gauge.
type Histogram struct {
	name    string
	sum     atomic.Int64
	buckets [numHistBuckets]atomic.Int64
}

// histSubBits selects 2^3 = 8 sub-buckets per octave: <= 12.5% bucket
// width, 3 shifts and a mask to index.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
)

// numHistBuckets covers the full non-negative int64 range: histSub unit
// buckets, then histSub buckets per octave from 2^histSubBits up to
// 2^63-1.
const numHistBuckets = histSub + (63-histSubBits)*histSub

// histBucket maps a non-negative value to its bucket index. Monotonic:
// v1 <= v2 implies histBucket(v1) <= histBucket(v2).
func histBucket(v int64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // position of the top set bit
	return histSub + (e-histSubBits)*histSub + int(v>>(uint(e)-histSubBits)) - histSub
}

// histUpper returns the largest value that lands in bucket i (the
// bucket's inclusive upper bound) — what Quantile reports.
func histUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	k := uint((i - histSub) / histSub) // octave shift (e - histSubBits)
	sub := int64((i-histSub)%histSub) + histSub
	return (sub+1)<<k - 1
}

// Observe records one value. Negative values clamp to zero so a clock
// hiccup cannot corrupt the geometry. Safe for concurrent use; performs
// zero allocations (pinned by TestHistogramObserveZeroAlloc).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[histBucket(v)].Add(1)
	h.sum.Add(v)
}

// Count returns the exact number of observations: every Observe lands
// in exactly one bucket, so the bucket sum is the count and Observe
// needs no third atomic.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// Sum returns the exact sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Name returns the registered name ("" for nil).
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Merge adds every observation recorded in o into h. Bucket geometry is
// global, so this is an exact bucket-wise sum: merged quantiles are as
// accurate as if every value had been observed on h directly. Merging a
// histogram that is concurrently observing folds in some consistent
// prefix of its updates.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.sum.Add(o.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket holding the rank-ceil(q*n) observation: the estimate never
// undershoots the true value and overshoots by at most 1/histSub of it
// (plus 1 for integer rounding). Returns 0 when nothing was observed.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	var total int64
	var snap [numHistBuckets]int64
	for i := range h.buckets {
		snap[i] = h.buckets[i].Load()
		total += snap[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, n := range snap {
		cum += n
		if cum >= rank {
			return histUpper(i)
		}
	}
	return histUpper(numHistBuckets - 1)
}

// HistogramBucket is one non-empty bucket in a snapshot: Count
// observations with value <= Upper (and above the previous bucket's
// Upper).
type HistogramBucket struct {
	Upper int64
	Count int64
}

// Snapshot returns the non-empty buckets in ascending order plus the
// totals they sum to. Under concurrent Observe calls the bucket counts
// are a consistent-enough prefix: BucketTotal (the sum of the returned
// counts) is internally consistent with the buckets by construction,
// which is what the exposition writer needs for `+Inf == _count`.
func (h *Histogram) Snapshot() (buckets []HistogramBucket, bucketTotal, sum int64) {
	if h == nil {
		return nil, 0, 0
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			buckets = append(buckets, HistogramBucket{Upper: histUpper(i), Count: n})
			bucketTotal += n
		}
	}
	return buckets, bucketTotal, h.sum.Load()
}

// Histogram returns the named histogram from the trace registry,
// registering it on first use. Returns nil (a valid no-op histogram) on
// a nil Trace. Like Counter, hoist the lookup out of hot loops.
func (t *Trace) Histogram(name string) *Histogram {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.histograms[name]
	if !ok {
		h = &Histogram{name: name}
		t.histograms[name] = h
	}
	return h
}
