package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// buildTestRegistry populates a registry with every kind, labeled and
// unlabeled.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("app_requests_total", "requests served", "endpoint", "/v1/flat", "code", "200").Add(42)
	r.Counter("app_requests_total", "requests served", "endpoint", "/v1/flat", "code", "404").Add(3)
	r.Counter("app_requests_total", "requests served", "endpoint", "/v1/ingest", "code", "202").Add(9001)
	r.Counter("app_errors_total", "errors").Add(0)
	r.Gauge("app_in_flight", "in-flight requests").Set(7)
	r.Gauge("app_info", "weird label values", "version", `a"b\c`+"\n").Set(1)
	h := r.Histogram("app_latency_ns", "request latency", "endpoint", "/v1/flat")
	for i := int64(0); i < 1000; i++ {
		h.Observe(i * 1000)
	}
	r.Histogram("app_empty_ns", "never observed")
	return r
}

// TestExpositionRoundTrip writes a registry and parses it back: the
// output must validate and the values must survive.
func TestExpositionRoundTrip(t *testing.T) {
	r := buildTestRegistry()
	var buf bytes.Buffer
	if err := WriteExposition(&buf, r); err != nil {
		t.Fatalf("WriteExposition: %v", err)
	}
	text := buf.String()
	e, err := ParseExposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseExposition:\n%s\nerror: %v", text, err)
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("Validate:\n%s\nerror: %v", text, err)
	}
	if v, ok := e.Sample("app_requests_total", "endpoint", "/v1/ingest", "code", "202"); !ok || v != 9001 {
		t.Errorf("ingest counter = %v (found %v), want 9001", v, ok)
	}
	if v, ok := e.Sample("app_in_flight"); !ok || v != 7 {
		t.Errorf("in-flight gauge = %v (found %v), want 7", v, ok)
	}
	if v, ok := e.Sample("app_latency_ns_count", "endpoint", "/v1/flat"); !ok || v != 1000 {
		t.Errorf("histogram count = %v (found %v), want 1000", v, ok)
	}
	if v, ok := e.Sample("app_latency_ns_bucket", "endpoint", "/v1/flat", "le", "+Inf"); !ok || v != 1000 {
		t.Errorf("+Inf bucket = %v (found %v), want 1000", v, ok)
	}
	if v, ok := e.Sample("app_info", "version", `a"b\c`+"\n"); !ok || v != 1 {
		t.Errorf("escaped label round-trip = %v (found %v), want 1", v, ok)
	}
	f := e.Family("app_requests_total")
	if f == nil || f.Kind != "counter" || len(f.Samples) != 3 {
		t.Errorf("counter family parsed wrong: %+v", f)
	}
	if f := e.Family("app_latency_ns"); f == nil || f.Kind != "histogram" {
		t.Errorf("histogram family parsed wrong: %+v", f)
	}
	// Deterministic output: a second write must be byte-identical.
	var buf2 bytes.Buffer
	if err := WriteExposition(&buf2, r); err != nil {
		t.Fatalf("second WriteExposition: %v", err)
	}
	if buf2.String() != text {
		t.Error("exposition not deterministic across writes")
	}
	// Nil registry writes nothing.
	var empty bytes.Buffer
	if err := WriteExposition(&empty, nil); err != nil || empty.Len() != 0 {
		t.Errorf("nil registry wrote %q, err %v", empty.String(), err)
	}
}

// TestExpositionUnderConcurrentWrites scrapes while writers mutate: the
// output must still validate (the +Inf == _count invariant is the
// interesting one).
func TestExpositionUnderConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hot_ns", "contended histogram")
	c := r.Counter("hot_total", "contended counter")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := int64(w)
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(v % 100_000)
					c.Add(1)
					v += 7919
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := WriteExposition(&buf, r); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		e, err := ParseExposition(&buf)
		if err != nil {
			t.Fatalf("scrape %d parse: %v", i, err)
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("scrape %d invalid under concurrent writes: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestExpositionValidateRejects feeds Validate the malformed shapes
// metricscheck exists to catch.
func TestExpositionValidateRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan_total 5\n",
		"negative counter":    "# TYPE bad_total counter\nbad_total -1\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 2\n",
		"buckets decrease": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"bounds not increasing": "# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"missing sum": "# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_count 1\n",
	}
	for name, text := range cases {
		e, err := ParseExposition(strings.NewReader(text))
		if err != nil {
			t.Errorf("%s: parse error (want validate error): %v", name, err)
			continue
		}
		if err := e.Validate(); err == nil {
			t.Errorf("%s: Validate accepted malformed input", name)
		}
	}
	// Pure syntax errors fail at parse time.
	syntax := map[string]string{
		"bad value":      "x 1.2.3\n",
		"unquoted label": "x{a=b} 1\n",
		"unterminated":   "x{a=\"b} 1\n",
		"bad name":       "1x 5\n",
		"repeated label": "x{a=\"1\",a=\"2\"} 1\n",
	}
	for name, text := range syntax {
		if _, err := ParseExposition(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parser accepted %q", name, text)
		}
	}
}

// TestRegistryNilAndKinds covers the nil registry and kind-conflict
// panic.
func TestRegistryNilAndKinds(t *testing.T) {
	var r *Registry
	r.Counter("x", "").Add(1)
	r.Gauge("x", "").Set(1)
	r.Histogram("x", "").Observe(1)
	live := NewRegistry()
	c1 := live.Counter("same_total", "", "a", "1")
	if c2 := live.Counter("same_total", "", "a", "1"); c2 != c1 {
		t.Error("same labels returned a different series")
	}
	if c3 := live.Counter("same_total", "", "a", "2"); c3 == c1 {
		t.Error("different labels returned the same series")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	live.Gauge("same_total", "")
}
