package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Pprof is the shared -cpuprofile/-memprofile plumbing for the CLIs:
// standard Go execution profiles of the profiler itself, so scale runs
// can be dissected with `go tool pprof`. Register flags before
// flag.Parse, then defer Stop:
//
//	var prof obs.Pprof
//	prof.RegisterFlags(flag.CommandLine)
//	flag.Parse()
//	if err := prof.Start(); err != nil { ... }
//	defer prof.Stop()
//
// Stop writes the heap profile (after a final GC) and closes the CPU
// profile; it is safe to call when neither flag was given.
type Pprof struct {
	cpuPath string
	memPath string
	cpuFile *os.File
}

// RegisterFlags installs -cpuprofile and -memprofile on fs.
func (p *Pprof) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&p.cpuPath, "cpuprofile", "", "write a CPU profile of this run to `file`")
	fs.StringVar(&p.memPath, "memprofile", "", "write a heap profile of this run to `file`")
}

// Start begins CPU profiling if -cpuprofile was given.
func (p *Pprof) Start() error {
	if p.cpuPath == "" {
		return nil
	}
	f, err := os.Create(p.cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("starting CPU profile: %w", err)
	}
	p.cpuFile = f
	return nil
}

// Stop finishes the CPU profile and writes the heap profile, if their
// flags were given. Errors go to stderr: profile trouble must not turn
// a successful analysis into a failed one.
func (p *Pprof) Stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
		}
		p.cpuFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return
		}
		runtime.GC() // materialize final live-heap numbers
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
		}
		f.Close()
	}
}
