package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event export: the -tracefile format and the flight
// recorder dump. The output is the JSON object form of the trace-event
// specification — a "traceEvents" array of complete ("X") events, one
// track (tid) per goroutine that recorded spans, preceded by "M"
// metadata events naming the process and each track, and followed by
// one "C" counter event per registered counter and gauge. Perfetto and
// chrome://tracing load it directly. Timestamps are microseconds since
// trace start (the spec's unit).

// chromeEvent is one trace-event record. Field names are the spec's.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the object-form trace container.
type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// chromePid is the synthetic process id every event carries; the trace
// describes one process (this profiler run).
const chromePid = 1

// writeChromeEvents renders one process' spans plus final counter and
// gauge samples as a trace-event file — shared by Trace (the batch
// -tracefile export) and FlightRecorder (the /debug/flightrec dump).
func writeChromeEvents(w io.Writer, processName string, events []Event,
	counters, gauges map[string]int64, endTs float64) error {
	f := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	if processName == "" {
		// Disabled source: an empty but valid trace.
		return json.NewEncoder(w).Encode(&f)
	}
	f.TraceEvents = make([]chromeEvent, 0, len(events)+8)
	f.TraceEvents = append(f.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": processName},
	})
	// One named track per goroutine that recorded spans, in id order.
	tids := make(map[int64]bool)
	for _, e := range events {
		tids[e.Goid] = true
	}
	order := make([]int64, 0, len(tids))
	for id := range tids {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, id := range order {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: id,
			Args: map[string]any{"name": "goroutine " + strconv.FormatInt(id, 10)},
		})
	}
	for _, e := range events {
		dur := float64(e.Dur) / 1e3
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: e.Name, Cat: "stage", Ph: "X",
			Ts: float64(e.Start) / 1e3, Dur: &dur,
			Pid: chromePid, Tid: e.Goid,
		})
	}
	// Final counter samples so the counter tracks render.
	for _, m := range []map[string]int64{counters, gauges} {
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: name, Ph: "C", Ts: endTs, Pid: chromePid, Tid: 0,
				Args: map[string]any{"value": m[name]},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// WriteChromeTrace exports every recorded span as Chrome trace-event
// JSON. A nil Trace writes an empty but valid trace, so error handling
// at call sites does not depend on the observability state.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return writeChromeEvents(w, "", nil, nil, nil, 0)
	}
	end := float64(t.Wall().Nanoseconds()) / 1e3
	counters, gauges := t.counterValues()
	return writeChromeEvents(w, "gprof self-profile", t.Events(), counters, gauges, end)
}
