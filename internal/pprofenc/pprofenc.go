// Package pprofenc encodes a profile's stacks view as a pprof
// profile.proto stream (gzipped), the interchange format go tool
// pprof and every modern profile viewer consume — and decodes its own
// output with a minimal wire-format reader, so round-trips are
// testable without external tooling or a protobuf dependency.
//
// The wire format is hand-rolled: profile.proto uses only two wire
// types (varint and length-delimited), so the encoder is a pair of
// append helpers over binio's LEB128 varints. Field numbers follow
// github.com/google/pprof/proto/profile.proto:
//
//	Profile:  1 sample_type (ValueType)   repeated
//	          2 sample      (Sample)      repeated
//	          4 location    (Location)    repeated
//	          5 function    (Function)    repeated
//	          6 string_table (string)     repeated, [0] must be ""
//	          11 period_type (ValueType)
//	          12 period      (int64)
//	ValueType: 1 type, 2 unit             (string-table indices)
//	Sample:   1 location_id (uint64)      repeated, leaf first
//	          2 value       (int64)       repeated
//	Location: 1 id, 4 line (Line)
//	Line:     1 function_id
//	Function: 1 id, 2 name, 3 system_name (string-table indices)
//
// Every sample is one call-path node with self ticks: its location
// chain runs leaf-first to the root, so viewers rebuild exactly the
// node tree the model carries. Locations are synthetic (one per
// routine name, no addresses or mappings): the simulated machine's
// symbols are fully resolved by model build time.
package pprofenc

import (
	"compress/gzip"
	"fmt"
	"io"

	"repro/internal/binio"
	"repro/internal/model"
)

// Proto field numbers, as message offsets (field<<3 | wiretype).
const (
	wireVarint = 0
	wireBytes  = 2
)

func appendTag(b []byte, field, wire int) []byte {
	return binio.AppendUvarint(b, uint64(field<<3|wire))
}

func appendVarintField(b []byte, field int, v uint64) []byte {
	b = appendTag(b, field, wireVarint)
	return binio.AppendUvarint(b, v)
}

func appendBytesField(b []byte, field int, payload []byte) []byte {
	b = appendTag(b, field, wireBytes)
	b = binio.AppendUvarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func appendStringField(b []byte, field int, s string) []byte {
	b = appendTag(b, field, wireBytes)
	b = binio.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// valueType encodes ValueType{type, unit} from string-table indices.
func valueType(typ, unit uint64) []byte {
	var m []byte
	m = appendVarintField(m, 1, typ)
	return appendVarintField(m, 2, unit)
}

// Encode writes p's stacks view to w as a gzipped profile.proto
// stream. It fails when the profile has no stacks view.
func Encode(w io.Writer, p *model.Profile) error {
	if p.Stacks == nil {
		return fmt.Errorf("pprofenc: %w", model.ErrNoStacks)
	}
	v := p.Stacks

	// String table: index 0 is "", then fixed labels, then routine
	// names in first-use (preorder) order — deterministic.
	strs := []string{"", "samples", "count"}
	strIdx := map[string]uint64{"": 0, "samples": 1, "count": 2}
	intern := func(s string) uint64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := uint64(len(strs))
		strs = append(strs, s)
		strIdx[s] = i
		return i
	}

	// One synthetic location (and function) per routine name; ids are
	// 1-based as the format requires.
	locIdx := map[string]uint64{}
	locOrder := []string{}
	locFor := func(name string) uint64 {
		if id, ok := locIdx[name]; ok {
			return id
		}
		id := uint64(len(locOrder) + 1)
		locIdx[name] = id
		locOrder = append(locOrder, name)
		return id
	}

	var out []byte
	out = appendBytesField(out, 1, valueType(intern("samples"), intern("count")))

	// Samples: every node that was a sample's innermost resolved frame,
	// location ids leaf-first up the parent chain.
	var chain []uint64
	var sm []byte
	for i := range v.Nodes {
		n := &v.Nodes[i]
		if n.SelfTicks == 0 {
			continue
		}
		chain = chain[:0]
		for j := i; j >= 0; j = v.Nodes[j].Parent {
			chain = append(chain, locFor(v.Nodes[j].Name))
		}
		sm = sm[:0]
		var ids []byte
		for _, id := range chain {
			ids = binio.AppendUvarint(ids, id)
		}
		sm = appendBytesField(sm, 1, ids) // packed location_id
		var vals []byte
		vals = binio.AppendUvarint(vals, uint64(n.SelfTicks))
		sm = appendBytesField(sm, 2, vals) // packed value
		out = appendBytesField(out, 2, sm)
	}

	// Locations and functions, in first-use order.
	for i, name := range locOrder {
		id := uint64(i + 1)
		var line []byte
		line = appendVarintField(line, 1, id) // function_id == location id
		var loc []byte
		loc = appendVarintField(loc, 1, id)
		loc = appendBytesField(loc, 4, line)
		out = appendBytesField(out, 4, loc)
		nameIdx := intern(name)
		var fn []byte
		fn = appendVarintField(fn, 1, id)
		fn = appendVarintField(fn, 2, nameIdx)
		fn = appendVarintField(fn, 3, nameIdx) // system_name
		out = appendBytesField(out, 5, fn)
	}
	for _, s := range strs {
		out = appendStringField(out, 6, s)
	}
	out = appendBytesField(out, 11, valueType(strIdx["samples"], strIdx["count"]))
	out = appendVarintField(out, 12, 1) // period

	zw := gzip.NewWriter(w)
	if _, err := zw.Write(out); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}
