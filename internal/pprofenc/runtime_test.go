package pprofenc

import (
	"bytes"
	"runtime/pprof"
	"testing"
	"time"
)

// TestDecodeGoRuntimeProfile feeds the decoder a real runtime/pprof CPU
// capture — the input the gprofd self-profiling loop hands it. Unlike
// our own Encode output, runtime profiles carry mappings, multi-line
// locations, and (when symbolization is deferred) address-only
// locations; the decode must survive all of it.
func TestDecodeGoRuntimeProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		t.Skipf("cannot start CPU profile (already active?): %v", err)
	}
	// Burn CPU so the capture likely holds samples; correctness below
	// does not depend on it.
	deadline := time.Now().Add(250 * time.Millisecond)
	x := 1.0
	for time.Now().Before(deadline) {
		for i := 0; i < 10000; i++ {
			x = x*1.000001 + 3
		}
	}
	pprof.StopCPUProfile()
	_ = x

	d, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode(runtime profile): %v", err)
	}
	if len(d.SampleType) == 0 {
		t.Fatal("runtime profile decoded with no sample types")
	}
	foundSamples := false
	for _, st := range d.SampleType {
		if st[0] == "samples" && st[1] == "count" {
			foundSamples = true
		}
	}
	if !foundSamples {
		t.Errorf("sample types %v missing samples/count", d.SampleType)
	}
	if d.PeriodType[1] != "nanoseconds" || d.Period <= 0 {
		t.Errorf("period = %v %d, want nanoseconds > 0", d.PeriodType, d.Period)
	}
	for _, s := range d.Samples {
		if len(s.Stack) == 0 {
			t.Fatal("decoded sample with empty stack")
		}
		for _, name := range s.Stack {
			if name == "" {
				t.Fatal("decoded sample with empty frame name")
			}
		}
	}
	t.Logf("decoded %d sample rows, period %dns", len(d.Samples), d.Period)
}

// TestDecodeAddressOnlyLocation pins the fallback for locations that
// carry an address but no line table: the frame resolves to a hex name
// instead of failing the decode.
func TestDecodeAddressOnlyLocation(t *testing.T) {
	var strTab []byte
	strTab = appendStringField(nil, 6, "") // string 0 must be ""

	// location{id:1, address:0xabcd} — no line message.
	var loc []byte
	loc = appendVarintField(loc, 1, 1)
	loc = appendVarintField(loc, 3, 0xabcd)

	// sample{location_id:[1], value:[7]}
	var smp []byte
	smp = appendVarintField(smp, 1, 1)
	smp = appendVarintField(smp, 2, 7)

	// sample_type{type:"samples"(1), unit:"count"(2)}
	var st []byte
	st = appendVarintField(st, 1, 1)
	st = appendVarintField(st, 2, 2)

	var prof []byte
	prof = appendBytesField(prof, 1, st)
	prof = appendBytesField(prof, 2, smp)
	prof = appendBytesField(prof, 4, loc)
	prof = append(prof, strTab...)
	prof = appendStringField(prof, 6, "samples")
	prof = appendStringField(prof, 6, "count")

	d, err := Decode(bytes.NewReader(prof))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(d.Samples) != 1 || len(d.Samples[0].Stack) != 1 {
		t.Fatalf("decoded %+v, want one sample with one frame", d.Samples)
	}
	if got := d.Samples[0].Stack[0]; got != "0xabcd" {
		t.Errorf("address-only frame resolved to %q, want 0xabcd", got)
	}
	if d.Samples[0].Values[0] != 7 {
		t.Errorf("value = %d, want 7", d.Samples[0].Values[0])
	}
}
