package pprofenc

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/gmon"
	"repro/internal/model"
)

func stackedProfile(t *testing.T) *model.Profile {
	t.Helper()
	resolve := func(pc int64) (string, bool) {
		switch pc / 0x10 {
		case 0:
			return "main", true
		case 1:
			return "work", true
		case 2:
			return "spin", true
		}
		return "", false
	}
	stacks := []gmon.StackSample{
		{PCs: []int64{0x24, 0x18, 0x08}, Count: 5}, // main;work;spin
		{PCs: []int64{0x14, 0x08}, Count: 3},       // main;work
		{PCs: []int64{0x04}, Count: 9},             // main
	}
	return &model.Profile{
		Schema: model.SchemaV2,
		Hz:     60,
		Stacks: model.BuildStacks(stacks, resolve, 0),
	}
}

// TestEncodeDecodeRoundTrip: the gzipped profile.proto stream decodes
// back to exactly the model's self-ticked call paths, leaf first.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := stackedProfile(t)
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	// gzip magic: pprof consumers expect a compressed stream.
	if b := buf.Bytes(); len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
		t.Fatalf("output not gzipped: % x", b[:2])
	}
	d, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if want := [][2]string{{"samples", "count"}}; !reflect.DeepEqual(d.SampleType, want) {
		t.Errorf("sample types = %v, want %v", d.SampleType, want)
	}
	if d.PeriodType != [2]string{"samples", "count"} || d.Period != 1 {
		t.Errorf("period = %v / %d", d.PeriodType, d.Period)
	}
	// Nodes are preorder with name-sorted children: main, then
	// main>work, then main>work>spin — every row leaf-first.
	want := []DecodedSample{
		{Stack: []string{"main"}, Values: []int64{9}},
		{Stack: []string{"work", "main"}, Values: []int64{3}},
		{Stack: []string{"spin", "work", "main"}, Values: []int64{5}},
	}
	if !reflect.DeepEqual(d.Samples, want) {
		t.Errorf("samples = %+v, want %+v", d.Samples, want)
	}
}

// TestTopAggregation: flat/cum roll up the way pprof -top does.
func TestTopAggregation(t *testing.T) {
	p := stackedProfile(t)
	var buf bytes.Buffer
	if err := Encode(&buf, p); err != nil {
		t.Fatal(err)
	}
	d, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := []TopRow{
		{Name: "main", Flat: 9, Cum: 17},
		{Name: "spin", Flat: 5, Cum: 5},
		{Name: "work", Flat: 3, Cum: 8},
	}
	if got := d.Top(); !reflect.DeepEqual(got, want) {
		t.Errorf("top = %+v, want %+v", got, want)
	}
	var top bytes.Buffer
	if err := d.WriteTop(&top); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(top.Bytes(), []byte("pprof profile: 17 samples, 3 sample rows")) {
		t.Errorf("WriteTop header missing:\n%s", top.String())
	}
}

// TestEncodeDeterministic: two encodings of the same view are
// byte-identical (interning orders are first-use, not map order).
func TestEncodeDeterministic(t *testing.T) {
	p := stackedProfile(t)
	var a, b bytes.Buffer
	if err := Encode(&a, p); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("encoding is not deterministic")
	}
}

func TestEncodeNoStacks(t *testing.T) {
	err := Encode(&bytes.Buffer{}, &model.Profile{Schema: model.Schema, Hz: 60})
	if !errors.Is(err, model.ErrNoStacks) {
		t.Errorf("err = %v, want ErrNoStacks", err)
	}
}

func TestDecodeHostile(t *testing.T) {
	cases := map[string][]byte{
		"empty varint stream": {0x80, 0x80, 0x80},
		"gzip, bad payload":   {0x1f, 0x8b, 0x00},
		"truncated bytes field": append([]byte{0x32, 0x7f}, // field 6 wire 2 len 127
			[]byte("short")...),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
}
