package pprofenc

import (
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// Decoded is the subset of a pprof profile the minimal reader
// recovers: enough to verify a round-trip against the model and to
// print a -top style summary without go tool pprof.
type Decoded struct {
	// SampleType lists the (type, unit) name pairs.
	SampleType [][2]string
	// Samples hold resolved routine names, leaf first.
	Samples []DecodedSample
	// PeriodType and Period mirror the profile's period fields.
	PeriodType [2]string
	Period     int64
}

// DecodedSample is one sample: its resolved call stack (leaf first)
// and its values, one per sample type.
type DecodedSample struct {
	Stack  []string
	Values []int64
}

// rawParser walks protobuf wire data without a schema.
type rawParser struct {
	b   []byte
	off int
}

func (p *rawParser) done() bool { return p.off >= len(p.b) }

func (p *rawParser) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for {
		if p.off >= len(p.b) {
			return 0, io.ErrUnexpectedEOF
		}
		c := p.b[p.off]
		p.off++
		if shift == 63 && c > 1 {
			return 0, fmt.Errorf("pprofenc: varint overflows uint64")
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
		shift += 7
		if shift > 63 {
			return 0, fmt.Errorf("pprofenc: varint overflows uint64")
		}
	}
}

// field reads one tag and its payload: wire type 0 returns the varint
// in v; wire type 2 returns the bytes in msg; other wire types are
// skipped with field 0 returned.
func (p *rawParser) field() (field int, v uint64, msg []byte, err error) {
	tag, err := p.uvarint()
	if err != nil {
		return 0, 0, nil, err
	}
	field, wire := int(tag>>3), int(tag&7)
	switch wire {
	case wireVarint:
		v, err = p.uvarint()
		return field, v, nil, err
	case wireBytes:
		n, err := p.uvarint()
		if err != nil {
			return 0, 0, nil, err
		}
		if uint64(len(p.b)-p.off) < n {
			return 0, 0, nil, io.ErrUnexpectedEOF
		}
		msg = p.b[p.off : p.off+int(n)]
		p.off += int(n)
		return field, 0, msg, nil
	case 1: // fixed64
		if len(p.b)-p.off < 8 {
			return 0, 0, nil, io.ErrUnexpectedEOF
		}
		p.off += 8
		return 0, 0, nil, nil
	case 5: // fixed32
		if len(p.b)-p.off < 4 {
			return 0, 0, nil, io.ErrUnexpectedEOF
		}
		p.off += 4
		return 0, 0, nil, nil
	default:
		return 0, 0, nil, fmt.Errorf("pprofenc: unsupported wire type %d", wire)
	}
}

// packedUvarints decodes a packed repeated varint payload.
func packedUvarints(b []byte) ([]uint64, error) {
	p := rawParser{b: b}
	var out []uint64
	for !p.done() {
		v, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseValueType(b []byte) (typ, unit uint64, err error) {
	p := rawParser{b: b}
	for !p.done() {
		f, v, _, err := p.field()
		if err != nil {
			return 0, 0, err
		}
		switch f {
		case 1:
			typ = v
		case 2:
			unit = v
		}
	}
	return typ, unit, nil
}

// Decode reads a (possibly gzipped) profile.proto stream and resolves
// sample stacks to routine names through the location, line, and
// function tables. It understands exactly the shape Encode emits plus
// enough generality (non-packed repeats, skipped unknown fields) to
// stay honest as a verifier.
func Decode(r io.Reader) (*Decoded, error) {
	head := make([]byte, 2)
	n, err := io.ReadFull(r, head)
	if err != nil && err != io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("pprofenc: reading stream: %w", err)
	}
	full := io.MultiReader(newSliceReader(head[:n]), r)
	if n == 2 && head[0] == 0x1f && head[1] == 0x8b {
		zr, err := gzip.NewReader(full)
		if err != nil {
			return nil, fmt.Errorf("pprofenc: opening gzip stream: %w", err)
		}
		defer zr.Close()
		full = zr
	}
	raw, err := io.ReadAll(full)
	if err != nil {
		return nil, fmt.Errorf("pprofenc: reading stream: %w", err)
	}

	var (
		strs        []string
		sampleTypes [][2]uint64
		samples     []struct {
			locs []uint64
			vals []uint64
		}
		locFn      = map[uint64]uint64{} // location id -> function id
		locAddr    = map[uint64]uint64{} // location id -> address (line-less locations)
		fnName     = map[uint64]uint64{} // function id -> string index
		periodType [2]uint64
		period     int64
	)
	p := rawParser{b: raw}
	for !p.done() {
		f, v, msg, err := p.field()
		if err != nil {
			return nil, err
		}
		switch f {
		case 1: // sample_type
			t, u, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, [2]uint64{t, u})
		case 2: // sample
			sp := rawParser{b: msg}
			var s struct {
				locs []uint64
				vals []uint64
			}
			for !sp.done() {
				sf, sv, sm, err := sp.field()
				if err != nil {
					return nil, err
				}
				switch sf {
				case 1:
					if sm != nil {
						ids, err := packedUvarints(sm)
						if err != nil {
							return nil, err
						}
						s.locs = append(s.locs, ids...)
					} else {
						s.locs = append(s.locs, sv)
					}
				case 2:
					if sm != nil {
						vs, err := packedUvarints(sm)
						if err != nil {
							return nil, err
						}
						s.vals = append(s.vals, vs...)
					} else {
						s.vals = append(s.vals, sv)
					}
				}
			}
			samples = append(samples, s)
		case 4: // location
			lp := rawParser{b: msg}
			var id, addr, fn uint64
			hasLine := false
			for !lp.done() {
				lf, lv, lm, err := lp.field()
				if err != nil {
					return nil, err
				}
				switch lf {
				case 1:
					id = lv
				case 3:
					addr = lv
				case 4: // line
					hasLine = true
					ip := rawParser{b: lm}
					for !ip.done() {
						inf, inv, _, err := ip.field()
						if err != nil {
							return nil, err
						}
						if inf == 1 && fn == 0 {
							fn = inv
						}
					}
				}
			}
			// Real collectors (Go's runtime/pprof among them) may emit
			// locations carrying only an address, symbolized later; keep
			// the address so such frames resolve to a hex name instead
			// of failing the whole decode.
			if hasLine {
				locFn[id] = fn
			} else {
				locAddr[id] = addr
			}
		case 5: // function
			fp := rawParser{b: msg}
			var id, name uint64
			for !fp.done() {
				ff, fv, _, err := fp.field()
				if err != nil {
					return nil, err
				}
				switch ff {
				case 1:
					id = fv
				case 2:
					name = fv
				}
			}
			fnName[id] = name
		case 6: // string_table
			strs = append(strs, string(msg))
		case 11: // period_type
			t, u, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			periodType = [2]uint64{t, u}
		case 12: // period
			period = int64(v)
		}
	}

	str := func(i uint64) (string, error) {
		if i >= uint64(len(strs)) {
			return "", fmt.Errorf("pprofenc: string index %d out of range (%d strings)", i, len(strs))
		}
		return strs[i], nil
	}
	d := &Decoded{Period: period}
	if t, err := str(periodType[0]); err == nil {
		u, err2 := str(periodType[1])
		if err2 != nil {
			return nil, err2
		}
		d.PeriodType = [2]string{t, u}
	} else {
		return nil, err
	}
	for _, st := range sampleTypes {
		t, err := str(st[0])
		if err != nil {
			return nil, err
		}
		u, err := str(st[1])
		if err != nil {
			return nil, err
		}
		d.SampleType = append(d.SampleType, [2]string{t, u})
	}
	for _, s := range samples {
		ds := DecodedSample{Values: make([]int64, len(s.vals))}
		for i, v := range s.vals {
			ds.Values[i] = int64(v)
		}
		for _, loc := range s.locs {
			fn, ok := locFn[loc]
			if !ok {
				if addr, ok := locAddr[loc]; ok {
					ds.Stack = append(ds.Stack, fmt.Sprintf("0x%x", addr))
					continue
				}
				return nil, fmt.Errorf("pprofenc: sample references unknown location %d", loc)
			}
			idx, ok := fnName[fn]
			if !ok {
				return nil, fmt.Errorf("pprofenc: location %d references unknown function %d", loc, fn)
			}
			name, err := str(idx)
			if err != nil {
				return nil, err
			}
			if name == "" {
				name = fmt.Sprintf("fn%d", fn)
			}
			ds.Stack = append(ds.Stack, name)
		}
		d.Samples = append(d.Samples, ds)
	}
	return d, nil
}

// newSliceReader avoids importing bytes for one Reader.
type sliceReader struct{ b []byte }

func newSliceReader(b []byte) *sliceReader { return &sliceReader{b} }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}

// TopRow is one line of the Top summary.
type TopRow struct {
	Name string
	Flat int64 // value of samples whose leaf is the function
	Cum  int64 // value of samples with the function anywhere on the stack
}

// Top aggregates the decoded samples per function the way pprof -top
// does: flat for leaf samples, cumulative counted once per sample.
// Rows sort by decreasing flat, ties by decreasing cum, then name.
func (d *Decoded) Top() []TopRow {
	flat := map[string]int64{}
	cum := map[string]int64{}
	for _, s := range d.Samples {
		if len(s.Stack) == 0 || len(s.Values) == 0 {
			continue
		}
		v := s.Values[0]
		flat[s.Stack[0]] += v
		seen := map[string]bool{}
		for _, name := range s.Stack {
			if seen[name] {
				continue
			}
			seen[name] = true
			cum[name] += v
		}
	}
	rows := make([]TopRow, 0, len(cum))
	for name, c := range cum {
		rows = append(rows, TopRow{Name: name, Flat: flat[name], Cum: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Flat != rows[j].Flat {
			return rows[i].Flat > rows[j].Flat
		}
		if rows[i].Cum != rows[j].Cum {
			return rows[i].Cum > rows[j].Cum
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// WriteTop prints the Top rows as a table with a total line, the
// in-repo stand-in for go tool pprof -top.
func (d *Decoded) WriteTop(w io.Writer) error {
	var total int64
	for _, s := range d.Samples {
		if len(s.Values) > 0 {
			total += s.Values[0]
		}
	}
	if _, err := fmt.Fprintf(w, "pprof profile: %d samples, %d sample rows\n", total, len(d.Samples)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "      flat        cum  name\n"); err != nil {
		return err
	}
	for _, r := range d.Top() {
		if _, err := fmt.Fprintf(w, "%10d %10d  %s\n", r.Flat, r.Cum, r.Name); err != nil {
			return err
		}
	}
	return nil
}
