// Package core is the gprof post-processor: it ties the pipeline of the
// paper's §4-§5 together behind one API.
//
// The pipeline, in order:
//
//  1. map the profile's addresses to routines (symtab) and build the
//     dynamic call graph with self times attributed from the histogram
//     (callgraph.Build);
//  2. optionally merge the static call graph scanned from the executable
//     — zero-count arcs that may complete cycles (object.Scan +
//     Graph.AddStatic);
//  3. delete any arcs the user asked to remove, and/or run the bounded
//     cycle-breaking heuristic (cyclebreak);
//  4. find strongly-connected components and topological numbers
//     (scc.Analyze);
//  5. propagate time from descendants to ancestors (propagate.Run);
//  6. render the flat profile, the call graph profile, and the index
//     (report).
//
// Use Analyze for profiles of simulated-machine executables, or
// AnalyzeTable when the symbols come from elsewhere (e.g. the Go-native
// collector in package profgo, which is how gprof profiles itself).
package core

import (
	"fmt"
	"io"

	"repro/internal/callgraph"
	"repro/internal/cyclebreak"
	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/propagate"
	"repro/internal/report"
	"repro/internal/scc"
	"repro/internal/symtab"
)

// Options selects the post-processing features.
type Options struct {
	// Static merges the statically discovered call graph (requires an
	// image; ignored by AnalyzeTable).
	Static bool
	// RemoveArcs deletes these arcs before cycle analysis (the
	// retrospective's -k caller/callee option).
	RemoveArcs []cyclebreak.ArcID
	// AutoBreak runs the bounded heuristic to choose further arcs whose
	// removal breaks remaining cycles, and applies them.
	AutoBreak bool
	// MaxBreakArcs bounds AutoBreak; 0 means cyclebreak's default.
	MaxBreakArcs int
	// Report controls rendering (thresholds, focus, headers).
	Report report.Options
}

// Result is an analyzed profile ready for rendering or inspection.
type Result struct {
	Graph *callgraph.Graph
	// Suggestion holds the cycle-breaking heuristic's output when
	// AutoBreak ran.
	Suggestion *cyclebreak.Suggestion
	// RemovedArcs counts arcs actually deleted (user-specified plus
	// auto-chosen).
	RemovedArcs int

	opt Options
}

// Analyze post-processes a profile against a linked executable image.
func Analyze(im *object.Image, p *gmon.Profile, opt Options) (*Result, error) {
	tab := symtab.New(im)
	if err := tab.Validate(); err != nil {
		return nil, err
	}
	g, err := callgraph.Build(tab, p)
	if err != nil {
		return nil, err
	}
	if opt.Static {
		g.AddStatic(object.Scan(im))
	}
	return finish(g, opt)
}

// AnalyzeTable post-processes a profile against an explicit symbol
// table (no image, so no static arcs).
func AnalyzeTable(tab *symtab.Table, p *gmon.Profile, opt Options) (*Result, error) {
	if err := tab.Validate(); err != nil {
		return nil, err
	}
	g, err := callgraph.Build(tab, p)
	if err != nil {
		return nil, err
	}
	return finish(g, opt)
}

func finish(g *callgraph.Graph, opt Options) (*Result, error) {
	res := &Result{Graph: g, opt: opt}
	for _, id := range opt.RemoveArcs {
		if g.RemoveArc(id.Caller, id.Callee) {
			res.RemovedArcs++
		}
	}
	scc.Analyze(g)
	if opt.AutoBreak {
		sug := cyclebreak.Suggest(g, cyclebreak.Options{MaxArcs: opt.MaxBreakArcs})
		res.Suggestion = &sug
		res.RemovedArcs += cyclebreak.Apply(g, sug.Arcs)
	}
	propagate.Run(g)
	if err := sanity(g); err != nil {
		return nil, err
	}
	return res, nil
}

// sanity verifies the propagation invariant on every analysis; a failure
// indicates a bug, not bad input.
func sanity(g *callgraph.Graph) error {
	if err := propagate.CheckConservation(g); err > 1e-6*(1+g.TotalTicks) {
		return fmt.Errorf("core: internal error: propagation lost %g ticks", err)
	}
	return nil
}

// WriteFlat renders the flat profile (§5.1).
func (r *Result) WriteFlat(w io.Writer) error {
	return report.Flat(w, r.Graph, r.opt.Report)
}

// WriteCallGraph renders the call graph profile (§5.2).
func (r *Result) WriteCallGraph(w io.Writer) error {
	return report.CallGraph(w, r.Graph, r.opt.Report)
}

// WriteIndex renders the alphabetical routine index.
func (r *Result) WriteIndex(w io.Writer) error {
	return report.IndexListing(w, r.Graph)
}

// WriteAll renders the full gprof output: call graph profile, flat
// profile, then the index.
func (r *Result) WriteAll(w io.Writer) error {
	if r.Suggestion != nil && len(r.Suggestion.Arcs) > 0 {
		fmt.Fprintf(w, "cycle-breaking heuristic removed %d arc(s):\n", len(r.Suggestion.Arcs))
		for i, a := range r.Suggestion.Arcs {
			fmt.Fprintf(w, "    %s (count %d)\n", a, r.Suggestion.Counts[i])
		}
		if !r.Suggestion.Complete {
			fmt.Fprintf(w, "    (bound reached; cycles remain)\n")
		}
		fmt.Fprintln(w)
	}
	if err := r.WriteCallGraph(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := r.WriteFlat(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return r.WriteIndex(w)
}
