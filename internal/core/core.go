// Package core is the gprof post-processor: it ties the pipeline of the
// paper's §4-§5 together behind one API.
//
// The pipeline, in order:
//
//  1. map the profile's addresses to routines (symtab) and build the
//     dynamic call graph with self times attributed from the histogram
//     (callgraph.BuildCtx);
//  2. optionally merge the static call graph scanned from the executable
//     — zero-count arcs that may complete cycles (object.Scan +
//     Graph.AddStatic);
//  3. delete any arcs the user asked to remove, and/or run the bounded
//     cycle-breaking heuristic (cyclebreak);
//  4. find strongly-connected components and topological numbers
//     (scc.Analyze);
//  5. propagate time from descendants to ancestors (propagate.RunCtx);
//  6. render the flat profile, the call graph profile, and the index
//     (report).
//
// Run is the entry point: it analyzes a profile against a Source — an
// ImageSource for executables of the simulated machine, or a
// TableSource when the symbols come from elsewhere (e.g. the Go-native
// collector in package profgo, which is how gprof profiles itself).
// Options.Jobs spreads the merge-heavy stages (histogram attribution,
// propagation) across a worker pool, and Options.Cache reuses the
// symbol table and static call graph across analyses of the same
// executable. Run is the only analysis entry point; the deprecated
// Analyze/AnalyzeTable wrappers are gone.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/callgraph"
	"repro/internal/cyclebreak"
	"repro/internal/gmon"
	"repro/internal/model"
	"repro/internal/mon"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/pprofenc"
	"repro/internal/propagate"
	"repro/internal/report"
	"repro/internal/scc"
	"repro/internal/symtab"
)

// ErrBadOptions tags every rejection of a contradictory Options value;
// test with errors.Is.
var ErrBadOptions = errors.New("core: contradictory options")

// Options selects the post-processing features.
type Options struct {
	// Static merges the statically discovered call graph; it requires a
	// Source backed by an executable image (Run rejects it with a
	// TableSource).
	Static bool
	// RemoveArcs deletes these arcs before cycle analysis (the
	// retrospective's -k caller/callee option).
	RemoveArcs []cyclebreak.ArcID
	// AutoBreak runs the bounded heuristic to choose further arcs whose
	// removal breaks remaining cycles, and applies them.
	AutoBreak bool
	// MaxBreakArcs bounds AutoBreak; 0 means cyclebreak's default.
	// Setting it without AutoBreak is rejected by Validate.
	MaxBreakArcs int
	// Jobs is the worker-pool width for the parallel pipeline stages
	// (histogram attribution, time propagation). Zero or one runs the
	// serial pipeline, whose output is byte-identical to the historic
	// one; CLIs default their -jobs flag to GOMAXPROCS.
	Jobs int
	// Cache, when non-nil, memoizes the symbol table and static call
	// graph per image content hash so repeated analyses of the same
	// executable skip re-indexing. Ignored by a TableSource.
	Cache *Cache
	// Report controls rendering (thresholds, focus, headers).
	Report report.Options
}

// CacheKey returns a normalized fingerprint of every option that can
// change Run's output — the analysis switches (Static, RemoveArcs,
// AutoBreak, MaxBreakArcs) and the rendering options. Jobs and Cache
// are deliberately excluded: worker-pool width never changes the
// result (the jobs-invariance tests pin byte-identical output), and
// the cache is a lookup accelerator, not an input. Two Options values
// with equal CacheKeys therefore produce byte-identical reports for
// the same source and profile, which is what lets a serving layer
// memoize finished analyses per (fingerprint, data version, CacheKey).
func (o Options) CacheKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "static=%t;autobreak=%t;maxbreak=%d", o.Static, o.AutoBreak, o.MaxBreakArcs)
	if len(o.RemoveArcs) > 0 {
		// RemoveArcs is a set: deletion order never changes which arcs
		// survive, so the key sorts it.
		ids := make([]string, len(o.RemoveArcs))
		for i, a := range o.RemoveArcs {
			ids[i] = a.String()
		}
		sort.Strings(ids)
		fmt.Fprintf(&b, ";remove=%q", ids)
	}
	r := o.Report
	fmt.Fprintf(&b, ";min=%g;noheaders=%t", r.MinPercent, r.NoHeaders)
	if len(r.Focus) > 0 {
		fmt.Fprintf(&b, ";focus=%q", r.Focus)
	}
	if len(r.Exclude) > 0 {
		fmt.Fprintf(&b, ";exclude=%q", r.Exclude)
	}
	return b.String()
}

// Validate rejects contradictory settings instead of silently ignoring
// them. Every error wraps ErrBadOptions.
func (o Options) Validate() error {
	if o.Jobs < 0 {
		return fmt.Errorf("%w: Jobs %d is negative", ErrBadOptions, o.Jobs)
	}
	if o.MaxBreakArcs < 0 {
		return fmt.Errorf("%w: MaxBreakArcs %d is negative", ErrBadOptions, o.MaxBreakArcs)
	}
	if o.MaxBreakArcs != 0 && !o.AutoBreak {
		return fmt.Errorf("%w: MaxBreakArcs %d set without AutoBreak", ErrBadOptions, o.MaxBreakArcs)
	}
	return nil
}

// jobs returns the effective worker-pool width.
func (o Options) jobs() int {
	if o.Jobs <= 1 {
		return 1
	}
	return o.Jobs
}

// A Source supplies the symbol layer an analysis maps profile addresses
// through: the symbol table, and — when backed by an executable — the
// statically scanned call graph. ImageSource and TableSource are the
// two implementations.
type Source interface {
	// load returns the validated symbol table and, when wantStatic and
	// the source supports it, the static arcs. cache may be nil.
	load(cache *Cache, wantStatic bool) (*symtab.Table, []object.StaticArc, error)
	// supportsStatic reports whether the source can produce a static
	// call graph.
	supportsStatic() bool
}

// ImageSource analyzes against a linked executable image.
type ImageSource struct {
	Image *object.Image
}

func (s ImageSource) supportsStatic() bool { return true }

func (s ImageSource) load(cache *Cache, wantStatic bool) (*symtab.Table, []object.StaticArc, error) {
	if s.Image == nil {
		return nil, nil, errors.New("core: ImageSource has a nil Image")
	}
	if cache != nil {
		return cache.load(s.Image, wantStatic)
	}
	tab := symtab.New(s.Image)
	if err := tab.Validate(); err != nil {
		return nil, nil, err
	}
	var static []object.StaticArc
	if wantStatic {
		static = object.Scan(s.Image)
	}
	return tab, static, nil
}

// TableSource analyzes against an explicit symbol table (no image, so
// no static arcs).
type TableSource struct {
	Table *symtab.Table
}

func (s TableSource) supportsStatic() bool { return false }

func (s TableSource) load(*Cache, bool) (*symtab.Table, []object.StaticArc, error) {
	if s.Table == nil {
		return nil, nil, errors.New("core: TableSource has a nil Table")
	}
	if err := s.Table.Validate(); err != nil {
		return nil, nil, err
	}
	return s.Table, nil, nil
}

// Result is an analyzed profile ready for rendering or inspection.
type Result struct {
	Graph *callgraph.Graph
	// Model is the serializable profile built from Graph after
	// propagation (model.Build); every Write* renderer consumes it, and
	// WriteJSON encodes it under the versioned schema.
	Model *model.Profile
	// Suggestion holds the cycle-breaking heuristic's output when
	// AutoBreak ran.
	Suggestion *cyclebreak.Suggestion
	// RemovedArcs counts arcs actually deleted (user-specified plus
	// auto-chosen).
	RemovedArcs int

	opt Options
}

// Run post-processes a profile against a source of symbols. It is the
// single entry point behind every tool: ctx cancels the long stages
// (attribution, propagation) between pipeline steps, opt.Jobs sets the
// worker-pool width (0 or 1 reproduces the serial pipeline exactly),
// and opt.Cache reuses static layers across calls.
//
// When ctx carries an obs.Trace (obs.NewContext), every pipeline stage
// records a span — load, graph (with its attribute sub-span), scc,
// cyclebreak, propagate, model-build — and the static-layer cache
// publishes its hit/miss gauges, so a run's internal schedule is
// inspectable with -stats or -tracefile. On cancellation the spans
// recorded so far survive in the trace: Run marks it failed and the
// partial run report stays diagnosable.
func Run(ctx context.Context, src Source, p *gmon.Profile, opt Options) (res *Result, err error) {
	tr := obs.FromContext(ctx)
	defer func() {
		if err != nil {
			tr.Fail(err)
		}
	}()
	if src == nil {
		return nil, errors.New("core: nil Source")
	}
	if p == nil {
		return nil, errors.New("core: nil profile")
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.Static && !src.supportsStatic() {
		return nil, fmt.Errorf("%w: Static requires an image-backed source", ErrBadOptions)
	}
	endLoad := tr.Span("load")
	tab, static, err := src.load(opt.Cache, opt.Static)
	endLoad()
	if err != nil {
		return nil, err
	}
	if opt.Cache != nil {
		hits, misses := opt.Cache.Stats()
		tr.Gauge("cache.static_hits").Set(int64(hits))
		tr.Gauge("cache.static_misses").Set(int64(misses))
	}
	endGraph := tr.Span("graph")
	g, err := callgraph.BuildCtx(ctx, tab, p, opt.jobs())
	endGraph()
	if err != nil {
		return nil, err
	}
	if opt.Static {
		g.AddStatic(static)
	}
	tr.Gauge("graph.nodes").Set(int64(g.Len()))
	res, err = finish(ctx, g, opt)
	if err != nil {
		return nil, err
	}
	if len(p.Stacks) > 0 {
		// The context-sensitive view rides alongside the arc-based one,
		// built from the same symbol table; its presence moves the model
		// to the v2 schema. Stack-less profiles skip this entirely, so
		// their JSON stays byte-identical to the v1 goldens.
		endStacks := tr.Span("stacks-build")
		res.Model.Stacks = model.BuildStacks(p.Stacks, func(pc int64) (string, bool) {
			fn, ok := tab.Find(pc)
			if !ok {
				return "", false
			}
			return fn.Name, true
		}, mon.DefaultStackDepth)
		res.Model.Schema = model.SchemaV2
		endStacks()
	}
	return res, nil
}

// LoadProfiles reads one or more profile data files and sums them into
// a single profile, streaming each file through a pooled decode buffer
// across a worker pool of the given width (jobs <= 1 reads
// sequentially). It is the loading half of every tool's pipeline; the
// result feeds Run.
func LoadProfiles(ctx context.Context, names []string, jobs int) (*gmon.Profile, error) {
	return gmon.MergeAllStreaming(ctx, names, jobs)
}

func finish(ctx context.Context, g *callgraph.Graph, opt Options) (*Result, error) {
	tr := obs.FromContext(ctx)
	res := &Result{Graph: g, opt: opt}
	for _, id := range opt.RemoveArcs {
		if g.RemoveArc(id.Caller, id.Callee) {
			res.RemovedArcs++
		}
	}
	endSCC := tr.Span("scc")
	scc.Analyze(g)
	endSCC()
	tr.Gauge("graph.cycles").Set(int64(len(g.Cycles)))
	if opt.AutoBreak {
		endBreak := tr.Span("cyclebreak")
		sug := cyclebreak.Suggest(g, cyclebreak.Options{MaxArcs: opt.MaxBreakArcs})
		res.Suggestion = &sug
		res.RemovedArcs += cyclebreak.Apply(g, sug.Arcs)
		endBreak()
	}
	endProp := tr.Span("propagate")
	err := propagate.RunCtx(ctx, g, opt.jobs())
	endProp()
	if err != nil {
		return nil, err
	}
	if err := sanity(g); err != nil {
		return nil, err
	}
	endModel := tr.Span("model-build")
	res.Model = model.Build(g)
	endModel()
	return res, nil
}

// sanity verifies the propagation invariant on every analysis; a failure
// indicates a bug, not bad input.
func sanity(g *callgraph.Graph) error {
	tolerance := 1e-6 * (1 + g.TotalTicks)
	if lost := propagate.CheckConservation(g); lost > tolerance {
		return fmt.Errorf("core: internal error: propagation lost %g ticks (tolerance %g)", lost, tolerance)
	}
	return nil
}

// WriteFlat renders the flat profile (§5.1).
func (r *Result) WriteFlat(w io.Writer) error {
	return report.Flat(w, r.Model, r.opt.Report)
}

// WriteCallGraph renders the call graph profile (§5.2).
func (r *Result) WriteCallGraph(w io.Writer) error {
	return report.CallGraph(w, r.Model, r.opt.Report)
}

// WriteIndex renders the alphabetical routine index.
func (r *Result) WriteIndex(w io.Writer) error {
	return report.IndexListing(w, r.Model)
}

// WriteJSON encodes the profile model as versioned JSON
// (docs/FORMATS.md); the encoding round-trips through model.Decode.
func (r *Result) WriteJSON(w io.Writer) error {
	return model.Encode(w, r.Model)
}

// WriteFolded renders the stacks view in collapsed-stack ("folded")
// form, the input format of flame-graph renderers. It fails when the
// profile data carried no stack samples.
func (r *Result) WriteFolded(w io.Writer) error {
	return report.Folded(w, r.Model)
}

// WritePprof encodes the stacks view as a gzipped pprof protobuf,
// openable with go tool pprof. It fails when the profile data carried
// no stack samples.
func (r *Result) WritePprof(w io.Writer) error {
	return pprofenc.Encode(w, r.Model)
}

// WriteAll renders the full gprof output: call graph profile, flat
// profile, then the index.
func (r *Result) WriteAll(w io.Writer) error {
	if r.Suggestion != nil && len(r.Suggestion.Arcs) > 0 {
		fmt.Fprintf(w, "cycle-breaking heuristic removed %d arc(s):\n", len(r.Suggestion.Arcs))
		for i, a := range r.Suggestion.Arcs {
			fmt.Fprintf(w, "    %s (count %d)\n", a, r.Suggestion.Counts[i])
		}
		if !r.Suggestion.Complete {
			fmt.Fprintf(w, "    (bound reached; cycles remain)\n")
		}
		fmt.Fprintln(w)
	}
	if err := r.WriteCallGraph(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := r.WriteFlat(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return r.WriteIndex(w)
}
