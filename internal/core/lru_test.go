package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cyclebreak"
	"repro/internal/report"
)

func TestLRUBasics(t *testing.T) {
	l := NewLRU(2)
	if _, ok := l.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	l.Add("a", 1)
	l.Add("b", 2)
	if v, ok := l.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used; adding "c" must evict it.
	l.Add("c", 3)
	if _, ok := l.Get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	if v, ok := l.Get("a"); !ok || v.(int) != 1 {
		t.Errorf("recently used entry a evicted: %v, %v", v, ok)
	}
	hits, misses, evictions := l.Stats()
	if hits != 2 || misses != 2 || evictions != 1 {
		t.Errorf("stats = %d/%d/%d, want hits=2 misses=2 evictions=1", hits, misses, evictions)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d, want 2", l.Len())
	}
}

// TestLRUAddFirstInsertWins pins the concurrent-fill contract: racing
// Adds of one key converge on the first inserted value, so every
// caller shares one cached object.
func TestLRUAddFirstInsertWins(t *testing.T) {
	l := NewLRU(4)
	first := l.Add("k", "one")
	second := l.Add("k", "two")
	if first != "one" || second != "one" {
		t.Errorf("Add returned %v then %v, want both \"one\"", first, second)
	}
}

func TestLRUConcurrent(t *testing.T) {
	l := NewLRU(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				if v, ok := l.Get(key); ok {
					if v.(string) != key {
						t.Errorf("Get(%s) = %v", key, v)
						return
					}
					continue
				}
				l.Add(key, key)
			}
		}(g)
	}
	wg.Wait()
}

// TestOptionsCacheKey pins what the analysis-memoization key must and
// must not depend on: output-affecting options change it, worker-pool
// width and the cache pointer do not, and RemoveArcs order is
// normalized away.
func TestOptionsCacheKey(t *testing.T) {
	base := Options{}
	if base.CacheKey() != (Options{}).CacheKey() {
		t.Fatal("zero Options keys differ")
	}
	same := []Options{
		{Jobs: 7},
		{Cache: NewCache(0)},
		{Jobs: 13, Cache: NewCache(2)},
	}
	for _, o := range same {
		if o.CacheKey() != base.CacheKey() {
			t.Errorf("CacheKey changed by non-output option %+v", o)
		}
	}
	distinct := []Options{
		{Static: true},
		{AutoBreak: true},
		{AutoBreak: true, MaxBreakArcs: 3},
		{RemoveArcs: []cyclebreak.ArcID{{Caller: "a", Callee: "b"}}},
		{Report: report.Options{MinPercent: 1}},
		{Report: report.Options{NoHeaders: true}},
		{Report: report.Options{Focus: []string{"main"}}},
		{Report: report.Options{Exclude: []string{"main"}}},
	}
	seen := map[string]int{base.CacheKey(): -1}
	for i, o := range distinct {
		k := o.CacheKey()
		if j, dup := seen[k]; dup {
			t.Errorf("options %d and %d share key %q", i, j, k)
		}
		seen[k] = i
	}
	a := Options{RemoveArcs: []cyclebreak.ArcID{{Caller: "a", Callee: "b"}, {Caller: "c", Callee: "d"}}}
	b := Options{RemoveArcs: []cyclebreak.ArcID{{Caller: "c", Callee: "d"}, {Caller: "a", Callee: "b"}}}
	if a.CacheKey() != b.CacheKey() {
		t.Error("RemoveArcs order changed the key; it must be normalized")
	}
}
