package core

import (
	"container/list"
	"sync"
)

// LRU is a mutex-guarded, string-keyed least-recently-used cache with
// hit/miss/eviction accounting. It is the mechanism shared by the
// static-layer Cache (symbol tables and static call graphs per image
// fingerprint) and the serving layer's query caches (merged-window
// snapshots and finished analyses per shard version) — every layer of
// the incremental query path evicts the same way and reports the same
// counters.
//
// Values are stored as any; a cached value may be handed to many
// concurrent readers, so consumers must treat it as immutable (or do
// their own copy-on-write, as the serve shards do).
type LRU struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits, misses, evictions uint64
}

type lruEntry struct {
	key string
	val any
}

// NewLRU creates a cache holding up to capacity entries; capacity <= 0
// means DefaultCacheEntries.
func NewLRU(capacity int) *LRU {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &LRU{cap: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Get returns the value cached under key, marking it most recently
// used. The miss counter only moves here — Add never counts — so a
// Get-then-Add fill sequence counts one miss.
func (l *LRU) Get(key string) (any, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.byKey[key]
	if !ok {
		l.misses++
		return nil, false
	}
	l.hits++
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add inserts val under key and returns the value now cached there:
// val, or the incumbent when a racing Add of the same key got there
// first (first insert wins, so concurrent fills converge on one shared
// value). Inserting may evict the least recently used entries.
func (l *LRU) Add(key string, val any) any {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.byKey[key]; ok {
		l.ll.MoveToFront(el)
		return el.Value.(*lruEntry).val
	}
	l.byKey[key] = l.ll.PushFront(&lruEntry{key: key, val: val})
	for l.ll.Len() > l.cap {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.byKey, oldest.Value.(*lruEntry).key)
		l.evictions++
	}
	return val
}

// Len returns the number of cached entries.
func (l *LRU) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.byKey)
}

// Stats returns the lookup and eviction counters.
func (l *LRU) Stats() (hits, misses, evictions uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.misses, l.evictions
}
