package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/model"
	"repro/internal/stacksample"
	"repro/internal/symtab"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// runStacked builds and runs a workload with whole-stack sampling on.
func runStacked(t *testing.T, name string) imageAndProfile {
	t.Helper()
	image, err := workloads.Build(name, true)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	p, _, _, err := workloads.Run(image, workloads.RunConfig{
		Seed: 3, TickCycles: 200, MaxCycles: 1 << 30, Stacks: true,
	})
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	if len(p.Stacks) == 0 {
		t.Fatalf("%s: profile carries no stacks", name)
	}
	return imageAndProfile{image, p}
}

// TestUnifiedStackPipelineE8: the retrospective's experiment through
// the one pipeline — collection in mon, gmon v3 profile, model Stacks
// view. pricey() runs on behalf of one of its two call sites almost
// exclusively, so its measured inclusive time must sit near the
// whole-run mark where the arc view's equal-cost-per-call assumption
// splits it down the middle.
func TestUnifiedStackPipelineE8(t *testing.T) {
	w := runStacked(t, "unequal")
	res, err := Run(context.Background(), ImageSource{Image: w.im}, w.p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Schema != model.SchemaV2 {
		t.Errorf("schema = %q, want %q", res.Model.Schema, model.SchemaV2)
	}
	v := res.Model.Stacks
	if v == nil {
		t.Fatal("no stacks view built")
	}
	measured := v.InclusiveFraction("pricey")
	if measured < 0.8 {
		t.Errorf("pricey measured inclusive = %.2f, want > 0.8", measured)
	}
	// The arc view still underestimates — that contrast is the point of
	// carrying both views in one profile.
	est := res.Graph.MustNode("pricey").TotalTicks() / res.Graph.TotalTicks
	if est > 0.5 {
		t.Errorf("arc-view estimate = %.2f; expected the equal-cost flaw to underestimate (< 0.5)", est)
	}

	// Cross-check against the standalone sampler on an uninstrumented
	// build: same workload, same tick rate, so the two measurements
	// agree within sampling error.
	im, err := workloads.Build("unequal", false)
	if err != nil {
		t.Fatal(err)
	}
	tab := symtab.New(im)
	sampler := stacksample.New(tab)
	m := vm.New(im, vm.Config{Monitor: sampler, TickCycles: 200, MaxCycles: 1 << 30})
	sampler.Attach(m)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	truth := float64(sampler.InclusiveTicks("pricey")) / float64(sampler.Samples())
	if diff := measured - truth; diff < -0.05 || diff > 0.05 {
		t.Errorf("unified pipeline %.3f vs standalone sampler %.3f: |diff| > 0.05", measured, truth)
	}
}

// TestStacksViewJobsInvariance: the Stacks view and its renderings are
// byte-identical across worker counts — parallelism must not leak into
// the output.
func TestStacksViewJobsInvariance(t *testing.T) {
	w := runStacked(t, "sort")
	render := func(jobs int) (modelJSON, folded, pprof []byte) {
		t.Helper()
		res, err := Run(context.Background(), ImageSource{Image: w.im}, w.p, Options{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var mj, fo, pb bytes.Buffer
		if err := model.Encode(&mj, res.Model); err != nil {
			t.Fatal(err)
		}
		if err := res.WriteFolded(&fo); err != nil {
			t.Fatal(err)
		}
		if err := res.WritePprof(&pb); err != nil {
			t.Fatal(err)
		}
		return mj.Bytes(), fo.Bytes(), pb.Bytes()
	}
	wantJSON, wantFolded, wantPprof := render(1)
	if len(wantFolded) == 0 {
		t.Fatal("folded rendering is empty")
	}
	for _, jobs := range []int{4, 13} {
		gotJSON, gotFolded, gotPprof := render(jobs)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("jobs=%d: model JSON differs from jobs=1", jobs)
		}
		if !bytes.Equal(gotFolded, wantFolded) {
			t.Errorf("jobs=%d: folded output differs from jobs=1", jobs)
		}
		if !bytes.Equal(gotPprof, wantPprof) {
			t.Errorf("jobs=%d: pprof output differs from jobs=1", jobs)
		}
	}
}

// TestStacklessProfileKeepsV1: without stack samples nothing changes —
// v1 schema, no view, and the stack renderers refuse loudly.
func TestStacklessProfileKeepsV1(t *testing.T) {
	w := buildAndRun(t, "sort")
	res, err := Run(context.Background(), ImageSource{Image: w.im}, w.p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model.Schema != model.Schema {
		t.Errorf("schema = %q, want %q", res.Model.Schema, model.Schema)
	}
	if res.Model.Stacks != nil {
		t.Error("stack-less profile grew a stacks view")
	}
	if err := res.WriteFolded(&bytes.Buffer{}); !errors.Is(err, model.ErrNoStacks) {
		t.Errorf("WriteFolded err = %v, want ErrNoStacks", err)
	}
	if err := res.WritePprof(&bytes.Buffer{}); !errors.Is(err, model.ErrNoStacks) {
		t.Errorf("WritePprof err = %v, want ErrNoStacks", err)
	}
}
