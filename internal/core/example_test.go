package core_test

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/mon"
	"repro/internal/object"
	"repro/internal/vm"
)

// Example runs the complete gprof workflow in-process: compile a
// program with profiling prologues, execute it under the monitoring
// runtime, post-process, and inspect the result.
func Example() {
	src := `
func work(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) { s = s + i*i; }
	return s;
}
func main() {
	var total = 0;
	for (var r = 0; r < 25; r = r + 1) { total = (total + work(400)) & 65535; }
	return total;
}`
	obj, err := lang.Compile("example.tl", src, lang.Options{Profile: true})
	if err != nil {
		log.Fatal(err)
	}
	im, err := object.Link([]*object.Object{obj}, object.LinkConfig{})
	if err != nil {
		log.Fatal(err)
	}
	collector := mon.New(im, mon.Config{})
	if _, err := vm.New(im, vm.Config{Monitor: collector, TickCycles: 500}).Run(); err != nil {
		log.Fatal(err)
	}
	res, err := core.Run(context.Background(), core.ImageSource{Image: im}, collector.Snapshot(), core.Options{Static: true})
	if err != nil {
		log.Fatal(err)
	}
	work := res.Graph.MustNode("work")
	main := res.Graph.MustNode("main")
	fmt.Printf("work called %d times\n", work.Calls())
	fmt.Printf("main inherits work's time: %v\n", main.ChildTicks >= work.SelfTicks)
	var out strings.Builder
	if err := res.WriteFlat(&out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flat profile lists work first: %v\n",
		strings.Index(out.String(), "work") < strings.Index(out.String(), "main"))
	// Output:
	// work called 25 times
	// main inherits work's time: true
	// flat profile lists work first: true
}
