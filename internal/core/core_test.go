package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/symtab"

	"repro/internal/cyclebreak"
	"repro/internal/report"
	"repro/internal/workloads"
)

func analyzeWorkload(t *testing.T, name string, opt Options) (*Result, string) {
	t.Helper()
	im, err := workloads.Build(name, true)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{Seed: 3, TickCycles: 300, MaxCycles: 1 << 30})
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	res, err := Run(context.Background(), ImageSource{Image: im}, p, opt)
	if err != nil {
		t.Fatalf("analyze %s: %v", name, err)
	}
	var buf bytes.Buffer
	if err := res.WriteAll(&buf); err != nil {
		t.Fatalf("render: %v", err)
	}
	return res, buf.String()
}

func TestEndToEndSort(t *testing.T) {
	res, out := analyzeWorkload(t, "sort", Options{})
	// The ordering abstraction's routines all appear.
	for _, fn := range []string{"qsort", "partition", "swap", "less", "fill", "check", "main"} {
		if !strings.Contains(out, fn) {
			t.Errorf("output missing %s", fn)
		}
	}
	// qsort is self-recursive: its entry shows called+self.
	q := res.Graph.MustNode("qsort")
	if q.SelfCalls() == 0 {
		t.Error("qsort has no self-recursive calls")
	}
	if q.InCycle() {
		t.Error("self-recursion must not create a collapsed cycle")
	}
	// partition inherits less/swap time: its total exceeds its self.
	p := res.Graph.MustNode("partition")
	if p.ChildTicks <= 0 {
		t.Error("partition received no descendant time")
	}
	// main's total is (nearly) the whole run: everything hangs below it.
	m := res.Graph.MustNode("main")
	if m.TotalTicks() < 0.9*res.Graph.TotalTicks {
		t.Errorf("main total %.0f < 90%% of run %.0f", m.TotalTicks(), res.Graph.TotalTicks)
	}
	if !strings.Contains(out, "flat profile") || !strings.Contains(out, "index by function name") {
		t.Error("missing report sections")
	}
}

func TestEndToEndParserCycle(t *testing.T) {
	// §6: recursive descent parsers collapse into one monolithic cycle.
	res, out := analyzeWorkload(t, "parser", Options{})
	if len(res.Graph.Cycles) == 0 {
		t.Fatal("parser produced no cycle")
	}
	members := map[string]bool{}
	for _, m := range res.Graph.Cycles[0].Members {
		members[m.Name] = true
	}
	for _, fn := range []string{"expr", "term", "factor"} {
		if !members[fn] {
			t.Errorf("cycle missing %s; members %v", fn, members)
		}
	}
	if !strings.Contains(out, "as a whole") {
		t.Error("cycle entry missing from output")
	}
}

func TestStaticArcs(t *testing.T) {
	// Without static arcs the never-executed branch's call arc is
	// absent; with them it appears with count 0.
	src := `
func rarely() { return used(); }
func used() { return 1; }
func main() {
	if (0) { rarely(); }
	return used();
}`
	im, err := workloads.BuildSource("static.tl", src, true)
	if err != nil {
		t.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 100})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Run(context.Background(), ImageSource{Image: im}, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := dyn.Graph.MustNode("rarely"); n.Calls() != 0 {
		t.Errorf("rarely called %d times dynamically", n.Calls())
	}
	if len(dyn.Graph.MustNode("rarely").Out) != 0 {
		t.Error("dynamic graph has arcs out of never-run rarely")
	}
	st, err := Run(context.Background(), ImageSource{Image: im}, p, Options{Static: true})
	if err != nil {
		t.Fatal(err)
	}
	var found *bool
	for _, a := range st.Graph.MustNode("rarely").Out {
		if a.Callee.Name == "used" {
			ok := a.Static && a.Count == 0
			found = &ok
		}
	}
	if found == nil || !*found {
		t.Error("static arc rarely->used missing or mis-flagged")
	}
}

func TestRemoveArcsOption(t *testing.T) {
	im, err := workloads.Build("service", true)
	if err != nil {
		t.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 300, MaxCycles: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(context.Background(), ImageSource{Image: im}, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Graph.Cycles) == 0 {
		t.Fatal("service has no dispatch<->retry cycle")
	}
	res, err := Run(context.Background(), ImageSource{Image: im}, p, Options{
		RemoveArcs: []cyclebreak.ArcID{{Caller: "retry", Callee: "dispatch"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedArcs != 1 {
		t.Errorf("removed %d arcs, want 1", res.RemovedArcs)
	}
	if len(res.Graph.Cycles) != 0 {
		t.Error("cycle survives explicit arc removal")
	}
}

func TestAutoBreak(t *testing.T) {
	im, err := workloads.Build("service", true)
	if err != nil {
		t.Fatal(err)
	}
	p, _, _, err := workloads.Run(im, workloads.RunConfig{TickCycles: 300, MaxCycles: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), ImageSource{Image: im}, p, Options{AutoBreak: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Suggestion == nil || !res.Suggestion.Complete {
		t.Fatalf("suggestion = %+v, want complete", res.Suggestion)
	}
	if len(res.Graph.Cycles) != 0 {
		t.Error("cycles remain after AutoBreak")
	}
	var buf bytes.Buffer
	if err := res.WriteAll(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cycle-breaking heuristic removed") {
		t.Error("report does not announce removed arcs")
	}
}

func TestReportOptionsPassThrough(t *testing.T) {
	res, _ := analyzeWorkload(t, "sort", Options{
		Report: report.Options{MinPercent: 99.9},
	})
	var buf bytes.Buffer
	if err := res.WriteCallGraph(&buf); err != nil {
		t.Fatal(err)
	}
	// Essentially everything filtered: only entries >= 99.9% remain
	// (at most main/_start).
	blocks := strings.Count(buf.String(), "\n[")
	if blocks > 2 {
		t.Errorf("MinPercent filter ineffective: %d entries", blocks)
	}
}

func TestFunctionPointerArcs(t *testing.T) {
	// Arcs through function values exist dynamically but not statically.
	res, _ := analyzeWorkload(t, "fptr", Options{Static: true})
	apply := res.Graph.MustNode("apply")
	targets := map[string]bool{}
	for _, a := range apply.Out {
		if a.Count > 0 {
			targets[a.Callee.Name] = true
		}
	}
	for _, fn := range []string{"opAdd", "opMul", "opXor"} {
		if !targets[fn] {
			t.Errorf("dynamic arc apply->%s missing (function pointer)", fn)
		}
	}
}

func TestFlatProfileSumsToTotal(t *testing.T) {
	res, _ := analyzeWorkload(t, "matrix", Options{})
	var selfSum float64
	for _, n := range res.Graph.Nodes() {
		selfSum += n.SelfTicks
	}
	if got := selfSum + res.Graph.LostTicks; got != res.Graph.TotalTicks {
		t.Errorf("self sum %v + lost %v != total %v", selfSum, res.Graph.LostTicks, res.Graph.TotalTicks)
	}
}

func TestRunTableSource(t *testing.T) {
	tab := symtab.FromSyms([]object.Sym{
		{Name: "top", Addr: 0, Size: 8},
		{Name: "leaf", Addr: 8, Size: 8},
	})
	p := &gmon.Profile{
		Hist: gmon.Histogram{Low: 0, High: 16, Step: 1, Counts: make([]uint32, 16)},
		Arcs: []gmon.Arc{{FromPC: 2, SelfPC: 8, Count: 5}},
		Hz:   60,
	}
	p.Hist.Counts[10] = 30
	res, err := Run(context.Background(), TableSource{Table: tab}, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.MustNode("top").ChildTicks != 30 {
		t.Errorf("top child = %v, want 30", res.Graph.MustNode("top").ChildTicks)
	}
	var buf bytes.Buffer
	if err := res.WriteAll(&buf); err != nil {
		t.Fatal(err)
	}
	// Overlapping symbols are rejected.
	bad := symtab.FromSyms([]object.Sym{
		{Name: "a", Addr: 0, Size: 10},
		{Name: "b", Addr: 5, Size: 10},
	})
	if _, err := Run(context.Background(), TableSource{Table: bad}, p, Options{}); err == nil {
		t.Error("overlapping table accepted")
	}
}

func TestRunRejectsMismatchedProfile(t *testing.T) {
	im, err := workloads.Build("sort", true)
	if err != nil {
		t.Fatal(err)
	}
	p := &gmon.Profile{
		Hist: gmon.Histogram{Low: 0, High: 4, Step: 1, Counts: make([]uint32, 4)},
		Arcs: []gmon.Arc{{FromPC: 1, SelfPC: 2, Count: 1}}, // callee pc outside any routine
	}
	if _, err := Run(context.Background(), ImageSource{Image: im}, p, Options{}); err == nil {
		t.Error("profile for a different binary accepted")
	}
}
