package core

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/object"
	"repro/internal/symtab"
)

// Cache is an LRU of the pipeline's static layers — the symbol table
// and the statically scanned call graph — keyed by image content hash
// (object.Fingerprint). Repeated analyses of the same executable, the
// long-running-service pattern where a profiler is extracted from a
// live program again and again, skip re-indexing and re-scanning.
//
// Cached tables and static arc slices are shared between analyses and
// must be treated as immutable; every consumer in this package already
// copies what it mutates. A Cache is safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key     string
	tab     *symtab.Table
	static  []object.StaticArc
	scanned bool // static is only computed once an analysis asks for it
}

// DefaultCacheEntries is the capacity NewCache uses for a non-positive
// request.
const DefaultCacheEntries = 8

// NewCache creates a cache holding up to capacity images (<= 0 means
// DefaultCacheEntries).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheEntries
	}
	return &Cache{cap: capacity, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// Len returns the number of cached images.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

// Stats returns the lookup counters.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// load returns the symbol layers for im, building and inserting them on
// a miss. The static arcs are scanned lazily: only an analysis that
// merges the static graph pays for the scan, and the result is then
// memoized on the entry.
func (c *Cache) load(im *object.Image, needStatic bool) (*symtab.Table, []object.StaticArc, error) {
	key, err := object.Fingerprint(im)
	if err != nil {
		return nil, nil, fmt.Errorf("core: fingerprinting image: %w", err)
	}
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		if needStatic && !e.scanned {
			e.static, e.scanned = object.Scan(im), true
		}
		c.hits++
		tab, static := e.tab, e.static
		c.mu.Unlock()
		return tab, static, nil
	}
	c.misses++
	c.mu.Unlock()

	// Build outside the lock so distinct images index concurrently; a
	// racing insert of the same key wins below and this work is dropped.
	tab := symtab.New(im)
	if err := tab.Validate(); err != nil {
		return nil, nil, err // invalid images are never cached
	}
	e := &cacheEntry{key: key, tab: tab}
	if needStatic {
		e.static, e.scanned = object.Scan(im), true
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		prev := el.Value.(*cacheEntry)
		if needStatic && !prev.scanned {
			prev.static, prev.scanned = e.static, true
		}
		return prev.tab, prev.static, nil
	}
	c.byKey[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
	return e.tab, e.static, nil
}
