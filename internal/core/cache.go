package core

import (
	"fmt"
	"sync"

	"repro/internal/object"
	"repro/internal/symtab"
)

// Cache is an LRU of the pipeline's static layers — the symbol table
// and the statically scanned call graph — keyed by image content hash
// (object.Fingerprint). Repeated analyses of the same executable, the
// long-running-service pattern where a profiler is extracted from a
// live program again and again, skip re-indexing and re-scanning.
//
// Cached tables and static arc slices are shared between analyses and
// must be treated as immutable; every consumer in this package already
// copies what it mutates. A Cache is safe for concurrent use. The
// eviction mechanism is the shared core.LRU, the same one the serving
// layer uses for its snapshot and analysis caches.
type Cache struct {
	lru *LRU
}

type cacheEntry struct {
	tab *symtab.Table

	mu      sync.Mutex // guards the lazily scanned static layer
	static  []object.StaticArc
	scanned bool // static is only computed once an analysis asks for it
}

// staticArcs returns the entry's static call graph, scanning im on
// first demand. The scan memoizes on the entry so every later analysis
// of the image shares it.
func (e *cacheEntry) staticArcs(im *object.Image) []object.StaticArc {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.scanned {
		e.static, e.scanned = object.Scan(im), true
	}
	return e.static
}

// DefaultCacheEntries is the capacity NewCache uses for a non-positive
// request.
const DefaultCacheEntries = 8

// NewCache creates a cache holding up to capacity images (<= 0 means
// DefaultCacheEntries).
func NewCache(capacity int) *Cache {
	return &Cache{lru: NewLRU(capacity)}
}

// Len returns the number of cached images.
func (c *Cache) Len() int { return c.lru.Len() }

// Stats returns the lookup counters.
func (c *Cache) Stats() (hits, misses uint64) {
	hits, misses, _ = c.lru.Stats()
	return hits, misses
}

// load returns the symbol layers for im, building and inserting them on
// a miss. The static arcs are scanned lazily: only an analysis that
// merges the static graph pays for the scan, and the result is then
// memoized on the entry.
func (c *Cache) load(im *object.Image, needStatic bool) (*symtab.Table, []object.StaticArc, error) {
	key, err := object.Fingerprint(im)
	if err != nil {
		return nil, nil, fmt.Errorf("core: fingerprinting image: %w", err)
	}
	var e *cacheEntry
	if v, ok := c.lru.Get(key); ok {
		e = v.(*cacheEntry)
	} else {
		// Build outside any lock so distinct images index concurrently; a
		// racing insert of the same key wins in Add and this work is
		// dropped.
		tab := symtab.New(im)
		if err := tab.Validate(); err != nil {
			return nil, nil, err // invalid images are never cached
		}
		e = c.lru.Add(key, &cacheEntry{tab: tab}).(*cacheEntry)
	}
	var static []object.StaticArc
	if needStatic {
		static = e.staticArcs(im)
	}
	return e.tab, static, nil
}
