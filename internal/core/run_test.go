package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/symtab"
	"repro/internal/workloads"
)

func buildAndRun(t *testing.T, name string) (im imageAndProfile) {
	t.Helper()
	image, err := workloads.Build(name, true)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	p, _, _, err := workloads.Run(image, workloads.RunConfig{Seed: 3, TickCycles: 300, MaxCycles: 1 << 30})
	if err != nil {
		t.Fatalf("run %s: %v", name, err)
	}
	return imageAndProfile{image, p}
}

type imageAndProfile struct {
	im *object.Image
	p  *gmon.Profile
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		bad  bool
	}{
		{"zero value", Options{}, false},
		{"jobs set", Options{Jobs: 8}, false},
		{"autobreak with bound", Options{AutoBreak: true, MaxBreakArcs: 3}, false},
		{"negative jobs", Options{Jobs: -1}, true},
		{"negative bound", Options{MaxBreakArcs: -2, AutoBreak: true}, true},
		{"bound without autobreak", Options{MaxBreakArcs: 3}, true},
	}
	for _, tc := range cases {
		err := tc.opt.Validate()
		if tc.bad && !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: err = %v, want ErrBadOptions", tc.name, err)
		}
		if !tc.bad && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
	}
}

func TestRunRejectsStaticWithTableSource(t *testing.T) {
	tab := symtab.FromSyms([]object.Sym{{Name: "f", Addr: 0, Size: 8}})
	p := &gmon.Profile{Hist: gmon.Histogram{Low: 0, High: 8, Step: 1, Counts: make([]uint32, 8)}, Hz: 60}
	_, err := Run(context.Background(), TableSource{Table: tab}, p, Options{Static: true})
	if !errors.Is(err, ErrBadOptions) {
		t.Errorf("Static with TableSource: err = %v, want ErrBadOptions", err)
	}
}

func TestRunNilArguments(t *testing.T) {
	p := &gmon.Profile{Hist: gmon.Histogram{Low: 0, High: 8, Step: 1, Counts: make([]uint32, 8)}, Hz: 60}
	if _, err := Run(context.Background(), nil, p, Options{}); err == nil {
		t.Error("nil source accepted")
	}
	tab := symtab.FromSyms([]object.Sym{{Name: "f", Addr: 0, Size: 8}})
	if _, err := Run(context.Background(), TableSource{Table: tab}, nil, Options{}); err == nil {
		t.Error("nil profile accepted")
	}
	if _, err := Run(context.Background(), ImageSource{}, p, Options{}); err == nil {
		t.Error("nil image accepted")
	}
	if _, err := Run(context.Background(), TableSource{}, p, Options{}); err == nil {
		t.Error("nil table accepted")
	}
}

// TestRunParallelMatchesSerial: the parallel cached pipeline renders
// the same bytes as the serial uncached run.
func TestRunParallelMatchesSerial(t *testing.T) {
	cache := NewCache(4)
	for _, name := range []string{"parser", "service"} {
		w := buildAndRun(t, name)
		opt := Options{Static: true}
		base, err := Run(context.Background(), ImageSource{Image: w.im}, w.p, opt)
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		var want bytes.Buffer
		if err := base.WriteAll(&want); err != nil {
			t.Fatal(err)
		}
		for _, jobs := range []int{1, 4} {
			opt := Options{Static: true, Jobs: jobs, Cache: cache}
			res, err := Run(context.Background(), ImageSource{Image: w.im}, w.p, opt)
			if err != nil {
				t.Fatalf("%s jobs=%d: Run: %v", name, jobs, err)
			}
			var got bytes.Buffer
			if err := res.WriteAll(&got); err != nil {
				t.Fatal(err)
			}
			if got.String() != want.String() {
				t.Errorf("%s jobs=%d: parallel output differs from serial", name, jobs)
			}
		}
	}
}

func TestRunCancellation(t *testing.T) {
	w := buildAndRun(t, "sort")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, ImageSource{Image: w.im}, w.p, Options{Jobs: 4}); err == nil {
		t.Error("canceled context not honored")
	}
}

// TestRunRejectsContradictoryOptions: with the legacy wrappers gone,
// the silent-ignore semantics are gone with them — the one entry point
// rejects contradictions loudly.
func TestRunRejectsContradictoryOptions(t *testing.T) {
	w := buildAndRun(t, "sort")
	if _, err := Run(context.Background(), ImageSource{Image: w.im}, w.p, Options{MaxBreakArcs: 5}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Run accepted MaxBreakArcs without AutoBreak: %v", err)
	}
	tab := symtab.FromSyms([]object.Sym{{Name: "f", Addr: 0, Size: 16}})
	p := &gmon.Profile{Hist: gmon.Histogram{Low: 0, High: 16, Step: 1, Counts: make([]uint32, 16)}, Hz: 60}
	if _, err := Run(context.Background(), TableSource{Table: tab}, p, Options{Static: true}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Run accepted Static on a table source: %v", err)
	}
}

func TestCacheHitsAndSharing(t *testing.T) {
	w := buildAndRun(t, "sort")
	c := NewCache(4)
	tab1, _, err := c.load(w.im, false)
	if err != nil {
		t.Fatal(err)
	}
	tab2, _, err := c.load(w.im, false)
	if err != nil {
		t.Fatal(err)
	}
	if tab1 != tab2 {
		t.Error("repeated load of the same image built a second table")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCacheLazyStaticScan(t *testing.T) {
	w := buildAndRun(t, "sort")
	c := NewCache(4)
	// First load without static: no scan happens.
	if _, static, err := c.load(w.im, false); err != nil || static != nil {
		t.Fatalf("load without static: arcs=%v err=%v", static, err)
	}
	// Asking later memoizes the scan on the existing entry.
	_, static, err := c.load(w.im, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(static) == 0 {
		t.Fatal("static scan empty on a hit")
	}
	_, again, err := c.load(w.im, true)
	if err != nil {
		t.Fatal(err)
	}
	if &static[0] != &again[0] {
		t.Error("static arcs re-scanned instead of memoized")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCacheEviction(t *testing.T) {
	a := buildAndRun(t, "sort")
	b := buildAndRun(t, "parser")
	c := NewCache(1)
	if _, _, err := c.load(a.im, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.load(b.im, false); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after eviction", c.Len())
	}
	// a was evicted: loading it again misses.
	if _, _, err := c.load(a.im, false); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 3 {
		t.Errorf("stats = %d hits / %d misses, want 0/3", hits, misses)
	}
}

func TestCacheRejectsInvalidImage(t *testing.T) {
	// Overlapping symbols fail table validation and must not be cached.
	im := &object.Image{Funcs: []object.Sym{
		{Name: "a", Addr: 0, Size: 10},
		{Name: "b", Addr: 5, Size: 10},
	}}
	c := NewCache(4)
	if _, _, err := c.load(im, false); err == nil {
		t.Fatal("invalid image accepted")
	}
	if c.Len() != 0 {
		t.Errorf("invalid image cached: Len = %d", c.Len())
	}
}
