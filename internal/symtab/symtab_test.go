package symtab

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gmon"
	"repro/internal/object"
)

func table() *Table {
	return FromSyms([]object.Sym{
		{Name: "c", Addr: 300, Size: 50},
		{Name: "a", Addr: 100, Size: 10},
		{Name: "b", Addr: 110, Size: 90}, // adjacent to a; gap before c at 200..299
	})
}

func TestFind(t *testing.T) {
	tb := table()
	if err := tb.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		pc   int64
		want string
		ok   bool
	}{
		{99, "", false}, {100, "a", true}, {109, "a", true},
		{110, "b", true}, {199, "b", true}, {200, "", false},
		{299, "", false}, {300, "c", true}, {349, "c", true}, {350, "", false},
	}
	for _, tc := range cases {
		got, ok := tb.Find(tc.pc)
		if ok != tc.ok || (ok && got.Name != tc.want) {
			t.Errorf("Find(%d) = %q,%v, want %q,%v", tc.pc, got.Name, ok, tc.want, tc.ok)
		}
	}
}

func TestLookupAndNames(t *testing.T) {
	tb := table()
	if s, ok := tb.Lookup("b"); !ok || s.Addr != 110 {
		t.Errorf("Lookup(b) = %+v,%v", s, ok)
	}
	if _, ok := tb.Lookup("zz"); ok {
		t.Error("Lookup(zz) found")
	}
	names := tb.Names()
	want := []string{"a", "b", "c"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names = %v, want %v", names, want)
		}
	}
	if tb.Len() != 3 {
		t.Errorf("Len = %d", tb.Len())
	}
}

func TestValidateOverlap(t *testing.T) {
	bad := FromSyms([]object.Sym{
		{Name: "x", Addr: 0, Size: 10},
		{Name: "y", Addr: 5, Size: 10},
	})
	if err := bad.Validate(); err == nil {
		t.Error("overlapping symbols accepted")
	}
	empty := FromSyms([]object.Sym{{Name: "z", Addr: 0, Size: 0}})
	if err := empty.Validate(); err == nil {
		t.Error("zero-size symbol accepted")
	}
}

func TestAttributeExactGranularity(t *testing.T) {
	tb := table()
	h := &gmon.Histogram{Low: 100, High: 350, Step: 1, Counts: make([]uint32, 250)}
	h.Counts[0] = 5   // pc 100 -> a
	h.Counts[9] = 1   // pc 109 -> a
	h.Counts[10] = 7  // pc 110 -> b
	h.Counts[105] = 3 // pc 205 -> gap (lost)
	h.Counts[200] = 2 // pc 300 -> c
	ticks, lost := tb.AttributeHist(h)
	if ticks["a"] != 6 || ticks["b"] != 7 || ticks["c"] != 2 {
		t.Errorf("ticks = %v", ticks)
	}
	if lost != 3 {
		t.Errorf("lost = %v, want 3", lost)
	}
	if got := ticks.Total() + lost; got != 18 {
		t.Errorf("conservation: %v != 18", got)
	}
}

func TestAttributeProportionalSplit(t *testing.T) {
	// Bucket [95,105) covers 5 words outside any routine and 5 in a:
	// half the ticks to a, half lost. Bucket [105,115) covers a's last
	// 5 words and b's first 5: split evenly between a and b.
	tb := table()
	h := &gmon.Histogram{Low: 95, High: 115, Step: 10, Counts: []uint32{8, 4}}
	ticks, lost := tb.AttributeHist(h)
	if math.Abs(ticks["a"]-(4+2)) > 1e-9 {
		t.Errorf("a = %v, want 6", ticks["a"])
	}
	if math.Abs(ticks["b"]-2) > 1e-9 {
		t.Errorf("b = %v, want 2", ticks["b"])
	}
	if math.Abs(lost-4) > 1e-9 {
		t.Errorf("lost = %v, want 4", lost)
	}
}

// TestAttributeConservation: for random symbol tables and histograms,
// attributed ticks + lost ticks always equal the histogram total (the
// paper's flat-profile property that individual times sum to total).
func TestAttributeConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var syms []object.Sym
		addr := int64(rng.Intn(10))
		for i := 0; i < rng.Intn(8)+1; i++ {
			size := int64(rng.Intn(20) + 1)
			syms = append(syms, object.Sym{Name: string(rune('a' + i)), Addr: addr, Size: size})
			addr += size + int64(rng.Intn(5)) // occasional gaps
		}
		tb := FromSyms(syms)
		step := int64(rng.Intn(7) + 1)
		low := int64(rng.Intn(5))
		n := rng.Intn(40) + 1
		h := &gmon.Histogram{Low: low, High: low + int64(n)*step, Step: step, Counts: make([]uint32, n)}
		var total float64
		for i := range h.Counts {
			h.Counts[i] = uint32(rng.Intn(10))
			total += float64(h.Counts[i])
		}
		ticks, lost := tb.AttributeHist(h)
		return math.Abs(ticks.Total()+lost-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAttributeEmptyHistogram(t *testing.T) {
	tb := table()
	h := &gmon.Histogram{Low: 0, High: 0, Step: 1}
	ticks, lost := tb.AttributeHist(h)
	if len(ticks) != 0 || lost != 0 {
		t.Errorf("empty histogram attributed: %v, %v", ticks, lost)
	}
}

// TestAttributeHistNMatchesSerial: sharded attribution reduces to the
// serial result for every worker count, including shards that split a
// routine's buckets and proportional boundary-straddling buckets.
func TestAttributeHistNMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var syms []object.Sym
	addr := int64(0)
	for i := 0; i < 40; i++ {
		size := int64(rng.Intn(17) + 3)
		syms = append(syms, object.Sym{Name: fmt.Sprintf("f%d", i), Addr: addr, Size: size})
		addr += size + int64(rng.Intn(3)) // occasional gaps: lost ticks
	}
	tab := FromSyms(syms)
	for _, step := range []int64{1, 4, 16} {
		h := &gmon.Histogram{Low: 0, High: addr, Step: step}
		h.Counts = make([]uint32, h.NumBuckets())
		for i := range h.Counts {
			h.Counts[i] = uint32(rng.Intn(30))
		}
		want, wantLost := tab.AttributeHist(h)
		for _, jobs := range []int{1, 2, 3, 8, 1000} {
			got, gotLost := tab.AttributeHistN(h, jobs)
			if len(got) != len(want) {
				t.Fatalf("step=%d jobs=%d: %d routines attributed, want %d", step, jobs, len(got), len(want))
			}
			for name, v := range want {
				if d := v - got[name]; d > 1e-9 || d < -1e-9 {
					t.Errorf("step=%d jobs=%d: %s = %v, want %v", step, jobs, name, got[name], v)
				}
			}
			if d := gotLost - wantLost; d > 1e-9 || d < -1e-9 {
				t.Errorf("step=%d jobs=%d: lost = %v, want %v", step, jobs, gotLost, wantLost)
			}
		}
	}
}
