// Package symtab maps program-counter values to routines and attributes
// program-counter histogram samples to routine self-times.
//
// Attribution follows gprof's rule: a histogram bucket lying entirely
// inside one routine charges all its ticks to that routine; a bucket that
// straddles routine boundaries splits its ticks proportionally to the
// overlap with each routine. At one-to-one granularity (bucket step 1)
// the split never happens and attribution is exact.
package symtab

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/gmon"
	"repro/internal/object"
)

// Table is an address-sorted routine symbol table.
type Table struct {
	funcs []object.Sym
}

// New builds a table from a linked image.
func New(im *object.Image) *Table {
	return FromSyms(im.Funcs)
}

// FromSyms builds a table from an explicit symbol list (used by the
// Go-native collector and by tests). Symbols are copied and sorted;
// overlapping symbols are an error.
func FromSyms(syms []object.Sym) *Table {
	t := &Table{funcs: append([]object.Sym(nil), syms...)}
	sort.Slice(t.funcs, func(i, j int) bool { return t.funcs[i].Addr < t.funcs[j].Addr })
	return t
}

// Validate reports overlapping or empty symbols.
func (t *Table) Validate() error {
	for i, s := range t.funcs {
		if s.Size <= 0 {
			return fmt.Errorf("symtab: routine %s has size %d", s.Name, s.Size)
		}
		if i > 0 && s.Addr < t.funcs[i-1].End() {
			return fmt.Errorf("symtab: routines %s and %s overlap", t.funcs[i-1].Name, s.Name)
		}
	}
	return nil
}

// Len returns the number of routines.
func (t *Table) Len() int { return len(t.funcs) }

// Syms returns the routines in address order. The caller must not modify
// the result.
func (t *Table) Syms() []object.Sym { return t.funcs }

// Names returns all routine names in address order.
func (t *Table) Names() []string {
	names := make([]string, len(t.funcs))
	for i, s := range t.funcs {
		names[i] = s.Name
	}
	return names
}

// Find returns the routine containing pc.
func (t *Table) Find(pc int64) (object.Sym, bool) {
	i, ok := t.FindIndex(pc)
	if !ok {
		return object.Sym{}, false
	}
	return t.funcs[i], true
}

// FindIndex returns the table index of the routine containing pc. The
// index is stable for the life of the table (addresses sort once, at
// construction), so callers can key per-routine arrays on it instead
// of on names — the call-graph builder resolves every arc record this
// way.
func (t *Table) FindIndex(pc int64) (int, bool) {
	i := sort.Search(len(t.funcs), func(i int) bool { return t.funcs[i].End() > pc })
	if i < len(t.funcs) && t.funcs[i].Addr <= pc && pc < t.funcs[i].End() {
		return i, true
	}
	return 0, false
}

// Lookup returns the routine with the given name.
func (t *Table) Lookup(name string) (object.Sym, bool) {
	for _, s := range t.funcs {
		if s.Name == name {
			return s, true
		}
	}
	return object.Sym{}, false
}

// SelfTicks holds the histogram attribution for one routine, in ticks
// (fractional when a coarse bucket was split across routines).
type SelfTicks map[string]float64

// AttributeHist distributes the histogram's ticks across routines.
// It returns the per-routine tick totals and the number of ticks that
// fell outside every known routine (charged to no one, reported so the
// flat profile can still sum to the total run time via the caller).
func (t *Table) AttributeHist(h *gmon.Histogram) (SelfTicks, float64) {
	return t.AttributeHistN(h, 1)
}

// AttributeHistN is AttributeHist across a worker pool; jobs <= 1 is
// serial. It is the name-keyed projection of AttributeHistIdxN: when
// two routines share a name their ticks merge under it.
func (t *Table) AttributeHistN(h *gmon.Histogram, jobs int) (SelfTicks, float64) {
	ticks, lost := t.AttributeHistIdxN(h, jobs)
	out := make(SelfTicks, len(t.funcs))
	for i, v := range ticks {
		if v != 0 {
			out[t.funcs[i].Name] += v
		}
	}
	return out, lost
}

// AttributeHistIdxN distributes the histogram's ticks across routines
// into a slice indexed by table position (see FindIndex) — no map
// operations on the hot path, so million-bucket histograms attribute
// at memory speed. The bucket range is sharded into jobs contiguous
// slices attributed concurrently, and the partial per-routine totals
// reduce in shard order. jobs <= 1 is the serial scan. The result is
// deterministic for a fixed jobs; shard-boundary reassociation may
// differ from the serial sum by floating-point rounding only (exact
// whenever bucket splits are exact, e.g. at one-to-one granularity or
// routine-aligned buckets).
func (t *Table) AttributeHistIdxN(h *gmon.Histogram, jobs int) ([]float64, float64) {
	nb := len(h.Counts)
	if jobs > nb {
		jobs = nb
	}
	out := make([]float64, len(t.funcs))
	if jobs <= 1 {
		return out, t.attributeBuckets(h, 0, nb, out, 0)
	}
	// Each shard's buckets span a contiguous PC range, so only a
	// contiguous window of routines can receive its ticks: the partial
	// is sized to that window, keeping total scratch ~len(funcs) across
	// all shards instead of jobs*len(funcs). The dropped entries were
	// exact zeros, so the shard-order reduction below computes the same
	// floating-point sums as full-length partials would.
	type part struct {
		base int
		vals []float64
		lost float64
	}
	parts := make([]part, jobs)
	per := (nb + jobs - 1) / jobs
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > nb {
			hi = nb
		}
		wg.Add(1)
		go func(p *part, lo, hi int) {
			defer wg.Done()
			wLo, _ := h.BucketRange(lo)
			_, wHi := h.BucketRange(hi - 1)
			jLo := sort.Search(len(t.funcs), func(k int) bool { return t.funcs[k].End() > wLo })
			jHi := sort.Search(len(t.funcs), func(k int) bool { return t.funcs[k].Addr >= wHi })
			if jHi < jLo {
				jHi = jLo
			}
			p.base = jLo
			p.vals = make([]float64, jHi-jLo)
			p.lost = t.attributeBuckets(h, lo, hi, p.vals, jLo)
		}(&parts[w], lo, hi)
	}
	wg.Wait()
	var lost float64
	for w := range parts {
		p := &parts[w]
		for i, v := range p.vals {
			if v != 0 {
				out[p.base+i] += v
			}
		}
		lost += p.lost
	}
	return out, lost
}

// attributeBuckets attributes the buckets in [from, to) into out, whose
// element 0 corresponds to table index base; out must cover every
// routine the bucket range overlaps. It returns the lost ticks.
func (t *Table) attributeBuckets(h *gmon.Histogram, from, to int, out []float64, base int) float64 {
	var lost float64
	for i := from; i < to; i++ {
		n := h.Counts[i]
		if n == 0 {
			continue
		}
		lo, hi := h.BucketRange(i)
		width := float64(hi - lo)
		if width <= 0 {
			lost += float64(n)
			continue
		}
		covered := 0.0
		// Routines overlapping [lo, hi).
		j := sort.Search(len(t.funcs), func(k int) bool { return t.funcs[k].End() > lo })
		for ; j < len(t.funcs) && t.funcs[j].Addr < hi; j++ {
			s := t.funcs[j]
			olo, ohi := max64(lo, s.Addr), min64(hi, s.End())
			if ohi <= olo {
				continue
			}
			frac := float64(ohi-olo) / width
			out[j-base] += float64(n) * frac
			covered += frac
		}
		if covered < 1 {
			lost += float64(n) * (1 - covered)
		}
	}
	return lost
}

// Total sums all attributed ticks.
func (s SelfTicks) Total() float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
