// Package symtab maps program-counter values to routines and attributes
// program-counter histogram samples to routine self-times.
//
// Attribution follows gprof's rule: a histogram bucket lying entirely
// inside one routine charges all its ticks to that routine; a bucket that
// straddles routine boundaries splits its ticks proportionally to the
// overlap with each routine. At one-to-one granularity (bucket step 1)
// the split never happens and attribution is exact.
package symtab

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/gmon"
	"repro/internal/object"
)

// Table is an address-sorted routine symbol table.
type Table struct {
	funcs []object.Sym
}

// New builds a table from a linked image.
func New(im *object.Image) *Table {
	return FromSyms(im.Funcs)
}

// FromSyms builds a table from an explicit symbol list (used by the
// Go-native collector and by tests). Symbols are copied and sorted;
// overlapping symbols are an error.
func FromSyms(syms []object.Sym) *Table {
	t := &Table{funcs: append([]object.Sym(nil), syms...)}
	sort.Slice(t.funcs, func(i, j int) bool { return t.funcs[i].Addr < t.funcs[j].Addr })
	return t
}

// Validate reports overlapping or empty symbols.
func (t *Table) Validate() error {
	for i, s := range t.funcs {
		if s.Size <= 0 {
			return fmt.Errorf("symtab: routine %s has size %d", s.Name, s.Size)
		}
		if i > 0 && s.Addr < t.funcs[i-1].End() {
			return fmt.Errorf("symtab: routines %s and %s overlap", t.funcs[i-1].Name, s.Name)
		}
	}
	return nil
}

// Len returns the number of routines.
func (t *Table) Len() int { return len(t.funcs) }

// Syms returns the routines in address order. The caller must not modify
// the result.
func (t *Table) Syms() []object.Sym { return t.funcs }

// Names returns all routine names in address order.
func (t *Table) Names() []string {
	names := make([]string, len(t.funcs))
	for i, s := range t.funcs {
		names[i] = s.Name
	}
	return names
}

// Find returns the routine containing pc.
func (t *Table) Find(pc int64) (object.Sym, bool) {
	i := sort.Search(len(t.funcs), func(i int) bool { return t.funcs[i].End() > pc })
	if i < len(t.funcs) && t.funcs[i].Addr <= pc && pc < t.funcs[i].End() {
		return t.funcs[i], true
	}
	return object.Sym{}, false
}

// Lookup returns the routine with the given name.
func (t *Table) Lookup(name string) (object.Sym, bool) {
	for _, s := range t.funcs {
		if s.Name == name {
			return s, true
		}
	}
	return object.Sym{}, false
}

// SelfTicks holds the histogram attribution for one routine, in ticks
// (fractional when a coarse bucket was split across routines).
type SelfTicks map[string]float64

// AttributeHist distributes the histogram's ticks across routines.
// It returns the per-routine tick totals and the number of ticks that
// fell outside every known routine (charged to no one, reported so the
// flat profile can still sum to the total run time via the caller).
func (t *Table) AttributeHist(h *gmon.Histogram) (SelfTicks, float64) {
	return t.attributeBuckets(h, 0, len(h.Counts))
}

// AttributeHistN is AttributeHist across a worker pool: the bucket range
// is sharded into jobs contiguous slices attributed concurrently, and
// the partial per-routine totals reduce in shard order. jobs <= 1 is the
// serial AttributeHist. The result is deterministic for a fixed jobs;
// shard-boundary reassociation may differ from the serial sum by
// floating-point rounding only (exact whenever bucket splits are exact,
// e.g. at one-to-one granularity).
func (t *Table) AttributeHistN(h *gmon.Histogram, jobs int) (SelfTicks, float64) {
	nb := len(h.Counts)
	if jobs > nb {
		jobs = nb
	}
	if jobs <= 1 {
		return t.AttributeHist(h)
	}
	parts := make([]SelfTicks, jobs)
	losts := make([]float64, jobs)
	per := (nb + jobs - 1) / jobs
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > nb {
			hi = nb
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w], losts[w] = t.attributeBuckets(h, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	out, lost := parts[0], losts[0]
	for w := 1; w < jobs; w++ {
		for name, v := range parts[w] {
			out[name] += v
		}
		lost += losts[w]
	}
	return out, lost
}

// attributeBuckets attributes the buckets in [from, to).
func (t *Table) attributeBuckets(h *gmon.Histogram, from, to int) (SelfTicks, float64) {
	out := make(SelfTicks, len(t.funcs))
	var lost float64
	for i := from; i < to; i++ {
		n := h.Counts[i]
		if n == 0 {
			continue
		}
		lo, hi := h.BucketRange(i)
		width := float64(hi - lo)
		if width <= 0 {
			lost += float64(n)
			continue
		}
		covered := 0.0
		// Routines overlapping [lo, hi).
		j := sort.Search(len(t.funcs), func(k int) bool { return t.funcs[k].End() > lo })
		for ; j < len(t.funcs) && t.funcs[j].Addr < hi; j++ {
			s := t.funcs[j]
			olo, ohi := max64(lo, s.Addr), min64(hi, s.End())
			if ohi <= olo {
				continue
			}
			frac := float64(ohi-olo) / width
			out[s.Name] += float64(n) * frac
			covered += frac
		}
		if covered < 1 {
			lost += float64(n) * (1 - covered)
		}
	}
	return out, lost
}

// Total sums all attributed ticks.
func (s SelfTicks) Total() float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
