package profgo

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gmon"
)

// fakeClock advances a fixed amount per call.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

// makeProfiler returns a profiler whose clock advances 1ms per event.
func makeProfiler() *Profiler {
	c := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	return New(WithClock(c.now), WithTick(time.Millisecond))
}

func TestArcsAndCounts(t *testing.T) {
	p := makeProfiler()
	main := func() {
		defer p.Enter("main")()
		for i := 0; i < 3; i++ {
			func() {
				defer p.Enter("child")()
			}()
		}
	}
	main()
	prof := p.Snapshot()
	if err := prof.Validate(); err != nil {
		t.Fatalf("invalid profile: %v", err)
	}
	tab := p.Table()
	if tab.Len() != 2 {
		t.Fatalf("table = %v", tab.Names())
	}
	// One spontaneous arc into main, one main->child arc with count 3.
	var spont, direct int64
	for _, a := range prof.Arcs {
		if a.FromPC == gmon.SpontaneousPC {
			spont += a.Count
		} else {
			direct += a.Count
		}
	}
	if spont != 1 || direct != 3 {
		t.Errorf("arcs = %+v, want 1 spontaneous + 3 direct", prof.Arcs)
	}
}

func TestSelfTimeCharged(t *testing.T) {
	c := &fakeClock{t: time.Unix(0, 0), step: 0}
	p := New(WithClock(func() time.Time { return c.t }), WithTick(time.Millisecond))
	leaveMain := p.Enter("main")
	c.t = c.t.Add(10 * time.Millisecond) // main runs 10ms
	leaveChild := p.Enter("child")
	c.t = c.t.Add(25 * time.Millisecond) // child runs 25ms
	leaveChild()
	c.t = c.t.Add(5 * time.Millisecond) // main runs 5 more ms
	leaveMain()

	prof := p.Snapshot()
	tab := p.Table()
	ticks, lost := tab.AttributeHist(&prof.Hist)
	if lost != 0 {
		t.Errorf("lost ticks: %v", lost)
	}
	if ticks["main"] != 15 {
		t.Errorf("main self = %v ticks, want 15", ticks["main"])
	}
	if ticks["child"] != 25 {
		t.Errorf("child self = %v ticks, want 25", ticks["child"])
	}
	if hz := prof.ClockHz(); hz != 1000 {
		t.Errorf("Hz = %d, want 1000 for 1ms ticks", hz)
	}
}

func TestRecursionArcs(t *testing.T) {
	p := makeProfiler()
	var rec func(n int)
	rec = func(n int) {
		defer p.Enter("rec")()
		if n > 0 {
			rec(n - 1)
		}
	}
	func() {
		defer p.Enter("main")()
		rec(4)
	}()
	prof := p.Snapshot()
	var selfArc int64
	for _, a := range prof.Arcs {
		// rec's addr: index 1 (main entered first).
		if a.FromPC == addr(1)+1 && a.SelfPC == addr(1) {
			selfArc = a.Count
		}
	}
	if selfArc != 4 {
		t.Errorf("self-recursive arc count = %d, want 4", selfArc)
	}
}

// TestSelfProfilingPipeline is E4 in miniature: run the gprof pipeline
// under profgo and feed the result to the same pipeline.
func TestSelfProfilingPipeline(t *testing.T) {
	p := New() // real clock: this is a smoke test of the full loop
	work := func(name string, inner func()) {
		defer p.Enter(name)()
		inner()
	}
	work("load", func() {
		work("parse", func() {
			for i := 0; i < 100; i++ {
				work("record", func() {})
			}
		})
	})
	res, err := core.Run(context.Background(), core.TableSource{Table: p.Table()}, p.Snapshot(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"load", "parse", "record", "flat profile"} {
		if !strings.Contains(out, want) {
			t.Errorf("self-profile output missing %q", want)
		}
	}
	rec := res.Graph.MustNode("record")
	if rec.Calls() != 100 {
		t.Errorf("record called %d times, want 100", rec.Calls())
	}
}

func TestEmptyProfiler(t *testing.T) {
	p := New()
	prof := p.Snapshot()
	if err := prof.Validate(); err != nil {
		t.Errorf("empty snapshot invalid: %v", err)
	}
	if p.Table().Len() != 0 {
		t.Error("empty profiler has symbols")
	}
}

func TestWithTickRejectsNonPositive(t *testing.T) {
	p := New(WithTick(0))
	if p.tick != DefaultTick {
		t.Errorf("tick = %v, want default", p.tick)
	}
}
