// Package profgo is a call-graph profiling collector for Go code,
// producing the same profile model (package gmon) the simulated
// machine's monitor produces, so the whole gprof post-processing and
// reporting pipeline applies unchanged.
//
// It exists for the paper's signature stunt — "of course, among the
// programs on which we used the new profiler was the profiler itself"
// (§6) — and for any host-side tooling that wants call-graph profiles
// without the simulator. Instrumentation is explicit, mirroring the
// monitoring-routine call a compiler would plant in each prologue:
//
//	func parse(...) {
//	    defer p.Enter("parse")()
//	    ...
//	}
//
// Each instrumented function gets a synthetic address range; Enter
// records the (caller → callee) arc exactly like mcount — caller
// identified from the collector's shadow call stack, "spontaneous" when
// the stack is empty — and self time is accumulated between
// instrumentation events, then quantized into histogram ticks on
// Snapshot, standing in for the kernel's statistical sampler.
//
// The collector is safe for use from a single goroutine per Profiler
// (the shadow stack models one thread of control, like the original).
package profgo

import (
	"sync"
	"time"

	"repro/internal/gmon"
	"repro/internal/object"
	"repro/internal/symtab"
)

// FuncWords is the synthetic text-range size of each instrumented
// function: word 0 is the "prologue" (arc selfpc), word 1 the canonical
// call site for outgoing calls, the rest the function "body" whose
// histogram bucket receives its ticks.
const FuncWords = 16

// DefaultTick is the quantization unit for self time: one histogram
// tick per 10µs, i.e. a 100 kHz clock.
const DefaultTick = 10 * time.Microsecond

// Option configures a Profiler.
type Option func(*Profiler)

// WithClock substitutes the time source (for deterministic tests).
func WithClock(now func() time.Time) Option {
	return func(p *Profiler) { p.now = now }
}

// WithTick sets the self-time quantization unit.
func WithTick(d time.Duration) Option {
	return func(p *Profiler) {
		if d > 0 {
			p.tick = d
		}
	}
}

type arcKey struct{ from, self int64 }

// Profiler collects call arcs and self time for instrumented functions.
type Profiler struct {
	mu   sync.Mutex
	now  func() time.Time
	tick time.Duration

	names map[string]int // name -> function index
	order []string

	stack []int // function indices, innermost last
	last  time.Time
	self  []time.Duration // per function index
	arcs  map[arcKey]int64
}

// New creates an empty profiler.
func New(opts ...Option) *Profiler {
	p := &Profiler{
		now:   time.Now,
		tick:  DefaultTick,
		names: make(map[string]int),
		arcs:  make(map[arcKey]int64),
	}
	for _, o := range opts {
		o(p)
	}
	p.last = p.now()
	return p
}

func (p *Profiler) fnIndex(name string) int {
	if i, ok := p.names[name]; ok {
		return i
	}
	i := len(p.order)
	p.names[name] = i
	p.order = append(p.order, name)
	p.self = append(p.self, 0)
	return i
}

// addr returns the synthetic base address of function index i.
func addr(i int) int64 { return int64(i+1) * FuncWords }

// Enter records entry to the named function and returns the function to
// defer for its exit:
//
//	defer p.Enter("name")()
func (p *Profiler) Enter(name string) func() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.charge()
	idx := p.fnIndex(name)
	key := arcKey{from: gmon.SpontaneousPC, self: addr(idx)}
	if len(p.stack) > 0 {
		key.from = addr(p.stack[len(p.stack)-1]) + 1 // caller's call-site word
	}
	p.arcs[key]++
	p.stack = append(p.stack, idx)
	return p.leave
}

func (p *Profiler) leave() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.charge()
	if len(p.stack) > 0 {
		p.stack = p.stack[:len(p.stack)-1]
	}
}

// charge attributes the time since the last event to the function on
// top of the shadow stack.
func (p *Profiler) charge() {
	now := p.now()
	if len(p.stack) > 0 {
		p.self[p.stack[len(p.stack)-1]] += now.Sub(p.last)
	}
	p.last = now
}

// Table returns the synthetic symbol table for the functions observed
// so far.
func (p *Profiler) Table() *symtab.Table {
	p.mu.Lock()
	defer p.mu.Unlock()
	syms := make([]object.Sym, len(p.order))
	for i, name := range p.order {
		syms[i] = object.Sym{Name: name, Addr: addr(i), Size: FuncWords}
	}
	return symtab.FromSyms(syms)
}

// Snapshot condenses the collected data into a profile. Self time is
// quantized into ticks of the configured unit and charged to the
// function's body bucket.
func (p *Profiler) Snapshot() *gmon.Profile {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.order)
	hz := int64(time.Second / p.tick)
	prof := &gmon.Profile{
		Hist: gmon.Histogram{
			Low:    FuncWords,
			High:   int64(n+1) * FuncWords,
			Step:   FuncWords,
			Counts: make([]uint32, n),
		},
		Hz: hz,
	}
	for i, d := range p.self {
		prof.Hist.Counts[i] = uint32(d / p.tick)
	}
	for k, c := range p.arcs {
		prof.Arcs = append(prof.Arcs, gmon.Arc{FromPC: k.from, SelfPC: k.self, Count: c})
	}
	prof.SortArcs()
	return prof
}
