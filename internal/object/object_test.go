package object

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/isa"
)

// buildObj constructs a tiny object by hand: two routines, one global.
//
//	f: MOVI R0, &g-ish... actually:
//	f: CALL g; RET        (offsets 0,1)
//	g: LD R0,[GP+$x]; RET (offsets 2,3)
func buildObj() *Object {
	return &Object{
		Name: "hand.o",
		Text: []isa.Word{
			isa.Instr{Op: isa.OpCall}.Encode(),
			isa.Instr{Op: isa.OpRet}.Encode(),
			isa.Instr{Op: isa.OpLd, Rd: 0, Rs1: isa.RegGP}.Encode(),
			isa.Instr{Op: isa.OpRet}.Encode(),
		},
		Funcs: []FuncDef{
			{Name: "f", Offset: 0, Size: 2},
			{Name: "g", Offset: 2, Size: 2},
		},
		Globals: []GlobalDef{{Name: "x", Size: 2, Init: []isa.Word{7}}},
		Relocs: []Reloc{
			{Offset: 0, Name: "g", Kind: RelocCall},
			{Offset: 2, Name: "x", Kind: RelocGlobal},
		},
	}
}

func TestLinkLayout(t *testing.T) {
	im, err := Link([]*Object{buildObj()}, LinkConfig{Entry: "f"})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if im.TextBase != isa.TextBase {
		t.Errorf("TextBase = %#x", im.TextBase)
	}
	if im.Entry != im.TextBase {
		t.Errorf("Entry = %#x, want _start at TextBase", im.Entry)
	}
	// _start(2) + 4 object words.
	if len(im.Text) != 6 {
		t.Fatalf("text len = %d, want 6", len(im.Text))
	}
	f, ok := im.LookupFunc("f")
	if !ok || f.Addr != im.TextBase+2 || f.Size != 2 {
		t.Errorf("f = %+v ok=%v", f, ok)
	}
	g, ok := im.LookupFunc("g")
	if !ok || g.Addr != im.TextBase+4 {
		t.Errorf("g = %+v ok=%v", g, ok)
	}
	// _start's CALL targets f.
	start, _ := isa.Decode(im.Text[0])
	if start.Op != isa.OpCall || int64(start.Imm) != f.Addr {
		t.Errorf("_start call = %+v, want CALL %#x", start, f.Addr)
	}
	// The CALL in f was relocated to g.
	call, _ := isa.Decode(im.Text[2])
	if int64(call.Imm) != g.Addr {
		t.Errorf("f's CALL imm = %#x, want %#x", call.Imm, g.Addr)
	}
	// Global x: data segment right after text, initialized.
	addr, ok := im.GlobalAddr("x")
	if !ok || addr != im.DataBase {
		t.Errorf("GlobalAddr(x) = %#x ok=%v, want %#x", addr, ok, im.DataBase)
	}
	if im.DataBase != im.TextEnd() {
		t.Errorf("DataBase = %#x, want TextEnd %#x", im.DataBase, im.TextEnd())
	}
	if len(im.Data) != 2 || im.Data[0] != 7 || im.Data[1] != 0 {
		t.Errorf("Data = %v, want [7 0]", im.Data)
	}
	// The LD picked up x's offset (0) as its Imm.
	ld, _ := isa.Decode(im.Text[4])
	if ld.Imm != 0 {
		t.Errorf("LD imm = %d, want 0", ld.Imm)
	}
	if im.StackTop != im.DataBase+2+DefaultStackWords {
		t.Errorf("StackTop = %#x", im.StackTop)
	}
}

func TestFindFunc(t *testing.T) {
	im, err := Link([]*Object{buildObj()}, LinkConfig{Entry: "f"})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	f, _ := im.LookupFunc("f")
	for pc := f.Addr; pc < f.End(); pc++ {
		got, ok := im.FindFunc(pc)
		if !ok || got.Name != "f" {
			t.Errorf("FindFunc(%#x) = %v,%v, want f", pc, got.Name, ok)
		}
	}
	if _, ok := im.FindFunc(im.TextEnd()); ok {
		t.Error("FindFunc past text succeeded")
	}
	if _, ok := im.FindFunc(0); ok {
		t.Error("FindFunc(0) succeeded")
	}
	if got, ok := im.FindFunc(im.TextBase); !ok || got.Name != StartName {
		t.Errorf("FindFunc(TextBase) = %v,%v, want %s", got.Name, ok, StartName)
	}
}

func TestLinkErrors(t *testing.T) {
	dup := buildObj()
	dup2 := buildObj()
	dup2.Name = "dup2.o"
	dup2.Globals = nil
	cases := []struct {
		name    string
		objs    []*Object
		cfg     LinkConfig
		wantSub string
	}{
		{"no objects", nil, LinkConfig{}, "no objects"},
		{"missing entry", []*Object{buildObj()}, LinkConfig{Entry: "nope"}, "undefined entry"},
		{"default entry missing", []*Object{buildObj()}, LinkConfig{}, "undefined entry routine main"},
		{"duplicate func", []*Object{dup, dup2}, LinkConfig{Entry: "f"}, "duplicate routine"},
		{"undefined call", []*Object{{
			Name:   "u.o",
			Text:   []isa.Word{isa.Instr{Op: isa.OpCall}.Encode()},
			Funcs:  []FuncDef{{Name: "main", Offset: 0, Size: 1}},
			Relocs: []Reloc{{Offset: 0, Name: "ghost", Kind: RelocCall}},
		}}, LinkConfig{}, "undefined routine ghost"},
		{"undefined global", []*Object{{
			Name:   "u.o",
			Text:   []isa.Word{isa.Instr{Op: isa.OpLd}.Encode()},
			Funcs:  []FuncDef{{Name: "main", Offset: 0, Size: 1}},
			Relocs: []Reloc{{Offset: 0, Name: "ghost", Kind: RelocGlobal}},
		}}, LinkConfig{}, "undefined global ghost"},
		{"func out of range", []*Object{{
			Name:  "u.o",
			Text:  []isa.Word{isa.Instr{Op: isa.OpRet}.Encode()},
			Funcs: []FuncDef{{Name: "main", Offset: 0, Size: 5}},
		}}, LinkConfig{}, "outside text"},
		{"reserved name", []*Object{{
			Name:  "u.o",
			Text:  []isa.Word{isa.Instr{Op: isa.OpRet}.Encode(), isa.Instr{Op: isa.OpRet}.Encode()},
			Funcs: []FuncDef{{Name: StartName, Offset: 0, Size: 1}, {Name: "main", Offset: 1, Size: 1}},
		}}, LinkConfig{}, "reserved"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Link(tc.objs, tc.cfg)
			if err == nil {
				t.Fatalf("linked, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestLinkMultipleObjects(t *testing.T) {
	o1 := &Object{
		Name: "a.o",
		Text: []isa.Word{
			isa.Instr{Op: isa.OpCall}.Encode(), // CALL helper (other object)
			isa.Instr{Op: isa.OpRet}.Encode(),
		},
		Funcs:  []FuncDef{{Name: "main", Offset: 0, Size: 2}},
		Relocs: []Reloc{{Offset: 0, Name: "helper", Kind: RelocCall}},
	}
	o2 := &Object{
		Name:    "b.o",
		Text:    []isa.Word{isa.Instr{Op: isa.OpRet}.Encode()},
		Funcs:   []FuncDef{{Name: "helper", Offset: 0, Size: 1}},
		Globals: []GlobalDef{{Name: "shared", Size: 3}},
	}
	im, err := Link([]*Object{o1, o2}, LinkConfig{})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	h, ok := im.LookupFunc("helper")
	if !ok {
		t.Fatal("helper not linked")
	}
	call, _ := isa.Decode(im.Text[2])
	if int64(call.Imm) != h.Addr {
		t.Errorf("cross-object CALL imm = %#x, want %#x", call.Imm, h.Addr)
	}
	if _, ok := im.GlobalAddr("shared"); !ok {
		t.Error("global from second object not linked")
	}
}

func TestScanStaticArcs(t *testing.T) {
	// main calls helper twice (two sites) and leaf once; helper calls
	// leaf; an indirect CALLR must not produce an arc.
	o := &Object{
		Name: "s.o",
		Text: []isa.Word{
			// main at 0..4
			isa.Instr{Op: isa.OpCall}.Encode(),          // -> helper
			isa.Instr{Op: isa.OpCall}.Encode(),          // -> helper
			isa.Instr{Op: isa.OpCall}.Encode(),          // -> leaf
			isa.Instr{Op: isa.OpCallR, Rs1: 1}.Encode(), // indirect
			isa.Instr{Op: isa.OpRet}.Encode(),           //
			// helper at 5..6
			isa.Instr{Op: isa.OpCall}.Encode(), // -> leaf
			isa.Instr{Op: isa.OpRet}.Encode(),
			// leaf at 7
			isa.Instr{Op: isa.OpRet}.Encode(),
		},
		Funcs: []FuncDef{
			{Name: "main", Offset: 0, Size: 5},
			{Name: "helper", Offset: 5, Size: 2},
			{Name: "leaf", Offset: 7, Size: 1},
		},
		Relocs: []Reloc{
			{Offset: 0, Name: "helper", Kind: RelocCall},
			{Offset: 1, Name: "helper", Kind: RelocCall},
			{Offset: 2, Name: "leaf", Kind: RelocCall},
			{Offset: 5, Name: "leaf", Kind: RelocCall},
		},
	}
	im, err := Link([]*Object{o}, LinkConfig{})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	arcs := Scan(im)
	type pair struct{ c, e string }
	count := map[pair]int{}
	for _, a := range arcs {
		count[pair{a.Caller, a.Callee}]++
	}
	want := map[pair]int{
		{StartName, "main"}: 1, // the synthesized start call
		{"main", "helper"}:  2,
		{"main", "leaf"}:    1,
		{"helper", "leaf"}:  1,
	}
	for p, n := range want {
		if count[p] != n {
			t.Errorf("arc %s->%s: got %d sites, want %d", p.c, p.e, count[p], n)
		}
	}
	if len(arcs) != 5 {
		t.Errorf("got %d arcs total, want 5: %+v", len(arcs), arcs)
	}
	// Sorted order by caller name.
	for i := 1; i < len(arcs); i++ {
		if arcs[i-1].Caller > arcs[i].Caller {
			t.Errorf("arcs not sorted: %v before %v", arcs[i-1], arcs[i])
		}
	}
}

func TestObjectFunc(t *testing.T) {
	o := buildObj()
	if f, ok := o.Func("g"); !ok || f.Offset != 2 {
		t.Errorf("Func(g) = %+v, %v", f, ok)
	}
	if _, ok := o.Func("zz"); ok {
		t.Error("Func(zz) found")
	}
}

func TestImageFetch(t *testing.T) {
	im, err := Link([]*Object{buildObj()}, LinkConfig{Entry: "f"})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if _, err := im.Fetch(im.TextBase); err != nil {
		t.Errorf("Fetch(TextBase): %v", err)
	}
	if _, err := im.Fetch(im.TextEnd()); err == nil {
		t.Error("Fetch(TextEnd) succeeded")
	}
	if _, err := im.Fetch(0); err == nil {
		t.Error("Fetch(0) succeeded")
	}
}

func TestRelocKindString(t *testing.T) {
	for k, want := range map[RelocKind]string{
		RelocCall: "call", RelocFuncAddr: "funcaddr",
		RelocGlobal: "global", RelocText: "text", RelocKind(99): "reloc(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("RelocKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestLineMarks(t *testing.T) {
	o := &Object{
		Name: "l.o",
		Text: []isa.Word{
			isa.Instr{Op: isa.OpNop}.Encode(),
			isa.Instr{Op: isa.OpNop}.Encode(),
			isa.Instr{Op: isa.OpRet}.Encode(),
		},
		Funcs: []FuncDef{{
			Name: "main", Offset: 0, Size: 3, File: "l.tl",
			Lines: []LineMark{{Offset: 0, Line: 2}, {Offset: 2, Line: 4}},
		}},
	}
	im, err := Link([]*Object{o}, LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := im.LookupFunc("main")
	if m.File != "l.tl" || len(m.Lines) != 2 {
		t.Fatalf("sym = %+v", m)
	}
	// Marks rebased to absolute addresses.
	if m.Lines[0].Offset != m.Addr || m.Lines[1].Offset != m.Addr+2 {
		t.Errorf("marks = %+v", m.Lines)
	}
	if got := m.LineFor(m.Addr + 1); got != 2 {
		t.Errorf("LineFor(+1) = %d, want 2", got)
	}
	if got := m.LineFor(m.Addr + 2); got != 4 {
		t.Errorf("LineFor(+2) = %d, want 4", got)
	}
	if file, line, ok := im.LineFor(m.Addr + 2); !ok || file != "l.tl" || line != 4 {
		t.Errorf("Image.LineFor = %s:%d,%v", file, line, ok)
	}
	// _start has no debug info.
	if _, _, ok := im.LineFor(im.TextBase); ok {
		t.Error("LineFor(_start) claimed line info")
	}
	// Line marks survive serialization.
	var buf bytes.Buffer
	if err := WriteImage(&buf, im); err != nil {
		t.Fatal(err)
	}
	back, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := back.LookupFunc("main")
	if !reflect.DeepEqual(m, m2) {
		t.Errorf("round trip: %+v vs %+v", m, m2)
	}
}
