// Package object models relocatable object files, the linker that
// combines them into an executable image, and the text-segment scanner
// that recovers the static call graph from a linked image.
//
// The paper obtains its static call graph by examining "the instructions
// in the object program, looking for calls to routines" (gprof, §4) — the
// executable is available and language-independent where the source text
// may not be. Scan (in scan.go) is exactly that facility for our ISA.
package object

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// RelocKind says how a relocation patches the instruction it refers to.
type RelocKind uint8

const (
	// RelocCall patches the Imm field of a CALL or JMP with the absolute
	// address of a function.
	RelocCall RelocKind = iota
	// RelocFuncAddr patches the Imm field of a MOVI with the absolute
	// address of a function, materializing a function pointer.
	RelocFuncAddr
	// RelocGlobal patches the Imm field of a LD/ST/LEA with the word
	// offset of a global variable from the data base (GP register).
	RelocGlobal
	// RelocText adds the absolute address of the object's first text word
	// to the Imm field. Assemblers and compilers emit branch targets as
	// object-local offsets with a RelocText fixup, since final addresses
	// are only known at link time. Name is unused.
	RelocText
)

func (k RelocKind) String() string {
	switch k {
	case RelocCall:
		return "call"
	case RelocFuncAddr:
		return "funcaddr"
	case RelocGlobal:
		return "global"
	case RelocText:
		return "text"
	}
	return fmt.Sprintf("reloc(%d)", uint8(k))
}

// Reloc records one fixup to perform at link time.
type Reloc struct {
	Offset int64  // word offset of the instruction within the object's text
	Name   string // referenced symbol
	Kind   RelocKind
}

// LineMark associates an instruction with a source line: instructions
// from Offset up to the next mark came from Line. Offsets are
// object-relative in FuncDef and absolute in Sym.
type LineMark struct {
	Offset int64
	Line   int32
}

// FuncDef describes one routine defined in an object file.
type FuncDef struct {
	Name   string
	Offset int64 // word offset of the first instruction within the object's text
	Size   int64 // number of instruction words
	File   string
	Lines  []LineMark // sorted by Offset; optional debug info
}

// GlobalDef describes one global variable (or array) defined in an object
// file. Init, when non-nil, provides initial values; missing words are
// zero.
type GlobalDef struct {
	Name string
	Size int64 // words
	Init []isa.Word
}

// Object is a relocatable unit produced by the assembler or the compiler.
type Object struct {
	Name    string // source name, for diagnostics
	Text    []isa.Word
	Funcs   []FuncDef
	Globals []GlobalDef
	Relocs  []Reloc
}

// Func returns the definition of the named routine, if present.
func (o *Object) Func(name string) (FuncDef, bool) {
	for _, f := range o.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return FuncDef{}, false
}

// Sym is a linked symbol: a routine placed at its final address.
type Sym struct {
	Name string
	Addr int64 // absolute address of the first instruction
	Size int64 // instruction words
	File string
	// Lines holds absolute-address line marks (see LineMark); may be
	// empty when the routine was assembled without debug info.
	Lines []LineMark
}

// End returns the address one past the last instruction of the routine.
func (s Sym) End() int64 { return s.Addr + s.Size }

// LineFor returns the source line covering pc, or 0 when unknown.
func (s Sym) LineFor(pc int64) int32 {
	line := int32(0)
	for _, m := range s.Lines {
		if m.Offset > pc {
			break
		}
		line = m.Line
	}
	return line
}

// Image is a linked executable.
type Image struct {
	Text     []isa.Word
	TextBase int64 // address of Text[0]
	Entry    int64 // address of the synthesized start routine
	Funcs    []Sym // sorted by Addr, non-overlapping
	DataBase int64 // address of the first data word (GP register value)
	Data     []isa.Word
	StackTop int64 // initial SP
	globals  map[string]int64
}

// TextEnd returns the address one past the last text word.
func (im *Image) TextEnd() int64 { return im.TextBase + int64(len(im.Text)) }

// FindFunc returns the routine containing address pc, if any.
func (im *Image) FindFunc(pc int64) (Sym, bool) {
	i := sort.Search(len(im.Funcs), func(i int) bool { return im.Funcs[i].End() > pc })
	if i < len(im.Funcs) && im.Funcs[i].Addr <= pc && pc < im.Funcs[i].End() {
		return im.Funcs[i], true
	}
	return Sym{}, false
}

// LookupFunc returns the symbol for the named routine.
func (im *Image) LookupFunc(name string) (Sym, bool) {
	for _, s := range im.Funcs {
		if s.Name == name {
			return s, true
		}
	}
	return Sym{}, false
}

// LineFor maps an address to its source position, when debug info is
// present.
func (im *Image) LineFor(pc int64) (file string, line int32, ok bool) {
	fn, found := im.FindFunc(pc)
	if !found || fn.File == "" {
		return "", 0, false
	}
	l := fn.LineFor(pc)
	if l == 0 {
		return "", 0, false
	}
	return fn.File, l, true
}

// GlobalAddr returns the absolute address of a linked global variable.
func (im *Image) GlobalAddr(name string) (int64, bool) {
	off, ok := im.globals[name]
	if !ok {
		return 0, false
	}
	return im.DataBase + off, true
}

// Fetch returns the text word at address pc.
func (im *Image) Fetch(pc int64) (isa.Word, error) {
	if pc < im.TextBase || pc >= im.TextEnd() {
		return 0, fmt.Errorf("object: text fetch out of range: %#x", pc)
	}
	return im.Text[pc-im.TextBase], nil
}
