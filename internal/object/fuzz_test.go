package object

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadImage hammers the executable decoder with arbitrary bytes:
// truncated streams, corrupt headers, and record counts or string
// lengths far past the actual body must all error without panicking or
// allocating anywhere near the declared sizes. Any input that does
// decode must survive a re-encode/decode round trip.
func FuzzReadImage(f *testing.F) {
	im, err := Link([]*Object{buildObj()}, LinkConfig{Entry: "f"})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteImage(&buf, im); err != nil {
		f.Fatal(err)
	}
	b := buf.Bytes()
	f.Add(b)
	f.Add(b[:len(b)/2])
	f.Add(b[:7])
	f.Add([]byte("SIMY____"))
	// Counts section claiming 2^27 records each over an empty body.
	huge := append([]byte(nil), []byte("SIMX")...)
	huge = append(huge, 2, 0, 0, 0)
	huge = append(huge, make([]byte, 32)...) // bases
	huge = append(huge, 0, 0, 0, 8, 0, 0, 0, 8, 0, 0, 0, 8, 0, 0, 0, 8)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		im, err := ReadImage(bytes.NewReader(data))
		if err != nil {
			return
		}
		var enc bytes.Buffer
		if err := WriteImage(&enc, im); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		got, err := ReadImage(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("decode re-encoded image: %v", err)
		}
		if !reflect.DeepEqual(got.Text, im.Text) || !reflect.DeepEqual(got.Data, im.Data) ||
			!reflect.DeepEqual(got.Funcs, im.Funcs) || !reflect.DeepEqual(got.globals, im.globals) {
			t.Fatalf("round trip diverged:\n got %+v %v\nwant %+v %v", got, got.globals, im, im.globals)
		}
		if got.TextBase != im.TextBase || got.Entry != im.Entry ||
			got.DataBase != im.DataBase || got.StackTop != im.StackTop {
			t.Fatal("header fields diverged after round trip")
		}
	})
}
