package object

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/binio"
)

// Executable file format ("a.out" for the simulated machine), all fields
// little-endian, encoded by the shared block codec (internal/binio) —
// fixed-offset integer access on reused buffers, no per-field
// reflection:
//
//	magic    [4]byte "SIMX"
//	version  uint32
//	textBase int64
//	entry    int64
//	dataBase int64
//	stackTop int64
//	ntext    uint32
//	ndata    uint32
//	nfuncs   uint32
//	nglobals uint32
//	text     [ntext]int64
//	data     [ndata]int64
//	funcs    [nfuncs]{nameLen uint32, name []byte, addr int64, size int64,
//	                  fileLen uint32, file []byte,
//	                  nmarks uint32, marks [nmarks]{off int64, line int32}}
//	globals  [nglobals]{nameLen uint32, name []byte, off int64}
var imageMagic = [4]byte{'S', 'I', 'M', 'X'}

// ImageVersion is the current executable format version. Version 2
// added per-routine source files and line marks.
const ImageVersion = 2

const maxImageRecords = 1 << 28

// chunkImageWords bounds how far past the data actually seen the text,
// data, and record slices may grow, so a corrupt header cannot drive a
// huge allocation.
const chunkImageWords = 8192

// WriteImage encodes a linked image to w.
func WriteImage(w io.Writer, im *Image) error {
	bw := binio.NewWriter(w)
	putString := func(s string) {
		bw.U32(uint32(len(s)))
		bw.String(s)
	}
	bw.Bytes(imageMagic[:])
	bw.U32(uint32(ImageVersion))
	bw.I64(im.TextBase)
	bw.I64(im.Entry)
	bw.I64(im.DataBase)
	bw.I64(im.StackTop)
	bw.U32(uint32(len(im.Text)))
	bw.U32(uint32(len(im.Data)))
	bw.U32(uint32(len(im.Funcs)))
	bw.U32(uint32(len(im.globals)))
	bw.I64s(im.Text)
	bw.I64s(im.Data)
	for _, f := range im.Funcs {
		putString(f.Name)
		bw.I64(f.Addr)
		bw.I64(f.Size)
		putString(f.File)
		bw.U32(uint32(len(f.Lines)))
		for _, m := range f.Lines {
			bw.I64(m.Offset)
			bw.I32(m.Line)
		}
	}
	// Deterministic global order: by offset, ties by name.
	type g struct {
		name string
		off  int64
	}
	gs := make([]g, 0, len(im.globals))
	for name, off := range im.globals {
		gs = append(gs, g{name, off})
	}
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && (gs[j-1].off > gs[j].off ||
			(gs[j-1].off == gs[j].off && gs[j-1].name > gs[j].name)); j-- {
			gs[j-1], gs[j] = gs[j], gs[j-1]
		}
	}
	for _, x := range gs {
		putString(x.name)
		bw.I64(x.off)
	}
	return bw.Close()
}

// readImageString decodes a length-prefixed string, growing its buffer
// with the data actually seen so a lying prefix cannot over-allocate.
func readImageString(br *binio.Reader) (string, error) {
	n := br.U32()
	if br.Err() != nil {
		return "", br.Err()
	}
	if n > maxImageRecords {
		return "", fmt.Errorf("object: implausible string length %d", n)
	}
	if n <= chunkImageWords {
		buf := make([]byte, n)
		br.Full(buf)
		if err := br.Err(); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	var sb strings.Builder
	var chunk [chunkImageWords]byte
	for remaining := int(n); remaining > 0; {
		c := remaining
		if c > len(chunk) {
			c = len(chunk)
		}
		br.Full(chunk[:c])
		if err := br.Err(); err != nil {
			return "", err
		}
		sb.Write(chunk[:c])
		remaining -= c
	}
	return sb.String(), nil
}

// readWords decodes n little-endian int64 words, growing the result
// with the data actually seen.
func readWords(br *binio.Reader, n int) ([]int64, error) {
	cap0 := n
	if cap0 > chunkImageWords {
		cap0 = chunkImageWords
	}
	out := make([]int64, 0, cap0)
	for len(out) < n {
		c := n - len(out)
		if c > chunkImageWords {
			c = chunkImageWords
		}
		start := len(out)
		if cap(out) < start+c {
			grown := make([]int64, start, start+c)
			copy(grown, out)
			out = grown
		}
		out = out[:start+c]
		br.I64s(out[start:])
		if err := br.Err(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ReadImage decodes an executable from r.
func ReadImage(r io.Reader) (*Image, error) {
	br := binio.NewReader(r)
	defer br.Close()
	var m [4]byte
	br.Full(m[:])
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("object: reading magic: %w", err)
	}
	if m != imageMagic {
		return nil, fmt.Errorf("object: bad magic %q (not an executable)", m[:])
	}
	version := br.U32()
	if err := br.Err(); err != nil {
		return nil, err
	}
	if version != ImageVersion {
		return nil, fmt.Errorf("object: unsupported executable version %d", version)
	}
	im := &Image{globals: make(map[string]int64)}
	im.TextBase = br.I64()
	im.Entry = br.I64()
	im.DataBase = br.I64()
	im.StackTop = br.I64()
	ntext := br.U32()
	ndata := br.U32()
	nfuncs := br.U32()
	nglobals := br.U32()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("object: reading header: %w", err)
	}
	if ntext > maxImageRecords || ndata > maxImageRecords ||
		nfuncs > maxImageRecords || nglobals > maxImageRecords {
		return nil, fmt.Errorf("object: implausible record counts")
	}
	var err error
	if im.Text, err = readWords(br, int(ntext)); err != nil {
		return nil, err
	}
	if im.Data, err = readWords(br, int(ndata)); err != nil {
		return nil, err
	}
	capF := int(nfuncs)
	if capF > chunkImageWords {
		capF = chunkImageWords
	}
	im.Funcs = make([]Sym, 0, capF)
	for i := uint32(0); i < nfuncs; i++ {
		var s Sym
		if s.Name, err = readImageString(br); err != nil {
			return nil, err
		}
		s.Addr = br.I64()
		s.Size = br.I64()
		if err := br.Err(); err != nil {
			return nil, err
		}
		if s.File, err = readImageString(br); err != nil {
			return nil, err
		}
		nmarks := br.U32()
		if err := br.Err(); err != nil {
			return nil, err
		}
		if nmarks > maxImageRecords {
			return nil, fmt.Errorf("object: implausible line mark count %d", nmarks)
		}
		if nmarks > 0 {
			capM := int(nmarks)
			if capM > chunkImageWords {
				capM = chunkImageWords
			}
			s.Lines = make([]LineMark, 0, capM)
			for j := uint32(0); j < nmarks; j++ {
				off := br.I64()
				line := br.I32()
				if err := br.Err(); err != nil {
					return nil, err
				}
				s.Lines = append(s.Lines, LineMark{Offset: off, Line: line})
			}
		}
		im.Funcs = append(im.Funcs, s)
	}
	for i := uint32(0); i < nglobals; i++ {
		name, err := readImageString(br)
		if err != nil {
			return nil, err
		}
		off := br.I64()
		if err := br.Err(); err != nil {
			return nil, err
		}
		im.globals[name] = off
	}
	return im, nil
}

// WriteImageFile writes an executable to the named file. The block
// codec writes the *os.File directly, so there is exactly one buffer
// layer between records and the disk.
func WriteImageFile(name string, im *Image) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := WriteImage(f, im); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadImageFile reads an executable from the named file.
func ReadImageFile(name string) (*Image, error) {
	im, _, err := ReadImageFileStats(name)
	return im, err
}

// ReadImageFileStats reads an executable from the named file and also
// reports the file's size in bytes, for the observability layer's
// object.bytes_read accounting.
func ReadImageFileStats(name string) (*Image, int64, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	im, err := ReadImage(f)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", name, err)
	}
	var size int64
	if fi, err := f.Stat(); err == nil {
		size = fi.Size()
	}
	return im, size, nil
}
