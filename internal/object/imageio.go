package object

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Executable file format ("a.out" for the simulated machine), all fields
// little-endian:
//
//	magic    [4]byte "SIMX"
//	version  uint32
//	textBase int64
//	entry    int64
//	dataBase int64
//	stackTop int64
//	ntext    uint32
//	ndata    uint32
//	nfuncs   uint32
//	nglobals uint32
//	text     [ntext]int64
//	data     [ndata]int64
//	funcs    [nfuncs]{nameLen uint32, name []byte, addr int64, size int64,
//	                  fileLen uint32, file []byte,
//	                  nmarks uint32, marks [nmarks]{off int64, line int32}}
//	globals  [nglobals]{nameLen uint32, name []byte, off int64}
var imageMagic = [4]byte{'S', 'I', 'M', 'X'}

// ImageVersion is the current executable format version. Version 2
// added per-routine source files and line marks.
const ImageVersion = 2

const maxImageRecords = 1 << 28

// WriteImage encodes a linked image to w.
func WriteImage(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	put := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	putString := func(s string) error {
		if err := put(uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if _, err := bw.Write(imageMagic[:]); err != nil {
		return err
	}
	for _, v := range []any{
		uint32(ImageVersion), im.TextBase, im.Entry, im.DataBase, im.StackTop,
		uint32(len(im.Text)), uint32(len(im.Data)),
		uint32(len(im.Funcs)), uint32(len(im.globals)),
	} {
		if err := put(v); err != nil {
			return err
		}
	}
	if err := put(im.Text); err != nil {
		return err
	}
	if err := put(im.Data); err != nil {
		return err
	}
	for _, f := range im.Funcs {
		if err := putString(f.Name); err != nil {
			return err
		}
		if err := put(f.Addr); err != nil {
			return err
		}
		if err := put(f.Size); err != nil {
			return err
		}
		if err := putString(f.File); err != nil {
			return err
		}
		if err := put(uint32(len(f.Lines))); err != nil {
			return err
		}
		for _, m := range f.Lines {
			if err := put(m.Offset); err != nil {
				return err
			}
			if err := put(m.Line); err != nil {
				return err
			}
		}
	}
	// Deterministic global order: by offset.
	type g struct {
		name string
		off  int64
	}
	gs := make([]g, 0, len(im.globals))
	for name, off := range im.globals {
		gs = append(gs, g{name, off})
	}
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && gs[j-1].off > gs[j].off; j-- {
			gs[j-1], gs[j] = gs[j], gs[j-1]
		}
	}
	for _, x := range gs {
		if err := putString(x.name); err != nil {
			return err
		}
		if err := put(x.off); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadImage decodes an executable from r.
func ReadImage(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }
	getString := func() (string, error) {
		var n uint32
		if err := get(&n); err != nil {
			return "", err
		}
		if n > maxImageRecords {
			return "", fmt.Errorf("object: implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("object: reading magic: %w", err)
	}
	if m != imageMagic {
		return nil, fmt.Errorf("object: bad magic %q (not an executable)", m[:])
	}
	var version uint32
	if err := get(&version); err != nil {
		return nil, err
	}
	if version != ImageVersion {
		return nil, fmt.Errorf("object: unsupported executable version %d", version)
	}
	im := &Image{globals: make(map[string]int64)}
	var ntext, ndata, nfuncs, nglobals uint32
	for _, v := range []any{&im.TextBase, &im.Entry, &im.DataBase, &im.StackTop,
		&ntext, &ndata, &nfuncs, &nglobals} {
		if err := get(v); err != nil {
			return nil, fmt.Errorf("object: reading header: %w", err)
		}
	}
	if ntext > maxImageRecords || ndata > maxImageRecords ||
		nfuncs > maxImageRecords || nglobals > maxImageRecords {
		return nil, fmt.Errorf("object: implausible record counts")
	}
	im.Text = make([]int64, ntext)
	if err := get(im.Text); err != nil {
		return nil, err
	}
	im.Data = make([]int64, ndata)
	if err := get(im.Data); err != nil {
		return nil, err
	}
	im.Funcs = make([]Sym, nfuncs)
	for i := range im.Funcs {
		name, err := getString()
		if err != nil {
			return nil, err
		}
		im.Funcs[i].Name = name
		if err := get(&im.Funcs[i].Addr); err != nil {
			return nil, err
		}
		if err := get(&im.Funcs[i].Size); err != nil {
			return nil, err
		}
		if im.Funcs[i].File, err = getString(); err != nil {
			return nil, err
		}
		var nmarks uint32
		if err := get(&nmarks); err != nil {
			return nil, err
		}
		if nmarks > maxImageRecords {
			return nil, fmt.Errorf("object: implausible line mark count %d", nmarks)
		}
		if nmarks > 0 {
			im.Funcs[i].Lines = make([]LineMark, nmarks)
			for j := range im.Funcs[i].Lines {
				if err := get(&im.Funcs[i].Lines[j].Offset); err != nil {
					return nil, err
				}
				if err := get(&im.Funcs[i].Lines[j].Line); err != nil {
					return nil, err
				}
			}
		}
	}
	for i := uint32(0); i < nglobals; i++ {
		name, err := getString()
		if err != nil {
			return nil, err
		}
		var off int64
		if err := get(&off); err != nil {
			return nil, err
		}
		im.globals[name] = off
	}
	return im, nil
}

// WriteImageFile writes an executable to the named file.
func WriteImageFile(name string, im *Image) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := WriteImage(f, im); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadImageFile reads an executable from the named file.
func ReadImageFile(name string) (*Image, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	im, err := ReadImage(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return im, nil
}
