package object

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestImageRoundTrip(t *testing.T) {
	im, err := Link([]*Object{buildObj()}, LinkConfig{Entry: "f"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteImage(&buf, im); err != nil {
		t.Fatalf("WriteImage: %v", err)
	}
	got, err := ReadImage(&buf)
	if err != nil {
		t.Fatalf("ReadImage: %v", err)
	}
	if !reflect.DeepEqual(got.Text, im.Text) || !reflect.DeepEqual(got.Data, im.Data) {
		t.Error("text/data mismatch after round trip")
	}
	if !reflect.DeepEqual(got.Funcs, im.Funcs) {
		t.Errorf("funcs mismatch:\n got %+v\nwant %+v", got.Funcs, im.Funcs)
	}
	if got.TextBase != im.TextBase || got.Entry != im.Entry ||
		got.DataBase != im.DataBase || got.StackTop != im.StackTop {
		t.Error("header mismatch")
	}
	a1, ok1 := im.GlobalAddr("x")
	a2, ok2 := got.GlobalAddr("x")
	if !ok1 || !ok2 || a1 != a2 {
		t.Errorf("global x: %v,%v vs %v,%v", a1, ok1, a2, ok2)
	}
}

func TestImageFileRoundTrip(t *testing.T) {
	im, err := Link([]*Object{buildObj()}, LinkConfig{Entry: "f"})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/a.out"
	if err := WriteImageFile(path, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadImageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Text) != len(im.Text) {
		t.Error("text length mismatch")
	}
	if _, err := ReadImageFile(t.TempDir() + "/missing"); err == nil {
		t.Error("missing file read succeeded")
	}
}

func TestReadImageErrors(t *testing.T) {
	cases := []struct {
		name    string
		data    []byte
		wantSub string
	}{
		{"empty", nil, "magic"},
		{"bad magic", []byte("NOPE0000"), "bad magic"},
		{"truncated", []byte("SIMX\x01"), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadImage(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("read succeeded")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("err = %v, want %q", err, tc.wantSub)
			}
		})
	}
}

func TestReadImageBadVersion(t *testing.T) {
	im, err := Link([]*Object{buildObj()}, LinkConfig{Entry: "f"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteImage(&buf, im); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 42
	if _, err := ReadImage(bytes.NewReader(b)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("err = %v, want version error", err)
	}
}

// TestImageRoundTripProperty: random (valid) images survive
// serialization byte-exactly.
func TestImageRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nf := rng.Intn(5) + 1
		o := &Object{Name: "r.o"}
		off := int64(0)
		for i := 0; i < nf; i++ {
			size := int64(rng.Intn(6) + 1)
			fd := FuncDef{
				Name:   fmt.Sprintf("fn%d", i),
				Offset: off,
				Size:   size,
				File:   fmt.Sprintf("src%d.tl", rng.Intn(3)),
			}
			line := int32(rng.Intn(5) + 1)
			for j := int64(0); j < size; j++ {
				o.Text = append(o.Text, isa.Instr{Op: isa.OpNop}.Encode())
				if rng.Intn(2) == 0 {
					fd.Lines = append(fd.Lines, LineMark{Offset: off + j, Line: line})
					line += int32(rng.Intn(3) + 1)
				}
			}
			o.Funcs = append(o.Funcs, fd)
			off += size
		}
		o.Funcs[0].Name = "main"
		for i := 0; i < rng.Intn(4); i++ {
			o.Globals = append(o.Globals, GlobalDef{
				Name: fmt.Sprintf("g%d", i),
				Size: int64(rng.Intn(5) + 1),
				Init: []isa.Word{int64(rng.Intn(100))},
			})
		}
		im, err := Link([]*Object{o}, LinkConfig{StackWords: 64})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteImage(&buf, im); err != nil {
			return false
		}
		first := append([]byte(nil), buf.Bytes()...)
		back, err := ReadImage(&buf)
		if err != nil {
			return false
		}
		var buf2 bytes.Buffer
		if err := WriteImage(&buf2, back); err != nil {
			return false
		}
		return bytes.Equal(first, buf2.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
