package object

import (
	"crypto/sha256"
	"encoding/hex"
)

// Fingerprint returns a content hash of the image: the SHA-256 of its
// canonical executable encoding, which covers the text, data, symbols,
// debug marks, and layout fields. Two images with equal fingerprints
// index identically, so the hash can key caches of derived artifacts
// (symbol tables, static call graphs) across repeated analyses of the
// same executable.
func Fingerprint(im *Image) (string, error) {
	h := sha256.New()
	if err := WriteImage(h, im); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
