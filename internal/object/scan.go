package object

import (
	"sort"

	"repro/internal/isa"
)

// StaticArc is a call-graph arc recovered from the executable's
// instructions: a CALL at address Site, inside routine Caller, targeting
// routine Callee.
type StaticArc struct {
	Caller string
	Callee string
	Site   int64 // address of the CALL instruction
}

// Scan crawls the text segment of a linked image and returns every
// statically apparent call arc, i.e. every direct CALL instruction whose
// target lies inside a known routine.
//
// Indirect calls (CALLR — functional parameters and variables) have no
// statically apparent target and are not reported; as the paper notes,
// the static call graph "includes all possible arcs that are not calls to
// functional parameters or variables" (§2). Calls from or to addresses
// outside any routine are also skipped.
//
// The result is sorted by (Caller, Callee, Site) and deduplicated per
// (Caller, Callee) pair only by the post-processor; every site is
// reported here so tools can display call sites.
func Scan(im *Image) []StaticArc {
	var arcs []StaticArc
	for _, fn := range im.Funcs {
		for pc := fn.Addr; pc < fn.End(); pc++ {
			w, err := im.Fetch(pc)
			if err != nil {
				break
			}
			instr, err := isa.Decode(w)
			if err != nil || instr.Op != isa.OpCall {
				continue
			}
			callee, ok := im.FindFunc(int64(instr.Imm))
			if !ok {
				continue
			}
			arcs = append(arcs, StaticArc{Caller: fn.Name, Callee: callee.Name, Site: pc})
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		a, b := arcs[i], arcs[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		if a.Callee != b.Callee {
			return a.Callee < b.Callee
		}
		return a.Site < b.Site
	})
	return arcs
}
