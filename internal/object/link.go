package object

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/isa"
)

// StartName is the name of the routine the linker synthesizes to call the
// entry function and exit with its return value. It is not compiled with
// profiling, so arcs into the entry function have their source inside
// StartName — mirroring how crt0 appears in real gprof output.
const StartName = "_start"

// LinkConfig controls linking.
type LinkConfig struct {
	// Entry is the routine _start calls. Defaults to "main".
	Entry string
	// StackWords is the size of the stack segment. Defaults to 64 Ki words.
	StackWords int64
}

// DefaultStackWords is the stack size used when LinkConfig.StackWords is 0.
const DefaultStackWords = 64 * 1024

// Link combines objects into an executable image. It lays out a
// synthesized _start routine followed by each object's text, allocates
// the data segment, and applies all relocations.
func Link(objs []*Object, cfg LinkConfig) (*Image, error) {
	if cfg.Entry == "" {
		cfg.Entry = "main"
	}
	if cfg.StackWords == 0 {
		cfg.StackWords = DefaultStackWords
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("link: no objects")
	}

	im := &Image{TextBase: isa.TextBase, globals: make(map[string]int64)}

	// _start: CALL <entry>; SYS exit. Two words at TextBase.
	const startSize = 2
	im.Entry = im.TextBase
	im.Funcs = append(im.Funcs, Sym{Name: StartName, Addr: im.TextBase, Size: startSize})

	// First pass: assign function addresses and global offsets.
	funcAddr := make(map[string]int64)
	base := im.TextBase + startSize
	objBase := make([]int64, len(objs))
	var dataOff int64
	for i, o := range objs {
		objBase[i] = base
		for _, f := range o.Funcs {
			if f.Offset < 0 || f.Size < 0 || f.Offset+f.Size > int64(len(o.Text)) {
				return nil, fmt.Errorf("link: %s: routine %s spans [%d,%d) outside text of %d words",
					o.Name, f.Name, f.Offset, f.Offset+f.Size, len(o.Text))
			}
			if _, dup := funcAddr[f.Name]; dup {
				return nil, fmt.Errorf("link: duplicate routine %s (in %s)", f.Name, o.Name)
			}
			addr := base + f.Offset
			funcAddr[f.Name] = addr
			sym := Sym{Name: f.Name, Addr: addr, Size: f.Size, File: f.File}
			for _, m := range f.Lines {
				sym.Lines = append(sym.Lines, LineMark{Offset: base + m.Offset, Line: m.Line})
			}
			im.Funcs = append(im.Funcs, sym)
		}
		for _, g := range o.Globals {
			if g.Size <= 0 {
				return nil, fmt.Errorf("link: %s: global %s has size %d", o.Name, g.Name, g.Size)
			}
			if int64(len(g.Init)) > g.Size {
				return nil, fmt.Errorf("link: %s: global %s has %d initializers for %d words",
					o.Name, g.Name, len(g.Init), g.Size)
			}
			if _, dup := im.globals[g.Name]; dup {
				return nil, fmt.Errorf("link: duplicate global %s (in %s)", g.Name, o.Name)
			}
			im.globals[g.Name] = dataOff
			dataOff += g.Size
		}
		base += int64(len(o.Text))
	}
	if funcAddr[StartName] != 0 {
		return nil, fmt.Errorf("link: routine name %s is reserved", StartName)
	}
	entryAddr, ok := funcAddr[cfg.Entry]
	if !ok {
		return nil, fmt.Errorf("link: undefined entry routine %s", cfg.Entry)
	}

	// Emit text: _start, then object bodies.
	im.Text = make([]isa.Word, 0, startSize+int(base-im.TextBase-startSize))
	im.Text = append(im.Text,
		isa.Instr{Op: isa.OpCall, Imm: int32(entryAddr)}.Encode(),
		isa.Instr{Op: isa.OpSys, Imm: isa.SysExit}.Encode(),
	)
	for _, o := range objs {
		im.Text = append(im.Text, o.Text...)
	}

	// Data segment sits right after text; stack above data.
	im.DataBase = im.TextEnd()
	im.Data = make([]isa.Word, dataOff)
	for _, o := range objs {
		for _, g := range o.Globals {
			copy(im.Data[im.globals[g.Name]:], g.Init)
		}
	}
	im.StackTop = im.DataBase + dataOff + cfg.StackWords

	// Second pass: apply relocations.
	for i, o := range objs {
		for _, r := range o.Relocs {
			if r.Offset < 0 || r.Offset >= int64(len(o.Text)) {
				return nil, fmt.Errorf("link: %s: relocation offset %d outside text", o.Name, r.Offset)
			}
			idx := objBase[i] - im.TextBase + r.Offset
			instr, err := isa.Decode(im.Text[idx])
			if err != nil {
				return nil, fmt.Errorf("link: %s: relocation at offset %d targets non-instruction: %v",
					o.Name, r.Offset, err)
			}
			var value int64
			switch r.Kind {
			case RelocCall, RelocFuncAddr:
				addr, ok := funcAddr[r.Name]
				if !ok {
					return nil, fmt.Errorf("link: %s: undefined routine %s", o.Name, r.Name)
				}
				value = addr
			case RelocGlobal:
				off, ok := im.globals[r.Name]
				if !ok {
					return nil, fmt.Errorf("link: %s: undefined global %s", o.Name, r.Name)
				}
				value = off
			case RelocText:
				value = objBase[i]
			default:
				return nil, fmt.Errorf("link: %s: unknown relocation kind %v", o.Name, r.Kind)
			}
			patched := int64(instr.Imm) + value // existing Imm acts as an addend
			if patched > math.MaxInt32 || patched < math.MinInt32 {
				return nil, fmt.Errorf("link: %s: relocation %s overflows imm field", o.Name, r.Name)
			}
			instr.Imm = int32(patched)
			im.Text[idx] = instr.Encode()
		}
	}

	sort.Slice(im.Funcs, func(a, b int) bool { return im.Funcs[a].Addr < im.Funcs[b].Addr })
	for i := 1; i < len(im.Funcs); i++ {
		if im.Funcs[i].Addr < im.Funcs[i-1].End() {
			return nil, fmt.Errorf("link: routines %s and %s overlap",
				im.Funcs[i-1].Name, im.Funcs[i].Name)
		}
	}
	return im, nil
}
