// Parallel fan-in merge: the paper's "sum several runs" feature (§3)
// scaled to many gmon.out files. Profiles merge tree-wise across a
// worker pool; because bucket and arc counts combine by integer
// addition (commutative and associative) and Merge canonicalizes arc
// order, the result is bit-for-bit identical to a sequential
// left-to-right merge no matter how the tree is shaped or scheduled.
package gmon

import (
	"context"
	"fmt"
	"sync"
)

// checkMergeable reports why other cannot be summed into p, if so: the
// histogram geometry and clock rate must agree, the same restriction
// real gprof places on summed gmon.out files.
func (p *Profile) checkMergeable(other *Profile) error {
	if p.Hist.Low != other.Hist.Low || p.Hist.High != other.Hist.High || p.Hist.Step != other.Hist.Step {
		return fmt.Errorf("gmon: merge: histogram geometry mismatch: [%#x,%#x)/%d vs [%#x,%#x)/%d",
			p.Hist.Low, p.Hist.High, p.Hist.Step,
			other.Hist.Low, other.Hist.High, other.Hist.Step)
	}
	if p.ClockHz() != other.ClockHz() {
		return fmt.Errorf("gmon: merge: clock rate mismatch: %d vs %d Hz", p.ClockHz(), other.ClockHz())
	}
	return nil
}

// MergeAll sums k profiles into one, merging pairs tree-wise across a
// worker pool of the given width (jobs <= 1 folds sequentially). The
// inputs are not modified. The result is identical to merging the
// profiles one at a time in slice order.
func MergeAll(ctx context.Context, profiles []*Profile, jobs int) (*Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("gmon: no profiles to merge")
	}
	if jobs <= 1 || len(profiles) == 2 {
		total := profiles[0].Clone()
		for _, p := range profiles[1:] {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := total.Merge(p); err != nil {
				return nil, err
			}
		}
		return total, nil
	}
	// Each round halves the list: pair (2i, 2i+1) merges into a clone of
	// the left element (first round only — later rounds own their
	// intermediates), an odd tail carries over.
	cur := profiles
	owned := false
	for len(cur) > 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pairs := len(cur) / 2
		next := make([]*Profile, (len(cur)+1)/2)
		errs := make([]error, pairs)
		var wg sync.WaitGroup
		idx := make(chan int)
		workers := jobs
		if workers > pairs {
			workers = pairs
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					if ctx.Err() != nil {
						continue
					}
					left := cur[2*i]
					if !owned {
						left = left.Clone()
					}
					errs[i] = left.Merge(cur[2*i+1])
					next[i] = left
				}
			}()
		}
		for i := 0; i < pairs; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		if len(cur)%2 == 1 {
			tail := cur[len(cur)-1]
			if !owned {
				tail = tail.Clone()
			}
			next[pairs] = tail
		}
		cur = next
		owned = true
	}
	return cur[0], nil
}

// ReadFilesCtx reads several profile data files concurrently and
// tree-merges them across a worker pool, honoring ctx cancellation.
// Every profile must be mergeable with the first; an incompatible or
// unreadable file is reported by name. ReadFilesCtx(ctx, names, 1) is
// exactly ReadFiles.
func ReadFilesCtx(ctx context.Context, names []string, jobs int) (*Profile, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("gmon: no profile data files")
	}
	if jobs <= 1 {
		total, err := ReadFile(names[0])
		if err != nil {
			return nil, err
		}
		for _, name := range names[1:] {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p, err := ReadFile(name)
			if err != nil {
				return nil, err
			}
			if err := total.Merge(p); err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
		}
		return total, nil
	}
	ps := make([]*Profile, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	idx := make(chan int)
	workers := jobs
	if workers > len(names) {
		workers = len(names)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue
				}
				ps[i], errs[i] = ReadFile(names[i])
			}
		}()
	}
	for i := range names {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Attribute incompatibilities to a file name before the tree merge
	// loses track of which input was at fault.
	for i, p := range ps[1:] {
		if err := ps[0].checkMergeable(p); err != nil {
			return nil, fmt.Errorf("%s: %w", names[i+1], err)
		}
	}
	return MergeAll(ctx, ps, jobs)
}
