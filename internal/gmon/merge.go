// Parallel fan-in merge: the paper's "sum several runs" feature (§3)
// scaled to many gmon.out files. Profiles merge tree-wise across a
// worker pool; because bucket and arc counts combine by integer
// addition (commutative and associative) and Merge canonicalizes arc
// order, the result is bit-for-bit identical to a sequential
// left-to-right merge no matter how the tree is shaped or scheduled.
package gmon

import (
	"context"
	"fmt"
	"os"
	"sync"

	"repro/internal/obs"
)

// checkMergeable reports why other cannot be summed into p, if so: the
// histogram geometry and clock rate must agree, the same restriction
// real gprof places on summed gmon.out files.
func (p *Profile) checkMergeable(other *Profile) error {
	if p.Hist.Low != other.Hist.Low || p.Hist.High != other.Hist.High || p.Hist.Step != other.Hist.Step {
		return fmt.Errorf("gmon: merge: histogram geometry mismatch: [%#x,%#x)/%d vs [%#x,%#x)/%d",
			p.Hist.Low, p.Hist.High, p.Hist.Step,
			other.Hist.Low, other.Hist.High, other.Hist.Step)
	}
	if p.ClockHz() != other.ClockHz() {
		return fmt.Errorf("gmon: merge: clock rate mismatch: %d vs %d Hz", p.ClockHz(), other.ClockHz())
	}
	return nil
}

// MergeAll sums k profiles into one, merging pairs tree-wise across a
// worker pool of the given width (jobs <= 1 folds sequentially). The
// inputs are not modified. The result is identical to merging the
// profiles one at a time in slice order.
func MergeAll(ctx context.Context, profiles []*Profile, jobs int) (*Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("gmon: no profiles to merge")
	}
	if jobs <= 1 || len(profiles) == 2 {
		total := profiles[0].Clone()
		for _, p := range profiles[1:] {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := total.Merge(p); err != nil {
				return nil, err
			}
		}
		return total, nil
	}
	// Each round halves the list: pair (2i, 2i+1) merges into a clone of
	// the left element (first round only — later rounds own their
	// intermediates), an odd tail carries over.
	cur := profiles
	owned := false
	for len(cur) > 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pairs := len(cur) / 2
		next := make([]*Profile, (len(cur)+1)/2)
		errs := make([]error, pairs)
		var wg sync.WaitGroup
		idx := make(chan int)
		workers := jobs
		if workers > pairs {
			workers = pairs
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					if ctx.Err() != nil {
						continue
					}
					left := cur[2*i]
					if !owned {
						left = left.Clone()
					}
					errs[i] = left.Merge(cur[2*i+1])
					next[i] = left
				}
			}()
		}
		for i := 0; i < pairs; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		if len(cur)%2 == 1 {
			tail := cur[len(cur)-1]
			if !owned {
				tail = tail.Clone()
			}
			next[pairs] = tail
		}
		cur = next
		owned = true
	}
	return cur[0], nil
}

// ReadFilesCtx reads several profile data files concurrently and sums
// them across a worker pool, honoring ctx cancellation. Every profile
// must be mergeable with the first; an incompatible or unreadable file
// is reported by name. ReadFilesCtx(ctx, names, 1) is exactly
// ReadFiles. It delegates to MergeAllStreaming, so summing k runs keeps
// one decoded profile per worker, not k.
func ReadFilesCtx(ctx context.Context, names []string, jobs int) (*Profile, error) {
	return MergeAllStreaming(ctx, names, jobs)
}

// scratchPool holds the decode scratch profiles the streaming merge
// reuses: each worker decodes every file it handles into one pooled
// Profile whose histogram and arc storage persists across files.
var scratchPool = sync.Pool{New: func() any { return new(Profile) }}

// readFileInto decodes the named file into the scratch profile, reusing
// its storage, and reports the bytes consumed. Errors are attributed to
// the file. Files decode zero-copy through a read-only mapping where
// the platform allows (readMapped), streaming otherwise; the OpenBytes/
// OpenReader sniff makes gzip-compressed profile data work everywhere
// files are summed (gprof -sum, profdiff, gprofd).
func readFileInto(name string, p *Profile) (int64, error) {
	if st, mapped, err := readMapped(name, p); mapped {
		if err != nil {
			return st.TotalBytes, fmt.Errorf("%s: %w", name, err)
		}
		return st.TotalBytes, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	d, err := OpenReader(f)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", name, err)
	}
	defer d.Close()
	st, err := decodeInto(d, p)
	if err != nil {
		return st.TotalBytes, fmt.Errorf("%s: %w", name, err)
	}
	return st.TotalBytes, nil
}

// MergeAllStreaming reads the named profile data files and sums them
// without materializing every profile at once: the first file becomes
// the accumulator, and each worker streams its share of the rest
// through a pooled decode scratch (histogram and arc buffers reused
// file to file) into a per-worker partial sum. The result is identical
// to the sequential left-to-right ReadFiles fold for any worker count —
// counts sum and Merge canonicalizes arc order.
//
// An obs.Trace carried by ctx records the whole merge as one "merge"
// span plus a "gmon.read_file" span per input, and feeds the
// gmon.files_read / gmon.bytes_read counters and the merge.workers
// gauge; a canceled or failed merge marks the trace so partial stage
// timings survive.
func MergeAllStreaming(ctx context.Context, names []string, jobs int) (p *Profile, err error) {
	tr := obs.FromContext(ctx)
	defer tr.Span("merge")()
	defer func() {
		if err != nil {
			tr.Fail(err)
		}
	}()
	filesC := tr.Counter("gmon.files_read")
	bytesC := tr.Counter("gmon.bytes_read")
	if len(names) == 0 {
		return nil, fmt.Errorf("gmon: no profile data files")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	endFirst := tr.Span("gmon.read_file")
	total := &Profile{}
	n, err := readFileInto(names[0], total)
	endFirst()
	bytesC.Add(n)
	if err != nil {
		return nil, err
	}
	filesC.Add(1)
	rest := names[1:]
	if len(rest) == 0 {
		tr.Gauge("merge.workers").Set(1)
		return total, nil
	}
	if jobs <= 1 {
		tr.Gauge("merge.workers").Set(1)
		scratch := scratchPool.Get().(*Profile)
		defer scratchPool.Put(scratch)
		for _, name := range rest {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			endRead := tr.Span("gmon.read_file")
			n, err := readFileInto(name, scratch)
			endRead()
			bytesC.Add(n)
			if err != nil {
				return nil, err
			}
			filesC.Add(1)
			if err := total.Merge(scratch); err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
		}
		return total, nil
	}
	workers := jobs
	if workers > len(rest) {
		workers = len(rest)
	}
	tr.Gauge("merge.workers").Set(int64(workers))
	accs := make([]*Profile, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scratch := scratchPool.Get().(*Profile)
			defer scratchPool.Put(scratch)
			for i := range idx {
				if ctx.Err() != nil || errs[w] != nil {
					continue
				}
				name := rest[i]
				endRead := tr.Span("gmon.read_file")
				n, err := readFileInto(name, scratch)
				endRead()
				bytesC.Add(n)
				if err != nil {
					errs[w] = err
					continue
				}
				filesC.Add(1)
				// Check against the first file's geometry here so the
				// error names the incompatible input, not an
				// intermediate sum.
				if err := total.checkMergeable(scratch); err != nil {
					errs[w] = fmt.Errorf("%s: %w", name, err)
					continue
				}
				if accs[w] == nil {
					accs[w] = scratch.Clone()
				} else if err := accs[w].Merge(scratch); err != nil {
					errs[w] = fmt.Errorf("%s: %w", name, err)
				}
			}
		}(w)
	}
	for i := range rest {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, acc := range accs {
		if acc == nil {
			continue
		}
		if err := total.Merge(acc); err != nil {
			return nil, err
		}
	}
	return total, nil
}
