package gmon

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"repro/internal/binio"
)

// FuzzRead hammers the profile decoder with arbitrary bytes: corrupt
// headers, truncated sections, and overflowing varints must all surface
// as errors — never a panic, and never an allocation sized by a lying
// header (the chunked growth in ReadInto is what this exercises). Any
// input that does decode must be a valid profile that survives a
// re-encode round trip in both format versions.
func FuzzRead(f *testing.F) {
	seed := func(p *Profile, version int) {
		var buf bytes.Buffer
		if err := WriteVersion(&buf, p, version); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		b := buf.Bytes()
		f.Add(b[:len(b)/2]) // truncated mid-section
		f.Add(b[:47])       // truncated header
	}
	seed(sample(), Version1)
	seed(sample(), Version2)
	seed(sampleV3(), Version3)
	empty := &Profile{Hist: Histogram{Low: 0, High: 0, Step: 1, Counts: []uint32{}}, Arcs: []Arc{}}
	seed(empty, Version1)
	f.Add([]byte("GMOO____________"))
	// Hostile version-3 stack sections: lying record count, zero and
	// overflowing depth, zero count, negative frame pc, out-of-order
	// and duplicate records.
	uv := func(dst []byte, vs ...uint64) []byte {
		for _, v := range vs {
			dst = binio.AppendUvarint(dst, v)
		}
		return dst
	}
	f.Add(v3Bytes(1<<27, nil))
	f.Add(v3Bytes(1, uv(nil, 7, 0, 4)))
	f.Add(v3Bytes(1, uv(nil, 7, MaxStackDepth+1)))
	f.Add(v3Bytes(1, uv(nil, 7, 1, 0)))
	f.Add(v3Bytes(1, uv(uv(nil, 7, 2), zigzag(-8), 1)))
	f.Add(v3Bytes(2, uv(nil, 7, 2, 8, 1, 0, 2, 9, 1)))
	f.Add(v3Bytes(2, uv(nil, 7, 1, 1, 0, 1, 1)))
	f.Add(v3Bytes(2, uv(nil, 7, 3, 2, 4, 6, 0, 3, 2, 6, 6)))
	// Header declaring 2^27 records over no body.
	huge := append([]byte(nil), []byte("GMON")...)
	huge = append(huge, 1, 0, 0, 0)
	huge = append(huge, make([]byte, 32)...)
	huge = append(huge, 0xff, 0xff, 0xff, 0x07, 0xff, 0xff, 0xff, 0x07)
	f.Add(huge)
	// Version 2 with a varint that runs past 64 bits.
	v2overflow := append([]byte(nil), []byte("GMON")...)
	v2overflow = append(v2overflow, 2, 0, 0, 0)
	v2overflow = append(v2overflow, 60, 0, 0, 0, 0, 0, 0, 0) // hz
	v2overflow = append(v2overflow, 0, 0, 0, 0, 0, 0, 0, 0)  // low
	v2overflow = append(v2overflow, 1, 0, 0, 0, 0, 0, 0, 0)  // high
	v2overflow = append(v2overflow, 1, 0, 0, 0, 0, 0, 0, 0)  // step
	v2overflow = append(v2overflow, 1, 0, 0, 0, 1, 0, 0, 0)  // nbkt=1 narc=1
	v2overflow = append(v2overflow, 0)                       // count[0]=0
	v2overflow = append(v2overflow, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01)
	f.Add(v2overflow)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid profile: %v", err)
		}
		// Round trip through every encoder. Pre-v3 encodings drop the
		// stack table, so those legs compare against a stripped clone.
		flat := p
		if p.Stacks != nil {
			cp := *p // shallow: keep empty-vs-nil slice identity intact
			cp.Stacks = nil
			flat = &cp
		}
		var v1 bytes.Buffer
		if err := Write(&v1, p); err != nil {
			t.Fatalf("re-encode v1: %v", err)
		}
		q, err := Read(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatalf("decode re-encoded v1: %v", err)
		}
		if !reflect.DeepEqual(flat, q) {
			t.Fatalf("v1 round trip diverged:\n got %+v\nwant %+v", q, flat)
		}
		// The reader enforces canonical stack order, so any decoded
		// stack table re-encodes at v3 and round-trips exactly.
		var v3 bytes.Buffer
		if err := WriteVersion(&v3, p, Version3); err != nil {
			t.Fatalf("re-encode v3: %v", err)
		}
		s, err := Read(bytes.NewReader(v3.Bytes()))
		if err != nil {
			t.Fatalf("decode re-encoded v3: %v", err)
		}
		if !reflect.DeepEqual(s.Stacks, p.Stacks) {
			t.Fatalf("v3 stack round trip diverged:\n got %+v\nwant %+v", s.Stacks, p.Stacks)
		}
		var v2 bytes.Buffer
		if err := WriteV2(&v2, p); err != nil {
			t.Fatalf("re-encode v2: %v", err)
		}
		r, err := Read(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatalf("decode re-encoded v2: %v", err)
		}
		// Arbitrary inputs may hold duplicate (FromPC, SelfPC) keys,
		// which SortArcs (unstable) may order either way — compare
		// under a total order on the whole triple.
		canon := flat.Clone()
		canon.SortArcs()
		if canon.Arcs == nil {
			canon.Arcs = []Arc{}
		}
		if canon.Hist.Counts == nil {
			canon.Hist.Counts = []uint32{}
		}
		sortByTriple := func(arcs []Arc) {
			sort.Slice(arcs, func(i, j int) bool {
				if arcs[i].FromPC != arcs[j].FromPC {
					return arcs[i].FromPC < arcs[j].FromPC
				}
				if arcs[i].SelfPC != arcs[j].SelfPC {
					return arcs[i].SelfPC < arcs[j].SelfPC
				}
				return arcs[i].Count < arcs[j].Count
			})
		}
		sortByTriple(canon.Arcs)
		sortByTriple(r.Arcs)
		if !reflect.DeepEqual(r, canon) {
			t.Fatalf("v2 round trip diverged:\n got %+v\nwant %+v", r, canon)
		}
	})
}
