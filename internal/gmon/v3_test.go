package gmon

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/binio"
)

// sampleV3 is sample() plus a stack table, in canonical order.
func sampleV3() *Profile {
	p := sample()
	p.Stacks = []StackSample{
		{PCs: []int64{0x1003}, Count: 2},
		{PCs: []int64{0x1003, 0x1009}, Count: 7},
		{PCs: []int64{0x1003, 0x1009, 0x1001}, Count: 1},
		{PCs: []int64{0x1008, 0x1004}, Count: 5},
		{PCs: []int64{0x100e}, Count: 3},
	}
	return p
}

func TestV3RoundTrip(t *testing.T) {
	p := sampleV3()
	var buf bytes.Buffer
	if err := WriteVersion(&buf, p, Version3); err != nil {
		t.Fatal(err)
	}
	q, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p.SortArcs() // version 3 stores arcs in canonical order
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("v3 round trip diverged:\n got %+v\nwant %+v", q, p)
	}
}

// TestV3DowngradeDropsStacks: encoding a stacked profile at v1 or v2
// keeps the histogram and arcs byte-identical to a stack-less profile —
// pre-v3 consumers see exactly the bytes they always saw.
func TestV3DowngradeDropsStacks(t *testing.T) {
	p := sampleV3()
	bare := p.Clone()
	bare.Stacks = nil
	for _, version := range []int{Version1, Version2} {
		var with, without bytes.Buffer
		if err := WriteVersion(&with, p, version); err != nil {
			t.Fatal(err)
		}
		if err := WriteVersion(&without, bare, version); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(with.Bytes(), without.Bytes()) {
			t.Errorf("v%d encoding of a stacked profile differs from the stack-less encoding", version)
		}
		q, err := Read(bytes.NewReader(with.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if q.Stacks != nil {
			t.Errorf("v%d decode grew stacks: %v", version, q.Stacks)
		}
	}
}

// TestV3RoundTripProperty: random stack tables survive the v3 codec.
func TestV3RoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(rng)
		nstack := rng.Intn(20)
		seen := map[string]bool{}
		for len(p.Stacks) < nstack {
			depth := 1 + rng.Intn(6)
			pcs := make([]int64, depth)
			for i := range pcs {
				pcs[i] = int64(rng.Intn(1 << 16))
			}
			if seen[stackKey(pcs)] {
				continue
			}
			seen[stackKey(pcs)] = true
			p.Stacks = append(p.Stacks, StackSample{PCs: pcs, Count: 1 + int64(rng.Intn(1000))})
		}
		p.SortStacks()
		var buf bytes.Buffer
		if err := WriteVersion(&buf, p, Version3); err != nil {
			t.Fatal(err)
		}
		q, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		p.SortArcs()
		if q.Stacks == nil {
			q.Stacks = []StackSample{}
		}
		if p.Stacks == nil {
			p.Stacks = []StackSample{}
		}
		if !reflect.DeepEqual(p.Stacks, q.Stacks) {
			t.Fatalf("trial %d: stacks diverged:\n got %+v\nwant %+v", trial, q.Stacks, p.Stacks)
		}
	}
}

func TestV3StreamingWriterReader(t *testing.T) {
	p := sampleV3()
	p.SortArcs()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{
		Version: Version3, Hz: p.Hz,
		Low: p.Hist.Low, High: p.Hist.High, Step: p.Hist.Step,
		NumBuckets: len(p.Hist.Counts), NumArcs: len(p.Arcs), NumStacks: len(p.Stacks),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCounts(p.Hist.Counts); err != nil {
		t.Fatal(err)
	}
	for _, a := range p.Arcs {
		if err := w.WriteArc(a); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range p.Stacks {
		if err := w.WriteStack(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var whole bytes.Buffer
	if err := WriteVersion(&whole, p, Version3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), whole.Bytes()) {
		t.Fatal("streaming v3 writer and WriteVersion disagree")
	}

	d, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h := d.Header(); h.Version != Version3 || h.NumStacks != len(p.Stacks) {
		t.Fatalf("header = %+v", h)
	}
	if _, err := d.ReadCounts(nil); err != nil {
		t.Fatal(err)
	}
	// Stacks before the arc section is drained must fail.
	if _, err := d.ReadStacks(make([]StackSample, 1)); err == nil {
		t.Error("stacks read before arcs accepted")
	}
	d.Close()

	// Fresh reader, batch size 2 to exercise chunk boundaries.
	d, err = NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadCounts(nil); err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := d.ReadArcs(make([]Arc, 2)); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	var stacks []StackSample
	batch := make([]StackSample, 2)
	for {
		n, err := d.ReadStacks(batch)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		stacks = append(stacks, batch[:n]...)
	}
	if !reflect.DeepEqual(stacks, p.Stacks) {
		t.Fatalf("stacks = %+v, want %+v", stacks, p.Stacks)
	}
	st := d.Stats()
	if st.StackBytes <= 0 {
		t.Errorf("StackBytes = %d, want > 0", st.StackBytes)
	}
	if st.TotalBytes != int64(buf.Len()) {
		t.Errorf("TotalBytes = %d, want %d", st.TotalBytes, buf.Len())
	}
}

func TestV3WriterContract(t *testing.T) {
	h := Header{Version: Version3, Low: 0, High: 0, Step: 1, NumStacks: 2}
	// Stacks below version 3.
	if _, err := NewWriter(io.Discard, Header{Version: Version2, Low: 0, High: 0, Step: 1, NumStacks: 1}); err == nil {
		t.Error("v2 header declaring stacks accepted")
	}
	// Stack before counts.
	w, err := NewWriter(io.Discard, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteStack(StackSample{PCs: []int64{1}, Count: 1}); err == nil {
		t.Error("stack before counts accepted")
	}
	w.Close()
	// Out-of-order and duplicate stacks.
	fresh := func() *Writer {
		w, err := NewWriter(io.Discard, h)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteCounts(nil); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteStack(StackSample{PCs: []int64{5, 7}, Count: 1}); err != nil {
			t.Fatal(err)
		}
		return w
	}
	w = fresh()
	if err := w.WriteStack(StackSample{PCs: []int64{5, 6}, Count: 1}); err == nil {
		t.Error("out-of-order stack accepted")
	}
	w = fresh()
	if err := w.WriteStack(StackSample{PCs: []int64{5, 7}, Count: 2}); err == nil {
		t.Error("duplicate stack accepted")
	}
	// Bad records.
	w = fresh()
	if err := w.WriteStack(StackSample{PCs: nil, Count: 1}); err == nil {
		t.Error("empty stack accepted")
	}
	if err := w.WriteStack(StackSample{PCs: make([]int64, MaxStackDepth+1), Count: 1}); err == nil {
		t.Error("overdeep stack accepted")
	}
	if err := w.WriteStack(StackSample{PCs: []int64{6}, Count: 0}); err == nil {
		t.Error("zero-count stack accepted")
	}
	if err := w.WriteStack(StackSample{PCs: []int64{-1}, Count: 1}); err == nil {
		t.Error("negative pc accepted")
	}
	// Close with stacks owed.
	w = fresh()
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "never written") {
		t.Errorf("short close error = %v", err)
	}
}

// v3Bytes assembles a v3 file with no histogram or arcs and the given
// raw stack-section bytes, for hostile-input tests that need precise
// control over the wire bytes.
func v3Bytes(nstack uint32, section []byte) []byte {
	b := []byte("GMON")
	b = binary.LittleEndian.AppendUint32(b, Version3)
	b = binary.LittleEndian.AppendUint64(b, 60) // hz
	b = binary.LittleEndian.AppendUint64(b, 0)  // low
	b = binary.LittleEndian.AppendUint64(b, 0)  // high
	b = binary.LittleEndian.AppendUint64(b, 1)  // step
	b = binary.LittleEndian.AppendUint32(b, 0)  // nbkt
	b = binary.LittleEndian.AppendUint32(b, 0)  // narc
	b = binary.LittleEndian.AppendUint32(b, nstack)
	return append(b, section...)
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func TestV3HostileInputs(t *testing.T) {
	uv := func(dst []byte, vs ...uint64) []byte {
		for _, v := range vs {
			dst = binio.AppendUvarint(dst, v)
		}
		return dst
	}
	cases := []struct {
		name string
		data []byte
		want string // error substring
	}{
		{"lying stack count, empty section", v3Bytes(3, nil), "unexpected EOF"},
		{"lying stack count, partial section", v3Bytes(2, uv(nil, 7, 1, 4)), "unexpected EOF"},
		{"depth zero", v3Bytes(1, uv(nil, 7, 0, 4)), "stack depth"},
		{"depth overflow", v3Bytes(1, uv(nil, 7, MaxStackDepth+1)), "stack depth"},
		{"count zero", v3Bytes(1, uv(nil, 7, 1, 0)), "stack count"},
		{"leaf pc varint overflow", v3Bytes(1, append(bytes.Repeat([]byte{0xff}, 9), 0x7f)), "overflow"},
		{"frame pc negative", v3Bytes(1, uv(uv(nil, 7, 2), zigzag(-8), 1)), "invalid pc"},
		{"records out of order", v3Bytes(2, uv(nil, 7, 2, 8, 1, 0, 2, 9, 1)), "out of order"},
		{"duplicate records", v3Bytes(2, uv(nil, 7, 1, 1, 0, 1, 1)), "out of order"},
	}
	for _, tc := range cases {
		_, err := Read(bytes.NewReader(tc.data))
		if err == nil {
			t.Errorf("%s: decoded successfully", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestV3LyingStackCountBoundedAlloc: a header declaring 2^27 stack
// records over an empty body must fail without allocating room for
// them — and a single record claiming MaxStackDepth frames over a
// truncated body is bounded by the depth check.
func TestV3LyingStackCountBoundedAlloc(t *testing.T) {
	data := v3Bytes(1<<27, nil)
	grew := testingAllocs(func() {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Error("truncated 128M-stack file decoded successfully")
		}
	})
	if grew > 1<<21 {
		t.Errorf("decoding a lying stack count allocated %d bytes", grew)
	}
}

// TestV3MergeStacks: merging profiles folds equal paths, keeps distinct
// ones, and stays canonically sorted; a stack-less profile merged into
// a stacked one leaves the stacks alone.
func TestV3MergeStacks(t *testing.T) {
	a := sampleV3()
	b := sampleV3()
	b.Stacks = []StackSample{
		{PCs: []int64{0x1003, 0x1009}, Count: 3}, // folds into a's
		{PCs: []int64{0x1002}, Count: 8},         // new, sorts first
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	want := []StackSample{
		{PCs: []int64{0x1002}, Count: 8},
		{PCs: []int64{0x1003}, Count: 2},
		{PCs: []int64{0x1003, 0x1009}, Count: 10},
		{PCs: []int64{0x1003, 0x1009, 0x1001}, Count: 1},
		{PCs: []int64{0x1008, 0x1004}, Count: 5},
		{PCs: []int64{0x100e}, Count: 3},
	}
	if !reflect.DeepEqual(a.Stacks, want) {
		t.Fatalf("merged stacks = %+v, want %+v", a.Stacks, want)
	}

	c := sample() // no stacks
	if err := a.Merge(c); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Stacks, want) {
		t.Fatalf("stack-less merge changed stacks: %+v", a.Stacks)
	}
}

// TestV3OpenReaderGzip: the transport sniff composes with v3 payloads.
func TestV3OpenReaderGzip(t *testing.T) {
	p := sampleV3()
	var raw bytes.Buffer
	if err := WriteVersion(&raw, p, Version3); err != nil {
		t.Fatal(err)
	}
	p.SortArcs() // version 3 stores arcs in canonical order
	zipped := gzipped(t, raw.Bytes())
	for _, data := range [][]byte{raw.Bytes(), zipped} {
		q, err := Open(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatal("v3 via OpenReader diverged")
		}
	}
}
