package gmon_test

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/gmon"
)

// Example shows the profile-data round trip and multi-run merging the
// post-processors rely on.
func Example() {
	run1 := &gmon.Profile{
		Hist: gmon.Histogram{Low: 0x1000, High: 0x1004, Step: 1, Counts: []uint32{3, 0, 5, 0}},
		Arcs: []gmon.Arc{{FromPC: 0x1000, SelfPC: 0x1002, Count: 7}},
		Hz:   60,
	}
	var file bytes.Buffer
	if err := gmon.Write(&file, run1); err != nil {
		log.Fatal(err)
	}
	run2, err := gmon.Read(&file)
	if err != nil {
		log.Fatal(err)
	}
	// Sum a second (identical) run into the first.
	if err := run1.Merge(run2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ticks %d, arc count %d, %.2f seconds\n",
		run1.Hist.TotalTicks(), run1.Arcs[0].Count, run1.TotalSeconds())
	// Output:
	// ticks 16, arc count 14, 0.27 seconds
}
