package gmon

import (
	"bytes"
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

// randomProfile builds a profile with shared geometry and rng-chosen
// counts and arcs.
func randomProfile(rng *rand.Rand) *Profile {
	p := &Profile{
		Hist: Histogram{Low: 0x100, High: 0x100 + 64, Step: 1, Counts: make([]uint32, 64)},
		Hz:   60,
	}
	for i := range p.Hist.Counts {
		p.Hist.Counts[i] = uint32(rng.Intn(50))
	}
	seen := map[[2]int64]bool{}
	for n := rng.Intn(20); n > 0; n-- {
		from := int64(0x100 + rng.Intn(64))
		self := int64(0x100 + rng.Intn(64))
		if seen[[2]int64{from, self}] {
			continue
		}
		seen[[2]int64{from, self}] = true
		p.Arcs = append(p.Arcs, Arc{FromPC: from, SelfPC: self, Count: int64(rng.Intn(1000) + 1)})
	}
	return p
}

func encode(t *testing.T, p *Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestMergeAllMatchesSequential is the merge-determinism property: a
// tree-parallel merge of a shuffled profile list equals the sequential
// fold bit-for-bit, for every list length and worker count tried.
func TestMergeAllMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 3, 5, 8, 16, 33} {
		ps := make([]*Profile, k)
		for i := range ps {
			ps[i] = randomProfile(rng)
		}
		sequential, err := MergeAll(context.Background(), ps, 1)
		if err != nil {
			t.Fatalf("k=%d sequential: %v", k, err)
		}
		want := encode(t, sequential)
		for _, jobs := range []int{2, 4, 7} {
			shuffled := append([]*Profile(nil), ps...)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			got, err := MergeAll(context.Background(), shuffled, jobs)
			if err != nil {
				t.Fatalf("k=%d jobs=%d: %v", k, jobs, err)
			}
			// Shuffling changes nothing: counts sum and arcs sort.
			if !bytes.Equal(encode(t, got), want) {
				t.Errorf("k=%d jobs=%d: tree-parallel merge of shuffled list differs from sequential", k, jobs)
			}
		}
	}
}

// TestMergeAllLeavesInputsAlone: the inputs must not accumulate into
// each other (the sequential ReadFiles path mutates only the profile it
// read itself).
func TestMergeAllLeavesInputsAlone(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ps := []*Profile{randomProfile(rng), randomProfile(rng), randomProfile(rng)}
	before := make([][]byte, len(ps))
	for i, p := range ps {
		before[i] = encode(t, p)
	}
	for _, jobs := range []int{1, 4} {
		if _, err := MergeAll(context.Background(), ps, jobs); err != nil {
			t.Fatal(err)
		}
		for i, p := range ps {
			if !bytes.Equal(encode(t, p), before[i]) {
				t.Errorf("jobs=%d: MergeAll mutated input %d", jobs, i)
			}
		}
	}
}

func TestMergeAllErrors(t *testing.T) {
	if _, err := MergeAll(context.Background(), nil, 4); err == nil {
		t.Error("empty profile list accepted")
	}
	rng := rand.New(rand.NewSource(9))
	ps := []*Profile{randomProfile(rng), randomProfile(rng), randomProfile(rng)}
	ps[2] = ps[2].Clone()
	ps[2].Hist.Step = 2
	ps[2].Hist.Counts = ps[2].Hist.Counts[:ps[2].Hist.NumBuckets()]
	for _, jobs := range []int{1, 4} {
		if _, err := MergeAll(context.Background(), ps, jobs); err == nil {
			t.Errorf("jobs=%d: geometry mismatch accepted", jobs)
		}
	}
}

func TestMergeAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(10))
	ps := make([]*Profile, 16)
	for i := range ps {
		ps[i] = randomProfile(rng)
	}
	for _, jobs := range []int{1, 4} {
		if _, err := MergeAll(ctx, ps, jobs); err == nil {
			t.Errorf("jobs=%d: canceled context not honored", jobs)
		}
	}
}

// TestReadFilesCtxMatchesReadFiles: the concurrent reader returns the
// same bytes as the sequential one and attributes incompatible files by
// name.
func TestReadFilesCtxMatchesReadFiles(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	var names []string
	for i := 0; i < 9; i++ {
		name := filepath.Join(dir, "gmon."+string(rune('a'+i)))
		if err := WriteFile(name, randomProfile(rng)); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	want, err := ReadFiles(names)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadFilesCtx(context.Background(), names, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, want), encode(t, got)) {
		t.Error("parallel ReadFilesCtx differs from sequential ReadFiles")
	}

	// A geometry mismatch names the offending file.
	odd := randomProfile(rng)
	odd.Hz = 100
	oddName := filepath.Join(dir, "gmon.odd")
	if err := WriteFile(oddName, odd); err != nil {
		t.Fatal(err)
	}
	_, err = ReadFilesCtx(context.Background(), append(names, oddName), 4)
	if err == nil || !strings.Contains(err.Error(), "gmon.odd") {
		t.Errorf("mismatch error does not name the file: %v", err)
	}

	if _, err := ReadFilesCtx(context.Background(), nil, 4); err == nil {
		t.Error("empty name list accepted")
	}
	if _, err := ReadFilesCtx(context.Background(), []string{filepath.Join(dir, "missing")}, 4); err == nil {
		t.Error("missing file accepted")
	}
}
