package gmon

import (
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// writeProfiles writes n random-but-mergeable profile files and
// returns their names.
func writeProfiles(t *testing.T, n int) []string {
	t.Helper()
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(23))
	names := make([]string, n)
	for i := range names {
		names[i] = filepath.Join(dir, "gmon."+string(rune('a'+i)))
		if err := WriteFile(names[i], randomProfile(rng)); err != nil {
			t.Fatal(err)
		}
	}
	return names
}

// stageByName pulls one stage row out of a run report.
func stageByName(r obs.RunReport, name string) (obs.StageTiming, bool) {
	for _, st := range r.Stages {
		if st.Name == name {
			return st, true
		}
	}
	return obs.StageTiming{}, false
}

// TestMergeRecordsTrace: a traced streaming merge records the merge
// span, one read span per input, and the file/byte counters.
func TestMergeRecordsTrace(t *testing.T) {
	names := writeProfiles(t, 5)
	for _, jobs := range []int{1, 4} {
		tr := obs.New()
		ctx := obs.NewContext(context.Background(), tr)
		if _, err := MergeAllStreaming(ctx, names, jobs); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		r := tr.Report()
		if !r.Complete {
			t.Errorf("jobs=%d: report not complete: %q", jobs, r.Error)
		}
		if st, ok := stageByName(r, "merge"); !ok || st.Count != 1 {
			t.Errorf("jobs=%d: merge span missing or duplicated: %+v", jobs, st)
		}
		if st, ok := stageByName(r, "gmon.read_file"); !ok || st.Count != int64(len(names)) {
			t.Errorf("jobs=%d: want %d read spans, got %+v", jobs, len(names), st)
		}
		if got := r.Counters["gmon.files_read"]; got != int64(len(names)) {
			t.Errorf("jobs=%d: files_read = %d, want %d", jobs, got, len(names))
		}
		if r.Counters["gmon.bytes_read"] <= 0 {
			t.Errorf("jobs=%d: bytes_read not recorded", jobs)
		}
	}
}

// failAfterCtx reports context.Canceled from its (n+1)-th Err() call
// on: a deterministic stand-in for a signal arriving mid-merge, where
// WithCancel plus goroutine timing would race.
type failAfterCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *failAfterCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func (c *failAfterCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

// TestMergeCancelPartialReport is the partial-run diagnosability
// guarantee: a merge canceled after the first file still yields a
// report carrying the stages and counters recorded so far, marked
// incomplete with the cancellation error.
func TestMergeCancelPartialReport(t *testing.T) {
	names := writeProfiles(t, 4)
	tr := obs.New()
	// Err() call #1 is the pre-read check; #2 is the first loop
	// iteration, so exactly one file is read before the abort.
	ctx := &failAfterCtx{Context: obs.NewContext(context.Background(), tr), after: 1}
	_, err := MergeAllStreaming(ctx, names, 1)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	r := tr.Report()
	if r.Complete {
		t.Error("canceled merge reported complete")
	}
	if !strings.Contains(r.Error, "canceled") {
		t.Errorf("report error = %q, want cancellation", r.Error)
	}
	if st, ok := stageByName(r, "merge"); !ok || st.Count != 1 {
		t.Errorf("merge span missing from partial report: %+v", st)
	}
	if st, ok := stageByName(r, "gmon.read_file"); !ok || st.Count != 1 {
		t.Errorf("want exactly 1 read span before the abort, got %+v", st)
	}
	if got := r.Counters["gmon.files_read"]; got != 1 {
		t.Errorf("files_read = %d, want 1", got)
	}

	// The emitted JSON document says the same thing.
	var buf strings.Builder
	if err := tr.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{obs.RunReportSchema, `"complete": false`, "context canceled"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report JSON missing %q:\n%s", want, buf.String())
		}
	}
}
