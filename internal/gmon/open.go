package gmon

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"

	"repro/internal/binio"
)

// gzipMagic is the two-byte RFC 1952 member header every gzip stream
// starts with.
var gzipMagic = [2]byte{0x1f, 0x8b}

// Sniff reports whether head looks like the start of profile data this
// package can decode: a raw GMON file (either version) or a gzip
// stream wrapping one. head needs at least two bytes to identify gzip
// and four to identify a raw file; shorter prefixes report false.
func Sniff(head []byte) bool {
	if len(head) >= 2 && head[0] == gzipMagic[0] && head[1] == gzipMagic[1] {
		return true
	}
	return len(head) >= 4 && bytes.Equal(head[:4], magic[:])
}

// OpenReader is the one ingestion entry point for profile data: it
// sniffs the stream's transport encoding (gzip or identity) from the
// first two bytes, unwraps it if needed, and hands the payload to
// NewReader, whose header parse negotiates the format version (v1 or
// v2). Every consumer of profile data — gprof -sum, profdiff,
// core.LoadProfiles, and the gprofd ingest handler — decodes through
// this sniff, so compressed uploads and both format versions work
// everywhere without parallel decode paths.
//
// Closing the returned Reader closes the gzip decompressor when one
// was interposed; the caller still owns r itself.
func OpenReader(r io.Reader) (*Reader, error) {
	var head [2]byte
	n, err := io.ReadFull(r, head[:])
	if err != nil {
		// A stream too short for the sniff is too short for the magic.
		return nil, fmt.Errorf("gmon: reading magic: %w", eofIsTruncation(err))
	}
	payload := io.Reader(io.MultiReader(bytes.NewReader(head[:n]), r))
	var unzip *gzip.Reader
	if head == gzipMagic {
		unzip, err = gzip.NewReader(payload)
		if err != nil {
			return nil, fmt.Errorf("gmon: opening gzip stream: %w", err)
		}
		payload = unzip
	}
	d, err := NewReader(payload)
	if err != nil {
		if unzip != nil {
			unzip.Close()
		}
		return nil, err
	}
	if unzip != nil {
		d.src = unzip
	}
	return d, nil
}

// OpenBytes is OpenReader for profile data already resident in memory
// (a binio.Map mapping, an upload body): raw files decode through a
// fixed zero-copy reader whose record views alias data itself — no
// block buffer, no staging memcpy — while gzip payloads unwrap through
// the streaming decompressor. The caller keeps data alive until the
// returned Reader is closed.
func OpenBytes(data []byte) (*Reader, error) {
	if len(data) >= 2 && data[0] == gzipMagic[0] && data[1] == gzipMagic[1] {
		unzip, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("gmon: opening gzip stream: %w", err)
		}
		d, err := NewReader(unzip)
		if err != nil {
			unzip.Close()
			return nil, err
		}
		d.src = unzip
		return d, nil
	}
	return newReaderBR(binio.NewBytesReader(data))
}

// Open decodes a whole profile through OpenReader: gzip or identity
// transport, either format version.
func Open(r io.Reader) (*Profile, error) {
	p := &Profile{}
	if err := OpenInto(r, p); err != nil {
		return nil, err
	}
	return p, nil
}

// OpenInto decodes a profile through OpenReader into p, reusing p's
// histogram and arc storage when its capacity suffices.
func OpenInto(r io.Reader, p *Profile) error {
	d, err := OpenReader(r)
	if err != nil {
		return err
	}
	defer d.Close()
	_, err = decodeInto(d, p)
	return err
}
