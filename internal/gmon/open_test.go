package gmon

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"reflect"
	"testing"
)

// gzipped compresses b with the default gzip level.
func gzipped(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestOpenReaderSniff: every (version, transport) combination decodes
// to the same profile through the one entry point.
func TestOpenReaderSniff(t *testing.T) {
	want := sample()
	encode := func(version int) []byte {
		var buf bytes.Buffer
		if err := WriteVersion(&buf, want, version); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := map[string][]byte{
		"v1":      encode(Version1),
		"v2":      encode(Version2),
		"v1+gzip": gzipped(t, encode(Version1)),
		"v2+gzip": gzipped(t, encode(Version2)),
	}
	for name, data := range cases {
		got, err := Open(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		canon := want.Clone()
		canon.SortArcs()
		gotCanon := got.Clone()
		gotCanon.SortArcs()
		if !reflect.DeepEqual(gotCanon, canon) {
			t.Errorf("%s: decoded profile diverged", name)
		}
	}
}

// TestOpenReaderErrors: hostile streams surface as errors, never
// panics, and the sniff never misreads garbage as a profile.
func TestOpenReaderErrors(t *testing.T) {
	var v1 bytes.Buffer
	if err := Write(&v1, sample()); err != nil {
		t.Fatal(err)
	}
	gz := gzipped(t, v1.Bytes())
	cases := map[string][]byte{
		"empty":            nil,
		"one byte":         {0x1f},
		"garbage":          []byte("this is not profile data"),
		"bad magic":        []byte("GMOO____________________________________________"),
		"gzip, bad header": append([]byte{0x1f, 0x8b}, []byte("nope")...),
		"gzip, truncated":  gz[:len(gz)/2],
		"raw, truncated":   v1.Bytes()[:20],
	}
	for name, data := range cases {
		if _, err := Open(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestOpenReaderStreams: the streaming surface works through the gzip
// transport too, and Close tears down the decompressor.
func TestOpenReaderStreams(t *testing.T) {
	p := sample()
	var raw bytes.Buffer
	if err := WriteV2(&raw, p); err != nil {
		t.Fatal(err)
	}
	d, err := OpenReader(bytes.NewReader(gzipped(t, raw.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Header().Version; got != Version2 {
		t.Fatalf("sniffed version %d, want %d", got, Version2)
	}
	if _, err := d.ReadCounts(nil); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	canon := p.Clone()
	canon.SortArcs()
	if n != len(canon.Arcs) {
		t.Fatalf("streamed %d arcs, want %d", n, len(canon.Arcs))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSniff pins the head-bytes classifier profdiff and the gprofd
// ingest handler rely on.
func TestSniff(t *testing.T) {
	cases := []struct {
		head string
		want bool
	}{
		{"GMON....", true},
		{"\x1f\x8b\x08", true},
		{"GMO", false},
		{"{\"schema\":", false},
		{"", false},
		{"\x1f", false},
	}
	for _, c := range cases {
		if got := Sniff([]byte(c.head)); got != c.want {
			t.Errorf("Sniff(%q) = %v, want %v", c.head, got, c.want)
		}
	}
}

// TestMergeStreamingGzip: a gzip-compressed file sums transparently
// with raw ones through the streaming merge (the gprof -sum path).
func TestMergeStreamingGzip(t *testing.T) {
	p := sample()
	dir := t.TempDir()
	raw := dir + "/raw.out"
	if err := WriteFile(raw, p); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	gzName := dir + "/gz.out"
	if err := os.WriteFile(gzName, gzipped(t, buf.Bytes()), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFiles([]string{raw, gzName})
	if err != nil {
		t.Fatal(err)
	}
	want := p.Clone()
	if err := want.Merge(p); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("gzip + raw merge diverged:\n got %+v\nwant %+v", got, want)
	}
}
