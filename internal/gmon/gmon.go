// Package gmon defines the profile data file ("gmon.out") written when a
// profiled program exits and read by the post-processors.
//
// The paper (§3.2) condenses two data structures to the file as the
// program terminates: the arc table — (call site, callee, traversal
// count) triples — and the program-counter histogram, whose ranges "are
// summarized as a lower and upper bound and a step size". This package is
// the in-memory form of that file, its binary encoding, and the merge
// operation that lets "the profile data for several executions of a
// program be combined by the post-processing" (§3).
package gmon

import (
	"fmt"
	"sort"
)

// SpontaneousPC is the FromPC of an arc whose caller could not be
// identified (non-standard calling sequences, §3.1). It matches
// vm.SpontaneousPC; the value is duplicated to keep this package free of
// a vm dependency.
const SpontaneousPC = int64(-1)

// DefaultHz is the clock-tick rate used when a Profile does not specify
// one: the paper's 1/60th-of-a-second system clock.
const DefaultHz = 60

// Histogram is the program-counter sampling histogram. Bucket i counts
// clock ticks observed with Low+i*Step <= pc < Low+(i+1)*Step.
type Histogram struct {
	Low    int64 // first text address covered
	High   int64 // one past the last text address covered
	Step   int64 // words per bucket (1 = one-to-one with text words)
	Counts []uint32
}

// NumBuckets returns the bucket count implied by the bounds and step.
func (h *Histogram) NumBuckets() int {
	if h.Step <= 0 || h.High <= h.Low {
		return 0
	}
	return int((h.High - h.Low + h.Step - 1) / h.Step)
}

// BucketFor returns the bucket index covering pc, or -1 if out of range.
func (h *Histogram) BucketFor(pc int64) int {
	if pc < h.Low || pc >= h.High || h.Step <= 0 {
		return -1
	}
	return int((pc - h.Low) / h.Step)
}

// BucketRange returns the [lo, hi) address range of bucket i.
func (h *Histogram) BucketRange(i int) (lo, hi int64) {
	lo = h.Low + int64(i)*h.Step
	hi = lo + h.Step
	if hi > h.High {
		hi = h.High
	}
	return lo, hi
}

// TotalTicks sums all bucket counts.
func (h *Histogram) TotalTicks() int64 {
	var t int64
	for _, c := range h.Counts {
		t += int64(c)
	}
	return t
}

// Validate checks internal consistency.
func (h *Histogram) Validate() error {
	if h.Step <= 0 {
		return fmt.Errorf("gmon: histogram step %d (want > 0)", h.Step)
	}
	if h.High < h.Low {
		return fmt.Errorf("gmon: histogram bounds [%#x,%#x) inverted", h.Low, h.High)
	}
	if want := h.NumBuckets(); len(h.Counts) != want {
		return fmt.Errorf("gmon: histogram has %d buckets, bounds imply %d", len(h.Counts), want)
	}
	return nil
}

// MaxStackDepth is the format bound on frames per stack sample: the
// reader rejects deeper records, so a hostile file cannot drive an
// unbounded per-record allocation. Collectors cap their walks well
// below it (mon.DefaultStackDepth).
const MaxStackDepth = 512

// StackSample is one whole-call-stack sample with its observation
// count — the retrospective's fix for §3.2's average-time-per-call
// assumption: "periodically gathering not just isolated program counter
// samples and isolated call graph arcs, but complete call stacks".
//
// PCs are leaf-first: PCs[0] is the program counter the clock tick
// sampled, and each later entry is the return address of the next
// active frame outward (so the call site of frame i is PCs[i]-1 for
// i > 0). PCs are raw addresses; symbol resolution happens at model
// build time, which is what lets stacks merge across runs without a
// symbol table present.
type StackSample struct {
	PCs   []int64
	Count int64
}

// Arc is one dynamic call-graph arc with its traversal count. FromPC is
// the address of the call instruction (the call site); SelfPC is the
// address of the callee's profiled prologue, which the symbol table maps
// to the callee routine.
type Arc struct {
	FromPC int64
	SelfPC int64
	Count  int64
}

// Profile is the complete contents of a profile data file.
type Profile struct {
	Hist Histogram
	Arcs []Arc
	// Stacks holds the interned whole-stack samples, one entry per
	// distinct PC sequence. Empty for profiles gathered without a stack
	// walker and for files in format versions 1 and 2 (the stack
	// section is a version-3 addition; downgrading drops it).
	Stacks []StackSample
	// Hz is the clock-tick rate: histogram counts are ticks, and
	// seconds = ticks / Hz. Zero means DefaultHz.
	Hz int64
}

// ClockHz returns the effective tick rate.
func (p *Profile) ClockHz() int64 {
	if p.Hz > 0 {
		return p.Hz
	}
	return DefaultHz
}

// TotalSeconds returns the sampled execution time in seconds.
func (p *Profile) TotalSeconds() float64 {
	return float64(p.Hist.TotalTicks()) / float64(p.ClockHz())
}

// Validate checks internal consistency of the whole profile.
func (p *Profile) Validate() error {
	if err := p.Hist.Validate(); err != nil {
		return err
	}
	for i, a := range p.Arcs {
		if a.Count < 0 {
			return fmt.Errorf("gmon: arc %d has negative count %d", i, a.Count)
		}
		if a.SelfPC < 0 {
			return fmt.Errorf("gmon: arc %d has invalid callee pc %#x", i, a.SelfPC)
		}
		if a.FromPC < 0 && a.FromPC != SpontaneousPC {
			return fmt.Errorf("gmon: arc %d has invalid call-site pc %#x", i, a.FromPC)
		}
	}
	for i := range p.Stacks {
		s := &p.Stacks[i]
		if len(s.PCs) == 0 {
			return fmt.Errorf("gmon: stack %d has no frames", i)
		}
		if len(s.PCs) > MaxStackDepth {
			return fmt.Errorf("gmon: stack %d has %d frames (max %d)", i, len(s.PCs), MaxStackDepth)
		}
		if s.Count <= 0 {
			return fmt.Errorf("gmon: stack %d has non-positive count %d", i, s.Count)
		}
		for j, pc := range s.PCs {
			if pc < 0 {
				return fmt.Errorf("gmon: stack %d frame %d has invalid pc %#x", i, j, pc)
			}
		}
	}
	return nil
}

// SortArcs orders arcs by (FromPC, SelfPC) for deterministic output.
func (p *Profile) SortArcs() { sortArcs(p.Arcs) }

func sortArcs(arcs []Arc) {
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].FromPC != arcs[j].FromPC {
			return arcs[i].FromPC < arcs[j].FromPC
		}
		return arcs[i].SelfPC < arcs[j].SelfPC
	})
}

// compareStacks orders PC sequences lexicographically, shorter prefix
// first — the canonical stack-table order SortStacks and the v3 writer
// fix.
func compareStacks(a, b []int64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// SortStacks orders stack samples lexicographically by PC sequence for
// deterministic output; Merge and the v3 writer rely on this canonical
// order the way arcs rely on SortArcs.
func (p *Profile) SortStacks() { SortStacks(p.Stacks) }

// SortStacks orders a bare stack-sample slice into the same canonical
// order, for collectors that assemble one outside a Profile.
func SortStacks(stacks []StackSample) {
	sort.Slice(stacks, func(i, j int) bool {
		return compareStacks(stacks[i].PCs, stacks[j].PCs) < 0
	})
}

// SumStacks returns the total number of whole-stack samples the
// profile carries — the sum of interned counts, the stacks-view
// analogue of the histogram's TotalTicks.
func (p *Profile) SumStacks() int64 {
	var n int64
	for i := range p.Stacks {
		n += p.Stacks[i].Count
	}
	return n
}

// stackKey maps a PC sequence to a comparable map key without
// allocating beyond the string itself: the raw little-endian bytes of
// the sequence.
func stackKey(pcs []int64) string {
	b := make([]byte, 8*len(pcs))
	for i, pc := range pcs {
		v := uint64(pc)
		for j := 0; j < 8; j++ {
			b[i*8+j] = byte(v >> (8 * j))
		}
	}
	return string(b)
}

// Merge accumulates other into p: histogram bucket counts and arc counts
// add element-wise. Profiles are mergeable only when their histogram
// geometry and clock rate agree, the same restriction real gprof places
// on summed gmon.out files.
func (p *Profile) Merge(other *Profile) error {
	if err := p.checkMergeable(other); err != nil {
		return err
	}
	for i, c := range other.Hist.Counts {
		p.Hist.Counts[i] += c
	}
	type key struct{ from, self int64 }
	idx := make(map[key]int, len(p.Arcs))
	for i, a := range p.Arcs {
		idx[key{a.FromPC, a.SelfPC}] = i
	}
	for _, a := range other.Arcs {
		if i, ok := idx[key{a.FromPC, a.SelfPC}]; ok {
			p.Arcs[i].Count += a.Count
		} else {
			idx[key{a.FromPC, a.SelfPC}] = len(p.Arcs)
			p.Arcs = append(p.Arcs, a)
		}
	}
	p.SortArcs()
	if len(other.Stacks) > 0 {
		// Stack-table-aware fold: identical PC sequences sum their
		// counts, new sequences append. PC slices are never mutated
		// after construction, so the merged table may alias other's.
		sidx := make(map[string]int, len(p.Stacks))
		for i := range p.Stacks {
			sidx[stackKey(p.Stacks[i].PCs)] = i
		}
		for _, s := range other.Stacks {
			if i, ok := sidx[stackKey(s.PCs)]; ok {
				p.Stacks[i].Count += s.Count
			} else {
				sidx[stackKey(s.PCs)] = len(p.Stacks)
				p.Stacks = append(p.Stacks, s)
			}
		}
		p.SortStacks()
	}
	return nil
}

// Clone returns a deep copy of p. Stack PC sequences are shared, not
// copied: they are immutable after construction (Merge only ever sums
// counts or appends whole entries), so aliasing them is safe and keeps
// the copy-on-write snapshot path cheap.
func (p *Profile) Clone() *Profile {
	q := &Profile{Hist: p.Hist, Hz: p.Hz}
	q.Hist.Counts = append([]uint32(nil), p.Hist.Counts...)
	q.Arcs = append([]Arc(nil), p.Arcs...)
	if p.Stacks != nil {
		q.Stacks = append([]StackSample(nil), p.Stacks...)
	}
	return q
}
