// Package gmon defines the profile data file ("gmon.out") written when a
// profiled program exits and read by the post-processors.
//
// The paper (§3.2) condenses two data structures to the file as the
// program terminates: the arc table — (call site, callee, traversal
// count) triples — and the program-counter histogram, whose ranges "are
// summarized as a lower and upper bound and a step size". This package is
// the in-memory form of that file, its binary encoding, and the merge
// operation that lets "the profile data for several executions of a
// program be combined by the post-processing" (§3).
package gmon

import (
	"fmt"
	"sort"
)

// SpontaneousPC is the FromPC of an arc whose caller could not be
// identified (non-standard calling sequences, §3.1). It matches
// vm.SpontaneousPC; the value is duplicated to keep this package free of
// a vm dependency.
const SpontaneousPC = int64(-1)

// DefaultHz is the clock-tick rate used when a Profile does not specify
// one: the paper's 1/60th-of-a-second system clock.
const DefaultHz = 60

// Histogram is the program-counter sampling histogram. Bucket i counts
// clock ticks observed with Low+i*Step <= pc < Low+(i+1)*Step.
type Histogram struct {
	Low    int64 // first text address covered
	High   int64 // one past the last text address covered
	Step   int64 // words per bucket (1 = one-to-one with text words)
	Counts []uint32
}

// NumBuckets returns the bucket count implied by the bounds and step.
func (h *Histogram) NumBuckets() int {
	if h.Step <= 0 || h.High <= h.Low {
		return 0
	}
	return int((h.High - h.Low + h.Step - 1) / h.Step)
}

// BucketFor returns the bucket index covering pc, or -1 if out of range.
func (h *Histogram) BucketFor(pc int64) int {
	if pc < h.Low || pc >= h.High || h.Step <= 0 {
		return -1
	}
	return int((pc - h.Low) / h.Step)
}

// BucketRange returns the [lo, hi) address range of bucket i.
func (h *Histogram) BucketRange(i int) (lo, hi int64) {
	lo = h.Low + int64(i)*h.Step
	hi = lo + h.Step
	if hi > h.High {
		hi = h.High
	}
	return lo, hi
}

// TotalTicks sums all bucket counts.
func (h *Histogram) TotalTicks() int64 {
	var t int64
	for _, c := range h.Counts {
		t += int64(c)
	}
	return t
}

// Validate checks internal consistency.
func (h *Histogram) Validate() error {
	if h.Step <= 0 {
		return fmt.Errorf("gmon: histogram step %d (want > 0)", h.Step)
	}
	if h.High < h.Low {
		return fmt.Errorf("gmon: histogram bounds [%#x,%#x) inverted", h.Low, h.High)
	}
	if want := h.NumBuckets(); len(h.Counts) != want {
		return fmt.Errorf("gmon: histogram has %d buckets, bounds imply %d", len(h.Counts), want)
	}
	return nil
}

// Arc is one dynamic call-graph arc with its traversal count. FromPC is
// the address of the call instruction (the call site); SelfPC is the
// address of the callee's profiled prologue, which the symbol table maps
// to the callee routine.
type Arc struct {
	FromPC int64
	SelfPC int64
	Count  int64
}

// Profile is the complete contents of a profile data file.
type Profile struct {
	Hist Histogram
	Arcs []Arc
	// Hz is the clock-tick rate: histogram counts are ticks, and
	// seconds = ticks / Hz. Zero means DefaultHz.
	Hz int64
}

// ClockHz returns the effective tick rate.
func (p *Profile) ClockHz() int64 {
	if p.Hz > 0 {
		return p.Hz
	}
	return DefaultHz
}

// TotalSeconds returns the sampled execution time in seconds.
func (p *Profile) TotalSeconds() float64 {
	return float64(p.Hist.TotalTicks()) / float64(p.ClockHz())
}

// Validate checks internal consistency of the whole profile.
func (p *Profile) Validate() error {
	if err := p.Hist.Validate(); err != nil {
		return err
	}
	for i, a := range p.Arcs {
		if a.Count < 0 {
			return fmt.Errorf("gmon: arc %d has negative count %d", i, a.Count)
		}
		if a.SelfPC < 0 {
			return fmt.Errorf("gmon: arc %d has invalid callee pc %#x", i, a.SelfPC)
		}
		if a.FromPC < 0 && a.FromPC != SpontaneousPC {
			return fmt.Errorf("gmon: arc %d has invalid call-site pc %#x", i, a.FromPC)
		}
	}
	return nil
}

// SortArcs orders arcs by (FromPC, SelfPC) for deterministic output.
func (p *Profile) SortArcs() { sortArcs(p.Arcs) }

func sortArcs(arcs []Arc) {
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].FromPC != arcs[j].FromPC {
			return arcs[i].FromPC < arcs[j].FromPC
		}
		return arcs[i].SelfPC < arcs[j].SelfPC
	})
}

// Merge accumulates other into p: histogram bucket counts and arc counts
// add element-wise. Profiles are mergeable only when their histogram
// geometry and clock rate agree, the same restriction real gprof places
// on summed gmon.out files.
func (p *Profile) Merge(other *Profile) error {
	if err := p.checkMergeable(other); err != nil {
		return err
	}
	for i, c := range other.Hist.Counts {
		p.Hist.Counts[i] += c
	}
	type key struct{ from, self int64 }
	idx := make(map[key]int, len(p.Arcs))
	for i, a := range p.Arcs {
		idx[key{a.FromPC, a.SelfPC}] = i
	}
	for _, a := range other.Arcs {
		if i, ok := idx[key{a.FromPC, a.SelfPC}]; ok {
			p.Arcs[i].Count += a.Count
		} else {
			idx[key{a.FromPC, a.SelfPC}] = len(p.Arcs)
			p.Arcs = append(p.Arcs, a)
		}
	}
	p.SortArcs()
	return nil
}

// Clone returns a deep copy of p.
func (p *Profile) Clone() *Profile {
	q := &Profile{Hist: p.Hist, Hz: p.Hz}
	q.Hist.Counts = append([]uint32(nil), p.Hist.Counts...)
	q.Arcs = append([]Arc(nil), p.Arcs...)
	return q
}
