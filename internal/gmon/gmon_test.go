package gmon

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Profile {
	return &Profile{
		Hist: Histogram{
			Low: 0x1000, High: 0x1010, Step: 1,
			Counts: []uint32{0, 5, 0, 9, 1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 7, 3},
		},
		Arcs: []Arc{
			{FromPC: 0x1002, SelfPC: 0x1008, Count: 4},
			{FromPC: 0x1003, SelfPC: 0x1008, Count: 6},
			{FromPC: SpontaneousPC, SelfPC: 0x100e, Count: 1},
		},
		Hz: 60,
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := Histogram{Low: 100, High: 110, Step: 3}
	if got := h.NumBuckets(); got != 4 {
		t.Errorf("NumBuckets = %d, want 4", got)
	}
	for _, tc := range []struct {
		pc   int64
		want int
	}{{99, -1}, {100, 0}, {102, 0}, {103, 1}, {109, 3}, {110, -1}} {
		if got := h.BucketFor(tc.pc); got != tc.want {
			t.Errorf("BucketFor(%d) = %d, want %d", tc.pc, got, tc.want)
		}
	}
	lo, hi := h.BucketRange(3)
	if lo != 109 || hi != 110 {
		t.Errorf("BucketRange(3) = [%d,%d), want [109,110) (clamped)", lo, hi)
	}
}

func TestValidate(t *testing.T) {
	p := sample()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	bad := []func(*Profile){
		func(p *Profile) { p.Hist.Step = 0 },
		func(p *Profile) { p.Hist.High = p.Hist.Low - 1 },
		func(p *Profile) { p.Hist.Counts = p.Hist.Counts[:3] },
		func(p *Profile) { p.Arcs[0].Count = -1 },
		func(p *Profile) { p.Arcs[0].SelfPC = -5 },
		func(p *Profile) { p.Arcs[0].FromPC = -7 },
	}
	for i, f := range bad {
		q := sample()
		f(q)
		if err := q.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	p := sample()
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatalf("Write: %v", err)
	}
	q, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", q, p)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(counts []uint32, arcsRaw []int64, hz uint16) bool {
		p := &Profile{
			Hist: Histogram{Low: 0x1000, High: 0x1000 + int64(len(counts)), Step: 1, Counts: counts},
			Hz:   int64(hz%1000) + 1,
		}
		if counts == nil {
			p.Hist.Counts = []uint32{}
		}
		p.Arcs = []Arc{}
		for i := 0; i+2 < len(arcsRaw); i += 3 {
			p.Arcs = append(p.Arcs, Arc{
				FromPC: abs64(arcsRaw[i]),
				SelfPC: abs64(arcsRaw[i+1]),
				Count:  abs64(arcsRaw[i+2]),
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			return false
		}
		q, err := Read(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		v = -v
	}
	if v < 0 { // MinInt64
		v = 0
	}
	return v
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name    string
		data    []byte
		wantSub string
	}{
		{"empty", nil, "magic"},
		{"bad magic", []byte("NOPE1234"), "bad magic"},
		{"truncated", []byte("GMON\x01"), "version"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(bytes.NewReader(tc.data))
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestReadBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version byte
	_, err := Read(bytes.NewReader(b))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("err = %v, want version error", err)
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	p := sample()
	p.Hist.Step = 0
	if err := Write(&bytes.Buffer{}, p); err == nil {
		t.Error("Write accepted invalid profile")
	}
}

func TestMerge(t *testing.T) {
	a := sample()
	b := sample()
	b.Arcs = append(b.Arcs, Arc{FromPC: 0x1001, SelfPC: 0x100e, Count: 11})
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Hist.Counts[1] != 10 || a.Hist.Counts[3] != 18 {
		t.Errorf("histogram not summed: %v", a.Hist.Counts)
	}
	// 3 original arcs doubled plus 1 new.
	if len(a.Arcs) != 4 {
		t.Fatalf("arcs = %d, want 4", len(a.Arcs))
	}
	var found bool
	for _, arc := range a.Arcs {
		if arc.FromPC == 0x1002 && arc.SelfPC == 0x1008 {
			if arc.Count != 8 {
				t.Errorf("merged count = %d, want 8", arc.Count)
			}
			found = true
		}
	}
	if !found {
		t.Error("arc 0x1002->0x1008 missing after merge")
	}
}

func TestMergeMismatch(t *testing.T) {
	a := sample()
	b := sample()
	b.Hist.Step = 2
	b.Hist.Counts = b.Hist.Counts[:8]
	if err := a.Merge(b); err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Errorf("err = %v, want geometry mismatch", err)
	}
	c := sample()
	c.Hz = 100
	if err := sample().Merge(c); err == nil || !strings.Contains(err.Error(), "clock rate") {
		t.Error("merge with different Hz accepted")
	}
}

// TestMergeLinearity: merging k copies of p equals scaling p's counts by
// k (property over random profiles) — the paper's multi-run accumulation.
func TestMergeLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(20) + 1
		p := &Profile{Hist: Histogram{Low: 0, High: int64(n), Step: 1, Counts: make([]uint32, n)}}
		for i := range p.Hist.Counts {
			p.Hist.Counts[i] = uint32(rng.Intn(100))
		}
		for i := 0; i < rng.Intn(10); i++ {
			p.Arcs = append(p.Arcs, Arc{
				FromPC: int64(rng.Intn(n)), SelfPC: int64(rng.Intn(n)), Count: int64(rng.Intn(50)),
			})
		}
		p.SortArcs()
		// Deduplicate identical (from,self) pairs the way a collector would.
		dedup := p.Clone()
		dedup.Arcs = nil
		if err := dedup.Merge(p); err != nil {
			t.Fatal(err)
		}
		k := rng.Intn(4) + 2
		total := dedup.Clone()
		for i := 1; i < k; i++ {
			if err := total.Merge(dedup); err != nil {
				t.Fatal(err)
			}
		}
		for i := range total.Hist.Counts {
			if total.Hist.Counts[i] != uint32(k)*dedup.Hist.Counts[i] {
				t.Fatalf("bucket %d: %d != %d*%d", i, total.Hist.Counts[i], k, dedup.Hist.Counts[i])
			}
		}
		if len(total.Arcs) != len(dedup.Arcs) {
			t.Fatalf("arc set changed size: %d vs %d", len(total.Arcs), len(dedup.Arcs))
		}
		for i := range total.Arcs {
			if total.Arcs[i].Count != int64(k)*dedup.Arcs[i].Count {
				t.Fatalf("arc %d count %d != %d*%d", i, total.Arcs[i].Count, k, dedup.Arcs[i].Count)
			}
		}
	}
}

func TestFilesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p1 := sample()
	p2 := sample()
	f1 := filepath.Join(dir, "gmon.1")
	f2 := filepath.Join(dir, "gmon.2")
	if err := WriteFile(f1, p1); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(f2, p2); err != nil {
		t.Fatal(err)
	}
	total, err := ReadFiles([]string{f1, f2})
	if err != nil {
		t.Fatalf("ReadFiles: %v", err)
	}
	if total.Hist.Counts[1] != 10 {
		t.Errorf("merged bucket = %d, want 10", total.Hist.Counts[1])
	}
	if _, err := ReadFiles(nil); err == nil {
		t.Error("ReadFiles(nil) succeeded")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("ReadFile(missing) succeeded")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := sample()
	q := p.Clone()
	q.Hist.Counts[0] = 999
	q.Arcs[0].Count = 999
	if p.Hist.Counts[0] == 999 || p.Arcs[0].Count == 999 {
		t.Error("Clone shares storage with original")
	}
}

func TestTotalSeconds(t *testing.T) {
	p := sample()
	ticks := p.Hist.TotalTicks()
	if ticks != 27 {
		t.Fatalf("TotalTicks = %d, want 27", ticks)
	}
	if got := p.TotalSeconds(); got != 27.0/60.0 {
		t.Errorf("TotalSeconds = %v, want 0.45", got)
	}
	p.Hz = 0
	if got := p.ClockHz(); got != DefaultHz {
		t.Errorf("ClockHz zero-value = %d, want %d", got, DefaultHz)
	}
}
