package gmon

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// goldenV1Hex is the byte-exact version-1 encoding of sample(),
// captured from the original field-by-field encoder. The block codec
// must reproduce it bit for bit: the format is an on-disk contract.
const goldenV1Hex = "474d4f4e010000003c000000000000000010000000000000101000000000000001000000000000001000000003000000000000000500000000000000090000000100000000000000000000000000000002000000000000000000000000000000000000000000000007000000030000000210000000000000081000000000000004000000000000000310000000000000081000000000000006000000000000" +
	"00ffffffffffffffff0e100000000000000100000000000000"

func TestWriteMatchesGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	want, err := hex.DecodeString(goldenV1Hex)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("v1 encoding drifted from the golden bytes:\n got %x\nwant %x", buf.Bytes(), want)
	}
}

// referenceEncodeV1 is an independent hand-rolled version-1 encoder:
// every field placed with PutUint32/PutUint64 into one flat slice.
func referenceEncodeV1(p *Profile) []byte {
	out := make([]byte, 0, 48+4*len(p.Hist.Counts)+24*len(p.Arcs))
	u32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		out = append(out, b[:]...)
	}
	i64 := func(v int64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		out = append(out, b[:]...)
	}
	out = append(out, 'G', 'M', 'O', 'N')
	u32(1)
	i64(p.ClockHz())
	i64(p.Hist.Low)
	i64(p.Hist.High)
	i64(p.Hist.Step)
	u32(uint32(len(p.Hist.Counts)))
	u32(uint32(len(p.Arcs)))
	for _, c := range p.Hist.Counts {
		u32(c)
	}
	for _, a := range p.Arcs {
		i64(a.FromPC)
		i64(a.SelfPC)
		i64(a.Count)
	}
	return out
}

func TestWriteMatchesReferenceEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		p := randomProfile(rng)
		got := encode(t, p)
		if want := referenceEncodeV1(p); !bytes.Equal(got, want) {
			t.Fatalf("profile %d: block codec and reference encoder disagree:\n got %x\nwant %x", i, got, want)
		}
	}
}

// TestV2RoundTripProperty: a version-2 file decodes to the same profile
// as the version-1 encoding of its canonical (sorted) form, and the
// encoding is deterministic.
func TestV2RoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 300; i++ {
		p := randomProfile(rng)
		if i%3 == 0 {
			// Exercise the spontaneous-caller sentinel: FromPC -1
			// encodes as delta-bias zero.
			p.Arcs = append(p.Arcs, Arc{FromPC: SpontaneousPC, SelfPC: 0x105, Count: 9})
		}
		var v2 bytes.Buffer
		if err := WriteV2(&v2, p); err != nil {
			t.Fatal(err)
		}
		canon := p.Clone()
		canon.SortArcs()
		got, err := Read(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatalf("profile %d: decode v2: %v", i, err)
		}
		want, err := Read(bytes.NewReader(encode(t, canon)))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("profile %d: v2 round trip diverged:\n got %+v\nwant %+v", i, got, want)
		}
		var again bytes.Buffer
		if err := WriteV2(&again, p); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again.Bytes(), v2.Bytes()) {
			t.Fatalf("profile %d: v2 encoding not deterministic", i)
		}
		// WriteV2 must not have reordered the caller's arcs.
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReadStatsSections(t *testing.T) {
	p := sample()
	p.SortArcs() // version 2 stores arcs in canonical order
	for _, version := range []int{Version1, Version2} {
		var buf bytes.Buffer
		if err := WriteVersion(&buf, p, version); err != nil {
			t.Fatal(err)
		}
		total := int64(buf.Len())
		got, st, err := ReadStats(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("v%d: ReadStats decoded %+v, want %+v", version, got, p)
		}
		if st.Version != version {
			t.Errorf("v%d: stats report version %d", version, st.Version)
		}
		if st.HeaderBytes != 48 {
			t.Errorf("v%d: header bytes = %d, want 48", version, st.HeaderBytes)
		}
		if sum := st.HeaderBytes + st.HistBytes + st.ArcBytes; sum != st.TotalBytes || sum != total {
			t.Errorf("v%d: sections sum to %d, total %d, file %d", version, sum, st.TotalBytes, total)
		}
	}
}

// TestStreamingWriterReader drives the streaming halves directly:
// record-at-a-time writes, batched reads, no whole-profile buffers.
func TestStreamingWriterReader(t *testing.T) {
	p := sample()
	p.SortArcs()
	for _, version := range []int{Version1, Version2} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, Header{
			Version: version, Hz: p.Hz,
			Low: p.Hist.Low, High: p.Hist.High, Step: p.Hist.Step,
			NumBuckets: len(p.Hist.Counts), NumArcs: len(p.Arcs),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteCounts(p.Hist.Counts); err != nil {
			t.Fatal(err)
		}
		for _, a := range p.Arcs {
			if err := w.WriteArc(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		var whole bytes.Buffer
		if err := WriteVersion(&whole, p, version); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), whole.Bytes()) {
			t.Fatalf("v%d: streaming writer and Write disagree", version)
		}

		d, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if h := d.Header(); h.Version != version || h.NumArcs != len(p.Arcs) {
			t.Fatalf("v%d: header = %+v", version, h)
		}
		counts, err := d.ReadCounts(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(counts, p.Hist.Counts) {
			t.Fatalf("v%d: counts = %v", version, counts)
		}
		var arcs []Arc
		batch := make([]Arc, 2)
		for {
			n, err := d.ReadArcs(batch)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			arcs = append(arcs, batch[:n]...)
		}
		if !reflect.DeepEqual(arcs, p.Arcs) {
			t.Fatalf("v%d: arcs = %v, want %v", version, arcs, p.Arcs)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWriterEnforcesContract(t *testing.T) {
	h := Header{Low: 0x100, High: 0x104, Step: 1, NumBuckets: 4, NumArcs: 1}
	// Arcs before counts.
	w, err := NewWriter(io.Discard, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteArc(Arc{SelfPC: 1}); err == nil {
		t.Error("arc before counts accepted")
	}
	w.Close()
	// Close with arcs owed.
	w, err = NewWriter(io.Discard, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCounts(make([]uint32, 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "never written") {
		t.Errorf("short close error = %v", err)
	}
	// Too many arcs.
	w, err = NewWriter(io.Discard, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCounts(make([]uint32, 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteArc(Arc{SelfPC: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteArc(Arc{SelfPC: 2}); err == nil {
		t.Error("arc past the declared count accepted")
	}
	w.Close()
	// V2 order enforcement.
	w, err = NewWriter(io.Discard, Header{Version: Version2, Low: 0x100, High: 0x104, Step: 1, NumBuckets: 4, NumArcs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteCounts(make([]uint32, 4)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteArc(Arc{FromPC: 9, SelfPC: 9, Count: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteArc(Arc{FromPC: 3, SelfPC: 3, Count: 1}); err == nil {
		t.Error("out-of-order v2 arc accepted")
	}
	w.Close()
}

// TestLyingHeaderBoundedAlloc: a header declaring huge record counts
// over a tiny body must fail with a truncation error without first
// allocating room for the declared records.
func TestLyingHeaderBoundedAlloc(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{Low: 0, High: 1 << 27, Step: 1, NumBuckets: 1 << 27, NumArcs: 1 << 27})
	if err != nil {
		t.Fatal(err)
	}
	w.Close() // header only; both sections missing
	header := buf.Bytes()[:48]

	before := testingAllocs(func() {
		if _, err := Read(bytes.NewReader(header)); err == nil {
			t.Error("truncated 128M-record file decoded successfully")
		}
	})
	// The decoder may allocate its chunk-granular scratch but nothing
	// near the declared 512MiB+ of records.
	if before > 1<<21 {
		t.Errorf("decoding a lying header allocated %d bytes", before)
	}
}

func testingAllocs(f func()) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.TotalAlloc - before.TotalAlloc
}

// TestMergeAllStreamingMatchesSequential: the pooled streaming merge
// over any worker count equals the one-at-a-time fold bit for bit.
func TestMergeAllStreamingMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dir := t.TempDir()
	for trial := 0; trial < 10; trial++ {
		k := rng.Intn(9) + 1
		names := make([]string, k)
		var want *Profile
		for i := range names {
			p := randomProfile(rng)
			names[i] = filepath.Join(dir, "gmon"+string(rune('a'+trial))+string(rune('0'+i)))
			version := Version1
			if rng.Intn(2) == 1 {
				version = Version2
			}
			if err := WriteFileVersion(names[i], p, version); err != nil {
				t.Fatal(err)
			}
			// The sequential reference decodes through the same files,
			// so v2's canonical arc order is shared by both sides.
			q, err := ReadFile(names[i])
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = q
			} else if err := want.Merge(q); err != nil {
				t.Fatal(err)
			}
		}
		for _, jobs := range []int{1, 2, 3, 8} {
			got, err := MergeAllStreaming(context.Background(), names, jobs)
			if err != nil {
				t.Fatalf("trial %d jobs %d: %v", trial, jobs, err)
			}
			if !bytes.Equal(encode(t, got), encode(t, want)) {
				t.Fatalf("trial %d: jobs=%d merge diverged from sequential fold", trial, jobs)
			}
		}
	}
}

func TestMergeAllStreamingNamesBadFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "gmon.good")
	if err := WriteFile(good, sample()); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "gmon.bad")
	if err := os.WriteFile(bad, []byte("not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := MergeAllStreaming(context.Background(), []string{good, bad, good}, 4)
	if err == nil || !strings.Contains(err.Error(), "gmon.bad") {
		t.Errorf("error does not name the bad file: %v", err)
	}
	// Geometry mismatch is attributed to the incompatible input too.
	odd := sample()
	odd.Hist.High += 4
	odd.Hist.Counts = append(odd.Hist.Counts, 0, 0, 0, 0)
	oddName := filepath.Join(dir, "gmon.odd")
	if err := WriteFile(oddName, odd); err != nil {
		t.Fatal(err)
	}
	_, err = MergeAllStreaming(context.Background(), []string{good, good, oddName, good}, 3)
	if err == nil || !strings.Contains(err.Error(), "gmon.odd") {
		t.Errorf("error does not name the incompatible file: %v", err)
	}
}

// TestV2SmallerOnSortedProfiles: delta+varint encoding must not exceed
// the fixed-width layout on realistic (sorted, clustered-PC) profiles.
func TestV2SmallerOnSortedProfiles(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 50; i++ {
		p := randomProfile(rng)
		p.SortArcs()
		v1 := len(encode(t, p))
		var buf bytes.Buffer
		if err := WriteV2(&buf, p); err != nil {
			t.Fatal(err)
		}
		if buf.Len() >= v1 {
			t.Fatalf("profile %d: v2 %d bytes >= v1 %d bytes", i, buf.Len(), v1)
		}
	}
}

// TestReadIntoReusesStorage: decoding a second profile into the same
// destination must not allocate new slices when capacity suffices.
func TestReadIntoReusesStorage(t *testing.T) {
	p := sample()
	enc := encode(t, p)
	var dst Profile
	if err := ReadInto(bytes.NewReader(enc), &dst); err != nil {
		t.Fatal(err)
	}
	c0 := &dst.Hist.Counts[0]
	a0 := &dst.Arcs[0]
	if err := ReadInto(bytes.NewReader(enc), &dst); err != nil {
		t.Fatal(err)
	}
	if &dst.Hist.Counts[0] != c0 || &dst.Arcs[0] != a0 {
		t.Error("ReadInto reallocated storage that could have been reused")
	}
	if !reflect.DeepEqual(&dst, p) {
		t.Errorf("second decode = %+v, want %+v", &dst, p)
	}
}

// sortArcs is exercised through WriteV2's copy-then-sort path; make
// sure unsorted inputs really are left untouched.
func TestWriteV2LeavesInputAlone(t *testing.T) {
	p := sample()
	p.Arcs = []Arc{
		{FromPC: 0x110, SelfPC: 0x111, Count: 1},
		{FromPC: 0x102, SelfPC: 0x103, Count: 2},
	}
	orig := append([]Arc(nil), p.Arcs...)
	if err := WriteV2(io.Discard, p); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Arcs, orig) {
		t.Errorf("WriteV2 mutated the caller's arcs: %v", p.Arcs)
	}
}
