package gmon

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/binio"
)

// Binary layout, version 1 (all fields little-endian, fixed width):
//
//	magic   [4]byte  "GMON"
//	version uint32   1
//	hz      int64
//	low     int64
//	high    int64
//	step    int64
//	nbkt    uint32   number of histogram buckets
//	narc    uint32   number of arcs
//	counts  [nbkt]uint32
//	arcs    [narc]{frompc int64, selfpc int64, count int64}
//
// Version 2 keeps the magic and the fixed 44-byte header but compresses
// the two record sections (the header's version field negotiates which
// decoder runs):
//
//	counts  [nbkt]uvarint
//	arcs    [narc] sorted by (frompc, selfpc):
//	        dfrom uvarint  = (frompc+1) - previous (frompc+1)   [starts at 0]
//	        self  uvarint  = selfpc - previous selfpc if dfrom == 0,
//	                         selfpc otherwise
//	        count uvarint
//
// The frompc+1 bias makes the spontaneous-caller sentinel (-1) encode
// as zero, so every varint is non-negative. Arcs decode to the same
// (FromPC, SelfPC, Count) triples as version 1; only the bytes differ.
//
// Version 3 is version 2 plus whole-stack samples. The fixed header
// grows one field (present only at version 3):
//
//	nstack uint32   number of interned stack records
//
// and a stack section follows the arcs, records sorted by PC sequence
// (lexicographic, shorter prefix first):
//
//	stacks  [nstack]:
//	        dpc0  uvarint  = PCs[0] - previous record's PCs[0]  [starts at 0]
//	        depth uvarint  = len(PCs), 1..MaxStackDepth
//	        dpc   varint   (depth-1 times) zigzag delta from the
//	                       previous PC in this record
//	        count uvarint
//
// The leaf PC delta-encodes across records (sorted, so non-negative
// uvarint); the outward frames delta-encode within the record with
// zigzag varints because a walk moves through unsorted addresses.
// docs/FORMATS.md is the narrative version.
var magic = [4]byte{'G', 'M', 'O', 'N'}

// Format versions. Write emits Version1, the original fixed-width
// layout; WriteV2 emits the compressed Version2 layout; WriteV3 adds
// the stack-samples section. Read accepts all three, negotiated by the
// header's version field.
const (
	Version1 = 1
	Version2 = 2
	Version3 = 3

	// Version is the default format Write emits.
	Version = Version1
)

// maxRecords bounds bucket/arc counts on read so a corrupt header cannot
// drive a huge allocation.
const maxRecords = 1 << 28

// chunkRecords is the record-batch granularity for decoding: result
// slices grow at most this many records past the data actually seen, so
// a header lying about its counts cannot over-allocate.
const chunkRecords = 8192

// Header is everything in a profile data file except the record
// sections: the format version, clock rate, histogram geometry, and the
// record counts. Reader exposes it after parsing; Writer is configured
// by it.
type Header struct {
	Version    int   // Version1..Version3; zero means Version1
	Hz         int64 // clock-tick rate; zero means DefaultHz
	Low        int64 // histogram bounds and step, as in Histogram
	High       int64
	Step       int64
	NumBuckets int
	NumArcs    int
	// NumStacks is the stack-record count; the field exists on disk
	// only at Version3 and must be zero below it.
	NumStacks int
}

// FileStats is the on-disk layout of one decoded profile data file:
// format version and per-section byte sizes (cmd/gmondump prints it, so
// version-1-vs-2 size wins are inspectable).
type FileStats struct {
	Version     int
	HeaderBytes int64 // magic + fixed header
	HistBytes   int64 // histogram counts section
	ArcBytes    int64 // arc records section
	StackBytes  int64 // stack records section (version 3 only)
	TotalBytes  int64
}

// Writer streams a profile data file: header at construction, then the
// histogram counts, then the arc records, without materializing a
// Profile. The declared record counts are a contract — Close fails if
// fewer were written, WriteArc fails past the count.
type Writer struct {
	bw         *binio.Writer
	version    int
	nbkt       int // counts still owed
	narc       int // arcs still owed
	nstack     int // stacks still owed (version 3)
	countsDone bool
	prevFrom1  int64 // version 2 delta state: previous FromPC+1
	prevSelf   int64
	prevPC0    int64   // version 3 delta state: previous record's leaf PC
	prevStack  []int64 // previous record's full sequence, for order checks
}

// NewWriter validates h, writes the file header to w, and returns a
// Writer expecting h.NumBuckets counts and h.NumArcs arcs.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	version := h.Version
	if version == 0 {
		version = Version1
	}
	if version < Version1 || version > Version3 {
		return nil, fmt.Errorf("gmon: unsupported write version %d", version)
	}
	hz := h.Hz
	if hz == 0 {
		hz = DefaultHz
	}
	if hz < 0 {
		return nil, fmt.Errorf("gmon: negative clock rate %d", hz)
	}
	geom := Histogram{Low: h.Low, High: h.High, Step: h.Step}
	if h.Step <= 0 {
		return nil, fmt.Errorf("gmon: histogram step %d (want > 0)", h.Step)
	}
	if h.High < h.Low {
		return nil, fmt.Errorf("gmon: histogram bounds [%#x,%#x) inverted", h.Low, h.High)
	}
	if want := geom.NumBuckets(); h.NumBuckets != want {
		return nil, fmt.Errorf("gmon: header has %d buckets, bounds imply %d", h.NumBuckets, want)
	}
	if h.NumArcs < 0 || h.NumArcs > maxRecords || h.NumBuckets > maxRecords {
		return nil, fmt.Errorf("gmon: implausible record counts (%d buckets, %d arcs)", h.NumBuckets, h.NumArcs)
	}
	if h.NumStacks < 0 || h.NumStacks > maxRecords {
		return nil, fmt.Errorf("gmon: implausible stack count %d", h.NumStacks)
	}
	if version < Version3 && h.NumStacks != 0 {
		return nil, fmt.Errorf("gmon: version %d has no stack section (%d stacks declared)", version, h.NumStacks)
	}
	bw := binio.NewWriter(w)
	bw.Bytes(magic[:])
	bw.U32(uint32(version))
	bw.I64(hz)
	bw.I64(h.Low)
	bw.I64(h.High)
	bw.I64(h.Step)
	bw.U32(uint32(h.NumBuckets))
	bw.U32(uint32(h.NumArcs))
	if version == Version3 {
		bw.U32(uint32(h.NumStacks))
	}
	if err := bw.Err(); err != nil {
		bw.Close()
		return nil, err
	}
	return &Writer{bw: bw, version: version, nbkt: h.NumBuckets, narc: h.NumArcs, nstack: h.NumStacks}, nil
}

// WriteCounts writes the histogram counts section; len(counts) must
// equal the header's bucket count.
func (e *Writer) WriteCounts(counts []uint32) error {
	if e.countsDone {
		return fmt.Errorf("gmon: histogram counts already written")
	}
	if len(counts) != e.nbkt {
		return fmt.Errorf("gmon: %d counts for a %d-bucket header", len(counts), e.nbkt)
	}
	if e.version == Version1 {
		e.bw.U32s(counts)
	} else {
		for _, c := range counts {
			e.bw.Uvarint(uint64(c))
		}
	}
	e.countsDone = true
	return e.bw.Err()
}

// WriteArc appends one arc record. Version 2 requires arcs in
// (FromPC, SelfPC) order (WriteV2 sorts for callers that hold whole
// profiles).
func (e *Writer) WriteArc(a Arc) error {
	if !e.countsDone {
		return fmt.Errorf("gmon: arc written before histogram counts")
	}
	if e.narc == 0 {
		return fmt.Errorf("gmon: more arcs than the header declared")
	}
	if a.Count < 0 || a.SelfPC < 0 || (a.FromPC < 0 && a.FromPC != SpontaneousPC) {
		return fmt.Errorf("gmon: invalid arc %+v", a)
	}
	if e.version == Version1 {
		e.bw.I64(a.FromPC)
		e.bw.I64(a.SelfPC)
		e.bw.I64(a.Count)
	} else {
		from1 := a.FromPC + 1
		if from1 < e.prevFrom1 || (from1 == e.prevFrom1 && a.SelfPC < e.prevSelf) {
			return fmt.Errorf("gmon: version-2 arcs must be written in (FromPC, SelfPC) order")
		}
		d := uint64(from1 - e.prevFrom1)
		e.bw.Uvarint(d)
		if d == 0 {
			e.bw.Uvarint(uint64(a.SelfPC - e.prevSelf))
		} else {
			e.bw.Uvarint(uint64(a.SelfPC))
		}
		e.bw.Uvarint(uint64(a.Count))
		e.prevFrom1, e.prevSelf = from1, a.SelfPC
	}
	e.narc--
	return e.bw.Err()
}

// WriteArcs appends a batch of arc records.
func (e *Writer) WriteArcs(arcs []Arc) error {
	for _, a := range arcs {
		if err := e.WriteArc(a); err != nil {
			return err
		}
	}
	return nil
}

// WriteStack appends one stack record. Stacks follow the arc section
// and must arrive in canonical order: strictly increasing PC sequence
// (an interned table has no duplicate sequences), which is what keeps
// the cross-record leaf-PC delta a non-negative uvarint.
func (e *Writer) WriteStack(s StackSample) error {
	if e.version != Version3 {
		return fmt.Errorf("gmon: stack records require version %d", Version3)
	}
	if !e.countsDone || e.narc != 0 {
		return fmt.Errorf("gmon: stack written before histogram counts and arcs")
	}
	if e.nstack == 0 {
		return fmt.Errorf("gmon: more stacks than the header declared")
	}
	if len(s.PCs) == 0 || len(s.PCs) > MaxStackDepth || s.Count <= 0 {
		return fmt.Errorf("gmon: invalid stack record (%d frames, count %d)", len(s.PCs), s.Count)
	}
	for _, pc := range s.PCs {
		if pc < 0 {
			return fmt.Errorf("gmon: stack record has invalid pc %#x", pc)
		}
	}
	if e.prevStack != nil && compareStacks(s.PCs, e.prevStack) <= 0 {
		return fmt.Errorf("gmon: version-3 stacks must be written in increasing PC-sequence order")
	}
	e.bw.Uvarint(uint64(s.PCs[0] - e.prevPC0))
	e.bw.Uvarint(uint64(len(s.PCs)))
	for i := 1; i < len(s.PCs); i++ {
		e.bw.Varint(s.PCs[i] - s.PCs[i-1])
	}
	e.bw.Uvarint(uint64(s.Count))
	e.prevPC0 = s.PCs[0]
	e.prevStack = append(e.prevStack[:0], s.PCs...)
	e.nstack--
	return e.bw.Err()
}

// WriteStacks appends a batch of stack records.
func (e *Writer) WriteStacks(stacks []StackSample) error {
	for _, s := range stacks {
		if err := e.WriteStack(s); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes the file and releases the Writer's buffer. It fails if
// fewer records were written than the header declared.
func (e *Writer) Close() error {
	if e.bw == nil {
		return nil
	}
	var short error
	if !e.countsDone {
		short = fmt.Errorf("gmon: histogram counts never written")
	} else if e.narc != 0 {
		short = fmt.Errorf("gmon: %d declared arcs never written", e.narc)
	} else if e.nstack != 0 {
		short = fmt.Errorf("gmon: %d declared stacks never written", e.nstack)
	}
	err := e.bw.Close()
	e.bw = nil
	if short != nil {
		return short
	}
	return err
}

// Write encodes p to w in the default (version 1) format.
func Write(w io.Writer, p *Profile) error {
	return WriteVersion(w, p, Version1)
}

// WriteV2 encodes p to w in the compressed version-2 format: varint
// histogram counts, and arcs stored sorted by (FromPC, SelfPC) with
// delta-encoded PCs. If p's arcs are not already sorted a sorted copy
// is encoded; p is never modified.
func WriteV2(w io.Writer, p *Profile) error {
	return WriteVersion(w, p, Version2)
}

// WriteV3 encodes p to w in the version-3 format: the version-2 layout
// plus the interned stack-samples section.
func WriteV3(w io.Writer, p *Profile) error {
	return WriteVersion(w, p, Version3)
}

// WriteVersion encodes p to w in the given format version. Versions 1
// and 2 have no stack section; writing a stacked profile at those
// versions drops the stacks — the documented downgrade, applied
// identically by gprofd when a client asks for an older version.
func WriteVersion(w io.Writer, p *Profile, version int) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("gmon: refusing to write invalid profile: %w", err)
	}
	arcs := p.Arcs
	if version >= Version2 && !sort.SliceIsSorted(arcs, func(i, j int) bool {
		if arcs[i].FromPC != arcs[j].FromPC {
			return arcs[i].FromPC < arcs[j].FromPC
		}
		return arcs[i].SelfPC < arcs[j].SelfPC
	}) {
		arcs = append([]Arc(nil), arcs...)
		sortArcs(arcs)
	}
	var stacks []StackSample
	if version >= Version3 {
		stacks = p.Stacks
		if !sort.SliceIsSorted(stacks, func(i, j int) bool {
			return compareStacks(stacks[i].PCs, stacks[j].PCs) < 0
		}) {
			stacks = append([]StackSample(nil), stacks...)
			SortStacks(stacks)
		}
	}
	e, err := NewWriter(w, Header{
		Version: version, Hz: p.ClockHz(),
		Low: p.Hist.Low, High: p.Hist.High, Step: p.Hist.Step,
		NumBuckets: len(p.Hist.Counts), NumArcs: len(arcs),
		NumStacks: len(stacks),
	})
	if err != nil {
		return err
	}
	if err := e.WriteCounts(p.Hist.Counts); err != nil {
		e.Close()
		return err
	}
	if err := e.WriteArcs(arcs); err != nil {
		e.Close()
		return err
	}
	if err := e.WriteStacks(stacks); err != nil {
		e.Close()
		return err
	}
	return e.Close()
}

// Reader streams a profile data file: NewReader parses the header, then
// ReadCounts must drain the histogram section, then ReadArcs/Next
// iterate the arc records — whole profiles are never materialized
// unless the caller collects them (Read does).
type Reader struct {
	br          *binio.Reader
	src         io.Closer // decompressor interposed by OpenReader, if any
	h           Header
	countsDone  bool
	narc        int // arcs still unread
	nstack      int // stacks still unread (version 3)
	prevFrom1   int64
	prevSelf    int64
	prevPC0     int64
	prevStack   []int64 // previous stack record, for the ordering check
	headerBytes int64
	histBytes   int64
	arcBytes    int64
	stackBytes  int64
	err         error
}

// NewReader parses the file header from r. The Reader buffers its
// input; r may be positioned past the profile's last byte afterwards.
func NewReader(r io.Reader) (*Reader, error) {
	return newReaderBR(binio.NewReader(r))
}

// newReaderBR parses the file header from an already-constructed block
// reader — streaming (NewReader) or fixed over in-memory bytes
// (OpenBytes), which is how memory-mapped files decode with zero
// copies.
func newReaderBR(br *binio.Reader) (*Reader, error) {
	fail := func(err error) (*Reader, error) {
		br.Close()
		return nil, err
	}
	var m [4]byte
	br.Full(m[:])
	if err := br.Err(); err != nil {
		return fail(fmt.Errorf("gmon: reading magic: %w", err))
	}
	if m != magic {
		return fail(fmt.Errorf("gmon: bad magic %q (not a profile data file)", m[:]))
	}
	version := br.U32()
	if err := br.Err(); err != nil {
		return fail(fmt.Errorf("gmon: reading version: %w", err))
	}
	if version < Version1 || version > Version3 {
		return fail(fmt.Errorf("gmon: unsupported version %d (want %d..%d)", version, Version1, Version3))
	}
	h := Header{Version: int(version)}
	h.Hz = br.I64()
	h.Low = br.I64()
	h.High = br.I64()
	h.Step = br.I64()
	nbkt := br.U32()
	narc := br.U32()
	var nstack uint32
	if version == Version3 {
		nstack = br.U32()
	}
	if err := br.Err(); err != nil {
		return fail(fmt.Errorf("gmon: reading header: %w", eofIsTruncation(err)))
	}
	if nbkt > maxRecords || narc > maxRecords {
		return fail(fmt.Errorf("gmon: implausible record counts (%d buckets, %d arcs)", nbkt, narc))
	}
	if nstack > maxRecords {
		return fail(fmt.Errorf("gmon: implausible stack count %d", nstack))
	}
	if h.Step <= 0 {
		return fail(fmt.Errorf("gmon: histogram step %d (want > 0)", h.Step))
	}
	if h.High < h.Low {
		return fail(fmt.Errorf("gmon: histogram bounds [%#x,%#x) inverted", h.Low, h.High))
	}
	geom := Histogram{Low: h.Low, High: h.High, Step: h.Step}
	if want := geom.NumBuckets(); int(nbkt) != want {
		return fail(fmt.Errorf("gmon: histogram has %d buckets, bounds imply %d", nbkt, want))
	}
	h.NumBuckets, h.NumArcs, h.NumStacks = int(nbkt), int(narc), int(nstack)
	return &Reader{br: br, h: h, narc: int(narc), nstack: int(nstack), headerBytes: br.Offset()}, nil
}

// Header returns the parsed file header.
func (d *Reader) Header() Header { return d.h }

// ReadCounts decodes the histogram counts section, appending to
// dst[:0]'s storage when its capacity suffices (pass nil to allocate).
// It must be called once, before the first ReadArcs.
func (d *Reader) ReadCounts(dst []uint32) ([]uint32, error) {
	if d.err != nil {
		return nil, d.err
	}
	if d.countsDone {
		return nil, d.fail(fmt.Errorf("gmon: histogram counts already read"))
	}
	n := d.h.NumBuckets
	dst = dst[:0]
	for len(dst) < n {
		c := n - len(dst)
		if c > chunkRecords {
			c = chunkRecords
		}
		start := len(dst)
		dst = growU32(dst, c)
		if d.h.Version == Version1 {
			d.br.U32s(dst[start:])
		} else {
			for i := start; i < len(dst); i++ {
				v := d.br.Uvarint()
				if v > math.MaxUint32 {
					return nil, d.fail(fmt.Errorf("gmon: histogram count %d overflows uint32", v))
				}
				dst[i] = uint32(v)
			}
		}
		if err := d.br.Err(); err != nil {
			return nil, d.fail(fmt.Errorf("gmon: reading histogram: %w", eofIsTruncation(err)))
		}
	}
	if dst == nil {
		dst = []uint32{}
	}
	d.countsDone = true
	d.histBytes = d.br.Offset() - d.headerBytes
	return dst, nil
}

// ReadArcs decodes up to len(dst) arc records into dst and reports how
// many were decoded; once every declared record has been returned it
// reports 0, io.EOF. A short or corrupt arc section is an error, never
// a partial batch.
func (d *Reader) ReadArcs(dst []Arc) (int, error) {
	if d.err != nil {
		return 0, d.err
	}
	if !d.countsDone {
		return 0, d.fail(fmt.Errorf("gmon: arcs read before histogram counts"))
	}
	if d.narc == 0 {
		return 0, io.EOF
	}
	n := len(dst)
	if n > d.narc {
		n = d.narc
	}
	if d.h.Version == Version1 {
		// Arcs are fixed 24-byte records: decode straight out of the
		// block buffer, a batch per fill, instead of field by field.
		const arcSize = 24
		for i := 0; i < n; {
			batch := n - i
			if batch > binio.BufSize/arcSize {
				batch = binio.BufSize / arcSize
			}
			s := d.br.View(batch * arcSize)
			if s == nil {
				break
			}
			for j := range dst[i : i+batch] {
				rec := s[j*arcSize:]
				dst[i+j].FromPC = int64(binary.LittleEndian.Uint64(rec))
				dst[i+j].SelfPC = int64(binary.LittleEndian.Uint64(rec[8:]))
				dst[i+j].Count = int64(binary.LittleEndian.Uint64(rec[16:]))
			}
			i += batch
		}
	} else {
		for i := range dst[:n] {
			if !d.decodeArcV2(&dst[i]) {
				break
			}
		}
	}
	if err := d.br.Err(); err != nil {
		read := d.h.NumArcs - d.narc
		return 0, d.fail(fmt.Errorf("gmon: reading arc %d: %w", read, eofIsTruncation(err)))
	}
	if d.err != nil {
		return 0, d.err
	}
	d.narc -= n
	if d.narc == 0 {
		d.arcBytes = d.br.Offset() - d.headerBytes - d.histBytes
	}
	return n, nil
}

// decodeArcV2 decodes one delta-encoded record; false means d.err or
// the underlying reader's error is set.
func (d *Reader) decodeArcV2(a *Arc) bool {
	dFrom := d.br.Uvarint()
	if dFrom > math.MaxInt64 || int64(dFrom) > math.MaxInt64-d.prevFrom1 {
		d.fail(fmt.Errorf("gmon: arc call-site pc overflows"))
		return false
	}
	from1 := d.prevFrom1 + int64(dFrom)
	var self int64
	if dFrom == 0 {
		dSelf := d.br.Uvarint()
		if dSelf > math.MaxInt64 || int64(dSelf) > math.MaxInt64-d.prevSelf {
			d.fail(fmt.Errorf("gmon: arc callee pc overflows"))
			return false
		}
		self = d.prevSelf + int64(dSelf)
	} else {
		v := d.br.Uvarint()
		if v > math.MaxInt64 {
			d.fail(fmt.Errorf("gmon: arc callee pc overflows"))
			return false
		}
		self = int64(v)
	}
	cnt := d.br.Uvarint()
	if cnt > math.MaxInt64 {
		d.fail(fmt.Errorf("gmon: arc count overflows"))
		return false
	}
	if d.br.Err() != nil {
		return false
	}
	a.FromPC = from1 - 1
	a.SelfPC = self
	a.Count = int64(cnt)
	d.prevFrom1, d.prevSelf = from1, self
	return true
}

// ReadStacks decodes up to len(dst) stack records into dst and reports
// how many were decoded; once every declared record has been returned
// it reports 0, io.EOF. The arc section must be fully drained first.
// Each record's PCs slice is freshly allocated — decoded stacks are
// merged by aliasing, so they must outlive any reader scratch.
func (d *Reader) ReadStacks(dst []StackSample) (int, error) {
	if d.err != nil {
		return 0, d.err
	}
	if !d.countsDone || d.narc != 0 {
		return 0, d.fail(fmt.Errorf("gmon: stacks read before histogram counts and arcs"))
	}
	if d.nstack == 0 {
		return 0, io.EOF
	}
	n := len(dst)
	if n > d.nstack {
		n = d.nstack
	}
	for i := range dst[:n] {
		if !d.decodeStackV3(&dst[i]) {
			break
		}
	}
	if err := d.br.Err(); err != nil {
		read := d.h.NumStacks - d.nstack
		return 0, d.fail(fmt.Errorf("gmon: reading stack %d: %w", read, eofIsTruncation(err)))
	}
	if d.err != nil {
		return 0, d.err
	}
	d.nstack -= n
	if d.nstack == 0 {
		d.stackBytes = d.br.Offset() - d.headerBytes - d.histBytes - d.arcBytes
	}
	return n, nil
}

// decodeStackV3 decodes one delta-encoded stack record; false means
// d.err or the underlying reader's error is set. The per-record
// allocation is bounded by the depth check, so a lying header cannot
// drive it past MaxStackDepth words.
func (d *Reader) decodeStackV3(s *StackSample) bool {
	dpc0 := d.br.Uvarint()
	if dpc0 > math.MaxInt64 || int64(dpc0) > math.MaxInt64-d.prevPC0 {
		d.fail(fmt.Errorf("gmon: stack leaf pc overflows"))
		return false
	}
	pc0 := d.prevPC0 + int64(dpc0)
	depth := d.br.Uvarint()
	if depth == 0 || depth > MaxStackDepth {
		if d.br.Err() == nil {
			d.fail(fmt.Errorf("gmon: stack depth %d (want 1..%d)", depth, MaxStackDepth))
		}
		return false
	}
	pcs := make([]int64, depth)
	pcs[0] = pc0
	for i := 1; i < int(depth); i++ {
		delta := d.br.Varint()
		prev := pcs[i-1]
		if (delta > 0 && prev > math.MaxInt64-delta) || (delta < 0 && prev < math.MinInt64-delta) {
			d.fail(fmt.Errorf("gmon: stack frame pc overflows"))
			return false
		}
		pc := prev + delta
		if pc < 0 {
			d.fail(fmt.Errorf("gmon: stack frame has invalid pc %#x", pc))
			return false
		}
		pcs[i] = pc
	}
	cnt := d.br.Uvarint()
	if cnt == 0 || cnt > math.MaxInt64 {
		if d.br.Err() == nil {
			d.fail(fmt.Errorf("gmon: stack count %d out of range", cnt))
		}
		return false
	}
	if d.br.Err() != nil {
		return false
	}
	// The format defines records in strictly increasing canonical order
	// (the writer enforces it); accepting violations would let corrupt
	// files smuggle duplicate paths past Merge's fold and break
	// re-encoding, so the reader rejects them too.
	if d.prevStack != nil && compareStacks(pcs, d.prevStack) <= 0 {
		d.fail(fmt.Errorf("gmon: stack records out of order"))
		return false
	}
	s.PCs = pcs
	s.Count = int64(cnt)
	d.prevPC0 = pc0
	d.prevStack = pcs
	return true
}

// Next returns the next arc record, reporting io.EOF after the last.
func (d *Reader) Next() (Arc, error) {
	var a [1]Arc
	n, err := d.ReadArcs(a[:])
	if n == 1 {
		return a[0], nil
	}
	return Arc{}, err
}

// Stats reports the file's layout; section sizes are complete once the
// corresponding section has been fully read.
func (d *Reader) Stats() FileStats {
	return FileStats{
		Version:     d.h.Version,
		HeaderBytes: d.headerBytes,
		HistBytes:   d.histBytes,
		ArcBytes:    d.arcBytes,
		StackBytes:  d.stackBytes,
		TotalBytes:  d.br.Offset(),
	}
}

// Close releases the Reader's buffer and the decompressor OpenReader
// may have interposed. The Reader must not be used afterwards.
func (d *Reader) Close() error {
	if d.br == nil {
		return d.err
	}
	err := d.br.Close()
	d.br = nil
	if d.src != nil {
		if cerr := d.src.Close(); err == nil {
			err = cerr
		}
		d.src = nil
	}
	if d.err != nil {
		return d.err
	}
	return err
}

// fail records err as the Reader's sticky error.
func (d *Reader) fail(err error) error {
	if d.err == nil {
		d.err = err
	}
	return d.err
}

// eofIsTruncation maps a clean EOF to io.ErrUnexpectedEOF: inside a
// declared section, running out of bytes is truncation even when it
// happens at a value boundary.
func eofIsTruncation(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Read decodes a profile from r (either format version, gzip or
// identity transport — it delegates to the OpenReader sniff).
func Read(r io.Reader) (*Profile, error) {
	return Open(r)
}

// ReadInto decodes a profile from r into p, reusing p's histogram and
// arc storage when its capacity suffices — the streaming merge's
// per-worker scratch path decodes whole files without allocating. Like
// Read it accepts gzip or identity transport.
func ReadInto(r io.Reader, p *Profile) error {
	return OpenInto(r, p)
}

// ReadStats decodes a profile and reports its layout. For a gzip
// stream the section sizes describe the decompressed payload.
func ReadStats(r io.Reader) (*Profile, FileStats, error) {
	d, err := OpenReader(r)
	if err != nil {
		return nil, FileStats{}, err
	}
	defer d.Close()
	p := &Profile{}
	st, err := decodeInto(d, p)
	if err != nil {
		return nil, st, err
	}
	return p, st, nil
}

func decodeInto(d *Reader, p *Profile) (FileStats, error) {
	h := d.Header()
	p.Hz = h.Hz
	p.Hist.Low, p.Hist.High, p.Hist.Step = h.Low, h.High, h.Step
	counts, err := d.ReadCounts(p.Hist.Counts)
	if err != nil {
		return d.Stats(), err
	}
	p.Hist.Counts = counts
	arcs := p.Arcs[:0]
	for len(arcs) < h.NumArcs {
		c := h.NumArcs - len(arcs)
		if c > chunkRecords {
			c = chunkRecords
		}
		start := len(arcs)
		arcs = growArcs(arcs, c)
		n, err := d.ReadArcs(arcs[start:])
		if err != nil {
			return d.Stats(), err
		}
		arcs = arcs[:start+n]
	}
	if arcs == nil {
		arcs = []Arc{}
	}
	p.Arcs = arcs
	// Reset, don't keep: when p is a reused scratch profile, a
	// stack-less file must not inherit the previous file's stacks.
	stacks := p.Stacks[:0]
	for len(stacks) < h.NumStacks {
		c := h.NumStacks - len(stacks)
		if c > chunkRecords {
			c = chunkRecords
		}
		start := len(stacks)
		stacks = growStacks(stacks, c)
		n, err := d.ReadStacks(stacks[start:])
		if err != nil {
			return d.Stats(), err
		}
		stacks = stacks[:start+n]
	}
	p.Stacks = stacks
	return d.Stats(), p.Validate()
}

// growU32 extends s by c entries, reusing capacity when it can.
func growU32(s []uint32, c int) []uint32 {
	need := len(s) + c
	if cap(s) >= need {
		return s[:need]
	}
	ns := make([]uint32, need)
	copy(ns, s)
	return ns
}

// growArcs extends s by c entries, reusing capacity when it can.
func growArcs(s []Arc, c int) []Arc {
	need := len(s) + c
	if cap(s) >= need {
		return s[:need]
	}
	ns := make([]Arc, need)
	copy(ns, s)
	return ns
}

// growStacks extends s by c entries, reusing capacity when it can.
func growStacks(s []StackSample, c int) []StackSample {
	need := len(s) + c
	if cap(s) >= need {
		return s[:need]
	}
	ns := make([]StackSample, need)
	copy(ns, s)
	return ns
}

// WriteFile writes p to the named file in the default format. The block
// codec writes the *os.File directly, so there is exactly one buffer
// layer between records and the disk.
func WriteFile(name string, p *Profile) error {
	return WriteFileVersion(name, p, Version1)
}

// WriteFileVersion writes p to the named file in the given format
// version (Version1..Version3).
func WriteFileVersion(name string, p *Profile, version int) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := WriteVersion(f, p, version); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readMapped decodes the named file into p through a read-only binio
// mapping: raw version-1/2 files decode zero-copy straight out of the
// page cache. mapped reports false when the file could not be mapped at
// all (a pipe, a permission error) — the caller falls back to the
// streaming open so the error, if real, surfaces with the same shape as
// before.
func readMapped(name string, p *Profile) (st FileStats, mapped bool, err error) {
	m, err := binio.Map(name)
	if err != nil {
		return FileStats{}, false, nil
	}
	defer m.Close()
	d, err := OpenBytes(m.Data)
	if err != nil {
		return FileStats{}, true, err
	}
	defer d.Close()
	st, err = decodeInto(d, p)
	return st, true, err
}

// ReadFile reads a profile from the named file, decoding through a
// memory mapping when the platform allows it.
func ReadFile(name string) (*Profile, error) {
	p := &Profile{}
	if _, mapped, err := readMapped(name, p); mapped {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		return p, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err = Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return p, nil
}

// ReadFileStats reads a profile from the named file and reports its
// on-disk layout.
func ReadFileStats(name string) (*Profile, FileStats, error) {
	p := &Profile{}
	if st, mapped, err := readMapped(name, p); mapped {
		if err != nil {
			return nil, st, fmt.Errorf("%s: %w", name, err)
		}
		return p, st, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, FileStats{}, err
	}
	defer f.Close()
	p, st, err := ReadStats(f)
	if err != nil {
		return nil, st, fmt.Errorf("%s: %w", name, err)
	}
	return p, st, nil
}

// ReadFiles reads and merges several profile data files, the paper's
// "profile of many executions". See ReadFilesCtx for the concurrent
// variant.
func ReadFiles(names []string) (*Profile, error) {
	return ReadFilesCtx(context.Background(), names, 1)
}
