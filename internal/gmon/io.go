package gmon

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary layout (all fields little-endian):
//
//	magic   [4]byte  "GMON"
//	version uint32   currently 1
//	hz      int64
//	low     int64
//	high    int64
//	step    int64
//	nbkt    uint32   number of histogram buckets
//	narc    uint32   number of arcs
//	counts  [nbkt]uint32
//	arcs    [narc]{frompc int64, selfpc int64, count int64}
var magic = [4]byte{'G', 'M', 'O', 'N'}

// Version is the current file format version.
const Version = 1

// maxRecords bounds bucket/arc counts on read so a corrupt header cannot
// drive a huge allocation.
const maxRecords = 1 << 28

// Write encodes p to w.
func Write(w io.Writer, p *Profile) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("gmon: refusing to write invalid profile: %w", err)
	}
	bw := bufio.NewWriter(w)
	put := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	hdr := []any{
		uint32(Version), p.ClockHz(),
		p.Hist.Low, p.Hist.High, p.Hist.Step,
		uint32(len(p.Hist.Counts)), uint32(len(p.Arcs)),
	}
	for _, v := range hdr {
		if err := put(v); err != nil {
			return err
		}
	}
	if err := put(p.Hist.Counts); err != nil {
		return err
	}
	for _, a := range p.Arcs {
		if err := put(a.FromPC); err != nil {
			return err
		}
		if err := put(a.SelfPC); err != nil {
			return err
		}
		if err := put(a.Count); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a profile from r.
func Read(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("gmon: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("gmon: bad magic %q (not a profile data file)", m[:])
	}
	var version uint32
	if err := get(&version); err != nil {
		return nil, fmt.Errorf("gmon: reading version: %w", err)
	}
	if version != Version {
		return nil, fmt.Errorf("gmon: unsupported version %d (want %d)", version, Version)
	}
	p := &Profile{}
	var nbkt, narc uint32
	for _, v := range []any{&p.Hz, &p.Hist.Low, &p.Hist.High, &p.Hist.Step, &nbkt, &narc} {
		if err := get(v); err != nil {
			return nil, fmt.Errorf("gmon: reading header: %w", err)
		}
	}
	if nbkt > maxRecords || narc > maxRecords {
		return nil, fmt.Errorf("gmon: implausible record counts (%d buckets, %d arcs)", nbkt, narc)
	}
	p.Hist.Counts = make([]uint32, nbkt)
	if err := get(p.Hist.Counts); err != nil {
		return nil, fmt.Errorf("gmon: reading histogram: %w", err)
	}
	p.Arcs = make([]Arc, narc)
	for i := range p.Arcs {
		for _, v := range []any{&p.Arcs[i].FromPC, &p.Arcs[i].SelfPC, &p.Arcs[i].Count} {
			if err := get(v); err != nil {
				return nil, fmt.Errorf("gmon: reading arc %d: %w", i, err)
			}
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteFile writes p to the named file.
func WriteFile(name string, p *Profile) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := Write(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a profile from the named file.
func ReadFile(name string) (*Profile, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return p, nil
}

// ReadFiles reads and merges several profile data files, the paper's
// "profile of many executions". See ReadFilesCtx for the concurrent
// variant.
func ReadFiles(names []string) (*Profile, error) {
	return ReadFilesCtx(context.Background(), names, 1)
}
