package lang

import (
	"fmt"
	"strconv"
)

type lexer struct {
	file string
	src  string
	off  int
	pos  Pos
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, pos: Pos{Line: 1, Col: 1}}
}

func (l *lexer) errf(pos Pos, format string, args ...any) error {
	return &Error{File: l.file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) nextByte() byte {
	c := l.peekByte()
	if c == 0 {
		return 0
	}
	l.off++
	if c == '\n' {
		l.pos.Line++
		l.pos.Col = 1
	} else {
		l.pos.Col++
	}
	return c
}

// skipSpace consumes whitespace and // and /* */ comments.
func (l *lexer) skipSpace() error {
	for {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.nextByte()
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '/':
			for l.peekByte() != 0 && l.peekByte() != '\n' {
				l.nextByte()
			}
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			start := l.pos
			l.nextByte()
			l.nextByte()
			for {
				if l.peekByte() == 0 {
					return l.errf(start, "unterminated block comment")
				}
				if l.peekByte() == '*' && l.off+1 < len(l.src) && l.src[l.off+1] == '/' {
					l.nextByte()
					l.nextByte()
					break
				}
				l.nextByte()
			}
		default:
			return nil
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// stringLit scans a double-quoted literal with \n, \t, \\, and \"
// escapes. The decoded bytes land in Token.Text.
func (l *lexer) stringLit(pos Pos) (Token, error) {
	l.nextByte() // opening quote
	var out []byte
	for {
		c := l.peekByte()
		switch c {
		case 0, '\n':
			return Token{}, l.errf(pos, "unterminated string literal")
		case '"':
			l.nextByte()
			return Token{Kind: STRING, Text: string(out), Pos: pos}, nil
		case '\\':
			l.nextByte()
			switch e := l.nextByte(); e {
			case 'n':
				out = append(out, '\n')
			case 't':
				out = append(out, '\t')
			case '\\':
				out = append(out, '\\')
			case '"':
				out = append(out, '"')
			default:
				return Token{}, l.errf(pos, "unknown escape \\%c in string", e)
			}
		default:
			l.nextByte()
			out = append(out, c)
		}
	}
}

// next returns the next token.
func (l *lexer) next() (Token, error) {
	if err := l.skipSpace(); err != nil {
		return Token{}, err
	}
	pos := l.pos
	c := l.peekByte()
	if c == 0 {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	switch {
	case isIdentStart(c):
		start := l.off
		for isIdentPart(l.peekByte()) {
			l.nextByte()
		}
		text := l.src[start:l.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	case isDigit(c):
		start := l.off
		for isIdentPart(l.peekByte()) { // grabs hex digits and stray letters
			l.nextByte()
		}
		text := l.src[start:l.off]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return Token{}, l.errf(pos, "bad number %q", text)
		}
		return Token{Kind: NUMBER, Text: text, Num: v, Pos: pos}, nil
	}
	if c == '"' {
		return l.stringLit(pos)
	}
	l.nextByte()
	two := func(second byte, both, single Kind) Token {
		if l.peekByte() == second {
			l.nextByte()
			return Token{Kind: both, Pos: pos}
		}
		return Token{Kind: single, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: LBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: RBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case ';':
		return Token{Kind: Semicolon, Pos: pos}, nil
	case '+':
		return Token{Kind: Plus, Pos: pos}, nil
	case '-':
		return Token{Kind: Minus, Pos: pos}, nil
	case '*':
		return Token{Kind: Star, Pos: pos}, nil
	case '/':
		return Token{Kind: Slash, Pos: pos}, nil
	case '%':
		return Token{Kind: PercentOp, Pos: pos}, nil
	case '^':
		return Token{Kind: Caret, Pos: pos}, nil
	case '&':
		return two('&', AndAnd, Amp), nil
	case '|':
		return two('|', OrOr, Pipe), nil
	case '<':
		if l.peekByte() == '<' {
			l.nextByte()
			return Token{Kind: Shl, Pos: pos}, nil
		}
		return two('=', Le, Lt), nil
	case '>':
		if l.peekByte() == '>' {
			l.nextByte()
			return Token{Kind: Shr, Pos: pos}, nil
		}
		return two('=', Ge, Gt), nil
	case '=':
		return two('=', EqEq, Assign), nil
	case '!':
		return two('=', NotEq, Not), nil
	}
	return Token{}, l.errf(pos, "unexpected character %q", string(c))
}
