package lang

import (
	"fmt"
	"math"
)

// checker resolves names, verifies arities and lvalues, assigns local
// slots, and rejects programs the code generator cannot translate.
type checker struct {
	file    string
	globals map[string]*GlobalDecl
	externs map[string]*ExternDecl
	funcs   map[string]*FuncDecl

	// per-function state
	fn        *FuncDecl
	scopes    []map[string]localInfo // innermost last
	params    map[string]int
	nextSlot  int
	loopDepth int
}

// Check resolves and validates a parsed program in place.
func Check(file string, prog *Program) error {
	c := &checker{
		file:    file,
		globals: make(map[string]*GlobalDecl),
		externs: make(map[string]*ExternDecl),
		funcs:   make(map[string]*FuncDecl),
	}
	for _, g := range prog.Globals {
		if err := c.declareTop(g.Name, g.Pos); err != nil {
			return err
		}
		c.globals[g.Name] = g
	}
	for _, e := range prog.Externs {
		if err := c.declareTop(e.Name, e.Pos); err != nil {
			return err
		}
		c.externs[e.Name] = e
	}
	for _, f := range prog.Funcs {
		if err := c.declareTop(f.Name, f.Pos); err != nil {
			return err
		}
		c.funcs[f.Name] = f
	}
	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) errf(pos Pos, format string, args ...any) error {
	return &Error{File: c.file, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) declareTop(name string, pos Pos) error {
	if _, ok := builtins[name]; ok {
		return c.errf(pos, "%s is a builtin and cannot be redeclared", name)
	}
	if _, ok := c.globals[name]; ok {
		return c.errf(pos, "duplicate top-level name %s", name)
	}
	if _, ok := c.externs[name]; ok {
		return c.errf(pos, "duplicate top-level name %s", name)
	}
	if _, ok := c.funcs[name]; ok {
		return c.errf(pos, "duplicate top-level name %s", name)
	}
	return nil
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.params = make(map[string]int, len(f.Params))
	for i, p := range f.Params {
		if _, dup := c.params[p]; dup {
			return c.errf(f.Pos, "duplicate parameter %s in %s", p, f.Name)
		}
		c.params[p] = i
	}
	c.scopes = nil
	c.nextSlot = 0
	c.loopDepth = 0
	if err := c.checkBlock(f.Body); err != nil {
		return err
	}
	f.NumLocals = c.nextSlot
	return nil
}

// localInfo describes a declared local: its first frame slot and, for
// arrays, its element count (0 for scalars).
type localInfo struct {
	slot int
	size int64
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]localInfo)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declareLocal(name string, size int64, pos Pos) (int, error) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return 0, c.errf(pos, "duplicate variable %s in this scope", name)
	}
	slot := c.nextSlot
	c.nextSlot++
	if size > 1 {
		c.nextSlot += int(size) - 1 // arrays occupy consecutive slots
	}
	top[name] = localInfo{slot: slot, size: size}
	return slot, nil
}

func (c *checker) lookupLocal(name string) (localInfo, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if info, ok := c.scopes[i][name]; ok {
			return info, true
		}
	}
	return localInfo{}, false
}

func (c *checker) checkBlock(b *Block) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *Block:
		return c.checkBlock(s)
	case *VarStmt:
		if s.Init != nil {
			if s.Size > 0 {
				return c.errf(s.Pos, "array %s cannot have an initializer", s.Name)
			}
			if err := c.checkExpr(s.Init); err != nil {
				return err
			}
		}
		// Declared after the initializer resolves, so `var x = x;`
		// refers to an outer x (or fails).
		slot, err := c.declareLocal(s.Name, s.Size, s.Pos)
		if err != nil {
			return err
		}
		s.Slot = int64(slot)
		return nil
	case *AssignStmt:
		if err := c.checkExpr(s.Value); err != nil {
			return err
		}
		if err := c.checkExpr(s.Target); err != nil {
			return err
		}
		switch s.Target.Ref {
		case RefLocal, RefLocalArray, RefParam, RefGlobal, RefArray:
			return nil
		case RefFunc:
			return c.errf(s.Pos, "cannot assign to function %s", s.Target.Name)
		}
		return c.errf(s.Pos, "cannot assign to %s", s.Target.Name)
	case *IfStmt:
		if err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		if err := c.checkBlock(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkBlock(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		c.loopDepth++
		err := c.checkBlock(s.Body)
		c.loopDepth--
		return err
	case *ForStmt:
		// The init clause's declaration is scoped to the whole loop.
		c.pushScope()
		defer c.popScope()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.checkExpr(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.checkStmt(s.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		err := c.checkBlock(s.Body)
		c.loopDepth--
		return err
	case *ReturnStmt:
		if s.Value != nil {
			return c.checkExpr(s.Value)
		}
		return nil
	case *BreakStmt:
		if c.loopDepth == 0 {
			return c.errf(s.Pos, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loopDepth == 0 {
			return c.errf(s.Pos, "continue outside loop")
		}
		return nil
	case *ExprStmt:
		return c.checkExpr(s.X)
	}
	return fmt.Errorf("lang: unknown statement %T", s)
}

func (c *checker) checkExpr(e Expr) error {
	switch e := e.(type) {
	case *NumLit:
		if e.Value > math.MaxInt32 || e.Value < math.MinInt32 {
			return c.errf(e.Pos_, "literal %d does not fit in 32 bits", e.Value)
		}
		return nil
	case *StrLit:
		return c.errf(e.Pos_, "string literals may only appear as the argument of puts")
	case *VarRef:
		return c.resolveRef(e)
	case *UnaryExpr:
		return c.checkExpr(e.X)
	case *BinaryExpr:
		if err := c.checkExpr(e.L); err != nil {
			return err
		}
		return c.checkExpr(e.R)
	case *CallExpr:
		return c.checkCall(e)
	}
	return fmt.Errorf("lang: unknown expression %T", e)
}

// resolveRef binds a VarRef: innermost local, then parameter, then
// global, then function-as-value.
func (c *checker) resolveRef(r *VarRef) error {
	if r.Index != nil {
		if err := c.checkExpr(r.Index); err != nil {
			return err
		}
	}
	if info, ok := c.lookupLocal(r.Name); ok {
		if info.size > 0 {
			if r.Index == nil {
				return c.errf(r.Pos_, "array %s must be indexed", r.Name)
			}
			r.Ref, r.Off = RefLocalArray, int64(info.slot)
			return nil
		}
		if r.Index != nil {
			return c.errf(r.Pos_, "%s is a scalar and cannot be indexed", r.Name)
		}
		r.Ref, r.Off = RefLocal, int64(info.slot)
		return nil
	}
	if i, ok := c.params[r.Name]; ok {
		if r.Index != nil {
			return c.errf(r.Pos_, "parameter %s cannot be indexed", r.Name)
		}
		r.Ref, r.Off = RefParam, int64(i)
		return nil
	}
	if g, ok := c.globals[r.Name]; ok {
		if g.Size > 0 {
			if r.Index == nil {
				return c.errf(r.Pos_, "array %s must be indexed", r.Name)
			}
			r.Ref = RefArray
			return nil
		}
		if r.Index != nil {
			return c.errf(r.Pos_, "%s is a scalar and cannot be indexed", r.Name)
		}
		r.Ref = RefGlobal
		return nil
	}
	if _, ok := c.funcs[r.Name]; ok {
		if r.Index != nil {
			return c.errf(r.Pos_, "function %s cannot be indexed", r.Name)
		}
		r.Ref = RefFunc
		return nil
	}
	if e, ok := c.externs[r.Name]; ok {
		switch {
		case e.IsArray:
			if r.Index == nil {
				return c.errf(r.Pos_, "array %s must be indexed", r.Name)
			}
			r.Ref = RefArray
		case e.IsVar:
			if r.Index != nil {
				return c.errf(r.Pos_, "%s is a scalar and cannot be indexed", r.Name)
			}
			r.Ref = RefGlobal
		default:
			if r.Index != nil {
				return c.errf(r.Pos_, "function %s cannot be indexed", r.Name)
			}
			r.Ref = RefFunc
		}
		return nil
	}
	return c.errf(r.Pos_, "undefined name %s", r.Name)
}

func (c *checker) checkCall(call *CallExpr) error {
	// puts takes exactly one string literal, handled before general
	// argument checking (string literals are illegal elsewhere).
	if call.Callee == "puts" {
		if len(call.Args) != 1 {
			return c.errf(call.Pos_, "puts takes 1 argument, got %d", len(call.Args))
		}
		if _, ok := call.Args[0].(*StrLit); !ok {
			return c.errf(call.Pos_, "puts takes a string literal")
		}
		call.Target, call.Builtin = CallBuiltin, BuiltinPuts
		return nil
	}
	for _, a := range call.Args {
		if err := c.checkExpr(a); err != nil {
			return err
		}
	}
	if b, ok := builtins[call.Callee]; ok {
		if len(call.Args) != b.arity {
			return c.errf(call.Pos_, "%s takes %d argument(s), got %d",
				call.Callee, b.arity, len(call.Args))
		}
		call.Target, call.Builtin = CallBuiltin, b.b
		return nil
	}
	// A local or parameter shadowing a function name dispatches
	// indirectly through the variable.
	if info, ok := c.lookupLocal(call.Callee); ok {
		if info.size > 0 {
			return c.errf(call.Pos_, "array %s is not callable", call.Callee)
		}
		return c.indirect(call)
	}
	if _, ok := c.params[call.Callee]; ok {
		return c.indirect(call)
	}
	if f, ok := c.funcs[call.Callee]; ok {
		if len(call.Args) != len(f.Params) {
			return c.errf(call.Pos_, "%s takes %d argument(s), got %d",
				call.Callee, len(f.Params), len(call.Args))
		}
		call.Target = CallDirect
		return nil
	}
	if g, ok := c.globals[call.Callee]; ok {
		if g.Size > 0 {
			return c.errf(call.Pos_, "array %s is not callable", call.Callee)
		}
		return c.indirect(call)
	}
	if e, ok := c.externs[call.Callee]; ok {
		if e.IsArray {
			return c.errf(call.Pos_, "array %s is not callable", call.Callee)
		}
		if e.IsVar {
			return c.indirect(call)
		}
		// External function: arity is checked at link time by nothing —
		// the classic separate-compilation tradeoff.
		call.Target = CallDirect
		return nil
	}
	return c.errf(call.Pos_, "undefined function %s", call.Callee)
}

func (c *checker) indirect(call *CallExpr) error {
	call.Target = CallIndirect
	call.Var = &VarRef{Name: call.Callee, Pos_: call.Pos_}
	return c.resolveRef(call.Var)
}
