package lang

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/object"
	"repro/internal/vm"
)

// runProgram compiles, links, and executes src, returning the exit code
// and stdout.
func runProgram(t *testing.T, src string, opt Options) (int64, string) {
	t.Helper()
	obj, err := Compile("test.tl", src, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	im, err := object.Link([]*object.Object{obj}, object.LinkConfig{})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	var out bytes.Buffer
	res, err := vm.New(im, vm.Config{Stdout: &out, MaxCycles: 1 << 28}).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res.ExitCode, out.String()
}

func TestReturnLiteral(t *testing.T) {
	code, _ := runProgram(t, `func main() { return 42; }`, Options{})
	if code != 42 {
		t.Errorf("exit = %d, want 42", code)
	}
}

func TestImplicitReturnZero(t *testing.T) {
	code, _ := runProgram(t, `func main() { var x = 5; }`, Options{})
	if code != 0 {
		t.Errorf("exit = %d, want 0", code)
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"1 + 2*3", 7},
		{"(1+2)*3", 9},
		{"10 - 3 - 2", 5}, // left associativity
		{"20 / 3", 6},
		{"20 % 3", 2},
		{"-5 + 2", -3},
		{"- -7", 7},
		{"6 & 3", 2},
		{"6 | 3", 7},
		{"6 ^ 3", 5},
		{"1 << 4", 16},
		{"64 >> 3", 8},
		{"2 + 3 << 1", 2 + 6}, // shift binds tighter than +? No: C has + tighter.
	}
	// NOTE: our precedence places << below +, like C. 2 + 3 << 1 = (2+3)<<1 = 10.
	cases[len(cases)-1].want = 10
	for _, tc := range cases {
		code, _ := runProgram(t, "func main() { return "+tc.expr+"; }", Options{})
		if code != tc.want {
			t.Errorf("%s = %d, want %d", tc.expr, code, tc.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"3 < 5", 1}, {"5 < 3", 0}, {"3 <= 3", 1},
		{"5 > 3", 1}, {"3 > 5", 0}, {"3 >= 4", 0},
		{"4 == 4", 1}, {"4 != 4", 0}, {"4 != 5", 1},
		{"!0", 1}, {"!7", 0},
		{"1 && 2", 1}, {"1 && 0", 0}, {"0 && 1", 0},
		{"0 || 0", 0}, {"0 || 3", 1}, {"2 || 0", 1},
	}
	for _, tc := range cases {
		code, _ := runProgram(t, "func main() { return "+tc.expr+"; }", Options{})
		if code != tc.want {
			t.Errorf("%s = %d, want %d", tc.expr, code, tc.want)
		}
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	// The right operand must not run when the left decides.
	src := `
var hits;
func bump() { hits = hits + 1; return 1; }
func main() {
	var a = 0 && bump();
	var b = 1 || bump();
	var c = 1 && bump();
	var d = 0 || bump();
	return hits*10 + a + b + c + d;
}`
	code, _ := runProgram(t, src, Options{})
	// bump ran twice; a=0,b=1,c=1,d=1.
	if code != 23 {
		t.Errorf("exit = %d, want 23", code)
	}
}

func TestLocalsAndScopes(t *testing.T) {
	src := `
func main() {
	var x = 1;
	{
		var x = 2;
		if (x != 2) { return 100; }
	}
	if (x != 1) { return 200; }
	var y;
	if (y != 0) { return 300; }
	return 7;
}`
	code, _ := runProgram(t, src, Options{})
	if code != 7 {
		t.Errorf("exit = %d, want 7", code)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
func main() {
	var sum = 0;
	var i = 1;
	while (i <= 10) {
		sum = sum + i;
		i = i + 1;
	}
	return sum;
}`
	code, _ := runProgram(t, src, Options{})
	if code != 55 {
		t.Errorf("exit = %d, want 55", code)
	}
}

func TestBreakContinue(t *testing.T) {
	src := `
func main() {
	var sum = 0;
	var i = 0;
	while (1) {
		i = i + 1;
		if (i > 10) { break; }
		if (i % 2 == 0) { continue; }
		sum = sum + i;  // 1+3+5+7+9
	}
	return sum;
}`
	code, _ := runProgram(t, src, Options{})
	if code != 25 {
		t.Errorf("exit = %d, want 25", code)
	}
}

func TestNestedLoopsBreak(t *testing.T) {
	src := `
func main() {
	var total = 0;
	var i = 0;
	while (i < 3) {
		var j = 0;
		while (1) {
			if (j >= 4) { break; }
			total = total + 1;
			j = j + 1;
		}
		i = i + 1;
	}
	return total;
}`
	code, _ := runProgram(t, src, Options{})
	if code != 12 {
		t.Errorf("exit = %d, want 12", code)
	}
}

func TestIfElseChain(t *testing.T) {
	src := `
func classify(n) {
	if (n < 0) { return 1; }
	else if (n == 0) { return 2; }
	else { return 3; }
}
func main() {
	return classify(-5)*100 + classify(0)*10 + classify(9);
}`
	code, _ := runProgram(t, src, Options{})
	if code != 123 {
		t.Errorf("exit = %d, want 123", code)
	}
}

func TestFunctionCallsAndParams(t *testing.T) {
	src := `
func add3(a, b, c) { return a*100 + b*10 + c; }
func main() { return add3(1, 2, 3); }`
	code, _ := runProgram(t, src, Options{})
	if code != 123 {
		t.Errorf("exit = %d, want 123 (argument order)", code)
	}
}

func TestParamAssignment(t *testing.T) {
	src := `
func f(a) { a = a + 1; return a; }
func main() { return f(4); }`
	code, _ := runProgram(t, src, Options{})
	if code != 5 {
		t.Errorf("exit = %d, want 5", code)
	}
}

func TestRecursionFib(t *testing.T) {
	src := `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n-1) + fib(n-2);
}
func main() { return fib(15); }`
	code, _ := runProgram(t, src, Options{})
	if code != 610 {
		t.Errorf("fib(15) = %d, want 610", code)
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `
func isEven(n) { if (n == 0) { return 1; } return isOdd(n-1); }
func isOdd(n) { if (n == 0) { return 0; } return isEven(n-1); }
func main() { return isEven(10)*10 + isOdd(7); }`
	code, _ := runProgram(t, src, Options{})
	if code != 11 {
		t.Errorf("exit = %d, want 11", code)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
var counter;
var table[10];
func main() {
	counter = 5;
	var i = 0;
	while (i < 10) {
		table[i] = i * i;
		i = i + 1;
	}
	return counter + table[7];
}`
	code, _ := runProgram(t, src, Options{})
	if code != 54 {
		t.Errorf("exit = %d, want 54", code)
	}
}

func TestFunctionValues(t *testing.T) {
	// Functional parameters: the case the paper's static call graph
	// cannot see and the arc hash collides on.
	src := `
func double(x) { return 2*x; }
func square(x) { return x*x; }
func apply(f, x) { return f(x); }
func main() {
	return apply(double, 10) + apply(square, 4);
}`
	code, _ := runProgram(t, src, Options{})
	if code != 36 {
		t.Errorf("exit = %d, want 36", code)
	}
}

func TestFunctionValueInGlobal(t *testing.T) {
	src := `
var handler;
func inc(x) { return x + 1; }
func main() {
	handler = inc;
	return handler(41);
}`
	code, _ := runProgram(t, src, Options{})
	if code != 42 {
		t.Errorf("exit = %d, want 42", code)
	}
}

func TestPrintAndPutc(t *testing.T) {
	src := `
func main() {
	print(123);
	putc(104); putc(105); putc(10);
	return 0;
}`
	_, out := runProgram(t, src, Options{})
	if out != "123\nhi\n" {
		t.Errorf("output = %q", out)
	}
}

func TestCyclesAndRandBuiltins(t *testing.T) {
	src := `
func main() {
	var c0 = cycles();
	var r = rand();
	var c1 = cycles();
	if (c1 <= c0) { return 1; }
	if (r < 0) { return 2; }
	return 0;
}`
	code, _ := runProgram(t, src, Options{})
	if code != 0 {
		t.Errorf("exit = %d, want 0", code)
	}
}

func TestMonControlBuiltinsCompile(t *testing.T) {
	src := `
func main() {
	monstart();
	monstop();
	monreset();
	return 0;
}`
	code, _ := runProgram(t, src, Options{})
	if code != 0 {
		t.Errorf("exit = %d", code)
	}
}

func TestProfilePrologue(t *testing.T) {
	src := `func f() { return 1; } func main() { return f(); }`
	plain, err := Compile("t.tl", src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Compile("t.tl", src, Options{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	// Each of the 2 functions gains exactly one word (the MCOUNT).
	if len(prof.Text) != len(plain.Text)+2 {
		t.Errorf("profiled text %d words, plain %d; want +2", len(prof.Text), len(plain.Text))
	}
	// Execution result is unchanged.
	code, _ := runProgram(t, src, Options{Profile: true})
	if code != 1 {
		t.Errorf("profiled exit = %d, want 1", code)
	}
}

func TestCommentsAndFormats(t *testing.T) {
	src := `
// line comment
/* block
   comment */
func main() {
	var x = 0x10; // hex
	return x; /* trailing */
}`
	code, _ := runProgram(t, src, Options{})
	if code != 16 {
		t.Errorf("exit = %d, want 16", code)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"undefined var", `func main() { return x; }`, "undefined name x"},
		{"undefined func", `func main() { return f(); }`, "undefined function f"},
		{"arity", `func f(a) { return a; } func main() { return f(); }`, "takes 1 argument"},
		{"builtin arity", `func main() { print(); return 0; }`, "takes 1 argument"},
		{"redeclare builtin", `func print(x) { return x; }`, "builtin"},
		{"dup function", `func f() { return 0; } func f() { return 1; } func main() { return 0; }`, "duplicate top-level"},
		{"dup global", `var g; var g; func main() { return 0; }`, "duplicate top-level"},
		{"dup local", `func main() { var x; var x; return 0; }`, "duplicate variable"},
		{"dup param", `func f(a, a) { return a; } func main() { return 0; }`, "duplicate parameter"},
		{"break outside", `func main() { break; }`, "break outside"},
		{"continue outside", `func main() { continue; }`, "continue outside"},
		{"assign to func", `func f() { return 0; } func main() { f = 1; return 0; }`, "cannot assign"},
		{"index scalar", `var g; func main() { return g[0]; }`, "cannot be indexed"},
		{"array unindexed", `var a[4]; func main() { return a; }`, "must be indexed"},
		{"array call", `var a[4]; func main() { return a(); }`, "not callable"},
		{"assign to call", `func f() { return 0; } func main() { f() = 3; return 0; }`, "left side"},
		{"bad token", "func main() { return @; }", "unexpected character"},
		{"unterminated comment", "/* func main() {}", "unterminated block comment"},
		{"bad top level", "return 1;", "expected 'var', 'extern', or 'func'"},
		{"eof in block", "func main() { return 0;", "unexpected end of file"},
		{"huge literal", "func main() { return 99999999999; }", "32 bits"},
		{"zero array", "var a[0]; func main() { return 0; }", "size 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile("t.tl", tc.src, Options{})
			if err == nil {
				t.Fatalf("compiled, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestErrorsHavePositions(t *testing.T) {
	_, err := Compile("prog.tl", "func main() {\n  return x;\n}", Options{})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.HasPrefix(err.Error(), "prog.tl:2:") {
		t.Errorf("error lacks position: %q", err)
	}
}

func TestMultiObjectLink(t *testing.T) {
	// Separate compilation: two source files linked together, as the
	// paper's "separately compiled programs".
	lib := `
var shared;
func store(v) { shared = v; return 0; }
func fetch() { return shared; }`
	mainSrc := `
extern store;
extern fetch;
func main() {
	store(99);
	return fetch();
}`
	libObj, err := Compile("lib.tl", lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mainObj, err := Compile("main.tl", mainSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	im, err := object.Link([]*object.Object{mainObj, libObj}, object.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vm.New(im, vm.Config{}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 99 {
		t.Errorf("exit = %d, want 99", res.ExitCode)
	}
}

func TestDeepExpression(t *testing.T) {
	// Stress the expression stack discipline.
	src := `func main() { return ((((1+2)*(3+4))-((5-6)*(7+8)))*2) % 97; }`
	// (3*7 - (-1*15))*2 = (21+15)*2 = 72
	code, _ := runProgram(t, src, Options{})
	if code != 72 {
		t.Errorf("exit = %d, want 72", code)
	}
}

func TestCallInExpression(t *testing.T) {
	src := `
func two() { return 2; }
func three() { return 3; }
func main() { return two() * three() + two(); }`
	code, _ := runProgram(t, src, Options{})
	if code != 8 {
		t.Errorf("exit = %d, want 8", code)
	}
}

func TestArgumentEvaluationOrder(t *testing.T) {
	src := `
var log;
func note(v) { log = log*10 + v; return v; }
func take3(a, b, c) { return log; }
func main() { return take3(note(1), note(2), note(3)); }`
	code, _ := runProgram(t, src, Options{})
	if code != 123 {
		t.Errorf("args evaluated in order %d, want 123 (left to right)", code)
	}
}

func TestGlobalInitializers(t *testing.T) {
	src := `
var a = 42;
var b = -7;
var c;
func main() { return a + b + c; }`
	code, _ := runProgram(t, src, Options{})
	if code != 35 {
		t.Errorf("exit = %d, want 35", code)
	}
}

func TestGlobalInitializerErrors(t *testing.T) {
	for _, src := range []string{
		"var g = x;\nfunc main() { return 0; }",
		"var g = 1 + 2;\nfunc main() { return 0; }",
	} {
		if _, err := Compile("t.tl", src, Options{}); err == nil {
			t.Errorf("non-constant initializer accepted: %q", src)
		}
	}
}
