package lang

import (
	"testing"

	"repro/internal/object"
	"repro/internal/vm"
)

// compileBoth compiles src with and without inlining and runs both,
// asserting identical results; returns the two exit codes and text
// sizes.
func compileBoth(t *testing.T, src string) (plainLen, inlinedLen int) {
	t.Helper()
	plainObj, err := Compile("t.tl", src, Options{})
	if err != nil {
		t.Fatalf("plain compile: %v", err)
	}
	inObj, err := Compile("t.tl", src, Options{Inline: true})
	if err != nil {
		t.Fatalf("inlined compile: %v", err)
	}
	codePlain, _ := runProgram(t, src, Options{})
	codeIn, _ := runProgram(t, src, Options{Inline: true})
	if codePlain != codeIn {
		t.Fatalf("inlining changed the answer: %d vs %d", codePlain, codeIn)
	}
	return len(plainObj.Text), len(inObj.Text)
}

func TestInlineTrivialWrapper(t *testing.T) {
	src := `
func twice(x) { return x + x; }
func main() {
	var s = 0;
	var i = 0;
	while (i < 10) { s = s + twice(i); i = i + 1; }
	return s;
}`
	prog, err := Parse("t.tl", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check("t.tl", prog); err != nil {
		t.Fatal(err)
	}
	if n := Inline(prog); n != 1 {
		t.Errorf("inlined %d sites, want 1", n)
	}
	// x occurs twice but the argument is a local: duplicable.
	code, _ := runProgram(t, src, Options{Inline: true})
	if code != 90 {
		t.Errorf("exit = %d, want 90", code)
	}
}

func TestInlineRefusesImpureDuplication(t *testing.T) {
	// bump() has a side effect; square uses its parameter twice, so the
	// call must NOT be inlined.
	src := `
var n;
func bump() { n = n + 1; return n; }
func square(x) { return x * x; }
func main() { return square(bump()) * 100 + n; }`
	prog, err := Parse("t.tl", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check("t.tl", prog); err != nil {
		t.Fatal(err)
	}
	Inline(prog)
	code, _ := runProgram(t, src, Options{Inline: true})
	// bump once: n=1, square(1)=1 -> 101.
	if code != 101 {
		t.Errorf("exit = %d, want 101 (side effect ran twice?)", code)
	}
}

func TestInlineSingleUseImpureArgOK(t *testing.T) {
	// Parameter used once: an impure argument is safe to substitute.
	src := `
var n;
func bump() { n = n + 1; return n; }
func neg(x) { return -x; }
func main() { return neg(bump()) + n*10; }`
	code, _ := runProgram(t, src, Options{Inline: true})
	if code != 9 { // -1 + 10
		t.Errorf("exit = %d, want 9", code)
	}
}

func TestInlineChainCollapses(t *testing.T) {
	src := `
func a(x) { return x + 1; }
func b(x) { return a(x) + 1; }
func c(x) { return b(x) + 1; }
func main() { return c(0); }`
	prog, err := Parse("t.tl", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check("t.tl", prog); err != nil {
		t.Fatal(err)
	}
	if n := Inline(prog); n < 3 {
		t.Errorf("inlined %d sites, want >= 3 (chain)", n)
	}
	code, _ := runProgram(t, src, Options{Inline: true})
	if code != 3 {
		t.Errorf("exit = %d, want 3", code)
	}
}

func TestInlineSkipsRecursion(t *testing.T) {
	src := `
func f(n) { return g(n); }
func g(n) { return f(n); }
func main() { return 5; }`
	prog, err := Parse("t.tl", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check("t.tl", prog); err != nil {
		t.Fatal(err)
	}
	// Mutual recursion through single-return bodies: bounded by
	// maxInlineDepth, never infinite.
	Inline(prog)
	code, _ := runProgram(t, src, Options{Inline: true})
	if code != 5 {
		t.Errorf("exit = %d", code)
	}
}

func TestInlineSkipsAddressTaken(t *testing.T) {
	src := `
func inc(x) { return x + 1; }
func apply(f, x) { return f(x); }
func main() { return apply(inc, 4) + inc(10); }`
	prog, err := Parse("t.tl", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check("t.tl", prog); err != nil {
		t.Fatal(err)
	}
	if n := Inline(prog); n != 0 {
		t.Errorf("inlined %d sites; address-taken inc must not inline", n)
	}
	code, _ := runProgram(t, src, Options{Inline: true})
	if code != 16 {
		t.Errorf("exit = %d, want 16", code)
	}
}

func TestInlineSkipsMultiStatementBodies(t *testing.T) {
	src := `
func big(x) { var y = x + 1; return y * 2; }
func main() { return big(3); }`
	prog, err := Parse("t.tl", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check("t.tl", prog); err != nil {
		t.Fatal(err)
	}
	if n := Inline(prog); n != 0 {
		t.Errorf("inlined %d sites; multi-statement body must not inline", n)
	}
}

func TestInlineRemovesCallSite(t *testing.T) {
	// After expansion the call instruction is gone: no relocation
	// targets format any more (and the profile will no longer see it —
	// §6's "loss of routines").
	src := `
func format(d) { return (d * 100) / 7 + d % 13; }
func main() {
	var out = 0;
	var i = 0;
	while (i < 100) {
		out = (out + format(i)) & 65535;
		i = i + 1;
	}
	return out;
}`
	compileBoth(t, src) // behaviour preserved
	inObj, err := Compile("t.tl", src, Options{Inline: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range inObj.Relocs {
		if r.Name == "format" {
			t.Errorf("relocation to format survives inlining: %+v", r)
		}
	}
}

func TestInlineSavesCycles(t *testing.T) {
	src := `
func format(d) { return (d * 100) / 7 + d % 13; }
func output(d) { return format(d) & 255; }
func main() {
	var out = 0;
	var i = 0;
	while (i < 200) {
		out = (out + output(i)) & 65535;
		i = i + 1;
	}
	return out;
}`
	run := func(opt Options) int64 {
		t.Helper()
		obj, err := Compile("t.tl", src, opt)
		if err != nil {
			t.Fatal(err)
		}
		im, err := object.Link([]*object.Object{obj}, object.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := vm.New(im, vm.Config{MaxCycles: 1 << 28}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	plain := run(Options{})
	inlined := run(Options{Inline: true})
	if inlined >= plain {
		t.Errorf("inlining did not save cycles: %d vs %d", inlined, plain)
	}
}
