package lang

// Program is a parsed source file.
type Program struct {
	Globals []*GlobalDecl
	Externs []*ExternDecl
	Funcs   []*FuncDecl
}

// ExternDecl declares a name defined in another compilation unit, for
// separate compilation:
//
//	extern f;        // external function (arity unchecked)
//	extern var g;    // external global scalar
//	extern var a[];  // external global array
//
// Externs emit no storage; the linker resolves them by name.
type ExternDecl struct {
	Name    string
	IsVar   bool
	IsArray bool
	Pos     Pos
}

// GlobalDecl declares a global scalar (Size 0) or array (Size > 0).
// Scalars may carry a constant initializer.
type GlobalDecl struct {
	Name    string
	Size    int64 // 0 for scalars, element count for arrays
	Init    int64
	HasInit bool
	Pos     Pos
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *Block
	Pos    Pos

	// NumLocals is the number of local slots the function needs,
	// assigned by the checker and consumed by the code generator.
	NumLocals int
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// VarStmt declares a local scalar (Size 0, optionally initialized) or a
// local array of Size elements (zeroed, no initializer).
type VarStmt struct {
	Name string
	Size int64 // 0 for scalars
	Init Expr  // nil means zero; must be nil for arrays
	Pos  Pos

	// Slot is the local's first frame slot, assigned by the checker;
	// arrays occupy Size consecutive slots.
	Slot int64
}

// AssignStmt assigns to a local, global, or array element.
type AssignStmt struct {
	Target *VarRef // identifier or indexed global
	Value  Expr
	Pos    Pos
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *Block
	Pos  Pos
}

// ForStmt is a C-style for loop. Init and Post may be nil (and Init may
// declare a variable scoped to the loop); Cond nil means "forever".
// `continue` inside the body transfers to Post, not to Cond.
type ForStmt struct {
	Init Stmt // *VarStmt, *AssignStmt, or *ExprStmt
	Cond Expr
	Post Stmt // *AssignStmt or *ExprStmt
	Body *Block
	Pos  Pos
}

// ReturnStmt returns a value (nil means 0).
type ReturnStmt struct {
	Value Expr
	Pos   Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for its effect (usually a call).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*Block) stmt()        {}
func (*VarStmt) stmt()      {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ExprStmt) stmt()     {}

// Expr is an expression node.
type Expr interface {
	expr()
	pos() Pos
}

// NumLit is an integer literal.
type NumLit struct {
	Value int64
	Pos_  Pos
}

// StrLit is a string literal; it may appear only as the argument of the
// puts builtin (the language has no string values).
type StrLit struct {
	Value string
	Pos_  Pos
}

// VarRef names a variable, optionally indexed (arrays). The resolver
// fills in Kind.
type VarRef struct {
	Name  string
	Index Expr // nil for scalars
	Pos_  Pos

	// resolution results (set by the checker)
	Ref RefKind
	Off int64 // local slot / param index, by kind
}

// RefKind says what a resolved VarRef denotes.
type RefKind int

const (
	RefUnresolved RefKind = iota
	RefLocal              // local scalar; Off is the slot
	RefLocalArray         // local array; Off is the first slot (must be indexed)
	RefParam              // parameter; Off is the parameter index
	RefGlobal             // global scalar
	RefArray              // global array (must be indexed)
	RefFunc               // function used as a value
)

// CallExpr calls a function (by name or through a variable holding a
// function value) or a builtin.
type CallExpr struct {
	Callee string
	Args   []Expr
	Pos_   Pos

	// resolution results
	Target  CallTarget
	Builtin Builtin // valid when Target == CallBuiltin
	// VarRef used when Target == CallIndirect: the variable holding the
	// function value.
	Var *VarRef
}

// CallTarget says how a call dispatches.
type CallTarget int

const (
	CallUnresolved CallTarget = iota
	CallDirect                // CALL to a known function
	CallIndirect              // CALLR through a variable
	CallBuiltin               // inline system service
)

// Builtin identifies the built-in functions.
type Builtin int

const (
	BuiltinNone Builtin = iota
	BuiltinPrint
	BuiltinPuts
	BuiltinPutc
	BuiltinCycles
	BuiltinRand
	BuiltinMonStart
	BuiltinMonStop
	BuiltinMonReset
)

var builtins = map[string]struct {
	b     Builtin
	arity int
}{
	"print":    {BuiltinPrint, 1},
	"puts":     {BuiltinPuts, 1},
	"putc":     {BuiltinPutc, 1},
	"cycles":   {BuiltinCycles, 0},
	"rand":     {BuiltinRand, 0},
	"monstart": {BuiltinMonStart, 0},
	"monstop":  {BuiltinMonStop, 0},
	"monreset": {BuiltinMonReset, 0},
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Op   Kind // Minus or Not
	X    Expr
	Pos_ Pos
}

// BinaryExpr is a binary operation, including short-circuit && and ||.
type BinaryExpr struct {
	Op   Kind
	L, R Expr
	Pos_ Pos
}

func (*NumLit) expr()     {}
func (*StrLit) expr()     {}
func (*VarRef) expr()     {}
func (*CallExpr) expr()   {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}

func (e *NumLit) pos() Pos     { return e.Pos_ }
func (e *StrLit) pos() Pos     { return e.Pos_ }
func (e *VarRef) pos() Pos     { return e.Pos_ }
func (e *CallExpr) pos() Pos   { return e.Pos_ }
func (e *UnaryExpr) pos() Pos  { return e.Pos_ }
func (e *BinaryExpr) pos() Pos { return e.Pos_ }
