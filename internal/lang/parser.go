package lang

import "fmt"

type parser struct {
	lex *lexer
	tok Token
}

// Parse parses a source file into an AST.
func Parse(file, src string) (*Program, error) {
	p := &parser{lex: newLexer(file, src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.Kind != EOF {
		switch p.tok.Kind {
		case KwVar:
			g, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, g)
		case KwExtern:
			e, err := p.externDecl()
			if err != nil {
				return nil, err
			}
			prog.Externs = append(prog.Externs, e)
		case KwFunc:
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			return nil, p.errf("expected 'var', 'extern', or 'func' at top level, got %s", p.tok.Kind)
		}
	}
	return prog, nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{File: p.lex.file, Pos: p.tok.Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) expect(k Kind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, p.errf("expected %s, got %s", k, p.tok.Kind)
	}
	tok := p.tok
	if err := p.advance(); err != nil {
		return Token{}, err
	}
	return tok, nil
}

func (p *parser) accept(k Kind) (bool, error) {
	if p.tok.Kind != k {
		return false, nil
	}
	return true, p.advance()
}

// globalDecl = "var" IDENT ( "[" NUMBER "]" | [ "=" [-] NUMBER ] ) ";"
//
// Scalars may carry a constant initializer; arrays start zeroed.
func (p *parser) globalDecl() (*GlobalDecl, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil { // consume 'var'
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	g := &GlobalDecl{Name: name.Text, Pos: pos}
	if ok, err := p.accept(LBracket); err != nil {
		return nil, err
	} else if ok {
		size, err := p.expect(NUMBER)
		if err != nil {
			return nil, err
		}
		if size.Num <= 0 {
			return nil, p.errf("array %s has size %d", g.Name, size.Num)
		}
		g.Size = size.Num
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		_, err = p.expect(Semicolon)
		return g, err
	}
	if ok, err := p.accept(Assign); err != nil {
		return nil, err
	} else if ok {
		neg := false
		if ok, err := p.accept(Minus); err != nil {
			return nil, err
		} else if ok {
			neg = true
		}
		v, err := p.expect(NUMBER)
		if err != nil {
			return nil, p.errf("global initializers must be integer constants")
		}
		g.Init = v.Num
		if neg {
			g.Init = -g.Init
		}
		g.HasInit = true
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return g, nil
}

// externDecl = "extern" [ "var" ] IDENT [ "[" "]" ] ";"
func (p *parser) externDecl() (*ExternDecl, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil { // consume 'extern'
		return nil, err
	}
	e := &ExternDecl{Pos: pos}
	if ok, err := p.accept(KwVar); err != nil {
		return nil, err
	} else if ok {
		e.IsVar = true
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	e.Name = name.Text
	if ok, err := p.accept(LBracket); err != nil {
		return nil, err
	} else if ok {
		if !e.IsVar {
			return nil, p.errf("extern function %s cannot be an array", e.Name)
		}
		e.IsArray = true
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
	}
	_, err = p.expect(Semicolon)
	return e, err
}

// funcDecl = "func" IDENT "(" [params] ")" block
func (p *parser) funcDecl() (*FuncDecl, error) {
	pos := p.tok.Pos
	if err := p.advance(); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name.Text, Pos: pos}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if p.tok.Kind != RParen {
		for {
			param, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, param.Text)
			if ok, err := p.accept(Comma); err != nil {
				return nil, err
			} else if !ok {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) block() (*Block, error) {
	pos := p.tok.Pos
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	b := &Block{Pos: pos}
	for p.tok.Kind != RBrace {
		if p.tok.Kind == EOF {
			return nil, p.errf("unexpected end of file inside block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, p.advance() // consume '}'
}

func (p *parser) statement() (Stmt, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case LBrace:
		return p.block()
	case KwVar:
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		s := &VarStmt{Name: name.Text, Pos: pos}
		if ok, err := p.accept(LBracket); err != nil {
			return nil, err
		} else if ok {
			size, err := p.expect(NUMBER)
			if err != nil {
				return nil, err
			}
			if size.Num <= 0 {
				return nil, p.errf("array %s has size %d", s.Name, size.Num)
			}
			s.Size = size.Num
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			_, err = p.expect(Semicolon)
			return s, err
		}
		if ok, err := p.accept(Assign); err != nil {
			return nil, err
		} else if ok {
			if s.Init, err = p.expression(); err != nil {
				return nil, err
			}
		}
		_, err = p.expect(Semicolon)
		return s, err
	case KwIf:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		s := &IfStmt{Cond: cond, Then: then, Pos: pos}
		if ok, err := p.accept(KwElse); err != nil {
			return nil, err
		} else if ok {
			if p.tok.Kind == KwIf {
				inner, err := p.statement() // else if chains
				if err != nil {
					return nil, err
				}
				s.Else = &Block{Stmts: []Stmt{inner}, Pos: pos}
			} else if s.Else, err = p.block(); err != nil {
				return nil, err
			}
		}
		return s, nil
	case KwWhile:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: pos}, nil
	case KwFor:
		return p.forStmt(pos)
	case KwReturn:
		if err := p.advance(); err != nil {
			return nil, err
		}
		s := &ReturnStmt{Pos: pos}
		if p.tok.Kind != Semicolon {
			var err error
			if s.Value, err = p.expression(); err != nil {
				return nil, err
			}
		}
		_, err := p.expect(Semicolon)
		return s, err
	case KwBreak:
		if err := p.advance(); err != nil {
			return nil, err
		}
		_, err := p.expect(Semicolon)
		return &BreakStmt{Pos: pos}, err
	case KwContinue:
		if err := p.advance(); err != nil {
			return nil, err
		}
		_, err := p.expect(Semicolon)
		return &ContinueStmt{Pos: pos}, err
	}
	// Assignment or expression statement. Parse an expression; if it is
	// a plain variable reference followed by '=', it is an assignment.
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == Assign {
		ref, ok := x.(*VarRef)
		if !ok {
			return nil, p.errf("left side of assignment must be a variable or array element")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semicolon); err != nil {
			return nil, err
		}
		return &AssignStmt{Target: ref, Value: val, Pos: pos}, nil
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	return &ExprStmt{X: x, Pos: pos}, nil
}

// forStmt = "for" "(" [simple] ";" [expr] ";" [simple] ")" block
func (p *parser) forStmt(pos Pos) (Stmt, error) {
	if err := p.advance(); err != nil { // consume 'for'
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Pos: pos}
	var err error
	if p.tok.Kind != Semicolon {
		if s.Init, err = p.simpleStmt(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.tok.Kind != Semicolon {
		if s.Cond, err = p.expression(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(Semicolon); err != nil {
		return nil, err
	}
	if p.tok.Kind != RParen {
		if s.Post, err = p.simpleStmt(); err != nil {
			return nil, err
		}
		if vs, ok := s.Post.(*VarStmt); ok {
			return nil, p.errf("cannot declare %s in the post clause of a for", vs.Name)
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if s.Body, err = p.block(); err != nil {
		return nil, err
	}
	return s, nil
}

// simpleStmt parses a var declaration, assignment, or expression without
// consuming a trailing terminator; used by the for clauses.
func (p *parser) simpleStmt() (Stmt, error) {
	pos := p.tok.Pos
	if p.tok.Kind == KwVar {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		s := &VarStmt{Name: name.Text, Pos: pos}
		if ok, err := p.accept(Assign); err != nil {
			return nil, err
		} else if ok {
			if s.Init, err = p.expression(); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	x, err := p.expression()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind == Assign {
		ref, ok := x.(*VarRef)
		if !ok {
			return nil, p.errf("left side of assignment must be a variable or array element")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Target: ref, Value: val, Pos: pos}, nil
	}
	return &ExprStmt{X: x, Pos: pos}, nil
}

// Binary operator precedence, tightest last. Matches C's ordering for
// the operators we have.
var precedence = map[Kind]int{
	OrOr:   1,
	AndAnd: 2,
	Pipe:   3,
	Caret:  4,
	Amp:    5,
	EqEq:   6, NotEq: 6,
	Lt: 7, Le: 7, Gt: 7, Ge: 7,
	Shl: 8, Shr: 8,
	Plus: 9, Minus: 9,
	Star: 10, Slash: 10, PercentOp: 10,
}

func (p *parser) expression() (Expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		prec, ok := precedence[p.tok.Kind]
		if !ok || prec < minPrec {
			return left, nil
		}
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right, Pos_: pos}
	}
}

func (p *parser) unary() (Expr, error) {
	switch p.tok.Kind {
	case Minus, Not:
		op := p.tok.Kind
		pos := p.tok.Pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, X: x, Pos_: pos}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case NUMBER:
		v := p.tok.Num
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &NumLit{Value: v, Pos_: pos}, nil
	case STRING:
		v := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &StrLit{Value: v, Pos_: pos}, nil
	case LParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(RParen)
		return x, err
	case IDENT:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch p.tok.Kind {
		case LParen: // call
			if err := p.advance(); err != nil {
				return nil, err
			}
			call := &CallExpr{Callee: name, Pos_: pos}
			if p.tok.Kind != RParen {
				for {
					arg, err := p.expression()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if ok, err := p.accept(Comma); err != nil {
						return nil, err
					} else if !ok {
						break
					}
				}
			}
			_, err := p.expect(RParen)
			return call, err
		case LBracket: // array index
			if err := p.advance(); err != nil {
				return nil, err
			}
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			return &VarRef{Name: name, Index: idx, Pos_: pos}, nil
		}
		return &VarRef{Name: name, Pos_: pos}, nil
	}
	return nil, p.errf("expected an expression, got %s", p.tok.Kind)
}
