package lang

// Inline expansion, the optimization the paper's §6 discusses first:
// "if this format routine is expanded inline in the output routine, the
// overhead of a function call and return can be saved for each datum
// that needs to be formatted. The drawback ... the profiling will also
// become less useful since the loss of routines will make its output
// more granular."
//
// The inliner is deliberately conservative — it exists to reproduce that
// tradeoff, not to be a production optimizer:
//
//   - only functions whose body is exactly `return <expr>;` are inlined;
//   - self-calls and indirect calls never inline;
//   - functions whose address is taken (used as a value) never inline;
//   - an argument expression may be duplicated only when it is a literal
//     or a local/parameter reference (re-reading a global after another
//     argument's call could observe a different value);
//   - inlining iterates to a small fixed depth so chains of trivial
//     wrappers collapse.
//
// Because the checker has already resolved every reference, substitution
// is scope-safe: the only names a single-return body can mention are its
// parameters (replaced by argument expressions resolved in the caller's
// scope) and globals/functions (whose resolution is scope-independent).

// maxInlineDepth bounds repeated passes so wrapper chains collapse
// without risking nontermination.
const maxInlineDepth = 3

// Inline performs inline expansion on a checked program, in place. It
// returns the number of call sites expanded.
func Inline(prog *Program) int {
	inl := &inliner{bodies: make(map[string]*FuncDecl)}
	addressTaken := make(map[string]bool)
	for _, f := range prog.Funcs {
		walkExprs(f.Body, func(e Expr) {
			if r, ok := e.(*VarRef); ok && r.Ref == RefFunc {
				addressTaken[r.Name] = true
			}
		})
	}
	for _, f := range prog.Funcs {
		if addressTaken[f.Name] {
			continue
		}
		if len(f.Body.Stmts) != 1 {
			continue
		}
		ret, ok := f.Body.Stmts[0].(*ReturnStmt)
		if !ok || ret.Value == nil {
			continue
		}
		// A body that dispatches through a variable (often a parameter)
		// cannot be substituted textually; leave it alone.
		indirect := false
		walkExprInline(ret.Value, func(e Expr) {
			if c, ok := e.(*CallExpr); ok && c.Target == CallIndirect {
				indirect = true
			}
		})
		if indirect {
			continue
		}
		inl.bodies[f.Name] = f
	}
	total := 0
	for depth := 0; depth < maxInlineDepth; depth++ {
		n := 0
		for _, f := range prog.Funcs {
			inl.current = f
			n += inl.block(f.Body)
		}
		total += n
		if n == 0 {
			break
		}
	}
	return total
}

type inliner struct {
	bodies  map[string]*FuncDecl
	current *FuncDecl
}

func (inl *inliner) block(b *Block) int {
	n := 0
	for _, s := range b.Stmts {
		n += inl.stmt(s)
	}
	return n
}

func (inl *inliner) stmt(s Stmt) int {
	switch s := s.(type) {
	case *Block:
		return inl.block(s)
	case *VarStmt:
		if s.Init != nil {
			return inl.expr(&s.Init)
		}
	case *AssignStmt:
		n := inl.expr(&s.Value)
		if s.Target.Index != nil {
			n += inl.expr(&s.Target.Index)
		}
		return n
	case *IfStmt:
		n := inl.expr(&s.Cond) + inl.block(s.Then)
		if s.Else != nil {
			n += inl.block(s.Else)
		}
		return n
	case *WhileStmt:
		return inl.expr(&s.Cond) + inl.block(s.Body)
	case *ForStmt:
		n := 0
		if s.Init != nil {
			n += inl.stmt(s.Init)
		}
		if s.Cond != nil {
			n += inl.expr(&s.Cond)
		}
		if s.Post != nil {
			n += inl.stmt(s.Post)
		}
		return n + inl.block(s.Body)
	case *ReturnStmt:
		if s.Value != nil {
			return inl.expr(&s.Value)
		}
	case *ExprStmt:
		return inl.expr(&s.X)
	}
	return 0
}

// expr rewrites *ep in place, returning the number of expansions.
func (inl *inliner) expr(ep *Expr) int {
	switch e := (*ep).(type) {
	case *NumLit:
		return 0
	case *VarRef:
		if e.Index != nil {
			return inl.expr(&e.Index)
		}
		return 0
	case *UnaryExpr:
		return inl.expr(&e.X)
	case *BinaryExpr:
		return inl.expr(&e.L) + inl.expr(&e.R)
	case *CallExpr:
		n := 0
		for i := range e.Args {
			n += inl.expr(&e.Args[i])
		}
		if rep, ok := inl.tryInline(e); ok {
			*ep = rep
			return n + 1
		}
		return n
	}
	return 0
}

// tryInline returns the substituted body for a call, if legal.
func (inl *inliner) tryInline(call *CallExpr) (Expr, bool) {
	if call.Target != CallDirect {
		return nil, false
	}
	callee, ok := inl.bodies[call.Callee]
	if !ok || callee == inl.current {
		return nil, false
	}
	body := callee.Body.Stmts[0].(*ReturnStmt).Value
	uses := make([]int, len(callee.Params))
	countParamUses(body, uses)
	for i, u := range uses {
		if u > 1 && !duplicable(call.Args[i]) {
			return nil, false
		}
	}
	return substitute(body, call.Args), true
}

// duplicable reports whether evaluating e twice is observationally
// identical to once: literals and frame-local reads only.
func duplicable(e Expr) bool {
	switch e := e.(type) {
	case *NumLit:
		return true
	case *VarRef:
		return e.Index == nil && (e.Ref == RefLocal || e.Ref == RefParam)
	}
	return false
}

func countParamUses(e Expr, uses []int) {
	switch e := e.(type) {
	case *VarRef:
		if e.Ref == RefParam {
			uses[e.Off]++
		}
		if e.Index != nil {
			countParamUses(e.Index, uses)
		}
	case *UnaryExpr:
		countParamUses(e.X, uses)
	case *BinaryExpr:
		countParamUses(e.L, uses)
		countParamUses(e.R, uses)
	case *CallExpr:
		for _, a := range e.Args {
			countParamUses(a, uses)
		}
	}
}

// substitute clones e, replacing parameter references with the argument
// expressions (shared, not cloned per use beyond the duplicable rule
// enforced above — cloning keeps later rewrites independent).
func substitute(e Expr, args []Expr) Expr {
	switch e := e.(type) {
	case *NumLit:
		c := *e
		return &c
	case *VarRef:
		if e.Ref == RefParam {
			return cloneExpr(args[e.Off])
		}
		c := *e
		if e.Index != nil {
			c.Index = substitute(e.Index, args)
		}
		return &c
	case *UnaryExpr:
		c := *e
		c.X = substitute(e.X, args)
		return &c
	case *BinaryExpr:
		c := *e
		c.L = substitute(e.L, args)
		c.R = substitute(e.R, args)
		return &c
	case *CallExpr:
		c := *e
		c.Args = make([]Expr, len(e.Args))
		for i, a := range e.Args {
			c.Args[i] = substitute(a, args)
		}
		if e.Var != nil {
			v := *e.Var
			c.Var = &v
		}
		return &c
	}
	return e
}

// cloneExpr deep-copies an expression tree without substitution (the
// caller's own parameter references must survive unchanged).
func cloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case *NumLit:
		c := *e
		return &c
	case *VarRef:
		c := *e
		if e.Index != nil {
			c.Index = cloneExpr(e.Index)
		}
		return &c
	case *UnaryExpr:
		c := *e
		c.X = cloneExpr(e.X)
		return &c
	case *BinaryExpr:
		c := *e
		c.L = cloneExpr(e.L)
		c.R = cloneExpr(e.R)
		return &c
	case *CallExpr:
		c := *e
		c.Args = make([]Expr, len(e.Args))
		for i, a := range e.Args {
			c.Args[i] = cloneExpr(a)
		}
		if e.Var != nil {
			v := *e.Var
			c.Var = &v
		}
		return &c
	}
	return e
}

// walkExprInline visits every node of one expression tree.
func walkExprInline(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch e := e.(type) {
	case *VarRef:
		walkExprInline(e.Index, visit)
	case *UnaryExpr:
		walkExprInline(e.X, visit)
	case *BinaryExpr:
		walkExprInline(e.L, visit)
		walkExprInline(e.R, visit)
	case *CallExpr:
		for _, a := range e.Args {
			walkExprInline(a, visit)
		}
	}
}

// walkExprs visits every expression in a block.
func walkExprs(b *Block, visit func(Expr)) {
	var walkE func(Expr)
	walkE = func(e Expr) {
		if e == nil {
			return
		}
		visit(e)
		switch e := e.(type) {
		case *VarRef:
			walkE(e.Index)
		case *UnaryExpr:
			walkE(e.X)
		case *BinaryExpr:
			walkE(e.L)
			walkE(e.R)
		case *CallExpr:
			for _, a := range e.Args {
				walkE(a)
			}
		}
	}
	var walkS func(Stmt)
	walkS = func(s Stmt) {
		switch s := s.(type) {
		case *Block:
			for _, inner := range s.Stmts {
				walkS(inner)
			}
		case *VarStmt:
			walkE(s.Init)
		case *AssignStmt:
			walkE(s.Target)
			walkE(s.Value)
		case *IfStmt:
			walkE(s.Cond)
			walkS(s.Then)
			if s.Else != nil {
				walkS(s.Else)
			}
		case *WhileStmt:
			walkE(s.Cond)
			walkS(s.Body)
		case *ForStmt:
			if s.Init != nil {
				walkS(s.Init)
			}
			walkE(s.Cond)
			if s.Post != nil {
				walkS(s.Post)
			}
			walkS(s.Body)
		case *ReturnStmt:
			walkE(s.Value)
		case *ExprStmt:
			walkE(s.X)
		}
	}
	for _, s := range b.Stmts {
		walkS(s)
	}
}
