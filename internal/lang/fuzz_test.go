package lang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// tokens the generator draws from: enough structure to sometimes parse,
// enough chaos to exercise every error path.
var fuzzTokens = []string{
	"func", "var", "extern", "if", "else", "while", "return", "break", "continue",
	"main", "f", "g", "x", "y", "table",
	"0", "1", "42", "0x10", "99999999999999999999",
	"(", ")", "{", "}", "[", "]", ",", ";",
	"=", "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
	"<", "<=", ">", ">=", "==", "!=", "&&", "||", "!",
	"@", "$", "\x00", "/*", "*/", "//",
}

// TestParserNeverPanics: any token soup must produce a value or an
// error, never a panic.
func TestParserNeverPanics(t *testing.T) {
	f := func(seed int64, nRaw uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on seed %d: %v", seed, r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < int(nRaw)%200+1; i++ {
			b.WriteString(fuzzTokens[rng.Intn(len(fuzzTokens))])
			b.WriteByte(' ')
		}
		_, _ = Compile("fuzz.tl", b.String(), Options{Profile: rng.Intn(2) == 0})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestStructuredFuzz: randomly generated *valid* programs must compile,
// with and without profiling and inlining, and both builds must agree.
func TestStructuredFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := genProgram(rng)
		plain, err := Compile("gen.tl", src, Options{})
		if err != nil {
			t.Logf("seed %d: generated program failed to compile: %v\n%s", seed, err, src)
			return false
		}
		inlined, err := Compile("gen.tl", src, Options{Profile: true, Inline: true})
		if err != nil {
			t.Logf("seed %d: profile+inline compile failed: %v", seed, err)
			return false
		}
		return len(plain.Text) > 0 && len(inlined.Text) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// genProgram emits a random valid program: a few leaf functions with
// expression bodies, one looping driver, and main.
func genProgram(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("var g0;\nvar arr[8];\n")
	nLeaf := rng.Intn(4) + 1
	for i := 0; i < nLeaf; i++ {
		b.WriteString("func leaf")
		b.WriteByte(byte('0' + i))
		b.WriteString("(a, b) { return ")
		b.WriteString(genExpr(rng, []string{"a", "b", "g0"}, 3))
		b.WriteString("; }\n")
	}
	b.WriteString(`
func driver(n) {
	var acc = 0;
	var i = 0;
	while (i < n) {
`)
	for i := 0; i < nLeaf; i++ {
		b.WriteString("\t\tacc = acc + leaf")
		b.WriteByte(byte('0' + i))
		b.WriteString("(i, acc & 255);\n")
	}
	b.WriteString(`		i = i + 1;
	}
	return acc;
}
func main() { g0 = 7; return driver(20) & 255; }
`)
	return b.String()
}

func genExpr(rng *rand.Rand, vars []string, depth int) string {
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		digits := []string{"1", "2", "3", "7", "13", "100"}
		return digits[rng.Intn(len(digits))]
	}
	ops := []string{"+", "-", "*", "&", "|", "^"}
	return "(" + genExpr(rng, vars, depth-1) + " " +
		ops[rng.Intn(len(ops))] + " " + genExpr(rng, vars, depth-1) + ")"
}
