package lang

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/object"
)

// Options controls compilation.
type Options struct {
	// Profile plants an MCOUNT call in the prologue of every routine,
	// the paper's "augmented routine prologues". Unprofiled routines run
	// at full speed.
	Profile bool
	// Inline expands trivial single-return functions at their call
	// sites, the §6 optimization whose side effect is a more granular
	// (less informative) profile. See Inline.
	Inline bool
}

// Compile translates source into a relocatable object file.
func Compile(file, src string, opt Options) (*object.Object, error) {
	prog, err := Parse(file, src)
	if err != nil {
		return nil, err
	}
	if err := Check(file, prog); err != nil {
		return nil, err
	}
	if opt.Inline {
		Inline(prog)
	}
	return Generate(file, prog, opt)
}

// Generate translates a checked program. Most callers want Compile.
func Generate(file string, prog *Program, opt Options) (*object.Object, error) {
	g := &codegen{
		file: file,
		opt:  opt,
		obj:  &object.Object{Name: file},
	}
	for _, gd := range prog.Globals {
		size := gd.Size
		if size == 0 {
			size = 1
		}
		def := object.GlobalDef{Name: gd.Name, Size: size}
		if gd.HasInit {
			def.Init = []isa.Word{gd.Init}
		}
		g.obj.Globals = append(g.obj.Globals, def)
	}
	for _, f := range prog.Funcs {
		if err := g.genFunc(f); err != nil {
			return nil, err
		}
	}
	return g.obj, nil
}

type codegen struct {
	file string
	opt  Options
	obj  *object.Object

	fn *FuncDecl

	// loop label stack for break/continue: indices of pending jumps and
	// the loop-head offset.
	loops []loopCtx

	// fixups are branch instructions awaiting a target within the
	// current object (resolved immediately via bind/patch).
	epilogueJumps []int64

	// line-number debug info for the current routine
	curLine int32
	marks   []object.LineMark
}

// mark records that instructions emitted from here on come from the
// given source line.
func (g *codegen) mark(pos Pos) {
	line := int32(pos.Line)
	if line <= 0 || line == g.curLine {
		return
	}
	g.curLine = line
	g.marks = append(g.marks, object.LineMark{Offset: g.here(), Line: line})
}

type loopCtx struct {
	breaks []int64 // offsets of JMPs to patch to the loop end
	// continues are patched to the continue target: the condition check
	// for while loops, the post statement for for loops.
	continues []int64
}

// here returns the current text offset.
func (g *codegen) here() int64 { return int64(len(g.obj.Text)) }

// emit appends one instruction.
func (g *codegen) emit(i isa.Instr) int64 {
	at := g.here()
	g.obj.Text = append(g.obj.Text, i.Encode())
	return at
}

// emitJump appends a branch with a placeholder target, returning its
// offset for later patching.
func (g *codegen) emitJump(op isa.Op, reg isa.Reg) int64 {
	return g.emit(isa.Instr{Op: op, Rs1: reg})
}

// patch points the branch at `at` to target `to` (both object-local) and
// records the RelocText fixup the linker needs.
func (g *codegen) patch(at, to int64) {
	instr, err := isa.Decode(g.obj.Text[at])
	if err != nil {
		panic(fmt.Sprintf("lang: patching non-instruction at %d: %v", at, err))
	}
	instr.Imm = int32(to)
	g.obj.Text[at] = instr.Encode()
	g.obj.Relocs = append(g.obj.Relocs, object.Reloc{Offset: at, Kind: object.RelocText})
}

// reloc records a symbol fixup for the most recently emitted instruction.
func (g *codegen) reloc(name string, kind object.RelocKind) {
	g.obj.Relocs = append(g.obj.Relocs, object.Reloc{
		Offset: g.here() - 1, Name: name, Kind: kind,
	})
}

func (g *codegen) genFunc(f *FuncDecl) error {
	g.fn = f
	g.loops = nil
	g.epilogueJumps = nil
	g.curLine = 0
	g.marks = nil
	start := g.here()
	g.mark(f.Pos)

	// Prologue. MCOUNT must be the first instruction: the word on top
	// of the stack is still the return address the CALL pushed, which
	// identifies the call site (§3.1).
	if g.opt.Profile {
		g.emit(isa.Instr{Op: isa.OpMcount})
	}
	g.emit(isa.Instr{Op: isa.OpPush, Rs1: isa.RegFP})
	g.emit(isa.Instr{Op: isa.OpMov, Rd: isa.RegFP, Rs1: isa.RegSP})
	if f.NumLocals > 0 {
		g.emit(isa.Instr{Op: isa.OpLea, Rd: isa.RegSP, Rs1: isa.RegSP, Imm: int32(-f.NumLocals)})
	}

	if err := g.genBlock(f.Body); err != nil {
		return err
	}

	// Implicit `return 0` falling off the end.
	g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV, Imm: 0})
	epilogue := g.here()
	for _, at := range g.epilogueJumps {
		g.patch(at, epilogue)
	}
	g.emit(isa.Instr{Op: isa.OpMov, Rd: isa.RegSP, Rs1: isa.RegFP})
	g.emit(isa.Instr{Op: isa.OpPop, Rd: isa.RegFP})
	g.emit(isa.Instr{Op: isa.OpRet})

	g.obj.Funcs = append(g.obj.Funcs, object.FuncDef{
		Name: f.Name, Offset: start, Size: g.here() - start,
		File: g.file, Lines: g.marks,
	})
	return nil
}

// localAddr returns the FP-relative offset of local slot i.
func localAddr(slot int64) int32 { return int32(-1 - slot) }

// paramAddr returns the FP-relative offset of parameter i of an n-arg
// function: args are pushed left to right, so the first argument is
// deepest.
func paramAddr(i, n int) int32 { return int32(2 + (n - 1 - i)) }

func (g *codegen) genBlock(b *Block) error {
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genStmt(s Stmt) error {
	g.mark(stmtPos(s))
	switch s := s.(type) {
	case *Block:
		return g.genBlock(s)
	case *VarStmt:
		if s.Size > 0 {
			// Zero the array's slots: frames are reused, so the stack
			// holds stale words. Lowest address first, walking up.
			g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV, Imm: 0})
			g.emit(isa.Instr{Op: isa.OpLea, Rd: 1, Rs1: isa.RegFP,
				Imm: localAddr(s.Slot) - int32(s.Size-1)})
			g.emit(isa.Instr{Op: isa.OpMovI, Rd: 2, Imm: int32(s.Size)})
			head := g.here()
			exit := g.emitJump(isa.OpBeqz, 2)
			g.emit(isa.Instr{Op: isa.OpSt, Rs1: 1, Rs2: isa.RegRV})
			g.emit(isa.Instr{Op: isa.OpLea, Rd: 1, Rs1: 1, Imm: 1})
			g.emit(isa.Instr{Op: isa.OpLea, Rd: 2, Rs1: 2, Imm: -1})
			back := g.emitJump(isa.OpJmp, 0)
			g.patch(back, head)
			g.patch(exit, g.here())
			return nil
		}
		if s.Init != nil {
			if err := g.genExpr(s.Init); err != nil {
				return err
			}
		} else {
			g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV, Imm: 0})
		}
		g.emit(isa.Instr{Op: isa.OpSt, Rs1: isa.RegFP, Imm: localAddr(s.Slot), Rs2: isa.RegRV})
		return nil
	case *AssignStmt:
		return g.genAssign(s)
	case *IfStmt:
		if err := g.genExpr(s.Cond); err != nil {
			return err
		}
		toElse := g.emitJump(isa.OpBeqz, isa.RegRV)
		if err := g.genBlock(s.Then); err != nil {
			return err
		}
		if s.Else == nil {
			g.patch(toElse, g.here())
			return nil
		}
		toEnd := g.emitJump(isa.OpJmp, 0)
		g.patch(toElse, g.here())
		if err := g.genBlock(s.Else); err != nil {
			return err
		}
		g.patch(toEnd, g.here())
		return nil
	case *WhileStmt:
		head := g.here()
		g.loops = append(g.loops, loopCtx{})
		if err := g.genExpr(s.Cond); err != nil {
			return err
		}
		exit := g.emitJump(isa.OpBeqz, isa.RegRV)
		if err := g.genBlock(s.Body); err != nil {
			return err
		}
		back := g.emitJump(isa.OpJmp, 0)
		g.patch(back, head)
		end := g.here()
		g.patch(exit, end)
		ctx := g.loops[len(g.loops)-1]
		for _, at := range ctx.breaks {
			g.patch(at, end)
		}
		for _, at := range ctx.continues {
			g.patch(at, head)
		}
		g.loops = g.loops[:len(g.loops)-1]
		return nil
	case *ForStmt:
		if s.Init != nil {
			if err := g.genStmt(s.Init); err != nil {
				return err
			}
		}
		head := g.here()
		g.loops = append(g.loops, loopCtx{})
		var exit int64 = -1
		if s.Cond != nil {
			if err := g.genExpr(s.Cond); err != nil {
				return err
			}
			exit = g.emitJump(isa.OpBeqz, isa.RegRV)
		}
		if err := g.genBlock(s.Body); err != nil {
			return err
		}
		post := g.here()
		if s.Post != nil {
			if err := g.genStmt(s.Post); err != nil {
				return err
			}
		}
		back := g.emitJump(isa.OpJmp, 0)
		g.patch(back, head)
		end := g.here()
		if exit >= 0 {
			g.patch(exit, end)
		}
		ctx := g.loops[len(g.loops)-1]
		for _, at := range ctx.breaks {
			g.patch(at, end)
		}
		for _, at := range ctx.continues {
			g.patch(at, post)
		}
		g.loops = g.loops[:len(g.loops)-1]
		return nil
	case *ReturnStmt:
		if s.Value != nil {
			if err := g.genExpr(s.Value); err != nil {
				return err
			}
		} else {
			g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV, Imm: 0})
		}
		g.epilogueJumps = append(g.epilogueJumps, g.emitJump(isa.OpJmp, 0))
		return nil
	case *BreakStmt:
		ctx := &g.loops[len(g.loops)-1]
		ctx.breaks = append(ctx.breaks, g.emitJump(isa.OpJmp, 0))
		return nil
	case *ContinueStmt:
		ctx := &g.loops[len(g.loops)-1]
		ctx.continues = append(ctx.continues, g.emitJump(isa.OpJmp, 0))
		return nil
	case *ExprStmt:
		return g.genExpr(s.X)
	}
	return fmt.Errorf("lang: cannot generate %T", s)
}

// stmtPos returns a statement's source position.
func stmtPos(s Stmt) Pos {
	switch s := s.(type) {
	case *Block:
		return s.Pos
	case *VarStmt:
		return s.Pos
	case *AssignStmt:
		return s.Pos
	case *IfStmt:
		return s.Pos
	case *WhileStmt:
		return s.Pos
	case *ForStmt:
		return s.Pos
	case *ReturnStmt:
		return s.Pos
	case *BreakStmt:
		return s.Pos
	case *ContinueStmt:
		return s.Pos
	case *ExprStmt:
		return s.Pos
	}
	return Pos{}
}

func (g *codegen) genAssign(s *AssignStmt) error {
	t := s.Target
	switch t.Ref {
	case RefLocal, RefParam, RefGlobal:
		if err := g.genExpr(s.Value); err != nil {
			return err
		}
		switch t.Ref {
		case RefLocal:
			g.emit(isa.Instr{Op: isa.OpSt, Rs1: isa.RegFP, Imm: localAddr(t.Off), Rs2: isa.RegRV})
		case RefParam:
			g.emit(isa.Instr{Op: isa.OpSt, Rs1: isa.RegFP,
				Imm: paramAddr(int(t.Off), len(g.fn.Params)), Rs2: isa.RegRV})
		case RefGlobal:
			g.emit(isa.Instr{Op: isa.OpSt, Rs1: isa.RegGP, Rs2: isa.RegRV})
			g.reloc(t.Name, object.RelocGlobal)
		}
		return nil
	case RefArray:
		if err := g.genExpr(s.Value); err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpPush, Rs1: isa.RegRV})
		if err := g.genExpr(t.Index); err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpLea, Rd: 1, Rs1: isa.RegGP})
		g.reloc(t.Name, object.RelocGlobal)
		g.emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: isa.RegRV})
		g.emit(isa.Instr{Op: isa.OpPop, Rd: 2})
		g.emit(isa.Instr{Op: isa.OpSt, Rs1: 1, Rs2: 2})
		return nil
	case RefLocalArray:
		if err := g.genExpr(s.Value); err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpPush, Rs1: isa.RegRV})
		if err := g.genExpr(t.Index); err != nil {
			return err
		}
		// Element j of an array based at slot b lives at FP-1-b-j
		// (slots grow downward).
		g.emit(isa.Instr{Op: isa.OpLea, Rd: 1, Rs1: isa.RegFP, Imm: localAddr(t.Off)})
		g.emit(isa.Instr{Op: isa.OpSub, Rd: 1, Rs1: 1, Rs2: isa.RegRV})
		g.emit(isa.Instr{Op: isa.OpPop, Rd: 2})
		g.emit(isa.Instr{Op: isa.OpSt, Rs1: 1, Rs2: 2})
		return nil
	}
	return fmt.Errorf("lang: bad assignment target %v", t.Ref)
}

// genExpr evaluates e into R0 (RegRV).
func (g *codegen) genExpr(e Expr) error {
	switch e := e.(type) {
	case *NumLit:
		g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV, Imm: int32(e.Value)})
		return nil
	case *VarRef:
		return g.genLoad(e)
	case *UnaryExpr:
		if err := g.genExpr(e.X); err != nil {
			return err
		}
		switch e.Op {
		case Minus:
			g.emit(isa.Instr{Op: isa.OpNeg, Rd: isa.RegRV, Rs1: isa.RegRV})
		case Not:
			g.emit(isa.Instr{Op: isa.OpMovI, Rd: 1, Imm: 0})
			g.emit(isa.Instr{Op: isa.OpSeq, Rd: isa.RegRV, Rs1: isa.RegRV, Rs2: 1})
		default:
			return fmt.Errorf("lang: bad unary op %v", e.Op)
		}
		return nil
	case *BinaryExpr:
		return g.genBinary(e)
	case *CallExpr:
		return g.genCall(e)
	}
	return fmt.Errorf("lang: cannot generate %T", e)
}

func (g *codegen) genLoad(r *VarRef) error {
	switch r.Ref {
	case RefLocal:
		g.emit(isa.Instr{Op: isa.OpLd, Rd: isa.RegRV, Rs1: isa.RegFP, Imm: localAddr(r.Off)})
	case RefParam:
		g.emit(isa.Instr{Op: isa.OpLd, Rd: isa.RegRV, Rs1: isa.RegFP,
			Imm: paramAddr(int(r.Off), len(g.fn.Params))})
	case RefGlobal:
		g.emit(isa.Instr{Op: isa.OpLd, Rd: isa.RegRV, Rs1: isa.RegGP})
		g.reloc(r.Name, object.RelocGlobal)
	case RefArray:
		if err := g.genExpr(r.Index); err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpLea, Rd: 1, Rs1: isa.RegGP})
		g.reloc(r.Name, object.RelocGlobal)
		g.emit(isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: isa.RegRV})
		g.emit(isa.Instr{Op: isa.OpLd, Rd: isa.RegRV, Rs1: 1})
	case RefLocalArray:
		if err := g.genExpr(r.Index); err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpLea, Rd: 1, Rs1: isa.RegFP, Imm: localAddr(r.Off)})
		g.emit(isa.Instr{Op: isa.OpSub, Rd: 1, Rs1: 1, Rs2: isa.RegRV})
		g.emit(isa.Instr{Op: isa.OpLd, Rd: isa.RegRV, Rs1: 1})
	case RefFunc:
		g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV})
		g.reloc(r.Name, object.RelocFuncAddr)
	default:
		return fmt.Errorf("lang: unresolved reference %s", r.Name)
	}
	return nil
}

func (g *codegen) genBinary(e *BinaryExpr) error {
	switch e.Op {
	case AndAnd, OrOr:
		return g.genShortCircuit(e)
	}
	if err := g.genExpr(e.L); err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.OpPush, Rs1: isa.RegRV})
	if err := g.genExpr(e.R); err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.OpPop, Rd: 1})
	// Left operand in R1, right in R0.
	L, R := isa.Reg(1), isa.RegRV
	switch e.Op {
	case Plus:
		g.emit(isa.Instr{Op: isa.OpAdd, Rd: isa.RegRV, Rs1: L, Rs2: R})
	case Minus:
		g.emit(isa.Instr{Op: isa.OpSub, Rd: isa.RegRV, Rs1: L, Rs2: R})
	case Star:
		g.emit(isa.Instr{Op: isa.OpMul, Rd: isa.RegRV, Rs1: L, Rs2: R})
	case Slash:
		g.emit(isa.Instr{Op: isa.OpDiv, Rd: isa.RegRV, Rs1: L, Rs2: R})
	case PercentOp:
		g.emit(isa.Instr{Op: isa.OpMod, Rd: isa.RegRV, Rs1: L, Rs2: R})
	case Amp:
		g.emit(isa.Instr{Op: isa.OpAnd, Rd: isa.RegRV, Rs1: L, Rs2: R})
	case Pipe:
		g.emit(isa.Instr{Op: isa.OpOr, Rd: isa.RegRV, Rs1: L, Rs2: R})
	case Caret:
		g.emit(isa.Instr{Op: isa.OpXor, Rd: isa.RegRV, Rs1: L, Rs2: R})
	case Shl:
		g.emit(isa.Instr{Op: isa.OpShl, Rd: isa.RegRV, Rs1: L, Rs2: R})
	case Shr:
		g.emit(isa.Instr{Op: isa.OpShr, Rd: isa.RegRV, Rs1: L, Rs2: R})
	case Lt:
		g.emit(isa.Instr{Op: isa.OpSlt, Rd: isa.RegRV, Rs1: L, Rs2: R})
	case Le:
		g.emit(isa.Instr{Op: isa.OpSle, Rd: isa.RegRV, Rs1: L, Rs2: R})
	case Gt:
		g.emit(isa.Instr{Op: isa.OpSlt, Rd: isa.RegRV, Rs1: R, Rs2: L})
	case Ge:
		g.emit(isa.Instr{Op: isa.OpSle, Rd: isa.RegRV, Rs1: R, Rs2: L})
	case EqEq:
		g.emit(isa.Instr{Op: isa.OpSeq, Rd: isa.RegRV, Rs1: L, Rs2: R})
	case NotEq:
		g.emit(isa.Instr{Op: isa.OpSne, Rd: isa.RegRV, Rs1: L, Rs2: R})
	default:
		return fmt.Errorf("lang: bad binary op %v", e.Op)
	}
	return nil
}

func (g *codegen) genShortCircuit(e *BinaryExpr) error {
	if err := g.genExpr(e.L); err != nil {
		return err
	}
	var short int64
	if e.Op == AndAnd {
		short = g.emitJump(isa.OpBeqz, isa.RegRV)
	} else {
		short = g.emitJump(isa.OpBnez, isa.RegRV)
	}
	if err := g.genExpr(e.R); err != nil {
		return err
	}
	var short2 int64
	if e.Op == AndAnd {
		short2 = g.emitJump(isa.OpBeqz, isa.RegRV)
		g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV, Imm: 1})
	} else {
		short2 = g.emitJump(isa.OpBnez, isa.RegRV)
		g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV, Imm: 0})
	}
	end := g.emitJump(isa.OpJmp, 0)
	target := g.here()
	g.patch(short, target)
	g.patch(short2, target)
	if e.Op == AndAnd {
		g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV, Imm: 0})
	} else {
		g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV, Imm: 1})
	}
	g.patch(end, g.here())
	return nil
}

func (g *codegen) genCall(call *CallExpr) error {
	if call.Target == CallBuiltin {
		return g.genBuiltin(call)
	}
	for _, a := range call.Args {
		if err := g.genExpr(a); err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpPush, Rs1: isa.RegRV})
	}
	switch call.Target {
	case CallDirect:
		g.emit(isa.Instr{Op: isa.OpCall})
		g.reloc(call.Callee, object.RelocCall)
	case CallIndirect:
		if err := g.genLoad(call.Var); err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpMov, Rd: 3, Rs1: isa.RegRV})
		g.emit(isa.Instr{Op: isa.OpCallR, Rs1: 3})
	default:
		return fmt.Errorf("lang: unresolved call to %s", call.Callee)
	}
	if n := len(call.Args); n > 0 {
		g.emit(isa.Instr{Op: isa.OpLea, Rd: isa.RegSP, Rs1: isa.RegSP, Imm: int32(n)})
	}
	return nil
}

func (g *codegen) genBuiltin(call *CallExpr) error {
	if call.Builtin == BuiltinPuts {
		str := call.Args[0].(*StrLit)
		for i := 0; i < len(str.Value); i++ {
			g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV, Imm: int32(str.Value[i])})
			g.emit(isa.Instr{Op: isa.OpSys, Imm: isa.SysPutChar})
		}
		g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV, Imm: int32(len(str.Value))})
		return nil
	}
	for _, a := range call.Args {
		if err := g.genExpr(a); err != nil {
			return err
		}
	}
	switch call.Builtin {
	case BuiltinPrint:
		g.emit(isa.Instr{Op: isa.OpSys, Imm: isa.SysPutInt})
	case BuiltinPutc:
		g.emit(isa.Instr{Op: isa.OpSys, Imm: isa.SysPutChar})
	case BuiltinCycles:
		g.emit(isa.Instr{Op: isa.OpSys, Imm: isa.SysCycles})
	case BuiltinRand:
		g.emit(isa.Instr{Op: isa.OpSys, Imm: isa.SysRand})
	case BuiltinMonStart:
		g.emit(isa.Instr{Op: isa.OpSys, Imm: isa.SysMonStart})
		g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV, Imm: 0})
	case BuiltinMonStop:
		g.emit(isa.Instr{Op: isa.OpSys, Imm: isa.SysMonStop})
		g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV, Imm: 0})
	case BuiltinMonReset:
		g.emit(isa.Instr{Op: isa.OpSys, Imm: isa.SysMonReset})
		g.emit(isa.Instr{Op: isa.OpMovI, Rd: isa.RegRV, Imm: 0})
	default:
		return fmt.Errorf("lang: bad builtin %d", call.Builtin)
	}
	return nil
}
