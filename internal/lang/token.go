// Package lang implements a small imperative language and its compiler
// for the simulated machine. It exists so profiled programs are real
// compiled programs: the code generator plants an MCOUNT call in the
// prologue of every routine when profiling is requested, exactly as the
// paper's C, Fortran77, and Pascal compilers "insert calls to a
// monitoring routine in the prologue for each routine" (§3). Programs
// need no changes to be profiled — recompilation with Options.Profile
// is the only requirement, matching the paper's "no planning on part of
// the programmer".
//
// The language has integer scalars and fixed-size global arrays,
// functions with value parameters, the usual control flow, function
// values (compiled to indirect calls, the "functional parameters" the
// static call graph cannot see), and builtins for output, cycle counts,
// deterministic randomness, and the profiler's control interface.
package lang

import "fmt"

// Kind classifies tokens.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER
	STRING

	// keywords
	KwFunc
	KwVar
	KwExtern
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue

	// punctuation
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Comma
	Semicolon
	Assign

	// operators
	Plus
	Minus
	Star
	Slash
	PercentOp
	Amp
	Pipe
	Caret
	Shl
	Shr
	Lt
	Le
	Gt
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	Not
)

var kindNames = map[Kind]string{
	EOF: "end of file", IDENT: "identifier", NUMBER: "number",
	STRING: "string literal",
	KwFunc: "'func'", KwVar: "'var'", KwExtern: "'extern'",
	KwIf: "'if'", KwElse: "'else'",
	KwWhile: "'while'", KwFor: "'for'", KwReturn: "'return'", KwBreak: "'break'",
	KwContinue: "'continue'",
	LParen:     "'('", RParen: "')'", LBrace: "'{'", RBrace: "'}'",
	LBracket: "'['", RBracket: "']'", Comma: "','", Semicolon: "';'",
	Assign: "'='",
	Plus:   "'+'", Minus: "'-'", Star: "'*'", Slash: "'/'", PercentOp: "'%'",
	Amp: "'&'", Pipe: "'|'", Caret: "'^'", Shl: "'<<'", Shr: "'>>'",
	Lt: "'<'", Le: "'<='", Gt: "'>'", Ge: "'>='", EqEq: "'=='", NotEq: "'!='",
	AndAnd: "'&&'", OrOr: "'||'", Not: "'!'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]Kind{
	"func": KwFunc, "var": KwVar, "extern": KwExtern, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "return": KwReturn, "break": KwBreak,
	"continue": KwContinue,
}

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexeme.
type Token struct {
	Kind Kind
	Text string
	Num  int64 // valid for NUMBER
	Pos  Pos
}

// Error is a compilation failure with its source position.
type Error struct {
	File string
	Pos  Pos
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%s: %s", e.File, e.Pos, e.Msg)
}
