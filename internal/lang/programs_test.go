package lang

import (
	"fmt"
	"strings"
	"testing"
)

// Whole-program tests: complete programs with independently computed
// expected results, run both plain and profiled+inlined to confirm the
// compiler options never change semantics.

func checkProgram(t *testing.T, name, src string, wantExit int64, wantOut string) {
	t.Helper()
	for _, opt := range []Options{
		{},
		{Profile: true},
		{Inline: true},
		{Profile: true, Inline: true},
	} {
		code, out := runProgram(t, src, opt)
		if code != wantExit {
			t.Errorf("%s %+v: exit = %d, want %d", name, opt, code, wantExit)
		}
		if wantOut != "" && out != wantOut {
			t.Errorf("%s %+v: output = %q, want %q", name, opt, out, wantOut)
		}
	}
}

func TestProgramSieve(t *testing.T) {
	// Count primes below 500: pi(500) = 95.
	src := `
var composite[500];
func sieve(n) {
	var count = 0;
	var i = 2;
	while (i < n) {
		if (composite[i] == 0) {
			count = count + 1;
			var j = i * i;
			while (j < n) {
				composite[j] = 1;
				j = j + i;
			}
		}
		i = i + 1;
	}
	return count;
}
func main() { return sieve(500); }`
	checkProgram(t, "sieve", src, 95, "")
}

func TestProgramGCD(t *testing.T) {
	// gcd(252, 105) = 21, lcm = 1260; print both.
	src := `
func gcd(a, b) {
	while (b != 0) {
		var t = b;
		b = a % b;
		a = t;
	}
	return a;
}
func lcm(a, b) { return a / gcd(a, b) * b; }
func main() {
	print(gcd(252, 105));
	print(lcm(252, 105));
	return 0;
}`
	checkProgram(t, "gcd", src, 0, "21\n1260\n")
}

func TestProgramCollatz(t *testing.T) {
	// Steps for 27 to reach 1: 111.
	src := `
func steps(n) {
	var c = 0;
	while (n != 1) {
		if (n % 2 == 0) { n = n / 2; }
		else { n = 3*n + 1; }
		c = c + 1;
	}
	return c;
}
func main() { return steps(27); }`
	checkProgram(t, "collatz", src, 111, "")
}

func TestProgramFixedPointSqrt(t *testing.T) {
	// Integer square roots via Newton's method.
	src := `
func isqrt(n) {
	if (n < 2) { return n; }
	var x = n;
	var y = (x + 1) / 2;
	while (y < x) {
		x = y;
		y = (x + n / x) / 2;
	}
	return x;
}
func main() {
	var i = 0;
	var sum = 0;
	while (i <= 100) {
		sum = sum + isqrt(i);
		i = i + 1;
	}
	return sum;
}`
	// sum of floor(sqrt(i)) for i in 0..100
	want := int64(0)
	for i := 0; i <= 100; i++ {
		x := 0
		for (x+1)*(x+1) <= i {
			x++
		}
		want += int64(x)
	}
	checkProgram(t, "isqrt", src, want, "")
}

func TestProgramAckermannSmall(t *testing.T) {
	// Deep recursion stress: A(2, 3) = 9.
	src := `
func ack(m, n) {
	if (m == 0) { return n + 1; }
	if (n == 0) { return ack(m - 1, 1); }
	return ack(m - 1, ack(m, n - 1));
}
func main() { return ack(2, 3); }`
	checkProgram(t, "ackermann", src, 9, "")
}

func TestProgramStringOutput(t *testing.T) {
	// putc-based text output.
	var want strings.Builder
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&want, "%c", 'a'+i)
	}
	want.WriteByte('\n')
	src := `
func putrange(lo, n) {
	var i = 0;
	while (i < n) {
		putc(lo + i);
		i = i + 1;
	}
	return 0;
}
func main() {
	putrange(97, 5);
	putc(10);
	return 0;
}`
	checkProgram(t, "strings", src, 0, want.String())
}

func TestProgramMatrixChain(t *testing.T) {
	// Dynamic programming over a global table: minimal scalar
	// multiplications for dims [10,20,30,40] = 18000.
	src := `
var dims[4];
var cost[16];
func setDims() {
	dims[0] = 10; dims[1] = 20; dims[2] = 30; dims[3] = 40;
	return 0;
}
func solve(n) {
	var len = 2;
	while (len <= n) {
		var i = 0;
		while (i + len <= n) {
			var j = i + len;
			var best = 1 << 30;
			var k = i + 1;
			while (k < j) {
				var c = cost[i*4 + k] + cost[k*4 + j] + dims[i]*dims[k]*dims[j];
				if (c < best) { best = c; }
				k = k + 1;
			}
			cost[i*4 + j] = best;
			i = i + 1;
		}
		len = len + 1;
	}
	return cost[0*4 + n];
}
func main() {
	setDims();
	return solve(3) / 1000;
}`
	checkProgram(t, "matrixchain", src, 18, "")
}

func TestForLoopBasic(t *testing.T) {
	src := `
func main() {
	var sum = 0;
	for (var i = 1; i <= 10; i = i + 1) {
		sum = sum + i;
	}
	return sum;
}`
	checkProgram(t, "forbasic", src, 55, "")
}

func TestForLoopContinueRunsPost(t *testing.T) {
	// The crucial semantics: continue must execute the post statement,
	// or this loop never terminates.
	src := `
func main() {
	var sum = 0;
	for (var i = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) { continue; }
		sum = sum + i;   // 1+3+5+7+9
	}
	return sum;
}`
	checkProgram(t, "forcontinue", src, 25, "")
}

func TestForLoopBreak(t *testing.T) {
	src := `
func main() {
	var n = 0;
	for (;;) {
		n = n + 1;
		if (n >= 7) { break; }
	}
	return n;
}`
	checkProgram(t, "forbreak", src, 7, "")
}

func TestForLoopScoping(t *testing.T) {
	// The init variable is scoped to the loop; an outer i is untouched.
	src := `
func main() {
	var i = 100;
	var sum = 0;
	for (var i = 0; i < 3; i = i + 1) {
		sum = sum + i;
	}
	return i + sum;
}`
	checkProgram(t, "forscope", src, 103, "")
}

func TestForLoopNested(t *testing.T) {
	src := `
func main() {
	var total = 0;
	for (var i = 0; i < 4; i = i + 1) {
		for (var j = 0; j < 5; j = j + 1) {
			if (j == 3) { continue; }
			total = total + 1;
		}
	}
	return total;
}`
	checkProgram(t, "fornested", src, 16, "")
}

func TestForLoopNoInitNoPost(t *testing.T) {
	src := `
func main() {
	var i = 0;
	for (; i < 5;) {
		i = i + 1;
	}
	return i;
}`
	checkProgram(t, "forbare", src, 5, "")
}

func TestForLoopErrors(t *testing.T) {
	for _, tc := range []struct{ name, src, wantSub string }{
		{"var in post", "func main() { for (;; var x = 1) { break; } return 0; }", "post clause"},
		{"init scope leak", "func main() { for (var i = 0; i < 1; i = i + 1) {} return i; }", "undefined name i"},
		{"assign to call", "func f() { return 0; } func main() { for (f() = 1;;) {} return 0; }", "left side"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile("t.tl", tc.src, Options{})
			if err == nil {
				t.Fatalf("compiled, want error with %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %q, want %q", err, tc.wantSub)
			}
		})
	}
}

func TestLocalArrays(t *testing.T) {
	src := `
func sumsquares(n) {
	var buf[16];
	for (var i = 0; i < n; i = i + 1) {
		buf[i] = i * i;
	}
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		s = s + buf[i];
	}
	return s;
}
func main() { return sumsquares(5); }` // 0+1+4+9+16 = 30
	checkProgram(t, "localarray", src, 30, "")
}

func TestLocalArrayZeroed(t *testing.T) {
	// Frames are reused: dirty() fills its frame, then clean() must
	// still observe zeroed array slots.
	src := `
func dirty() {
	var junk[8];
	for (var i = 0; i < 8; i = i + 1) { junk[i] = 999; }
	return junk[7];
}
func clean() {
	var buf[8];
	var s = 0;
	for (var i = 0; i < 8; i = i + 1) { s = s + buf[i]; }
	return s;
}
func main() {
	dirty();
	return clean();
}`
	checkProgram(t, "zeroed", src, 0, "")
}

func TestLocalArrayPerFrame(t *testing.T) {
	// Recursion: each frame gets its own array.
	src := `
func rec(depth) {
	var a[4];
	a[0] = depth;
	if (depth > 0) { rec(depth - 1); }
	return a[0];   // must still be this frame's value
}
func main() { return rec(6); }`
	checkProgram(t, "perframe", src, 6, "")
}

func TestLocalArrayErrors(t *testing.T) {
	for _, tc := range []struct{ name, src, wantSub string }{
		{"unindexed", "func main() { var a[3]; return a; }", "must be indexed"},
		{"init", "func main() { var a[3] = 5; return 0; }", ""},
		{"zero size", "func main() { var a[0]; return 0; }", "size 0"},
		{"call", "func main() { var a[3]; return a(); }", "not callable"},
		{"scalar indexed", "func main() { var x; return x[0]; }", "cannot be indexed"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile("t.tl", tc.src, Options{})
			if err == nil {
				t.Fatalf("compiled, want error")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %q, want %q", err, tc.wantSub)
			}
		})
	}
}

func TestLocalArrayInsertionSort(t *testing.T) {
	src := `
func sortcheck() {
	var a[10];
	for (var i = 0; i < 10; i = i + 1) { a[i] = (7 * (10 - i)) % 23; }
	for (var i = 1; i < 10; i = i + 1) {
		var v = a[i];
		var j = i - 1;
		while (j >= 0 && a[j] > v) {
			a[j + 1] = a[j];
			j = j - 1;
		}
		a[j + 1] = v;
	}
	var ok = 1;
	for (var i = 1; i < 10; i = i + 1) {
		if (a[i - 1] > a[i]) { ok = 0; }
	}
	return ok;
}
func main() { return sortcheck(); }`
	checkProgram(t, "insertion", src, 1, "")
}

func TestPuts(t *testing.T) {
	src := `
func main() {
	puts("hello, world\n");
	puts("tab\tquote\" backslash\\\n");
	return puts("abc");
}`
	code, out := runProgram(t, src, Options{})
	if out != "hello, world\ntab\tquote\" backslash\\\nabc" {
		t.Errorf("output = %q", out)
	}
	if code != 3 { // puts yields the byte count
		t.Errorf("exit = %d, want 3", code)
	}
}

func TestPutsErrors(t *testing.T) {
	for _, tc := range []struct{ name, src, wantSub string }{
		{"non-literal", `func main() { puts(42); return 0; }`, "string literal"},
		{"string elsewhere", `func main() { return "x"; }`, "only appear as the argument"},
		{"string in arith", `func main() { print("a" + 1); return 0; }`, "only appear"},
		{"unterminated", "func main() { puts(\"oops); }", "unterminated"},
		{"bad escape", `func main() { puts("\q"); return 0; }`, "unknown escape"},
		{"arity", `func main() { puts("a", "b"); return 0; }`, "takes 1 argument"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile("t.tl", tc.src, Options{})
			if err == nil {
				t.Fatalf("compiled, want error with %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %q, want %q", err, tc.wantSub)
			}
		})
	}
}
