// Package propagate implements the paper's time-propagation scheme (§4):
// starting from each routine's sampled self time, execution time flows
// from descendants to ancestors along the call graph's arcs,
//
//	T_r = S_r + Σ_{r CALLS e} T_e × C_e^r / C_e
//
// where C_e is the number of calls to e and C_e^r the calls from r to e:
// each caller is accountable for its share of the callee's total time, in
// proportion to how often it called.
//
// Nodes are visited in the topological order assigned by package scc
// (callees before callers), so "execution time can be propagated from
// descendants to ancestors after a single traversal of each arc".
//
// Cycles found by scc are treated as single entities: member self times
// sum, calls into the cycle share the cycle's total, intra-cycle arcs are
// listed but propagate nothing, and self-recursive arcs never propagate
// (§4: "time is not propagated from one member of a cycle to another").
// Static arcs carry count zero and therefore propagate nothing. Time
// attributed to a spontaneous caller is computed (for display) but flows
// to no one.
package propagate

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/callgraph"
	"repro/internal/obs"
	"repro/internal/scc"
)

// Run performs propagation over an analyzed graph (scc.Analyze must have
// been called). It fills in Node.ChildTicks, Cycle.ChildTicks, and the
// per-arc PropSelf/PropChild fields. Run is idempotent.
func Run(g *callgraph.Graph) {
	_ = RunCtx(context.Background(), g, 1)
}

// RunCtx is Run with cancellation and a worker-pool width. jobs <= 1 is
// the exact serial Run. At higher widths the condensation DAG is cut
// into depth levels — a unit (node, or collapsed cycle) sits one level
// above its deepest callee, so the topological numbers from scc already
// certify the schedule — and units within a level compute their arc
// shares concurrently. The caller-side accumulation is applied serially
// in topological order after each level, keeping the result
// deterministic for any jobs regardless of goroutine scheduling.
func RunCtx(ctx context.Context, g *callgraph.Graph, jobs int) error {
	for _, n := range g.Nodes() {
		n.ChildTicks = 0
		for _, a := range n.In {
			a.PropSelf, a.PropChild = 0, 0
		}
	}
	for _, c := range g.Cycles {
		c.ChildTicks = 0
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	if jobs <= 1 {
		done := make(map[*callgraph.Cycle]bool)
		for _, n := range scc.TopoOrder(g) {
			if c := n.Cycle; c != nil {
				if done[c] {
					continue
				}
				done[c] = true
				distribute(c.SelfTicks(), c.ChildTicks, c.ExternalCalls(), cycleInArcs(c))
				continue
			}
			distribute(n.SelfTicks, n.ChildTicks, n.Calls(), nodeInArcs(n))
		}
		return nil
	}
	return runLevels(ctx, g, jobs)
}

// unit is one propagation entity: a collapsed cycle or a plain node.
type unit struct {
	node  *callgraph.Node  // nil when cycle != nil
	cycle *callgraph.Cycle
	depth int
	in    []*callgraph.Arc // filled during the level's parallel phase
}

func nodeInArcs(n *callgraph.Node) []*callgraph.Arc {
	var in []*callgraph.Arc
	for _, a := range n.In {
		if !a.Self() {
			in = append(in, a)
		}
	}
	return in
}

func cycleInArcs(c *callgraph.Cycle) []*callgraph.Arc {
	var in []*callgraph.Arc
	for _, m := range c.Members {
		for _, a := range m.In {
			if !a.IntraCycle() && !a.Self() {
				in = append(in, a)
			}
		}
	}
	return in
}

// runLevels is the parallel schedule behind RunCtx.
func runLevels(ctx context.Context, g *callgraph.Graph, jobs int) error {
	// Units in topological order (callees first), with the unit of every
	// member node recorded so arcs can be chased to their unit.
	unitOf := make(map[*callgraph.Node]*unit, g.Len())
	var units []*unit
	for _, n := range scc.TopoOrder(g) {
		if c := n.Cycle; c != nil {
			if u := unitOf[c.Members[0]]; u != nil {
				unitOf[n] = u
				continue
			}
			u := &unit{cycle: c}
			for _, m := range c.Members {
				unitOf[m] = u
			}
			units = append(units, u)
			continue
		}
		u := &unit{node: n}
		unitOf[n] = u
		units = append(units, u)
	}
	// A unit's depth is one past its deepest callee unit: everything a
	// unit calls is finished before the unit's own total is read. The
	// topological order makes this a single pass.
	maxDepth := 0
	for _, u := range units {
		members := []*callgraph.Node{u.node}
		if u.cycle != nil {
			members = u.cycle.Members
		}
		for _, m := range members {
			for _, a := range m.Out {
				if a.Self() || a.IntraCycle() {
					continue
				}
				if d := unitOf[a.Callee].depth + 1; d > u.depth {
					u.depth = d
				}
			}
		}
		if u.depth > maxDepth {
			maxDepth = u.depth
		}
	}
	levels := make([][]*unit, maxDepth+1)
	for _, u := range units {
		levels[u.depth] = append(levels[u.depth], u)
	}
	// The level schedule is the interesting scheduling fact about the
	// parallel pipeline: publish it, and record one span per level so a
	// Chrome trace shows how the DAG's depth serializes the run.
	tr := obs.FromContext(ctx)
	tr.Gauge("propagate.levels").Set(int64(len(levels)))
	tr.Gauge("propagate.units").Set(int64(len(units)))
	tr.Gauge("propagate.jobs").Set(int64(jobs))

	for depth, level := range levels {
		if err := ctx.Err(); err != nil {
			return err
		}
		var endLevel func()
		if tr != nil {
			endLevel = tr.Span(fmt.Sprintf("propagate.L%d", depth))
		}
		// Parallel phase: each unit gathers its incoming arcs and writes
		// its shares onto them. Every arc targets exactly one unit, so
		// the writes are disjoint; the unit's own ChildTicks is final
		// because all of its callees live in earlier levels.
		workers := jobs
		if workers > len(level) {
			workers = len(level)
		}
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					u := level[i]
					var self, child float64
					var calls int64
					if c := u.cycle; c != nil {
						u.in = cycleInArcs(c)
						self, child, calls = c.SelfTicks(), c.ChildTicks, c.ExternalCalls()
					} else {
						u.in = nodeInArcs(u.node)
						self, child, calls = u.node.SelfTicks, u.node.ChildTicks, u.node.Calls()
					}
					if calls <= 0 {
						continue
					}
					for _, a := range u.in {
						if a.Count <= 0 {
							continue // static arcs never propagate
						}
						frac := float64(a.Count) / float64(calls)
						a.PropSelf = self * frac
						a.PropChild = child * frac
					}
				}
			}()
		}
		for i := range level {
			idx <- i
		}
		close(idx)
		wg.Wait()
		// Serial phase: accumulate into callers in topological unit
		// order, so the floating-point sums are reproducible.
		for _, u := range level {
			for _, a := range u.in {
				if a.Count <= 0 || a.Caller == nil {
					continue
				}
				if pc := a.Caller.Cycle; pc != nil {
					pc.ChildTicks += a.PropSelf + a.PropChild
				} else {
					a.Caller.ChildTicks += a.PropSelf + a.PropChild
				}
			}
		}
		if endLevel != nil {
			endLevel()
		}
	}
	return nil
}

// distribute shares self+child time among the incoming arcs in
// proportion to their counts, accumulating into each caller's unit.
func distribute(self, child float64, calls int64, in []*callgraph.Arc) {
	if calls <= 0 {
		return
	}
	for _, a := range in {
		if a.Count <= 0 {
			continue // static arcs never propagate
		}
		frac := float64(a.Count) / float64(calls)
		a.PropSelf = self * frac
		a.PropChild = child * frac
		if a.Caller == nil {
			continue // spontaneous: computed for display, flows nowhere
		}
		if pc := a.Caller.Cycle; pc != nil {
			pc.ChildTicks += a.PropSelf + a.PropChild
		} else {
			a.Caller.ChildTicks += a.PropSelf + a.PropChild
		}
	}
}

// CheckConservation verifies the propagation invariant: every unit's
// total time is either retained (units nothing calls) or fully
// distributed to parents and spontaneous shares. It returns the absolute
// discrepancy between (retained + spontaneous) and total self time; a
// correct run returns a value within floating-point noise of zero. Used
// by tests and the experiment harness.
func CheckConservation(g *callgraph.Graph) float64 {
	var retained, selfSum, spont float64
	seen := make(map[*callgraph.Cycle]bool)
	for _, n := range g.Nodes() {
		if c := n.Cycle; c != nil {
			if seen[c] {
				continue
			}
			seen[c] = true
			selfSum += c.SelfTicks()
			if c.ExternalCalls() == 0 {
				retained += c.TotalTicks()
			}
			continue
		}
		selfSum += n.SelfTicks
		if n.Calls() == 0 {
			retained += n.TotalTicks()
		}
	}
	for _, a := range g.Spontaneous {
		spont += a.PropSelf + a.PropChild
	}
	return math.Abs(retained + spont - selfSum)
}
