// Package propagate implements the paper's time-propagation scheme (§4):
// starting from each routine's sampled self time, execution time flows
// from descendants to ancestors along the call graph's arcs,
//
//	T_r = S_r + Σ_{r CALLS e} T_e × C_e^r / C_e
//
// where C_e is the number of calls to e and C_e^r the calls from r to e:
// each caller is accountable for its share of the callee's total time, in
// proportion to how often it called.
//
// Nodes are visited in the topological order assigned by package scc
// (callees before callers), so "execution time can be propagated from
// descendants to ancestors after a single traversal of each arc".
//
// Cycles found by scc are treated as single entities: member self times
// sum, calls into the cycle share the cycle's total, intra-cycle arcs are
// listed but propagate nothing, and self-recursive arcs never propagate
// (§4: "time is not propagated from one member of a cycle to another").
// Static arcs carry count zero and therefore propagate nothing. Time
// attributed to a spontaneous caller is computed (for display) but flows
// to no one.
package propagate

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/callgraph"
	"repro/internal/obs"
	"repro/internal/scc"
)

// Run performs propagation over an analyzed graph (scc.Analyze must have
// been called). It fills in Node.ChildTicks, Cycle.ChildTicks, and the
// per-arc PropSelf/PropChild fields. Run is idempotent.
func Run(g *callgraph.Graph) {
	_ = RunCtx(context.Background(), g, 1)
}

// RunCtx is Run with cancellation and a worker-pool width. jobs <= 1 is
// the exact serial Run. At higher widths the condensation DAG is cut
// into depth levels — a unit (node, or collapsed cycle) sits one level
// above its deepest callee, so the topological numbers from scc already
// certify the schedule — and units within a level compute concurrently.
//
// The parallel result is bit-identical to the serial one for every
// input: each caller folds its incoming propagated shares from a
// per-unit application list laid out in the serial traversal's exact
// order, so every floating-point accumulator sees the same additions in
// the same sequence regardless of jobs or goroutine scheduling.
func RunCtx(ctx context.Context, g *callgraph.Graph, jobs int) error {
	for _, n := range g.Nodes() {
		n.ChildTicks = 0
		for _, a := range n.In {
			a.PropSelf, a.PropChild = 0, 0
		}
	}
	for _, c := range g.Cycles {
		c.ChildTicks = 0
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// More workers than schedulable CPUs is pure overhead, and the
	// application-list design makes the scheduled path bit-identical to
	// the serial one at any width, so clamping cannot change output —
	// on a single-CPU host every width runs the cheaper serial path.
	jobs = min(jobs, runtime.GOMAXPROCS(0))
	if jobs <= 1 {
		doneCycle := make([]bool, len(g.Cycles)+1)
		for _, n := range scc.TopoOrder(g) {
			if c := n.Cycle; c != nil {
				if doneCycle[c.Number] {
					continue
				}
				doneCycle[c.Number] = true
				distributeCycle(c)
				continue
			}
			distributeNode(n)
		}
		return nil
	}
	return runLevels(ctx, g, jobs)
}

// distributeNode shares a node's self+child time among its incoming
// arcs in proportion to their counts, accumulating into each caller's
// unit (or nowhere, for spontaneous arcs).
func distributeNode(n *callgraph.Node) {
	calls := n.Calls()
	if calls <= 0 {
		return
	}
	self, child := n.SelfTicks, n.ChildTicks
	for _, a := range n.In {
		if a.Self() || a.Count <= 0 {
			continue // self-recursion and static arcs never propagate
		}
		frac := float64(a.Count) / float64(calls)
		a.PropSelf = self * frac
		a.PropChild = child * frac
		if a.Caller == nil {
			continue // spontaneous: computed for display, flows nowhere
		}
		if pc := a.Caller.Cycle; pc != nil {
			pc.ChildTicks += a.PropSelf + a.PropChild
		} else {
			a.Caller.ChildTicks += a.PropSelf + a.PropChild
		}
	}
}

// distributeCycle is distributeNode for a collapsed cycle: the members'
// summed time is shared among the arcs entering the cycle from outside.
func distributeCycle(c *callgraph.Cycle) {
	calls := c.ExternalCalls()
	if calls <= 0 {
		return
	}
	self, child := c.SelfTicks(), c.ChildTicks
	for _, m := range c.Members {
		for _, a := range m.In {
			if a.IntraCycle() || a.Self() || a.Count <= 0 {
				continue
			}
			frac := float64(a.Count) / float64(calls)
			a.PropSelf = self * frac
			a.PropChild = child * frac
			if a.Caller == nil {
				continue
			}
			if pc := a.Caller.Cycle; pc != nil {
				pc.ChildTicks += a.PropSelf + a.PropChild
			} else {
				a.Caller.ChildTicks += a.PropSelf + a.PropChild
			}
		}
	}
}

// unit is one propagation entity: a collapsed cycle or a plain node.
type unit struct {
	node  *callgraph.Node // nil when cycle != nil
	cycle *callgraph.Cycle
	depth int32
}

// sched is the level schedule plus the application lists that make the
// parallel run bit-exact. Everything is indexed by unit number (units
// are stored in topological order) via Node.ID and Cycle.Number — no
// pointer-keyed maps.
type sched struct {
	units []unit
	// appList[appHead[u]:appHead[u+1]] holds the arcs whose propagated
	// shares accumulate into unit u's ChildTicks, in exactly the order
	// the serial traversal would apply them (callee units in topological
	// order, arcs in each callee's filter order). Folding this list is
	// therefore the same floating-point addition sequence as the serial
	// run, independent of scheduling.
	appHead []int32
	appList []*callgraph.Arc
}

// apply computes unit ui completely: fold its application list into its
// ChildTicks (every arc in the list was finalized by a callee unit in a
// strictly earlier level), then write this unit's shares onto its own
// incoming arcs. Units are disjoint in what they write, so any set of
// same-level units may run concurrently.
func (s *sched) apply(ui int32) {
	u := &s.units[ui]
	if lo, hi := s.appHead[ui], s.appHead[ui+1]; lo != hi {
		t := 0.0
		for _, a := range s.appList[lo:hi] {
			t += a.PropSelf + a.PropChild
		}
		if u.cycle != nil {
			u.cycle.ChildTicks = t
		} else {
			u.node.ChildTicks = t
		}
	}
	if c := u.cycle; c != nil {
		calls := c.ExternalCalls()
		if calls <= 0 {
			return
		}
		self, child := c.SelfTicks(), c.ChildTicks
		for _, m := range c.Members {
			for _, a := range m.In {
				if a.IntraCycle() || a.Self() || a.Count <= 0 {
					continue
				}
				frac := float64(a.Count) / float64(calls)
				a.PropSelf = self * frac
				a.PropChild = child * frac
			}
		}
		return
	}
	n := u.node
	calls := n.Calls()
	if calls <= 0 {
		return
	}
	self, child := n.SelfTicks, n.ChildTicks
	for _, a := range n.In {
		if a.Self() || a.Count <= 0 {
			continue
		}
		frac := float64(a.Count) / float64(calls)
		a.PropSelf = self * frac
		a.PropChild = child * frac
	}
}

// callerUnit resolves the unit an arc accumulates into, or -1 for arcs
// that flow nowhere (spontaneous or static).
func callerUnit(a *callgraph.Arc, unitOf, cycleUnit []int32) int32 {
	if a.Count <= 0 || a.Caller == nil {
		return -1
	}
	if pc := a.Caller.Cycle; pc != nil {
		return cycleUnit[pc.Number]
	}
	return unitOf[a.Caller.ID]
}

// runLevels is the parallel schedule behind RunCtx.
func runLevels(ctx context.Context, g *callgraph.Graph, jobs int) error {
	nodes := g.Nodes()
	s := &sched{units: make([]unit, 0, len(nodes))}
	// Units in topological order (callees first), with the unit of every
	// node recorded by its ID so arcs can be chased to their unit.
	unitOf := make([]int32, len(nodes))
	cycleUnit := make([]int32, len(g.Cycles)+1)
	for i := range cycleUnit {
		cycleUnit[i] = -1
	}
	topo := scc.TopoOrder(g)
	for _, n := range topo {
		if c := n.Cycle; c != nil {
			if u := cycleUnit[c.Number]; u >= 0 {
				unitOf[n.ID] = u
				continue
			}
			ui := int32(len(s.units))
			cycleUnit[c.Number] = ui
			unitOf[n.ID] = ui
			s.units = append(s.units, unit{cycle: c})
			continue
		}
		unitOf[n.ID] = int32(len(s.units))
		s.units = append(s.units, unit{node: n})
	}
	nu := len(s.units)

	// A unit's depth is one past its deepest callee unit: everything a
	// unit calls is finished before the unit's own total is read. The
	// topological order makes this a single pass. In the same sweep,
	// count each caller unit's incoming applications so the application
	// lists can be laid out as one contiguous CSR arena.
	appCount := make([]int32, nu+1)
	maxDepth := int32(0)
	one := make([]*callgraph.Node, 1) // reusable member list for plain nodes
	for ui := range s.units {
		u := &s.units[ui]
		members := one
		if u.cycle != nil {
			members = u.cycle.Members
		} else {
			one[0] = u.node
		}
		for _, m := range members {
			for _, a := range m.Out {
				if a.Self() || a.IntraCycle() {
					continue
				}
				cu := unitOf[a.Callee.ID]
				if c := a.Callee.Cycle; c != nil {
					cu = cycleUnit[c.Number]
				}
				if d := s.units[cu].depth + 1; d > u.depth {
					u.depth = d
				}
			}
			for _, a := range m.In {
				if a.Self() || a.IntraCycle() {
					continue
				}
				if cu := callerUnit(a, unitOf, cycleUnit); cu >= 0 {
					appCount[cu+1]++
				}
			}
		}
		if u.depth > maxDepth {
			maxDepth = u.depth
		}
	}
	s.appHead = appCount
	for i := 1; i <= nu; i++ {
		s.appHead[i] += s.appHead[i-1]
	}
	// Fill pass walks units (hence callee filter lists) in topological
	// order, appending each arc to its caller unit's slot — per caller
	// this reproduces the serial application order exactly.
	s.appList = make([]*callgraph.Arc, s.appHead[nu])
	next := make([]int32, nu)
	copy(next, s.appHead[:nu])
	for ui := range s.units {
		u := &s.units[ui]
		members := one
		if u.cycle != nil {
			members = u.cycle.Members
		} else {
			one[0] = u.node
		}
		for _, m := range members {
			for _, a := range m.In {
				if a.Self() || a.IntraCycle() {
					continue
				}
				if cu := callerUnit(a, unitOf, cycleUnit); cu >= 0 {
					s.appList[next[cu]] = a
					next[cu]++
				}
			}
		}
	}

	// Bucket units into levels (counting sort keeps them in topological
	// order within a level, though correctness no longer depends on it).
	levelHead := make([]int32, maxDepth+2)
	for ui := range s.units {
		levelHead[s.units[ui].depth+1]++
	}
	for d := 1; d < len(levelHead); d++ {
		levelHead[d] += levelHead[d-1]
	}
	levelUnits := make([]int32, nu)
	fill := make([]int32, maxDepth+1)
	copy(fill, levelHead[:maxDepth+1])
	for ui := range s.units {
		d := s.units[ui].depth
		levelUnits[fill[d]] = int32(ui)
		fill[d]++
	}

	// The level schedule is the interesting scheduling fact about the
	// parallel pipeline: publish it, and record one span per level so a
	// Chrome trace shows how the DAG's depth serializes the run.
	tr := obs.FromContext(ctx)
	tr.Gauge("propagate.levels").Set(int64(maxDepth) + 1)
	tr.Gauge("propagate.units").Set(int64(nu))
	tr.Gauge("propagate.jobs").Set(int64(jobs))

	for depth := int32(0); depth <= maxDepth; depth++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		level := levelUnits[levelHead[depth]:levelHead[depth+1]]
		var endLevel func()
		if tr != nil {
			endLevel = tr.Span(fmt.Sprintf("propagate.L%d", depth))
		}
		// Narrow levels (deep chains degenerate to width 1) run inline:
		// spawning goroutines per unit would dominate the work.
		if workers := min(jobs, len(level)); workers > 1 && len(level) >= 2*workers {
			// Workers claim contiguous chunks off a shared cursor, so a
			// million-unit level costs ~8·workers atomic ops, not a
			// channel send per unit.
			chunk := int32(len(level)/(workers*8) + 1)
			var cursor atomic.Int32
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						hi := cursor.Add(chunk)
						lo := hi - chunk
						if lo >= int32(len(level)) {
							return
						}
						if hi > int32(len(level)) {
							hi = int32(len(level))
						}
						for _, ui := range level[lo:hi] {
							s.apply(ui)
						}
					}
				}()
			}
			wg.Wait()
		} else {
			for _, ui := range level {
				s.apply(ui)
			}
		}
		if endLevel != nil {
			endLevel()
		}
	}
	return nil
}

// CheckConservation verifies the propagation invariant: every unit's
// total time is either retained (units nothing calls) or fully
// distributed to parents and spontaneous shares. It returns the absolute
// discrepancy between (retained + spontaneous) and total self time; a
// correct run returns a value within floating-point noise of zero. Used
// by tests and the experiment harness.
func CheckConservation(g *callgraph.Graph) float64 {
	var retained, selfSum, spont float64
	seen := make(map[*callgraph.Cycle]bool)
	for _, n := range g.Nodes() {
		if c := n.Cycle; c != nil {
			if seen[c] {
				continue
			}
			seen[c] = true
			selfSum += c.SelfTicks()
			if c.ExternalCalls() == 0 {
				retained += c.TotalTicks()
			}
			continue
		}
		selfSum += n.SelfTicks
		if n.Calls() == 0 {
			retained += n.TotalTicks()
		}
	}
	for _, a := range g.Spontaneous {
		spont += a.PropSelf + a.PropChild
	}
	return math.Abs(retained + spont - selfSum)
}
