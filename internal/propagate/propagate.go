// Package propagate implements the paper's time-propagation scheme (§4):
// starting from each routine's sampled self time, execution time flows
// from descendants to ancestors along the call graph's arcs,
//
//	T_r = S_r + Σ_{r CALLS e} T_e × C_e^r / C_e
//
// where C_e is the number of calls to e and C_e^r the calls from r to e:
// each caller is accountable for its share of the callee's total time, in
// proportion to how often it called.
//
// Nodes are visited in the topological order assigned by package scc
// (callees before callers), so "execution time can be propagated from
// descendants to ancestors after a single traversal of each arc".
//
// Cycles found by scc are treated as single entities: member self times
// sum, calls into the cycle share the cycle's total, intra-cycle arcs are
// listed but propagate nothing, and self-recursive arcs never propagate
// (§4: "time is not propagated from one member of a cycle to another").
// Static arcs carry count zero and therefore propagate nothing. Time
// attributed to a spontaneous caller is computed (for display) but flows
// to no one.
package propagate

import (
	"math"

	"repro/internal/callgraph"
	"repro/internal/scc"
)

// Run performs propagation over an analyzed graph (scc.Analyze must have
// been called). It fills in Node.ChildTicks, Cycle.ChildTicks, and the
// per-arc PropSelf/PropChild fields. Run is idempotent.
func Run(g *callgraph.Graph) {
	for _, n := range g.Nodes() {
		n.ChildTicks = 0
		for _, a := range n.In {
			a.PropSelf, a.PropChild = 0, 0
		}
	}
	for _, c := range g.Cycles {
		c.ChildTicks = 0
	}

	done := make(map[*callgraph.Cycle]bool)
	for _, n := range scc.TopoOrder(g) {
		if c := n.Cycle; c != nil {
			if done[c] {
				continue
			}
			done[c] = true
			self := c.SelfTicks()
			child := c.ChildTicks
			var in []*callgraph.Arc
			for _, m := range c.Members {
				for _, a := range m.In {
					if !a.IntraCycle() && !a.Self() {
						in = append(in, a)
					}
				}
			}
			distribute(self, child, c.ExternalCalls(), in)
			continue
		}
		var in []*callgraph.Arc
		for _, a := range n.In {
			if !a.Self() {
				in = append(in, a)
			}
		}
		distribute(n.SelfTicks, n.ChildTicks, n.Calls(), in)
	}
}

// distribute shares self+child time among the incoming arcs in
// proportion to their counts, accumulating into each caller's unit.
func distribute(self, child float64, calls int64, in []*callgraph.Arc) {
	if calls <= 0 {
		return
	}
	for _, a := range in {
		if a.Count <= 0 {
			continue // static arcs never propagate
		}
		frac := float64(a.Count) / float64(calls)
		a.PropSelf = self * frac
		a.PropChild = child * frac
		if a.Caller == nil {
			continue // spontaneous: computed for display, flows nowhere
		}
		if pc := a.Caller.Cycle; pc != nil {
			pc.ChildTicks += a.PropSelf + a.PropChild
		} else {
			a.Caller.ChildTicks += a.PropSelf + a.PropChild
		}
	}
}

// CheckConservation verifies the propagation invariant: every unit's
// total time is either retained (units nothing calls) or fully
// distributed to parents and spontaneous shares. It returns the absolute
// discrepancy between (retained + spontaneous) and total self time; a
// correct run returns a value within floating-point noise of zero. Used
// by tests and the experiment harness.
func CheckConservation(g *callgraph.Graph) float64 {
	var retained, selfSum, spont float64
	seen := make(map[*callgraph.Cycle]bool)
	for _, n := range g.Nodes() {
		if c := n.Cycle; c != nil {
			if seen[c] {
				continue
			}
			seen[c] = true
			selfSum += c.SelfTicks()
			if c.ExternalCalls() == 0 {
				retained += c.TotalTicks()
			}
			continue
		}
		selfSum += n.SelfTicks
		if n.Calls() == 0 {
			retained += n.TotalTicks()
		}
	}
	for _, a := range g.Spontaneous {
		spont += a.PropSelf + a.PropChild
	}
	return math.Abs(retained + spont - selfSum)
}
