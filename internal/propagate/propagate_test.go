package propagate

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/callgraph"
	"repro/internal/scc"
)

const eps = 1e-9

func near(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

// TestLinearChain: main -> mid -> leaf, each called once. All of leaf's
// time flows to mid, and leaf+mid's to main.
func TestLinearChain(t *testing.T) {
	g := callgraph.New()
	g.AddArc("main", "mid", 1)
	g.AddArc("mid", "leaf", 1)
	g.MustNode("main").SelfTicks = 10
	g.MustNode("mid").SelfTicks = 20
	g.MustNode("leaf").SelfTicks = 30
	scc.Analyze(g)
	Run(g)
	if !near(g.MustNode("mid").ChildTicks, 30) {
		t.Errorf("mid child = %v, want 30", g.MustNode("mid").ChildTicks)
	}
	if !near(g.MustNode("main").ChildTicks, 50) {
		t.Errorf("main child = %v, want 50", g.MustNode("main").ChildTicks)
	}
	if !near(g.MustNode("main").TotalTicks(), 60) {
		t.Errorf("main total = %v, want 60", g.MustNode("main").TotalTicks())
	}
	if got := CheckConservation(g); got > eps {
		t.Errorf("conservation error %v", got)
	}
}

// TestProportionalSharing: the paper's core rule. Two callers call
// `shared` 4 and 6 times: they receive 40% and 60% of its total time.
func TestProportionalSharing(t *testing.T) {
	g := callgraph.New()
	a1 := g.AddArc("caller1", "shared", 4)
	a2 := g.AddArc("caller2", "shared", 6)
	g.MustNode("shared").SelfTicks = 100
	scc.Analyze(g)
	Run(g)
	if !near(g.MustNode("caller1").ChildTicks, 40) {
		t.Errorf("caller1 = %v, want 40", g.MustNode("caller1").ChildTicks)
	}
	if !near(g.MustNode("caller2").ChildTicks, 60) {
		t.Errorf("caller2 = %v, want 60", g.MustNode("caller2").ChildTicks)
	}
	if !near(a1.PropSelf, 40) || !near(a1.PropChild, 0) {
		t.Errorf("arc1 prop = %v/%v, want 40/0", a1.PropSelf, a1.PropChild)
	}
	if !near(a2.PropSelf, 60) {
		t.Errorf("arc2 PropSelf = %v", a2.PropSelf)
	}
}

// TestDescendantSplit: child time and self time are reported separately
// on arcs (Figure 4's self/descendants columns).
func TestDescendantSplit(t *testing.T) {
	g := callgraph.New()
	arc := g.AddArc("top", "mid", 2)
	g.AddArc("mid", "leaf", 1)
	g.MustNode("mid").SelfTicks = 10
	g.MustNode("leaf").SelfTicks = 40
	scc.Analyze(g)
	Run(g)
	if !near(arc.PropSelf, 10) {
		t.Errorf("PropSelf = %v, want 10 (mid's own time)", arc.PropSelf)
	}
	if !near(arc.PropChild, 40) {
		t.Errorf("PropChild = %v, want 40 (leaf's time through mid)", arc.PropChild)
	}
}

// TestSelfRecursionExcluded: self-arcs are listed but "do not participate
// in time propagation" — a self-recursive routine's time goes entirely to
// its external callers.
func TestSelfRecursionExcluded(t *testing.T) {
	g := callgraph.New()
	g.AddArc("main", "fact", 1)
	g.AddArc("fact", "fact", 9)
	g.MustNode("fact").SelfTicks = 100
	scc.Analyze(g)
	Run(g)
	if !near(g.MustNode("main").ChildTicks, 100) {
		t.Errorf("main child = %v, want all 100 despite 9 self-calls",
			g.MustNode("main").ChildTicks)
	}
	if got := CheckConservation(g); got > eps {
		t.Errorf("conservation error %v", got)
	}
}

// TestCycleAsSingleEntity: mutual recursion p<->q. Members' self times
// sum; the whole flows to the external caller; intra-cycle arcs get no
// propagation.
func TestCycleAsSingleEntity(t *testing.T) {
	g := callgraph.New()
	g.AddArc("main", "p", 2)
	pq := g.AddArc("p", "q", 50)
	qp := g.AddArc("q", "p", 49)
	g.AddArc("q", "leaf", 10)
	g.MustNode("p").SelfTicks = 30
	g.MustNode("q").SelfTicks = 20
	g.MustNode("leaf").SelfTicks = 5
	scc.Analyze(g)
	Run(g)
	c := g.Cycles[0]
	if !near(c.SelfTicks(), 50) {
		t.Errorf("cycle self = %v, want 50", c.SelfTicks())
	}
	// leaf's 5 flows into the cycle (q is its only caller).
	if !near(c.ChildTicks, 5) {
		t.Errorf("cycle child = %v, want 5", c.ChildTicks)
	}
	// main receives the cycle's whole 55 (sole external caller).
	if !near(g.MustNode("main").ChildTicks, 55) {
		t.Errorf("main child = %v, want 55", g.MustNode("main").ChildTicks)
	}
	if pq.PropSelf != 0 || pq.PropChild != 0 || qp.PropSelf != 0 {
		t.Error("intra-cycle arcs carry propagated time")
	}
	if c.ExternalCalls() != 2 {
		t.Errorf("external calls = %d, want 2", c.ExternalCalls())
	}
	if c.InternalCalls() != 99 {
		t.Errorf("internal calls = %d, want 99", c.InternalCalls())
	}
	if got := CheckConservation(g); got > eps {
		t.Errorf("conservation error %v", got)
	}
}

// TestCycleSharedByCallers: two external callers of a cycle share its
// total in proportion to their call counts into any member.
func TestCycleSharedByCallers(t *testing.T) {
	g := callgraph.New()
	g.AddArc("a", "p", 1) // into member p
	g.AddArc("b", "q", 3) // into member q
	g.AddArc("p", "q", 10)
	g.AddArc("q", "p", 10)
	g.MustNode("p").SelfTicks = 60
	g.MustNode("q").SelfTicks = 20
	scc.Analyze(g)
	Run(g)
	if !near(g.MustNode("a").ChildTicks, 20) {
		t.Errorf("a = %v, want 80*1/4 = 20", g.MustNode("a").ChildTicks)
	}
	if !near(g.MustNode("b").ChildTicks, 60) {
		t.Errorf("b = %v, want 80*3/4 = 60", g.MustNode("b").ChildTicks)
	}
}

// TestStaticArcNoPropagation: an arc with count zero affects structure
// but never carries time (§4).
func TestStaticArcNoPropagation(t *testing.T) {
	g := callgraph.New()
	g.AddArc("main", "used", 5)
	st := g.AddArc("other", "used", 0)
	st.Static = true
	g.MustNode("used").SelfTicks = 50
	scc.Analyze(g)
	Run(g)
	if g.MustNode("other").ChildTicks != 0 {
		t.Errorf("static arc propagated %v ticks", g.MustNode("other").ChildTicks)
	}
	if !near(g.MustNode("main").ChildTicks, 50) {
		t.Errorf("main = %v, want 50 (denominator excludes count-0 arcs)",
			g.MustNode("main").ChildTicks)
	}
}

// TestSpontaneousShareVanishes: time attributed to an unidentifiable
// caller is computed for display but flows to no node.
func TestSpontaneousShareVanishes(t *testing.T) {
	g := callgraph.New()
	g.AddArc("main", "handler", 3)
	g.AddArc("", "handler", 1) // spontaneous
	g.MustNode("handler").SelfTicks = 40
	scc.Analyze(g)
	Run(g)
	if !near(g.MustNode("main").ChildTicks, 30) {
		t.Errorf("main = %v, want 30 (3 of 4 calls)", g.MustNode("main").ChildTicks)
	}
	sp := g.Spontaneous[0]
	if !near(sp.PropSelf, 10) {
		t.Errorf("spontaneous share = %v, want 10", sp.PropSelf)
	}
	if got := CheckConservation(g); got > eps {
		t.Errorf("conservation error %v", got)
	}
}

// TestFigure4Numbers reproduces the paper's Figure 4 arithmetic: EXAMPLE
// with parents CALLER1 (4/10) and CALLER2 (6/10), self-recursion (+4),
// children SUB1<cycle1> (20/40), SUB2 (1/5), SUB3 (0/5). The paper's
// entry shows EXAMPLE self 0.50, descendants 3.00; CALLER1 receives
// 0.20/1.20, CALLER2 0.30/1.80; SUB1's cycle passes 1.50/1.00, SUB2
// passes 0.00/0.50.
func TestFigure4Numbers(t *testing.T) {
	g := figure4Graph()
	scc.Analyze(g)
	Run(g)

	ex := g.MustNode("EXAMPLE")
	if !near(ex.SelfTicks, 0.50) {
		t.Errorf("EXAMPLE self = %v, want 0.50", ex.SelfTicks)
	}
	if !near(ex.ChildTicks, 3.00) {
		t.Errorf("EXAMPLE descendants = %v, want 3.00", ex.ChildTicks)
	}
	if ex.Calls() != 10 || ex.SelfCalls() != 4 {
		t.Errorf("EXAMPLE called %d+%d, want 10+4", ex.Calls(), ex.SelfCalls())
	}

	find := func(from, to string) *callgraph.Arc {
		for _, a := range g.Arcs() {
			if !a.Spontaneous() && a.Caller.Name == from && a.Callee.Name == to {
				return a
			}
		}
		t.Fatalf("no arc %s->%s", from, to)
		return nil
	}
	c1 := find("CALLER1", "EXAMPLE")
	if !near(c1.PropSelf, 0.20) || !near(c1.PropChild, 1.20) {
		t.Errorf("CALLER1 gets %.2f/%.2f, want 0.20/1.20", c1.PropSelf, c1.PropChild)
	}
	c2 := find("CALLER2", "EXAMPLE")
	if !near(c2.PropSelf, 0.30) || !near(c2.PropChild, 1.80) {
		t.Errorf("CALLER2 gets %.2f/%.2f, want 0.30/1.80", c2.PropSelf, c2.PropChild)
	}
	s1 := find("EXAMPLE", "SUB1")
	if !near(s1.PropSelf, 1.50) || !near(s1.PropChild, 1.00) {
		t.Errorf("SUB1 passes %.2f/%.2f, want 1.50/1.00", s1.PropSelf, s1.PropChild)
	}
	s2 := find("EXAMPLE", "SUB2")
	if !near(s2.PropSelf, 0.00) || !near(s2.PropChild, 0.50) {
		t.Errorf("SUB2 passes %.2f/%.2f, want 0.00/0.50", s2.PropSelf, s2.PropChild)
	}
	s3 := find("EXAMPLE", "SUB3")
	if s3.PropSelf != 0 || s3.PropChild != 0 {
		t.Error("never-traversed SUB3 arc propagated time")
	}
	if got := CheckConservation(g); got > eps {
		t.Errorf("conservation error %v", got)
	}
}

// figure4Graph builds the call-graph fragment of the paper's Figure 4,
// with tick values chosen (in seconds, Hz=1) to reproduce the published
// numbers exactly. Shared with the report golden test via the figures
// harness, which reconstructs the same shape.
func figure4Graph() *callgraph.Graph {
	g := callgraph.New()
	// Parents: 4 and 6 calls; EXAMPLE also calls itself 4 times.
	g.AddArc("CALLER1", "EXAMPLE", 4)
	g.AddArc("CALLER2", "EXAMPLE", 6)
	g.AddArc("EXAMPLE", "EXAMPLE", 4)
	// Children: SUB1 is in cycle1 with PARTNER; EXAMPLE's 20 calls are
	// half the cycle's 40 external calls (the rest come from elsewhere).
	g.AddArc("EXAMPLE", "SUB1", 20)
	g.AddArc("OTHER", "SUB1", 20)
	g.AddArc("SUB1", "PARTNER", 7)
	g.AddArc("PARTNER", "SUB1", 7)
	// SUB2: EXAMPLE's 1 call of 5 total.
	g.AddArc("EXAMPLE", "SUB2", 1)
	g.AddArc("OTHER", "SUB2", 4)
	// SUB3: arc exists but never traversed (static), 0 of 5 calls.
	st := g.AddArc("EXAMPLE", "SUB3", 0)
	st.Static = true
	g.AddArc("OTHER", "SUB3", 5)

	// Self times (seconds at Hz=1):
	// EXAMPLE's own time.
	g.MustNode("EXAMPLE").SelfTicks = 0.50
	// cycle1 members: self sums to 3.00; their descendants (DEEP)
	// contribute 2.00, so the cycle passes (3.00+2.00)*20/40 = 2.50 to
	// EXAMPLE, split 1.50 self / 1.00 descendants.
	g.MustNode("SUB1").SelfTicks = 2.00
	g.MustNode("PARTNER").SelfTicks = 1.00
	g.AddArc("SUB1", "DEEP", 8)
	g.MustNode("DEEP").SelfTicks = 2.00
	// SUB2: no self time; descendants only. 5 calls total, EXAMPLE's 1
	// call earns 20%: 0.00 self, 0.50 descendants => SUB2's child time
	// must be 2.50.
	g.MustNode("SUB2").SelfTicks = 0.00
	g.AddArc("SUB2", "SUB2LEAF", 3)
	g.MustNode("SUB2LEAF").SelfTicks = 2.50
	// SUB3 has some time of its own; none reaches EXAMPLE.
	g.MustNode("SUB3").SelfTicks = 0.75
	return g
}

// TestConservationRandom: on random DAG-ish graphs with random self
// times, propagated time is conserved: retained-at-roots plus vanished
// spontaneous shares equals the sum of self times.
func TestConservationRandom(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%25) + 2
		g := callgraph.New()
		names := make([]string, n)
		for i := range names {
			names[i] = "f" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			g.AddNode(names[i])
			g.MustNode(names[i]).SelfTicks = float64(rng.Intn(100))
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.15 {
					g.AddArc(names[i], names[j], int64(rng.Intn(6)+1))
				}
			}
		}
		// Sprinkle self-arcs and a spontaneous arc.
		if n > 2 {
			g.AddArc(names[0], names[0], int64(rng.Intn(3)+1))
			g.AddArc("", names[1], int64(rng.Intn(3)+1))
		}
		scc.Analyze(g)
		Run(g)
		return CheckConservation(g) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestIdempotent: running propagation twice gives the same results.
func TestIdempotent(t *testing.T) {
	g := figure4Graph()
	scc.Analyze(g)
	Run(g)
	first := g.MustNode("EXAMPLE").ChildTicks
	Run(g)
	if got := g.MustNode("EXAMPLE").ChildTicks; got != first {
		t.Errorf("second run changed ChildTicks: %v -> %v", first, got)
	}
}

// TestRecurrenceEquation verifies T_r = S_r + sum(T_e * C_e^r / C_e)
// directly on an acyclic graph, node by node.
func TestRecurrenceEquation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := callgraph.New()
	const n = 12
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a' + i))
		g.AddNode(names[i])
		g.MustNode(names[i]).SelfTicks = float64(rng.Intn(50) + 1)
	}
	// Edges only i -> j with i < j: guaranteed acyclic.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				g.AddArc(names[i], names[j], int64(rng.Intn(5)+1))
			}
		}
	}
	scc.Analyze(g)
	Run(g)
	for _, r := range g.Nodes() {
		want := r.SelfTicks
		for _, a := range r.Out {
			e := a.Callee
			want += e.TotalTicks() * float64(a.Count) / float64(e.Calls())
		}
		if !near(r.TotalTicks(), want) {
			t.Errorf("node %s: T = %v, recurrence gives %v", r.Name, r.TotalTicks(), want)
		}
	}
}

// randomCyclicGraph builds a graph with enough arcs that cycles and
// shared callees appear, for cross-checking schedules.
func randomCyclicGraph(n int, degree float64, seed int64) *callgraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := callgraph.New()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
		g.AddNode(names[i])
		g.MustNode(names[i]).SelfTicks = float64(rng.Intn(100))
	}
	for i := 0; i < int(float64(n)*degree); i++ {
		from, to := rng.Intn(n), rng.Intn(n)
		if from != to {
			g.AddArc(names[from], names[to], int64(rng.Intn(20)+1))
		}
	}
	return g
}

// TestRunCtxMatchesSerial: the level-parallel schedule computes the
// same ChildTicks and per-arc shares as the serial traversal, at every
// worker count, on graphs with cycles, spontaneous arcs, and statics.
func TestRunCtxMatchesSerial(t *testing.T) {
	// RunCtx clamps jobs to GOMAXPROCS; raise it so the scheduled
	// path (and its worker dispatch) is exercised even on a 1-CPU CI
	// host. GOMAXPROCS may legally exceed the CPU count.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	}
	for seed := int64(0); seed < 6; seed++ {
		g := randomCyclicGraph(60, 2.5, 100+seed)
		g.AddArc("", "f0", 3) // spontaneous
		st := g.AddArc("f1", "f2", 0)
		st.Static = true
		scc.Analyze(g)
		Run(g)
		type snap struct{ child, cycleChild float64 }
		want := map[string]snap{}
		for _, n := range g.Nodes() {
			s := snap{child: n.ChildTicks}
			if n.Cycle != nil {
				s.cycleChild = n.Cycle.ChildTicks
			}
			want[n.Name] = s
		}
		wantArcs := map[string][2]float64{}
		for _, a := range g.Arcs() {
			wantArcs[a.String()] = [2]float64{a.PropSelf, a.PropChild}
		}
		for _, jobs := range []int{2, 4, 16} {
			if err := RunCtx(context.Background(), g, jobs); err != nil {
				t.Fatalf("seed=%d jobs=%d: %v", seed, jobs, err)
			}
			for _, n := range g.Nodes() {
				w := want[n.Name]
				if math.Abs(n.ChildTicks-w.child) > 1e-6 {
					t.Errorf("seed=%d jobs=%d: %s child = %v, want %v", seed, jobs, n.Name, n.ChildTicks, w.child)
				}
				if n.Cycle != nil && math.Abs(n.Cycle.ChildTicks-w.cycleChild) > 1e-6 {
					t.Errorf("seed=%d jobs=%d: cycle of %s child = %v, want %v",
						seed, jobs, n.Name, n.Cycle.ChildTicks, w.cycleChild)
				}
			}
			for _, a := range g.Arcs() {
				w := wantArcs[a.String()]
				if math.Abs(a.PropSelf-w[0]) > 1e-6 || math.Abs(a.PropChild-w[1]) > 1e-6 {
					t.Errorf("seed=%d jobs=%d: arc %s prop = %v/%v, want %v/%v",
						seed, jobs, a, a.PropSelf, a.PropChild, w[0], w[1])
				}
			}
			if got := CheckConservation(g); got > 1e-6 {
				t.Errorf("seed=%d jobs=%d: conservation error %v", seed, jobs, got)
			}
		}
	}
}

// TestRunCtxDeterministic: two parallel runs at the same width are
// bit-identical — the schedule, not goroutine timing, decides the
// floating-point accumulation order.
func TestRunCtxDeterministic(t *testing.T) {
	g := randomCyclicGraph(200, 3, 77)
	scc.Analyze(g)
	if err := RunCtx(context.Background(), g, 8); err != nil {
		t.Fatal(err)
	}
	first := map[string]float64{}
	for _, n := range g.Nodes() {
		first[n.Name] = n.ChildTicks
	}
	for trial := 0; trial < 5; trial++ {
		if err := RunCtx(context.Background(), g, 8); err != nil {
			t.Fatal(err)
		}
		for _, n := range g.Nodes() {
			if n.ChildTicks != first[n.Name] {
				t.Fatalf("trial %d: %s child %v != first run %v (nondeterministic schedule)",
					trial, n.Name, n.ChildTicks, first[n.Name])
			}
		}
	}
}

func TestRunCtxCancellation(t *testing.T) {
	g := randomCyclicGraph(50, 2, 5)
	scc.Analyze(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := RunCtx(ctx, g, 4); err == nil {
		t.Error("canceled context not honored")
	}
}
