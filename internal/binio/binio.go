// Package binio is the little-endian block codec beneath the repo's two
// binary file formats (internal/gmon profile data and internal/object
// executables). Values are encoded at fixed offsets into a reused block
// buffer with binary.LittleEndian.PutUint*/Uint* — no per-field
// reflection, no interface boxing, no per-record allocation — and the
// blocks move to or from the underlying stream in large writes/reads.
// Buffers are pooled, so opening a codec on a new stream allocates
// nothing in steady state.
//
// Both Writer and Reader are error-sticky: after the first failure every
// further call is a cheap no-op and the error is reported by Err (and by
// Flush/Close on the write side), so codecs can encode a whole section
// and check once at the boundary.
package binio

import (
	"encoding/binary"
	"errors"
	"io"
	"sync"
)

// BufSize is the block size; one block is the unit of transfer to and
// from the underlying stream.
const BufSize = 64 * 1024

// ErrOverflow reports a varint encoding that does not fit in 64 bits.
var ErrOverflow = errors.New("binio: varint overflows 64 bits")

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, BufSize)
	return &b
}}

// Writer encodes little-endian values into pooled blocks flushed to w.
type Writer struct {
	w   io.Writer
	buf []byte
	n   int   // bytes pending in buf
	off int64 // total bytes accepted
	err error
}

// NewWriter returns a Writer on w backed by a pooled block buffer.
// Close returns the buffer to the pool.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: *bufPool.Get().(*[]byte)}
}

func (b *Writer) flush() {
	if b.err != nil || b.n == 0 {
		return
	}
	_, err := b.w.Write(b.buf[:b.n])
	b.n = 0
	if err != nil {
		b.err = err
	}
}

// grab returns scratch for the next n encoded bytes, flushing the block
// first if it is full. After an error it hands out a dead region so
// callers need no per-field checks.
func (b *Writer) grab(n int) []byte {
	if b.n+n > len(b.buf) {
		b.flush()
	}
	if b.err != nil {
		return b.buf[:n]
	}
	s := b.buf[b.n : b.n+n]
	b.n += n
	b.off += int64(n)
	return s
}

// U32 encodes a little-endian uint32.
func (b *Writer) U32(v uint32) { binary.LittleEndian.PutUint32(b.grab(4), v) }

// I32 encodes a little-endian int32.
func (b *Writer) I32(v int32) { b.U32(uint32(v)) }

// U64 encodes a little-endian uint64.
func (b *Writer) U64(v uint64) { binary.LittleEndian.PutUint64(b.grab(8), v) }

// I64 encodes a little-endian int64.
func (b *Writer) I64(v int64) { b.U64(uint64(v)) }

// Uvarint encodes v in LEB128 form (1-10 bytes).
func (b *Writer) Uvarint(v uint64) {
	if b.n+binary.MaxVarintLen64 > len(b.buf) {
		b.flush()
	}
	if b.err != nil {
		return
	}
	n := binary.PutUvarint(b.buf[b.n:], v)
	b.n += n
	b.off += int64(n)
}

// Varint encodes v as a zigzag-mapped LEB128 varint (1-10 bytes):
// small magnitudes of either sign encode short, which is what makes
// delta-encoding unsorted PC sequences (gmon v3 stack records) pay.
func (b *Writer) Varint(v int64) {
	b.Uvarint(uint64(v)<<1 ^ uint64(v>>63))
}

// AppendUvarint appends v in LEB128 form to dst — the in-memory
// counterpart of Writer.Uvarint, for encoders that assemble
// length-prefixed messages (protobuf wire format) before streaming.
func AppendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Bytes copies p into the stream; blocks larger than the buffer bypass
// it entirely.
func (b *Writer) Bytes(p []byte) {
	if b.err != nil {
		return
	}
	if len(p) >= len(b.buf) {
		b.flush()
		if b.err != nil {
			return
		}
		if _, err := b.w.Write(p); err != nil {
			b.err = err
			return
		}
		b.off += int64(len(p))
		return
	}
	if b.n+len(p) > len(b.buf) {
		b.flush()
		if b.err != nil {
			return
		}
	}
	copy(b.buf[b.n:], p)
	b.n += len(p)
	b.off += int64(len(p))
}

// String copies s into the stream without converting it to a byte
// slice. Length prefixes are the caller's concern.
func (b *Writer) String(s string) {
	if b.err != nil {
		return
	}
	if len(s) >= len(b.buf) {
		b.flush()
		if b.err != nil {
			return
		}
		if _, err := io.WriteString(b.w, s); err != nil {
			b.err = err
			return
		}
		b.off += int64(len(s))
		return
	}
	if b.n+len(s) > len(b.buf) {
		b.flush()
		if b.err != nil {
			return
		}
	}
	copy(b.buf[b.n:], s)
	b.n += len(s)
	b.off += int64(len(s))
}

// U32s encodes a []uint32 block-wise.
func (b *Writer) U32s(vs []uint32) {
	for len(vs) > 0 && b.err == nil {
		if b.n+4 > len(b.buf) {
			b.flush()
			continue
		}
		max := (len(b.buf) - b.n) / 4
		if max > len(vs) {
			max = len(vs)
		}
		out := b.buf[b.n:]
		for i, v := range vs[:max] {
			binary.LittleEndian.PutUint32(out[i*4:], v)
		}
		b.n += max * 4
		b.off += int64(max * 4)
		vs = vs[max:]
	}
}

// I64s encodes a []int64 block-wise.
func (b *Writer) I64s(vs []int64) {
	for len(vs) > 0 && b.err == nil {
		if b.n+8 > len(b.buf) {
			b.flush()
			continue
		}
		max := (len(b.buf) - b.n) / 8
		if max > len(vs) {
			max = len(vs)
		}
		out := b.buf[b.n:]
		for i, v := range vs[:max] {
			binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
		}
		b.n += max * 8
		b.off += int64(max * 8)
		vs = vs[max:]
	}
}

// Offset reports the total bytes accepted so far (pending or flushed).
func (b *Writer) Offset() int64 { return b.off }

// Err reports the first error encountered.
func (b *Writer) Err() error { return b.err }

// Flush writes the pending block to the stream.
func (b *Writer) Flush() error {
	b.flush()
	return b.err
}

// Close flushes and returns the block buffer to the pool. The Writer
// must not be used afterwards.
func (b *Writer) Close() error {
	b.flush()
	if b.buf != nil {
		buf := b.buf
		b.buf = nil
		bufPool.Put(&buf)
	}
	return b.err
}

// Reader decodes little-endian values from pooled blocks filled from r,
// or — when built over a fixed byte slice with NewBytesReader — directly
// from the caller's memory with no buffer and no copying.
type Reader struct {
	r        io.Reader
	buf      []byte
	pos, lim int   // unread bytes are buf[pos:lim]
	off      int64 // total bytes consumed by the caller
	fixed    bool  // buf is caller memory: never refill, never pool
	err      error
}

// NewReader returns a Reader on r backed by a pooled block buffer.
// Close returns the buffer to the pool.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, buf: *bufPool.Get().(*[]byte)}
}

// NewBytesReader returns a Reader decoding directly from data — no block
// buffer, no memcpy. View returns subslices of data itself (valid for
// the life of data, with no length cap), which is what makes decoding
// over a memory-mapped file zero-copy. Close does not pool data.
func NewBytesReader(data []byte) *Reader {
	return &Reader{buf: data, lim: len(data), fixed: true}
}

// fill ensures at least n unread bytes are buffered (for streaming
// readers n must be at most BufSize; fixed readers have the whole input
// resident and accept any n). A clean end of stream at a value boundary
// surfaces as io.EOF; one inside a value as io.ErrUnexpectedEOF.
func (b *Reader) fill(n int) bool {
	if b.err != nil {
		return false
	}
	if b.lim-b.pos >= n {
		return true
	}
	if b.fixed {
		if b.lim > b.pos {
			b.err = io.ErrUnexpectedEOF
		} else {
			b.err = io.EOF
		}
		return false
	}
	copy(b.buf, b.buf[b.pos:b.lim])
	b.lim -= b.pos
	b.pos = 0
	for b.lim < n {
		m, err := b.r.Read(b.buf[b.lim:])
		b.lim += m
		if b.lim >= n {
			return true
		}
		if err != nil {
			if err == io.EOF && b.lim > 0 {
				err = io.ErrUnexpectedEOF
			}
			b.err = err
			return false
		}
	}
	return true
}

// Byte decodes one byte.
func (b *Reader) Byte() byte {
	if !b.fill(1) {
		return 0
	}
	v := b.buf[b.pos]
	b.pos++
	b.off++
	return v
}

// U32 decodes a little-endian uint32.
func (b *Reader) U32() uint32 {
	if !b.fill(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(b.buf[b.pos:])
	b.pos += 4
	b.off += 4
	return v
}

// I32 decodes a little-endian int32.
func (b *Reader) I32() int32 { return int32(b.U32()) }

// U64 decodes a little-endian uint64.
func (b *Reader) U64() uint64 {
	if !b.fill(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(b.buf[b.pos:])
	b.pos += 8
	b.off += 8
	return v
}

// I64 decodes a little-endian int64.
func (b *Reader) I64() int64 { return int64(b.U64()) }

// Uvarint decodes a LEB128 varint, rejecting encodings past 64 bits
// with ErrOverflow.
func (b *Reader) Uvarint() uint64 {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		c := b.Byte()
		if b.err != nil {
			return 0
		}
		if c < 0x80 {
			if i == binary.MaxVarintLen64-1 && c > 1 {
				b.err = ErrOverflow
				return 0
			}
			return x | uint64(c)<<s
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	b.err = ErrOverflow
	return 0
}

// Varint decodes a zigzag-mapped LEB128 varint written by
// Writer.Varint, rejecting encodings past 64 bits with ErrOverflow.
func (b *Reader) Varint() int64 {
	u := b.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// View returns the next n decoded bytes in place without copying and
// advances past them. On a streaming reader n must be at most BufSize
// and the slice is valid only until the next Reader call; on a fixed
// reader n is uncapped and the slice aliases the underlying data for
// its whole life. nil means Err is set.
func (b *Reader) View(n int) []byte {
	if !b.fill(n) {
		return nil
	}
	s := b.buf[b.pos : b.pos+n]
	b.pos += n
	b.off += int64(n)
	return s
}

// Full decodes exactly len(p) bytes, with io.ReadFull semantics at end
// of stream.
func (b *Reader) Full(p []byte) {
	n := copy(p, b.buf[b.pos:b.lim])
	b.pos += n
	b.off += int64(n)
	p = p[n:]
	if len(p) == 0 || b.err != nil {
		return
	}
	if b.fixed {
		if n > 0 {
			b.err = io.ErrUnexpectedEOF
		} else {
			b.err = io.EOF
		}
		return
	}
	got, err := io.ReadFull(b.r, p)
	b.off += int64(got)
	if err != nil {
		if err == io.EOF && n > 0 {
			err = io.ErrUnexpectedEOF
		}
		b.err = err
	}
}

// U32s decodes a []uint32 block-wise.
func (b *Reader) U32s(dst []uint32) {
	for len(dst) > 0 {
		if b.lim-b.pos < 4 && !b.fill(4) {
			return
		}
		avail := (b.lim - b.pos) / 4
		if avail > len(dst) {
			avail = len(dst)
		}
		src := b.buf[b.pos:]
		for i := range dst[:avail] {
			dst[i] = binary.LittleEndian.Uint32(src[i*4:])
		}
		b.pos += avail * 4
		b.off += int64(avail * 4)
		dst = dst[avail:]
	}
}

// I64s decodes a []int64 block-wise.
func (b *Reader) I64s(dst []int64) {
	for len(dst) > 0 {
		if b.lim-b.pos < 8 && !b.fill(8) {
			return
		}
		avail := (b.lim - b.pos) / 8
		if avail > len(dst) {
			avail = len(dst)
		}
		src := b.buf[b.pos:]
		for i := range dst[:avail] {
			dst[i] = int64(binary.LittleEndian.Uint64(src[i*8:]))
		}
		b.pos += avail * 8
		b.off += int64(avail * 8)
		dst = dst[avail:]
	}
}

// Offset reports the total bytes consumed so far.
func (b *Reader) Offset() int64 { return b.off }

// Err reports the first error encountered.
func (b *Reader) Err() error { return b.err }

// Close returns the block buffer to the pool (fixed readers release
// their reference to the caller's data instead — caller memory is never
// pooled). The Reader must not be used afterwards.
func (b *Reader) Close() error {
	if b.buf != nil && !b.fixed {
		buf := b.buf
		bufPool.Put(&buf)
	}
	b.buf = nil
	if b.err == io.EOF {
		return nil
	}
	return b.err
}
