//go:build !unix

package binio

import "os"

// Map returns a read-only byte view of the file at path. Platforms
// without unix mmap fall back to reading the whole file; callers see
// the same Mapping contract either way.
func Map(path string) (*Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapping{Data: data}, nil
}
