package binio

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U32(0xdeadbeef)
	w.I32(-7)
	w.U64(1 << 60)
	w.I64(-1)
	w.Uvarint(0)
	w.Uvarint(300)
	w.Uvarint(1<<64 - 1)
	w.Bytes([]byte("abc"))
	w.String("xyz")
	w.U32s([]uint32{1, 2, 3})
	w.I64s([]int64{-4, 5})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wantLen := int64(4 + 4 + 8 + 8 + 1 + 2 + 10 + 3 + 3 + 12 + 16)
	if int64(buf.Len()) != wantLen {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), wantLen)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	defer r.Close()
	if v := r.U32(); v != 0xdeadbeef {
		t.Errorf("U32 = %#x", v)
	}
	if v := r.I32(); v != -7 {
		t.Errorf("I32 = %d", v)
	}
	if v := r.U64(); v != 1<<60 {
		t.Errorf("U64 = %#x", v)
	}
	if v := r.I64(); v != -1 {
		t.Errorf("I64 = %d", v)
	}
	for _, want := range []uint64{0, 300, 1<<64 - 1} {
		if v := r.Uvarint(); v != want {
			t.Errorf("Uvarint = %d, want %d", v, want)
		}
	}
	b := make([]byte, 6)
	r.Full(b)
	if string(b) != "abcxyz" {
		t.Errorf("Full = %q", b)
	}
	u := make([]uint32, 3)
	r.U32s(u)
	if u[0] != 1 || u[1] != 2 || u[2] != 3 {
		t.Errorf("U32s = %v", u)
	}
	i := make([]int64, 2)
	r.I64s(i)
	if i[0] != -4 || i[1] != 5 {
		t.Errorf("I64s = %v", i)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if off := r.Offset(); off != wantLen {
		t.Errorf("Offset = %d, want %d", off, wantLen)
	}
	// Clean end of stream at a value boundary is io.EOF.
	if r.Byte(); r.Err() != io.EOF {
		t.Errorf("read past end: %v", r.Err())
	}
}

func TestTruncationMidValue(t *testing.T) {
	r := NewReader(strings.NewReader("\x01\x02\x03"))
	defer r.Close()
	if r.U64(); r.Err() != io.ErrUnexpectedEOF {
		t.Errorf("mid-value end = %v, want unexpected EOF", r.Err())
	}
}

func TestVarintOverflow(t *testing.T) {
	// 10 continuation-heavy bytes encoding more than 64 bits.
	data := bytes.Repeat([]byte{0x80}, 9)
	data = append(data, 0x02)
	r := NewReader(bytes.NewReader(data))
	defer r.Close()
	if r.Uvarint(); !errors.Is(r.Err(), ErrOverflow) {
		t.Errorf("overflowing varint = %v, want ErrOverflow", r.Err())
	}
}

func TestView(t *testing.T) {
	r := NewReader(strings.NewReader("hello world"))
	defer r.Close()
	if s := r.View(5); string(s) != "hello" {
		t.Errorf("View = %q", s)
	}
	if s := r.View(6); string(s) != " world" {
		t.Errorf("View = %q", s)
	}
	if s := r.View(1); s != nil || r.Err() != io.EOF {
		t.Errorf("View past end = %q, %v", s, r.Err())
	}
}

func TestLargeBlocksCrossBuffer(t *testing.T) {
	// Values larger than one block bypass the buffer; values written
	// around the boundary must still round-trip.
	big := bytes.Repeat([]byte{0xab}, BufSize+17)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.U32(42)
	w.Bytes(big)
	w.String(string(big[:BufSize]))
	w.U32(99)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	defer r.Close()
	if v := r.U32(); v != 42 {
		t.Fatalf("U32 = %d", v)
	}
	got := make([]byte, len(big))
	r.Full(got)
	if !bytes.Equal(got, big) {
		t.Fatal("big Bytes did not round-trip")
	}
	got = got[:BufSize]
	r.Full(got)
	if !bytes.Equal(got, big[:BufSize]) {
		t.Fatal("big String did not round-trip")
	}
	if v := r.U32(); v != 99 || r.Err() != nil {
		t.Fatalf("trailing U32 = %d, err %v", v, r.Err())
	}
}

func TestWriterErrorSticky(t *testing.T) {
	w := NewWriter(failWriter{})
	for i := 0; i < BufSize; i++ {
		w.U64(uint64(i))
	}
	if w.Err() == nil {
		t.Fatal("writer swallowed the sink's error")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close lost the error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("sink failed") }
