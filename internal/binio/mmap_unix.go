//go:build unix

package binio

import (
	"os"
	"syscall"
)

// Map returns a read-only byte view of the file at path. On unix the
// view is a shared memory mapping: decoding through NewBytesReader then
// touches file bytes exactly once, in the page cache, with no read
// syscalls and no buffer copies. Close releases the mapping; the Data
// slice must not be used after that.
func Map(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // the mapping outlives the descriptor
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		// Zero-length mappings are an EINVAL; an empty slice decodes the
		// same way (immediate clean EOF).
		return &Mapping{}, nil
	}
	if int64(int(size)) != size {
		return nil, syscall.EFBIG
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, &os.PathError{Op: "mmap", Path: path, Err: err}
	}
	return &Mapping{Data: data, unmap: func(b []byte) error { return syscall.Munmap(b) }}, nil
}
