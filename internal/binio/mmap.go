package binio

// Mapping is a read-only byte view of a whole file, produced by Map.
// On unix it is a shared memory mapping; elsewhere a plain read of the
// file. Either way Data is immutable input memory suitable for
// NewBytesReader, and Close invalidates it.
type Mapping struct {
	Data  []byte
	unmap func([]byte) error
}

// Reader returns a zero-copy Reader over the mapped bytes.
func (m *Mapping) Reader() *Reader { return NewBytesReader(m.Data) }

// Close releases the mapping. Data must not be touched afterwards.
// Close is idempotent.
func (m *Mapping) Close() error {
	data, unmap := m.Data, m.unmap
	m.Data, m.unmap = nil, nil
	if unmap != nil && data != nil {
		return unmap(data)
	}
	return nil
}
