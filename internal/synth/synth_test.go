package synth

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/gmon"
	"repro/internal/model"
)

// encode serializes a workload's profile in the given format version.
func encode(t *testing.T, w *Workload, version int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gmon.WriteVersion(&buf, w.Prof, version); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeterministicPerSeed pins the generator contract: same seed,
// same bytes — across the profile encoding and the symbol table — and
// a different seed changes them.
func TestDeterministicPerSeed(t *testing.T) {
	a := Generate(Tier(5000, 7))
	b := Generate(Tier(5000, 7))
	if !bytes.Equal(encode(t, a, gmon.Version1), encode(t, b, gmon.Version1)) {
		t.Fatal("same seed produced different profile bytes")
	}
	if len(a.Syms) != len(b.Syms) {
		t.Fatalf("same seed produced different symbol counts: %d vs %d", len(a.Syms), len(b.Syms))
	}
	for i := range a.Syms {
		if a.Syms[i].Name != b.Syms[i].Name || a.Syms[i].Addr != b.Syms[i].Addr {
			t.Fatalf("same seed, symbol %d differs: %+v vs %+v", i, a.Syms[i], b.Syms[i])
		}
	}
	c := Generate(Tier(5000, 8))
	if bytes.Equal(encode(t, a, gmon.Version1), encode(t, c, gmon.Version1)) {
		t.Fatal("different seeds produced identical profile bytes")
	}
}

// TestRoundTrip checks that a generated profile survives both on-disk
// formats: decode(encode(p)) re-encodes to the same bytes, and the
// headline quantities match the original.
func TestRoundTrip(t *testing.T) {
	w := Generate(Tier(3000, 3))
	for _, version := range []int{gmon.Version1, gmon.Version2} {
		enc := encode(t, w, version)
		p, err := gmon.Read(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("v%d: decode: %v", version, err)
		}
		if got, want := p.Hist.TotalTicks(), w.Prof.Hist.TotalTicks(); got != want {
			t.Fatalf("v%d: ticks %d after round trip, want %d", version, got, want)
		}
		if got, want := len(p.Arcs), len(w.Prof.Arcs); got != want {
			t.Fatalf("v%d: %d arcs after round trip, want %d", version, got, want)
		}
		var buf bytes.Buffer
		if err := gmon.WriteVersion(&buf, p, version); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, buf.Bytes()) {
			t.Fatalf("v%d: re-encode differs from original encode", version)
		}
	}
}

// TestJobsInvariance is the parallel pipeline's exactness contract at
// scale: the fully analyzed model must encode to byte-identical JSON
// whatever the worker width, cycles and recursion included.
func TestJobsInvariance(t *testing.T) {
	// The pipeline clamps worker pools to GOMAXPROCS; raise it so the
	// parallel paths really run even on a 1-CPU host.
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	}
	w := Generate(Tier(20000, 5))
	src := core.TableSource{Table: w.Table()}
	var want []byte
	for _, jobs := range []int{1, 4, 13} {
		res, err := core.Run(context.Background(), src, w.Prof, core.Options{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var buf bytes.Buffer
		if err := model.Encode(&buf, res.Model); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("jobs=%d model JSON differs from jobs=1", jobs)
		}
	}
}

// TestDesignedShape verifies the generator delivers the graph features
// it promises: the designed cycle groups survive as SCC cycles, the
// graph is connected enough to analyze, and recursion exists.
func TestDesignedShape(t *testing.T) {
	cfg := Tier(10000, 1)
	w := Generate(cfg)
	res, err := core.Run(context.Background(), core.TableSource{Table: w.Table()},
		w.Prof, core.Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Graph.Cycles), w.Cfg.CycleCount; got != want {
		t.Fatalf("SCC found %d cycles, generator designed %d", got, want)
	}
	for i, c := range res.Graph.Cycles {
		if len(c.Members) != w.Cfg.CycleSize {
			t.Fatalf("cycle %d has %d members, want %d", i+1, len(c.Members), w.Cfg.CycleSize)
		}
	}
	if res.Graph.Len() != cfg.Nodes {
		t.Fatalf("graph has %d nodes, want %d", res.Graph.Len(), cfg.Nodes)
	}
}
