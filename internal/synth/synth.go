// Package synth generates deterministic synthetic call-graph workloads:
// a routine table and a matching gmon profile whose shape stresses the
// analysis pipeline the way production-scale programs do — layered
// call DAGs, deep recursion chains, dense multi-member cycles, and
// function-pointer-style fan-out hubs — at node counts up to 10^6.
//
// A generated Workload is indistinguishable from a real one to the
// pipeline: the symbol table loads through symtab.FromSyms (or a full
// object.Image via Workload.Image), the profile encodes to a valid
// gmon.out in either format version, and the whole analysis —
// callgraph.BuildCtx → scc.Analyze → cyclebreak → propagate.RunCtx →
// model.Build — runs over it unchanged. Generation is a pure function
// of Config: the same Config yields byte-identical symbols and profile
// bytes on every run and platform (the PRNG is an embedded splitmix64,
// no math/rand, no time).
//
// The histogram is emitted routine-aligned (Step = RoutineWords, one
// bucket per routine), so tick attribution never splits a bucket and
// the full analysis is exact — which is what lets tests demand
// byte-identical model JSON across -jobs widths.
package synth

import (
	"fmt"

	"repro/internal/gmon"
	"repro/internal/isa"
	"repro/internal/object"
	"repro/internal/symtab"
)

// Config parameterizes a synthetic workload. Zero values select
// scale-appropriate defaults (see Normalize); Nodes and Seed are the
// two knobs most callers set.
type Config struct {
	Nodes int    // total routine count (>= 1)
	Seed  uint64 // generator seed; (Config) ⇒ output, bit for bit

	Layers     int   // layered-DAG depth
	Chains     int   // deep linear call chains (recursion-like towers)
	ChainDepth int   // routines per chain
	CycleCount int   // dense multi-member cycles
	CycleSize  int   // members per cycle
	Hubs       int   // function-pointer-style fan-out callers
	FanOut     int   // callees per hub, all from one call site
	ExtraArcs  int   // random forward cross arcs on top of the skeleton
	RoutineWords int64 // text words per routine (and histogram step)
	Hz         int64 // profile clock rate
}

// TextBase is where synthetic text begins; routine i occupies
// [TextBase+i*RoutineWords, TextBase+(i+1)*RoutineWords).
const TextBase = 0x1000

// Normalize fills defaulted fields and clamps the shape so every region
// fits inside Nodes. It is idempotent; Generate applies it internally.
func (c Config) Normalize() Config {
	if c.Nodes < 1 {
		c.Nodes = 1
	}
	if c.RoutineWords <= 0 {
		c.RoutineWords = 8
	}
	if c.Hz <= 0 {
		c.Hz = 100
	}
	n := c.Nodes
	if c.Layers <= 0 {
		c.Layers = 12
	}
	if c.Hubs <= 0 {
		c.Hubs = n / 1000
	}
	if c.FanOut <= 0 {
		c.FanOut = min(128, max(2, n/8))
	}
	if c.Chains <= 0 {
		c.Chains = 1
	}
	if c.ChainDepth <= 0 {
		c.ChainDepth = min(max(n/10, 2), 10000)
	}
	if c.CycleCount <= 0 {
		// At least a couple of cycles on all but the tiniest graphs, so
		// every tier exercises collapsing.
		c.CycleCount = max(n/2000, min(2, n/16))
	}
	if c.CycleSize <= 0 {
		c.CycleSize = 8
	}
	if c.ExtraArcs <= 0 {
		c.ExtraArcs = n / 2
	}

	// Shrink regions until root + hubs + chains + cycles + sinks fit,
	// leaving at least a quarter of the nodes for the layered DAG.
	budget := n - 1 // root
	c.Hubs = min(c.Hubs, budget/8)
	budget -= c.Hubs
	sinks := max(min(budget, 1), n/20)
	budget -= sinks
	for c.Chains*c.ChainDepth > budget/3 && c.ChainDepth > 1 {
		c.ChainDepth /= 2
	}
	if c.Chains*c.ChainDepth > budget/3 {
		c.Chains = 0
	}
	budget -= c.Chains * c.ChainDepth
	if c.CycleSize < 2 {
		c.CycleSize = 2
	}
	if c.CycleCount*c.CycleSize > budget/2 {
		c.CycleCount = budget / 2 / c.CycleSize
	}
	budget -= c.CycleCount * c.CycleSize
	if c.Layers > budget {
		c.Layers = max(budget, 1)
	}
	return c
}

// Workload is one generated symbol table + profile pair.
type Workload struct {
	Cfg  Config // the normalized configuration that produced it
	Syms []object.Sym
	Prof *gmon.Profile
}

// rng is splitmix64: tiny, seedable, and stable across platforms.
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// intn returns a value in [0, n). n must be positive.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Generate builds the workload for cfg. All structural arcs run from a
// lower routine index to a higher one except arcs inside a designated
// cycle group, so the graph's strongly-connected components are exactly
// the generated cycles — the analysis can be checked against the shape.
func Generate(cfg Config) *Workload {
	c := cfg.Normalize()
	n := c.Nodes
	rw := c.RoutineWords
	r := rng(c.Seed)

	// Region layout, ascending: root | hubs | DAG | chains | cycles | sinks.
	hubLo := 1
	dagLo := hubLo + c.Hubs
	chainLo := n - 1 // placeholder; computed from the tail backwards
	sinks := max(min(n-1, 1), n/20)
	sinkLo := n - sinks
	cycLo := sinkLo - c.CycleCount*c.CycleSize
	chainLo = cycLo - c.Chains*c.ChainDepth
	nDag := chainLo - dagLo

	// Symbols: syn_%06x at index order (address order), root named main.
	syms := make([]object.Sym, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("syn_%06x", i)
		if i == 0 {
			name = "main"
		}
		syms[i] = object.Sym{Name: name, Addr: TextBase + int64(i)*rw, Size: rw}
	}
	addr := func(i int) int64 { return TextBase + int64(i)*rw }

	p := &gmon.Profile{Hz: c.Hz}
	p.Hist = gmon.Histogram{
		Low:  TextBase,
		High: TextBase + int64(n)*rw,
		Step: rw, // one bucket per routine: attribution is exact
	}
	p.Hist.Counts = make([]uint32, n)
	for i := range p.Hist.Counts {
		if v := r.next(); v%4 != 0 { // ~a quarter of routines sample no ticks
			p.Hist.Counts[i] = uint32(v>>32) % 16
		}
	}

	p.Arcs = make([]gmon.Arc, 0, 3*n+c.Hubs*c.FanOut+16)

	// arc appends a record caller→callee from the caller's site'th call
	// site. Sites wrap within the routine body, so two distinct sites
	// exist whenever rw > 2; the same (caller, callee) pair recorded
	// from two sites exercises the builder's arc merging.
	arc := func(from, to, site int, count int64) {
		fromPC := addr(from) + 1 + int64(site)%max64(rw-1, 1)
		p.Arcs = append(p.Arcs, gmon.Arc{FromPC: fromPC, SelfPC: addr(to), Count: count})
	}
	count := func() int64 { return 1 << (r.next() % 7) } // 1..64, dyadic

	// Root is called once, spontaneously.
	p.Arcs = append(p.Arcs, gmon.Arc{FromPC: gmon.SpontaneousPC, SelfPC: addr(0), Count: 1})

	// Hubs: function-pointer fan-out — one call site reaching many
	// callees spread over everything deeper.
	for h := 0; h < c.Hubs; h++ {
		hub := hubLo + h
		arc(0, hub, h, count())
		span := n - dagLo
		for k := 0; k < c.FanOut; k++ {
			arc(hub, dagLo+r.intn(span), 0, count())
		}
	}

	// Layered DAG: contiguous layer blocks, every node calling 2–3
	// routines in the next layer (the last layer calls sinks).
	if nDag > 0 {
		layers := min(c.Layers, nDag)
		layerOf := func(i int) (lo, hi int) { // nodes of layer i
			lo = dagLo + i*nDag/layers
			hi = dagLo + (i+1)*nDag/layers
			return lo, hi
		}
		lo0, hi0 := layerOf(0)
		for k := lo0; k < hi0 && k < lo0+8; k++ {
			arc(0, k, k-lo0, count()) // root seeds the first layer
		}
		for l := 0; l < layers; l++ {
			lo, hi := layerOf(l)
			nlo, nhi := sinkLo, n // the last layer drains into sinks
			if l+1 < layers {
				nlo, nhi = layerOf(l + 1)
			}
			width := nhi - nlo
			for i := lo; i < hi; i++ {
				outs := 2 + r.intn(2)
				for k := 0; k < outs; k++ {
					arc(i, nlo+r.intn(width), k, count())
				}
				if r.next()%16 == 0 {
					arc(i, i, 0, count()) // self-recursion, excluded from propagation
				}
			}
		}
	}

	// Deep chains: linear towers i→i+1 that force the SCC traversal and
	// the propagation schedule to their full depth; every 16th member
	// also self-recurses, and tails drain into sinks.
	for ch := 0; ch < c.Chains; ch++ {
		head := chainLo + ch*c.ChainDepth
		arc(0, head, ch, count())
		for i := 0; i < c.ChainDepth-1; i++ {
			arc(head+i, head+i+1, 0, count())
			if i%16 == 15 {
				arc(head+i, head+i, 0, 1+int64(r.next()%8))
			}
		}
		arc(head+c.ChainDepth-1, sinkLo+r.intn(sinks), 0, count())
	}

	// Dense cycles: a ring plus skip-chords and a reverse arc per group,
	// entered from the root and exited into sinks. Every arc stays
	// inside its group except the designated entry and exits, so each
	// group is one strongly-connected component, exactly.
	for cy := 0; cy < c.CycleCount; cy++ {
		base := cycLo + cy*c.CycleSize
		sz := c.CycleSize
		arc(0, base, cy, count()) // entry
		for i := 0; i < sz; i++ {
			arc(base+i, base+(i+1)%sz, 0, count()) // ring
			if sz > 3 && i%2 == 0 {
				arc(base+i, base+(i+2)%sz, 1, count()) // chord
			}
		}
		if sz > 2 {
			arc(base+sz-1, base+1, 2, count()) // reverse chord
		}
		arc(base+r.intn(sz), sinkLo+r.intn(sinks), 3, count()) // exit
	}

	// Extra forward arcs: random ascending (i, j) pairs — never a new
	// cycle — from any non-sink, occasionally recorded from a second
	// call site to exercise multi-site merging.
	for k := 0; k < c.ExtraArcs && n > 2; k++ {
		i := 1 + r.intn(sinkLo-1)
		j := 1 + r.intn(n-1)
		if i >= j {
			continue
		}
		arc(i, j, r.intn(4), count())
		if r.next()%8 == 0 {
			arc(i, j, 4+r.intn(3), count())
		}
	}

	return &Workload{Cfg: c, Syms: syms, Prof: p}
}

// Table returns the workload's symbol table.
func (w *Workload) Table() *symtab.Table { return symtab.FromSyms(w.Syms) }

// Image materializes the workload as a linked executable image (zeroed
// text under the routine table), so the unmodified gprof CLI can
// analyze a synthetic a.out + gmon.out pair end to end. The text costs
// Nodes×RoutineWords words; intended for the 10^5-and-below tiers.
func (w *Workload) Image() *object.Image {
	rw := w.Cfg.RoutineWords
	size := int64(w.Cfg.Nodes) * rw
	return &object.Image{
		Text:     make([]isa.Word, size),
		TextBase: TextBase,
		Entry:    TextBase,
		Funcs:    w.Syms,
		DataBase: TextBase + size,
		StackTop: TextBase + size + 1<<16,
	}
}

// Tier is the canonical configuration for one benchmark scale tier:
// defaults shaped by Normalize, seeded so every tier differs.
func Tier(nodes int, seed uint64) Config {
	return Config{Nodes: nodes, Seed: seed ^ uint64(nodes)*0x9e3779b97f4a7c15}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
