package scc

import (
	"testing"

	"repro/internal/callgraph"
)

// TestReanalyzeAllocs pins the allocation-light re-analysis contract:
// cyclebreak re-runs Analyze after every arc removal, so steady-state
// runs must reuse the pooled scratch and allocate only the closure and
// whatever cycles the graph actually has — never O(nodes) or O(arcs).
func TestReanalyzeAllocs(t *testing.T) {
	// ~2000 nodes: a wide layered DAG with one 4-member cycle, big
	// enough that any per-node or per-arc allocation shows up as
	// hundreds of allocs per run.
	g := callgraph.New()
	const layers, width = 20, 100
	name := func(l, i int) string { return "f" + itoa(l*width+i) }
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			g.AddNode(name(l, i))
		}
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			g.AddArc(name(l, i), name(l+1, i), 1)
			g.AddArc(name(l, i), name(l+1, (i+7)%width), 2)
		}
	}
	// One genuine cycle across the last layer.
	g.AddArc(name(layers-1, 0), name(layers-1, 1), 1)
	g.AddArc(name(layers-1, 1), name(layers-1, 2), 1)
	g.AddArc(name(layers-1, 2), name(layers-1, 3), 1)
	g.AddArc(name(layers-1, 3), name(layers-1, 0), 1)

	Analyze(g) // warm the scratch pool
	if len(g.Cycles) != 1 || len(g.Cycles[0].Members) != 4 {
		t.Fatalf("expected one 4-member cycle, got %v", g.Cycles)
	}

	allocs := testing.AllocsPerRun(20, func() { Analyze(g) })
	// Expected per run: the visit closure, the one cycle's member
	// slice growth, the Cycle value, and the g.Cycles append — well
	// under 16; hundreds means scratch reuse broke.
	if allocs > 16 {
		t.Fatalf("Analyze allocates %.0f objects per re-run; want <= 16", allocs)
	}
}
